"""Linear kinetic theory: plasma dispersion function and instability rates.

Provides the quantitative targets used to validate the physics runs:

* the plasma dispersion function :math:`Z(\\zeta) = i\\sqrt{\\pi}\\,
  w(\\zeta)` (Faddeeva function) and its derivative;
* the electrostatic dielectric for a sum of drifting Maxwellians — roots
  give Landau damping and two-stream growth rates;
* the transverse (electromagnetic) dielectric for beams drifting
  perpendicular to **k** — roots give Weibel/filamentation growth rates,
  the linear stage of the paper's Fig. 5 counter-streaming setup.

Conventions: Maxwellians ``f_s ~ exp(-(v-u_s)^2 / (2 vt_s^2))``,
:math:`\\zeta_s = (\\omega/k - u_s)/(\\sqrt{2} vt_s)`, frequencies normalized
to the species plasma frequencies ``wp_s``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np
from scipy.optimize import root
from scipy.special import wofz

__all__ = [
    "plasma_z",
    "plasma_z_deriv",
    "MaxwellianSpecies",
    "electrostatic_dielectric",
    "solve_dispersion",
    "landau_damping_rate",
    "two_stream_growth_rate",
    "transverse_dielectric",
    "filamentation_growth_rate",
]


def plasma_z(zeta: complex) -> complex:
    """Plasma dispersion function ``Z`` (analytic continuation included)."""
    return 1j * np.sqrt(np.pi) * wofz(zeta)


def plasma_z_deriv(zeta: complex) -> complex:
    """``Z'(zeta) = -2 (1 + zeta Z(zeta))``."""
    return -2.0 * (1.0 + zeta * plasma_z(zeta))


@dataclass(frozen=True)
class MaxwellianSpecies:
    """Drifting Maxwellian for dispersion calculations.

    ``wp``: plasma frequency; ``vt``: thermal speed; ``drift``: drift along
    the relevant axis (k-parallel for electrostatic, k-perpendicular for the
    transverse/filamentation branch).
    """

    wp: float
    vt: float
    drift: float = 0.0


def electrostatic_dielectric(
    omega: complex, k: float, species: Sequence[MaxwellianSpecies]
) -> complex:
    """Longitudinal dielectric
    :math:`\\epsilon = 1 - \\sum_s \\frac{\\omega_{ps}^2}{2 k^2 v_{ts}^2}
    Z'(\\zeta_s)`."""
    eps = 1.0 + 0j
    for s in species:
        zeta = (omega / k - s.drift) / (np.sqrt(2.0) * s.vt)
        eps -= s.wp ** 2 / (2.0 * k ** 2 * s.vt ** 2) * plasma_z_deriv(zeta)
    return eps


def transverse_dielectric(
    omega: complex, k: float, species: Sequence[MaxwellianSpecies], c: float = 1.0
) -> complex:
    """Transverse dispersion function for drifts perpendicular to **k**:

    :math:`D = \\omega^2 - k^2 c^2 - \\sum_s \\omega_{ps}^2
    \\big[1 + \\tfrac{u_s^2 + v_{ts}^2}{2 v_{ts}^2} Z'(\\zeta_s)\\big]`,
    with :math:`\\zeta_s = \\omega/(\\sqrt{2} k v_{ts})`.

    In the cold limit this reduces to the classic filamentation relation
    :math:`\\gamma^2 = \\omega_p^2 u^2 k^2 / (k^2 c^2 + \\omega_p^2)`.
    """
    d = omega ** 2 - (k * c) ** 2 + 0j
    for s in species:
        zeta = omega / (np.sqrt(2.0) * k * s.vt)
        mean_sq = s.drift ** 2 + s.vt ** 2
        d -= s.wp ** 2 * (1.0 + mean_sq / (2.0 * s.vt ** 2) * plasma_z_deriv(zeta))
    return d


def solve_dispersion(
    func, k: float, species: Sequence[MaxwellianSpecies], guess: complex, **kwargs
) -> complex:
    """Newton/hybrid root of a complex dispersion function ``func(omega, k, species)``."""

    def wrapped(xy):
        val = func(complex(xy[0], xy[1]), k, species, **kwargs)
        return [val.real, val.imag]

    sol = root(wrapped, [guess.real, guess.imag], tol=1e-12)
    if not sol.success:
        raise RuntimeError(f"dispersion root find failed: {sol.message}")
    return complex(sol.x[0], sol.x[1])


def landau_damping_rate(k: float, vt: float = 1.0, wp: float = 1.0) -> complex:
    """Least-damped Langmuir root for a single Maxwellian.

    Returns complex omega; ``omega.imag < 0`` is the Landau damping rate.
    For ``k lambda_D = 0.5`` the classic value is
    ``omega ~ 1.4156 - 0.1533 i`` (in units of wp, vt=1).
    """
    sp = [MaxwellianSpecies(wp=wp, vt=vt)]
    guess = complex(np.sqrt(wp ** 2 + 3.0 * (k * vt) ** 2), -0.01)
    return solve_dispersion(electrostatic_dielectric, k, sp, guess)


def two_stream_growth_rate(
    k: float, drift: float, vt: float, wp_each: float = None
) -> complex:
    """Most-unstable root for symmetric counter-streaming electron beams.

    Each beam carries half the density; ``wp_each`` defaults to
    ``1/sqrt(2)`` so the total plasma frequency is 1.
    """
    wp = wp_each if wp_each is not None else 1.0 / np.sqrt(2.0)
    sp = [
        MaxwellianSpecies(wp=wp, vt=vt, drift=+drift),
        MaxwellianSpecies(wp=wp, vt=vt, drift=-drift),
    ]
    # cold-beam estimate as the initial guess: pure growth near
    # gamma ~ wp/2 for k u ~ wp sqrt(3)/2... start slightly off-axis.
    guess = complex(1e-3, 0.4 * np.sqrt(2.0) * wp)
    return solve_dispersion(electrostatic_dielectric, k, sp, guess)


def filamentation_growth_rate(
    k: float, drift: float, vt: float, wp_total: float = 1.0, c: float = 1.0
) -> complex:
    """Most-unstable transverse (Weibel/filamentation) root for symmetric
    counter-streaming beams with **k** perpendicular to the drifts."""
    wp = wp_total / np.sqrt(2.0)
    sp = [
        MaxwellianSpecies(wp=wp, vt=vt, drift=+drift),
        MaxwellianSpecies(wp=wp, vt=vt, drift=-drift),
    ]
    cold = wp_total * drift * k / np.sqrt((k * c) ** 2 + wp_total ** 2)
    guess = complex(0.0, max(cold, 1e-3))
    omega = solve_dispersion(transverse_dielectric, k, sp, guess, c=c)
    return omega
