"""Linear kinetic theory (dispersion relations, validation targets)."""

from .dispersion import (
    MaxwellianSpecies,
    electrostatic_dielectric,
    filamentation_growth_rate,
    landau_damping_rate,
    plasma_z,
    plasma_z_deriv,
    solve_dispersion,
    transverse_dielectric,
    two_stream_growth_rate,
)

__all__ = [
    "plasma_z",
    "plasma_z_deriv",
    "MaxwellianSpecies",
    "electrostatic_dielectric",
    "transverse_dielectric",
    "solve_dispersion",
    "landau_damping_rate",
    "two_stream_growth_rate",
    "filamentation_growth_rate",
]
