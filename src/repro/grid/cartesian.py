"""Structured Cartesian grids.

The paper's solver operates on block-structured Cartesian grids in phase
space; this module provides the configuration-space and velocity-space
factors.  Grids are uniform per dimension (cell centers
``lower + (i + 1/2) dx``), which is what makes the generated kernels cell
independent up to the ``(w, dx)`` runtime symbols.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence, Tuple

import numpy as np

__all__ = ["Grid"]


@dataclass(frozen=True)
class Grid:
    """A uniform Cartesian grid.

    Parameters
    ----------
    lower, upper:
        Domain bounds per dimension.
    cells:
        Number of cells per dimension.
    """

    lower: Tuple[float, ...]
    upper: Tuple[float, ...]
    cells: Tuple[int, ...]

    def __init__(self, lower: Sequence[float], upper: Sequence[float], cells: Sequence[int]):
        lower = tuple(float(x) for x in lower)
        upper = tuple(float(x) for x in upper)
        cells = tuple(int(n) for n in cells)
        if not (len(lower) == len(upper) == len(cells)):
            raise ValueError("lower/upper/cells must have equal lengths")
        if any(u <= l for l, u in zip(lower, upper)):
            raise ValueError("upper must exceed lower in every dimension")
        if any(n < 1 for n in cells):
            raise ValueError("need at least one cell per dimension")
        object.__setattr__(self, "lower", lower)
        object.__setattr__(self, "upper", upper)
        object.__setattr__(self, "cells", cells)

    @property
    def ndim(self) -> int:
        return len(self.cells)

    @property
    def num_cells(self) -> int:
        return int(np.prod(self.cells))

    @property
    def dx(self) -> Tuple[float, ...]:
        return tuple(
            (u - l) / n for l, u, n in zip(self.lower, self.upper, self.cells)
        )

    @property
    def cell_volume(self) -> float:
        return float(np.prod(self.dx))

    def centers(self, dim: int) -> np.ndarray:
        """Cell-center coordinates along one dimension, shape ``(cells[dim],)``."""
        dx = self.dx[dim]
        return self.lower[dim] + dx * (np.arange(self.cells[dim]) + 0.5)

    def edges(self, dim: int) -> np.ndarray:
        dx = self.dx[dim]
        return self.lower[dim] + dx * np.arange(self.cells[dim] + 1)

    def cell_center(self, idx: Sequence[int]) -> Tuple[float, ...]:
        return tuple(
            self.lower[d] + self.dx[d] * (int(i) + 0.5) for d, i in enumerate(idx)
        )

    def extend(self, other: "Grid") -> "Grid":
        """Cartesian product grid (e.g. configuration x velocity)."""
        return Grid(
            self.lower + other.lower, self.upper + other.upper, self.cells + other.cells
        )

    def refine(self, factor: int | Sequence[int]) -> "Grid":
        """Uniformly refined copy (used by convergence tests)."""
        if isinstance(factor, int):
            factors: Iterable[int] = [factor] * self.ndim
        else:
            factors = factor
        return Grid(self.lower, self.upper, [n * f for n, f in zip(self.cells, factors)])

    def meshgrid_centers(self) -> Tuple[np.ndarray, ...]:
        """Cell-center coordinate arrays, each of shape ``cells``."""
        axes = [self.centers(d) for d in range(self.ndim)]
        return tuple(np.meshgrid(*axes, indexing="ij"))
