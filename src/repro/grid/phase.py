"""Phase-space grid: configuration x velocity product structure.

A :class:`PhaseGrid` couples a configuration-space :class:`~repro.grid.cartesian.Grid`
with a velocity-space grid for one species.  It owns the cell-shape
conventions used throughout the solvers:

* coefficient arrays are **cell-major**: ``(*cfg_cells, Np, *vel_cells)``
  (see :class:`repro.engine.layout.StateLayout`);
* phase dimension ``d`` maps to array axis ``d`` for configuration
  dimensions and ``1 + d`` for velocity dimensions (the basis axis sits
  between them);
* velocity centers / field coefficients are exposed as arrays broadcastable
  against the ``(*cfg, *vel)`` cell axes (no basis axis — the engine
  inserts it), which is what the generated kernels consume as runtime
  symbols (``w{d}``, ``rdx{d}``, ``E{j}_{k}``, ...).

Following Gkeyll practice, velocity grids should not have cells straddling
``v = 0`` (use an even cell count over a symmetric interval); the streaming
upwind direction is then constant within each cell, keeping the upwind
surface integrals exact.  :meth:`PhaseGrid.check_velocity_alignment` flags
violations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from .cartesian import Grid

__all__ = ["PhaseGrid"]


@dataclass(frozen=True)
class PhaseGrid:
    conf: Grid
    vel: Grid

    @property
    def cdim(self) -> int:
        return self.conf.ndim

    @property
    def vdim(self) -> int:
        return self.vel.ndim

    @property
    def pdim(self) -> int:
        return self.cdim + self.vdim

    @property
    def cells(self) -> Tuple[int, ...]:
        return self.conf.cells + self.vel.cells

    @property
    def num_cells(self) -> int:
        return self.conf.num_cells * self.vel.num_cells

    @property
    def dx(self) -> Tuple[float, ...]:
        return self.conf.dx + self.vel.dx

    @property
    def phase_volume(self) -> float:
        return self.conf.cell_volume * self.vel.cell_volume

    def velocity_center_array(self, vdir: int) -> np.ndarray:
        """Velocity cell centers along velocity dim ``vdir`` shaped to
        broadcast over the full cell-axis layout ``(*cfg, *vel)``."""
        centers = self.vel.centers(vdir)
        shape = [1] * self.pdim
        shape[self.cdim + vdir] = centers.size
        return centers.reshape(shape)

    def conf_coefficient_array(self, coeff: np.ndarray) -> np.ndarray:
        """Reshape a configuration-cell array ``(*cfg_cells,)`` so it
        broadcasts over phase-space cells."""
        coeff = np.asarray(coeff)
        if coeff.shape != self.conf.cells:
            raise ValueError(
                f"expected configuration-cell shape {self.conf.cells}, got {coeff.shape}"
            )
        return coeff.reshape(self.conf.cells + (1,) * self.vdim)

    def base_aux(self) -> Dict[str, object]:
        """Geometry runtime symbols shared by every kernel application."""
        aux: Dict[str, object] = {}
        for d in range(self.pdim):
            aux[f"rdx{d}"] = 2.0 / self.dx[d]
            aux[f"half_dxv{d}"] = 0.5 * self.dx[d]
        for j in range(self.vdim):
            aux[f"w{self.cdim + j}"] = self.velocity_center_array(j)
        return aux

    def check_velocity_alignment(self) -> bool:
        """True when no velocity cell straddles v = 0 in any direction."""
        for d in range(self.vdim):
            edges = self.vel.edges(d)
            interior = edges[1:-1]
            lo, hi = edges[0], edges[-1]
            if lo < 0.0 < hi and not np.any(np.isclose(interior, 0.0, atol=1e-12)):
                return False
        return True

    def max_velocity(self, vdir: int) -> float:
        """Largest |v| along a velocity direction (CFL bound for streaming)."""
        return max(abs(self.vel.lower[vdir]), abs(self.vel.upper[vdir]))
