"""Structured Cartesian phase-space grids."""

from .cartesian import Grid
from .phase import PhaseGrid

__all__ = ["Grid", "PhaseGrid"]
