"""BGK relaxation collision operator.

``C[f] = nu (f_M - f)`` where ``f_M`` is the Maxwellian sharing the density,
flow and thermal speed of ``f``.  The Maxwellian is projected onto the phase
basis per cell by Gauss quadrature (it is not polynomial, so a projection is
unavoidable; this mirrors Gkeyll's BGK app, contributed by P. Cagas per the
paper's acknowledgments).  Moments are obtained by weak division to avoid
aliasing in the primitive-moment computation.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..basis.modal import ModalBasis, tensor_gauss_points
from ..grid.phase import PhaseGrid
from ..moments.calc import MomentCalculator
from ..moments.weak_ops import weak_divide, weak_multiply

__all__ = ["BGKCollisions"]


class BGKCollisions:
    """Single-species BGK relaxation with constant collisionality."""

    def __init__(
        self,
        phase_grid: PhaseGrid,
        poly_order: int,
        family: str = "serendipity",
        nu: float = 1.0,
        quad_points_1d: Optional[int] = None,
    ):
        self.grid = phase_grid
        self.nu = float(nu)
        self.basis = ModalBasis(phase_grid.pdim, poly_order, family)
        self.cfg_basis = ModalBasis(phase_grid.cdim, poly_order, family)
        nq = quad_points_1d or poly_order + 2
        pts, wts = tensor_gauss_points(nq, phase_grid.pdim)
        self._pts = pts
        self._wts = wts
        self._vander = self.basis.eval_at(pts)             # (Np, Nq)
        self._cfg_vander = self.cfg_basis.eval_at(pts[:, : phase_grid.cdim])
        self._vtsq_estimate = 1.0

    # ------------------------------------------------------------------ #
    def maxwellian_coefficients(
        self, f: np.ndarray, moments: MomentCalculator
    ) -> np.ndarray:
        """Project the moment-matched Maxwellian onto the phase basis
        (cell-major in, cell-major out)."""
        g = self.grid
        vdim = g.vdim
        m0 = moments.compute("M0", f)
        u = []
        u_dot_m1 = np.zeros_like(m0)
        for j in range(vdim):
            m1 = moments.compute(f"M1{'xyz'[j]}", f)
            uj = weak_divide(m1, m0, self.cfg_basis)
            u.append(uj)
            u_dot_m1 += weak_multiply(uj, m1, self.cfg_basis)
        m2 = moments.compute("M2", f)
        vtsq = weak_divide((m2 - u_dot_m1) / vdim, m0, self.cfg_basis)
        self._vtsq_estimate = max(
            float(np.max(np.abs(vtsq[..., 0]))) * self.cfg_basis.norm(0), 1e-30
        )

        out = np.zeros_like(f)
        centers = g.conf.extend(g.vel).meshgrid_centers()
        half_dx = [0.5 * d for d in g.dx]
        cdim = g.cdim
        # basis values shaped to broadcast over cell-major state: the basis
        # axis sits between the configuration and velocity cell axes
        vander_shape = (1,) * cdim + (-1,) + (1,) * vdim
        for q in range(self._pts.shape[0]):
            # pointwise primitive moments at this quadrature point
            cfg_vals = self._cfg_vander[:, q]
            n_q = np.einsum("k,...k->...", cfg_vals, m0)
            vt2_q = np.maximum(
                np.einsum("k,...k->...", cfg_vals, vtsq), 1e-14
            )
            u_q = [np.einsum("k,...k->...", cfg_vals, u[j]) for j in range(vdim)]
            # velocity coordinates of the quadrature point, per cell
            arg = np.zeros(g.cells)
            for j in range(vdim):
                d = cdim + j
                vcoord = centers[d] + half_dx[d] * self._pts[q, d]
                arg = arg + (vcoord - _bcast(u_q[j], g)) ** 2
            fm = (
                _bcast(n_q, g)
                / (2.0 * np.pi * _bcast(vt2_q, g)) ** (vdim / 2.0)
                * np.exp(-arg / (2.0 * _bcast(vt2_q, g)))
            )
            fm_b = fm.reshape(fm.shape[:cdim] + (1,) + fm.shape[cdim:])
            out += self._wts[q] * self._vander[:, q].reshape(vander_shape) * fm_b
        return out

    def rhs(
        self,
        f: np.ndarray,
        moments: MomentCalculator,
        out: Optional[np.ndarray] = None,
        accumulate: bool = False,
    ) -> np.ndarray:
        """Evaluate (or accumulate) ``nu (f_M - f)``."""
        fm = self.maxwellian_coefficients(f, moments)
        inc = self.nu * (fm - f)
        if out is None:
            return inc
        if accumulate:
            out += inc
        else:
            out[...] = inc
        return out

    def max_frequency(self) -> float:
        return self.nu


def _bcast(arr: np.ndarray, grid: PhaseGrid) -> np.ndarray:
    """Broadcast a configuration-cell array across velocity cell axes."""
    return arr.reshape(grid.conf.cells + (1,) * grid.vdim)
