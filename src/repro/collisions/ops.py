"""Shared helpers for collision operators: generic advection application
along one velocity axis with interior faces and zero-flux boundaries.

Collision kernels run through the same plan-cached engine
(:class:`~repro.kernels.grouped.GroupedOperator`) as the Vlasov update, on
cell-major state.  The face states are formed by weighting a velocity-axis
slice into a pooled contiguous buffer — the one pass the flux arithmetic
needs anyway — so the per-call ``np.ascontiguousarray`` halo copies of the
mode-major era are gone.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..engine.pool import ScratchPool

__all__ = ["axis_slice", "slice_aux", "apply_advection"]


def axis_slice(ndim: int, axis: int, sl: slice) -> Tuple:
    out = [slice(None)] * ndim
    out[axis] = sl
    return tuple(out)


def slice_aux(aux: Dict[str, object], cell_axis: int, sl: slice) -> Dict[str, object]:
    """Restrict aux symbol arrays to a face subset along one cell axis.

    ``cell_axis`` indexes the ``(*cfg, *vel)`` cell axes (aux arrays carry
    no basis axis).  Symbols that vary along the sliced axis (e.g. the
    cell-center velocity ``w{d}`` when the flux itself depends on ``v_d``,
    as in the LBO drag term) must be sliced consistently with the state
    arrays; broadcastable size-1 axes and scalars pass through unchanged.
    """
    out: Dict[str, object] = {}
    for name, val in aux.items():
        if isinstance(val, np.ndarray) and val.ndim > cell_axis and val.shape[cell_axis] > 1:
            out[name] = val[axis_slice(val.ndim, cell_axis, sl)]
        else:
            out[name] = val
    return out


def apply_advection(
    f: np.ndarray,
    aux: Dict[str, object],
    out: np.ndarray,
    vol,
    surf: Dict[Tuple[str, str], object],
    cdim: int,
    vel_dim: int,
    pool: ScratchPool,
    weights: Tuple[float, float] = (0.5, 0.5),
) -> None:
    """Accumulate a DG advection RHS along velocity dimension ``vel_dim`` of
    cell-major state ``(*cfg, Np, *vel)``.

    ``vol``/``surf`` are plan-cached :class:`GroupedOperator`s.  ``weights =
    (wL, wR)`` select the numerical flux: ``(0.5, 0.5)`` is central,
    ``(1, 0)``/``(0, 1)`` are the one-sided fluxes used by the LDG diffusion
    passes.  Domain boundary faces carry zero flux (interior faces only),
    which is the conservation-preserving velocity-space boundary condition.
    """
    vol.apply(f, aux, out)
    axis = cdim + 1 + vel_dim          # state array axis of this velocity dim
    cell_axis = cdim + vel_dim         # aux cell-axis of this velocity dim
    n = f.shape[axis]
    if n < 2:
        return
    w_l, w_r = weights
    ndim = f.ndim
    sl_lo = axis_slice(ndim, axis, slice(0, n - 1))
    sl_hi = axis_slice(ndim, axis, slice(1, n))
    aux_lo = slice_aux(aux, cell_axis, slice(0, n - 1))
    aux_hi = slice_aux(aux, cell_axis, slice(1, n))
    face_shape = f[sl_lo].shape
    # weighting the face trace writes it contiguous cell-major; the old
    # mode-major path needed an extra ascontiguousarray copy here
    f_face = pool.get("collops.face", face_shape)
    inc_left = pool.get("collops.incl", face_shape, zero=True)
    inc_right = pool.get("collops.incr", face_shape, zero=True)
    if w_l:
        np.multiply(f[sl_lo], w_l, out=f_face)
        surf[("L", "L")].apply(f_face, aux_lo, inc_left)
        surf[("R", "L")].apply(f_face, aux_lo, inc_right)
    if w_r:
        np.multiply(f[sl_hi], w_r, out=f_face)
        surf[("L", "R")].apply(f_face, aux_hi, inc_left)
        surf[("R", "R")].apply(f_face, aux_hi, inc_right)
    out[sl_lo] += inc_left
    out[sl_hi] += inc_right
