"""Shared helpers for collision operators: generic advection application
along one velocity axis with interior faces and zero-flux boundaries."""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..kernels.termset import TermSet

__all__ = ["axis_slice", "slice_aux", "apply_advection"]


def axis_slice(ndim: int, axis: int, sl: slice) -> Tuple:
    out = [slice(None)] * ndim
    out[axis] = sl
    return tuple(out)


def slice_aux(aux: Dict[str, object], cell_axis: int, sl: slice) -> Dict[str, object]:
    """Restrict aux symbol arrays to a face subset along one cell axis.

    Symbols that vary along the sliced axis (e.g. the cell-center velocity
    ``w{d}`` when the flux itself depends on ``v_d``, as in the LBO drag
    term) must be sliced consistently with the state arrays; broadcastable
    size-1 axes and scalars pass through unchanged.
    """
    out: Dict[str, object] = {}
    for name, val in aux.items():
        if isinstance(val, np.ndarray) and val.ndim > cell_axis and val.shape[cell_axis] > 1:
            out[name] = val[axis_slice(val.ndim, cell_axis, sl)]
        else:
            out[name] = val
    return out


def apply_advection(
    f: np.ndarray,
    aux: Dict[str, object],
    out: np.ndarray,
    vol: TermSet,
    surf: Dict[Tuple[str, str], TermSet],
    axis: int,
    weights: Tuple[float, float] = (0.5, 0.5),
) -> None:
    """Accumulate a DG advection RHS along one velocity axis.

    ``weights = (wL, wR)`` select the numerical flux: ``(0.5, 0.5)`` is
    central, ``(1, 0)``/``(0, 1)`` are the one-sided fluxes used by the LDG
    diffusion passes.  Domain boundary faces carry zero flux (interior faces
    only), which is the conservation-preserving velocity-space boundary
    condition.
    """
    vol.apply(f, aux, out)
    n = f.shape[axis]
    if n < 2:
        return
    w_l, w_r = weights
    sl_lo = axis_slice(f.ndim, axis, slice(0, n - 1))
    sl_hi = axis_slice(f.ndim, axis, slice(1, n))
    # aux arrays are cell shaped (one fewer leading axis than f)
    aux_lo = slice_aux(aux, axis - 1, slice(0, n - 1))
    aux_hi = slice_aux(aux, axis - 1, slice(1, n))
    f_left = np.ascontiguousarray(f[sl_lo]) * w_l
    f_right = np.ascontiguousarray(f[sl_hi]) * w_r
    inc_left = np.zeros_like(f_left)
    inc_right = np.zeros_like(f_left)
    if w_l:
        surf[("L", "L")].apply(f_left, aux_lo, inc_left)
        surf[("R", "L")].apply(f_left, aux_lo, inc_right)
    if w_r:
        surf[("L", "R")].apply(f_right, aux_hi, inc_left)
        surf[("R", "R")].apply(f_right, aux_hi, inc_right)
    out[sl_lo] += inc_left
    out[sl_hi] += inc_right
