"""Dougherty / Lenard–Bernstein (LBO) Fokker–Planck collision operator.

The paper's footnote 7 reports that the alias-free modal DG discretization of
this operator roughly doubles the cost of the spatial update (the
``~8e6`` vs ``1.67e7`` DOFs/s/core efficiency numbers).  The operator is

.. math::

   C[f] = \\nu \\, \\nabla_v \\cdot
          \\big[ (\\mathbf{v} - \\mathbf{u}) f + v_{th}^2 \\nabla_v f \\big],

with primitive moments :math:`\\mathbf{u}(x)` and :math:`v_{th}^2(x)`
obtained from the distribution by *weak division* (no aliasing), the drag
flux handled by the same CAS-generated volume/surface kernels as the Vlasov
acceleration (it is linear in ``v``), and the diffusion term by a two-pass
LDG scheme with alternating one-sided fluxes and exact weak multiplication
by :math:`v_{th}^2`.

Conservation: density is conserved to machine precision (all interior face
terms cancel; domain velocity boundaries are zero-flux).  Momentum and
energy are conserved up to the truncation of the velocity domain (Gkeyll
adds explicit boundary corrections; here the tests bound the residual).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..cas.poly import Poly
from ..engine.pool import ScratchPool
from ..grid.phase import PhaseGrid
from ..kernels.generator import (
    FluxSpec,
    FluxTerm,
    generate_surface_termsets,
    generate_volume_termset,
)
from ..kernels.grouped import GroupedOperator
from ..kernels.registry import get_vlasov_kernels
from ..kernels.vlasov import _cfg_poly_unnormalized
from ..moments.calc import MomentCalculator
from ..moments.weak_ops import weak_divide
from .ops import apply_advection

__all__ = ["LBOCollisions"]


class LBOCollisions:
    """Self-species Dougherty collisions with constant collisionality ``nu``.

    Parameters
    ----------
    phase_grid, poly_order, family:
        Discretization (must match the species' Vlasov solver).
    nu:
        Collision frequency (normalized).
    fixed_u, fixed_vtsq:
        Optional frozen primitive moments (cell-major configuration-space
        modal coefficient arrays: ``fixed_u`` is ``(vdim, *cfg, Npc)``,
        ``fixed_vtsq`` is ``(*cfg, Npc)``).  When omitted they are
        recomputed from ``f`` every evaluation (self-consistent collisions).
    """

    def __init__(
        self,
        phase_grid: PhaseGrid,
        poly_order: int,
        family: str = "serendipity",
        nu: float = 1.0,
        fixed_u: Optional[np.ndarray] = None,
        fixed_vtsq: Optional[np.ndarray] = None,
    ):
        self.grid = phase_grid
        self.nu = float(nu)
        self.poly_order = int(poly_order)
        self.family = family
        cdim, vdim = phase_grid.cdim, phase_grid.vdim
        self.kernels = get_vlasov_kernels(cdim, vdim, poly_order, family)
        self.basis = self.kernels.phase_basis
        self.cfg_basis = self.kernels.cfg_basis
        self.fixed_u = fixed_u
        self.fixed_vtsq = fixed_vtsq
        self._aux_base = phase_grid.base_aux()
        self._aux_base["nu"] = self.nu

        pdim = phase_grid.pdim
        npc = self.cfg_basis.num_basis
        # every generated termset executes through a plan-cached
        # GroupedOperator on cell-major state, sharing one scratch pool
        self.pool = ScratchPool()

        def _op(ts):
            return GroupedOperator(ts, cdim, vdim, pool=self.pool)

        # Drag kernels: flux alpha_j = nu * (u_j(x) - v_j) along velocity dim j
        self._drag_vol = []
        self._drag_surf = []
        for j in range(vdim):
            dv = cdim + j
            terms: List[FluxTerm] = [
                FluxTerm(sym=("nu", f"w{dv}"), poly=Poly.one(pdim), scale=-1.0),
                FluxTerm(
                    sym=("nu", f"half_dxv{dv}"), poly=Poly.variable(pdim, dv), scale=-1.0
                ),
            ]
            for k in range(npc):
                terms.append(
                    FluxTerm(
                        sym=("nu", f"u{j}_{k}"),
                        poly=_cfg_poly_unnormalized(pdim, self.cfg_basis.indices[k]),
                        scale=self.cfg_basis.norm(k),
                    )
                )
            spec = FluxSpec(dim=dv, terms=tuple(terms))
            self._drag_vol.append(_op(generate_volume_termset(self.basis, spec)))
            self._drag_surf.append(
                {
                    side: _op(ts)
                    for side, ts in generate_surface_termsets(self.basis, spec).items()
                }
            )
        # Diffusion kernels: unit advection along each velocity dim (LDG), and
        # weak multiplication by the config field vtsq.
        self._unit_vol = []
        self._unit_surf = []
        for j in range(vdim):
            dv = cdim + j
            spec = FluxSpec(
                dim=dv, terms=(FluxTerm(sym=(), poly=Poly.one(pdim)),)
            )
            self._unit_vol.append(_op(generate_volume_termset(self.basis, spec)))
            self._unit_surf.append(
                {
                    side: _op(ts)
                    for side, ts in generate_surface_termsets(self.basis, spec).items()
                }
            )
        from ..kernels.generator import generate_multiply_termset

        mult_terms = [
            FluxTerm(
                sym=(f"vtsq_{k}",),
                poly=_cfg_poly_unnormalized(pdim, self.cfg_basis.indices[k]),
                scale=self.cfg_basis.norm(k),
            )
            for k in range(npc)
        ]
        self._vtsq_mult = _op(generate_multiply_termset(self.basis, mult_terms))
        self._vtsq_estimate = 1.0  # refreshed on each rhs() for the CFL

    # ------------------------------------------------------------------ #
    def primitive_moments(self, f: np.ndarray, moments: MomentCalculator):
        """Weak-division primitive moments ``(u, vtsq)`` from ``f``
        (cell-major: ``u`` is ``(vdim, *cfg, Npc)``, ``vtsq`` ``(*cfg, Npc)``)."""
        if self.fixed_u is not None and self.fixed_vtsq is not None:
            return self.fixed_u, self.fixed_vtsq
        vdim = self.grid.vdim
        m0 = moments.compute("M0", f)
        m2 = moments.compute("M2", f)
        npc = self.cfg_basis.num_basis
        u = np.zeros((vdim,) + self.grid.conf.cells + (npc,))
        from ..moments.weak_ops import weak_multiply

        u_dot_m1 = np.zeros_like(m0)
        for j in range(vdim):
            m1 = moments.compute(f"M1{'xyz'[j]}", f)
            u[j] = weak_divide(m1, m0, self.cfg_basis)
            u_dot_m1 += weak_multiply(u[j], m1, self.cfg_basis)
        vtsq = weak_divide((m2 - u_dot_m1) / vdim, m0, self.cfg_basis)
        return u, vtsq

    # ------------------------------------------------------------------ #
    def rhs(
        self,
        f: np.ndarray,
        moments: MomentCalculator,
        out: Optional[np.ndarray] = None,
        accumulate: bool = False,
    ) -> np.ndarray:
        """Evaluate (or accumulate) ``C[f]``."""
        if out is None:
            out = np.zeros_like(f)
            accumulate = True  # freshly zeroed
        elif not accumulate:
            out.fill(0.0)
        g = self.grid
        cdim = g.cdim
        u, vtsq = self.primitive_moments(f, moments)
        phi0 = self.cfg_basis.norm(0)
        self._vtsq_estimate = max(float(np.max(np.abs(vtsq[..., 0]))) * phi0, 1e-30)
        aux: Dict[str, object] = dict(self._aux_base)
        for j in range(g.vdim):
            for k in range(self.cfg_basis.num_basis):
                aux[f"u{j}_{k}"] = g.conf_coefficient_array(u[j][..., k])
        for k in range(self.cfg_basis.num_basis):
            aux[f"vtsq_{k}"] = g.conf_coefficient_array(vtsq[..., k])

        # drag: central flux on interior velocity faces, zero-flux boundaries
        for j in range(g.vdim):
            apply_advection(
                f,
                aux,
                out,
                self._drag_vol[j],
                self._drag_surf[j],
                cdim,
                j,
                self.pool,
                weights=(0.5, 0.5),
            )
        # diffusion: two-pass LDG; grad uses right-biased flux, div left-biased
        for j in range(g.vdim):
            grad = self.pool.get("lbo.grad", f.shape, zero=True)
            apply_advection(
                f,
                aux,
                grad,
                self._unit_vol[j],
                self._unit_surf[j],
                cdim,
                j,
                self.pool,
                weights=(0.0, 1.0),
            )
            grad *= -1.0  # weak derivative = -(unit advection RHS)
            # multiply by vtsq(x) weakly (alias-free projection)
            vg = self.pool.get("lbo.vg", f.shape, zero=True)
            self._vtsq_mult.apply(grad, aux, vg)
            vg *= self.nu
            div = self.pool.get("lbo.div", f.shape, zero=True)
            apply_advection(
                vg,
                aux,
                div,
                self._unit_vol[j],
                self._unit_surf[j],
                cdim,
                j,
                self.pool,
                weights=(1.0, 0.0),
            )
            out -= div  # out += -(unit advection RHS)(vg) = +d(vg)/dv
        return out

    def max_frequency(self) -> float:
        """CFL estimate: drag ``nu (2p+1) vmax/dv`` plus parabolic diffusion
        limit ``nu vtsq (2p+1)^2 / dv^2`` per velocity direction."""
        g = self.grid
        p = self.poly_order
        freq = 0.0
        for j in range(g.vdim):
            dv = g.vel.dx[j]
            vmax = g.max_velocity(j)
            freq += self.nu * (2 * p + 1) * vmax / dv
            freq += self.nu * self._vtsq_estimate * (2 * p + 1) ** 2 / dv ** 2
        return freq
