"""Collision operators: Dougherty/LBO Fokker–Planck and BGK."""

from .bgk import BGKCollisions
from .lbo import LBOCollisions

__all__ = ["LBOCollisions", "BGKCollisions"]
