"""Stdlib HTTP client for a ``repro serve`` daemon.

Used by the ``repro submit`` / ``repro jobs`` CLI verbs and by tests; a
thin ``http.client`` wrapper (no third-party deps) that knows the job
API's dedup semantics and can stream a job's diagnostics incrementally.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from pathlib import Path
from typing import Dict, Iterator, Optional, Tuple, Union
from urllib.parse import urlsplit

from ..runtime.spec import SimulationSpec

__all__ = ["ServeError", "ServeClient"]

PathLike = Union[str, Path]


class ServeError(RuntimeError):
    """The serve daemon is unreachable or answered with an error."""


class ServeClient:
    """Client for one daemon, addressed by URL or by store directory."""

    def __init__(self, url: str, timeout: float = 30.0):
        parts = urlsplit(url if "//" in url else f"http://{url}")
        if parts.scheme not in ("http", ""):
            raise ServeError(f"unsupported scheme in {url!r} (http only)")
        if not parts.hostname:
            raise ServeError(f"no host in serve url {url!r}")
        self.host = parts.hostname
        self.port = parts.port or 80
        self.timeout = timeout

    @classmethod
    def from_dir(cls, root: PathLike, timeout: float = 30.0) -> "ServeClient":
        """Connect to the daemon serving ``root`` via its rendezvous file."""
        from .http import SERVE_INFO

        info_path = Path(root) / SERVE_INFO
        try:
            info = json.loads(info_path.read_text())
        except FileNotFoundError:
            raise ServeError(
                f"no running daemon for {root} (missing {info_path}; "
                "start one with `repro serve <dir>`)"
            )
        return cls(info["url"], timeout=timeout)

    # ------------------------------------------------------------------ #
    def _request(
        self, method: str, path: str, body: Optional[dict] = None
    ) -> Tuple[int, dict]:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            payload = None if body is None else json.dumps(body).encode()
            headers = {} if payload is None else {"Content-Type": "application/json"}
            try:
                conn.request(method, path, body=payload, headers=headers)
                resp = conn.getresponse()
                raw = resp.read()
            except (ConnectionError, OSError) as exc:
                raise ServeError(
                    f"cannot reach serve daemon at http://{self.host}:{self.port}: {exc}"
                ) from exc
            try:
                data = json.loads(raw) if raw else {}
            except json.JSONDecodeError:
                data = {"error": raw.decode(errors="replace")}
            return resp.status, data
        finally:
            conn.close()

    @staticmethod
    def _check(status: int, data: dict, what: str) -> dict:
        if status >= 400:
            raise ServeError(
                f"{what} failed ({status}): {data.get('error', data)}"
            )
        return data

    # ------------------------------------------------------------------ #
    def submit(
        self,
        spec: Optional[Union[SimulationSpec, dict]] = None,
        scenario: Optional[str] = None,
        overrides: Optional[Dict[str, object]] = None,
    ) -> dict:
        """Submit a spec (or a registered scenario + overrides).  Returns
        the response dict: ``job`` (content-hash id), ``compute``
        (``scheduled|attached|cached|requeued``), ``status``, ``submits``."""
        if (spec is None) == (scenario is None):
            raise ValueError("pass exactly one of spec= or scenario=")
        if scenario is not None:
            body: dict = {"scenario": scenario, "overrides": overrides or {}}
        elif isinstance(spec, SimulationSpec):
            body = spec.to_dict()
        else:
            body = dict(spec)
        status, data = self._request("POST", "/jobs", body)
        return self._check(status, data, "submit")

    def job(self, job_id: str) -> dict:
        status, data = self._request("GET", f"/jobs/{job_id}")
        return self._check(status, data, f"job {job_id}")

    def jobs(self) -> list:
        status, data = self._request("GET", "/jobs")
        return self._check(status, data, "jobs")["jobs"]

    def health(self) -> dict:
        status, data = self._request("GET", "/healthz")
        return self._check(status, data, "healthz")

    def metrics(self) -> dict:
        status, data = self._request("GET", "/metrics")
        return self._check(status, data, "metrics")

    def result(
        self,
        job_id: str,
        wait: bool = False,
        timeout: float = 300.0,
        poll: float = 0.2,
    ) -> dict:
        """The finished run summary; with ``wait`` polls until the job
        leaves the queue (raising on failure or timeout).  Without ``wait``
        a queued/running job yields its ``{"status": ...}`` dict instead."""
        deadline = time.monotonic() + timeout
        while True:
            status, data = self._request("GET", f"/jobs/{job_id}/result")
            if status < 400 and "status" not in data:
                return data
            if status == 409 and data.get("status") == "failed":
                raise ServeError(
                    f"job {job_id} failed: {data.get('error', 'unknown error')}"
                )
            if status == 409:
                if not wait:
                    return data
                if time.monotonic() > deadline:
                    raise ServeError(
                        f"timed out after {timeout:g}s waiting for job {job_id} "
                        f"(status: {data.get('status')})"
                    )
                time.sleep(poll)
                continue
            return self._check(status, data, f"result of {job_id}")

    def stream_diagnostics(self, job_id: str) -> Iterator[bytes]:
        """Yield the job's ``diagnostics.jsonl`` bytes as they are written;
        the iterator ends when the job reaches a terminal state.  The
        concatenation of the yielded chunks is byte-identical to the
        on-disk file."""
        conn = HTTPConnection(self.host, self.port, timeout=max(self.timeout, 600.0))
        try:
            try:
                conn.request("GET", f"/jobs/{job_id}/diagnostics")
                resp = conn.getresponse()
            except (ConnectionError, OSError) as exc:
                raise ServeError(
                    f"cannot reach serve daemon at http://{self.host}:{self.port}: {exc}"
                ) from exc
            if resp.status >= 400:
                raw = resp.read()
                try:
                    detail = json.loads(raw).get("error", "")
                except json.JSONDecodeError:
                    detail = raw.decode(errors="replace")
                raise ServeError(
                    f"diagnostics of {job_id} failed ({resp.status}): {detail}"
                )
            while True:
                chunk = resp.read(65536)
                if not chunk:
                    break
                yield chunk
        finally:
            conn.close()
