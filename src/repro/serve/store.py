"""Job store: content-addressed job records behind a pluggable protocol.

A **job** is one simulation keyed by the canonical content hash of its
spec (:func:`repro.serve.hash.spec_digest`).  The store holds the job's
normalized spec, lifecycle status (``queued -> running -> done|failed``),
timestamps, and result summary, and owns the directory where the run's
outputs (``diagnostics.jsonl``, ``checkpoint.npz``, ``result.json``) land.

:class:`JobStore` is the seam for alternative backends (object store,
Redis): everything the scheduler and HTTP layer touch goes through it.
:class:`FileJobStore` is the filesystem implementation — the same
primitives the campaign queue (PR 3) proved out:

* job metadata is a ``job.json`` per job, written atomically
  (``tmp + os.replace``) so readers never see a torn record;
* read-modify-write of metadata serializes through one short-lived
  :class:`~repro.dist.lease.LeaseLock` (``locks/store.lock``);
* the *run* claim is a per-job heartbeated lease
  (``locks/<digest>.lock``) with stale takeover, so a SIGKILLed worker's
  job returns to the claimable pool after ``lease_timeout`` seconds;
* every successful claim appends one line to ``claims.log`` (O_APPEND),
  the exact audit record of who ran what, how many times.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Tuple, Union

try:  # Protocol is 3.8+; keep the import local and degrade gracefully
    from typing import Protocol
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

from ..dist.lease import (
    CLAIMS_LOG,
    DEFAULT_LEASE_TIMEOUT,
    LOCK_DIR,
    LeaseLock,
    validate_lease_timeout,
)
from ..runtime.spec import SimulationSpec
from .hash import normalized_spec_dict, spec_digest

__all__ = [
    "JOB_STATUSES",
    "TERMINAL_STATUSES",
    "STOP_FILE",
    "JobStore",
    "FileJobStore",
]

PathLike = Union[str, Path]

JOB_STATUSES = ("queued", "running", "done", "failed")
TERMINAL_STATUSES = ("done", "failed")
#: drain sentinel: workers stop claiming new jobs once this file exists
STOP_FILE = "STOP"
_JOBS_DIR = "jobs"
_META = "job.json"
_OUT = "out"


class JobStore(Protocol):
    """What the scheduler and HTTP layer need from a store implementation.

    A conforming store keys jobs by spec content hash, serializes
    ``submit``/``update`` (so concurrent duplicate submissions create
    exactly one job), and hands out exclusive, crash-recoverable run
    claims.  ``FileJobStore`` is the filesystem implementation; an object
    store or Redis implementation plugs in here.
    """

    def submit(self, spec) -> Tuple[dict, str]: ...
    def get(self, job_id: str) -> Optional[dict]: ...
    def list_jobs(self) -> List[dict]: ...
    def update(self, job_id: str, mutate: Callable[[dict], None]) -> dict: ...
    def try_claim(self, job_id: str, worker: str) -> Optional[LeaseLock]: ...
    def counts(self) -> Dict[str, int]: ...
    def outdir(self, job_id: str) -> Path: ...
    def diagnostics_path(self, job_id: str) -> Path: ...
    def result_path(self, job_id: str) -> Path: ...


class FileJobStore:
    """Filesystem job store (see module docstring for the layout)."""

    def __init__(
        self, root: PathLike, lease_timeout: float = DEFAULT_LEASE_TIMEOUT
    ):
        self.root = Path(root)
        self.lease_timeout = validate_lease_timeout(lease_timeout)
        self.root.mkdir(parents=True, exist_ok=True)
        (self.root / _JOBS_DIR).mkdir(exist_ok=True)
        (self.root / LOCK_DIR).mkdir(exist_ok=True)

    # ------------------------------------------------------------------ #
    # paths
    # ------------------------------------------------------------------ #
    def job_dir(self, job_id: str) -> Path:
        return self.root / _JOBS_DIR / job_id

    def outdir(self, job_id: str) -> Path:
        """Where the job's Driver writes its outputs."""
        return self.job_dir(job_id) / _OUT

    def diagnostics_path(self, job_id: str) -> Path:
        return self.outdir(job_id) / "diagnostics.jsonl"

    def result_path(self, job_id: str) -> Path:
        return self.outdir(job_id) / "result.json"

    @property
    def claims_log(self) -> Path:
        return self.root / CLAIMS_LOG

    @property
    def stop_path(self) -> Path:
        return self.root / STOP_FILE

    # ------------------------------------------------------------------ #
    # drain sentinel
    # ------------------------------------------------------------------ #
    @property
    def draining(self) -> bool:
        return self.stop_path.exists()

    def request_stop(self) -> None:
        self.stop_path.touch()

    def clear_stop(self) -> None:
        try:
            self.stop_path.unlink()
        except FileNotFoundError:
            pass

    # ------------------------------------------------------------------ #
    # metadata (atomic job.json; mutations under the store lock)
    # ------------------------------------------------------------------ #
    def _meta_lock(self) -> LeaseLock:
        return LeaseLock(self.root / LOCK_DIR / "store.lock", self.lease_timeout)

    def _read(self, job_id: str) -> Optional[dict]:
        path = self.job_dir(job_id) / _META
        try:
            return json.loads(path.read_text())
        except FileNotFoundError:
            return None

    def _write(self, record: dict) -> None:
        path = self.job_dir(record["id"]) / _META
        tmp = path.with_suffix(".tmp")
        tmp.write_text(json.dumps(record, indent=2))
        os.replace(tmp, path)

    def resolve(self, job_id: str) -> Optional[str]:
        """Resolve a full digest or an unambiguous prefix (>= 8 chars) to
        a stored job id; ``None`` when unknown, ``ValueError`` when the
        prefix matches more than one job."""
        if (self.root / _JOBS_DIR / job_id / _META).exists():
            return job_id
        if len(job_id) < 8:
            return None
        matches = [
            p.name
            for p in (self.root / _JOBS_DIR).iterdir()
            if p.name.startswith(job_id)
        ]
        if len(matches) > 1:
            raise ValueError(f"job id prefix {job_id!r} is ambiguous")
        return matches[0] if matches else None

    def get(self, job_id: str) -> Optional[dict]:
        resolved = self.resolve(job_id)
        return self._read(resolved) if resolved else None

    def list_jobs(self) -> List[dict]:
        jobs = []
        for path in sorted((self.root / _JOBS_DIR).iterdir()):
            rec = self._read(path.name)
            if rec is not None:
                jobs.append(rec)
        jobs.sort(key=lambda r: (r.get("submitted") or 0.0, r["id"]))
        return jobs

    def counts(self) -> Dict[str, int]:
        out = {status: 0 for status in JOB_STATUSES}
        for rec in self.list_jobs():
            out[rec["status"]] = out.get(rec["status"], 0) + 1
        return out

    def update(self, job_id: str, mutate: Callable[[dict], None]) -> dict:
        """Read-modify-write one job record under the store lock."""
        with self._meta_lock():
            rec = self._read(job_id)
            if rec is None:
                raise KeyError(f"no job {job_id!r} in {self.root}")
            mutate(rec)
            self._write(rec)
        return rec

    # ------------------------------------------------------------------ #
    # submission (dedup by content hash)
    # ------------------------------------------------------------------ #
    def submit(self, spec: Union[SimulationSpec, dict]) -> Tuple[dict, str]:
        """Register a spec; returns ``(record, compute)`` where ``compute``
        describes what the submission cost:

        * ``"scheduled"`` — new job, queued for a worker;
        * ``"attached"``  — an identical job is already queued/running;
          the caller shares its id (and, eventually, its result);
        * ``"cached"``    — an identical job already finished; the result
          is served with zero compute;
        * ``"requeued"``  — an identical job failed earlier; this
          submission re-queues it for another attempt.
        """
        digest = spec_digest(spec)
        normalized = normalized_spec_dict(spec)
        now = time.time()
        with self._meta_lock():
            rec = self._read(digest)
            if rec is None:
                rec = {
                    "id": digest,
                    "name": normalized.get("name"),
                    "spec": normalized,
                    "status": "queued",
                    "submitted": now,
                    "started": None,
                    "finished": None,
                    "worker": None,
                    "attempts": 0,
                    "submits": 1,
                    "result": None,
                    "error": None,
                }
                self.job_dir(digest).mkdir(parents=True, exist_ok=True)
                self._write(rec)
                return rec, "scheduled"
            rec["submits"] = int(rec.get("submits", 0)) + 1
            if rec["status"] == "done":
                compute = "cached"
            elif rec["status"] == "failed":
                # resubmission of a failed job is an explicit retry request
                rec.update(
                    status="queued",
                    submitted=now,
                    started=None,
                    finished=None,
                    worker=None,
                    result=None,
                    last_error=rec.get("error"),
                    error=None,
                )
                compute = "requeued"
            else:
                compute = "attached"
            self._write(rec)
        return rec, compute

    # ------------------------------------------------------------------ #
    # run claims (exclusive, heartbeated, crash-recoverable)
    # ------------------------------------------------------------------ #
    def try_claim(self, job_id: str, worker: str) -> Optional[LeaseLock]:
        """Attempt an exclusive run claim on ``job_id``.

        Returns a *held* :class:`LeaseLock` (heartbeating) and transitions
        the job to ``running``, or ``None`` when the job is already claimed
        by a live worker or no longer runnable.  A stale lease (crashed
        claimant) is broken by the acquire, so its job is re-run — the
        lease's exclusivity guarantees by exactly one new claimant.
        """
        lock = LeaseLock(
            self.root / LOCK_DIR / f"{job_id}.lock", self.lease_timeout
        )
        if not lock.try_acquire():
            return None
        rec = self._read(job_id)
        if rec is None or rec["status"] not in ("queued", "running"):
            lock.release()
            return None
        self.update(
            job_id,
            lambda r: r.update(
                status="running",
                worker=worker,
                started=time.time(),
                attempts=int(r.get("attempts", 0)) + 1,
            ),
        )
        with open(self.claims_log, "a") as fh:
            fh.write(f"{job_id} {worker}\n")
        return lock

    def finish(self, job_id: str, result: Optional[dict], error: Optional[str]) -> dict:
        """Record a run outcome (``done`` with a result summary, or
        ``failed`` with an error string)."""
        status = "done" if error is None else "failed"
        return self.update(
            job_id,
            lambda r: r.update(
                status=status,
                result=result,
                error=error,
                finished=time.time(),
            ),
        )

    def flush(self) -> None:
        """Filesystem stores persist on every write; nothing buffered."""
