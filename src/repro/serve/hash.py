"""Canonical content hashing of simulation specs (result dedup keys).

The serving layer keys every job by a **canonical content hash** of the
submitted :class:`~repro.runtime.spec.SimulationSpec`: two submissions
that describe the same *physics and outputs* map to the same job, so the
second (and millionth) submission of a scan point returns the finished
result with zero compute.

What the hash deliberately ignores:

* ``backend`` / ``plan_mode`` / ``plan_cache`` — the repo-wide invariant
  (tested since PR 3/PR 6) is that every backend and kernel tier produces
  **bit-identical** results, so execution strategy is not part of the
  result's identity;
* ``observability`` — tracing never changes results (the CI obs-trace leg
  runs the whole suite under ``REPRO_OBS=trace``);
* output *paths* (``diagnostics.checkpoint_path`` / ``stream_path``) —
  the job store owns where results land.

Everything else — model, grids, species, initial conditions, collision
operators, ``poly_order``, CFL, stepper, ``t_end``/``steps``, diagnostics
*scheduling* — is part of the identity: changing any of it changes the
result stream, so it must produce a different job.
"""

from __future__ import annotations

import hashlib
import json
from typing import Dict, Mapping, Union

from ..runtime.spec import SimulationSpec

__all__ = ["normalized_spec_dict", "canonical_spec_dict", "spec_digest"]

#: execution-strategy fields excluded from the content hash (results are
#: bit-identical across them by construction)
NONSEMANTIC_FIELDS = ("backend", "plan_mode", "plan_cache", "observability")

SpecLike = Union[SimulationSpec, Mapping]


def _as_dict(spec: SpecLike) -> Dict:
    if isinstance(spec, SimulationSpec):
        return spec.to_dict()
    return SimulationSpec.from_dict(spec).to_dict()


def normalized_spec_dict(spec: SpecLike) -> Dict:
    """The spec dict a serve worker actually runs: output paths cleared so
    diagnostics/checkpoints land in the job's own directory (the store owns
    placement, not the submitter)."""
    data = _as_dict(spec)
    diag = dict(data.get("diagnostics") or {})
    diag["checkpoint_path"] = None
    diag["stream_path"] = None
    data["diagnostics"] = diag
    obs = dict(data.get("observability") or {})
    obs["trace_path"] = None
    obs["metrics_path"] = None
    data["observability"] = obs
    return data


def canonical_spec_dict(spec: SpecLike) -> Dict:
    """The semantic content of a spec: normalized, with execution-strategy
    fields dropped.  This is the dict the digest is computed over."""
    data = normalized_spec_dict(spec)
    for key in NONSEMANTIC_FIELDS:
        data.pop(key, None)
    return data


def spec_digest(spec: SpecLike) -> str:
    """SHA-256 over the canonical JSON encoding (sorted keys, compact
    separators) of the spec's semantic content.  Submissions that differ
    only in key order, backend, kernel tier, or observability settings
    produce the same digest."""
    payload = json.dumps(
        canonical_spec_dict(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(payload.encode()).hexdigest()
