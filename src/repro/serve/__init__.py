"""``repro.serve``: the job service — campaign queue promoted to a daemon.

The paper's workload is large parameter scans, and at serving scale
"millions of users mostly re-run the same scans": the highest-leverage
layer is a daemon that **content-hashes every submitted spec for result
dedup** and schedules the genuinely new ones onto persistent workers.
This package wires the prerequisites the earlier PRs built into one
service:

* :mod:`repro.serve.hash`      — canonical content hash of a
  JSON-round-trippable :class:`~repro.runtime.spec.SimulationSpec` (PR 1);
* :mod:`repro.serve.store`     — a :class:`JobStore` protocol (pluggable:
  filesystem now, object store/Redis later) keyed by that hash, built on
  the atomic-write + O_EXCL lease primitives of PR 3/PR 6;
* :mod:`repro.serve.scheduler` — persistent worker processes with the
  heartbeat/stale-takeover lease semantics of :mod:`repro.dist.lease`,
  so a SIGKILLed worker's job is re-run exactly once;
* :mod:`repro.serve.http`      — the ``repro serve`` daemon: submit /
  status / result endpoints plus a chunked incremental tail of the
  per-record-flushed ``diagnostics.jsonl`` (PR 2/PR 8), graceful SIGTERM
  drain, and :mod:`repro.obs` service metrics;
* :mod:`repro.serve.client`    — the stdlib client behind ``repro
  submit`` / ``repro jobs``.

Dedup contract (the acceptance invariant): submitting the same spec twice
runs **exactly one** simulation — the second response carries
``compute: "cached"`` (finished) or ``"attached"`` (in flight), and the
streamed diagnostics body is byte-identical to the on-disk file.
"""

from .client import ServeClient, ServeError  # noqa: F401
from .hash import canonical_spec_dict, normalized_spec_dict, spec_digest  # noqa: F401
from .http import ServeDaemon  # noqa: F401
from .scheduler import WorkerPool, run_job, worker_loop  # noqa: F401
from .store import FileJobStore, JobStore  # noqa: F401

__all__ = [
    "spec_digest",
    "canonical_spec_dict",
    "normalized_spec_dict",
    "JobStore",
    "FileJobStore",
    "WorkerPool",
    "worker_loop",
    "run_job",
    "ServeDaemon",
    "ServeClient",
    "ServeError",
]
