"""Job scheduler: persistent worker processes draining a job store.

Workers are real processes (forked when the platform allows, so they
inherit the parent's warm plan cache and generated-kernel registry) each
running :func:`worker_loop`: scan the store for runnable jobs, claim one
through the store's heartbeated lease (:meth:`FileJobStore.try_claim`),
run it with the ordinary :class:`~repro.runtime.driver.Driver` into the
job's own output directory, record the outcome, release the lease.

Crash recovery is the lease-file semantics proved out by the campaign
queue (PR 3): a SIGKILLed worker's heartbeat stops, its lease goes stale
after ``lease_timeout`` seconds, and the next scanning worker breaks it
and re-runs the job — exactly once, because breaking a stale lease
re-races through an exclusive create.  The re-run starts from a fresh
Driver, which truncates any partial ``diagnostics.jsonl``, so the
recovered job's output is byte-identical to an uninterrupted run.

Graceful drain: the daemon touches the store's ``STOP`` sentinel; workers
finish the job they currently hold, claim nothing further, and exit.
Queued-but-unclaimed jobs stay queued in the store and run when the
service next starts.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import signal
import socket
import time
from typing import List, Optional, Union

from ..dist.lease import DEFAULT_LEASE_TIMEOUT, validate_lease_timeout
from .store import FileJobStore, PathLike

__all__ = ["run_job", "worker_loop", "WorkerPool", "DEFAULT_POLL"]

DEFAULT_POLL = 0.2


def _worker_id() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


def run_job(store: FileJobStore, record: dict) -> dict:
    """Execute one claimed job: build the spec, run the Driver into the
    job's output directory, persist ``result.json``.  Returns the run
    summary.  (Import of the Driver is local so worker processes pay for
    the runtime stack only when they actually run something.)"""
    from ..runtime.driver import Driver
    from ..runtime.spec import SimulationSpec

    spec = SimulationSpec.from_dict(record["spec"])
    outdir = store.outdir(record["id"])
    # a re-run after a crash must not leave a stale result next to a
    # fresh diagnostics stream; the Driver itself truncates the stream
    try:
        store.result_path(record["id"]).unlink()
    except FileNotFoundError:
        pass
    driver = Driver(spec, outdir=outdir)
    try:
        result = driver.run()
    finally:
        driver.close()
    store.result_path(record["id"]).write_text(json.dumps(result, indent=2))
    return result


def worker_loop(
    root: PathLike,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    poll: float = DEFAULT_POLL,
    exit_when_idle: bool = False,
    max_jobs: Optional[int] = None,
) -> dict:
    """Claim and run jobs until drained (``STOP`` sentinel), idle (when
    ``exit_when_idle``), or ``max_jobs`` have been attempted.

    Runnable jobs are those ``queued``, plus ``running`` jobs whose lease
    went stale (crashed claimant).  A live claimant's lease never yields,
    so no job runs twice concurrently.  Returns ``{"ran": [...],
    "failed": [...]}`` for this worker.
    """
    store = FileJobStore(root, validate_lease_timeout(lease_timeout))
    me = _worker_id()
    ran: List[str] = []
    failed: List[str] = []
    while max_jobs is None or len(ran) + len(failed) < max_jobs:
        if store.draining:
            break
        claimed: Optional[dict] = None
        lock = None
        for rec in store.list_jobs():
            if rec["status"] not in ("queued", "running"):
                continue
            lock = store.try_claim(rec["id"], me)
            if lock is None:
                continue
            claimed = store.get(rec["id"])
            break
        if claimed is None:
            if exit_when_idle:
                break
            time.sleep(poll)
            continue
        try:
            try:
                result = run_job(store, claimed)
                store.finish(claimed["id"], result, None)
                ran.append(claimed["id"])
            except Exception as exc:  # noqa: BLE001 - recorded per job
                store.finish(
                    claimed["id"], None, f"{type(exc).__name__}: {exc}"
                )
                failed.append(claimed["id"])
        finally:
            lock.release()
    return {"ran": ran, "failed": failed}


def _worker_main(
    root: str, lease_timeout: float, poll: float
) -> None:
    """Entry point of a pool worker process.

    SIGINT is ignored: an interactive Ctrl-C lands on the whole process
    group, and drain must stay the parent's decision (it writes the STOP
    sentinel and joins).  SIGTERM keeps its default (kill) so an operator
    can still shoot an individual worker — its job is then recovered via
    the stale-lease takeover.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    worker_loop(root, lease_timeout=lease_timeout, poll=poll)


class WorkerPool:
    """A fixed pool of persistent worker processes over one store root."""

    def __init__(
        self,
        root: PathLike,
        workers: int = 2,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        poll: float = DEFAULT_POLL,
    ):
        if workers < 1:
            raise ValueError(f"need at least one worker, got {workers}")
        self.root = str(root)
        self.workers = int(workers)
        self.lease_timeout = validate_lease_timeout(lease_timeout)
        self.poll = float(poll)
        self._procs: List[mp.Process] = []

    def start(self) -> "WorkerPool":
        if self._procs:
            return self
        ctx = (
            mp.get_context("fork")
            if "fork" in mp.get_all_start_methods()
            else mp.get_context()
        )
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(self.root, self.lease_timeout, self.poll),
                daemon=False,
                name=f"repro-serve-worker-{i}",
            )
            for i in range(self.workers)
        ]
        for p in self._procs:
            p.start()
        return self

    def alive(self) -> int:
        return sum(1 for p in self._procs if p.is_alive())

    def pids(self) -> List[int]:
        return [p.pid for p in self._procs if p.pid is not None]

    def join(self, timeout: Optional[float] = None) -> bool:
        """Wait for every worker to exit (the STOP sentinel must already be
        in place for them to want to).  Returns True when all exited."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for p in self._procs:
            remaining = (
                None if deadline is None else max(deadline - time.monotonic(), 0.0)
            )
            p.join(remaining)
        done = all(not p.is_alive() for p in self._procs)
        if done:
            self._procs = []
        return done

    def terminate(self) -> None:
        """Hard-stop every worker (their in-flight jobs become stale leases
        and will be recovered by the next pool)."""
        for p in self._procs:
            if p.is_alive():
                p.terminate()
        self.join(timeout=5.0)
        self._procs = []
