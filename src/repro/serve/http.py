"""The ``repro serve`` daemon: HTTP job service over a job store.

Zero-dependency (stdlib ``http.server`` threading) serving layer:

* ``POST /jobs``                 — submit a spec (full ``SimulationSpec``
  JSON, or ``{"scenario": name, "overrides": {...}}``); responds with the
  content-hash job id and ``compute`` ∈ ``scheduled | attached | cached |
  requeued`` (dedup semantics live in :meth:`FileJobStore.submit`);
* ``GET /jobs``                  — job listing;
* ``GET /jobs/<id>``             — one job's record (id or >= 8-char prefix);
* ``GET /jobs/<id>/result``      — the finished run summary (409 + status
  while queued/running, the recorded error when failed);
* ``GET /jobs/<id>/diagnostics`` — **chunked incremental tail** of the
  job's ``diagnostics.jsonl``: bytes stream as the per-record-flushed
  writer appends them, and the response ends when the job reaches a
  terminal state — the streamed body is byte-identical to the on-disk
  file;
* ``GET /healthz``, ``GET /metrics`` — liveness + the service's own
  :mod:`repro.obs` metrics (jobs submitted/deduped/completed/failed,
  queue-depth gauge, time-to-first-result histogram).

Graceful drain: SIGTERM (or :meth:`ServeDaemon.drain`) stops accepting
submissions (503), touches the store's STOP sentinel so workers finish
exactly the jobs they hold, joins the pool, flushes a final metrics
snapshot to ``<root>/metrics.jsonl`` (readable by ``repro report``), and
shuts the listener down.
"""

from __future__ import annotations

import json
import os
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Dict, Optional

from ..dist.lease import DEFAULT_LEASE_TIMEOUT, validate_lease_timeout
from ..obs.metrics import MetricsRegistry
from ..runtime.errors import SpecError
from ..runtime.spec import SimulationSpec
from .scheduler import DEFAULT_POLL, WorkerPool
from .store import TERMINAL_STATUSES, FileJobStore, PathLike

__all__ = ["ServeDaemon", "SERVE_INFO"]

#: daemon rendezvous file in the store root: host/port/pid of the live
#: server, so clients can find it knowing only the directory
SERVE_INFO = "serve.json"


class ServeDaemon:
    """One serving instance: HTTP listener + worker pool + telemetry."""

    def __init__(
        self,
        root: PathLike,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int = 2,
        lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
        poll: float = DEFAULT_POLL,
    ):
        self.host = host
        self.port = int(port)
        self.poll = float(poll)
        self.lease_timeout = validate_lease_timeout(lease_timeout)
        self.store = FileJobStore(root, self.lease_timeout)
        self.pool = WorkerPool(
            root, workers=workers, lease_timeout=self.lease_timeout, poll=poll
        )
        self.metrics = MetricsRegistry()
        self.draining = False
        self._metrics_mu = threading.Lock()
        self._seen: Dict[str, str] = {}
        self._server: Optional[ThreadingHTTPServer] = None
        self._threads: list = []
        self._stop = threading.Event()
        self._started = None

    # ------------------------------------------------------------------ #
    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def info_path(self) -> Path:
        return self.store.root / SERVE_INFO

    def start(self) -> "ServeDaemon":
        """Bind, spawn workers, start the monitor; returns immediately."""
        if self._server is not None:
            return self
        # a daemon restarting over a previously drained store must accept
        # work again: clear the drain sentinel before workers start
        self.store.clear_stop()
        server = ThreadingHTTPServer((self.host, self.port), _Handler)
        server.daemon_threads = True
        server.repro_daemon = self  # type: ignore[attr-defined]
        self.port = server.server_address[1]
        self._server = server
        self._started = time.monotonic()
        self.pool.start()
        t_http = threading.Thread(
            target=server.serve_forever, name="repro-serve-http", daemon=True
        )
        t_mon = threading.Thread(
            target=self._monitor, name="repro-serve-monitor", daemon=True
        )
        t_http.start()
        t_mon.start()
        self._threads = [t_http, t_mon]
        self.info_path.write_text(
            json.dumps(
                {
                    "host": self.host,
                    "port": self.port,
                    "url": self.url,
                    "pid": os.getpid(),
                    "workers": self.pool.workers,
                }
            )
        )
        return self

    def drain(self, timeout: Optional[float] = 60.0) -> bool:
        """Graceful shutdown: refuse new submissions, let workers finish
        the jobs they hold, flush telemetry, stop the listener.  Returns
        True when every worker exited within ``timeout``."""
        if self._server is None:
            return True
        self.draining = True
        self.store.request_stop()
        clean = self.pool.join(timeout)
        if not clean:  # pragma: no cover - stuck worker safety valve
            self.pool.terminate()
        self._stop.set()
        # jobs that finished after the monitor's last tick (typical during
        # the join above) must still land in the final snapshot
        self._observe()
        self._flush_metrics(final=True)
        self._server.shutdown()
        self._server.server_close()
        self._server = None
        try:
            self.info_path.unlink()
        except FileNotFoundError:
            pass
        return clean

    close = drain

    def run(self) -> int:
        """Blocking entry point for the CLI: install signal handlers,
        serve until SIGTERM/SIGINT, drain.  Returns an exit code."""
        done = threading.Event()

        def _request_drain(signum, frame):
            done.set()

        previous = {
            sig: signal.signal(sig, _request_drain)
            for sig in (signal.SIGTERM, signal.SIGINT)
        }
        try:
            self.start()
            done.wait()
            return 0 if self.drain() else 1
        finally:
            for sig, handler in previous.items():
                signal.signal(sig, handler)

    # ------------------------------------------------------------------ #
    # submissions (called from HTTP handler threads)
    # ------------------------------------------------------------------ #
    def submit(self, payload: dict):
        """Build a spec from a request payload and register it."""
        if not isinstance(payload, dict):
            raise SpecError("body", f"expected a JSON object, got {payload!r}")
        if "scenario" in payload:
            from ..runtime.scenarios import build

            overrides = payload.get("overrides") or {}
            if not isinstance(overrides, dict):
                raise SpecError(
                    "body.overrides", f"expected an object, got {overrides!r}"
                )
            spec = build(payload["scenario"], **overrides)
        else:
            spec = SimulationSpec.from_dict(payload)
        record, compute = self.store.submit(spec)
        with self._metrics_mu:
            self.metrics.add("jobs_submitted")
            if compute in ("cached", "attached"):
                self.metrics.add("jobs_deduped")
        return record, compute

    # ------------------------------------------------------------------ #
    # telemetry (monitor thread)
    # ------------------------------------------------------------------ #
    def _monitor(self) -> None:
        last_flushed: Optional[dict] = None
        while not self._stop.wait(self.poll):
            snap = self._observe()
            if snap != last_flushed:
                self._flush_metrics(snapshot=snap)
                last_flushed = snap

    def _observe(self) -> dict:
        """Fold the store's current state into the service metrics."""
        jobs = self.store.list_jobs()
        with self._metrics_mu:
            self.metrics.gauge_set(
                "queue_depth",
                sum(1 for r in jobs if r["status"] == "queued"),
            )
            for rec in jobs:
                status = rec["status"]
                if (
                    status in TERMINAL_STATUSES
                    and self._seen.get(rec["id"]) != status
                ):
                    if status == "done":
                        self.metrics.add("jobs_completed")
                        if rec.get("finished") and rec.get("submitted"):
                            self.metrics.observe_ttfr_ms(
                                (rec["finished"] - rec["submitted"]) * 1e3
                            )
                    else:
                        self.metrics.add("jobs_failed")
                self._seen[rec["id"]] = status
            return self.metrics.snapshot()

    def _flush_metrics(self, snapshot: Optional[dict] = None, final: bool = False) -> None:
        if snapshot is None:
            with self._metrics_mu:
                snapshot = self.metrics.snapshot()
        rec = {
            "time": (
                0.0 if self._started is None
                else time.monotonic() - self._started
            ),
            "jobs": self.store.counts(),
            "metrics": snapshot,
        }
        if final:
            rec["final"] = True
        with open(self.store.root / "metrics.jsonl", "a") as fh:
            fh.write(json.dumps(rec) + "\n")
            fh.flush()
            if final:
                os.fsync(fh.fileno())


# ---------------------------------------------------------------------- #
class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serve/1.0"
    protocol_version = "HTTP/1.1"

    @property
    def daemon(self) -> ServeDaemon:
        return self.server.repro_daemon  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        pass  # the service is quiet; telemetry goes to metrics.jsonl

    # ------------------------------------------------------------------ #
    def _send_json(self, code: int, payload: dict) -> None:
        body = (json.dumps(payload, indent=2) + "\n").encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise SpecError("body", "empty request body (expected JSON)")
        try:
            return json.loads(raw)
        except json.JSONDecodeError as exc:
            raise SpecError("body", f"invalid JSON: {exc}") from exc

    def _job_or_404(self, job_id: str) -> Optional[dict]:
        try:
            rec = self.daemon.store.get(job_id)
        except ValueError as exc:  # ambiguous prefix
            self._send_json(400, {"error": str(exc)})
            return None
        if rec is None:
            self._send_json(404, {"error": f"no job {job_id!r}"})
            return None
        return rec

    # ------------------------------------------------------------------ #
    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        if self.path.rstrip("/") != "/jobs":
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})
            return
        if self.daemon.draining:
            self._send_json(503, {"error": "draining: not accepting jobs"})
            return
        try:
            payload = self._read_body()
            record, compute = self.daemon.submit(payload)
        except SpecError as exc:
            self._send_json(400, {"error": str(exc)})
            return
        self._send_json(
            201 if compute == "scheduled" else 200,
            {
                "job": record["id"],
                "compute": compute,
                "status": record["status"],
                "submits": record["submits"],
            },
        )

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        parts = [p for p in self.path.split("?")[0].split("/") if p]
        if parts == ["healthz"]:
            self._send_json(
                200,
                {
                    "status": "draining" if self.daemon.draining else "ok",
                    "workers_alive": self.daemon.pool.alive(),
                },
            )
        elif parts == ["metrics"]:
            with self.daemon._metrics_mu:
                snap = self.daemon.metrics.snapshot()
            self._send_json(
                200, {"jobs": self.daemon.store.counts(), "metrics": snap}
            )
        elif parts == ["jobs"]:
            jobs = [
                {k: v for k, v in rec.items() if k != "spec"}
                for rec in self.daemon.store.list_jobs()
            ]
            self._send_json(200, {"jobs": jobs})
        elif len(parts) == 2 and parts[0] == "jobs":
            rec = self._job_or_404(parts[1])
            if rec is not None:
                self._send_json(200, rec)
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "result":
            rec = self._job_or_404(parts[1])
            if rec is None:
                return
            if rec["status"] == "done":
                self._send_json(200, rec["result"])
            elif rec["status"] == "failed":
                self._send_json(
                    409, {"status": "failed", "error": rec.get("error")}
                )
            else:
                self._send_json(409, {"status": rec["status"]})
        elif len(parts) == 3 and parts[0] == "jobs" and parts[2] == "diagnostics":
            rec = self._job_or_404(parts[1])
            if rec is not None:
                self._stream_diagnostics(rec)
        else:
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})

    # ------------------------------------------------------------------ #
    def _stream_diagnostics(self, rec: dict) -> None:
        """Chunked tail of the job's diagnostics.jsonl until it is both
        fully sent and the job is terminal.  Byte-identical to the file:
        the loop only ever forwards raw bytes, in order."""
        daemon = self.daemon
        store = daemon.store
        job_id = rec["id"]
        path = store.diagnostics_path(job_id)
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.send_header("Connection", "close")
        self.end_headers()
        self.close_connection = True
        pos = 0
        try:
            while True:
                # status *before* the read: anything written before the
                # terminal status was recorded is caught by this read
                current = store.get(job_id) or rec
                terminal = current["status"] in TERMINAL_STATUSES
                chunk = b""
                if path.exists():
                    with open(path, "rb") as fh:
                        fh.seek(pos)
                        chunk = fh.read(1 << 20)
                if chunk:
                    pos += len(chunk)
                    self.wfile.write(b"%x\r\n" % len(chunk) + chunk + b"\r\n")
                    self.wfile.flush()
                    continue
                if terminal:
                    break
                if daemon.draining and current["status"] == "queued":
                    break  # this job will not start during a drain
                time.sleep(daemon.poll)
            self.wfile.write(b"0\r\n\r\n")
        except (BrokenPipeError, ConnectionResetError):
            pass  # client went away mid-stream
