"""Exact 1-D DG electrostatic solve (Vlasov–Poisson substrate).

In one configuration dimension Gauss's law ``dE/dx = rho/eps0`` determines
``E`` up to a constant, fixed here by a zero domain mean (periodic domain,
neutral plasma).  Because the DG charge density is piecewise polynomial, the
antiderivative is computed *exactly* cell by cell via Legendre antiderivative
recurrences and projected back onto the modal basis — no linear solve, no
quadrature, in the same spirit as the rest of the scheme.
"""

from __future__ import annotations

import numpy as np

from ..basis.modal import ModalBasis
from ..grid.cartesian import Grid

__all__ = ["Poisson1D"]


class Poisson1D:
    """Zero-mean periodic electrostatic field from the charge density."""

    def __init__(self, grid: Grid, basis: ModalBasis, epsilon0: float = 1.0):
        if grid.ndim != 1 or basis.ndim != 1:
            raise ValueError("Poisson1D requires a 1-D configuration space")
        self.grid = grid
        self.basis = basis
        self.epsilon0 = float(epsilon0)
        p = basis.poly_order
        self._norms = np.array([basis.norm(l) for l in range(p + 1)])

    def solve(self, rho: np.ndarray, neutral_tol: float = 1e-8) -> np.ndarray:
        """Return modal coefficients of ``E_x`` with zero domain mean.

        Parameters
        ----------
        rho:
            Charge density coefficients, cell-major ``(nx, Npc)``.
        neutral_tol:
            Absolute net-charge guard.  Periodicity requires a neutral
            domain; roundoff-level residuals are redistributed uniformly,
            anything larger raises.

        Returns
        -------
        Cell-major ``(nx, Npc)`` coefficients of ``E_x``.
        """
        # the Legendre antiderivative recurrences below index the degree on
        # axis 0; the conf-space arrays are tiny (1-D), so work mode-major
        # internally and flip at the boundary
        rho = np.ascontiguousarray(rho.T)
        npc, nx = rho.shape
        dx = self.grid.dx[0]
        # Legendre series of rho per cell: c_n = rho_n * norm_n
        c = rho * self._norms[:, None]
        # antiderivative in the reference coordinate: B = legint(c)
        b = np.polynomial.legendre.legint(c, axis=0)  # (npc+1, nx)
        ones = np.polynomial.legendre.legval(1.0, b, tensor=True)
        mones = np.polynomial.legendre.legval(-1.0, b, tensor=True)
        cell_charge = 0.5 * dx * (ones - mones)  # int_cell rho dx
        total = float(cell_charge.sum())
        if abs(total) > neutral_tol:
            raise ValueError(
                f"periodic Poisson solve requires a neutral domain; net charge "
                f"{total:.3e} exceeds {neutral_tol:.1e}"
            )
        cell_charge = cell_charge - total / nx  # redistribute roundoff
        # left-edge field values: cumulative charge / eps0
        e_edge = np.concatenate([[0.0], np.cumsum(cell_charge)[:-1]]) / self.epsilon0
        # in-cell field as a Legendre series:
        # E(xi) = e_edge + (dx/2)(B(xi) - B(-1)) / eps0
        series = 0.5 * dx * b / self.epsilon0
        series[0] += e_edge - 0.5 * dx * mones / self.epsilon0
        # project onto the orthonormal modal basis:  E_l = g_l / norm_l
        e_modal = np.zeros_like(rho)
        for l in range(npc):
            e_modal[l] = series[l] / self._norms[l]
        # enforce zero domain mean through the constant mode
        mean = e_modal[0].mean()
        e_modal[0] -= mean
        return np.ascontiguousarray(e_modal.T)
