"""Field equation solvers (Maxwell, Poisson)."""

from .maxwell import COMPONENT_NAMES, MaxwellSolver

__all__ = ["MaxwellSolver", "COMPONENT_NAMES"]
