"""Modal DG solver for (perfectly hyperbolic) Maxwell's equations.

State layout: **cell-major** ``(*cfg_cells, 8, Npc)`` with components
``(Ex, Ey, Ez, Bx, By, Bz, phi, psi)`` on the second-to-last axis — the
per-cell coefficient blocks are contiguous (the batched products below are
plain ``matmul`` on the trailing axes) and a halo slab along a
configuration axis is a contiguous span.  The equations (normalized,
:math:`\\epsilon_0 = \\mu_0 = 1` by default):

.. math::

   \\partial_t \\mathbf{E} &= c^2 \\nabla \\times \\mathbf{B}
        + \\chi_e c^2 \\nabla \\phi - \\mathbf{J}/\\epsilon_0, \\\\
   \\partial_t \\mathbf{B} &= -\\nabla \\times \\mathbf{E} + \\chi_m \\nabla \\psi, \\\\
   \\partial_t \\phi &= \\chi_e (\\nabla \\cdot \\mathbf{E} - \\rho_c/\\epsilon_0), \\\\
   \\partial_t \\psi &= \\chi_m c^2 \\nabla \\cdot \\mathbf{B},

with the divergence-cleaning speeds ``chi_e``/``chi_m`` zero by default.
With **central fluxes** the semi-discrete field energy changes only through
the :math:`J \\cdot E` work term, which pairs exactly with the particle
energy equation of the alias-free Vlasov update — total energy is conserved
(paper Sec. II).  Upwind (Rusanov) fluxes are available for damping of
under-resolved waves at the cost of that exact conservation.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..basis.matrices import derivative_matrix, face_matrices
from ..basis.modal import ModalBasis
from ..grid.cartesian import Grid

__all__ = ["MaxwellSolver", "COMPONENT_NAMES", "project_em_components"]

COMPONENT_NAMES = ("Ex", "Ey", "Ez", "Bx", "By", "Bz", "phi", "psi")


def project_em_components(grid, basis, funcs) -> "np.ndarray":
    """L2-project callables ``{component name: f(*coords)}`` onto the
    8-component cell-major EM layout; missing components are zero.

    The single projection used for field initial conditions and for
    external-drive spatial profiles (any field block)."""
    from ..projection import project_conf_function

    q = np.zeros(grid.cells + (8, basis.num_basis))
    for name, fn in funcs.items():
        comp = COMPONENT_NAMES.index(name)
        q[..., comp, :] = project_conf_function(fn, grid, basis)
    return q

# flux matrices: FLUX[d] maps state -> flux of each component along x_d,
# as a list of (target_component, source_component, coefficient_kind)
# where coefficient kinds are resolved with c at solver construction.


def _flux_entries(c: float, chi_e: float, chi_m: float):
    c2 = c * c
    # component indices
    EX, EY, EZ, BX, BY, BZ, PHI, PSI = range(8)
    flux = {0: [], 1: [], 2: []}
    # dE/dt = c^2 curl B  => flux_d entries
    flux[1].append((EX, BZ, -c2))
    flux[2].append((EX, BY, +c2))
    flux[0].append((EY, BZ, +c2))
    flux[2].append((EY, BX, -c2))
    flux[0].append((EZ, BY, -c2))
    flux[1].append((EZ, BX, +c2))
    # dB/dt = -curl E
    flux[1].append((BX, EZ, +1.0))
    flux[2].append((BX, EY, -1.0))
    flux[0].append((BY, EZ, -1.0))
    flux[2].append((BY, EX, +1.0))
    flux[0].append((BZ, EY, +1.0))
    flux[1].append((BZ, EX, -1.0))
    if chi_e:
        for d, e in enumerate((EX, EY, EZ)):
            flux[d].append((e, PHI, -chi_e * c2))
            flux[d].append((PHI, e, -chi_e))
    if chi_m:
        for d, b in enumerate((BX, BY, BZ)):
            flux[d].append((b, PSI, -chi_m))
            flux[d].append((PSI, b, -chi_m * c2))
    return flux


class MaxwellSolver:
    """DG discretization of Maxwell's equations on the configuration grid.

    Parameters
    ----------
    grid:
        Configuration-space grid (periodic).
    basis:
        Configuration-space modal basis (shared with the kinetic solver).
    light_speed, epsilon0:
        Physical constants (normalized defaults).
    flux:
        ``"central"`` (energy conserving) or ``"upwind"`` (Rusanov at speed c).
    chi_e, chi_m:
        Perfectly-hyperbolic divergence-cleaning speeds (0 disables).
    """

    def __init__(
        self,
        grid: Grid,
        basis: ModalBasis,
        light_speed: float = 1.0,
        epsilon0: float = 1.0,
        flux: str = "central",
        chi_e: float = 0.0,
        chi_m: float = 0.0,
    ):
        if flux not in ("central", "upwind"):
            raise ValueError("flux must be 'central' or 'upwind'")
        if basis.ndim != grid.ndim:
            raise ValueError("basis and grid dimensionality mismatch")
        self.grid = grid
        self.basis = basis
        self.c = float(light_speed)
        self.epsilon0 = float(epsilon0)
        self.flux = flux
        self.chi_e = float(chi_e)
        self.chi_m = float(chi_m)
        self.num_basis = basis.num_basis
        ndim = grid.ndim
        self._flux_entries = _flux_entries(self.c, self.chi_e, self.chi_m)
        # transposed operator matrices: cell-major blocks right-multiply
        # (``g @ D^T`` batches over cells and components in one matmul)
        self._deriv_t = [derivative_matrix(basis, d).T.copy() for d in range(ndim)]
        self._faces_t = [
            {side: m.T.copy() for side, m in face_matrices(basis, d).items()}
            for d in range(ndim)
        ]
        self._rdx = [2.0 / dx for dx in grid.dx]

    # ------------------------------------------------------------------ #
    def allocate(self) -> np.ndarray:
        return np.zeros(self.grid.cells + (8, self.num_basis))

    def _apply_flux_jacobian(self, q: np.ndarray, d: int) -> np.ndarray:
        """Compute ``A_d q`` component-wise (sparse in components)."""
        out = np.zeros_like(q)
        for tgt, src, coeff in self._flux_entries[d]:
            out[..., tgt, :] += coeff * q[..., src, :]
        return out

    def rhs(
        self,
        q: np.ndarray,
        current: Optional[np.ndarray] = None,
        charge_density: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Evaluate ``dq/dt``.

        Parameters
        ----------
        q:
            Field state, cell-major ``(*cfg_cells, 8, Npc)``.
        current:
            Optional plasma current ``(*cfg_cells, 3, Npc)`` (enters as
            ``-J/epsilon0`` in the E equations).
        charge_density:
            Optional ``(*cfg_cells, Npc)`` for the phi cleaning source.
        """
        if out is None:
            out = np.zeros_like(q)
        else:
            out.fill(0.0)
        ndim = self.grid.ndim
        for d in range(ndim):
            rdx = self._rdx[d]
            g = self._apply_flux_jacobian(q, d)
            # volume: out[cell, c] += rdx * g[cell, c] @ D_d^T (batched matmul)
            out += rdx * np.matmul(g, self._deriv_t[d])
            # surfaces (periodic): face i between cells i and i+1 along the
            # leading configuration axis d
            axis = d
            g_left = 0.5 * g
            g_right = 0.5 * np.roll(g, -1, axis=axis)
            fm = self._faces_t[d]
            inc_left = np.matmul(g_left, fm[("L", "L")])
            inc_left += np.matmul(g_right, fm[("L", "R")])
            inc_right = np.matmul(g_left, fm[("R", "L")])
            inc_right += np.matmul(g_right, fm[("R", "R")])
            if self.flux == "upwind":
                tau = self._max_speed()
                jump_l = 0.5 * tau * q
                jump_r = -0.5 * tau * np.roll(q, -1, axis=axis)
                inc_left += np.matmul(jump_l, fm[("L", "L")])
                inc_left += np.matmul(jump_r, fm[("L", "R")])
                inc_right += np.matmul(jump_l, fm[("R", "L")])
                inc_right += np.matmul(jump_r, fm[("R", "R")])
            out += rdx * inc_left
            out += rdx * np.roll(inc_right, 1, axis=axis)
        if current is not None:
            out[..., 0:3, :] -= current / self.epsilon0
        if charge_density is not None and self.chi_e:
            out[..., 6, :] -= self.chi_e * charge_density / self.epsilon0
        return out

    def _max_speed(self) -> float:
        return self.c * max(1.0, self.chi_e, self.chi_m)

    # ------------------------------------------------------------------ #
    def field_energy(self, q: np.ndarray) -> float:
        """Total EM energy ``(eps0/2) int (|E|^2 + c^2 |B|^2) dx``.

        By orthonormality, the cell integral of a squared DG field is the
        squared coefficient norm times the cell Jacobian.
        """
        jac = float(np.prod([0.5 * dx for dx in self.grid.dx]))
        e2 = float(np.sum(q[..., 0:3, :] ** 2))
        b2 = float(np.sum(q[..., 3:6, :] ** 2))
        return 0.5 * self.epsilon0 * (e2 + self.c ** 2 * b2) * jac

    def max_frequency(self) -> float:
        """CFL frequency for the EM waves."""
        p = self.basis.poly_order
        return sum(
            (2 * p + 1) * self._max_speed() / dx for dx in self.grid.dx
        )

    def project_initial_condition(self, funcs: Dict[str, object]) -> np.ndarray:
        """L2-project callables ``{component name: f(*coords)}`` onto the
        basis; missing components are zero."""
        return project_em_components(self.grid, self.basis, funcs)
