"""Energy bookkeeping: the observable the alias-free construction protects.

For the Vlasov–Maxwell system there is no evolved energy variable; the total
energy splits into the :math:`|v|^2` moment of each distribution function
plus the L2 norm of the electromagnetic field, exchanged through
:math:`J \\cdot E` (paper Eq. 9).  :class:`EnergyHistory` records these
pieces every step so tests and benchmarks can verify (a) exact conservation
with central fluxes and (b) the kinetic -> electromagnetic -> thermal
conversion in the instability runs of Fig. 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

import numpy as np

__all__ = ["EnergyHistory"]


_PARTICLE_PREFIX = "particle/"


@dataclass
class EnergyHistory:
    """Per-step energy record; use as the ``diagnostics`` callback of
    :func:`repro.systems.run_loop` / :meth:`repro.systems.System.run`.

    Reads the model through the :class:`repro.systems.Model` protocol
    (``energies()``), so any registered system — or a sharded wrapper — can
    be recorded without per-app code.
    """

    times: List[float] = field(default_factory=list)
    field_energy: List[float] = field(default_factory=list)
    particle_energy: Dict[str, List[float]] = field(default_factory=dict)
    jdote: List[float] = field(default_factory=list)
    record_jdote: bool = False

    def __call__(self, model) -> None:
        self.times.append(model.time)
        energies = model.energies()
        self.field_energy.append(energies["field"])
        for key, val in energies.items():
            if key.startswith(_PARTICLE_PREFIX):
                self.particle_energy.setdefault(
                    key[len(_PARTICLE_PREFIX):], []
                ).append(val)
        if self.record_jdote:
            self.jdote.append(model.jdote())

    # ------------------------------------------------------------------ #
    @property
    def total(self) -> np.ndarray:
        tot = np.asarray(self.field_energy, dtype=float)
        for vals in self.particle_energy.values():
            tot = tot + np.asarray(vals, dtype=float)
        return tot

    def relative_drift(self) -> float:
        """Max relative total-energy deviation from the initial value."""
        tot = self.total
        if tot.size == 0:
            return 0.0
        e0 = tot[0]
        scale = abs(e0) if e0 else 1.0
        return float(np.max(np.abs(tot - e0)) / scale)

    def as_arrays(self) -> Dict[str, np.ndarray]:
        out = {
            "t": np.asarray(self.times),
            "field": np.asarray(self.field_energy),
            "total": self.total,
        }
        for name, vals in self.particle_energy.items():
            out[f"particle/{name}"] = np.asarray(vals)
        if self.jdote:
            out["jdote"] = np.asarray(self.jdote)
        return out
