"""Field–particle correlation diagnostic (Klein & Howes / TenBarge).

The paper highlights (Sec. IV) that keeping the full distribution function
enables "computationally intensive but valuable diagnostics such as the
field-particle correlation" that identify where in velocity space the field
does net work on the particles.  For an electrostatic component,

.. math::

   C_E(v; t, \\tau) = \\Big\\langle -q \\frac{v^2}{2}
       \\frac{\\partial f}{\\partial v}(x_0, v, t') E(x_0, t')
       \\Big\\rangle_{t' \\in [t, t+\\tau]},

whose velocity integral is the J·E work at ``x_0``; the *signature* (shape
in v) distinguishes Landau resonance from bulk heating.  This implementation
evaluates ``df/dv`` directly from the DG representation — noise-free, unlike
PIC reconstructions.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

import numpy as np

from ..basis.modal import ModalBasis
from ..grid.phase import PhaseGrid

__all__ = ["FieldParticleCorrelator"]


class FieldParticleCorrelator:
    """Accumulates the 1x1v field–particle correlation at a probe point.

    Parameters
    ----------
    phase_grid, basis:
        Species discretization (1x1v).
    charge:
        Species charge ``q``.
    x0:
        Configuration-space probe location.
    velocities:
        Sample velocities at which the correlation is evaluated.
    """

    def __init__(
        self,
        phase_grid: PhaseGrid,
        basis: ModalBasis,
        charge: float,
        x0: float,
        velocities: Sequence[float],
    ):
        if phase_grid.cdim != 1 or phase_grid.vdim != 1:
            raise ValueError("FieldParticleCorrelator supports 1x1v")
        self.grid = phase_grid
        self.basis = basis
        self.charge = float(charge)
        self.x0 = float(x0)
        self.velocities = np.asarray(velocities, dtype=float)
        self._samples: List[np.ndarray] = []
        self._times: List[float] = []
        # locate cells/reference coordinates once
        full = phase_grid.conf.extend(phase_grid.vel)
        self._pts = np.stack(
            [np.full_like(self.velocities, self.x0), self.velocities], axis=1
        )
        ix = np.floor((self._pts[:, 0] - full.lower[0]) / full.dx[0]).astype(int)
        iv = np.floor((self._pts[:, 1] - full.lower[1]) / full.dx[1]).astype(int)
        ix = np.clip(ix, 0, full.cells[0] - 1)
        iv = np.clip(iv, 0, full.cells[1] - 1)
        self._ix, self._iv = ix, iv
        xc = full.lower[0] + (ix + 0.5) * full.dx[0]
        vc = full.lower[1] + (iv + 0.5) * full.dx[1]
        ref = np.stack(
            [
                2.0 * (self._pts[:, 0] - xc) / full.dx[0],
                2.0 * (self._pts[:, 1] - vc) / full.dx[1],
            ],
            axis=1,
        )
        # d/dv = (2/dv) d/dxi_1
        self._dv_vander = basis.eval_deriv_at(ref, 1) * (2.0 / full.dx[1])

    def record(self, f: np.ndarray, e_at_x0: float, t: float) -> None:
        """Record one snapshot: ``-q (v^2/2) df/dv|_(x0,v) * E(x0)``.

        ``f`` is cell-major ``(nx, Np, nv)``."""
        coeffs = f[self._ix, :, self._iv]  # (nv_samples, Np)
        dfdv = np.einsum("lp,pl->p", self._dv_vander, coeffs)
        self._samples.append(
            -self.charge * 0.5 * self.velocities ** 2 * dfdv * e_at_x0
        )
        self._times.append(float(t))

    def correlation(self) -> Dict[str, np.ndarray]:
        """Time-averaged correlation over everything recorded so far."""
        if not self._samples:
            raise RuntimeError("no snapshots recorded")
        arr = np.stack(self._samples)
        return {
            "v": self.velocities,
            "C": arr.mean(axis=0),
            "t": np.asarray(self._times),
            "instantaneous": arr,
        }
