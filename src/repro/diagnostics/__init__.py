"""Simulation diagnostics: energies, growth rates, slices, correlations."""

from .energy import EnergyHistory
from .growth import GrowthFit, fit_exponential_growth
from .slices import evaluate_points, plane_slice

__all__ = [
    "EnergyHistory",
    "GrowthFit",
    "fit_exponential_growth",
    "evaluate_points",
    "plane_slice",
]
