"""Distribution-function slices and point evaluation (Fig. 5 visuals).

The paper's physics demonstration shows 2D cuts of the electron distribution
(y–vy and vx–vy planes).  These helpers evaluate the DG representation on
regular sample grids of any two phase-space axes with the remaining axes
fixed, which is exactly how continuum methods expose velocity-space
structure that PIC counting noise would bury.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..basis.modal import ModalBasis
from ..grid.phase import PhaseGrid

__all__ = ["evaluate_points", "plane_slice"]


def evaluate_points(
    f: np.ndarray,
    phase_grid: PhaseGrid,
    basis: ModalBasis,
    points: np.ndarray,
) -> np.ndarray:
    """Evaluate the DG field at arbitrary physical phase-space points.

    Parameters
    ----------
    f:
        Cell-major coefficients ``(*cfg_cells, Np, *vel_cells)``.
    points:
        ``(npts, pdim)`` physical coordinates (must lie inside the domain).
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    pdim = phase_grid.pdim
    cdim = phase_grid.cdim
    if points.shape[1] != pdim:
        raise ValueError("point dimensionality mismatch")
    full = phase_grid.conf.extend(phase_grid.vel)
    idx = []
    ref = np.empty_like(points)
    for d in range(pdim):
        dx = full.dx[d]
        lo = full.lower[d]
        i = np.floor((points[:, d] - lo) / dx).astype(int)
        i = np.clip(i, 0, full.cells[d] - 1)
        centers = lo + (i + 0.5) * dx
        ref[:, d] = np.clip(2.0 * (points[:, d] - centers) / dx, -1.0, 1.0)
        idx.append(i)
    vander = basis.eval_at(ref)  # (Np, npts)
    # advanced indices separated by the basis-axis slice move to the front:
    # (npts, Np)
    coeffs = f[tuple(idx[:cdim]) + (slice(None),) + tuple(idx[cdim:])]
    return np.einsum("lp,pl->p", vander, coeffs)


def plane_slice(
    f: np.ndarray,
    phase_grid: PhaseGrid,
    basis: ModalBasis,
    axes: Tuple[int, int],
    fixed: Dict[int, float],
    resolution: int = 64,
) -> Dict[str, np.ndarray]:
    """Sample ``f`` on a regular 2-D plane through phase space.

    Parameters
    ----------
    axes:
        The two phase-space dimensions spanning the plane
        (0..cdim-1 = configuration, cdim..pdim-1 = velocity).
    fixed:
        Values of every other phase dimension (defaults to domain centers).

    Returns
    -------
    Dict with keys ``x`` and ``y`` (1-D sample coordinates) and ``values``
    (2-D array, indexed ``[ix, iy]``).
    """
    full = phase_grid.conf.extend(phase_grid.vel)
    pdim = full.ndim
    a0, a1 = axes
    coords_1d = []
    for a in (a0, a1):
        lo, hi = full.lower[a], full.upper[a]
        pad = (hi - lo) * 1e-9
        coords_1d.append(np.linspace(lo + pad, hi - pad, resolution))
    g0, g1 = np.meshgrid(coords_1d[0], coords_1d[1], indexing="ij")
    pts = np.empty((resolution * resolution, pdim))
    for d in range(pdim):
        if d == a0:
            pts[:, d] = g0.ravel()
        elif d == a1:
            pts[:, d] = g1.ravel()
        else:
            default = 0.5 * (full.lower[d] + full.upper[d])
            pts[:, d] = fixed.get(d, default)
    vals = evaluate_points(f, phase_grid, basis, pts)
    return {
        "x": coords_1d[0],
        "y": coords_1d[1],
        "values": vals.reshape(resolution, resolution),
    }
