"""Instability growth-rate extraction.

The Fig. 5 workload (counter-streaming beams) is validated quantitatively by
fitting the exponential growth phase of the field energy and comparing
against linear kinetic theory (:mod:`repro.linear`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

import numpy as np

__all__ = ["fit_exponential_growth", "GrowthFit"]


@dataclass
class GrowthFit:
    rate: float          # growth rate of the fitted quantity
    intercept: float
    residual: float      # rms residual of the log-linear fit
    window: Tuple[float, float]


def fit_exponential_growth(
    t: np.ndarray,
    amplitude: np.ndarray,
    t_min: Optional[float] = None,
    t_max: Optional[float] = None,
) -> GrowthFit:
    """Least-squares fit of ``log(amplitude) = rate * t + b``.

    Note: if ``amplitude`` is a field *energy*, the fitted rate is twice the
    field growth rate gamma.
    """
    t = np.asarray(t, dtype=float)
    amp = np.asarray(amplitude, dtype=float)
    mask = amp > 0
    if t_min is not None:
        mask &= t >= t_min
    if t_max is not None:
        mask &= t <= t_max
    if mask.sum() < 3:
        raise ValueError("not enough points in the fit window")
    tt, yy = t[mask], np.log(amp[mask])
    design = np.stack([tt, np.ones_like(tt)], axis=1)
    sol, res, *_ = np.linalg.lstsq(design, yy, rcond=None)
    pred = design @ sol
    rms = float(np.sqrt(np.mean((pred - yy) ** 2)))
    return GrowthFit(
        rate=float(sol[0]),
        intercept=float(sol[1]),
        residual=rms,
        window=(float(tt[0]), float(tt[-1])),
    )
