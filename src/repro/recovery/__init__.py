"""Recovery-based DG operators (paper Sec. VI future-work direction)."""

from .recovery1d import RecoveryDiffusion1D, recovery_interface_vectors

__all__ = ["RecoveryDiffusion1D", "recovery_interface_vectors"]
