"""Recovery-based DG diffusion (the paper's Sec. VI future-work direction).

The paper's concluding section highlights "a novel recovery based DG scheme"
(van Leer & Nomura 2005; van Leer & Lo 2007) that can reach, e.g., 4th-order
convergence from p=1 bases.  This module implements the 1-D recovery
operator with the same exact-CAS philosophy as the rest of the library: the
recovery polynomial — the unique degree-(2p+1) polynomial on the union of
two neighbouring cells whose L2 moments match both cells' DG data — is
computed once symbolically, reduced to small interface matrices, and applied
as a matrix-free update.

Used as an alternative discretization of the diffusive part of the LBO
collision operator and benchmarked against the two-pass LDG scheme in
``benchmarks/bench_ablation_recovery.py``.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import Tuple

import numpy as np

from ..basis.legendre import legendre_coefficients
from ..basis.modal import ModalBasis
from ..grid.cartesian import Grid

__all__ = ["recovery_interface_vectors", "RecoveryDiffusion1D"]


def _legendre_shifted_moment(k: int, i: int, side: str) -> Fraction:
    """Exact ``int s^k P_i(2s +- 1) ds`` over ``[-1,0]`` (left) / ``[0,1]``
    (right) of the union coordinate ``s``."""
    coeffs = legendre_coefficients(i)
    total = Fraction(0)
    # expand P_i(2s + c) with c = +1 (left) or -1 (right) via binomial
    c = Fraction(1) if side == "left" else Fraction(-1)
    for m, a in enumerate(coeffs):
        if a == 0:
            continue
        # (2s + c)^m = sum_j C(m,j) (2s)^j c^(m-j)
        for j in range(m + 1):
            from math import comb

            term = a * comb(m, j) * (Fraction(2) ** j) * (c ** (m - j))
            power = k + j
            if side == "left":
                # int_{-1}^{0} s^power ds = (0 - (-1)^(power+1))/(power+1)
                integral = Fraction(-((-1) ** (power + 1)), power + 1)
            else:
                integral = Fraction(1, power + 1)
            total += term * integral
    return total


@lru_cache(maxsize=None)
def recovery_interface_vectors(p: int) -> Tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Interface value/derivative of the recovery polynomial.

    Returns ``(v0_L, v0_R, v1_L, v1_R)`` such that, for modal coefficient
    vectors ``uL``/``uR`` of the two cells (orthonormal basis),

    * ``R(0)    = v0_L . uL + v0_R . uR``
    * ``dR/ds(0) = v1_L . uL + v1_R . uR``  (union coordinate ``s``; the
      physical derivative is this divided by the cell width ``h``).
    """
    n = 2 * p + 2
    m = np.zeros((n, n))
    for i in range(p + 1):
        for k in range(n):
            m[i, k] = float(_legendre_shifted_moment(k, i, "left"))
            m[p + 1 + i, k] = float(_legendre_shifted_moment(k, i, "right"))
    minv = np.linalg.inv(m)
    norms = np.array(
        [np.sqrt((2 * i + 1) / 2.0) for i in range(p + 1)]
    )
    # rhs_i = u_i / (2 n_i): moments of the cell's own expansion
    scale = 1.0 / (2.0 * norms)
    v0_l = minv[0, : p + 1] * scale
    v0_r = minv[0, p + 1:] * scale
    v1_l = minv[1, : p + 1] * scale
    v1_r = minv[1, p + 1:] * scale
    return v0_l, v0_r, v1_l, v1_r


def _second_derivative_matrix(p: int) -> np.ndarray:
    """Exact ``int (d^2 w_l / dxi^2) w_m dxi`` on the reference cell."""
    basis = ModalBasis(1, p, "serendipity")
    out = np.zeros((p + 1, p + 1))
    from ..cas.poly import Poly

    polys = [basis.poly(i, normalized=False) for i in range(p + 1)]
    norms = [basis.norm(i) for i in range(p + 1)]
    for l in range(p + 1):
        d2 = polys[l].diff(0).diff(0)
        for m in range(p + 1):
            val = (d2 * polys[m]).integrate_cube()
            if val != 0:
                out[l, m] = float(val) * norms[l] * norms[m]
    return out


class RecoveryDiffusion1D:
    """Matrix-free recovery-DG discretization of ``d/dt u = D u_xx`` (1-D,
    periodic).

    The interface flux and value come from the recovery polynomial, giving a
    compact-stencil scheme that converges at order ~2p+2 (verified in
    ``tests/test_recovery.py``) — the paper's motivation for pursuing
    recovery to cut 5D/6D resolution requirements.
    """

    def __init__(self, grid: Grid, poly_order: int, diffusivity: float = 1.0):
        if grid.ndim != 1:
            raise ValueError("RecoveryDiffusion1D is one-dimensional")
        self.grid = grid
        self.p = int(poly_order)
        self.diffusivity = float(diffusivity)
        p = self.p
        self.basis = ModalBasis(1, p, "serendipity")
        self.v0_l, self.v0_r, self.v1_l, self.v1_r = recovery_interface_vectors(p)
        self.d2 = _second_derivative_matrix(p)
        # face traces of w_l and dw_l/dxi at xi = +-1
        pts = np.array([[1.0], [-1.0]])
        vals = self.basis.eval_at(pts)
        dvals = self.basis.eval_deriv_at(pts, 0)
        self.w_hi, self.w_lo = vals[:, 0], vals[:, 1]
        self.dw_hi, self.dw_lo = dvals[:, 0], dvals[:, 1]

    def rhs(self, u: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Evaluate ``D u_xx`` for coefficients ``u`` of shape ``(p+1, nx)``."""
        p, h = self.p, self.grid.dx[0]
        if out is None:
            out = np.zeros_like(u)
        else:
            out.fill(0.0)
        u_right = np.roll(u, -1, axis=1)  # cell to the right of each face
        # recovery value/slope at the face between cell i and i+1
        r0 = self.v0_l @ u + self.v0_r @ u_right          # (nx,) per face
        r1 = (self.v1_l @ u + self.v1_r @ u_right) / h    # physical dR/dx
        # per cell: right face = face i, left face = face i-1
        r0_left, r1_left = np.roll(r0, 1), np.roll(r1, 1)
        rdx = 2.0 / h
        out += rdx * (np.outer(self.w_hi, r1) - np.outer(self.w_lo, r1_left))
        out -= rdx * rdx * (
            np.outer(self.dw_hi, r0) - np.outer(self.dw_lo, r0_left)
        )
        out += rdx * rdx * (self.d2 @ u)
        out *= self.diffusivity
        return out

    def max_frequency(self) -> float:
        """Parabolic CFL estimate."""
        h = self.grid.dx[0]
        return self.diffusivity * (2 * self.p + 1) ** 2 / h ** 2 * 2.0
