"""Multi-worker campaign dispatch through lock-file leases.

``repro campaign --dispatch shard`` prepares a campaign directory (the
existing resumable manifest) and lets **independent worker processes** —
spawned locally, or started by hand on any host sharing the filesystem via
``repro worker <dir>`` — claim entries one at a time:

* a claim is an ``O_CREAT | O_EXCL`` lease file ``locks/<pid>.lock``
  (atomic on POSIX filesystems, no server needed) holding the claimant's
  host/pid/timestamp;
* a held lease is heartbeated by a daemon thread, so a *live* worker's
  lease never expires mid-run; a lease whose mtime stops advancing for
  ``lease_timeout`` seconds is stale (crashed worker) and may be broken —
  its entry returns to the claimable pool, so no entry is lost;
* entry status transitions (``pending -> running -> done | failed``) are
  serialized through a short-lived manifest lease, and an entry is only
  claimable while not ``done`` — so no entry runs twice;
* every claim appends a line to ``claims.log`` (O_APPEND, atomic for short
  writes), giving tests and operators an exact record of who ran what.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path
from typing import Callable, Dict, List, Optional, Union

from ..runtime.campaign import (
    MANIFEST_NAME,
    CampaignSpec,
    _run_point,
    _write_manifest,
    init_manifest,
    load_manifest,
)

__all__ = [
    "LeaseLock",
    "prepare_campaign_dir",
    "claim_loop",
    "run_dispatched",
    "validate_lease_timeout",
]

PathLike = Union[str, Path]
LOCK_DIR = "locks"
CLAIMS_LOG = "claims.log"
DEFAULT_LEASE_TIMEOUT = 900.0
#: the heartbeat refreshes a held lease every ``max(timeout / 4, MIN_
#: HEARTBEAT_INTERVAL)`` seconds; a timeout below ``MIN_LEASE_TIMEOUT``
#: would leave the heartbeat interval too close to the staleness cutoff,
#: so a *live* worker's lease could be stolen between two beats.
MIN_HEARTBEAT_INTERVAL = 0.05
MIN_LEASE_TIMEOUT = 0.2


def validate_lease_timeout(timeout: float) -> float:
    """Validate a lease timeout: the heartbeat interval (``timeout / 4``,
    floored at :data:`MIN_HEARTBEAT_INTERVAL`) must stay well under the
    staleness cutoff, or a live claimant could be taken over mid-run.
    Raises ``ValueError`` with an actionable message otherwise."""
    try:
        t = float(timeout)
    except (TypeError, ValueError):
        raise ValueError(f"lease timeout must be a number, got {timeout!r}")
    if not t > 0 or t != t or t == float("inf"):
        raise ValueError(f"lease timeout must be a positive finite number, got {t!r}")
    if t < MIN_LEASE_TIMEOUT:
        interval = max(t / 4.0, MIN_HEARTBEAT_INTERVAL)
        raise ValueError(
            f"lease timeout {t} s is too small: the heartbeat refreshes every "
            f"{interval:g} s and must stay well under the staleness cutoff "
            f"(minimum timeout: {MIN_LEASE_TIMEOUT} s)"
        )
    return t


class LeaseLock:
    """An exclusive-create lock file with heartbeat and stale takeover.

    ``try_acquire`` atomically creates the file (``O_CREAT | O_EXCL``); a
    lock whose mtime is older than ``timeout`` is considered abandoned and
    may be broken by any contender (unlink + re-race; exactly one of the
    racers wins the subsequent exclusive create).  While held, a daemon
    thread refreshes the mtime at ``timeout / 4``.
    """

    def __init__(self, path: PathLike, timeout: float = DEFAULT_LEASE_TIMEOUT):
        self.path = Path(path)
        self.timeout = validate_lease_timeout(timeout)
        self._held = False
        self._beat: Optional[threading.Event] = None

    @property
    def held(self) -> bool:
        return self._held

    def _payload(self) -> str:
        return json.dumps(
            {"host": socket.gethostname(), "pid": os.getpid(), "time": time.time()}
        )

    def is_stale(self) -> bool:
        try:
            age = time.time() - self.path.stat().st_mtime
        except FileNotFoundError:
            return False
        return age > self.timeout

    def try_acquire(self) -> bool:
        if self._held:
            return True
        self.path.parent.mkdir(parents=True, exist_ok=True)
        if self.is_stale():
            # break the abandoned lock by atomic rename: exactly one
            # contender's rename succeeds, so a rival's *fresh* replacement
            # lock can never be deleted out from under it (the unlink-then-
            # create scheme had that TOCTOU race); losers simply retry
            grave = self.path.with_name(
                f"{self.path.name}.stale-{os.getpid()}-{time.time_ns()}"
            )
            try:
                os.rename(self.path, grave)
            except FileNotFoundError:
                return False  # another contender broke it first; re-race later
            try:
                grave.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
        try:
            fd = os.open(self.path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        with os.fdopen(fd, "w") as fh:
            fh.write(self._payload())
        self._held = True
        self._start_heartbeat()
        return True

    def _start_heartbeat(self) -> None:
        stop = threading.Event()
        interval = max(self.timeout / 4.0, MIN_HEARTBEAT_INTERVAL)

        def beat() -> None:
            while not stop.wait(interval):
                try:
                    os.utime(self.path)
                except FileNotFoundError:  # pragma: no cover - stolen lock
                    return

        t = threading.Thread(target=beat, daemon=True, name=f"lease-{self.path.name}")
        t.start()
        self._beat = stop

    def release(self) -> None:
        if not self._held:
            return
        self._held = False
        if self._beat is not None:
            self._beat.set()
            self._beat = None
        try:
            self.path.unlink()
        except FileNotFoundError:  # pragma: no cover - stolen stale lock
            pass

    def __enter__(self) -> "LeaseLock":
        # blocking acquire with stale takeover (manifest critical sections)
        deadline = time.time() + max(self.timeout, 30.0)
        while not self.try_acquire():
            if time.time() > deadline:
                raise TimeoutError(f"could not acquire {self.path}")
            time.sleep(0.02)
        return self

    def __exit__(self, *exc) -> None:
        self.release()


# --------------------------------------------------------------------- #
def prepare_campaign_dir(campaign: CampaignSpec, outdir: PathLike) -> dict:
    """Materialize a campaign directory for lease-based workers: the
    resumable manifest plus a copy of the campaign spec (so remote
    ``repro worker`` invocations need nothing but the directory)."""
    outdir = Path(outdir)
    manifest, _pending, _skipped = init_manifest(campaign, outdir)
    (outdir / "campaign.json").write_text(
        json.dumps(campaign.to_dict(), indent=2)
    )
    (outdir / LOCK_DIR).mkdir(exist_ok=True)
    return manifest


def _update_entry(
    outdir: Path, pid: str, lease_timeout: float, mutate: Callable[[dict], None]
) -> dict:
    """Read-modify-write one manifest entry under the manifest lease."""
    with LeaseLock(outdir / LOCK_DIR / "manifest.lock", lease_timeout):
        manifest = load_manifest(outdir)
        if manifest is None:
            raise FileNotFoundError(f"no {MANIFEST_NAME} in {outdir}")
        entry = manifest["points"][pid]
        mutate(entry)
        _write_manifest(outdir / MANIFEST_NAME, manifest)
    return entry


def _worker_id() -> str:
    return f"{socket.gethostname()}:{os.getpid()}"


def claim_loop(
    outdir: PathLike,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    progress: Optional[Callable[[str, dict], None]] = None,
    max_points: Optional[int] = None,
) -> Dict[str, List[str]]:
    """Claim and run campaign entries until none are claimable.

    An entry is claimable when its status is not ``"done"`` and its lease is
    free (or stale — a crashed claimant's entry is recovered).  Entries that
    *failed* under a live worker stay failed; rerun the campaign to retry
    them.  Returns ``{"ran": [...], "failed": [...]}`` for this worker.
    """
    outdir = Path(outdir)
    lease_timeout = validate_lease_timeout(lease_timeout)
    manifest = load_manifest(outdir)
    if manifest is None:
        raise FileNotFoundError(f"no {MANIFEST_NAME} in {outdir}")
    scenario = manifest["campaign"]["scenario"]
    me = _worker_id()
    ran: List[str] = []
    failed: List[str] = []
    (outdir / LOCK_DIR).mkdir(exist_ok=True)

    while max_points is None or len(ran) + len(failed) < max_points:
        manifest = load_manifest(outdir)
        claimed: Optional[str] = None
        lock: Optional[LeaseLock] = None
        for pid in sorted(manifest["points"]):
            entry = manifest["points"][pid]
            if entry.get("status") == "done":
                continue
            if entry.get("status") == "failed" and entry.get("worker"):
                continue  # a live worker already tried it; leave for a rerun
            cand = LeaseLock(outdir / LOCK_DIR / f"{pid}.lock", lease_timeout)
            if not cand.try_acquire():
                continue
            # re-read under the lease: someone may have finished it between
            # our manifest read and the acquire
            current = load_manifest(outdir)["points"][pid]
            if current.get("status") == "done":
                cand.release()
                continue
            claimed, lock = pid, cand
            break
        if claimed is None:
            break
        try:
            entry = _update_entry(
                outdir, claimed, lease_timeout,
                lambda e: e.update(status="running", worker=me),
            )
            with open(outdir / CLAIMS_LOG, "a") as fh:
                fh.write(f"{claimed} {me}\n")
            try:
                result = _run_point(
                    scenario, entry["overrides"], str(outdir / claimed)
                )
                entry = _update_entry(
                    outdir, claimed, lease_timeout,
                    lambda e: e.update(status="done", result=result, worker=me),
                )
                ran.append(claimed)
            except Exception as exc:  # noqa: BLE001 - recorded per point
                err = f"{type(exc).__name__}: {exc}"
                entry = _update_entry(
                    outdir, claimed, lease_timeout,
                    lambda e: e.update(status="failed", error=err, worker=me),
                )
                failed.append(claimed)
            if progress is not None:
                progress(claimed, entry)
        finally:
            lock.release()
    return {"ran": ran, "failed": failed}


# --------------------------------------------------------------------- #
def run_dispatched(
    campaign: CampaignSpec,
    outdir: PathLike,
    workers: Optional[int] = None,
    lease_timeout: float = DEFAULT_LEASE_TIMEOUT,
    progress=None,
) -> dict:
    """Prepare a campaign directory and drain it with ``workers`` local
    claim-loop processes (forked, so they share the parent's generated-
    kernel cache).  Additional ``repro worker <dir>`` processes — on this
    or any host sharing the filesystem — may join or finish the same
    directory at any time.  Returns the final manifest with a summary.
    """
    import multiprocessing as mp

    outdir = Path(outdir)
    lease_timeout = validate_lease_timeout(lease_timeout)
    prepare_campaign_dir(campaign, outdir)
    workers = campaign.workers if workers is None else int(workers)
    if workers <= 1:
        claim_loop(outdir, lease_timeout, progress=progress)
    else:
        ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp
        procs = [
            ctx.Process(
                target=claim_loop,
                args=(str(outdir), lease_timeout),
                daemon=False,
                name=f"repro-campaign-worker-{w}",
            )
            for w in range(workers)
        ]
        for p in procs:
            p.start()
        for p in procs:
            p.join()
        bad = [p.name for p in procs if p.exitcode not in (0, None)]
        if bad:
            raise RuntimeError(f"campaign workers crashed: {', '.join(bad)}")
    # remote `repro worker` processes may still be updating entries: take
    # the manifest lease for the final read-modify-write so their results
    # are never clobbered by a stale copy
    with LeaseLock(outdir / LOCK_DIR / "manifest.lock", lease_timeout):
        manifest = load_manifest(outdir)
        statuses = [e["status"] for e in manifest["points"].values()]
        manifest["summary"] = {
            "total": len(statuses),
            "ran": sum(1 for e in manifest["points"].values() if e.get("worker")),
            "skipped": sum(
                1 for e in manifest["points"].values()
                if e["status"] == "done" and not e.get("worker")
            ),
            "failed": statuses.count("failed"),
        }
        _write_manifest(outdir / MANIFEST_NAME, manifest)
    return manifest
