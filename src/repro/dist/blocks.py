"""Per-shard block execution: ghost-aware RHS evaluation on sub-grids.

Each worker process owns one configuration-cell block (plus a single ghost
layer along every decomposed axis) and evaluates the *same* per-cell update
the serial solvers perform — same compiled-plan structure, same operand
shapes per cell, same accumulation order — so a sharded run is bit-identical
to a serial one.  Three things make that work:

* :class:`BlockGrid` gives the block the parent grid's geometry *bitwise*
  (``dx``, centers, edges are taken from the parent, never recomputed from
  the block's own bounds, whose floating-point rounding could differ by an
  ulp and leak into every kernel coefficient);
* the streaming/Maxwell surface terms are evaluated in a "shifted trace"
  form: where the serial code rolls a periodic array, the block code reads
  the same neighbour values out of its ghost layer and accumulates them in
  the same order;
* every dense product batches over the block's cells with unchanged
  per-cell shapes, and the engine's products are per-cell independent.

With the cell-major layout the configuration axes lead every state array,
so a halo slab is a contiguous span of memory: :func:`fill_padded` moves
ghost layers with plain slab copies (for a slab decomposition they are
single ``memcpy``-shaped block transfers), and the block interior of a
1-axis decomposition is itself a contiguous view — no
``ascontiguousarray`` staging at all on that path.

The serial solvers remain the single source of truth for the per-cell
math: blocks reuse their compiled operators (``_vol_op``,
``_surf_stream_ops``, ``_surf_accel_ops``) and private helpers directly
rather than duplicating them.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..grid.cartesian import Grid
from ..grid.phase import PhaseGrid
from ..moments.calc import MomentCalculator
from ..vlasov.modal_solver import (
    VlasovModalSolver,
    _add_rolled,
    _axis_slice,
    _roll_mul,
)
from .plan import HaloStats, ShardPlan

__all__ = ["BlockGrid", "BlockSpecies", "BlockMaxwellRHS", "fill_padded"]


class BlockGrid(Grid):
    """A contiguous sub-block of a parent grid with bitwise-parent geometry.

    ``dx``, ``centers``, ``edges`` and ``cell_center`` delegate to the
    parent so a solver built on the block sees exactly the numbers the
    serial solver sees — the block's own ``lower``/``upper`` (kept for
    repr/validation only) are never used in kernel arithmetic.
    """

    def __init__(self, parent: Grid, ranges: Sequence[Tuple[int, int]]):
        ranges = [(int(lo), int(hi)) for lo, hi in ranges]
        if len(ranges) != parent.ndim:
            raise ValueError(
                f"need one (lo, hi) range per dimension ({parent.ndim}), got {len(ranges)}"
            )
        for d, (lo, hi) in enumerate(ranges):
            if not 0 <= lo < hi <= parent.cells[d]:
                raise ValueError(f"axis {d}: range {(lo, hi)} outside {parent.cells[d]} cells")
        dx = parent.dx
        Grid.__init__(
            self,
            [parent.lower[d] + lo * dx[d] for d, (lo, _) in enumerate(ranges)],
            [parent.lower[d] + hi * dx[d] for d, (_, hi) in enumerate(ranges)],
            [hi - lo for lo, hi in ranges],
        )
        object.__setattr__(self, "parent", parent)
        object.__setattr__(self, "ranges", tuple(ranges))

    @property
    def dx(self) -> Tuple[float, ...]:
        return self.parent.dx

    def centers(self, dim: int) -> np.ndarray:
        lo, hi = self.ranges[dim]
        return self.parent.centers(dim)[lo:hi]

    def edges(self, dim: int) -> np.ndarray:
        lo, hi = self.ranges[dim]
        return self.parent.edges(dim)[lo : hi + 1]

    def cell_center(self, idx: Sequence[int]) -> Tuple[float, ...]:
        return self.parent.cell_center(
            [self.ranges[d][0] + int(i) for d, i in enumerate(idx)]
        )

    def extend(self, other: Grid) -> "BlockGrid":
        return BlockGrid(
            self.parent.extend(other),
            list(self.ranges) + [(0, n) for n in other.cells],
        )


# --------------------------------------------------------------------- #
def fill_padded(
    shared: np.ndarray,
    pad_buf: np.ndarray,
    ranges: Sequence[Tuple[int, int]],
    pad: Sequence[int],
    conf_cells: Sequence[int],
    stats: Optional[HaloStats] = None,
) -> None:
    """Copy a shard's block (+ periodic ghost layers) from a globally-shaped
    array into its padded private buffer.

    Cell-major layout: the configuration axes *lead* every state array
    (distribution and EM alike), so the slices below address leading axes
    and each ghost slab is a contiguous span of the shared segment.  Only
    the ghost slabs count as halo traffic in ``stats`` — the interior copy
    is a node-local load that a real MPI run would not send.
    """
    cdim = len(ranges)
    interior = tuple(
        slice(p, p + hi - lo) for (lo, hi), p in zip(ranges, pad)
    )
    own = tuple(slice(lo, hi) for lo, hi in ranges)
    pad_buf[interior] = shared[own]
    for d in range(cdim):
        if not pad[d]:
            continue
        n = int(conf_cells[d])
        lo, hi = ranges[d]
        nloc = hi - lo
        for ghost_idx, src_idx in ((0, (lo - 1) % n), (nloc + 1, hi % n)):
            dst = tuple(
                slice(ghost_idx, ghost_idx + 1) if dd == d else interior[dd]
                for dd in range(cdim)
            )
            src = tuple(
                slice(src_idx, src_idx + 1) if dd == d else own[dd]
                for dd in range(cdim)
            )
            ghost = shared[src]
            pad_buf[dst] = ghost
            if stats is not None:
                stats.record(ghost)


# --------------------------------------------------------------------- #
class BlockSpecies:
    """One species' solver stack on a shard block.

    Wraps a :class:`~repro.vlasov.modal_solver.VlasovModalSolver` built on
    the block's phase grid and evaluates the Vlasov RHS from the padded
    state, mirroring the serial solver's volume -> streaming -> acceleration
    accumulation order bit for bit.
    """

    def __init__(
        self,
        name: str,
        solver: VlasovModalSolver,
        moments: MomentCalculator,
        collisions,
        pad: Tuple[int, ...],
    ):
        if solver.velocity_flux != "central":
            raise ValueError(
                "process sharding supports the central velocity flux only "
                "(the penalty speed is a global reduction)"
            )
        self.name = name
        self.solver = solver
        self.moments = moments
        self.collisions = collisions
        self.pad = pad
        g = solver.grid
        self.cdim, self.vdim = g.cdim, g.vdim
        self.cells = g.cells
        # cell-major padded buffer: padded cfg axes lead, then basis, then vel
        self.pad_shape = (
            tuple(n + 2 * p for n, p in zip(g.conf.cells, pad))
            + (solver.num_basis,)
            + g.vel.cells
        )
        self._interior = tuple(
            slice(p, p + n) for n, p in zip(g.conf.cells, pad)
        )
        self._f_int: Optional[np.ndarray] = None
        self._f_buf: Optional[np.ndarray] = None

    def interior(self, f_pad: np.ndarray) -> np.ndarray:
        """The padded state's interior (the block state).  For a slab
        decomposition the cell-major interior is already a contiguous view
        — returned as is, no copy; otherwise it is staged once into a
        persistent buffer.  The result is cached on ``_f_int`` for the
        moment/collision consumers of the same stage."""
        view = f_pad[self._interior]
        if view.flags.c_contiguous:
            self._f_int = view
        else:
            if self._f_buf is None:
                self._f_buf = np.empty(self.solver.layout.shape)
            np.copyto(self._f_buf, view)
            self._f_int = self._f_buf
        return self._f_int

    def _shift_view(self, f_pad: np.ndarray, axis_j: int, shift: int) -> np.ndarray:
        """Interior view shifted by ``shift`` cells along config axis j."""
        sl = list(self._interior)
        p = self.pad[axis_j]
        n = self.cells[axis_j]
        sl[axis_j] = slice(p + shift, p + shift + n)
        return f_pad[tuple(sl)]

    def rhs(self, f_pad: np.ndarray, em_block: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``df/dt`` on the block interior (``out`` is interior-shaped)."""
        solver = self.solver
        f_int = self.interior(f_pad)
        aux = solver.field_aux(em_block)
        solver._accumulate_volume(f_int, aux, out)
        self._streaming(f_pad, f_int, aux, out)
        solver._accumulate_acceleration_surfaces(f_int, aux, out)
        return out

    def _streaming(self, f_pad, f_int, aux, out) -> None:
        solver = self.solver
        pool = solver.pool
        lay = solver.layout
        cdim = self.cdim
        npb = solver.num_basis
        ndim = f_int.ndim
        f_left = pool.get("solver.fl", lay.shape)
        f_right = pool.get("solver.fr", lay.shape)
        sbuf = pool.get(
            "solver.sstack", lay.shape[:cdim] + (2 * npb,) + lay.shape[cdim + 1 :]
        )
        half_a = _axis_slice(ndim, cdim, slice(0, npb))
        half_b = _axis_slice(ndim, cdim, slice(npb, 2 * npb))
        for j in range(cdim):
            axis = j  # cfg axis j leads in cell-major layout
            ops = solver._surf_stream_ops[j]
            sides = solver._surf_stream_sides[j]
            pos = solver._upwind_pos_b[j]
            neg = solver._upwind_neg_b[j]
            if not self.pad[j]:
                # the block spans this axis: the serial periodic-roll path
                np.multiply(f_int, pos, out=f_left)
                _roll_mul(f_int, -1, axis, neg, out=f_right)
                ops["L"].apply(f_left, aux, sbuf, accumulate=False)
                ops["R"].apply(f_right, aux, sbuf)
                out += sbuf[half_a]
                _add_rolled(sbuf[half_b], 1, axis, out)
                continue
            # decomposed axis: neighbour values come from the ghost layer.
            # The per-side operators replay the serial stacked accumulation
            # order exactly — (L,L) then (L,R) into one buffer, (R,L) then
            # (R,R) into the other — with each shifted trace read out of
            # the padded state instead of rolled.
            # Faces aligned with each interior cell i (cell i as left cell):
            #   f_left = f[i] * pos, f_right = f[i+1] * neg
            buf_a = pool.get("solver.sbufa", lay.shape)
            buf_b = pool.get("solver.sbufb", lay.shape)
            np.multiply(f_int, pos, out=f_left)
            np.multiply(self._shift_view(f_pad, j, +1), neg, out=f_right)
            sides[("L", "L")].apply(f_left, aux, buf_a, accumulate=False)
            sides[("L", "R")].apply(f_right, aux, buf_a)
            out += buf_a
            # faces one cell back (cell i as right cell): the serial code
            # rolls the stacked buffer's right-cell half forward by one
            np.multiply(self._shift_view(f_pad, j, -1), pos, out=f_left)
            np.multiply(f_int, neg, out=f_right)
            sides[("R", "L")].apply(f_left, aux, buf_b, accumulate=False)
            sides[("R", "R")].apply(f_right, aux, buf_b)
            out += buf_b


# --------------------------------------------------------------------- #
class BlockMaxwellRHS:
    """Ghost-aware Maxwell RHS on a shard block.

    Reuses the serial :class:`~repro.fields.maxwell.MaxwellSolver`'s flux
    entries and (transposed) basis matrices on the cell-major layout
    ``(*cfg, 8, Npc)``, replacing each periodic roll with a read of the
    padded buffer while keeping the serial accumulation order and the
    identical per-cell ``matmul`` calls.
    """

    def __init__(self, maxwell, plan: ShardPlan, shard: int):
        self.mx = maxwell
        self.pad = plan.pad
        self.ranges = plan.ranges(shard)
        self.block_cells = plan.block_cells(shard)
        self.cdim = len(self.block_cells)
        self._interior = tuple(
            slice(p, p + n) for n, p in zip(self.block_cells, self.pad)
        )

    def _shift(self, arr_pad: np.ndarray, axis_d: int, shift: int) -> np.ndarray:
        sl = list(self._interior)
        p = self.pad[axis_d]
        n = self.block_cells[axis_d]
        sl[axis_d] = slice(p + shift, p + shift + n)
        return arr_pad[tuple(sl)]

    def rhs(
        self,
        q_pad: np.ndarray,
        current: Optional[np.ndarray] = None,
        charge_density: Optional[np.ndarray] = None,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        mx = self.mx
        if out is None:
            out = np.zeros(self.block_cells + (8, mx.num_basis))
        else:
            out.fill(0.0)
        for d in range(self.cdim):
            rdx = mx._rdx[d]
            g_pad = mx._apply_flux_jacobian(q_pad, d)
            out += rdx * np.matmul(g_pad[self._interior], mx._deriv_t[d])
            fm = mx._faces_t[d]
            axis = d
            if not self.pad[d]:
                g = g_pad[self._interior]
                g_left = 0.5 * g
                g_right = 0.5 * np.roll(g, -1, axis=axis)
                inc_left = np.matmul(g_left, fm[("L", "L")])
                inc_left += np.matmul(g_right, fm[("L", "R")])
                inc_right = np.matmul(g_left, fm[("R", "L")])
                inc_right += np.matmul(g_right, fm[("R", "R")])
                if mx.flux == "upwind":
                    tau = mx._max_speed()
                    q = q_pad[self._interior]
                    jump_l = 0.5 * tau * q
                    jump_r = -0.5 * tau * np.roll(q, -1, axis=axis)
                    inc_left += np.matmul(jump_l, fm[("L", "L")])
                    inc_left += np.matmul(jump_r, fm[("L", "R")])
                    inc_right += np.matmul(jump_l, fm[("R", "L")])
                    inc_right += np.matmul(jump_r, fm[("R", "R")])
                out += rdx * inc_left
                out += rdx * np.roll(inc_right, 1, axis=axis)
                continue
            gl_pad = 0.5 * g_pad
            g_c = self._shift(gl_pad, d, 0)
            g_p = self._shift(gl_pad, d, +1)
            g_m = self._shift(gl_pad, d, -1)
            inc_left = np.matmul(g_c, fm[("L", "L")])
            inc_left += np.matmul(g_p, fm[("L", "R")])
            inc_right = np.matmul(g_m, fm[("R", "L")])
            inc_right += np.matmul(g_c, fm[("R", "R")])
            if mx.flux == "upwind":
                tau = mx._max_speed()
                jl_c = 0.5 * tau * self._shift(q_pad, d, 0)
                jl_m = 0.5 * tau * self._shift(q_pad, d, -1)
                jr_c = -0.5 * tau * self._shift(q_pad, d, 0)
                jr_p = -0.5 * tau * self._shift(q_pad, d, +1)
                inc_left += np.matmul(jl_c, fm[("L", "L")])
                inc_left += np.matmul(jr_p, fm[("L", "R")])
                inc_right += np.matmul(jl_m, fm[("R", "L")])
                inc_right += np.matmul(jr_c, fm[("R", "R")])
            out += rdx * inc_left
            out += rdx * inc_right
        if current is not None:
            out[..., 0:3, :] -= current / mx.epsilon0
        if charge_density is not None and mx.chi_e:
            out[..., 6, :] -= mx.chi_e * charge_density / mx.epsilon0
        return out


# --------------------------------------------------------------------- #
def build_block_species(app, plan: ShardPlan, shard: int) -> List[BlockSpecies]:
    """Build the per-species block solver stacks for one shard of ``app``
    (a serial :class:`~repro.systems.system.System`, any field closure)."""
    block_conf = BlockGrid(app.conf_grid, plan.ranges(shard))
    out = []
    for sp in app.species:
        pg = PhaseGrid(block_conf, sp.velocity_grid)
        serial = app.solvers[sp.name]
        solver = VlasovModalSolver(
            pg,
            app.poly_order,
            app.family,
            sp.charge,
            sp.mass,
            velocity_flux=serial.velocity_flux,
            backend="numpy",
        )
        moments = MomentCalculator(pg, solver.kernels, pool=solver.pool)
        collisions = _rebuild_collisions(sp.collisions, pg, app)
        out.append(BlockSpecies(sp.name, solver, moments, collisions, plan.pad))
    return out


def _rebuild_collisions(coll, block_pg: PhaseGrid, app):
    """Recreate a collision operator on the block phase grid (collisions are
    configuration-local, so the block operator is the serial one restricted
    to the block's cells)."""
    if coll is None:
        return None
    kind = type(coll).__name__
    if kind == "LBOCollisions":
        if coll.fixed_u is not None or coll.fixed_vtsq is not None:
            raise ValueError("process sharding does not support frozen LBO moments")
        from ..collisions.lbo import LBOCollisions

        return LBOCollisions(
            block_pg, app.poly_order, app.family, nu=coll.nu
        )
    if kind == "BGKCollisions":
        from ..collisions.bgk import BGKCollisions

        return BGKCollisions(block_pg, app.poly_order, app.family, nu=coll.nu)
    raise ValueError(f"process sharding does not support collisions of type {kind}")
