"""Process-sharded model execution: real workers, shared-memory halos.

:class:`ShardedApp` wraps a serial :class:`~repro.systems.system.System`
(any field closure — Maxwell, Poisson, or field-free — dispatched on
``system.field_kind``, never on concrete classes) and executes its time
steps across persistent **worker processes**, one per configuration-cell
block of a :class:`~repro.dist.plan.ShardPlan`:

* the global state arrays (every distribution function, the EM field) live
  in :mod:`multiprocessing.shared_memory`, so halo exchange is an in-place
  copy out of the neighbour's slab — counted per shard in doubles/messages
  exactly like :class:`~repro.parallel.comm.SimulatedComm` counts the
  simulated decomposition, which lets the Fig. 3 traffic model be checked
  against *measured* bytes;
* each worker compiles its own engine plans for its block
  (:mod:`repro.dist.blocks`) and advances its slab through the SSP-RK
  stages with two barriers per stage (writes-visible, reads-done), so a
  fast shard never overwrites state a slow neighbour is still reading;
* every per-cell operation matches the serial solver bit for bit, so a
  sharded run produces identical diagnostics and checkpoints to a serial
  one — including checkpoint/resume, which serializes the gathered global
  state through the unchanged Driver path.

The parent keeps the serial system for everything that is not stepping:
initial-condition projection, diagnostics, energies, CFL, checkpoint
gather/scatter — all through the :class:`~repro.systems.model.Model`
protocol.  Workers are forked (Linux), so they inherit the parent's
generated-kernel cache and system configuration without pickling; the
parent never evaluates an RHS itself.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
import time
import traceback
import weakref
from multiprocessing import shared_memory
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..obs import OBS as _OBS
from ..obs.metrics import SLOT as _OBS_SLOT
from ..obs.ring import ObsChannel
from ..obs.tracer import SpanEvent
from ..systems.model import run_loop
from .blocks import BlockMaxwellRHS, fill_padded, build_block_species
from .plan import HaloStats, ShardPlan

__all__ = ["ShardedApp"]

_perf_counter = time.perf_counter
_S_RK_STAGES = _OBS_SLOT["rk_stages"]
_S_RHS = _OBS_SLOT["rhs_calls"]
_S_RHS_MS = _OBS_SLOT["rhs_ms"]
_S_HALO = _OBS_SLOT["halo_exchanges"]
_S_HALO_MS = _OBS_SLOT["halo_wait_ms"]
_S_HALO_BYTES = _OBS_SLOT["halo_bytes"]
_S_BARRIER = _OBS_SLOT["barrier_waits"]
_S_BARRIER_MS = _OBS_SLOT["barrier_wait_ms"]

_READY_TIMEOUT = 600.0   # worker start + block-plan generation
_STEP_TIMEOUT = 3600.0   # one full step on one shard
_BARRIER_TIMEOUT = 600.0


# --------------------------------------------------------------------- #
# worker side
# --------------------------------------------------------------------- #
class _ShardWorker:
    """Per-process execution state for one shard (lives in the child)."""

    def __init__(
        self, app, plan: ShardPlan, shard: int, shared, rho_shared, barrier,
        obs_buf=None,
    ):
        self.app = app
        self.plan = plan
        self.shard = shard
        self.shared = shared
        self.rho_shared = rho_shared
        self.barrier = barrier
        # observability: rebind the process-global runtime onto this
        # worker's shared-memory channel *before* block plans compile, so
        # even compile counters land where the parent can read them
        self.obs_channel = None
        if obs_buf is not None:
            self.obs_channel = ObsChannel(obs_buf)
            _OBS.adopt_channel(self.obs_channel)
        # plan-compilation counters forked from the parent are the parent's
        # history; this worker's own contribution is the delta from here
        from ..engine.compile import STATS as _PLAN_STATS

        self._plan_stats = _PLAN_STATS
        self._plan_stats0 = _PLAN_STATS.snapshot()
        field_kind = getattr(app, "field_kind", "maxwell")
        self.is_poisson = field_kind == "poisson"
        self.has_em = field_kind == "maxwell"
        self.evolve = self.has_em and app.field_spec.evolve
        self.ranges = plan.ranges(shard)
        self.pad = plan.pad
        self.block_cells = plan.block_cells(shard)
        self.conf_cells = plan.conf_cells
        self.stats_f = HaloStats()
        self.stats_em = HaloStats()

        self.species = build_block_species(app, plan, shard)
        npc = app.cfg_basis.num_basis
        # cell-major layout: configuration axes lead every state array, so
        # one leading-slice tuple addresses f, em, and rho alike — and each
        # slab is a contiguous span of the shared segment
        conf_sl = tuple(slice(lo, hi) for lo, hi in self.ranges)
        self._em_slab = conf_sl
        self._rho_slab = conf_sl

        # private padded inputs, per-stage contiguous field block, RHS (k),
        # and step-start snapshot (u0) buffers
        self.f_pad: Dict[str, np.ndarray] = {}
        self.k: Dict[str, np.ndarray] = {}
        self.u0: Dict[str, np.ndarray] = {}
        self.f_slab: Dict[str, np.ndarray] = {}
        self._pad_int: Dict[str, Tuple[slice, ...]] = {}
        for sp, spb in zip(app.species, self.species):
            key = f"f/{sp.name}"
            self.f_pad[key] = np.zeros(spb.pad_shape)
            self.k[key] = np.empty(spb.solver.layout.shape)
            self.u0[key] = np.empty_like(self.k[key])
            self.f_slab[key] = shared[key][conf_sl]
            self._pad_int[key] = spb._interior
        self.em_block = np.zeros(self.block_cells + (8, npc))
        self.em_pad: Optional[np.ndarray] = None
        self.maxwell_block: Optional[BlockMaxwellRHS] = None
        self._cur_buf: Optional[np.ndarray] = None
        self._sp_cur_buf: Optional[np.ndarray] = None
        if self.evolve:
            self.em_pad = np.zeros(plan.padded_cells(shard) + (8, npc))
            self.maxwell_block = BlockMaxwellRHS(app.maxwell, plan, shard)
            self.k["em"] = np.empty(self.block_cells + (8, npc))
            self.u0["em"] = np.empty_like(self.k["em"])
            self.f_slab["em"] = shared["em"][self._em_slab]
        if self.is_poisson:
            self._rho_buf = np.zeros(self.block_cells + (npc,))
            self._rho_full = np.empty(self.conf_cells + (npc,))
        # external drive: static spatial coefficients restricted to the
        # block — a leading-axis view; the elementwise drive evaluation
        # consumes it without the old ascontiguousarray staging copy
        self.ext_coeffs: Optional[np.ndarray] = None
        self._em_eff: Optional[np.ndarray] = None
        if getattr(app, "external", None) is not None:
            self.ext_coeffs = app._ext_coeffs[self._em_slab]
            self._em_eff = np.empty_like(self.em_block)
        self.stepper_name = type(app.stepper).__name__

    # ------------------------------------------------------------------ #
    def stats_payload(self) -> dict:
        payload = {
            "f": self.stats_f.as_dict(),
            "em": self.stats_em.as_dict(),
            "plans": self._plan_stats.delta(
                self._plan_stats.snapshot(), self._plan_stats0
            ),
        }
        if self.obs_channel is not None:
            # the span ring carries label *ids*; the interned table is tiny
            # and changes rarely, so it just rides the step responses
            payload["obs_labels"] = list(_OBS.tracer.labels)
        return payload

    def _read_state(self) -> None:
        """Halo phase: refresh padded inputs from the shared global state —
        contiguous configuration-cell slab copies under the cell-major
        layout."""
        for key, pad_buf in self.f_pad.items():
            fill_padded(
                self.shared[key], pad_buf, self.ranges, self.pad,
                self.conf_cells, self.stats_f,
            )
        if self.evolve:
            fill_padded(
                self.shared["em"], self.em_pad, self.ranges, self.pad,
                self.conf_cells, self.stats_em,
            )
            np.copyto(self.em_block, self.em_pad[self.maxwell_block._interior])
        elif self.has_em:
            # static field: no ghosts needed, but re-read the slab each
            # stage so a parent set_state (checkpoint resume) is seen
            np.copyto(self.em_block, self.shared["em"][self._em_slab])

    def _effective_em(self, t: float) -> np.ndarray:
        if self.ext_coeffs is None:
            return self.em_block
        np.multiply(self.ext_coeffs, self.app.external.envelope(t), out=self._em_eff)
        self._em_eff += self.em_block
        return self._em_eff

    def _rhs(self, t: float) -> None:
        app = self.app
        if self.is_poisson:
            self._poisson_field(t)
            em_eff = self.em_block if self.ext_coeffs is None else self._em_eff
        else:
            em_eff = self._effective_em(t)
        for sp, spb in zip(app.species, self.species):
            key = f"f/{sp.name}"
            out = self.k[key]
            spb.rhs(self.f_pad[key], em_eff, out)
            if spb.collisions is not None:
                spb.collisions.rhs(spb._f_int, spb.moments, out=out, accumulate=True)
        if self.evolve:
            if self._cur_buf is None:
                npc = app.cfg_basis.num_basis
                self._cur_buf = np.zeros(self.block_cells + (3, npc))
                self._sp_cur_buf = np.empty_like(self._cur_buf)
            cur = self._cur_buf
            cur.fill(0.0)
            for sp, spb in zip(app.species, self.species):
                cur += spb.moments.current_density(
                    spb._f_int, sp.charge, out=self._sp_cur_buf
                )
            rho = None
            if app.field_spec.chi_e:
                npc = app.cfg_basis.num_basis
                rho = np.zeros(self.block_cells + (npc,))
                for sp, spb in zip(app.species, self.species):
                    rho += spb.moments.charge_density(spb._f_int, sp.charge)
            self.maxwell_block.rhs(
                self.em_pad, current=cur, charge_density=rho, out=self.k["em"]
            )

    def _poisson_field(self, t: float) -> None:
        """Shared charge assembly + redundant global solve (1-D, cheap)."""
        app = self.app
        rho = self._rho_buf
        rho.fill(0.0)
        for sp, spb in zip(app.species, self.species):
            f_int = spb.interior(self.f_pad[f"f/{sp.name}"])
            rho += sp.charge * spb.moments.compute("M0", f_int)
        self.rho_shared[self._rho_slab] = rho
        self.barrier.wait()
        np.copyto(self._rho_full, self.rho_shared)
        if app.neutralize:
            self._rho_full[..., 0] -= self._rho_full[..., 0].mean()
        ex = app.poisson.solve(self._rho_full)
        if self.ext_coeffs is not None:
            np.multiply(
                self.ext_coeffs, app.external.envelope(t), out=self._em_eff
            )
            self._em_eff[..., 0, :] += ex[self._rho_slab]
        else:
            self.em_block[..., 0, :] = ex[self._rho_slab]

    # ------------------------------------------------------------------ #
    def _snapshot_u0(self) -> None:
        for key, u0 in self.u0.items():
            if key == "em":
                np.copyto(u0, self.em_pad[self.maxwell_block._interior])
            else:
                np.copyto(u0, self.f_pad[key][self._pad_int[key]])

    def _stage(self, t: float, snapshot: bool = False) -> None:
        obs = _OBS
        if not obs.on:
            self.barrier.wait()
            self._read_state()
            self.barrier.wait()
            if snapshot:
                self._snapshot_u0()
            self._rhs(t)
            return
        # instrumented stage: the same operations, with the two barrier
        # waits, the halo refresh, and the RHS evaluation each spanned
        t_stage = _perf_counter()
        t0 = t_stage
        self.barrier.wait()
        obs.finish("barrier_wait", t0, _S_BARRIER, _S_BARRIER_MS)
        doubles0 = self.stats_f.doubles + self.stats_em.doubles
        t0 = _perf_counter()
        self._read_state()
        obs.finish("halo_exchange", t0, _S_HALO, _S_HALO_MS)
        obs.metrics.values[_S_HALO_BYTES] += 8 * (
            self.stats_f.doubles + self.stats_em.doubles - doubles0
        )
        t0 = _perf_counter()
        self.barrier.wait()
        obs.finish("barrier_wait", t0, _S_BARRIER, _S_BARRIER_MS)
        if snapshot:
            self._snapshot_u0()
        t0 = _perf_counter()
        self._rhs(t)
        obs.finish("rhs", t0, _S_RHS, _S_RHS_MS)
        obs.finish("rk_stage", t_stage, _S_RK_STAGES)

    def _axpy(self, dt: float) -> None:
        # mirrors timestepping.ssprk._axpy_inplace on this shard's slab
        for key, arr in self.f_slab.items():
            kk = self.k[key]
            kk *= dt
            arr += kk

    def _combine(self, a: float, b: float) -> None:
        # mirrors the stage combinations: slab = a*slab + b*u0
        for key, arr in self.f_slab.items():
            arr *= a
            kk = self.k[key]
            np.multiply(self.u0[key], b, out=kk)
            arr += kk

    def step(self, dt: float, t: float, step_index: int = 0) -> None:
        # the parent's global step index keeps trace sampling aligned
        # across every worker (and across checkpoint resumes)
        if _OBS.mode == "trace":
            _OBS.begin_step(step_index)
        name = self.stepper_name
        if name == "ForwardEuler":
            self._stage(t)
            self._axpy(dt)
        elif name == "SSPRK2":
            self._stage(t, snapshot=True)
            self._axpy(dt)
            self._stage(t)
            self._axpy(dt)
            self._combine(0.5, 0.5)
        elif name == "SSPRK3":
            self._stage(t, snapshot=True)
            self._axpy(dt)
            self._stage(t)
            self._axpy(dt)
            self._combine(0.25, 0.75)
            self._stage(t)
            self._axpy(dt)
            self._combine(2.0 / 3.0, 1.0 / 3.0)
        else:  # pragma: no cover - steppers are validated by the spec
            raise ValueError(f"unsupported stepper {name!r}")

    def rhs_pass(self, t: float) -> None:
        """One halo exchange + RHS evaluation without advancing state
        (the benchmark's RHS-only timing probe)."""
        self._stage(t)


def _watch_parent(ppid: int) -> None:
    """Daemon thread: hard-exit if the parent dies (covers a SIGKILLed
    parent while this worker blocks on a barrier or a long stage — the
    pipe EOF path only fires from ``conn.recv``).  Worker exit lets the
    multiprocessing resource tracker unlink the shared segments."""
    while True:
        time.sleep(2.0)
        if os.getppid() != ppid:
            os._exit(2)


def _worker_main(
    app, plan, shard, shared, rho_shared, barrier, conn, obs_buf=None
) -> None:
    threading.Thread(
        target=_watch_parent, args=(os.getppid(),), daemon=True,
        name="repro-parent-watchdog",
    ).start()
    try:
        worker = _ShardWorker(
            app, plan, shard, shared, rho_shared, barrier, obs_buf=obs_buf
        )
        conn.send(("ready", worker.stats_payload()))
    except Exception:  # noqa: BLE001 - reported to the parent
        conn.send(("error", traceback.format_exc()))
        return
    while True:
        try:
            msg = conn.recv()
        except (EOFError, OSError):
            break
        cmd = msg[0]
        if cmd == "stop":
            break
        try:
            if cmd == "step":
                worker.step(msg[1], msg[2], msg[3])
            elif cmd == "rhs":
                worker.rhs_pass(msg[1])
            else:
                raise ValueError(f"unknown worker command {cmd!r}")
            conn.send(("ok", worker.stats_payload()))
        except Exception:  # noqa: BLE001 - reported to the parent
            conn.send(("error", traceback.format_exc()))
            break


# --------------------------------------------------------------------- #
# parent side
# --------------------------------------------------------------------- #
def _release(segments: List[shared_memory.SharedMemory]) -> None:
    for seg in segments:
        try:
            seg.unlink()
        except FileNotFoundError:
            pass
        try:
            seg.close()
        except BufferError:
            # live views keep the mapping alive; the kernel frees it with
            # the last unmap (at the latest, process exit)
            pass


def _shutdown(procs, conns, segments) -> None:
    for conn in conns:
        try:
            conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
    for p in procs:
        p.join(timeout=10.0)
    for p in procs:
        if p.is_alive():
            p.terminate()
            p.join(timeout=5.0)
    for conn in conns:
        try:
            conn.close()
        except OSError:
            pass
    _release(segments)


class ShardedApp:
    """Executes a serial system's steps across real worker processes.

    Everything except :meth:`step` delegates to the wrapped serial system —
    which now operates on shared-memory state arrays, so diagnostics,
    energies, CFL estimates, and checkpoint gather/scatter see exactly what
    the workers compute.  The wrapper satisfies the full
    :class:`~repro.systems.model.Model` protocol (it forwards it), so the
    Driver cannot tell a sharded model from a serial one.  Construction
    forks the workers; :meth:`close` (also registered as a finalizer) stops
    them and releases the shared segments.

    Parameters
    ----------
    app:
        A freshly built serial :class:`~repro.systems.system.System`
        (modal scheme, central velocity flux; any field closure —
        dispatched on ``app.field_kind``).
    shards:
        Worker-process count; the configuration grid is factorized into
        this many blocks (must keep >= 2 cells along an axis per block).
    """

    def __init__(self, app, shards: int):
        if getattr(app, "scheme", "modal") != "modal":
            raise ValueError(
                "process sharding supports the modal scheme only "
                f"(got scheme={app.scheme!r})"
            )
        field_kind = getattr(app, "field_kind", "maxwell")
        if field_kind not in ("maxwell", "poisson", "none"):
            # an unknown closure would be silently executed as field-free
            # by the worker dispatch — refuse instead
            raise ValueError(
                "process sharding supports the maxwell/poisson/none field "
                f"closures only (got field_kind={field_kind!r}); register "
                "the system with shardable=False"
            )
        if "fork" not in mp.get_all_start_methods():
            raise RuntimeError(
                "process sharding requires the fork start method "
                "(POSIX); use the numpy or threaded backend here"
            )
        self._inner = app
        self.plan = ShardPlan.create(app.conf_grid.cells, int(shards))
        self.nshards = self.plan.nshards
        self._closed = False
        self._segments: List[shared_memory.SharedMemory] = []
        self._shared: Dict[str, np.ndarray] = {}

        # move the state into shared memory and rebind the app to it
        for key, arr in app.state().items():
            self._shared[key] = self._alloc(arr)
        for sp in app.species:
            app.f[sp.name] = self._shared[f"f/{sp.name}"]
        if "em" in self._shared:
            app.em = self._shared["em"]
        rho_shared = None
        if app.field_kind == "poisson":
            rho_shared = self._alloc(
                np.zeros(app.conf_grid.cells + (app.cfg_basis.num_basis,))
            )
        elif (
            app.field_kind == "maxwell" and "em" not in self._shared
        ):  # pragma: no cover - maxwell always has em
            raise RuntimeError("maxwell state without an EM field")

        # observability channels ride the same shared-memory plumbing as
        # the state (allocated before the fork, released with the segments)
        obs_bufs: List[Optional[np.ndarray]] = [None] * self.nshards
        self._obs_channels: List[ObsChannel] = []
        self._obs_events: List[List[Tuple[int, float, float]]] = []
        self._obs_lost: List[int] = []
        self._obs_final_metrics: Optional[List[dict]] = None
        self._obs_final_spans: Optional[List[SpanEvent]] = None
        if _OBS.on:
            obs_bufs = [
                self._alloc(np.zeros(ObsChannel.length()))
                for _ in range(self.nshards)
            ]
            self._obs_channels = [ObsChannel(buf) for buf in obs_bufs]
            self._obs_events = [[] for _ in range(self.nshards)]
            self._obs_lost = [0] * self.nshards

        ctx = mp.get_context("fork")
        self._barrier = ctx.Barrier(self.nshards, timeout=_BARRIER_TIMEOUT)
        self._procs: List[mp.Process] = []
        self._conns = []
        for shard in range(self.nshards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_worker_main,
                args=(
                    app, self.plan, shard, self._shared, rho_shared,
                    self._barrier, child_conn, obs_bufs[shard],
                ),
                daemon=True,
                name=f"repro-shard-{shard}",
            )
            proc.start()
            child_conn.close()
            self._procs.append(proc)
            self._conns.append(parent_conn)
        self._finalizer = weakref.finalize(
            self, _shutdown, self._procs, self._conns, self._segments
        )
        self.shard_stats: List[dict] = [
            {"f": HaloStats().as_dict(), "em": HaloStats().as_dict(), "plans": {}}
            for _ in range(self.nshards)
        ]
        for shard, conn in enumerate(self._conns):
            kind, payload = self._recv(shard, conn, _READY_TIMEOUT)
            if kind != "ready":
                self.close()
                raise RuntimeError(f"shard {shard} failed to start:\n{payload}")
            if payload:
                self.shard_stats[shard] = payload

    # ------------------------------------------------------------------ #
    def _alloc(self, arr: np.ndarray) -> np.ndarray:
        seg = shared_memory.SharedMemory(create=True, size=int(arr.nbytes))
        self._segments.append(seg)
        out = np.ndarray(arr.shape, dtype=arr.dtype, buffer=seg.buf)
        out[...] = arr
        return out

    def _recv(self, shard: int, conn, timeout: float):
        if not conn.poll(timeout):
            self.close()
            raise RuntimeError(
                f"shard {shard} did not reply within {timeout:.0f}s"
            )
        try:
            return conn.recv()
        except (EOFError, OSError) as exc:
            self.close()
            raise RuntimeError(f"shard {shard} died: {exc}") from exc

    def _command(self, msg) -> None:
        for conn in self._conns:
            conn.send(msg)
        for shard, conn in enumerate(self._conns):
            kind, payload = self._recv(shard, conn, _STEP_TIMEOUT)
            if kind == "error":
                self.close()
                raise RuntimeError(f"shard {shard} failed:\n{payload}")
            self.shard_stats[shard] = payload
        # workers are idle between commands, so draining the span rings
        # here never races their (single-writer) pushes
        for shard, channel in enumerate(self._obs_channels):
            records, lost = channel.drain()
            self._obs_events[shard].extend(records)
            self._obs_lost[shard] += lost

    # ------------------------------------------------------------------ #
    # the App interface
    # ------------------------------------------------------------------ #
    def __getattr__(self, name):
        return getattr(self._inner, name)

    @property
    def time(self) -> float:
        return self._inner.time

    @time.setter
    def time(self, value: float) -> None:
        self._inner.time = value

    @property
    def step_count(self) -> int:
        return self._inner.step_count

    @step_count.setter
    def step_count(self, value: int) -> None:
        self._inner.step_count = value

    def state(self) -> Dict[str, np.ndarray]:
        return self._inner.state()

    def set_state(self, state: Dict[str, np.ndarray]) -> None:
        """Scatter a (checkpoint) state into the shared arrays in place —
        worker views stay valid, unlike the serial system's rebinding."""
        for key, shared in self._shared.items():
            np.copyto(shared, state[key])

    def step(self, dt: Optional[float] = None) -> float:
        if self._closed:
            raise RuntimeError("ShardedApp is closed")
        if dt is None:
            dt = self._inner.suggested_dt()
        self._command(
            ("step", float(dt), float(self._inner.time), self._inner.step_count)
        )
        self._inner.time += dt
        self._inner.step_count += 1
        return dt

    def rhs_pass(self) -> None:
        """One distributed halo exchange + RHS evaluation, discarding the
        result (benchmark probe for RHS-only scaling)."""
        self._command(("rhs", float(self._inner.time)))

    def run(self, t_end: float, diagnostics=None, max_steps: int = 10**9):
        return run_loop(self, t_end, diagnostics=diagnostics, max_steps=max_steps)

    # ------------------------------------------------------------------ #
    @property
    def halo_stats(self) -> dict:
        """Cumulative measured halo traffic (mirrors SimulatedComm stats)."""
        total_f, total_em = HaloStats(), HaloStats()
        for entry in self.shard_stats:
            total_f.merge(HaloStats(**{k: entry["f"][k] for k in ("messages", "doubles")}))
            total_em.merge(HaloStats(**{k: entry["em"][k] for k in ("messages", "doubles")}))
        return {
            "per_shard": [dict(e) for e in self.shard_stats],
            "f": total_f.as_dict(),
            "em": total_em.as_dict(),
            "messages": total_f.messages + total_em.messages,
            "doubles": total_f.doubles + total_em.doubles,
            "bytes": total_f.bytes + total_em.bytes,
        }

    def plan_stats(self) -> List[dict]:
        """Per-worker plan-compilation counter deltas (each worker compiles
        its own block plans after forking; a warm disk cache shows up here
        as ``hydrated`` instead of ``compiled``)."""
        return [dict(entry.get("plans", {})) for entry in self.shard_stats]

    # ------------------------------------------------------------------ #
    # observability (parent-side view of the worker channels)
    # ------------------------------------------------------------------ #
    def obs_metrics(self) -> List[dict]:
        """Per-worker metric snapshots read straight out of the shared
        blocks (plus ring-overflow span losses, counted parent-side)."""
        if self._obs_final_metrics is not None:
            return [dict(snap) for snap in self._obs_final_metrics]
        out = []
        for shard, channel in enumerate(self._obs_channels):
            snap = channel.metrics.snapshot()
            snap["spans_dropped"] += self._obs_lost[shard]
            out.append(snap)
        return out

    def obs_spans(self) -> List[SpanEvent]:
        """Every drained worker span, labels resolved and tagged with the
        worker's real pid (one Chrome-trace row per worker)."""
        if self._obs_final_spans is not None:
            return list(self._obs_final_spans)
        events: List[SpanEvent] = []
        for shard in range(len(self._obs_channels)):
            labels = self.shard_stats[shard].get("obs_labels", [])
            pid = self._procs[shard].pid
            for label_id, t0, t1 in self._obs_events[shard]:
                label = (
                    labels[label_id] if label_id < len(labels)
                    else f"label-{label_id}"
                )
                events.append((pid, 0, label, t0, t1))
        return events

    def obs_process_names(self) -> Dict[int, str]:
        return {proc.pid: f"shard-{i}" for i, proc in enumerate(self._procs)}

    def close(self) -> None:
        """Stop the workers and release the shared segments (idempotent).
        The wrapped app keeps private copies of the state, so diagnostics
        and checkpointing remain usable after closing."""
        if self._closed:
            return
        self._closed = True
        if self._obs_channels:
            # snapshot the shared-memory telemetry into plain Python before
            # the segments are unlinked, so Driver.summary() (and trace
            # writing) keep working after close
            for shard, channel in enumerate(self._obs_channels):
                records, lost = channel.drain()
                self._obs_events[shard].extend(records)
                self._obs_lost[shard] += lost
            self._obs_final_spans = self.obs_spans()
            self._obs_final_metrics = self.obs_metrics()
            self._obs_channels = []
        app = self._inner
        for sp in app.species:
            key = f"f/{sp.name}"
            if key in self._shared:
                app.f[sp.name] = np.array(self._shared[key])
        if "em" in self._shared:
            app.em = np.array(self._shared["em"])
        self._shared.clear()
        if self._finalizer.detach() is not None:
            _shutdown(self._procs, self._conns, self._segments)

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass
