"""Shard assignment: configuration-cell blocks for worker processes.

A :class:`ShardPlan` is the process-sharded counterpart of the paper's
node-level decomposition (Sec. IV): the configuration grid is split into
near-cubic contiguous blocks — one per persistent worker process — each
padded by a single ghost layer along every decomposed axis, with the full
velocity grid attached.  The block arithmetic is exactly
:class:`repro.parallel.decomp.ConfDecomposition` (the object the Fig. 3
scaling model is built on), so the *measured* halo traffic of a sharded run
can be compared against the model's prediction for the same decomposition.

:class:`HaloStats` mirrors the counters of
:class:`repro.parallel.comm.SimulatedComm` (messages / doubles), so the
validation loop is: simulated decomposition -> model -> real sharded run.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Sequence, Tuple

import numpy as np

from ..parallel.decomp import ConfDecomposition

__all__ = ["HaloStats", "ShardPlan"]


@dataclass
class HaloStats:
    """Halo-exchange accounting for one shard (SimulatedComm-compatible)."""

    messages: int = 0
    doubles: int = 0

    @property
    def bytes(self) -> int:
        return 8 * self.doubles

    def record(self, arr: np.ndarray) -> None:
        self.messages += 1
        self.doubles += int(arr.size)

    def merge(self, other: "HaloStats") -> None:
        self.messages += other.messages
        self.doubles += other.doubles

    def as_dict(self) -> dict:
        return {"messages": self.messages, "doubles": self.doubles, "bytes": self.bytes}


@dataclass(frozen=True)
class ShardPlan:
    """Assignment of configuration-cell blocks to worker processes."""

    decomp: ConfDecomposition
    nshards: int
    pad: Tuple[int, ...] = field(default=())  # 1 per decomposed axis, else 0

    @classmethod
    def create(cls, conf_cells: Sequence[int], nshards: int) -> "ShardPlan":
        conf_cells = tuple(int(c) for c in conf_cells)
        nshards = int(nshards)
        if nshards < 1:
            raise ValueError(f"need at least one shard, got {nshards}")
        decomp = ConfDecomposition.create(conf_cells, nshards)
        pad = tuple(1 if decomp.dims[d] > 1 else 0 for d in range(len(conf_cells)))
        plan = cls(decomp=decomp, nshards=nshards, pad=pad)
        # A compiled plan classifies its field coefficients by whether they
        # vary over the block's configuration cells; a block degenerated to
        # a single cell would compile (and execute) a structurally different
        # plan than the serial run, breaking bit-identity.  Refuse up front.
        global_varies = any(c > 1 for c in conf_cells)
        for shard in range(nshards):
            block = decomp.local_cells(shard)
            if global_varies and not any(c > 1 for c in block):
                raise ValueError(
                    f"shard {shard} owns a single configuration cell "
                    f"(block {block} of grid {conf_cells}); use fewer shards "
                    "so every block keeps at least two cells along one axis"
                )
        return plan

    # ------------------------------------------------------------------ #
    @property
    def conf_cells(self) -> Tuple[int, ...]:
        return self.decomp.cells

    @property
    def cdim(self) -> int:
        return len(self.decomp.cells)

    def ranges(self, shard: int) -> List[Tuple[int, int]]:
        """Owned (lo, hi) cell range per configuration axis."""
        return self.decomp.local_ranges(shard)

    def block_cells(self, shard: int) -> Tuple[int, ...]:
        return self.decomp.local_cells(shard)

    def padded_cells(self, shard: int) -> Tuple[int, ...]:
        return tuple(
            n + 2 * p for n, p in zip(self.block_cells(shard), self.pad)
        )

    # ------------------------------------------------------------------ #
    def model_halo_doubles(self, num_basis: int, vel_cells: Sequence[int]) -> int:
        """Fig. 3-model prediction of distribution-function doubles received
        per halo exchange, summed over shards (each configuration ghost cell
        carries the full velocity grid times the phase basis)."""
        nvel = int(np.prod([int(c) for c in vel_cells])) if len(vel_cells) else 1
        total = 0
        for shard in range(self.nshards):
            total += self.decomp.ghost_cells(shard, ghost=1) * nvel * num_basis
        return int(total)

    def describe(self) -> str:
        return (
            f"{self.nshards} shards over {self.conf_cells} cells "
            f"(blocks/axis {self.decomp.dims})"
        )
