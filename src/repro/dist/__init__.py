"""repro.dist — real process-sharded execution.

The runtime counterpart of the paper's Sec. IV decomposition: configuration
-cell blocks run on persistent worker processes with shared-memory halo
exchange (:class:`ShardedApp`, selected via the ``process[:N]`` backend),
and campaign entries are dispatched to independent worker processes/hosts
through lock-file leases on the resumable manifest
(:func:`claim_loop` / ``repro worker``).
"""

from .blocks import BlockGrid, BlockMaxwellRHS, BlockSpecies, fill_padded
from .lease import LeaseLock, claim_loop, prepare_campaign_dir, run_dispatched
from .plan import HaloStats, ShardPlan
from .sharded import ShardedApp

__all__ = [
    "BlockGrid",
    "BlockMaxwellRHS",
    "BlockSpecies",
    "fill_padded",
    "HaloStats",
    "ShardPlan",
    "ShardedApp",
    "LeaseLock",
    "claim_loop",
    "prepare_campaign_dir",
    "run_dispatched",
]
