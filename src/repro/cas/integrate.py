"""Exact, factorized integration of Legendre-product expressions.

Every integral the DG weak form needs has the separable structure

.. math::

    \\int_{[-1,1]^d} \\prod_k g_k(\\xi_k)\\, d\\xi = \\prod_k \\int_{-1}^{1} g_k \\, d\\xi_k,

where each 1-D factor ``g_k`` is a product of (at most three) Legendre
polynomials, possibly differentiated, possibly multiplied by a monomial
``xi^r`` coming from the phase-space flux.  This module memoizes those 1-D
integrals in exact rational arithmetic; the d-dimensional tensors are then
assembled as products of table lookups, which keeps kernel generation fast
even for the 112-DOF p=2 Serendipity basis in 5D.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import Tuple

from ..basis.legendre import legendre_coefficients
from .poly import Poly

__all__ = [
    "legendre_product_integral_1d",
    "integral_poly_times_legendre_pair_1d",
    "poly_integral_cube",
]


def _coeffs_1d(degree: int, deriv: bool) -> Tuple[Fraction, ...]:
    coeffs = legendre_coefficients(degree)
    if not deriv:
        return coeffs
    return tuple(coeffs[k] * k for k in range(1, len(coeffs)))


def _integrate_monomial_coeffs(coeffs) -> Fraction:
    total = Fraction(0)
    for k, c in enumerate(coeffs):
        if c and k % 2 == 0:
            total += c * Fraction(2, k + 1)
    return total


def _multiply_coeffs(a, b):
    out = [Fraction(0)] * (len(a) + len(b) - 1)
    for i, ca in enumerate(a):
        if not ca:
            continue
        for j, cb in enumerate(b):
            if cb:
                out[i + j] += ca * cb
    return tuple(out)


@lru_cache(maxsize=None)
def legendre_product_integral_1d(
    degrees: Tuple[int, ...],
    derivs: Tuple[bool, ...],
    monomial_power: int = 0,
) -> Fraction:
    """Exact :math:`\\int_{-1}^1 x^r \\prod_i D^{e_i} P_{n_i}(x)\\,dx`.

    Parameters
    ----------
    degrees:
        Degrees of the Legendre factors.
    derivs:
        Whether each factor is differentiated once.
    monomial_power:
        The extra monomial power ``r`` from the flux expansion.
    """
    if len(degrees) != len(derivs):
        raise ValueError("degrees and derivs must have the same length")
    prod: Tuple[Fraction, ...] = (Fraction(1),)
    for n, d in zip(degrees, derivs):
        fac = _coeffs_1d(n, d)
        if not fac:  # derivative of P_0 is zero
            return Fraction(0)
        prod = _multiply_coeffs(prod, fac)
    if monomial_power:
        prod = tuple([Fraction(0)] * monomial_power) + prod
    return _integrate_monomial_coeffs(prod)


def integral_poly_times_legendre_pair_1d(
    poly_coeffs: Tuple[Fraction, ...], n1: int, d1: bool, n2: int, d2: bool
) -> Fraction:
    """Exact :math:`\\int_{-1}^1 q(x) D^{d_1}P_{n_1} D^{d_2}P_{n_2} dx`
    for an arbitrary 1-D polynomial ``q`` given by ascending coefficients."""
    total = Fraction(0)
    for r, c in enumerate(poly_coeffs):
        if c:
            total += c * legendre_product_integral_1d((n1, n2), (d1, d2), r)
    return total


def poly_integral_cube(poly: Poly) -> Fraction:
    """Exact integral of a :class:`Poly` over the reference cube."""
    return poly.integrate_cube()
