"""Mini computer-algebra system: exact polynomials, integrals, and codegen."""

from .codegen import compile_kernel, count_multiplications, emit_kernel_source
from .integrate import legendre_product_integral_1d
from .poly import Poly

__all__ = [
    "Poly",
    "legendre_product_integral_1d",
    "emit_kernel_source",
    "compile_kernel",
    "count_multiplications",
]
