"""Emission of fully-unrolled and fused kernel source code (the paper's Fig. 1).

Gkeyll's Maxima scripts write each generated kernel as unrolled C++ with all
integrals baked in at double precision, loops unrolled and common symbol
products pulled out.  This module does the same in Python, at two levels:

* :func:`emit_kernel_source` turns a
  :class:`~repro.kernels.termset.TermSet` into the source of a standalone
  unrolled function ``kernel(f, aux, out)`` — a flat list of fused
  multiply–add statements, used for inspection (reproducing Fig. 1),
  exact multiplication counting (the "~70 vs ~250 multiplications" claim),
  and agreement tests against the sparse-operator path.  With ``cdim > 0``
  the emitted indexing targets the engine's cell-major layout
  ``(*cfg_cells, N, *vel_cells)`` directly (``f[:, :, m]``), so the same
  unrolled source applies to batched state arrays, not just per-cell
  coefficient vectors.
* :func:`emit_fused_sweep_source` lowers the *compiled* form — the merged
  per-cell sparse blocks an :class:`~repro.engine.plan.ExecutionPlan`
  freezes — into one fused loop nest per plan: a single pass over cell
  blocks covering every uniform sweep with its velocity-factor weighting
  applied in-register.  The source is plain Python written in the
  restricted style numba's ``@njit`` compiles; when numba is installed the
  emitted kernel is jitted with ``cache=True`` (AOT-style persistent
  compilation), and when it is not the emitted source still executes under
  plain ``exec`` so the lowering is testable without numba.
* :func:`emit_fused_sweep_c` emits the same program as C — exactly
  Gkeyll's artifact shape — for the ``cc`` tier:
  :func:`compile_fused_sweep` shells out to the system C compiler
  (``-O3 -ffp-contract=off``: vectorized but no FMA contraction and no
  reassociation, so results stay bit-identical to the interpreted path),
  loads the shared object through :mod:`ctypes`, and keys the artifact by
  a content digest of the source plus compiler version, so repeated runs —
  and sibling worker processes — reuse the compiled kernel without
  recompiling.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import subprocess
import tempfile
from collections import defaultdict
from pathlib import Path
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

if TYPE_CHECKING:  # pragma: no cover - avoid circular import at runtime
    from ..kernels.termset import Symbol, TermSet

__all__ = [
    "emit_kernel_source",
    "compile_kernel",
    "count_multiplications",
    "emit_fused_sweep_source",
    "emit_fused_sweep_c",
    "compile_fused_sweep",
    "numba_available",
    "cc_available",
    "select_tier",
    "KERNEL_TIERS",
]

#: recognized fused-execution tiers: ``numba`` jits the emitted sweep
#: source, ``cc`` compiles the emitted C through the system compiler,
#: ``numpy`` runs the vectorized fallback, ``auto`` picks the best
#: available (numba, then cc, then numpy)
KERNEL_TIERS = ("auto", "numba", "cc", "numpy")


def _format_coeff(value: float) -> str:
    return repr(float(value))


def emit_kernel_source(name: str, termset: "TermSet", cdim: int = 0) -> str:
    """Return the source of an unrolled kernel function.

    The function signature is ``name(f, aux, out)`` where ``f`` is indexable
    by input-coefficient number (rows may be scalars or NumPy arrays), ``aux``
    maps symbol names to values, and ``out`` is accumulated in place.

    ``cdim`` selects the layout the emitted indexing targets: ``0`` (the
    historical form) indexes coefficient-major rows ``f[m]``; a positive
    ``cdim`` emits cell-major indexing ``f[:, ..., m]`` with ``cdim``
    leading slices, so the kernel applies directly to the engine's
    ``(*cfg_cells, N, *vel_cells)`` state arrays with aux factors
    broadcasting over the phase axes exactly as
    :meth:`~repro.kernels.termset.TermSet.apply_cm` does.
    """
    prefix = ":, " * int(cdim)
    lines: List[str] = [
        f"def {name}(f, aux, out):",
        f'    """Auto-generated unrolled DG kernel ({termset.num_entries} exact nonzeros)."""',
    ]
    sym_local: Dict[tuple, str] = {}
    entries = termset.entries_by_symbol()
    for t, sym in enumerate(sorted(entries)):
        if sym:
            sym_local[sym] = f"s{t}"
            expr = "*".join(f"aux[{n!r}]" for n in sym)
            lines.append(f"    s{t} = {expr}")
    per_row: Dict[int, List[str]] = defaultdict(list)
    for sym in sorted(entries):
        local = sym_local.get(sym)
        for l, m, coeff in entries[sym]:
            piece = f"{_format_coeff(coeff)}*f[{prefix}{m}]"
            if local is not None:
                piece = f"{local}*" + piece
            per_row[l].append(piece)
    if not per_row:
        lines.append("    pass")
    for l in sorted(per_row):
        joined = " + ".join(per_row[l]).replace("+ -", "- ")
        lines.append(f"    out[{prefix}{l}] += {joined}")
    return "\n".join(lines) + "\n"


def compile_kernel(name: str, termset: "TermSet", cdim: int = 0):
    """Compile the emitted source and return the kernel function object."""
    source = emit_kernel_source(name, termset, cdim=cdim)
    namespace: Dict[str, object] = {}
    exec(compile(source, f"<generated:{name}>", "exec"), namespace)
    fn = namespace[name]
    fn.__source__ = source  # type: ignore[attr-defined]
    return fn


def count_multiplications(termset: "TermSet") -> int:
    """Number of scalar multiplications one evaluation of the unrolled kernel
    performs (the metric quoted for Fig. 1).

    Each symbol product of ``k`` factors costs ``k - 1`` multiplies (hoisted
    once); each tensor entry then costs 2 multiplies (coefficient times the
    hoisted symbol times ``f[m]``), or 1 when there is no symbol.
    """
    total = 0
    for sym, triples in termset.entries_by_symbol().items():
        if sym:
            total += len(sym) - 1
            total += 2 * len(triples)
        else:
            total += len(triples)
    return total


# --------------------------------------------------------------------- #
# fused per-cell-block sweep lowering (the AOT tier)


def numba_available() -> bool:
    """True when numba imports cleanly (the container may lack it)."""
    try:  # pragma: no cover - environment-dependent branch
        import numba  # noqa: F401
    except Exception:
        return False
    return True  # pragma: no cover


_CC = None  # cached (compiler path, version line) or False


def cc_available() -> Optional[Tuple[str, str]]:
    """The system C compiler as ``(path, version line)``, or None.

    Probed once per process: the first of ``$CC``, ``cc``, ``gcc``,
    ``clang`` that answers ``--version``.  The version string participates
    in the kernel artifact digest so a toolchain change recompiles.
    """
    global _CC
    if _CC is None:
        _CC = False
        candidates = [os.environ.get("CC"), "cc", "gcc", "clang"]
        for cand in candidates:
            if not cand:
                continue
            try:
                out = subprocess.run(
                    [cand, "--version"],
                    capture_output=True,
                    text=True,
                    timeout=30,
                )
            except (OSError, subprocess.SubprocessError):
                continue
            if out.returncode == 0 and out.stdout:
                _CC = (cand, out.stdout.splitlines()[0].strip())
                break
    return _CC or None


def select_tier(tier: str = "auto") -> str:
    """Resolve a tier request (``auto``/``numba``/``cc``/``numpy``,
    overridable via ``$REPRO_KERNEL_TIER``) to the tier that will actually
    run.

    Unavailable tiers degrade (``numba`` → ``cc`` → ``numpy``) — the
    fallback tier is always available, never an error.
    """
    env = os.environ.get("REPRO_KERNEL_TIER")
    if env:
        tier = env
    if tier not in KERNEL_TIERS:
        raise ValueError(
            f"unknown kernel tier {tier!r} (known: {', '.join(KERNEL_TIERS)})"
        )
    if tier == "numpy":
        return "numpy"
    if tier == "cc":
        return "cc" if cc_available() else "numpy"
    if tier == "numba":
        return "numba" if numba_available() else "numpy"
    if numba_available():  # pragma: no cover - requires numba
        return "numba"
    return "cc" if cc_available() else "numpy"


def emit_fused_sweep_source(
    name: str, nout: int, weighted: Sequence[bool]
) -> str:
    """Source of one fused sweep kernel over cell blocks.

    The kernel covers every uniform sparse group of one compiled plan in a
    single pass over configuration cells: for each group ``g`` it sweeps
    the merged per-cell CSR block ``(d{g}, p{g}, i{g})`` (scalar factors
    already folded into the data, term entries concatenated in-row in term
    order, so the accumulation order is exactly the interpreted path's)
    and, when ``weighted[g]`` is true, applies the group's velocity factor
    ``w{g}`` in-register — the weighting/sweep fusion that removes the
    interpreted tier's full-state weighted temporaries.

    Signature: ``name(f3, out3, d0, p0, i0[, w0], d1, p1, i1[, w1], ...)``
    with ``f3``/``out3`` the ``(ncfg, n, nvel)`` cell-major views.  The
    emitted source is restricted Python (range loops, scalar arithmetic,
    2-D indexing) that numba's ``@njit`` compiles as-is and plain ``exec``
    runs for testing.
    """
    args = ["f3", "out3"]
    for g, w in enumerate(weighted):
        args += [f"d{g}", f"p{g}", f"i{g}"]
        if w:
            args.append(f"w{g}")
    lines = [
        f"def {name}({', '.join(args)}):",
        f'    """Auto-generated fused uniform-sweep kernel ({len(weighted)} groups)."""',
        "    ncfg = f3.shape[0]",
        "    nvel = f3.shape[2]",
        "    for c in range(ncfg):",
        "        fo = f3[c]",
        "        oo = out3[c]",
    ]
    for g, w in enumerate(weighted):
        lines.append(f"        for r in range({nout}):")
        lines.append(f"            for k in range(p{g}[r], p{g}[r + 1]):")
        lines.append(f"                a = d{g}[k]")
        lines.append(f"                j = i{g}[k]")
        lines.append("                for v in range(nvel):")
        if w:
            lines.append(
                f"                    oo[r, v] += a * (fo[j, v] * w{g}[v])"
            )
        else:
            lines.append("                    oo[r, v] += a * fo[j, v]")
    if not weighted:
        lines.append("        pass")
    return "\n".join(lines) + "\n"


def emit_fused_sweep_c(
    ncfg: int, nout: int, nin: int, nvel: int, weighted: Sequence[bool]
) -> str:
    """C source of one fused sweep kernel, dimensions baked as literals.

    Exported symbol: ``void fused_sweep(const double *f, double *y, ...)``
    with, per group, ``(const double *d, const int64_t *p, const int64_t
    *i[, const double *w])`` — the merged per-cell CSR block (scalar
    factors folded into ``d``) and, for weighted groups, the flattened
    ``(nvel,)`` velocity factor.  The accumulation per output element is
    group order then in-row entry order with the weight applied as
    ``a * (f * w)`` — statement-for-statement the numpy tier's (and hence
    the interpreted path's) float operation sequence, so compiling with
    contraction disabled keeps results bit-identical.
    """
    args = ["const double* restrict f", "double* restrict y"]
    for g, w in enumerate(weighted):
        args += [
            f"const double* restrict d{g}",
            f"const int64_t* restrict p{g}",
            f"const int64_t* restrict i{g}",
        ]
        if w:
            args.append(f"const double* restrict w{g}")
    lines = [
        "#include <stdint.h>",
        "",
        f"/* auto-generated fused uniform-sweep kernel:",
        f"   ncfg={ncfg} nout={nout} nin={nin} nvel={nvel}",
        f"   groups={list(map(bool, weighted))} */",
        "void fused_sweep(" + ",\n                 ".join(args) + ")",
        "{",
        "    int64_t c, r, k, v;",
        f"    for (c = 0; c < {ncfg}; ++c) {{",
        f"        const double* fc = f + c * (int64_t){nin * nvel};",
        f"        double* yc = y + c * (int64_t){nout * nvel};",
    ]
    for g, w in enumerate(weighted):
        lines += [
            f"        for (r = 0; r < {nout}; ++r) {{",
            f"            double* yr = yc + r * {nvel};",
            f"            for (k = p{g}[r]; k < p{g}[r + 1]; ++k) {{",
            f"                const double a = d{g}[k];",
            f"                const double* fj = fc + i{g}[k] * {nvel};",
            f"                for (v = 0; v < {nvel}; ++v)",
        ]
        if w:
            lines.append(
                f"                    yr[v] += a * (fj[v] * w{g}[v]);"
            )
        else:
            lines.append("                    yr[v] += a * fj[v];")
        lines += ["            }", "        }"]
    lines += ["    }", "}", ""]
    return "\n".join(lines)


#: cc flags: optimize and vectorize, but never contract multiply-add into
#: FMA or reassociate floating point — bitwise determinism is the contract
CC_FLAGS = ("-O3", "-fPIC", "-shared", "-ffp-contract=off")

_KERNEL_TMPDIR: Optional[str] = None
_LOADED_KERNELS: Dict[str, object] = {}


def _kernel_dir(out_dir: Optional[str]) -> Path:
    """Artifact directory for compiled kernels: the caller's cache root
    when configured, else one process-lifetime temp dir."""
    global _KERNEL_TMPDIR
    if out_dir:
        path = Path(out_dir).expanduser()
        path.mkdir(parents=True, exist_ok=True)
        return path
    if _KERNEL_TMPDIR is None:
        _KERNEL_TMPDIR = tempfile.mkdtemp(prefix="repro-kernels-")
    return Path(_KERNEL_TMPDIR)


class CcSweep:
    """A compiled+loaded ``cc``-tier sweep kernel.

    ``fn`` is the raw ctypes entry point taking one ``c_void_p`` per
    pointer argument (callers pass ``arr.ctypes.data`` integers);
    ``fresh`` records whether this process actually ran the compiler
    (False: content-addressed artifact reuse).
    """

    __slots__ = ("fn", "path", "source", "fresh", "nargs")

    def __init__(self, fn, path: Path, source: str, fresh: bool, nargs: int):
        self.fn = fn
        self.path = path
        self.source = source
        self.fresh = fresh
        self.nargs = nargs


def _compile_sweep_cc(
    ncfg: int,
    nout: int,
    nin: int,
    nvel: int,
    weighted: Sequence[bool],
    out_dir: Optional[str],
) -> Optional[CcSweep]:
    cc = cc_available()
    if cc is None:  # pragma: no cover - compiler probed by select_tier
        return None
    source = emit_fused_sweep_c(ncfg, nout, nin, nvel, weighted)
    digest = hashlib.sha256(
        (source + "\0" + cc[1]).encode()
    ).hexdigest()[:20]
    nargs = 2 + sum(4 if w else 3 for w in weighted)
    try:
        kdir = _kernel_dir(out_dir)
        so_path = kdir / f"ccsweep-{digest}.so"
        cached = _LOADED_KERNELS.get(str(so_path))
        if cached is not None:
            return CcSweep(cached, so_path, source, False, nargs)
        fresh = False
        if not so_path.exists():
            src_path = kdir / f"ccsweep-{digest}.c"
            src_path.write_text(source)
            fd, tmp = tempfile.mkstemp(
                dir=kdir, prefix=f".ccsweep-{digest}-", suffix=".so"
            )
            os.close(fd)
            try:
                proc = subprocess.run(
                    [cc[0], *CC_FLAGS, "-o", tmp, str(src_path)],
                    capture_output=True,
                    timeout=120,
                )
                if proc.returncode != 0:
                    return None
                os.replace(tmp, so_path)  # atomic publish
                fresh = True
            finally:
                if os.path.exists(tmp):
                    os.unlink(tmp)
        lib = ctypes.CDLL(str(so_path))
        fn = lib.fused_sweep
        fn.restype = None
        fn.argtypes = [ctypes.c_void_p] * nargs
        _LOADED_KERNELS[str(so_path)] = fn
        return CcSweep(fn, so_path, source, fresh, nargs)
    except Exception:
        # toolchain or filesystem trouble: degrade to the numpy tier
        return None


def compile_fused_sweep(
    name: str,
    nout: int,
    weighted: Sequence[bool],
    tier: str = "auto",
    ncfg: int = 0,
    nin: int = 0,
    nvel: int = 0,
    kernel_dir: Optional[str] = None,
) -> Optional[Tuple[object, str]]:
    """Compile one fused sweep kernel; returns ``(kernel, tier)`` or None.

    Under the ``numba`` tier the emitted Python source is jitted with
    ``@njit(cache=True)`` (persistently compiled, shared across processes
    by numba's own disk cache).  Under the ``cc`` tier the emitted C is
    compiled through the system compiler into a content-addressed shared
    object in ``kernel_dir`` (or a process temp dir) and returned as a
    :class:`CcSweep`.  Under ``numpy`` — or on any toolchain failure —
    this returns None and the caller runs the vectorized fallback; fused
    execution never hard-fails on a compiler.
    """
    resolved = select_tier(tier)
    if resolved == "cc":
        kern = _compile_sweep_cc(ncfg, nout, nin, nvel, weighted, kernel_dir)
        return (kern, "cc") if kern is not None else None
    if resolved != "numba":
        return None
    source = emit_fused_sweep_source(name, nout, weighted)
    namespace: Dict[str, object] = {}
    exec(compile(source, f"<generated:{name}>", "exec"), namespace)
    fn = namespace[name]
    try:  # pragma: no cover - requires numba
        from numba import njit

        jitted = njit(cache=True, fastmath=False)(fn)
        jitted.__source__ = source  # type: ignore[attr-defined]
        return jitted, "numba"
    except Exception:  # pragma: no cover - jit toolchain failure
        return None
