"""Emission of fully-unrolled kernel source code (the paper's Fig. 1).

Gkeyll's Maxima scripts write each generated kernel as unrolled C++ with all
integrals baked in at double precision, loops unrolled and common symbol
products pulled out.  This module does the same in Python: it turns a
:class:`~repro.kernels.termset.TermSet` into the source of a standalone
function ``kernel(f, aux, out)`` whose body is a flat list of fused
multiply–add statements.  The emitted source is used for

* inspection (reproducing Fig. 1 for any dimension/order/family),
* exact multiplication counting (the "~70 vs ~250 multiplications" claim),
* verifying that the unrolled path and the sparse-operator path agree to
  machine precision.
"""

from __future__ import annotations

from collections import defaultdict
from typing import TYPE_CHECKING, Dict, List

if TYPE_CHECKING:  # pragma: no cover - avoid circular import at runtime
    from ..kernels.termset import Symbol, TermSet

__all__ = ["emit_kernel_source", "compile_kernel", "count_multiplications"]


def _format_coeff(value: float) -> str:
    return repr(float(value))


def emit_kernel_source(name: str, termset: "TermSet") -> str:
    """Return the source of an unrolled kernel function.

    The function signature is ``name(f, aux, out)`` where ``f`` is indexable
    by input-coefficient number (rows may be scalars or NumPy arrays), ``aux``
    maps symbol names to values, and ``out`` is accumulated in place.
    """
    lines: List[str] = [
        f"def {name}(f, aux, out):",
        f'    """Auto-generated unrolled DG kernel ({termset.num_entries} exact nonzeros)."""',
    ]
    sym_local: Dict[tuple, str] = {}
    entries = termset.entries_by_symbol()
    for t, sym in enumerate(sorted(entries)):
        if sym:
            sym_local[sym] = f"s{t}"
            expr = "*".join(f"aux[{n!r}]" for n in sym)
            lines.append(f"    s{t} = {expr}")
    per_row: Dict[int, List[str]] = defaultdict(list)
    for sym in sorted(entries):
        local = sym_local.get(sym)
        for l, m, coeff in entries[sym]:
            piece = f"{_format_coeff(coeff)}*f[{m}]"
            if local is not None:
                piece = f"{local}*" + piece
            per_row[l].append(piece)
    if not per_row:
        lines.append("    pass")
    for l in sorted(per_row):
        joined = " + ".join(per_row[l]).replace("+ -", "- ")
        lines.append(f"    out[{l}] += {joined}")
    return "\n".join(lines) + "\n"


def compile_kernel(name: str, termset: "TermSet"):
    """Compile the emitted source and return the kernel function object."""
    source = emit_kernel_source(name, termset)
    namespace: Dict[str, object] = {}
    exec(compile(source, f"<generated:{name}>", "exec"), namespace)
    fn = namespace[name]
    fn.__source__ = source  # type: ignore[attr-defined]
    return fn


def count_multiplications(termset: "TermSet") -> int:
    """Number of scalar multiplications one evaluation of the unrolled kernel
    performs (the metric quoted for Fig. 1).

    Each symbol product of ``k`` factors costs ``k - 1`` multiplies (hoisted
    once); each tensor entry then costs 2 multiplies (coefficient times the
    hoisted symbol times ``f[m]``), or 1 when there is no symbol.
    """
    total = 0
    for sym, triples in termset.entries_by_symbol().items():
        if sym:
            total += len(sym) - 1
            total += 2 * len(triples)
        else:
            total += len(triples)
    return total
