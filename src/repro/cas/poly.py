"""Exact sparse multivariate polynomial algebra over the rationals.

This module is the core of the mini computer algebra system (CAS) that plays
the role Maxima plays in Gkeyll: every integral appearing in the DG weak form
is evaluated *exactly* in rational arithmetic, so that entries of the update
tensors which are mathematically zero are exactly zero.  That exact sparsity
is what makes the modal algorithm matrix-free and sub-quadratic in cost.

A :class:`Poly` is a sparse map from exponent multi-indices to
:class:`fractions.Fraction` coefficients over a fixed number of variables
``nvars``.  The variables are the reference-cell coordinates
``xi_0 .. xi_{nvars-1}`` living on ``[-1, 1]``.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Mapping, Tuple, Union

Exponents = Tuple[int, ...]
Scalar = Union[int, Fraction]

__all__ = ["Poly"]


def _as_fraction(value: Scalar) -> Fraction:
    if isinstance(value, Fraction):
        return value
    if isinstance(value, int):
        return Fraction(value)
    raise TypeError(f"Poly coefficients must be int or Fraction, got {type(value)!r}")


class Poly:
    """A sparse multivariate polynomial with exact rational coefficients.

    Parameters
    ----------
    nvars:
        Number of variables.
    coeffs:
        Mapping from exponent tuples (length ``nvars``) to coefficients.
        Zero coefficients are dropped.
    """

    __slots__ = ("nvars", "coeffs")

    def __init__(self, nvars: int, coeffs: Mapping[Exponents, Scalar] | None = None):
        if nvars < 0:
            raise ValueError("nvars must be non-negative")
        self.nvars = nvars
        cleaned: Dict[Exponents, Fraction] = {}
        if coeffs:
            for expo, c in coeffs.items():
                expo = tuple(int(e) for e in expo)
                if len(expo) != nvars:
                    raise ValueError(
                        f"exponent tuple {expo} has length {len(expo)}, expected {nvars}"
                    )
                if any(e < 0 for e in expo):
                    raise ValueError(f"negative exponent in {expo}")
                frac = _as_fraction(c)
                if frac != 0:
                    cleaned[expo] = cleaned.get(expo, Fraction(0)) + frac
                    if cleaned[expo] == 0:
                        del cleaned[expo]
        self.coeffs = cleaned

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def zero(cls, nvars: int) -> "Poly":
        return cls(nvars, {})

    @classmethod
    def constant(cls, nvars: int, value: Scalar) -> "Poly":
        return cls(nvars, {(0,) * nvars: value})

    @classmethod
    def one(cls, nvars: int) -> "Poly":
        return cls.constant(nvars, 1)

    @classmethod
    def variable(cls, nvars: int, var: int) -> "Poly":
        """The monomial ``xi_var``."""
        if not 0 <= var < nvars:
            raise ValueError(f"variable index {var} out of range for nvars={nvars}")
        expo = [0] * nvars
        expo[var] = 1
        return cls(nvars, {tuple(expo): 1})

    @classmethod
    def monomial(cls, nvars: int, expo: Iterable[int], coeff: Scalar = 1) -> "Poly":
        return cls(nvars, {tuple(expo): coeff})

    @classmethod
    def from_univariate(cls, nvars: int, var: int, coeffs_1d: Iterable[Scalar]) -> "Poly":
        """Lift a 1-D polynomial (ascending coefficients in ``xi_var``)."""
        data: Dict[Exponents, Scalar] = {}
        for power, c in enumerate(coeffs_1d):
            expo = [0] * nvars
            expo[var] = power
            data[tuple(expo)] = c
        return cls(nvars, data)

    # ------------------------------------------------------------------ #
    # ring operations
    # ------------------------------------------------------------------ #
    def __add__(self, other: "Poly") -> "Poly":
        self._check_compatible(other)
        out = dict(self.coeffs)
        for expo, c in other.coeffs.items():
            out[expo] = out.get(expo, Fraction(0)) + c
            if out[expo] == 0:
                del out[expo]
        result = Poly(self.nvars)
        result.coeffs = out
        return result

    def __neg__(self) -> "Poly":
        result = Poly(self.nvars)
        result.coeffs = {e: -c for e, c in self.coeffs.items()}
        return result

    def __sub__(self, other: "Poly") -> "Poly":
        return self + (-other)

    def __mul__(self, other: Union["Poly", Scalar]) -> "Poly":
        if isinstance(other, (int, Fraction)):
            frac = _as_fraction(other)
            if frac == 0:
                return Poly.zero(self.nvars)
            result = Poly(self.nvars)
            result.coeffs = {e: c * frac for e, c in self.coeffs.items()}
            return result
        self._check_compatible(other)
        out: Dict[Exponents, Fraction] = {}
        for e1, c1 in self.coeffs.items():
            for e2, c2 in other.coeffs.items():
                expo = tuple(a + b for a, b in zip(e1, e2))
                acc = out.get(expo, Fraction(0)) + c1 * c2
                if acc == 0:
                    out.pop(expo, None)
                else:
                    out[expo] = acc
        result = Poly(self.nvars)
        result.coeffs = out
        return result

    __rmul__ = __mul__

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Poly):
            return NotImplemented
        return self.nvars == other.nvars and self.coeffs == other.coeffs

    def __hash__(self) -> int:
        return hash((self.nvars, frozenset(self.coeffs.items())))

    def _check_compatible(self, other: "Poly") -> None:
        if self.nvars != other.nvars:
            raise ValueError(
                f"incompatible polynomials: nvars {self.nvars} != {other.nvars}"
            )

    # ------------------------------------------------------------------ #
    # calculus
    # ------------------------------------------------------------------ #
    def diff(self, var: int) -> "Poly":
        """Partial derivative with respect to ``xi_var``."""
        if not 0 <= var < self.nvars:
            raise ValueError(f"variable index {var} out of range")
        out: Dict[Exponents, Fraction] = {}
        for expo, c in self.coeffs.items():
            k = expo[var]
            if k == 0:
                continue
            new = list(expo)
            new[var] = k - 1
            key = tuple(new)
            out[key] = out.get(key, Fraction(0)) + c * k
        result = Poly(self.nvars)
        result.coeffs = {e: c for e, c in out.items() if c != 0}
        return result

    def integrate_cube(self) -> Fraction:
        """Exact integral over the reference cube ``[-1, 1]^nvars``.

        Uses ``int_{-1}^{1} x^k dx = 2/(k+1)`` for even ``k`` (zero for odd).
        """
        total = Fraction(0)
        for expo, c in self.coeffs.items():
            if any(e % 2 for e in expo):
                continue
            term = c
            for e in expo:
                term *= Fraction(2, e + 1)
            total += term
        return total

    def substitute_value(self, var: int, value: Scalar) -> "Poly":
        """Substitute ``xi_var -> value`` (a rational number).

        The result keeps the same ``nvars`` with exponent 0 in ``var`` —
        callers that need a lower-dimensional polynomial can
        :meth:`drop_var` afterwards.
        """
        val = _as_fraction(value)
        out: Dict[Exponents, Fraction] = {}
        for expo, c in self.coeffs.items():
            new = list(expo)
            k = new[var]
            new[var] = 0
            key = tuple(new)
            acc = out.get(key, Fraction(0)) + c * (val ** k)
            if acc == 0:
                out.pop(key, None)
            else:
                out[key] = acc
        result = Poly(self.nvars)
        result.coeffs = out
        return result

    def drop_var(self, var: int) -> "Poly":
        """Remove a variable whose exponent is zero in every term."""
        out: Dict[Exponents, Fraction] = {}
        for expo, c in self.coeffs.items():
            if expo[var] != 0:
                raise ValueError(
                    f"cannot drop variable {var}: appears with exponent {expo[var]}"
                )
            out[expo[:var] + expo[var + 1:]] = c
        result = Poly(self.nvars - 1)
        result.coeffs = out
        return result

    # ------------------------------------------------------------------ #
    # evaluation / inspection
    # ------------------------------------------------------------------ #
    def eval(self, point: Iterable[float]) -> float:
        """Evaluate at a point (floating point)."""
        pt = tuple(point)
        if len(pt) != self.nvars:
            raise ValueError("point dimensionality mismatch")
        total = 0.0
        for expo, c in self.coeffs.items():
            term = float(c)
            for x, e in zip(pt, expo):
                if e:
                    term *= x ** e
            total += term
        return total

    def eval_fraction(self, point: Iterable[Scalar]) -> Fraction:
        """Evaluate exactly at a rational point."""
        pt = [_as_fraction(x) for x in point]
        if len(pt) != self.nvars:
            raise ValueError("point dimensionality mismatch")
        total = Fraction(0)
        for expo, c in self.coeffs.items():
            term = c
            for x, e in zip(pt, expo):
                if e:
                    term *= x ** e
            total += term
        return total

    def degree(self) -> int:
        """Total degree (-1 for the zero polynomial)."""
        if not self.coeffs:
            return -1
        return max(sum(e) for e in self.coeffs)

    def degree_in(self, var: int) -> int:
        if not self.coeffs:
            return -1
        return max(e[var] for e in self.coeffs)

    def is_zero(self) -> bool:
        return not self.coeffs

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.coeffs:
            return "Poly(0)"
        parts = []
        for expo in sorted(self.coeffs, key=lambda e: (sum(e), e)):
            c = self.coeffs[expo]
            mono = "*".join(
                f"xi{i}^{e}" if e > 1 else f"xi{i}" for i, e in enumerate(expo) if e
            )
            parts.append(f"{c}" + (f"*{mono}" if mono else ""))
        return "Poly(" + " + ".join(parts) + ")"
