"""``python -m repro`` — the declarative runtime CLI."""

from .runtime.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
