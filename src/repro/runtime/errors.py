"""Runtime-layer error types."""

from __future__ import annotations

__all__ = ["SpecError"]


class SpecError(ValueError):
    """A declarative spec is invalid.

    Always names the offending field (dotted path into the spec dict, e.g.
    ``species[0].initial.kind``) so errors from JSON inputs are actionable.
    """

    def __init__(self, field: str, message: str):
        self.field = field
        super().__init__(f"{field}: {message}")
