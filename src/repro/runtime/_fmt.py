"""Tiny fixed-width table renderer shared by the CLI surfaces.

``repro plans list`` and ``repro report`` both print aligned columnar
tables; this helper owns the alignment rules so the two commands (and any
future ones) agree on the look: columns auto-sized to their widest cell,
numeric-ish columns right-aligned, two spaces between columns, an optional
header underlined with dashes.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

__all__ = ["render_table", "format_ms", "format_bytes"]


def _is_numeric(text: str) -> bool:
    if not text:
        return False
    try:
        float(text.rstrip("%x"))
        return True
    except ValueError:
        return False


def render_table(
    rows: Iterable[Sequence[object]],
    header: Optional[Sequence[str]] = None,
    indent: str = "",
    align: Optional[Sequence[str]] = None,
) -> str:
    """Render rows as an aligned table; returns the joined string.

    ``align`` gives per-column ``"<"``/``">"`` overrides; unspecified
    columns right-align when every body cell looks numeric (trailing ``%``
    or ``x`` suffixes allowed, so ``1.03x`` and ``42%`` count).
    """
    body: List[List[str]] = [[str(c) for c in row] for row in rows]
    if not body and header is None:
        return ""
    ncols = max(
        [len(r) for r in body] + ([len(header)] if header is not None else [])
    )
    for row in body:
        row.extend([""] * (ncols - len(row)))
    head = [str(c) for c in header] if header is not None else None
    if head is not None:
        head.extend([""] * (ncols - len(head)))

    widths = [0] * ncols
    for row in body + ([head] if head is not None else []):
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    aligns: List[str] = []
    for i in range(ncols):
        if align is not None and i < len(align) and align[i] in ("<", ">"):
            aligns.append(align[i])
        else:
            cells = [r[i] for r in body if r[i]]
            aligns.append(">" if cells and all(_is_numeric(c) for c in cells) else "<")

    def fmt(row: List[str]) -> str:
        cells = [f"{cell:{aligns[i]}{widths[i]}}" for i, cell in enumerate(row)]
        return (indent + "  ".join(cells)).rstrip()

    lines: List[str] = []
    if head is not None:
        lines.append(fmt(head))
        lines.append(fmt(["-" * w for w in widths]))
    lines.extend(fmt(row) for row in body)
    return "\n".join(lines)


def format_ms(ms: float) -> str:
    """Milliseconds with sensible precision (``0.12``, ``3.4``, ``1234``)."""
    if ms >= 100:
        return f"{ms:.0f}"
    if ms >= 1:
        return f"{ms:.1f}"
    return f"{ms:.2f}"


def format_bytes(n: float) -> str:
    n = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if n < 1024 or unit == "GiB":
            return f"{n:.0f}{unit}" if unit == "B" else f"{n:.1f}{unit}"
        n /= 1024.0
    return f"{n:.1f}GiB"
