"""Command-line entry point: ``python -m repro`` / the ``repro`` script.

Subcommands::

    repro list                         # catalogue of registered scenarios
    repro systems                      # catalogue of registered system kinds
    repro show <scenario>              # the scenario's spec as JSON
    repro run <scenario> [--set k=v]   # build + run one simulation
    repro resume <checkpoint.npz>      # continue an interrupted run
    repro campaign <file.json>         # parameter-scan batch runner
    repro worker <manifest-dir>        # claim campaign entries (lease-based)
    repro plans list|clear|warm        # inspect/manage the compiled-plan cache
    repro report <outdir>              # render a run's observability output
    repro serve <dir>                  # job-service daemon (HTTP, dedup, workers)
    repro submit <scenario|spec.json>  # submit a job to a serve daemon
    repro jobs                         # list a serve daemon's jobs

``repro serve <dir>`` turns the directory into a job store and serves it
over HTTP: submissions are deduplicated by a canonical content hash of the
spec (an identical resubmission returns the finished result with zero
compute), queued jobs run on a pool of persistent lease-heartbeated worker
processes, and ``GET /jobs/<id>/diagnostics`` streams the running job's
``diagnostics.jsonl`` incrementally.  SIGTERM drains gracefully.
``repro submit`` and ``repro jobs`` talk to a daemon via ``--url`` or
``--dir <store-dir>`` (the daemon drops a ``serve.json`` rendezvous file).

``repro run ... --trace`` turns on full observability for the run
(``observability.mode=trace``): a Chrome-trace ``trace.json`` (loadable in
Perfetto, one row per sharded worker) and a ``metrics.jsonl`` counter
stream land in the outdir, and ``repro report <outdir>`` renders the
per-phase time breakdown and the top plans by self-time from them.

The compiled-plan disk cache (``~/.cache/repro`` or ``$REPRO_CACHE_DIR``)
is controlled per run through the spec: ``--set plan_cache=off`` disables
it, ``--set plan_cache=/some/dir`` redirects it, and
``--set plan_mode=interpreted`` bypasses fused kernels entirely.
``repro plans warm <scenario>`` pre-compiles and stores a scenario's plans
so subsequent runs (including sharded workers) start warm.

``--set key=val`` accepts scenario parameters (``drift=1.5``), spec fields
(``cfl=0.5``, ``steps=10``) and dotted spec paths
(``species.elc.initial.vt=0.4``); values parse as JSON with a plain-string
fallback, so ``--set cells=[8,8]`` and ``--set family=serendipity`` both work.

``--backend process:4`` runs a simulation across four real worker processes
(shared-memory halo exchange, bit-identical to serial);
``repro campaign ... --dispatch shard --workers N`` drains a campaign with N
lease-based claim workers, and ``repro worker <dir>`` joins (or remotely
drains) such a campaign from any host sharing the filesystem.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

from .campaign import CampaignSpec, run_campaign
from .driver import Driver
from .errors import SpecError
from .scenarios import build, get_scenario, list_scenarios

__all__ = ["main"]


def _parse_set(pairs: List[str]) -> Dict[str, object]:
    overrides: Dict[str, object] = {}
    for pair in pairs:
        if "=" not in pair:
            raise SpecError("--set", f"expected key=value, got {pair!r}")
        key, _, raw = pair.partition("=")
        if not key:
            raise SpecError("--set", f"empty key in {pair!r}")
        try:
            overrides[key] = json.loads(raw)
        except json.JSONDecodeError:
            overrides[key] = raw
    return overrides


def _print_summary(result: Dict[str, object], as_json: bool) -> None:
    if as_json:
        print(json.dumps(result, indent=2))
        return
    print(f"scenario      : {result['scenario']}")
    print(f"status        : {result['status']}")
    print(f"steps         : {result['steps']}")
    print(f"final time    : {result['time']:.6g}")
    print(f"field energy  : {result['field_energy']:.6e}")
    print(f"total energy  : {result['total_energy']:.6e}")
    if "energy_drift" in result:
        print(f"energy drift  : {result['energy_drift']:.3e}")
    print(f"wall/step     : {1e3 * result['wall_per_step']:.2f} ms")


def _cmd_list(args) -> int:
    scenarios = list_scenarios()
    width = max(len(sc.name) for sc in scenarios)
    for sc in scenarios:
        print(f"{sc.name:<{width}}  {sc.description}")
        if args.verbose:
            for key, default in sc.params.items():
                print(f"{'':<{width}}    {key} = {default}")
    return 0


def _cmd_systems(args) -> int:
    from ..systems.registry import list_system_kinds

    kinds = list_system_kinds()
    width = max(len(k.name) for k in kinds)
    for kind in kinds:
        shard = "" if kind.shardable else "  [no process:N sharding]"
        print(f"{kind.name:<{width}}  {kind.description}{shard}")
    return 0


def _cmd_show(args) -> int:
    spec = build(args.scenario, **_parse_set(args.set))
    print(spec.to_json())
    return 0


def _cmd_run(args) -> int:
    overrides = _parse_set(args.set)
    if args.backend is not None:
        overrides["backend"] = args.backend
    if args.trace:
        overrides["observability.mode"] = "trace"
    spec = build(args.scenario, **overrides)
    driver = Driver(spec, outdir=args.outdir, wall_clock_budget=args.budget)
    try:
        result = driver.run()
    finally:
        driver.close()
    _print_summary(result, args.json)
    if not args.json:
        if driver.checkpoint_path is not None:
            print(f"checkpoint    : {driver.checkpoint_path}")
        if args.trace and driver.trace_path is not None:
            print(f"trace         : {driver.trace_path}")
    return 0


def _cmd_resume(args) -> int:
    overrides = _parse_set(args.set)
    if args.backend is not None:
        overrides["backend"] = args.backend
    driver = Driver.from_checkpoint(
        args.checkpoint,
        outdir=args.outdir,
        wall_clock_budget=args.budget,
        overrides=overrides,
    )
    try:
        result = driver.run()
    finally:
        driver.close()
    _print_summary(result, args.json)
    return 0


def _campaign_progress(pid, entry) -> None:
    status = entry["status"]
    detail = entry.get("error", "")
    if status == "done" and entry["result"]:
        detail = f"t={entry['result']['time']:.4g} steps={entry['result']['steps']}"
    print(f"[{pid}] {status} {detail}")


def _cmd_campaign(args) -> int:
    if args.prepare_only and args.dispatch != "shard":
        raise SpecError(
            "--prepare-only",
            "only meaningful with --dispatch shard (the pool dispatcher "
            "has no claimable manifest to prepare)",
        )
    campaign = CampaignSpec.from_file(args.file)
    outdir = args.outdir or f"{campaign.name}_out"

    if args.dispatch == "shard":
        from ..dist.lease import prepare_campaign_dir, run_dispatched

        if args.prepare_only:
            manifest = prepare_campaign_dir(campaign, outdir)
            pending = sum(
                1 for e in manifest["points"].values() if e["status"] != "done"
            )
            print(
                f"campaign {campaign.name!r}: {len(manifest['points'])} points "
                f"({pending} claimable) prepared in {outdir}; start workers "
                f"with `repro worker {outdir}`"
            )
            return 0
        manifest = run_dispatched(
            campaign,
            outdir,
            workers=args.workers,
            lease_timeout=_checked_lease_timeout(args.lease_timeout),
            progress=_campaign_progress,
        )
    else:
        manifest = run_campaign(
            campaign, outdir, workers=args.workers, progress=_campaign_progress
        )
    summary = manifest["summary"]
    print(
        f"campaign {campaign.name!r}: {summary['total']} points — "
        f"{summary['ran']} ran, {summary['skipped']} skipped, "
        f"{summary['failed']} failed (manifest: {outdir}/manifest.json)"
    )
    return 1 if summary["failed"] else 0


def _checked_lease_timeout(value) -> float:
    """Validate ``--lease-timeout`` eagerly so a bad value is a usage
    error (exit 2 with the field named), not a mid-run traceback."""
    from ..dist.lease import validate_lease_timeout

    try:
        return validate_lease_timeout(value)
    except ValueError as exc:
        raise SpecError("--lease-timeout", str(exc)) from exc


def _cmd_worker(args) -> int:
    from ..dist.lease import claim_loop

    summary = claim_loop(
        args.dir,
        lease_timeout=_checked_lease_timeout(args.lease_timeout),
        progress=_campaign_progress,
        max_points=args.max_points,
    )
    print(
        f"worker done: {len(summary['ran'])} points ran, "
        f"{len(summary['failed'])} failed"
    )
    return 1 if summary["failed"] else 0


def _plans_cache(setting: str):
    from ..engine.plancache import PlanCache, resolve_cache_root

    root = resolve_cache_root(setting)
    if root is None:
        raise SpecError("--cache", "the plan cache is disabled ('off')")
    return PlanCache(root)


def _cmd_plans_list(args) -> int:
    cache = _plans_cache(args.cache)
    entries = cache.entries()
    kernels = cache.kernels()
    if args.json:
        print(json.dumps({
            "root": str(cache.root),
            "plans": entries,
            "kernels": [str(p) for p in kernels],
        }, indent=2))
        return 0
    from ._fmt import render_table

    print(f"cache root : {cache.root}")
    total = sum(e.get("bytes", 0) for e in entries)
    print(f"plans      : {len(entries)} entries, {total} bytes")
    rows = []
    for e in entries:
        if e["status"] == "ok":
            detail = f"{e['nout']}x{e['nin']}  cells={e['cell_shape']}"
        else:
            detail = e["status"]
        rows.append((e["digest"][:16], e.get("bytes", 0), detail))
    if rows:
        print(render_table(rows, indent="  ", align=("<", ">", "<")))
    print(f"kernels    : {len(kernels)} compiled objects")
    for p in kernels:
        print(f"  {p.name}")
    return 0


def _cmd_report(args) -> int:
    from ..obs.report import render_report

    print(render_report(args.outdir, top=args.top))
    return 0


def _cmd_serve(args) -> int:
    from ..serve import ServeDaemon

    daemon = ServeDaemon(
        args.dir,
        host=args.host,
        port=args.port,
        workers=args.workers,
        lease_timeout=_checked_lease_timeout(args.lease_timeout),
        poll=args.poll,
    )
    daemon.start()
    print(
        f"serving {args.dir} on {daemon.url} "
        f"({daemon.pool.workers} workers, lease timeout "
        f"{daemon.lease_timeout:g}s); SIGTERM drains",
        flush=True,
    )
    # start() already ran; run() reuses the live listener and blocks
    return daemon.run()


def _serve_client(args):
    from ..serve import ServeClient

    if args.url:
        return ServeClient(args.url)
    return ServeClient.from_dir(args.dir or ".")


def _cmd_submit(args) -> int:
    import os

    from ..serve import ServeError
    from .spec import SimulationSpec

    overrides = _parse_set(args.set)
    try:
        client = _serve_client(args)
        if os.path.isfile(args.scenario):
            spec = SimulationSpec.from_json(Path(args.scenario).read_text())
            if overrides:
                spec = spec.with_overrides(overrides)
            resp = client.submit(spec=spec)
        else:
            resp = client.submit(scenario=args.scenario, overrides=overrides)
        job_id = resp["job"]
        if args.stream:
            for chunk in client.stream_diagnostics(job_id):
                sys.stdout.buffer.write(chunk)
                sys.stdout.buffer.flush()
            final = client.job(job_id)
            return 0 if final["status"] == "done" else 1
        if args.wait:
            result = client.result(job_id, wait=True, timeout=args.timeout)
            if args.json:
                print(json.dumps({**resp, "result": result}, indent=2))
            else:
                print(f"job           : {job_id[:16]} ({resp['compute']})")
                _print_summary(result, as_json=False)
            return 0
        if args.json:
            print(json.dumps(resp, indent=2))
        else:
            print(
                f"job {job_id[:16]} {resp['compute']} "
                f"(status: {resp['status']}, submits: {resp['submits']})"
            )
        return 0
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_jobs(args) -> int:
    from ..serve import ServeError

    try:
        jobs = _serve_client(args).jobs()
    except ServeError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(jobs, indent=2))
        return 0
    if not jobs:
        print("no jobs")
        return 0
    from ._fmt import render_table

    rows = [
        (
            rec["id"][:16],
            rec.get("name") or "?",
            rec["status"],
            rec.get("submits", 0),
            rec.get("attempts", 0),
            rec.get("worker") or "-",
        )
        for rec in jobs
    ]
    print(
        render_table(
            rows,
            header=("job", "scenario", "status", "submits", "attempts", "worker"),
        )
    )
    return 0


def _cmd_plans_clear(args) -> int:
    cache = _plans_cache(args.cache)
    removed = cache.clear()
    print(f"removed {removed} plan entries from {cache.root}")
    return 0


def _cmd_plans_warm(args) -> int:
    """Compile (and store) every plan a scenario's RHS needs, so later runs
    — serial drivers, sharded parents — hydrate instead of compiling."""
    import numpy as np

    from ..engine.compile import STATS
    from .driver import build_app

    cache = _plans_cache(args.cache)
    overrides = _parse_set(args.set)
    # plans only exist per cell shape, so warm with the serial (numpy)
    # backend: that is the shape drivers and sharded parents compile for
    overrides["backend"] = "numpy"
    overrides["plan_cache"] = str(cache.root)
    spec = build(args.scenario, **overrides)
    before = STATS.snapshot()
    app = build_app(spec)
    state = app.state()
    out = {k: np.empty_like(v) for k, v in state.items()}
    app.rhs(state, out=out)
    delta = STATS.delta(STATS.snapshot(), before)
    print(
        f"warmed {args.scenario!r}: compiled {delta['compiled']}, "
        f"hydrated {delta['hydrated']}, stored {delta['cache_stores']}, "
        f"kernels built {delta['kernels_built']} (cache: {cache.root})"
    )
    return 0


def _build_parser() -> argparse.ArgumentParser:
    from ..dist.lease import DEFAULT_LEASE_TIMEOUT

    parser = argparse.ArgumentParser(
        prog="repro",
        description="Declarative runtime for the alias-free modal DG kinetic solver.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_list = sub.add_parser("list", help="list registered scenarios")
    p_list.add_argument("-v", "--verbose", action="store_true", help="show parameters")
    p_list.set_defaults(func=_cmd_list)

    p_systems = sub.add_parser(
        "systems", help="list registered system kinds (SimulationSpec models)"
    )
    p_systems.set_defaults(func=_cmd_systems)

    p_show = sub.add_parser("show", help="print a scenario's spec as JSON")
    p_show.add_argument("scenario")
    p_show.add_argument("--set", action="append", default=[], metavar="KEY=VAL")
    p_show.set_defaults(func=_cmd_show)

    p_run = sub.add_parser("run", help="run one scenario")
    p_run.add_argument("scenario")
    p_run.add_argument("--set", action="append", default=[], metavar="KEY=VAL")
    p_run.add_argument("--outdir", default=None, help="output/checkpoint directory")
    p_run.add_argument("--budget", type=float, default=None, help="wall-clock budget [s]")
    p_run.add_argument(
        "--backend",
        default=None,
        help="execution backend (numpy, threaded[:N], process[:N])",
    )
    p_run.add_argument("--json", action="store_true", help="print the summary as JSON")
    p_run.add_argument(
        "--trace",
        action="store_true",
        help="full observability: write Chrome-trace trace.json + "
        "metrics.jsonl to the outdir (same as --set observability.mode=trace)",
    )
    p_run.set_defaults(func=_cmd_run)

    p_resume = sub.add_parser("resume", help="resume from a checkpoint")
    p_resume.add_argument("checkpoint")
    p_resume.add_argument("--set", action="append", default=[], metavar="KEY=VAL")
    p_resume.add_argument("--outdir", default=None)
    p_resume.add_argument("--budget", type=float, default=None)
    p_resume.add_argument(
        "--backend",
        default=None,
        help="execution backend (numpy, threaded[:N], process[:N])",
    )
    p_resume.add_argument("--json", action="store_true")
    p_resume.set_defaults(func=_cmd_resume)

    p_camp = sub.add_parser("campaign", help="run a parameter-scan campaign")
    p_camp.add_argument("file", help="campaign JSON file")
    p_camp.add_argument("--outdir", default=None)
    p_camp.add_argument("--workers", type=int, default=None)
    p_camp.add_argument(
        "--dispatch",
        choices=("pool", "shard"),
        default="pool",
        help="pool: in-process worker pool (default); shard: lease-based "
        "claim workers that other hosts can join via `repro worker`",
    )
    p_camp.add_argument(
        "--prepare-only",
        action="store_true",
        help="with --dispatch shard: write the manifest and exit without "
        "running anything (start workers separately)",
    )
    p_camp.add_argument(
        "--lease-timeout",
        type=float,
        default=DEFAULT_LEASE_TIMEOUT,
        help="seconds before an unheartbeated claim lease counts as stale",
    )
    p_camp.set_defaults(func=_cmd_campaign)

    p_worker = sub.add_parser(
        "worker", help="claim and run entries from a dispatched campaign"
    )
    p_worker.add_argument("dir", help="campaign directory (holds manifest.json)")
    p_worker.add_argument(
        "--lease-timeout", type=float, default=DEFAULT_LEASE_TIMEOUT
    )
    p_worker.add_argument(
        "--max-points", type=int, default=None, help="stop after N claims"
    )
    p_worker.set_defaults(func=_cmd_worker)

    p_serve = sub.add_parser(
        "serve", help="run the job-service daemon over a store directory"
    )
    p_serve.add_argument("dir", help="job store directory (created if missing)")
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 picks a free one)"
    )
    p_serve.add_argument(
        "--workers", type=int, default=2, help="persistent worker processes"
    )
    p_serve.add_argument(
        "--lease-timeout",
        type=float,
        default=DEFAULT_LEASE_TIMEOUT,
        help="seconds before a crashed worker's job lease counts as stale",
    )
    p_serve.add_argument(
        "--poll", type=float, default=0.2, help="worker/stream poll interval [s]"
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_submit = sub.add_parser(
        "submit", help="submit a job to a running serve daemon"
    )
    p_submit.add_argument(
        "scenario", help="registered scenario name, or a spec JSON file"
    )
    p_submit.add_argument("--set", action="append", default=[], metavar="KEY=VAL")
    p_submit.add_argument("--url", default=None, help="daemon URL (http://host:port)")
    p_submit.add_argument(
        "--dir", default=None,
        help="job store directory (reads the daemon's serve.json)",
    )
    p_submit.add_argument(
        "--wait", action="store_true", help="block until the result is ready"
    )
    p_submit.add_argument(
        "--stream",
        action="store_true",
        help="stream the job's diagnostics.jsonl to stdout until it finishes",
    )
    p_submit.add_argument(
        "--timeout", type=float, default=300.0, help="--wait timeout [s]"
    )
    p_submit.add_argument("--json", action="store_true")
    p_submit.set_defaults(func=_cmd_submit)

    p_jobs = sub.add_parser("jobs", help="list a serve daemon's jobs")
    p_jobs.add_argument("--url", default=None, help="daemon URL (http://host:port)")
    p_jobs.add_argument(
        "--dir", default=None,
        help="job store directory (reads the daemon's serve.json)",
    )
    p_jobs.add_argument("--json", action="store_true")
    p_jobs.set_defaults(func=_cmd_jobs)

    p_plans = sub.add_parser(
        "plans", help="inspect or manage the compiled-plan disk cache"
    )
    plans_sub = p_plans.add_subparsers(dest="action", required=True)
    pp_list = plans_sub.add_parser("list", help="inventory the cache")
    pp_list.add_argument(
        "--cache", default="auto",
        help="cache root (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    pp_list.add_argument("--json", action="store_true")
    pp_list.set_defaults(func=_cmd_plans_list)
    pp_clear = plans_sub.add_parser(
        "clear", help="remove every cached plan and compiled kernel"
    )
    pp_clear.add_argument("--cache", default="auto")
    pp_clear.set_defaults(func=_cmd_plans_clear)
    pp_warm = plans_sub.add_parser(
        "warm", help="pre-compile and store a scenario's plans"
    )
    pp_warm.add_argument("scenario")
    pp_warm.add_argument("--set", action="append", default=[], metavar="KEY=VAL")
    pp_warm.add_argument("--cache", default="auto")
    pp_warm.set_defaults(func=_cmd_plans_warm)

    p_report = sub.add_parser(
        "report",
        help="render a run's observability output (trace.json/metrics.jsonl)",
    )
    p_report.add_argument("outdir", help="a Driver output directory")
    p_report.add_argument(
        "--top", type=int, default=10, help="plans to show in the self-time table"
    )
    p_report.set_defaults(func=_cmd_report)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = _build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except SpecError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # the reader went away (e.g. `repro list | head`); exit quietly
        # instead of tracebacking, and stop Python's shutdown flush from
        # printing a secondary error
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
