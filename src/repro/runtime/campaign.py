"""Batch campaign runner: parameter scans over scenario overrides.

A campaign is a JSON file naming a scenario, a set of base overrides, and a
scan — either a ``scan`` object (grid product over per-key value lists) or
an explicit ``points`` list.  Points execute through a process pool (or
serially for ``workers <= 1``), each in its own subdirectory, and a
``manifest.json`` records per-point status and results after every
completion.  Rerunning an interrupted campaign reads the manifest and skips
every point already marked done — the batch-scan idiom of the related
config-driven solver tooling.
"""

from __future__ import annotations

import itertools
import json
import os
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Union

from .driver import Driver
from .errors import SpecError
from .scenarios import build
from .spec import _reject_unknown

__all__ = [
    "CampaignSpec",
    "expand_points",
    "init_manifest",
    "run_campaign",
    "load_manifest",
]

PathLike = Union[str, Path]
MANIFEST_NAME = "manifest.json"


@dataclass(frozen=True)
class CampaignSpec:
    """Declarative parameter-scan description."""

    scenario: str
    name: str = "campaign"
    base: Dict[str, object] = field(default_factory=dict)
    scan: Dict[str, List[object]] = field(default_factory=dict)
    points: Optional[List[Dict[str, object]]] = None
    workers: int = 1

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "scenario": self.scenario,
            "base": dict(self.base),
            "scan": {k: list(v) for k, v in self.scan.items()},
            "points": None if self.points is None else [dict(p) for p in self.points],
            "workers": self.workers,
        }

    @classmethod
    def from_dict(cls, data: Mapping, path: str = "campaign") -> "CampaignSpec":
        _reject_unknown(data, path, ("name", "scenario", "base", "scan", "points", "workers"))
        if "scenario" not in data:
            raise SpecError(f"{path}.scenario", "missing required field")
        scan = data.get("scan", {})
        if not isinstance(scan, Mapping):
            raise SpecError(f"{path}.scan", f"expected an object, got {scan!r}")
        for key, vals in scan.items():
            if not isinstance(vals, (list, tuple)) or not vals:
                raise SpecError(
                    f"{path}.scan.{key}", f"expected a non-empty list of values, got {vals!r}"
                )
        points = data.get("points")
        if points is not None:
            if not isinstance(points, (list, tuple)):
                raise SpecError(f"{path}.points", f"expected a list, got {points!r}")
            for i, p in enumerate(points):
                if not isinstance(p, Mapping):
                    raise SpecError(f"{path}.points[{i}]", f"expected an object, got {p!r}")
        base = data.get("base", {})
        if not isinstance(base, Mapping):
            raise SpecError(f"{path}.base", f"expected an object, got {base!r}")
        workers = data.get("workers", 1)
        if not isinstance(workers, int) or isinstance(workers, bool) or workers < 1:
            raise SpecError(f"{path}.workers", f"expected a positive integer, got {workers!r}")
        return cls(
            scenario=data["scenario"],
            name=data.get("name", "campaign"),
            base=dict(base),
            scan={k: list(v) for k, v in scan.items()},
            points=None if points is None else [dict(p) for p in points],
            workers=workers,
        )

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError("campaign", f"invalid JSON: {exc}") from exc
        return cls.from_dict(data)

    @classmethod
    def from_file(cls, path: PathLike) -> "CampaignSpec":
        return cls.from_json(Path(path).read_text())


def expand_points(campaign: CampaignSpec) -> List[Dict[str, object]]:
    """Enumerate override dicts: base ∪ (scan grid product or explicit points)."""
    if campaign.points is not None:
        variations: List[Dict[str, object]] = [dict(p) for p in campaign.points]
    elif campaign.scan:
        keys = list(campaign.scan)
        variations = [
            dict(zip(keys, combo))
            for combo in itertools.product(*(campaign.scan[k] for k in keys))
        ]
    else:
        variations = [{}]
    return [{**campaign.base, **var} for var in variations]


def _run_point(scenario: str, overrides: Dict[str, object], point_dir: str) -> Dict:
    """Execute one scan point (top-level so it pickles into worker processes)."""
    spec = build(scenario, **overrides)
    driver = Driver(spec, outdir=point_dir)
    try:
        result = driver.run()
    finally:
        # a process-sharded point holds worker processes + shared segments
        driver.close()
    Path(point_dir, "result.json").write_text(json.dumps(result, indent=2))
    return result


def _write_manifest(path: Path, manifest: dict) -> None:
    tmp = path.with_suffix(".tmp")
    tmp.write_text(json.dumps(manifest, indent=2))
    os.replace(tmp, path)


def load_manifest(outdir: PathLike) -> Optional[dict]:
    path = Path(outdir) / MANIFEST_NAME
    if not path.exists():
        return None
    return json.loads(path.read_text())


def init_manifest(campaign: CampaignSpec, outdir: PathLike):
    """Create (or resume) the campaign manifest in ``outdir``.

    Returns ``(manifest, pending_ids, skipped)``: points already marked
    ``"done"`` with unchanged overrides are carried over; everything else is
    reset to ``"pending"``.  The manifest is written atomically before
    returning, so both the in-process runner and lease-based shard workers
    (:mod:`repro.dist.lease`) start from the same on-disk state.
    """
    outdir = Path(outdir)
    outdir.mkdir(parents=True, exist_ok=True)
    points = expand_points(campaign)
    ids = [f"p{i:04d}" for i in range(len(points))]

    previous = load_manifest(outdir) or {"points": {}}
    manifest = {
        "name": campaign.name,
        "campaign": campaign.to_dict(),
        "points": {},
    }
    pending = []
    skipped = 0
    for pid, overrides in zip(ids, points):
        old = previous.get("points", {}).get(pid)
        if old and old.get("status") == "done" and old.get("overrides") == overrides:
            manifest["points"][pid] = old
            skipped += 1
        else:
            manifest["points"][pid] = {
                "overrides": overrides,
                "status": "pending",
                "result": None,
            }
            pending.append(pid)
    _write_manifest(outdir / MANIFEST_NAME, manifest)
    return manifest, pending, skipped


def run_campaign(
    campaign: CampaignSpec,
    outdir: PathLike,
    workers: Optional[int] = None,
    progress=None,
) -> dict:
    """Run (or resume) a campaign; returns the final manifest.

    The manifest carries one entry per point (id, overrides, status, result)
    and is rewritten atomically after every completion, so a killed campaign
    resumes by rerunning only the points not yet marked ``"done"``.  A point
    whose stored overrides no longer match the campaign file is re-executed.
    """
    outdir = Path(outdir)
    workers = campaign.workers if workers is None else workers
    manifest, pending, skipped = init_manifest(campaign, outdir)
    manifest_path = outdir / MANIFEST_NAME

    def finish(pid: str, result: Optional[dict], error: Optional[str]) -> None:
        entry = manifest["points"][pid]
        entry["status"] = "done" if error is None else "failed"
        entry["result"] = result
        if error is not None:
            entry["error"] = error
        _write_manifest(manifest_path, manifest)
        if progress is not None:
            progress(pid, entry)

    if workers <= 1:
        for pid in pending:
            try:
                result = _run_point(
                    campaign.scenario,
                    manifest["points"][pid]["overrides"],
                    str(outdir / pid),
                )
                finish(pid, result, None)
            except Exception as exc:  # noqa: BLE001 - recorded per point
                finish(pid, None, f"{type(exc).__name__}: {exc}")
    else:
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                pool.submit(
                    _run_point,
                    campaign.scenario,
                    manifest["points"][pid]["overrides"],
                    str(outdir / pid),
                ): pid
                for pid in pending
            }
            remaining = set(futures)
            while remaining:
                done, remaining = wait(remaining, return_when=FIRST_COMPLETED)
                for fut in done:
                    pid = futures[fut]
                    try:
                        finish(pid, fut.result(), None)
                    except Exception as exc:  # noqa: BLE001
                        finish(pid, None, f"{type(exc).__name__}: {exc}")

    manifest["summary"] = {
        "total": len(manifest["points"]),
        "ran": len(pending),
        "skipped": skipped,
        "failed": sum(
            1 for e in manifest["points"].values() if e["status"] == "failed"
        ),
    }
    _write_manifest(manifest_path, manifest)
    return manifest
