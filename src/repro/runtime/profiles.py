"""Declarative initial-condition profiles.

Specs are plain JSON data, so initial conditions cannot be arbitrary Python
callables.  This module is the bridge: a profile is a kind-tagged parameter
dict (``{"kind": "maxwellian", "vt": 0.5, ...}``) that compiles into the
vectorized callable the projection machinery consumes.  Two registries:

* **phase profiles** — distribution functions ``f0(x..., v...)`` for
  :class:`~repro.runtime.spec.SpeciesSpec.initial`;
* **conf profiles** — scalar fields ``g(x...)`` for EM field components.

Both validate their parameters eagerly and raise
:class:`~repro.runtime.errors.SpecError` naming the bad field, so a typo in
an input file fails at spec-validation time, not mid-run.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from .errors import SpecError

__all__ = [
    "phase_profile",
    "conf_profile",
    "build_phase_profile",
    "build_conf_profile",
    "PHASE_PROFILES",
    "CONF_PROFILES",
]

PHASE_PROFILES: Dict[str, Callable] = {}
CONF_PROFILES: Dict[str, Callable] = {}


def phase_profile(kind: str):
    """Register a phase-space profile builder under ``kind``."""

    def deco(fn):
        PHASE_PROFILES[kind] = fn
        return fn

    return deco


def conf_profile(kind: str):
    """Register a configuration-space profile builder under ``kind``."""

    def deco(fn):
        CONF_PROFILES[kind] = fn
        return fn

    return deco


# --------------------------------------------------------------------- #
# parameter plumbing
# --------------------------------------------------------------------- #
class _Params:
    """Typed access to a profile's parameter dict with path-aware errors."""

    def __init__(self, data: dict, path: str, known: Sequence[str]):
        self.data = data
        self.path = path
        for key in data:
            if key != "kind" and key not in known:
                raise SpecError(
                    f"{path}.{key}",
                    f"unknown parameter (expected one of: {', '.join(sorted(known))})",
                )

    def number(self, key: str, default: float) -> float:
        val = self.data.get(key, default)
        if not isinstance(val, (int, float)) or isinstance(val, bool):
            raise SpecError(f"{self.path}.{key}", f"expected a number, got {val!r}")
        return float(val)

    def integer(self, key: str, default: int) -> int:
        val = self.data.get(key, default)
        if not isinstance(val, int) or isinstance(val, bool):
            raise SpecError(f"{self.path}.{key}", f"expected an integer, got {val!r}")
        return int(val)

    def sub(self, key: str) -> Optional[dict]:
        val = self.data.get(key)
        if val is None:
            return None
        if not isinstance(val, dict):
            raise SpecError(f"{self.path}.{key}", f"expected an object, got {val!r}")
        return val


def _kind(spec, path: str, registry: Dict[str, Callable]) -> str:
    if not isinstance(spec, dict):
        raise SpecError(path, f"expected a profile object, got {spec!r}")
    kind = spec.get("kind")
    if kind not in registry:
        raise SpecError(
            f"{path}.kind",
            f"unknown profile kind {kind!r} (known: {', '.join(sorted(registry))})",
        )
    return kind


def build_phase_profile(spec: dict, cdim: int, vdim: int, path: str = "initial"):
    """Compile a phase-profile dict into ``f0(*x, *v)``."""
    return PHASE_PROFILES[_kind(spec, path, PHASE_PROFILES)](spec, cdim, vdim, path)


def build_conf_profile(spec: dict, cdim: int, path: str = "field.initial"):
    """Compile a conf-profile dict into ``g(*x)``."""
    return CONF_PROFILES[_kind(spec, path, CONF_PROFILES)](spec, cdim, path)


def _density_factor(pert: Optional[dict], cdim: int, path: str):
    """Compile the optional ``perturbation`` sub-dict to ``1 + amp cos(k x)``."""
    if pert is None:
        return lambda xs: 1.0
    p = _Params(pert, path, known=("amp", "k", "axis", "phase"))
    if "kind" in pert:
        raise SpecError(f"{path}.kind", "perturbation takes no 'kind' tag")
    amp = p.number("amp", 0.0)
    k = p.number("k", 0.0)
    phase = p.number("phase", 0.0)
    axis = p.integer("axis", 0)
    if not 0 <= axis < cdim:
        raise SpecError(f"{path}.axis", f"axis {axis} out of range for cdim={cdim}")
    return lambda xs: 1.0 + amp * np.cos(k * xs[axis] + phase)


def _maxwellian(vs, drifts, vt, vdim):
    norm = (2.0 * math.pi * vt**2) ** (vdim / 2.0)
    arg = sum((v - u) ** 2 for v, u in zip(vs, drifts))
    return np.exp(-arg / (2.0 * vt**2)) / norm


def _broadcaster(coords):
    """Zero-valued array spanning every coordinate's shape (broadcast glue)."""
    out = 0.0
    for c in coords:
        out = out + 0.0 * c
    return out


def _drift_list(p: _Params, key: str, vdim: int):
    val = p.data.get(key, 0.0)
    if isinstance(val, (int, float)) and not isinstance(val, bool):
        return [float(val)] * vdim
    if isinstance(val, (list, tuple)) and len(val) == vdim and all(
        isinstance(x, (int, float)) and not isinstance(x, bool) for x in val
    ):
        return [float(x) for x in val]
    raise SpecError(
        f"{p.path}.{key}", f"expected a number or list of {vdim} numbers, got {val!r}"
    )


# --------------------------------------------------------------------- #
# phase-space profiles
# --------------------------------------------------------------------- #
@phase_profile("maxwellian")
def _p_maxwellian(spec, cdim, vdim, path):
    """Drifting Maxwellian with optional cosine density perturbation."""
    p = _Params(spec, path, known=("n0", "drift", "vt", "perturbation"))
    n0 = p.number("n0", 1.0)
    vt = p.number("vt", 1.0)
    if vt <= 0:
        raise SpecError(f"{path}.vt", "thermal speed must be positive")
    drifts = _drift_list(p, "drift", vdim)
    dens = _density_factor(p.sub("perturbation"), cdim, f"{path}.perturbation")

    def f0(*coords):
        xs, vs = coords[:cdim], coords[cdim:]
        return (
            n0 * dens(xs) * _maxwellian(vs, drifts, vt, vdim) + _broadcaster(coords)
        )

    return f0


@phase_profile("counter_beams")
def _p_counter_beams(spec, cdim, vdim, path):
    """Two equal Maxwellian beams at ±drift along one velocity axis."""
    p = _Params(spec, path, known=("n0", "drift", "vt", "axis", "perturbation"))
    n0 = p.number("n0", 1.0)
    vt = p.number("vt", 0.5)
    drift = p.number("drift", 1.0)
    axis = p.integer("axis", 0)
    if vt <= 0:
        raise SpecError(f"{path}.vt", "thermal speed must be positive")
    if not 0 <= axis < vdim:
        raise SpecError(f"{path}.axis", f"axis {axis} out of range for vdim={vdim}")
    dens = _density_factor(p.sub("perturbation"), cdim, f"{path}.perturbation")
    plus = [drift if d == axis else 0.0 for d in range(vdim)]
    minus = [-drift if d == axis else 0.0 for d in range(vdim)]

    def f0(*coords):
        xs, vs = coords[:cdim], coords[cdim:]
        beams = 0.5 * (
            _maxwellian(vs, plus, vt, vdim) + _maxwellian(vs, minus, vt, vdim)
        )
        return n0 * dens(xs) * beams + _broadcaster(coords)

    return f0


@phase_profile("bump_on_tail")
def _p_bump_on_tail(spec, cdim, vdim, path):
    """1V Maxwellian bulk plus a Gaussian bump on the tail."""
    if vdim != 1:
        raise SpecError(path, f"bump_on_tail requires vdim=1, got vdim={vdim}")
    p = _Params(
        spec,
        path,
        known=("n0", "vt", "bump_amp", "bump_drift", "bump_width", "perturbation"),
    )
    n0 = p.number("n0", 1.0)
    vt = p.number("vt", 1.0)
    bump_amp = p.number("bump_amp", 0.2)
    bump_drift = p.number("bump_drift", 3.0)
    bump_width = p.number("bump_width", 0.4)
    if vt <= 0:
        raise SpecError(f"{path}.vt", "thermal speed must be positive")
    if bump_width <= 0:
        raise SpecError(f"{path}.bump_width", "bump width must be positive")
    dens = _density_factor(p.sub("perturbation"), cdim, f"{path}.perturbation")

    def f0(*coords):
        xs, (v,) = coords[:cdim], coords[cdim:]
        bulk = np.exp(-(v**2) / (2.0 * vt**2)) / math.sqrt(2.0 * math.pi * vt**2)
        bump = (
            bump_amp
            * np.exp(-((v - bump_drift) ** 2) / bump_width)
            / math.sqrt(bump_width * math.pi)
        )
        return n0 * dens(xs) * (bulk + bump) + _broadcaster(coords)

    return f0


# --------------------------------------------------------------------- #
# configuration-space profiles (EM field components)
# --------------------------------------------------------------------- #
@conf_profile("constant")
def _c_constant(spec, cdim, path):
    p = _Params(spec, path, known=("value",))
    value = p.number("value", 0.0)

    def g(*xs):
        return value + _broadcaster(xs)

    return g


def _harmonic(spec, cdim, path, fn):
    p = _Params(spec, path, known=("amp", "k", "axis", "phase", "offset"))
    amp = p.number("amp", 1.0)
    k = p.number("k", 1.0)
    phase = p.number("phase", 0.0)
    offset = p.number("offset", 0.0)
    axis = p.integer("axis", 0)
    if not 0 <= axis < cdim:
        raise SpecError(f"{path}.axis", f"axis {axis} out of range for cdim={cdim}")

    def g(*xs):
        return offset + amp * fn(k * xs[axis] + phase) + _broadcaster(xs)

    return g


@conf_profile("cosine")
def _c_cosine(spec, cdim, path):
    return _harmonic(spec, cdim, path, np.cos)


@conf_profile("sine")
def _c_sine(spec, cdim, path):
    return _harmonic(spec, cdim, path, np.sin)
