"""Scenario registry: canonical kinetic setups as declarative specs.

Each scenario is a function returning a :class:`~repro.runtime.spec.SimulationSpec`
with physically meaningful keyword parameters (wavenumber, drift speed,
resolution ...).  The :func:`scenario` decorator registers it by name so the
CLI, the campaign runner, examples, and benchmarks all build their apps from
one catalogue instead of hand-wiring ~80 lines apiece.

Overrides passed to :func:`build` are split automatically: keys matching the
scenario function's signature parameterize the physics; everything else is
applied as a dotted-path spec override (``cfl=0.5``, ``steps=10``,
``species.elc.initial.vt=0.4`` ...).
"""

from __future__ import annotations

import inspect
import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .errors import SpecError
from .spec import (
    CollisionsSpec,
    DiagnosticsSpec,
    ExternalFieldSpec,
    FieldInitSpec,
    GridSpec,
    SimulationSpec,
    SpeciesSpec,
)

__all__ = ["scenario", "get_scenario", "list_scenarios", "build", "Scenario"]

_REGISTRY: Dict[str, "Scenario"] = {}


@dataclass(frozen=True)
class Scenario:
    """A registered scenario: builder function plus introspection metadata."""

    name: str
    func: Callable[..., SimulationSpec]
    description: str

    @property
    def params(self) -> Dict[str, object]:
        """Overridable physics parameters with their defaults."""
        return {
            name: p.default
            for name, p in inspect.signature(self.func).parameters.items()
        }

    def build(self, **kwargs) -> SimulationSpec:
        params = set(inspect.signature(self.func).parameters)
        bad = [k for k in kwargs if k not in params]
        if bad:
            raise SpecError(
                f"scenario[{self.name}].{bad[0]}",
                f"unknown parameter (known: {', '.join(sorted(params))})",
            )
        return self.func(**kwargs).validate()


def scenario(name: str, description: Optional[str] = None):
    """Register a spec-builder function under ``name``."""

    def deco(fn):
        from ..systems.registry import doc_summary

        _REGISTRY[name] = Scenario(
            name=name, func=fn, description=doc_summary(fn, description)
        )
        return fn

    return deco


def get_scenario(name: str) -> Scenario:
    if name not in _REGISTRY:
        raise SpecError(
            "scenario",
            f"unknown scenario {name!r} (known: {', '.join(sorted(_REGISTRY))})",
        )
    return _REGISTRY[name]


def list_scenarios() -> List[Scenario]:
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def build(name: str, **overrides) -> SimulationSpec:
    """Build a scenario spec, routing overrides to physics params or spec paths."""
    sc = get_scenario(name)
    params = set(inspect.signature(sc.func).parameters)
    fn_kwargs = {k: v for k, v in overrides.items() if k in params}
    spec_overrides = {k: v for k, v in overrides.items() if k not in params}
    spec = sc.build(**fn_kwargs)
    if spec_overrides:
        spec = spec.with_overrides(spec_overrides)
    return spec


# --------------------------------------------------------------------- #
# canonical scenarios
# --------------------------------------------------------------------- #
@scenario("landau_damping")
def landau_damping(
    k: float = 0.5,
    amp: float = 1e-3,
    vt: float = 1.0,
    nx: int = 16,
    nv: int = 24,
    vmax: float = 6.0,
    poly_order: int = 2,
    t_end: float = 20.0,
) -> SimulationSpec:
    """Collisionless damping of a Langmuir wave (Vlasov–Maxwell, 1X1V)."""
    length = 2.0 * math.pi / k
    return SimulationSpec(
        name="landau_damping",
        model="maxwell",
        conf_grid=GridSpec((0.0,), (length,), (nx,)),
        species=(
            SpeciesSpec(
                name="elc",
                charge=-1.0,
                mass=1.0,
                velocity_grid=GridSpec((-vmax,), (vmax,), (nv,)),
                initial={
                    "kind": "maxwellian",
                    "vt": vt,
                    "perturbation": {"amp": amp, "k": k},
                },
            ),
        ),
        field=FieldInitSpec(initial={"Ex": {"kind": "sine", "amp": -amp / k, "k": k}}),
        poly_order=poly_order,
        cfl=0.6,
        t_end=t_end,
    )


@scenario("two_stream")
def two_stream(
    k: float = 0.5,
    drift: float = 2.0,
    vt: float = 0.5,
    amp: float = 1e-4,
    nx: int = 24,
    nv: int = 48,
    vmax: float = 8.0,
    poly_order: int = 2,
    t_end: float = 40.0,
) -> SimulationSpec:
    """Electrostatic two-stream instability (Vlasov–Poisson, 1X1V)."""
    length = 2.0 * math.pi / k
    return SimulationSpec(
        name="two_stream",
        model="poisson",
        conf_grid=GridSpec((0.0,), (length,), (nx,)),
        species=(
            SpeciesSpec(
                name="elc",
                charge=-1.0,
                mass=1.0,
                velocity_grid=GridSpec((-vmax,), (vmax,), (nv,)),
                initial={
                    "kind": "counter_beams",
                    "drift": drift,
                    "vt": vt,
                    "perturbation": {"amp": amp, "k": k},
                },
            ),
        ),
        poly_order=poly_order,
        cfl=0.6,
        t_end=t_end,
    )


@scenario("weibel_2x2v")
def weibel_2x2v(
    drift: float = 0.6,
    vt: float = 0.2,
    seed_amp: float = 1e-5,
    box: float = 4.0,
    nx: int = 6,
    nv: int = 14,
    poly_order: int = 2,
    t_end: float = 30.0,
) -> SimulationSpec:
    """Counter-streaming beam filamentation/Weibel instability (2X2V)."""
    ky = 2.0 * math.pi / box
    vmax = drift + 4.0 * vt
    return SimulationSpec(
        name="weibel_2x2v",
        model="maxwell",
        conf_grid=GridSpec((0.0, 0.0), (box, box), (nx, nx)),
        species=(
            SpeciesSpec(
                name="elc",
                charge=-1.0,
                mass=1.0,
                velocity_grid=GridSpec((-vmax, -vmax), (vmax, vmax), (nv, nv)),
                initial={"kind": "counter_beams", "drift": drift, "vt": vt, "axis": 0},
            ),
        ),
        field=FieldInitSpec(
            initial={"Bz": {"kind": "cosine", "amp": seed_amp, "k": ky, "axis": 1}}
        ),
        poly_order=poly_order,
        cfl=0.8,
        t_end=t_end,
    )


@scenario("bump_on_tail")
def bump_on_tail(
    k: float = 0.3,
    amp: float = 1e-3,
    bump_amp: float = 0.1,
    bump_drift: float = 3.0,
    bump_width: float = 0.4,
    nx: int = 16,
    nv: int = 48,
    vmax: float = 8.0,
    poly_order: int = 2,
    t_end: float = 30.0,
) -> SimulationSpec:
    """Bump-on-tail beam–plasma instability (Vlasov–Poisson, 1X1V)."""
    length = 2.0 * math.pi / k
    return SimulationSpec(
        name="bump_on_tail",
        model="poisson",
        conf_grid=GridSpec((0.0,), (length,), (nx,)),
        species=(
            SpeciesSpec(
                name="elc",
                charge=-1.0,
                mass=1.0,
                velocity_grid=GridSpec((-vmax,), (vmax,), (nv,)),
                initial={
                    "kind": "bump_on_tail",
                    "bump_amp": bump_amp,
                    "bump_drift": bump_drift,
                    "bump_width": bump_width,
                    "perturbation": {"amp": amp, "k": k},
                },
            ),
        ),
        poly_order=poly_order,
        cfl=0.6,
        t_end=t_end,
    )


@scenario("collisional_relaxation")
def collisional_relaxation(
    nu: float = 0.8,
    operator: str = "lbo",
    bump_amp: float = 0.2,
    bump_drift: float = 3.0,
    nx: int = 2,
    nv: int = 32,
    vmax: float = 8.0,
    poly_order: int = 2,
    t_end: float = 6.0,
) -> SimulationSpec:
    """Bump-on-tail relaxation to a Maxwellian under BGK/LBO collisions."""
    return SimulationSpec(
        name="collisional_relaxation",
        model="poisson",
        conf_grid=GridSpec((0.0,), (1.0,), (nx,)),
        species=(
            SpeciesSpec(
                name="elc",
                charge=-1.0,
                mass=1.0,
                velocity_grid=GridSpec((-vmax,), (vmax,), (nv,)),
                initial={
                    "kind": "bump_on_tail",
                    "bump_amp": bump_amp,
                    "bump_drift": bump_drift,
                },
                collisions=CollisionsSpec(kind=operator, nu=nu),
            ),
        ),
        poly_order=poly_order,
        cfl=0.4,
        t_end=t_end,
    )


@scenario("ion_acoustic")
def ion_acoustic(
    k: float = 0.5,
    amp: float = 1e-2,
    mass_ratio: float = 1836.153,
    temp_ratio: float = 10.0,
    nx: int = 16,
    nv: int = 32,
    poly_order: int = 2,
    t_end: float = 20.0,
) -> SimulationSpec:
    """Ion-acoustic wave: kinetic electrons + ions at a real mass ratio (1X1V).

    Both species carry the same density perturbation, launching the
    sound-like mode at :math:`c_s = \\sqrt{T_e/m_i}`; ``temp_ratio`` is
    :math:`T_e/T_i` (Landau damping of the mode is weak when large).  The
    ion velocity grid resolves the ion thermal spread plus a few sound
    speeds; the electron grid is the usual :math:`\\pm 6 v_{th,e}`.
    """
    length = 2.0 * math.pi / k
    vte = 1.0
    vti = math.sqrt(1.0 / (temp_ratio * mass_ratio))
    cs = math.sqrt(1.0 / mass_ratio)
    vmax_i = 6.0 * vti + 4.0 * cs
    perturbation = {"amp": amp, "k": k}
    return SimulationSpec(
        name="ion_acoustic",
        model="poisson",
        conf_grid=GridSpec((0.0,), (length,), (nx,)),
        species=(
            SpeciesSpec(
                name="elc",
                charge=-1.0,
                mass=1.0,
                velocity_grid=GridSpec((-6.0 * vte,), (6.0 * vte,), (nv,)),
                initial={"kind": "maxwellian", "vt": vte, "perturbation": dict(perturbation)},
            ),
            SpeciesSpec(
                name="ion",
                charge=1.0,
                mass=mass_ratio,
                velocity_grid=GridSpec((-vmax_i,), (vmax_i,), (nv,)),
                initial={"kind": "maxwellian", "vt": vti, "perturbation": dict(perturbation)},
            ),
        ),
        poly_order=poly_order,
        cfl=0.6,
        t_end=t_end,
    )


@scenario("driven_landau")
def driven_landau(
    k: float = 0.5,
    amp: float = 1e-2,
    omega: Optional[float] = None,
    ramp: float = 5.0,
    vt: float = 1.0,
    nx: int = 16,
    nv: int = 24,
    vmax: float = 6.0,
    poly_order: int = 2,
    t_end: float = 20.0,
) -> SimulationSpec:
    """Externally driven Langmuir oscillations: time-dependent E-field drive.

    A prescribed ``Ex = amp sin(kx) cos(omega t)`` drive (linearly ramped
    over ``ramp`` time units) pumps an initially unperturbed Maxwellian;
    ``omega`` defaults to the Bohm–Gross frequency
    :math:`\\sqrt{1 + 3 k^2 v_t^2}` for resonant excitation against the
    Landau-damped response.
    """
    if omega is None:
        omega = math.sqrt(1.0 + 3.0 * (k * vt) ** 2)
    length = 2.0 * math.pi / k
    return SimulationSpec(
        name="driven_landau",
        model="poisson",
        conf_grid=GridSpec((0.0,), (length,), (nx,)),
        species=(
            SpeciesSpec(
                name="elc",
                charge=-1.0,
                mass=1.0,
                velocity_grid=GridSpec((-vmax,), (vmax,), (nv,)),
                initial={"kind": "maxwellian", "vt": vt},
            ),
        ),
        external_field=ExternalFieldSpec(
            components={"Ex": {"kind": "sine", "amp": amp, "k": k}},
            omega=omega,
            ramp=ramp,
        ),
        poly_order=poly_order,
        cfl=0.6,
        t_end=t_end,
    )


@scenario("advection_1d")
def advection_1d(
    k: float = 1.0,
    amp: float = 0.3,
    vt: float = 1.0,
    nx: int = 16,
    nv: int = 16,
    vmax: float = 5.0,
    poly_order: int = 2,
    t_end: float = 5.0,
) -> SimulationSpec:
    """Passive DG advection: field-free streaming through the systems API.

    The simplest registered system — one neutral tracer species, no field
    closure at all (``model="advection"`` maps to a
    :class:`~repro.systems.blocks.NullFieldBlock`), so the state carries
    distribution functions only.  Exercises the pure streaming operator:
    a perturbed Maxwellian phase-mixes while the density pattern advects.
    """
    length = 2.0 * math.pi / k
    return SimulationSpec(
        name="advection_1d",
        model="advection",
        conf_grid=GridSpec((0.0,), (length,), (nx,)),
        species=(
            SpeciesSpec(
                name="tracer",
                charge=0.0,
                mass=1.0,
                velocity_grid=GridSpec((-vmax,), (vmax,), (nv,)),
                initial={
                    "kind": "maxwellian",
                    "vt": vt,
                    "perturbation": {"amp": amp, "k": k},
                },
            ),
        ),
        poly_order=poly_order,
        cfl=0.8,
        t_end=t_end,
    )


@scenario("multispecies_shock")
def multispecies_shock(
    drift: float = 1.0,
    mass_ratio: float = 25.0,
    vt_ion: float = 0.08,
    nu: float = 5.0,
    amp: float = 0.4,
    k: float = 0.5,
    nx: int = 24,
    nv: int = 24,
    poly_order: int = 2,
    t_end: float = 4.0,
) -> SimulationSpec:
    """Colliding plasma slabs: counter-streaming collisional ion beams +
    kinetic electrons (Vlasov–Poisson, 1X1V).

    Two ion populations drift through each other at several ion-acoustic
    Mach numbers (:math:`c_s = \\sqrt{T_e/m_i}`), with counter-phased
    density modulations so left- and right-dominated regions collide at
    their interfaces; LBO collisions thermalize the interpenetration into
    shock-like heating fronts.  A three-species registered-system workload
    with zero bespoke code: electrons + two ion beams, collisions, and the
    electrostatic closure are all declarative blocks.
    """
    length = 2.0 * math.pi / k
    cs = math.sqrt(1.0 / mass_ratio)
    vmax_i = drift + 6.0 * vt_ion + 2.0 * cs
    coll = CollisionsSpec(kind="lbo", nu=nu)
    return SimulationSpec(
        name="multispecies_shock",
        model="poisson",
        conf_grid=GridSpec((0.0,), (length,), (nx,)),
        species=(
            SpeciesSpec(
                name="elc",
                charge=-1.0,
                mass=1.0,
                velocity_grid=GridSpec((-6.0,), (6.0,), (nv,)),
                initial={"kind": "maxwellian", "vt": 1.0},
            ),
            SpeciesSpec(
                name="ion_l",
                charge=1.0,
                mass=mass_ratio,
                velocity_grid=GridSpec((-vmax_i,), (vmax_i,), (nv,)),
                initial={
                    "kind": "maxwellian",
                    "n0": 0.5,
                    "vt": vt_ion,
                    "drift": drift,
                    "perturbation": {"amp": amp, "k": k},
                },
                collisions=coll,
            ),
            SpeciesSpec(
                name="ion_r",
                charge=1.0,
                mass=mass_ratio,
                velocity_grid=GridSpec((-vmax_i,), (vmax_i,), (nv,)),
                initial={
                    "kind": "maxwellian",
                    "n0": 0.5,
                    "vt": vt_ion,
                    "drift": -drift,
                    "perturbation": {"amp": amp, "k": k, "phase": math.pi},
                },
                collisions=coll,
            ),
        ),
        poly_order=poly_order,
        cfl=0.5,
        t_end=t_end,
    )


@scenario("free_streaming")
def free_streaming(
    k: float = 1.0,
    amp: float = 0.5,
    vt: float = 1.0,
    nx: int = 8,
    nv: int = 16,
    vmax: float = 6.0,
    poly_order: int = 2,
    t_end: float = 2.0,
) -> SimulationSpec:
    """Free streaming of a perturbed Maxwellian (alias-free exactness workload)."""
    length = 2.0 * math.pi / k
    return SimulationSpec(
        name="free_streaming",
        model="maxwell",
        conf_grid=GridSpec((0.0,), (length,), (nx,)),
        species=(
            SpeciesSpec(
                name="neutral",
                charge=0.0,
                mass=1.0,
                velocity_grid=GridSpec((-vmax,), (vmax,), (nv,)),
                initial={
                    "kind": "maxwellian",
                    "vt": vt,
                    "perturbation": {"amp": amp, "k": k},
                },
            ),
        ),
        field=FieldInitSpec(evolve=False),
        poly_order=poly_order,
        cfl=0.8,
        t_end=t_end,
        diagnostics=DiagnosticsSpec(energy_interval=1),
    )
