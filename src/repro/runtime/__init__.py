"""Declarative runtime: specs, scenario registry, driver, campaigns, CLI.

The runtime layer plays the role of Gkeyll's App/input-file system on top of
the generated-kernel solver stack: simulations are described by JSON-round-
trippable :class:`SimulationSpec` objects, canonical setups live in a
:mod:`~repro.runtime.scenarios` registry, a :class:`Driver` compiles specs
into live apps with scheduled diagnostics and checkpoint/resume, and
:mod:`~repro.runtime.campaign` batch-runs parameter scans with a resumable
manifest.
"""

from .campaign import (
    CampaignSpec,
    expand_points,
    init_manifest,
    load_manifest,
    run_campaign,
)
from .driver import Driver, build_app
from .errors import SpecError
from .scenarios import build, get_scenario, list_scenarios, scenario
from .spec import (
    CollisionsSpec,
    DiagnosticsSpec,
    ExternalFieldSpec,
    FieldInitSpec,
    GridSpec,
    SimulationSpec,
    SpeciesSpec,
)

__all__ = [
    "SpecError",
    "GridSpec",
    "SpeciesSpec",
    "CollisionsSpec",
    "FieldInitSpec",
    "ExternalFieldSpec",
    "DiagnosticsSpec",
    "SimulationSpec",
    "scenario",
    "get_scenario",
    "list_scenarios",
    "build",
    "Driver",
    "build_app",
    "CampaignSpec",
    "expand_points",
    "init_manifest",
    "run_campaign",
    "load_manifest",
]
