"""Declarative simulation specifications.

A :class:`SimulationSpec` is the JSON-serializable description of one
kinetic run: model (any system registered in
:mod:`repro.systems.registry` — ``maxwell``, ``poisson``, ``advection``,
...), discretization, grids, species with kind-tagged initial-condition
profiles, optional collisions, EM field seeding, and diagnostics
scheduling.  It plays the role of Gkeyll's Lua input file: the
:class:`~repro.runtime.driver.Driver` compiles a spec into a live
:class:`~repro.systems.system.System`, and the campaign runner scans over
spec overrides.

Every validation failure raises :class:`~repro.runtime.errors.SpecError`
naming the offending field as a dotted path (``species[0].velocity_grid.cells``)
so errors from hand-edited JSON are actionable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from dataclasses import field as _dc_field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from .errors import SpecError
from .profiles import build_conf_profile, build_phase_profile

__all__ = [
    "GridSpec",
    "SpeciesSpec",
    "CollisionsSpec",
    "FieldInitSpec",
    "ExternalFieldSpec",
    "DiagnosticsSpec",
    "ObservabilitySpec",
    "SimulationSpec",
    "SpecError",
]

SCHEMES = ("modal", "quadrature")
COLLISION_KINDS = ("lbo", "bgk")
EM_COMPONENTS = ("Ex", "Ey", "Ez", "Bx", "By", "Bz", "phi", "psi")


def _reject_unknown(data: Mapping, path: str, known: Sequence[str]) -> None:
    if not isinstance(data, Mapping):
        raise SpecError(path, f"expected an object, got {data!r}")
    for key in data:
        if key not in known:
            raise SpecError(
                f"{path}.{key}",
                f"unknown field (expected one of: {', '.join(known)})",
            )


def _num(value, path: str, *, integer: bool = False):
    ok = isinstance(value, int) if integer else isinstance(value, (int, float))
    if not ok or isinstance(value, bool):
        kind = "an integer" if integer else "a number"
        raise SpecError(path, f"expected {kind}, got {value!r}")
    return int(value) if integer else float(value)


# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class GridSpec:
    """Uniform Cartesian grid description (mirrors :class:`repro.grid.Grid`)."""

    lower: Tuple[float, ...]
    upper: Tuple[float, ...]
    cells: Tuple[int, ...]

    def to_dict(self) -> dict:
        return {
            "lower": list(self.lower),
            "upper": list(self.upper),
            "cells": list(self.cells),
        }

    @classmethod
    def from_dict(cls, data: Mapping, path: str = "grid") -> "GridSpec":
        _reject_unknown(data, path, ("lower", "upper", "cells"))
        out = {}
        for key, integer in (("lower", False), ("upper", False), ("cells", True)):
            if key not in data:
                raise SpecError(f"{path}.{key}", "missing required field")
            val = data[key]
            if not isinstance(val, (list, tuple)) or not val:
                raise SpecError(f"{path}.{key}", f"expected a non-empty list, got {val!r}")
            out[key] = tuple(
                _num(x, f"{path}.{key}[{i}]", integer=integer) for i, x in enumerate(val)
            )
        return cls(**out)

    def validate(self, path: str) -> None:
        if not (len(self.lower) == len(self.upper) == len(self.cells)):
            raise SpecError(path, "lower/upper/cells must have equal lengths")
        for i, (lo, hi) in enumerate(zip(self.lower, self.upper)):
            if hi <= lo:
                raise SpecError(f"{path}.upper[{i}]", f"upper {hi} must exceed lower {lo}")
        for i, n in enumerate(self.cells):
            if n < 1:
                raise SpecError(f"{path}.cells[{i}]", "need at least one cell")

    @property
    def ndim(self) -> int:
        return len(self.cells)

    def build(self):
        from ..grid.cartesian import Grid

        return Grid(list(self.lower), list(self.upper), list(self.cells))


# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class CollisionsSpec:
    """Collision operator selection: ``kind`` is ``"lbo"`` or ``"bgk"``."""

    kind: str = "lbo"
    nu: float = 1.0

    def to_dict(self) -> dict:
        return {"kind": self.kind, "nu": self.nu}

    @classmethod
    def from_dict(cls, data: Mapping, path: str) -> "CollisionsSpec":
        _reject_unknown(data, path, ("kind", "nu"))
        kind = data.get("kind", "lbo")
        nu = _num(data.get("nu", 1.0), f"{path}.nu")
        return cls(kind=kind, nu=nu)

    def validate(self, path: str) -> None:
        if self.kind not in COLLISION_KINDS:
            raise SpecError(
                f"{path}.kind",
                f"unknown collision kind {self.kind!r} (known: {', '.join(COLLISION_KINDS)})",
            )
        if self.nu < 0:
            raise SpecError(f"{path}.nu", "collision frequency must be non-negative")


# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SpeciesSpec:
    """One kinetic species: charge/mass, velocity grid, declarative IC."""

    name: str
    charge: float
    mass: float
    velocity_grid: GridSpec
    initial: Dict = field(default_factory=lambda: {"kind": "maxwellian"})
    collisions: Optional[CollisionsSpec] = None

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "charge": self.charge,
            "mass": self.mass,
            "velocity_grid": self.velocity_grid.to_dict(),
            "initial": dict(self.initial),
            "collisions": self.collisions.to_dict() if self.collisions else None,
        }

    @classmethod
    def from_dict(cls, data: Mapping, path: str) -> "SpeciesSpec":
        _reject_unknown(
            data, path,
            ("name", "charge", "mass", "velocity_grid", "initial", "collisions"),
        )
        for key in ("name", "charge", "mass", "velocity_grid"):
            if key not in data:
                raise SpecError(f"{path}.{key}", "missing required field")
        name = data["name"]
        if not isinstance(name, str) or not name:
            raise SpecError(f"{path}.name", f"expected a non-empty string, got {name!r}")
        coll = data.get("collisions")
        initial = data.get("initial", {"kind": "maxwellian"})
        if not isinstance(initial, Mapping):
            raise SpecError(f"{path}.initial", f"expected a profile object, got {initial!r}")
        return cls(
            name=name,
            charge=_num(data["charge"], f"{path}.charge"),
            mass=_num(data["mass"], f"{path}.mass"),
            velocity_grid=GridSpec.from_dict(data["velocity_grid"], f"{path}.velocity_grid"),
            initial=dict(initial),
            collisions=CollisionsSpec.from_dict(coll, f"{path}.collisions") if coll else None,
        )

    def validate(self, path: str, cdim: int) -> None:
        self.velocity_grid.validate(f"{path}.velocity_grid")
        if self.mass <= 0:
            raise SpecError(f"{path}.mass", "mass must be positive")
        # compiling the profile performs its full parameter validation
        build_phase_profile(
            self.initial, cdim, self.velocity_grid.ndim, f"{path}.initial"
        )
        if self.collisions is not None:
            self.collisions.validate(f"{path}.collisions")


# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class FieldInitSpec:
    """EM field configuration with declarative component seeding."""

    initial: Dict[str, Dict] = field(default_factory=dict)
    light_speed: float = 1.0
    epsilon0: float = 1.0
    flux: str = "central"
    chi_e: float = 0.0
    chi_m: float = 0.0
    evolve: bool = True

    def to_dict(self) -> dict:
        return {
            "initial": {k: dict(v) for k, v in self.initial.items()},
            "light_speed": self.light_speed,
            "epsilon0": self.epsilon0,
            "flux": self.flux,
            "chi_e": self.chi_e,
            "chi_m": self.chi_m,
            "evolve": self.evolve,
        }

    @classmethod
    def from_dict(cls, data: Mapping, path: str) -> "FieldInitSpec":
        _reject_unknown(
            data, path,
            ("initial", "light_speed", "epsilon0", "flux", "chi_e", "chi_m", "evolve"),
        )
        initial = data.get("initial", {})
        if not isinstance(initial, Mapping):
            raise SpecError(f"{path}.initial", f"expected an object, got {initial!r}")
        evolve = data.get("evolve", True)
        if not isinstance(evolve, bool):
            raise SpecError(f"{path}.evolve", f"expected a boolean, got {evolve!r}")
        return cls(
            initial={k: dict(v) for k, v in initial.items()},
            light_speed=_num(data.get("light_speed", 1.0), f"{path}.light_speed"),
            epsilon0=_num(data.get("epsilon0", 1.0), f"{path}.epsilon0"),
            flux=data.get("flux", "central"),
            chi_e=_num(data.get("chi_e", 0.0), f"{path}.chi_e"),
            chi_m=_num(data.get("chi_m", 0.0), f"{path}.chi_m"),
            evolve=evolve,
        )

    def validate(self, path: str, cdim: int) -> None:
        if self.flux not in ("central", "upwind"):
            raise SpecError(f"{path}.flux", f"unknown flux {self.flux!r}")
        if self.light_speed <= 0:
            raise SpecError(f"{path}.light_speed", "light speed must be positive")
        for comp, prof in self.initial.items():
            if comp not in EM_COMPONENTS:
                raise SpecError(
                    f"{path}.initial.{comp}",
                    f"unknown EM component (expected one of: {', '.join(EM_COMPONENTS)})",
                )
            build_conf_profile(prof, cdim, f"{path}.initial.{comp}")


# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class ExternalFieldSpec:
    """Prescribed time-dependent external EM drive.

    ``components`` maps EM component names (``Ex`` ... ``Bz``) to
    configuration-space spatial profiles; the drive is that static profile
    times the envelope ``cos(omega t + phase)`` (times a linear ramp over
    ``ramp`` time units when positive).  The drive accelerates particles
    and enters the CFL estimate, but is not evolved by the field solver.
    """

    components: Dict[str, Dict] = field(default_factory=dict)
    omega: float = 0.0
    phase: float = 0.0
    ramp: float = 0.0

    def to_dict(self) -> dict:
        return {
            "components": {k: dict(v) for k, v in self.components.items()},
            "omega": self.omega,
            "phase": self.phase,
            "ramp": self.ramp,
        }

    @classmethod
    def from_dict(cls, data: Mapping, path: str) -> "ExternalFieldSpec":
        _reject_unknown(data, path, ("components", "omega", "phase", "ramp"))
        components = data.get("components", {})
        if not isinstance(components, Mapping):
            raise SpecError(f"{path}.components", f"expected an object, got {components!r}")
        return cls(
            components={k: dict(v) for k, v in components.items()},
            omega=_num(data.get("omega", 0.0), f"{path}.omega"),
            phase=_num(data.get("phase", 0.0), f"{path}.phase"),
            ramp=_num(data.get("ramp", 0.0), f"{path}.ramp"),
        )

    def validate(self, path: str, cdim: int) -> None:
        if not self.components:
            raise SpecError(f"{path}.components", "need at least one driven component")
        for comp, prof in self.components.items():
            if comp not in EM_COMPONENTS[:6]:
                raise SpecError(
                    f"{path}.components.{comp}",
                    "unknown EM component (expected one of: "
                    f"{', '.join(EM_COMPONENTS[:6])})",
                )
            build_conf_profile(prof, cdim, f"{path}.components.{comp}")
        if self.ramp < 0:
            raise SpecError(f"{path}.ramp", "ramp must be non-negative")


# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class DiagnosticsSpec:
    """Diagnostics/checkpoint scheduling (step-count intervals; 0 = off).

    ``stream_path`` names a JSONL file that receives one record per
    diagnostics event *during* the run (incremental, flushed per line);
    when unset, a Driver with an ``outdir`` streams to
    ``outdir/diagnostics.jsonl``.
    """

    energy_interval: int = 1
    checkpoint_interval: int = 0
    checkpoint_path: Optional[str] = None
    record_jdote: bool = False
    stream_path: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "energy_interval": self.energy_interval,
            "checkpoint_interval": self.checkpoint_interval,
            "checkpoint_path": self.checkpoint_path,
            "record_jdote": self.record_jdote,
            "stream_path": self.stream_path,
        }

    @classmethod
    def from_dict(cls, data: Mapping, path: str) -> "DiagnosticsSpec":
        _reject_unknown(
            data, path,
            ("energy_interval", "checkpoint_interval", "checkpoint_path",
             "record_jdote", "stream_path"),
        )
        for key in ("checkpoint_path", "stream_path"):
            val = data.get(key)
            if val is not None and not isinstance(val, str):
                raise SpecError(f"{path}.{key}", f"expected a string, got {val!r}")
        record = data.get("record_jdote", False)
        if not isinstance(record, bool):
            raise SpecError(f"{path}.record_jdote", f"expected a boolean, got {record!r}")
        return cls(
            energy_interval=_num(data.get("energy_interval", 1), f"{path}.energy_interval", integer=True),
            checkpoint_interval=_num(data.get("checkpoint_interval", 0), f"{path}.checkpoint_interval", integer=True),
            checkpoint_path=data.get("checkpoint_path"),
            record_jdote=record,
            stream_path=data.get("stream_path"),
        )

    def validate(self, path: str) -> None:
        if self.energy_interval < 0:
            raise SpecError(f"{path}.energy_interval", "interval must be >= 0")
        if self.checkpoint_interval < 0:
            raise SpecError(f"{path}.checkpoint_interval", "interval must be >= 0")


# --------------------------------------------------------------------- #
OBS_MODES = ("off", "summary", "trace")


@dataclass(frozen=True)
class ObservabilitySpec:
    """Observability configuration (see :mod:`repro.obs`).

    ``mode`` — ``"off"`` (default; instrumentation compiles to flag
    checks), ``"summary"`` (metrics counters + ``metrics.jsonl``), or
    ``"trace"`` (summary plus per-span Chrome-trace output).
    ``sample`` — in trace mode, record spans every Nth step (metrics stay
    exact; 1 = every step).  ``trace_path``/``metrics_path`` override the
    Driver's default outputs (``outdir/trace.json``,
    ``outdir/metrics.jsonl``).  ``$REPRO_OBS`` overrides ``mode`` at run
    time.
    """

    mode: str = "off"
    sample: int = 1
    trace_path: Optional[str] = None
    metrics_path: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "mode": self.mode,
            "sample": self.sample,
            "trace_path": self.trace_path,
            "metrics_path": self.metrics_path,
        }

    @classmethod
    def from_dict(cls, data: Mapping, path: str) -> "ObservabilitySpec":
        _reject_unknown(
            data, path, ("mode", "sample", "trace_path", "metrics_path")
        )
        for key in ("trace_path", "metrics_path"):
            val = data.get(key)
            if val is not None and not isinstance(val, str):
                raise SpecError(f"{path}.{key}", f"expected a string, got {val!r}")
        return cls(
            mode=data.get("mode", "off"),
            sample=_num(data.get("sample", 1), f"{path}.sample", integer=True),
            trace_path=data.get("trace_path"),
            metrics_path=data.get("metrics_path"),
        )

    def validate(self, path: str) -> None:
        if self.mode not in OBS_MODES:
            raise SpecError(
                f"{path}.mode",
                f"unknown observability mode {self.mode!r} "
                f"(known: {', '.join(OBS_MODES)})",
            )
        if self.sample < 1:
            raise SpecError(f"{path}.sample", "sample must be >= 1")


# --------------------------------------------------------------------- #
@dataclass(frozen=True)
class SimulationSpec:
    """Full declarative description of one kinetic simulation."""

    name: str
    model: str
    conf_grid: GridSpec
    species: Tuple[SpeciesSpec, ...]
    field: Optional[FieldInitSpec] = None
    external_field: Optional[ExternalFieldSpec] = None
    poly_order: int = 2
    family: str = "serendipity"
    cfl: float = 0.9
    scheme: str = "modal"
    stepper: str = "ssp-rk3"
    backend: str = "numpy"
    #: plan execution mode: ``"fused"`` (AOT-lowered kernels, the default)
    #: or ``"interpreted"`` (the reference per-term path)
    plan_mode: str = "fused"
    #: plan/kernel disk cache: ``"auto"`` ($REPRO_CACHE_DIR or
    #: ``~/.cache/repro``), ``"off"``, or an explicit directory
    plan_cache: str = "auto"
    t_end: float = 10.0
    steps: Optional[int] = None
    epsilon0: float = 1.0
    neutralize: bool = True
    diagnostics: DiagnosticsSpec = _dc_field(default_factory=DiagnosticsSpec)
    observability: ObservabilitySpec = _dc_field(default_factory=ObservabilitySpec)

    _FIELDS = (
        "name", "model", "conf_grid", "species", "field", "external_field",
        "poly_order", "family", "cfl", "scheme", "stepper", "backend",
        "plan_mode", "plan_cache", "t_end",
        "steps", "epsilon0", "neutralize", "diagnostics", "observability",
    )

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "model": self.model,
            "conf_grid": self.conf_grid.to_dict(),
            "species": [sp.to_dict() for sp in self.species],
            "field": self.field.to_dict() if self.field else None,
            "external_field": (
                self.external_field.to_dict() if self.external_field else None
            ),
            "poly_order": self.poly_order,
            "family": self.family,
            "cfl": self.cfl,
            "scheme": self.scheme,
            "stepper": self.stepper,
            "backend": self.backend,
            "plan_mode": self.plan_mode,
            "plan_cache": self.plan_cache,
            "t_end": self.t_end,
            "steps": self.steps,
            "epsilon0": self.epsilon0,
            "neutralize": self.neutralize,
            "diagnostics": self.diagnostics.to_dict(),
            "observability": self.observability.to_dict(),
        }

    def to_json(self, **kwargs) -> str:
        kwargs.setdefault("indent", 2)
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, data: Mapping, path: str = "spec") -> "SimulationSpec":
        _reject_unknown(data, path, cls._FIELDS)
        for key in ("name", "model", "conf_grid", "species"):
            if key not in data:
                raise SpecError(f"{path}.{key}", "missing required field")
        species_data = data["species"]
        if not isinstance(species_data, (list, tuple)):
            raise SpecError(f"{path}.species", f"expected a list, got {species_data!r}")
        species = tuple(
            SpeciesSpec.from_dict(sp, f"{path}.species[{i}]")
            for i, sp in enumerate(species_data)
        )
        field_data = data.get("field")
        ext_data = data.get("external_field")
        steps = data.get("steps")
        neutralize = data.get("neutralize", True)
        if not isinstance(neutralize, bool):
            raise SpecError(f"{path}.neutralize", f"expected a boolean, got {neutralize!r}")
        spec = cls(
            name=data["name"],
            model=data["model"],
            conf_grid=GridSpec.from_dict(data["conf_grid"], f"{path}.conf_grid"),
            species=species,
            field=FieldInitSpec.from_dict(field_data, f"{path}.field") if field_data else None,
            external_field=(
                ExternalFieldSpec.from_dict(ext_data, f"{path}.external_field")
                if ext_data
                else None
            ),
            poly_order=_num(data.get("poly_order", 2), f"{path}.poly_order", integer=True),
            family=data.get("family", "serendipity"),
            cfl=_num(data.get("cfl", 0.9), f"{path}.cfl"),
            scheme=data.get("scheme", "modal"),
            stepper=data.get("stepper", "ssp-rk3"),
            backend=data.get("backend", "numpy"),
            plan_mode=data.get("plan_mode", "fused"),
            plan_cache=data.get("plan_cache", "auto"),
            t_end=_num(data.get("t_end", 10.0), f"{path}.t_end"),
            steps=None if steps is None else _num(steps, f"{path}.steps", integer=True),
            epsilon0=_num(data.get("epsilon0", 1.0), f"{path}.epsilon0"),
            neutralize=neutralize,
            diagnostics=DiagnosticsSpec.from_dict(
                data.get("diagnostics", {}), f"{path}.diagnostics"
            ),
            observability=ObservabilitySpec.from_dict(
                data.get("observability", {}), f"{path}.observability"
            ),
        )
        return spec.validate()

    @classmethod
    def from_json(cls, text: str) -> "SimulationSpec":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise SpecError("spec", f"invalid JSON: {exc}") from exc
        return cls.from_dict(data)

    # ------------------------------------------------------------------ #
    def validate(self, path: str = "spec") -> "SimulationSpec":
        # the model catalogue is the systems registry: every registered
        # system declaration is a valid model name, nothing else is
        from ..systems.registry import get_system_kind, known_models

        if not isinstance(self.name, str) or not self.name:
            raise SpecError(f"{path}.name", f"expected a non-empty string, got {self.name!r}")
        if self.model not in known_models():
            raise SpecError(
                f"{path}.model",
                f"unknown model {self.model!r} (known: {', '.join(known_models())})",
            )
        if self.scheme not in SCHEMES:
            raise SpecError(
                f"{path}.scheme", f"unknown scheme {self.scheme!r} (known: {', '.join(SCHEMES)})"
            )
        from ..timestepping.ssprk import available_steppers

        if self.stepper not in available_steppers():
            raise SpecError(
                f"{path}.stepper",
                f"unknown stepper {self.stepper!r} "
                f"(known: {', '.join(available_steppers())})",
            )
        from ..engine.backend import get_backend

        try:
            get_backend(self.backend)
        except (ValueError, TypeError) as exc:
            raise SpecError(f"{path}.backend", str(exc)) from exc
        from ..engine.compile import PLAN_MODES

        if self.plan_mode not in PLAN_MODES:
            raise SpecError(
                f"{path}.plan_mode",
                f"unknown plan mode {self.plan_mode!r} "
                f"(known: {', '.join(PLAN_MODES)})",
            )
        if not isinstance(self.plan_cache, str) or not self.plan_cache:
            raise SpecError(
                f"{path}.plan_cache",
                "expected 'auto', 'off', or a cache directory, "
                f"got {self.plan_cache!r}",
            )
        from ..basis.multiindex import FAMILIES

        if self.family not in FAMILIES:
            raise SpecError(
                f"{path}.family",
                f"unknown basis family {self.family!r} (known: {', '.join(sorted(FAMILIES))})",
            )
        if self.poly_order < 1:
            raise SpecError(f"{path}.poly_order", "poly_order must be >= 1")
        if not 0 < self.cfl <= 2.0:
            raise SpecError(f"{path}.cfl", f"cfl must be in (0, 2], got {self.cfl}")
        if self.t_end <= 0:
            raise SpecError(f"{path}.t_end", "t_end must be positive")
        if self.steps is not None and self.steps < 1:
            raise SpecError(f"{path}.steps", "steps must be >= 1 when set")
        self.conf_grid.validate(f"{path}.conf_grid")
        cdim = self.conf_grid.ndim
        if not self.species:
            raise SpecError(f"{path}.species", "need at least one species")
        names = [sp.name for sp in self.species]
        if len(set(names)) != len(names):
            raise SpecError(f"{path}.species", f"species names must be unique, got {names}")
        for i, sp in enumerate(self.species):
            sp.validate(f"{path}.species[{i}]", cdim)
        # model-specific constraints live with the registered system
        kind = get_system_kind(self.model)
        if self.diagnostics.record_jdote and not kind.supports_jdote:
            raise SpecError(
                f"{path}.diagnostics.record_jdote",
                "J.E recording requires the maxwell model",
            )
        if kind.validate is not None:
            kind.validate(self, path)
        if self.field is not None:
            self.field.validate(f"{path}.field", cdim)
        if self.external_field is not None:
            self.external_field.validate(f"{path}.external_field", cdim)
        self.diagnostics.validate(f"{path}.diagnostics")
        self.observability.validate(f"{path}.observability")
        return self

    # ------------------------------------------------------------------ #
    def with_overrides(self, overrides: Mapping[str, object]) -> "SimulationSpec":
        """Apply dotted-path overrides (``species.elc.charge``, ``cfl`` ...).

        List segments accept either an integer index or, for species, the
        species name.  Profile/collision parameter dicts (kind-tagged) accept
        new keys; structured spec fields must already exist.
        """
        data = self.to_dict()
        for dotted, value in overrides.items():
            _assign(data, dotted.split("."), value, dotted)
        return SimulationSpec.from_dict(data)


def _assign(node, parts: List[str], value, full: str) -> None:
    head, rest = parts[0], parts[1:]
    if isinstance(node, list):
        try:
            idx = int(head)
        except ValueError:
            idx = next(
                (
                    i
                    for i, entry in enumerate(node)
                    if isinstance(entry, Mapping) and entry.get("name") == head
                ),
                None,
            )
            if idx is None:
                raise SpecError(full, f"no list entry named {head!r}")
        if not -len(node) <= idx < len(node):
            raise SpecError(full, f"index {idx} out of range (list has {len(node)} entries)")
        if not rest:
            node[idx] = value
            return
        _assign(node[idx], rest, value, full)
        return
    if not isinstance(node, dict):
        raise SpecError(full, f"cannot descend into {node!r} at segment {head!r}")
    if not rest:
        # kind-tagged dicts (profiles, collisions) are open parameter sets;
        # structured spec objects are closed.
        if head not in node and "kind" not in node and head != "kind":
            raise SpecError(
                full, f"unknown field {head!r} (known: {', '.join(sorted(node))})"
            )
        node[head] = value
        return
    if head not in node or node[head] is None:
        if head == "collisions":
            # seed with the default kind so the open kind-tagged-dict rule
            # applies to whatever parameter is being set underneath
            node[head] = {"kind": "lbo"}
        elif head not in node:
            raise SpecError(
                full, f"unknown field {head!r} (known: {', '.join(sorted(node))})"
            )
        else:
            raise SpecError(full, f"field {head!r} is null; set it wholesale first")
    _assign(node[head], rest, value, full)
