"""The simulation driver: compiles a spec into a System and runs it.

This is the runtime's counterpart of Gkeyll's App layer: given a
:class:`~repro.runtime.spec.SimulationSpec` it builds the registered
system declaration (:func:`repro.systems.build_system` — Vlasov–Maxwell,
Vlasov–Poisson, field-free advection, or any system registered through
:func:`repro.systems.register_system`), projects the declarative initial
conditions, then advances the model with scheduled energy diagnostics,
periodic checkpoints, and an optional wall-clock budget.  Everything the
driver touches on the built object is the
:class:`~repro.systems.model.Model` protocol — state/set_state, rhs,
suggested_dt, step, time/step_count, energies, observables.

A run interrupted by the budget (or a kill) resumes bit-for-bit from its
latest checkpoint via :meth:`Driver.from_checkpoint` — the checkpoint embeds
the full spec, so resuming needs nothing but the ``.npz`` file.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Mapping, Optional, Union

import numpy as np

from ..diagnostics.energy import EnergyHistory
from ..io.checkpoint import load_checkpoint, normalize_state_layout, save_checkpoint
from ..obs import OBS, chrome_trace, merge_snapshots
from ..obs import configure_from_spec as _obs_configure
from ..obs.metrics import SLOT as _OBS_SLOT
from ..systems.registry import build_system
from .errors import SpecError
from .spec import SimulationSpec

__all__ = ["Driver", "build_app"]

PathLike = Union[str, Path]
_HISTORY_PREFIX = "history/"

_S_STEPS = _OBS_SLOT["steps"]
_S_DIAG = _OBS_SLOT["diag_records"]
_S_DIAG_MS = _OBS_SLOT["diag_ms"]
_S_CKPT = _OBS_SLOT["checkpoints"]
_S_CKPT_MS = _OBS_SLOT["checkpoint_ms"]


def build_app(spec: SimulationSpec):
    """Instantiate the :class:`~repro.systems.system.System` described by
    ``spec`` (ICs projected, t=0).

    The spec's ``plan_mode``/``plan_cache`` are adopted as the process-global
    compiler configuration *before* anything compiles, so every plan of the
    run — including plans sharded workers compile after forking — follows
    the spec.

    A ``process[:N]`` backend returns the serial system wrapped in a
    :class:`repro.dist.ShardedApp`: construction forks N persistent worker
    processes that execute the steps over shared-memory state, while the
    returned object keeps the full Model protocol (diagnostics, checkpoint
    gather/scatter, CFL) bit-identical to a serial run.
    """
    from ..engine.compile import configure_from_spec

    configure_from_spec(spec)
    # observability is process-global for the same fork-inheritance reason;
    # configuring before the shard fork means workers adopt the mode too
    _obs_configure(spec)
    return _maybe_shard(build_system(spec), spec)


def _maybe_shard(app, spec: SimulationSpec):
    from ..engine.backend import ProcessBackend, get_backend

    backend = get_backend(spec.backend)
    if not isinstance(backend, ProcessBackend):
        return app
    from ..systems.registry import get_system_kind

    if not get_system_kind(spec.model).shardable:
        raise SpecError(
            "spec.backend",
            f"system {spec.model!r} is registered as not shardable; "
            "use the numpy or threaded backend",
        )
    from ..dist import ShardedApp

    try:
        return ShardedApp(app, backend.shards)
    except ValueError as exc:
        raise SpecError("spec.backend", str(exc)) from exc


class Driver:
    """Runs one spec to completion with diagnostics, checkpoints, budgets.

    Parameters
    ----------
    spec:
        The simulation description.
    outdir:
        Output directory; when set, checkpoints default to
        ``outdir/checkpoint.npz`` and :meth:`run` drops a final checkpoint
        there even if periodic checkpointing is off.
    wall_clock_budget:
        Optional wall-clock limit in seconds; the run stops cleanly (with a
        checkpoint, when a path is configured) once exceeded.
    """

    def __init__(
        self,
        spec: SimulationSpec,
        outdir: Optional[PathLike] = None,
        wall_clock_budget: Optional[float] = None,
    ):
        self.spec = spec.validate()
        self.outdir = Path(outdir) if outdir is not None else None
        self.wall_clock_budget = wall_clock_budget
        # plan-compilation counters are process-global; summary() reports
        # this driver's contribution as the delta from here
        from ..engine.compile import STATS as _PLAN_STATS

        self._plan_stats0 = _PLAN_STATS.snapshot()
        self.app = build_app(self.spec)
        self.history = EnergyHistory(record_jdote=spec.diagnostics.record_jdote)
        self.wall_time = 0.0
        self._stream = None
        self._metrics_stream = None
        self._steps_per_s: Optional[float] = None
        self._run_start: Optional[float] = None
        self._run_steps0 = 0
        # a fresh driver truncates any stale stream file; checkpoint resumes
        # (and later run() calls on this driver) append
        self._stream_mode = "w"
        if self.outdir is not None:
            self.outdir.mkdir(parents=True, exist_ok=True)
        if spec.diagnostics.checkpoint_interval and self.checkpoint_path is None:
            raise SpecError(
                "spec.diagnostics.checkpoint_path",
                "checkpoint_interval is set but there is nowhere to write: "
                "set checkpoint_path, or give the Driver an outdir",
            )

    # ------------------------------------------------------------------ #
    @property
    def checkpoint_path(self) -> Optional[Path]:
        if self.spec.diagnostics.checkpoint_path is not None:
            return Path(self.spec.diagnostics.checkpoint_path)
        if self.outdir is not None:
            return self.outdir / "checkpoint.npz"
        return None

    @property
    def stream_path(self) -> Optional[Path]:
        """Where incremental JSONL diagnostics go (None disables streaming)."""
        if self.spec.diagnostics.stream_path is not None:
            return Path(self.spec.diagnostics.stream_path)
        if self.outdir is not None:
            return self.outdir / "diagnostics.jsonl"
        return None

    @property
    def metrics_path(self) -> Optional[Path]:
        """Where ``metrics.jsonl`` goes when observability is on."""
        if self.spec.observability.metrics_path is not None:
            return Path(self.spec.observability.metrics_path)
        if self.outdir is not None:
            return self.outdir / "metrics.jsonl"
        return None

    @property
    def trace_path(self) -> Optional[Path]:
        """Where ``trace.json`` goes when observability mode is trace."""
        if self.spec.observability.trace_path is not None:
            return Path(self.spec.observability.trace_path)
        if self.outdir is not None:
            return self.outdir / "trace.json"
        return None

    def checkpoint(self, path: Optional[PathLike] = None) -> Path:
        """Write a self-describing checkpoint (state + history + spec)."""
        if OBS.on:
            t0 = time.perf_counter()
            out = self._checkpoint(path)
            OBS.finish("checkpoint", t0, _S_CKPT, _S_CKPT_MS)
            return out
        return self._checkpoint(path)

    def _checkpoint(self, path: Optional[PathLike] = None) -> Path:
        path = Path(path) if path is not None else self.checkpoint_path
        if path is None:
            raise SpecError(
                "spec.diagnostics.checkpoint_path",
                "no checkpoint path: set it, or give the Driver an outdir",
            )
        state = dict(self.app.state())
        if self.history.times:
            state[_HISTORY_PREFIX + "times"] = np.asarray(self.history.times)
            state[_HISTORY_PREFIX + "field_energy"] = np.asarray(
                self.history.field_energy
            )
            for name, vals in self.history.particle_energy.items():
                state[_HISTORY_PREFIX + f"particle_energy/{name}"] = np.asarray(vals)
            if self.history.record_jdote:
                state[_HISTORY_PREFIX + "jdote"] = np.asarray(self.history.jdote)
        meta = {
            "spec": self.spec.to_dict(),
            "time": self.app.time,
            "step_count": self.app.step_count,
            "wall_time": self.wall_time,
        }
        save_checkpoint(path, state, meta)
        return path

    @classmethod
    def from_checkpoint(
        cls,
        path: PathLike,
        outdir: Optional[PathLike] = None,
        wall_clock_budget: Optional[float] = None,
        overrides: Optional[Mapping[str, object]] = None,
    ) -> "Driver":
        """Rebuild a driver from a checkpoint and continue where it left off.

        ``overrides`` are dotted-path spec overrides applied before the app
        is rebuilt — raising ``steps`` or ``t_end`` lets a finished segment
        continue further.  Overrides that change the discretization will
        (rightly) fail when the stored state no longer fits the new app.
        """
        state, meta = load_checkpoint(path)
        spec = SimulationSpec.from_dict(meta["spec"])
        if overrides:
            spec = spec.with_overrides(overrides)
        drv = cls(spec, outdir=outdir, wall_clock_budget=wall_clock_budget)
        drv._stream_mode = "a"  # continue the interrupted run's stream
        app_state = {
            k: v for k, v in state.items() if not k.startswith(_HISTORY_PREFIX)
        }
        # pre-refactor checkpoints hold mode-major arrays; convert them to
        # the canonical cell-major layout element-exactly
        app_state = normalize_state_layout(
            app_state, meta, drv.app.conf_grid.ndim
        )
        drv.app.set_state({k: np.array(v) for k, v in app_state.items()})
        drv.app.time = float(meta["time"])
        drv.app.step_count = int(meta["step_count"])
        drv.wall_time = float(meta.get("wall_time", 0.0))
        times = state.get(_HISTORY_PREFIX + "times")
        if times is not None:
            drv.history.times = list(times)
            drv.history.field_energy = list(state[_HISTORY_PREFIX + "field_energy"])
            for key, vals in state.items():
                pe_prefix = _HISTORY_PREFIX + "particle_energy/"
                if key.startswith(pe_prefix):
                    drv.history.particle_energy[key[len(pe_prefix):]] = list(vals)
            if drv.history.record_jdote:
                drv.history.jdote = list(state.get(_HISTORY_PREFIX + "jdote", []))
        return drv

    # ------------------------------------------------------------------ #
    def _record(self) -> None:
        if not self.spec.diagnostics.energy_interval:
            return
        if OBS.on:
            t0 = time.perf_counter()
            self.history(self.app)
            self._stream_record()
            OBS.finish("diagnostics", t0, _S_DIAG, _S_DIAG_MS)
            self._metrics_record()
        else:
            self.history(self.app)
            self._stream_record()

    def _stream_record(self) -> None:
        """Append the newest history entry to the JSONL stream (if open)."""
        if self._stream is None:
            return
        h = self.history
        rec: Dict[str, object] = {
            "time": h.times[-1],
            "step": self.app.step_count,
            "field_energy": h.field_energy[-1],
            "particle_energy": {
                name: vals[-1] for name, vals in h.particle_energy.items()
            },
        }
        if h.record_jdote and h.jdote:
            rec["jdote"] = h.jdote[-1]
        self._stream.write(json.dumps(rec) + "\n")
        self._stream.flush()

    # ------------------------------------------------------------------ #
    # observability (see repro.obs; everything below is cold-path)
    # ------------------------------------------------------------------ #
    def _obs_merged(self) -> Dict[str, float]:
        """This run's metrics merged across the driver and (when sharded)
        every worker's shared-memory registry."""
        snaps = [OBS.metrics.snapshot()]
        worker_metrics = getattr(self.app, "obs_metrics", None)
        if callable(worker_metrics):
            snaps.extend(worker_metrics())
        merged = merge_snapshots(snaps)
        merged["spans_dropped"] += OBS.tracer.dropped
        return merged

    def _metrics_record(self) -> None:
        """Append a cumulative merged-counter snapshot to metrics.jsonl."""
        if self._metrics_stream is None:
            return
        rec: Dict[str, object] = {
            "time": self.app.time,
            "step": self.app.step_count,
            "metrics": self._obs_merged(),
        }
        if self._run_start is not None:
            elapsed = time.perf_counter() - self._run_start
            if elapsed > 0:
                rec["steps_per_s"] = (
                    self.app.step_count - self._run_steps0
                ) / elapsed
        self._metrics_stream.write(json.dumps(rec) + "\n")
        self._metrics_stream.flush()

    def _write_trace(self) -> None:
        """Merge driver + worker spans into a Chrome trace file."""
        path = self.trace_path
        if path is None:
            return
        pid = os.getpid()
        events = OBS.tracer.resolved(pid, 0)
        names = {pid: "driver"}
        worker_spans = getattr(self.app, "obs_spans", None)
        if callable(worker_spans):
            events.extend(worker_spans())
            names.update(self.app.obs_process_names())
        events.sort(key=lambda ev: ev[3])
        doc = chrome_trace(events, OBS.origin, names)
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "w") as fh:
            json.dump(doc, fh)

    def _close_streams(self) -> None:
        """Flush + fsync + close both JSONL streams: runs in ``finally``,
        so a KeyboardInterrupt cannot leave a truncated tail line only in
        the OS page cache."""
        for name in ("_stream", "_metrics_stream"):
            fh = getattr(self, name)
            if fh is None:
                continue
            setattr(self, name, None)
            try:
                fh.flush()
                os.fsync(fh.fileno())
            finally:
                fh.close()

    def run(self, t_end: Optional[float] = None) -> Dict[str, object]:
        """Advance to ``t_end`` (default: the spec's) or the step cap.

        Returns a JSON-serializable summary.  ``status`` is ``"complete"``,
        ``"max_steps"`` (step cap hit first) or ``"budget_exhausted"``
        (wall-clock budget hit; a checkpoint is written when configured).

        While running, diagnostics records stream incrementally to
        :attr:`stream_path` as JSON lines (flushed per record), so long
        campaigns are observable — and their histories salvageable — before
        (or without) a clean finish.  Streaming is at-least-once: after a
        crash, records between the last checkpoint and the kill point are
        re-emitted by the resumed run — consumers should dedupe on ``step``
        (keeping the last occurrence).
        """
        app = self.app
        diag = self.spec.diagnostics
        t_end = self.spec.t_end if t_end is None else float(t_end)
        max_steps = self.spec.steps if self.spec.steps is not None else 10**9
        start = time.perf_counter()
        # precompute the absolute deadline once; the loop checks it every
        # step, so budgeted runs stop within one step of the limit
        deadline = (
            None if self.wall_clock_budget is None
            else start + self.wall_clock_budget
        )
        status = "complete"
        spath = self.stream_path
        if spath is not None:
            spath.parent.mkdir(parents=True, exist_ok=True)
            self._stream = open(spath, self._stream_mode)
            self._stream_mode = "a"
        obs = OBS
        if obs.on:
            self._run_start = start
            self._run_steps0 = app.step_count
            mpath = self.metrics_path
            if mpath is not None:
                mpath.parent.mkdir(parents=True, exist_ok=True)
                self._metrics_stream = open(mpath, "w")
        try:
            if not self.history.times and app.step_count == 0:
                self._record()
            while app.time < t_end - 1e-12 and app.step_count < max_steps:
                if deadline is not None and time.perf_counter() > deadline:
                    status = "budget_exhausted"
                    break
                dt = min(app.suggested_dt(), t_end - app.time)
                if obs.on:
                    obs.begin_step(app.step_count)
                    ts = time.perf_counter()
                    app.step(dt)
                    elapsed = obs.finish("step", ts, _S_STEPS)
                    obs.metrics.observe_step_ms(elapsed * 1e3)
                else:
                    app.step(dt)
                if diag.energy_interval and app.step_count % diag.energy_interval == 0:
                    self._record()
                if diag.checkpoint_interval and app.step_count % diag.checkpoint_interval == 0:
                    self.checkpoint()
            else:
                if app.time < t_end - 1e-12:
                    status = "max_steps"
        finally:
            if obs.on:
                elapsed = time.perf_counter() - start
                if elapsed > 0:
                    self._steps_per_s = (
                        app.step_count - self._run_steps0
                    ) / elapsed
                self._metrics_record()
                self._run_start = None
            self._close_streams()
            if obs.mode == "trace":
                self._write_trace()
        self.wall_time += time.perf_counter() - start
        if self.checkpoint_path is not None:
            self.checkpoint()
        return self.summary(status)

    def close(self) -> None:
        """Release app execution resources (worker processes and shared
        memory under the ``process`` backend; a no-op otherwise).  The app
        keeps private state copies, so diagnostics and checkpointing stay
        usable after closing."""
        close = getattr(self.app, "close", None)
        if callable(close):
            close()

    def summary(self, status: str = "complete") -> Dict[str, object]:
        app = self.app
        energies = app.energies()
        observables = app.observables()
        number_prefix = "particle_number/"
        out: Dict[str, object] = {
            "scenario": self.spec.name,
            "status": status,
            "time": app.time,
            "steps": app.step_count,
            "wall_time": self.wall_time,
            "wall_per_step": self.wall_time / max(app.step_count, 1),
            "field_energy": energies["field"],
            "total_energy": energies["total"],
            "particle_number": {
                key[len(number_prefix):]: val
                for key, val in observables.items()
                if key.startswith(number_prefix)
            },
        }
        if self.history.times:
            out["energy_drift"] = self.history.relative_drift()
        from ..engine.compile import STATS as _PLAN_STATS

        plans = _PLAN_STATS.delta(_PLAN_STATS.snapshot(), self._plan_stats0)
        worker_stats = getattr(app, "plan_stats", None)
        if callable(worker_stats):
            # sharded runs: fold in the counters the forked workers report
            # (their compiles happen in child processes, not this one)
            for payload in worker_stats():
                for key, val in payload.items():
                    plans[key] = plans.get(key, 0) + val
        out["plans"] = plans
        if OBS.on:
            out["obs"] = {
                "mode": OBS.mode,
                "sample": OBS.sample,
                "metrics": self._obs_merged(),
                "steps_per_s": self._steps_per_s,
            }
        return out
