"""Runtime representation of CAS-generated DG update kernels.

A generated kernel is a short list of *terms*: each term pairs a **symbol
product** (names of runtime quantities such as ``2/dx``, cell-center
velocity, or a modal field coefficient) with a sparse ``(nout, nin)``
coefficient matrix whose entries were integrated exactly at generation time.
Applying the kernel evaluates

.. math::

   \\text{out}[l] \\mathrel{+}= \\sum_t \\Big(\\prod_{s \\in \\text{sym}_t}
       \\text{aux}[s]\\Big) \\; (M_t \\, f)[l]

vectorized over every grid cell at once.  This is the same sparse
contraction :math:`\\sum_{mn} C_{lmn} \\alpha_n f_m` as the paper's unrolled
C++ kernels — the measured cost is proportional to the exact nonzero count,
which is what produces the sub-quadratic scaling of Fig. 2.  An equivalent
fully-unrolled Python source form is available through
:mod:`repro.cas.codegen` for inspection and FLOP counting (Fig. 1); the two
evaluation paths agree to machine precision (see tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

import numpy as np
import scipy.sparse as sp

Symbol = Tuple[str, ...]
AuxValue = Union[float, np.ndarray]

__all__ = ["Term", "TermSet", "symbol_value", "merge_termsets", "stack_termsets"]


def symbol_value(aux: Dict[str, AuxValue], sym: Symbol):
    """Product of the aux factors named by ``sym`` (1.0 for the empty tuple)."""
    val: AuxValue = 1.0
    for name in sym:
        val = val * aux[name]
    return val


@dataclass
class Term:
    """One symbol-product / sparse-matrix pair of a kernel."""

    sym: Symbol
    matrix: sp.csr_matrix          # (nout, ncols) restricted to active columns
    cols: np.ndarray               # active input rows (columns of the full matrix)


class TermSet:
    """A generated kernel: a list of terms plus shape metadata.

    Parameters
    ----------
    nout, nin:
        Number of output and input modal coefficients.
    entries:
        COO triples grouped by symbol:
        ``{sym: [(l, m, coeff), ...]}``.
    """

    def __init__(self, nout: int, nin: int, entries: Dict[Symbol, List[Tuple[int, int, float]]]):
        self.nout = int(nout)
        self.nin = int(nin)
        self.terms: List[Term] = []
        self._entries = {sym: list(e) for sym, e in entries.items() if e}
        for sym in sorted(self._entries):
            triples = self._entries[sym]
            rows = np.array([t[0] for t in triples], dtype=np.int64)
            cols = np.array([t[1] for t in triples], dtype=np.int64)
            vals = np.array([t[2] for t in triples], dtype=float)
            active = np.unique(cols)
            remap = {c: j for j, c in enumerate(active)}
            cols_r = np.array([remap[c] for c in cols], dtype=np.int64)
            mat = sp.csr_matrix(
                (vals, (rows, cols_r)), shape=(self.nout, active.size)
            )
            self.terms.append(Term(sym=sym, matrix=mat, cols=active))

    # ------------------------------------------------------------------ #
    @property
    def num_entries(self) -> int:
        """Total exact-nonzero tensor entries (the paper's sparsity measure)."""
        return sum(t.matrix.nnz for t in self.terms)

    @property
    def symbols(self) -> List[Symbol]:
        return [t.sym for t in self.terms]

    def entries_by_symbol(self) -> Dict[Symbol, List[Tuple[int, int, float]]]:
        """COO triples keyed by symbol (for code generation / inspection)."""
        return {sym: list(e) for sym, e in self._entries.items()}

    def is_empty(self) -> bool:
        return not self.terms

    def scaled(self, factor: float) -> "TermSet":
        """A copy with every coefficient multiplied by ``factor`` (folds
        constant flux weights into the generated entries)."""
        return TermSet(
            self.nout,
            self.nin,
            {
                sym: [(l, m, c * factor) for l, m, c in triples]
                for sym, triples in self._entries.items()
            },
        )

    # ------------------------------------------------------------------ #
    def apply(
        self,
        fin: np.ndarray,
        aux: Dict[str, AuxValue],
        out: np.ndarray,
        scale: float = 1.0,
    ) -> np.ndarray:
        """Accumulate the kernel action into ``out``.

        Parameters
        ----------
        fin:
            Input coefficients, shape ``(nin, *cells)``; the cell axes may be
            any shape, and aux arrays must broadcast against it.
        aux:
            Runtime symbol values (floats or broadcastable arrays).
        out:
            Output accumulator, shape ``(nout, *cells)`` (modified in place).
        scale:
            Overall factor (e.g. -1 for a right-hand-side sign).
        """
        cell_shape = fin.shape[1:]
        ncells = int(np.prod(cell_shape)) if cell_shape else 1
        out2 = out.reshape(self.nout, ncells)
        for term in self.terms:
            val = symbol_value(aux, term.sym)
            g = fin[term.cols] * val
            if scale != 1.0:
                g = g * scale
            out2 += term.matrix @ np.ascontiguousarray(
                g.reshape(term.cols.size, ncells)
            )
        return out

    def apply_dense(self, fin: np.ndarray, aux: Dict[str, AuxValue]) -> np.ndarray:
        """Non-accumulating convenience wrapper (allocates the output)."""
        cell_shape = fin.shape[1:]
        out = np.zeros((self.nout,) + cell_shape)
        self.apply(fin, aux, out)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TermSet(nout={self.nout}, nin={self.nin}, "
            f"terms={len(self.terms)}, nnz={self.num_entries})"
        )


def merge_termsets(termsets: List["TermSet"]) -> "TermSet":
    """The sum of several kernels with identical shapes as one kernel.

    Entries sharing a symbol and an ``(l, m)`` slot add, so applying the
    merged kernel equals applying each input in turn — in one pass over the
    state instead of one per kernel.
    """
    if not termsets:
        raise ValueError("need at least one termset")
    nout, nin = termsets[0].nout, termsets[0].nin
    entries: Dict[Symbol, List[Tuple[int, int, float]]] = {}
    for ts in termsets:
        if (ts.nout, ts.nin) != (nout, nin):
            raise ValueError("merge requires identical (nout, nin)")
        for sym, triples in ts.entries_by_symbol().items():
            entries.setdefault(sym, []).extend(triples)
    return TermSet(nout, nin, entries)


def stack_termsets(termsets: List["TermSet"]) -> "TermSet":
    """A kernel computing the row-concatenation of several kernels' outputs.

    All inputs must share ``nin``; output slot ``sum(nout_before) + l`` of
    the stacked kernel is slot ``l`` of the corresponding input.  Used to
    evaluate the left- and right-cell face increments of one state in a
    single (taller) batched product.
    """
    if not termsets:
        raise ValueError("need at least one termset")
    nin = termsets[0].nin
    entries: Dict[Symbol, List[Tuple[int, int, float]]] = {}
    offset = 0
    for ts in termsets:
        if ts.nin != nin:
            raise ValueError("stack requires identical nin")
        for sym, triples in ts.entries_by_symbol().items():
            entries.setdefault(sym, []).extend(
                (l + offset, m, c) for l, m, c in triples
            )
        offset += ts.nout
    return TermSet(offset, nin, entries)
