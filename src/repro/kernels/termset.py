"""Runtime representation of CAS-generated DG update kernels.

A generated kernel is a short list of *terms*: each term pairs a **symbol
product** (names of runtime quantities such as ``2/dx``, cell-center
velocity, or a modal field coefficient) with a sparse ``(nout, nin)``
coefficient matrix whose entries were integrated exactly at generation time.
Applying the kernel evaluates

.. math::

   \\text{out}[l] \\mathrel{+}= \\sum_t \\Big(\\prod_{s \\in \\text{sym}_t}
       \\text{aux}[s]\\Big) \\; (M_t \\, f)[l]

vectorized over every grid cell at once.  This is the same sparse
contraction :math:`\\sum_{mn} C_{lmn} \\alpha_n f_m` as the paper's unrolled
C++ kernels — the measured cost is proportional to the exact nonzero count,
which is what produces the sub-quadratic scaling of Fig. 2.  An equivalent
fully-unrolled Python source form is available through
:mod:`repro.cas.codegen` for inspection and FLOP counting (Fig. 1); the two
evaluation paths agree to machine precision (see tests).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple, Union

import numpy as np
import scipy.sparse as sp

Symbol = Tuple[str, ...]
AuxValue = Union[float, np.ndarray]

__all__ = ["Term", "TermSet", "symbol_value", "merge_termsets", "stack_termsets"]

try:  # fast in-place sparse accumulation (scipy's own csr kernel)
    from scipy.sparse import _sparsetools as _csr_tools
except ImportError:  # pragma: no cover - scipy always ships it
    _csr_tools = None


def csr_accumulate(mat: sp.csr_matrix, data: np.ndarray, x2: np.ndarray, y2: np.ndarray):
    """``y2 += csr(mat.indptr, mat.indices, data) @ x2`` without temporaries.

    ``x2``/``y2`` must be C-contiguous 2-D blocks.
    """
    if _csr_tools is not None:
        _csr_tools.csr_matvecs(
            mat.shape[0],
            mat.shape[1],
            x2.shape[1],
            mat.indptr,
            mat.indices,
            data,
            x2.reshape(-1),
            y2.reshape(-1),
        )
    else:  # pragma: no cover - exercised only on exotic scipy builds
        y2 += sp.csr_matrix((data, mat.indices, mat.indptr), shape=mat.shape) @ x2


def symbol_value(aux: Dict[str, AuxValue], sym: Symbol):
    """Product of the aux factors named by ``sym`` (1.0 for the empty tuple)."""
    val: AuxValue = 1.0
    for name in sym:
        val = val * aux[name]
    return val


@dataclass
class Term:
    """One symbol-product / sparse-matrix pair of a kernel."""

    sym: Symbol
    matrix: sp.csr_matrix          # (nout, ncols) restricted to active columns
    cols: np.ndarray               # active input rows (columns of the full matrix)


class TermSet:
    """A generated kernel: a list of terms plus shape metadata.

    Parameters
    ----------
    nout, nin:
        Number of output and input modal coefficients.
    entries:
        COO triples grouped by symbol:
        ``{sym: [(l, m, coeff), ...]}``.
    """

    def __init__(self, nout: int, nin: int, entries: Dict[Symbol, List[Tuple[int, int, float]]]):
        self.nout = int(nout)
        self.nin = int(nin)
        self.terms: List[Term] = []
        self._entries = {sym: list(e) for sym, e in entries.items() if e}
        for sym in sorted(self._entries):
            triples = self._entries[sym]
            rows = np.array([t[0] for t in triples], dtype=np.int64)
            cols = np.array([t[1] for t in triples], dtype=np.int64)
            vals = np.array([t[2] for t in triples], dtype=float)
            active = np.unique(cols)
            remap = {c: j for j, c in enumerate(active)}
            cols_r = np.array([remap[c] for c in cols], dtype=np.int64)
            mat = sp.csr_matrix(
                (vals, (rows, cols_r)), shape=(self.nout, active.size)
            )
            self.terms.append(Term(sym=sym, matrix=mat, cols=active))

    # ------------------------------------------------------------------ #
    @property
    def num_entries(self) -> int:
        """Total exact-nonzero tensor entries (the paper's sparsity measure)."""
        return sum(t.matrix.nnz for t in self.terms)

    @property
    def symbols(self) -> List[Symbol]:
        return [t.sym for t in self.terms]

    def entries_by_symbol(self) -> Dict[Symbol, List[Tuple[int, int, float]]]:
        """COO triples keyed by symbol (for code generation / inspection)."""
        return {sym: list(e) for sym, e in self._entries.items()}

    def is_empty(self) -> bool:
        return not self.terms

    def scaled(self, factor: float) -> "TermSet":
        """A copy with every coefficient multiplied by ``factor`` (folds
        constant flux weights into the generated entries)."""
        return TermSet(
            self.nout,
            self.nin,
            {
                sym: [(l, m, c * factor) for l, m, c in triples]
                for sym, triples in self._entries.items()
            },
        )

    # ------------------------------------------------------------------ #
    def apply(
        self,
        fin: np.ndarray,
        aux: Dict[str, AuxValue],
        out: np.ndarray,
        scale: float = 1.0,
    ) -> np.ndarray:
        """Accumulate the kernel action into ``out``.

        Parameters
        ----------
        fin:
            Input coefficients, shape ``(nin, *cells)``; the cell axes may be
            any shape, and aux arrays must broadcast against it.
        aux:
            Runtime symbol values (floats or broadcastable arrays).
        out:
            Output accumulator, shape ``(nout, *cells)`` (modified in place).
        scale:
            Overall factor (e.g. -1 for a right-hand-side sign).
        """
        cell_shape = fin.shape[1:]
        ncells = int(np.prod(cell_shape)) if cell_shape else 1
        out2 = out.reshape(self.nout, ncells)
        for term in self.terms:
            val = symbol_value(aux, term.sym)
            g = fin[term.cols] * val
            if scale != 1.0:
                g = g * scale
            out2 += term.matrix @ np.ascontiguousarray(
                g.reshape(term.cols.size, ncells)
            )
        return out

    def apply_cm(
        self,
        fin: np.ndarray,
        aux: Dict[str, AuxValue],
        out: np.ndarray,
        cdim: int,
        scale: float = 1.0,
    ) -> np.ndarray:
        """Accumulate the kernel action on **cell-major** state.

        ``fin`` is ``(*cfg_cells, nin, *vel_cells)`` (any strides), ``out``
        is ``(*cfg_cells, nout, *vel_cells)`` and must be C-contiguous; aux
        arrays broadcast over the ``(*cfg, *vel)`` cell axes exactly as in
        :meth:`apply` (no basis axis — it is inserted here).  The per-cell
        contraction is the same csr kernel as the mode-major path, applied
        per configuration cell, so per-element results are bit-identical.
        """
        cfg_shape = fin.shape[:cdim]
        vel_shape = fin.shape[cdim + 1 :]
        pdim = cdim + len(vel_shape)
        ncfg = int(np.prod(cfg_shape)) if cfg_shape else 1
        nvel = int(np.prod(vel_shape)) if vel_shape else 1
        out3 = out.reshape(ncfg, self.nout, nvel)
        lead = (slice(None),) * cdim
        for term in self.terms:
            val = symbol_value(aux, term.sym)
            if isinstance(val, np.ndarray) and val.ndim:
                if val.ndim != pdim:
                    raise ValueError(
                        f"aux value for {term.sym} has ndim {val.ndim}, "
                        f"expected the {pdim} cell axes"
                    )
                val = val.reshape(val.shape[:cdim] + (1,) + val.shape[cdim:])
            # the product materializes a fresh contiguous cell-major array,
            # so strided fin views (face slices, ghost windows) need no
            # up-front copy
            g = fin[lead + (term.cols,)] * val
            if scale != 1.0:
                g *= scale
            g3 = g.reshape(ncfg, term.cols.size, nvel)
            mat = term.matrix
            for c in range(ncfg):
                csr_accumulate(mat, mat.data, g3[c], out3[c])
        return out

    def apply_dense(self, fin: np.ndarray, aux: Dict[str, AuxValue]) -> np.ndarray:
        """Non-accumulating convenience wrapper (allocates the output)."""
        cell_shape = fin.shape[1:]
        out = np.zeros((self.nout,) + cell_shape)
        self.apply(fin, aux, out)
        return out

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"TermSet(nout={self.nout}, nin={self.nin}, "
            f"terms={len(self.terms)}, nnz={self.num_entries})"
        )


def merge_termsets(termsets: List["TermSet"]) -> "TermSet":
    """The sum of several kernels with identical shapes as one kernel.

    Entries sharing a symbol and an ``(l, m)`` slot add, so applying the
    merged kernel equals applying each input in turn — in one pass over the
    state instead of one per kernel.
    """
    if not termsets:
        raise ValueError("need at least one termset")
    nout, nin = termsets[0].nout, termsets[0].nin
    entries: Dict[Symbol, List[Tuple[int, int, float]]] = {}
    for ts in termsets:
        if (ts.nout, ts.nin) != (nout, nin):
            raise ValueError("merge requires identical (nout, nin)")
        for sym, triples in ts.entries_by_symbol().items():
            entries.setdefault(sym, []).extend(triples)
    return TermSet(nout, nin, entries)


def stack_termsets(termsets: List["TermSet"]) -> "TermSet":
    """A kernel computing the row-concatenation of several kernels' outputs.

    All inputs must share ``nin``; output slot ``sum(nout_before) + l`` of
    the stacked kernel is slot ``l`` of the corresponding input.  Used to
    evaluate the left- and right-cell face increments of one state in a
    single (taller) batched product.
    """
    if not termsets:
        raise ValueError("need at least one termset")
    nin = termsets[0].nin
    entries: Dict[Symbol, List[Tuple[int, int, float]]] = {}
    offset = 0
    for ts in termsets:
        if ts.nin != nin:
            raise ValueError("stack requires identical nin")
        for sym, triples in ts.entries_by_symbol().items():
            entries.setdefault(sym, []).extend(
                (l + offset, m, c) for l, m, c in triples
            )
        offset += ts.nout
    return TermSet(offset, nin, entries)
