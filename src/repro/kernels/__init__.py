"""CAS-generated, alias-free, matrix-free, quadrature-free DG kernels."""

from .flops import compare_costs, modal_update_multiplications, nodal_update_multiplications
from .generator import (
    FluxSpec,
    FluxTerm,
    generate_moment_termset,
    generate_multiply_termset,
    generate_surface_termsets,
    generate_volume_termset,
)
# NOTE: GroupedOperator lives in repro.kernels.grouped and is imported from
# there directly — importing it here would cycle through repro.engine, whose
# plans consume this package's termsets.
from .registry import clear_registry, get_vlasov_kernels, registry_stats
from .termset import Term, TermSet, merge_termsets, stack_termsets
from .vlasov import VlasovKernels, acceleration_flux, build_vlasov_kernels, streaming_flux

__all__ = [
    "TermSet",
    "Term",
    "merge_termsets",
    "stack_termsets",
    "FluxSpec",
    "FluxTerm",
    "generate_volume_termset",
    "generate_surface_termsets",
    "generate_moment_termset",
    "generate_multiply_termset",
    "VlasovKernels",
    "build_vlasov_kernels",
    "streaming_flux",
    "acceleration_flux",
    "get_vlasov_kernels",
    "clear_registry",
    "registry_stats",
    "compare_costs",
    "modal_update_multiplications",
    "nodal_update_multiplications",
]
