"""Process-wide cache of generated kernel bundles.

Kernel generation (exact symbolic integration) is a one-time cost per
``(cdim, vdim, poly_order, family)`` combination — the analogue of Gkeyll
pre-generating its C++ kernels with Maxima.  The registry memoizes bundles
so solvers, tests, and benchmarks share them.
"""

from __future__ import annotations

import threading
from typing import Dict, Tuple

from .vlasov import VlasovKernels, build_vlasov_kernels

__all__ = ["get_vlasov_kernels", "clear_registry", "registry_stats"]

_LOCK = threading.Lock()
_CACHE: Dict[Tuple[int, int, int, str], VlasovKernels] = {}


def get_vlasov_kernels(
    cdim: int, vdim: int, poly_order: int, family: str = "serendipity"
) -> VlasovKernels:
    """Fetch (generating on first use) the Vlasov kernel bundle."""
    key = (int(cdim), int(vdim), int(poly_order), str(family))
    with _LOCK:
        bundle = _CACHE.get(key)
    if bundle is not None:
        return bundle
    bundle = build_vlasov_kernels(*key)
    with _LOCK:
        _CACHE.setdefault(key, bundle)
    return _CACHE[key]


def clear_registry() -> None:
    with _LOCK:
        _CACHE.clear()


def registry_stats() -> Dict[str, int]:
    with _LOCK:
        return {
            "bundles": len(_CACHE),
            "total_nnz": sum(
                sum(ts.num_entries for ts in b.all_update_termsets())
                for b in _CACHE.values()
            ),
        }
