"""Operation-count accounting: modal (sparse, exact) vs nodal (quadrature).

Reproduces the paper's cost bookkeeping: the modal kernel cost is the exact
nonzero count of the generated tensors (Sec. II / Fig. 1), while the
alias-free nodal scheme pays dense interpolate -> pointwise flux -> project
matrix products of size :math:`N_p \\times N_q` for every integral
(Sec. III), with the number of quadrature points :math:`N_q` growing
exponentially with dimension.
"""

from __future__ import annotations

from dataclasses import dataclass
from math import ceil
from typing import Dict

from ..cas.codegen import count_multiplications
from .vlasov import VlasovKernels

__all__ = [
    "alias_free_quadrature_points_1d",
    "modal_update_multiplications",
    "nodal_update_multiplications",
    "UpdateCost",
    "compare_costs",
]


def alias_free_quadrature_points_1d(poly_order: int) -> int:
    """Gauss points per direction needed to integrate the quadratically
    nonlinear Vlasov volume term exactly (degree <= 3p + 1 per direction),
    i.e. the paper's ``N_q = (3p+1)/2``-style over-integration rounded up."""
    return ceil((3 * poly_order + 2) / 2)


def modal_update_multiplications(kernels: VlasovKernels) -> Dict[str, int]:
    """Exact multiplication counts of every generated kernel group for one
    forward-Euler update of one cell."""
    vol_stream = sum(count_multiplications(ts) for ts in kernels.vol_stream)
    vol_accel = sum(count_multiplications(ts) for ts in kernels.vol_accel)
    surf_stream = sum(
        count_multiplications(ts)
        for sides in kernels.surf_stream
        for ts in sides.values()
    )
    surf_accel = sum(
        count_multiplications(ts)
        for sides in kernels.surf_accel
        for ts in sides.values()
    )
    return {
        "volume_streaming": vol_stream,
        "volume_acceleration": vol_accel,
        "surface_streaming": surf_stream,
        "surface_acceleration": surf_accel,
        "volume_total": vol_stream + vol_accel,
        "total": vol_stream + vol_accel + surf_stream + surf_accel,
    }


def nodal_update_multiplications(
    num_basis: int, cdim: int, vdim: int, poly_order: int
) -> Dict[str, int]:
    """Multiplication count of the alias-free nodal/quadrature update of one
    cell: per direction, interpolate to the quadrature grid (``Np*Nq``),
    multiply by the flux pointwise (``Nq``), and project back with the
    (derivative-)matrix (``Np*Nq``); surfaces do the same on the two
    ``(d-1)``-dimensional face quadrature grids of each direction."""
    pdim = cdim + vdim
    nq1 = alias_free_quadrature_points_1d(poly_order)
    nq_vol = nq1 ** pdim
    nq_face = nq1 ** (pdim - 1)
    per_dir_vol = 2 * num_basis * nq_vol + nq_vol
    per_dir_surf = 2 * (2 * num_basis * nq_face + nq_face)
    total_vol = pdim * per_dir_vol
    total_surf = pdim * per_dir_surf
    return {
        "quad_points_volume": nq_vol,
        "quad_points_face": nq_face,
        "volume_total": total_vol,
        "surface_total": total_surf,
        "total": total_vol + total_surf,
    }


@dataclass
class UpdateCost:
    modal: Dict[str, int]
    nodal: Dict[str, int]

    @property
    def speedup(self) -> float:
        return self.nodal["total"] / max(self.modal["total"], 1)


def compare_costs(kernels: VlasovKernels) -> UpdateCost:
    """Side-by-side modal vs nodal multiplication counts for one update."""
    return UpdateCost(
        modal=modal_update_multiplications(kernels),
        nodal=nodal_update_multiplications(
            kernels.num_basis, kernels.cdim, kernels.vdim, kernels.poly_order
        ),
    )
