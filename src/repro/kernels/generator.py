"""CAS-driven generation of DG volume, surface, and moment kernels.

This module performs the role of the Maxima scripts in Gkeyll: it evaluates
every weak-form integral *analytically* (exact rational arithmetic via
:mod:`repro.cas`), detects exact zeros, and packages the surviving entries
into sparse :class:`~repro.kernels.termset.TermSet` kernels.  No quadrature
is performed and no mass matrix is ever built: the modal orthonormal basis
makes the mass matrix the identity.

The phase-space flux in direction ``dim`` is described by a
:class:`FluxSpec`: a sum of terms, each a product of a *runtime symbol*
(cell size, cell-center velocity, modal field coefficient, ...), an exact
polynomial in the reference coordinates, and a float scale (normalization of
the field basis function, signs from the cross product).  Because the Vlasov
flux :math:`\\alpha = (v, (q/m)(E + v \\times B))` is polynomial in phase
space, this description is exact and the resulting scheme is alias-free.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Sequence, Tuple

from ..basis.legendre import legendre_value_at_one
from ..basis.modal import ModalBasis
from ..cas.integrate import legendre_product_integral_1d
from ..cas.poly import Poly
from .termset import Symbol, TermSet

__all__ = [
    "FluxTerm",
    "FluxSpec",
    "generate_volume_termset",
    "generate_surface_termsets",
    "generate_moment_termset",
    "generate_multiply_termset",
]


@dataclass(frozen=True)
class FluxTerm:
    """One additive contribution ``scale * prod(aux[sym]) * poly(xi)``."""

    sym: Symbol
    poly: Poly
    scale: float = 1.0


@dataclass(frozen=True)
class FluxSpec:
    """The phase-space flux component along phase dimension ``dim``."""

    dim: int
    terms: Tuple[FluxTerm, ...]


def _pair_integral(
    alpha_m: Tuple[int, ...],
    alpha_l: Tuple[int, ...],
    deriv_dim: int,
    q_expo: Tuple[int, ...],
) -> Fraction:
    """Exact ``int prod_k xi_k^{r_k} P_{a_m,k} D^{[k==deriv]} P_{a_l,k}``."""
    val = Fraction(1)
    for k, (am, al) in enumerate(zip(alpha_m, alpha_l)):
        fac = legendre_product_integral_1d(
            (am, al), (False, k == deriv_dim), q_expo[k]
        )
        if fac == 0:
            return Fraction(0)
        val *= fac
    return val


def generate_volume_termset(basis: ModalBasis, flux: FluxSpec) -> TermSet:
    """Volume kernel for one flux direction.

    Produces the exact contraction
    ``out[l] += rdx_dim * sum_s aux_s * sum_m K_s[l, m] f[m]`` with
    ``K_s[l, m] = int Q_s w_m (d w_l / d xi_dim) dxi``.
    """
    np_ = basis.num_basis
    d = flux.dim
    entries: Dict[Symbol, List[Tuple[int, int, float]]] = {}
    norms = [basis.norm(i) for i in range(np_)]
    rdx = f"rdx{d}"
    for term in flux.terms:
        sym = (rdx,) + term.sym
        bucket = entries.setdefault(sym, [])
        monos = list(term.poly.coeffs.items())
        for l in range(np_):
            if basis.indices[l][d] == 0:
                continue  # derivative of a constant mode vanishes
            al = basis.indices[l]
            for m in range(np_):
                am = basis.indices[m]
                total = Fraction(0)
                for expo, c in monos:
                    total += c * _pair_integral(am, al, d, expo)
                if total != 0:
                    bucket.append((l, m, float(total) * norms[l] * norms[m] * term.scale))
    return TermSet(np_, np_, entries)


def generate_surface_termsets(
    basis: ModalBasis, flux: FluxSpec
) -> Dict[Tuple[str, str], TermSet]:
    """Surface kernels for the face between a left and a right cell.

    Returns four :class:`TermSet` objects keyed by
    ``(test_side, state_side)`` with sides in ``{"L", "R"}``.  The sign
    convention folds the outward normals in: accumulating

    ``out_L += rdx * sum_s weight_s * K[("L", s)] f_s`` and
    ``out_R += rdx * sum_s weight_s * K[("R", s)] f_s``

    with the runtime choosing upwind/central weights reproduces the weak-form
    surface integral exactly.  The flux polynomial is restricted to the face
    by substituting ``xi_dim = +-1`` on the *state* side.
    """
    np_ = basis.num_basis
    d = flux.dim
    norms = [basis.norm(i) for i in range(np_)]
    rdx = f"rdx{d}"
    out: Dict[Tuple[str, str], TermSet] = {}
    for test_side, test_sign, global_sign in (("L", 1, -1.0), ("R", -1, 1.0)):
        for state_side, state_sign in (("L", 1), ("R", -1)):
            entries: Dict[Symbol, List[Tuple[int, int, float]]] = {}
            for term in flux.terms:
                sym = (rdx,) + term.sym
                bucket = entries.setdefault(sym, [])
                monos = list(term.poly.coeffs.items())
                for l in range(np_):
                    al = basis.indices[l]
                    pl = legendre_value_at_one(al[d], test_sign)
                    for m in range(np_):
                        am = basis.indices[m]
                        pm = legendre_value_at_one(am[d], state_sign)
                        total = Fraction(0)
                        for expo, c in monos:
                            # xi_dim factor of the flux polynomial at the face
                            face_fac = c * (state_sign ** expo[d])
                            val = Fraction(1)
                            for k in range(basis.ndim):
                                if k == d:
                                    continue
                                fac = legendre_product_integral_1d(
                                    (am[k], al[k]), (False, False), expo[k]
                                )
                                if fac == 0:
                                    val = Fraction(0)
                                    break
                                val *= fac
                            total += face_fac * val
                        if total != 0:
                            bucket.append(
                                (
                                    l,
                                    m,
                                    float(total)
                                    * pl
                                    * pm
                                    * norms[l]
                                    * norms[m]
                                    * term.scale
                                    * global_sign,
                                )
                            )
            out[(test_side, state_side)] = TermSet(np_, np_, entries)
    return out


def generate_moment_termset(
    phase_basis: ModalBasis,
    cfg_basis: ModalBasis,
    cdim: int,
    weight_terms: Sequence[FluxTerm],
) -> TermSet:
    """Velocity-moment kernel mapping phase coefficients to configuration
    coefficients.

    For a moment weight ``g(v) = sum_s aux_s * Q_s(xi_v)`` (e.g. 1, ``v_d``,
    ``|v|^2`` expressed in cell-local form), the kernel computes the exact
    reference-cell integral

    ``W_s[k, m] = int phi_k(xi_cfg) Q_s(xi) w_m(xi) dxi``

    so that the physical moment is
    ``M_k(cfg cell) = sum_{v cells} vjac * sum_s aux_s (W_s f)[k]`` with
    ``vjac = prod_j dv_j / 2``.
    """
    np_ = phase_basis.num_basis
    npc = cfg_basis.num_basis
    pdim = phase_basis.ndim
    norms_p = [phase_basis.norm(i) for i in range(np_)]
    norms_c = [cfg_basis.norm(i) for i in range(npc)]
    entries: Dict[Symbol, List[Tuple[int, int, float]]] = {}
    for term in weight_terms:
        sym = ("vjac",) + term.sym
        bucket = entries.setdefault(sym, [])
        monos = list(term.poly.coeffs.items())
        for k in range(npc):
            ak = cfg_basis.indices[k]
            for m in range(np_):
                am = phase_basis.indices[m]
                total = Fraction(0)
                for expo, c in monos:
                    val = Fraction(1)
                    for j in range(pdim):
                        if j < cdim:
                            fac = legendre_product_integral_1d(
                                (am[j], ak[j]), (False, False), expo[j]
                            )
                        else:
                            fac = legendre_product_integral_1d(
                                (am[j],), (False,), expo[j]
                            )
                        if fac == 0:
                            val = Fraction(0)
                            break
                        val *= fac
                    total += c * val
                if total != 0:
                    bucket.append((k, m, float(total) * norms_c[k] * norms_p[m] * term.scale))
    return TermSet(npc, np_, entries)


def generate_multiply_termset(
    basis: ModalBasis, multiplier_terms: Sequence[FluxTerm]
) -> TermSet:
    """Weak (exactly projected) multiplication kernel.

    Computes the modal coefficients of the L2 projection of
    ``(sum_s aux_s Q_s(xi)) * f`` onto the basis:
    ``out[l] += sum_s aux_s sum_m (int Q_s w_m w_l) f[m]``.
    Used e.g. to multiply by a configuration-space thermal-speed field in the
    LBO collision operator without introducing aliasing.
    """
    np_ = basis.num_basis
    norms = [basis.norm(i) for i in range(np_)]
    entries: Dict[Symbol, List[Tuple[int, int, float]]] = {}
    for term in multiplier_terms:
        bucket = entries.setdefault(term.sym, [])
        monos = list(term.poly.coeffs.items())
        for l in range(np_):
            al = basis.indices[l]
            for m in range(np_):
                am = basis.indices[m]
                total = Fraction(0)
                for expo, c in monos:
                    total += c * _pair_integral(am, al, -1, expo)
                if total != 0:
                    bucket.append((l, m, float(total) * norms[l] * norms[m] * term.scale))
    return TermSet(np_, np_, entries)
