"""Flux specifications and kernel bundles for the Vlasov equation.

Phase space has ``cdim`` configuration dimensions (phase dims
``0 .. cdim-1``) followed by ``vdim`` velocity dimensions (phase dims
``cdim .. cdim+vdim-1``); velocity dimension ``j`` pairs with Cartesian
component ``j`` of (vx, vy, vz).

The collisionless phase-space flux is
:math:`\\alpha = (v, (q/m)(\\mathbf{E} + \\mathbf{v} \\times \\mathbf{B}))`:

* streaming along configuration dim ``j``:
  ``v_j = w_j + (dv_j/2) xi_j`` with ``w``/``dv`` the velocity cell center
  and width — runtime symbols ``w{dj}`` / ``half_dxv{dj}``;
* acceleration along velocity dim ``j``: the fields enter through their
  modal configuration-space coefficients (symbols ``E{j}_{k}``/``B{j}_{k}``),
  multiplied by the *exact* polynomial of the corresponding configuration
  basis function, so the nonlinear field–particle coupling is integrated
  without aliasing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from ..basis.legendre import legendre_coefficients
from ..basis.modal import ModalBasis
from ..cas.poly import Poly
from .generator import (
    FluxSpec,
    FluxTerm,
    generate_moment_termset,
    generate_surface_termsets,
    generate_volume_termset,
)
from .termset import TermSet

__all__ = [
    "streaming_flux",
    "acceleration_flux",
    "VlasovKernels",
    "build_vlasov_kernels",
]

# (v x B) components in terms of velocity components and B components:
# (v x B)_i = sum over (j, k, sign): v_j * B_k * sign
_CROSS = {
    0: ((1, 2, +1.0), (2, 1, -1.0)),  # vy*Bz - vz*By
    1: ((2, 0, +1.0), (0, 2, -1.0)),  # vz*Bx - vx*Bz
    2: ((0, 1, +1.0), (1, 0, -1.0)),  # vx*By - vy*Bx
}


def _cfg_poly_unnormalized(phase_ndim: int, cfg_alpha: Tuple[int, ...]) -> Poly:
    """Configuration basis function (unnormalized Legendre product) lifted to
    the full phase-space variable set."""
    poly = Poly.one(phase_ndim)
    for var, a in enumerate(cfg_alpha):
        if a:
            poly = poly * Poly.from_univariate(phase_ndim, var, legendre_coefficients(a))
    return poly


def streaming_flux(cdim: int, vdim: int, j: int) -> FluxSpec:
    """Flux ``alpha = v_j`` along configuration dimension ``j``."""
    if not 0 <= j < cdim:
        raise ValueError("streaming direction out of range")
    pdim = cdim + vdim
    dv = cdim + j  # paired velocity phase-dimension
    if j >= vdim:
        raise ValueError(
            f"configuration dim {j} has no paired velocity dim (vdim={vdim})"
        )
    terms = (
        FluxTerm(sym=(f"w{dv}",), poly=Poly.one(pdim)),
        FluxTerm(sym=(f"half_dxv{dv}",), poly=Poly.variable(pdim, dv)),
    )
    return FluxSpec(dim=j, terms=terms)


def acceleration_flux(cfg_basis: ModalBasis, cdim: int, vdim: int, j: int) -> FluxSpec:
    """Flux ``alpha = (q/m)(E_j + (v x B)_j)`` along velocity dimension ``j``."""
    if not 0 <= j < vdim:
        raise ValueError("acceleration direction out of range")
    pdim = cdim + vdim
    dim = cdim + j
    terms: List[FluxTerm] = []
    for k in range(cfg_basis.num_basis):
        phi = _cfg_poly_unnormalized(pdim, cfg_basis.indices[k])
        nk = cfg_basis.norm(k)
        terms.append(FluxTerm(sym=("qm", f"E{j}_{k}"), poly=phi, scale=nk))
        for vj, bk, sign in _CROSS[j]:
            if vj >= vdim:
                continue  # that velocity component is not evolved
            dvj = cdim + vj
            terms.append(
                FluxTerm(sym=("qm", f"w{dvj}", f"B{bk}_{k}"), poly=phi, scale=sign * nk)
            )
            terms.append(
                FluxTerm(
                    sym=("qm", f"half_dxv{dvj}", f"B{bk}_{k}"),
                    poly=phi * Poly.variable(pdim, dvj),
                    scale=sign * nk,
                )
            )
    return FluxSpec(dim=dim, terms=tuple(terms))


def moment_weight_terms(cdim: int, vdim: int, moment: str) -> Tuple[FluxTerm, ...]:
    """Cell-local expansion of the moment weights 1, v_d, |v|^2.

    ``moment`` is ``"M0"``, ``"M1x"``/``"M1y"``/``"M1z"`` or ``"M2"``.
    The weight is expressed with runtime symbols for the velocity cell
    center/width: ``v_d = w + (dv/2) xi``,
    ``v_d^2 = w^2 + w dv xi + (dv/2)^2 xi^2``.
    """
    pdim = cdim + vdim
    if moment == "M0":
        return (FluxTerm(sym=(), poly=Poly.one(pdim)),)
    if moment.startswith("M1"):
        d = "xyz".index(moment[2])
        if d >= vdim:
            raise ValueError(f"moment {moment} undefined for vdim={vdim}")
        dv = cdim + d
        return (
            FluxTerm(sym=(f"w{dv}",), poly=Poly.one(pdim)),
            FluxTerm(sym=(f"half_dxv{dv}",), poly=Poly.variable(pdim, dv)),
        )
    if moment == "M2":
        terms: List[FluxTerm] = []
        for d in range(vdim):
            dv = cdim + d
            xi = Poly.variable(pdim, dv)
            terms.append(FluxTerm(sym=(f"w{dv}", f"w{dv}"), poly=Poly.one(pdim)))
            terms.append(FluxTerm(sym=(f"w{dv}", f"half_dxv{dv}"), poly=xi, scale=2.0))
            terms.append(
                FluxTerm(sym=(f"half_dxv{dv}", f"half_dxv{dv}"), poly=xi * xi)
            )
        return tuple(terms)
    raise ValueError(f"unknown moment {moment!r}")


@dataclass
class VlasovKernels:
    """The complete generated kernel bundle for one (cdim, vdim, p, family)."""

    cdim: int
    vdim: int
    poly_order: int
    family: str
    phase_basis: ModalBasis
    cfg_basis: ModalBasis
    vol_stream: List[TermSet]                      # per configuration dim
    vol_accel: List[TermSet]                       # per velocity dim
    surf_stream: List[Dict[Tuple[str, str], TermSet]]
    surf_accel: List[Dict[Tuple[str, str], TermSet]]
    moments: Dict[str, TermSet]

    @property
    def num_basis(self) -> int:
        return self.phase_basis.num_basis

    def all_update_termsets(self) -> List[TermSet]:
        """Every termset participating in a forward-Euler update (for
        FLOP/nnz accounting)."""
        out = list(self.vol_stream) + list(self.vol_accel)
        for d in self.surf_stream + self.surf_accel:
            out.extend(d.values())
        return out


def build_vlasov_kernels(
    cdim: int, vdim: int, poly_order: int, family: str = "serendipity"
) -> VlasovKernels:
    """Generate (or fetch from cache via :mod:`repro.kernels.registry`) the
    full Vlasov kernel bundle."""
    pdim = cdim + vdim
    phase_basis = ModalBasis(pdim, poly_order, family)
    cfg_basis = ModalBasis(cdim, poly_order, family)
    vol_stream = []
    surf_stream = []
    for j in range(cdim):
        flux = streaming_flux(cdim, vdim, j)
        vol_stream.append(generate_volume_termset(phase_basis, flux))
        surf_stream.append(generate_surface_termsets(phase_basis, flux))
    vol_accel = []
    surf_accel = []
    for j in range(vdim):
        flux = acceleration_flux(cfg_basis, cdim, vdim, j)
        vol_accel.append(generate_volume_termset(phase_basis, flux))
        surf_accel.append(generate_surface_termsets(phase_basis, flux))
    moments = {}
    names = ["M0", "M2"] + [f"M1{'xyz'[d]}" for d in range(vdim)]
    for name in names:
        moments[name] = generate_moment_termset(
            phase_basis, cfg_basis, cdim, moment_weight_terms(cdim, vdim, name)
        )
    return VlasovKernels(
        cdim=cdim,
        vdim=vdim,
        poly_order=poly_order,
        family=family,
        phase_basis=phase_basis,
        cfg_basis=cfg_basis,
        vol_stream=vol_stream,
        vol_accel=vol_accel,
        surf_stream=surf_stream,
        surf_accel=surf_accel,
        moments=moments,
    )
