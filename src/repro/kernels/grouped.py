"""Grouped (batched-BLAS) evaluation of generated kernels.

The acceleration kernels couple ~``3 Npc`` runtime symbols (modal field
coefficients times velocity factors) to sparse tensors.  Applying them
term-by-term is exact but, in NumPy, dominated by per-term elementwise
products.  A :class:`GroupedOperator` evaluates the *same* generated
coefficients in a mathematically identical grouped form by compiling them
into :class:`~repro.engine.plan.ExecutionPlan` objects:

1. split every symbol product into (scalar) x (configuration-varying field
   coefficient) x (velocity-varying factor);
2. for each distinct velocity factor, combine all configuration-varying
   terms into one dense ``(Npc_cells, Np, Np)`` operator
   ``A[c] = sum_s val_s[c] K_s`` — a single small GEMM per application since
   the field coefficients are constant within a configuration cell — and
   apply it as one batched matmul over configuration cells; terms with no
   configuration dependence keep their exact sparsity and are applied as
   in-place sparse products.

States are cell-major ``(*cfg_cells, N, *vel_cells)``
(:mod:`repro.engine.layout`): the batched products consume the contiguous
per-configuration-cell blocks directly, with no transpose pass.

The result is bitwise-reassociated but exactly the same contraction
:math:`\\sum C_{lmn} \\alpha_n f_m`; the solver-level exactness tests cover
this path.  Per-cell work is unchanged (it is the same nonzero data densely
padded), so the Fig. 2 scaling claims are measured on the sparse path; this
path exists to keep the *constant factor* honest vs the BLAS-backed nodal
baseline in Table I.

Plans are cached per ``(cell shape, aux signature)`` and **invalidated when
the signature changes** — an aux dict whose arrays change layout between
calls (the historical stale-plan hazard) now transparently compiles a fresh
plan instead of silently producing garbage.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple, Union

import numpy as np

from ..engine.backend import ArrayBackend, get_backend
from ..engine.compile import compile_plan
from ..engine.plan import ExecutionPlan, Signature, aux_signature
from ..engine.pool import ScratchPool
from .termset import AuxValue, TermSet

__all__ = ["GroupedOperator"]


class GroupedOperator:
    """Plan-cached batched evaluation of a :class:`TermSet`.

    Parameters
    ----------
    termset:
        The generated kernel.
    cdim, vdim:
        Phase-space split; aux arrays varying on the first ``cdim`` cell
        axes are treated as configuration fields, on the last ``vdim`` axes
        as velocity factors.  Symbols varying on both fall back to the
        sparse path.
    backend:
        An :class:`~repro.engine.backend.ArrayBackend` instance or name
        (default ``"numpy"``).
    pool:
        Optional shared :class:`~repro.engine.pool.ScratchPool`; solvers
        pass one pool to all their operators so scratch is allocated once.
    """

    def __init__(
        self,
        termset: TermSet,
        cdim: int,
        vdim: int,
        backend: Union[str, ArrayBackend, None] = None,
        pool: Optional[ScratchPool] = None,
    ):
        self.termset = termset
        self.cdim = int(cdim)
        self.vdim = int(vdim)
        self.nout = termset.nout
        self.nin = termset.nin
        self.backend = get_backend(backend)
        self.pool = pool if pool is not None else ScratchPool()
        self._names = sorted(
            {n for sym in termset.entries_by_symbol() for n in sym}
        )
        self._plans: Dict[Tuple[Tuple[int, ...], Signature], ExecutionPlan] = {}
        # identity fast path: when the exact same aux value objects arrive
        # again (in-place stepping reuses them every stage), skip the
        # signature computation; the values are held by reference so object
        # identity cannot be recycled
        self._fast_vals = None
        self._fast_shape = None
        self._fast_plan: Optional[ExecutionPlan] = None
        # bound ``apply_trusted`` of the fast plan (fused plans only): on an
        # identity hit the plan's own aux guard would re-scan the very same
        # objects, so :meth:`apply` skips it
        self._fast_trusted = None

    # ------------------------------------------------------------------ #
    def plan_for(
        self, aux: Dict[str, AuxValue], cell_shape: Tuple[int, ...]
    ) -> ExecutionPlan:
        """The compiled plan for this aux layout and cell shape (compiling
        on first use; a changed aux signature compiles a fresh plan).

        Compilation routes through :func:`repro.engine.compile.compile_plan`,
        so the returned object is a :class:`~repro.engine.fused.FusedPlan`
        or a bare :class:`ExecutionPlan` — and may be hydrated from the
        content-addressed disk cache rather than compiled — per the active
        compiler configuration.  Either way it satisfies the plan protocol
        and is cached here under the same ``(cell shape, signature)`` key.
        """
        sig = aux_signature(self._names, aux, self.cdim, self.vdim)
        key = (tuple(cell_shape), sig)
        plan = self._plans.get(key)
        if plan is None:
            plan = compile_plan(
                self.termset,
                self.cdim,
                self.vdim,
                aux,
                cell_shape,
                backend=self.backend,
                pool=self.pool,
            )
            self._plans[key] = plan
        return plan

    @property
    def num_plans(self) -> int:
        return len(self._plans)

    # ------------------------------------------------------------------ #
    def cell_shape_of(self, fin: np.ndarray) -> Tuple[int, ...]:
        """The ``(*cfg_cells, *vel_cells)`` axes of a cell-major state
        (basis axis at position ``cdim`` removed)."""
        return fin.shape[: self.cdim] + fin.shape[self.cdim + 1 :]

    def apply(
        self,
        fin: np.ndarray,
        aux: Dict[str, AuxValue],
        out: np.ndarray,
        accumulate: bool = True,
    ) -> np.ndarray:
        """Accumulate the kernel action on cell-major state.

        ``fin``/``out`` have shape ``(*cfg_cells, N, *vel_cells)``; with
        ``accumulate=False`` the prior contents of ``out`` are discarded.
        """
        cell_shape = self.cell_shape_of(fin)
        try:
            vals = [aux[n] for n in self._names]
        except KeyError:
            vals = None
        fast = self._fast_vals
        if (
            vals is not None
            and fast is not None
            and cell_shape == self._fast_shape
            and all(a is b for a, b in zip(vals, fast))
        ):
            # identity hit: the plan's aux binding is known-current, so a
            # fused plan can skip its own (redundant) guard scan
            trusted = self._fast_trusted
            if trusted is not None:
                return trusted(fin, aux, out, accumulate)
            return self._fast_plan.apply(fin, aux, out, accumulate=accumulate)
        plan = self._remember(vals, cell_shape, aux)
        return plan.apply(fin, aux, out, accumulate=accumulate)

    def plan_fast(
        self, aux: Dict[str, AuxValue], cell_shape: Tuple[int, ...]
    ) -> ExecutionPlan:
        """Like :meth:`plan_for`, but returning the cached plan through the
        value-identity fast path (no signature recomputation when the same
        aux objects arrive again)."""
        try:
            vals = [aux[n] for n in self._names]
        except KeyError:
            vals = None
        fast = self._fast_vals
        if (
            vals is not None
            and fast is not None
            and cell_shape == self._fast_shape
            and all(a is b for a, b in zip(vals, fast))
        ):
            return self._fast_plan
        return self._remember(vals, cell_shape, aux)

    def _remember(self, vals, cell_shape, aux) -> ExecutionPlan:
        plan = self.plan_for(aux, cell_shape)
        self._fast_vals = vals
        self._fast_shape = cell_shape
        self._fast_plan = plan
        self._fast_trusted = getattr(plan, "apply_trusted", None)
        return plan
