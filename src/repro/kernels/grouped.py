"""Grouped (batched-BLAS) evaluation of field-coupled kernels.

The acceleration kernels couple ~`3 Npc` runtime symbols (modal field
coefficients times velocity factors) to sparse tensors.  Applying them
term-by-term is exact but, in NumPy, dominated by per-term elementwise
products.  This module evaluates the *same* generated coefficients in a
mathematically identical grouped form:

1. split every symbol product into (scalar) x (configuration-varying field
   coefficient) x (velocity-varying factor);
2. for each distinct velocity factor, combine all of its terms into one
   dense ``(Npc_cells, Np, Np)`` operator ``A[c] = sum_s val_s[c] K_s`` —
   a single small GEMM per application since the field coefficients are
   constant within a configuration cell;
3. apply ``out[:, c, :] += A[c] @ (velfac * f)[:, c, :]`` as one batched
   matmul over configuration cells.

The result is bitwise-reassociated but exactly the same contraction
:math:`\\sum C_{lmn} \\alpha_n f_m`; the solver-level exactness tests cover
this path.  Per-cell work is unchanged (it is the same nonzero data densely
padded), so the Fig. 2 scaling claims are measured on the sparse path; this
path exists to keep the *constant factor* honest vs the BLAS-backed nodal
baseline in Table I.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from .termset import AuxValue, Symbol, TermSet

__all__ = ["GroupedOperator"]


class GroupedOperator:
    """Batched-dense evaluation of a :class:`TermSet` whose symbols factor
    into configuration-varying and velocity-varying parts.

    Parameters
    ----------
    termset:
        The generated kernel.
    cdim, vdim:
        Phase-space split; aux arrays varying on the first ``cdim`` cell
        axes are treated as configuration fields, on the last ``vdim`` axes
        as velocity factors.  Symbols varying on both fall back to the
        sparse path.
    """

    def __init__(self, termset: TermSet, cdim: int, vdim: int):
        self.termset = termset
        self.cdim = cdim
        self.vdim = vdim
        self.nout = termset.nout
        self.nin = termset.nin
        self._plan = None  # built lazily from the first aux dict

    # ------------------------------------------------------------------ #
    def _classify(self, aux: Dict[str, AuxValue]):
        """Split each term's symbol tuple by where its factors vary."""
        pdim = self.cdim + self.vdim
        groups: Dict[Symbol, List[Tuple[float, Optional[str], np.ndarray]]] = {}
        fallback: Dict[Symbol, list] = {}
        entries = self.termset.entries_by_symbol()
        for sym, triples in entries.items():
            scalar_names: List[str] = []
            cfg_names: List[str] = []
            vel_names: List[str] = []
            ok = True
            for name in sym:
                val = aux[name]
                if np.isscalar(val) or (isinstance(val, np.ndarray) and val.ndim == 0):
                    scalar_names.append(name)
                    continue
                arr = np.asarray(val)
                if arr.ndim != pdim:
                    ok = False
                    break
                varies_cfg = any(s > 1 for s in arr.shape[: self.cdim])
                varies_vel = any(s > 1 for s in arr.shape[self.cdim:])
                if varies_cfg and varies_vel:
                    ok = False
                    break
                if varies_cfg:
                    cfg_names.append(name)
                elif varies_vel:
                    vel_names.append(name)
                else:
                    scalar_names.append(name)
            if not ok or len(cfg_names) > 1:
                fallback[sym] = triples
                continue
            dense = np.zeros((self.nout, self.nin))
            for l, m, c in triples:
                dense[l, m] = c
            key = tuple(sorted(vel_names))
            groups.setdefault(key, []).append(
                (scalar_names, cfg_names[0] if cfg_names else None, dense)
            )
        plan = []
        for vel_key, items in groups.items():
            mats = np.stack([it[2] for it in items])  # (nitems, Np, Np)
            plan.append((vel_key, items, mats.reshape(len(items), -1)))
        fallback_ts = (
            TermSet(self.nout, self.nin, fallback) if fallback else None
        )
        self._plan = (plan, fallback_ts)

    # ------------------------------------------------------------------ #
    def apply(
        self,
        fin: np.ndarray,
        aux: Dict[str, AuxValue],
        out: np.ndarray,
    ) -> np.ndarray:
        """Accumulate the kernel action (same contract as ``TermSet.apply``).

        ``fin``/``out`` have shape ``(N, *cfg_cells, *vel_cells)``.
        """
        if self._plan is None:
            self._classify(aux)
        plan, fallback = self._plan
        cfg_shape = fin.shape[1: 1 + self.cdim]
        vel_shape = fin.shape[1 + self.cdim:]
        ncfg = int(np.prod(cfg_shape)) if cfg_shape else 1
        nvel = int(np.prod(vel_shape)) if vel_shape else 1

        f3 = fin.reshape(self.nin, ncfg, nvel)
        out3 = out.reshape(self.nout, ncfg, nvel)
        for vel_key, items, mats_flat in plan:
            if vel_key:
                velval = 1.0
                for name in vel_key:
                    velval = velval * aux[name]
                velval = np.broadcast_to(
                    velval, (1,) + cfg_shape + vel_shape
                ).reshape(1, ncfg, nvel)
                g = f3 * velval
            else:
                g = f3
            # coefficient per item per config cell
            coef = np.empty((len(items), ncfg))
            for i, (scalar_names, cfg_name, _dense) in enumerate(items):
                c = 1.0
                for name in scalar_names:
                    c = c * float(aux[name])
                if cfg_name is None:
                    coef[i] = c
                else:
                    arr = np.broadcast_to(
                        aux[cfg_name], cfg_shape + (1,) * self.vdim
                    ).reshape(ncfg)
                    coef[i] = c * arr
            a = (coef.T @ mats_flat).reshape(ncfg, self.nout, self.nin)
            out3 += np.matmul(a, g.transpose(1, 0, 2)).transpose(1, 0, 2)
        if fallback is not None:
            fallback.apply(fin, aux, out)
        return out
