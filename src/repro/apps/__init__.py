"""High-level simulation "Apps" (the Gkeyll App-system analogue)."""

from .vlasov_maxwell import FieldSpec, Species, VlasovMaxwellApp

__all__ = ["VlasovMaxwellApp", "Species", "FieldSpec"]
