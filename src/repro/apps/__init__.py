"""Deprecated high-level "Apps" — thin shims over :mod:`repro.systems`.

The Gkeyll App-system analogue now lives in :mod:`repro.systems`: compose a
:class:`~repro.systems.system.System` from species blocks and a field
closure instead of instantiating these classes.  The shims stay importable
(and bit-identical in behavior) but emit :class:`DeprecationWarning`.
"""

from .vlasov_maxwell import FieldSpec, Species, VlasovMaxwellApp

__all__ = ["VlasovMaxwellApp", "Species", "FieldSpec"]
