"""Deprecated: the hand-rolled electrostatic Vlasov–Poisson "App".

Replaced by the composable :mod:`repro.systems` API: a
:class:`~repro.systems.system.System` with a
:class:`~repro.systems.blocks.PoissonBlock` functional field closure.
:class:`VlasovPoissonApp` survives as a thin shim building exactly that
system (bit-identical results) while emitting a
:class:`DeprecationWarning`.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

from ..grid.cartesian import Grid
from ..systems.blocks import ExternalField, PoissonBlock, Species
from ..systems.system import System

__all__ = ["VlasovPoissonApp"]


class VlasovPoissonApp(System):
    """Deprecated alias for a Poisson-closed :class:`repro.systems.System`.

    Compose the system directly instead::

        from repro.systems import System, PoissonBlock

        system = System(conf_grid, species,
                        field=PoissonBlock(epsilon0=1.0, neutralize=True))
    """

    def __init__(
        self,
        conf_grid: Grid,
        species: Sequence[Species],
        poly_order: int = 2,
        family: str = "serendipity",
        cfl: float = 0.9,
        stepper: str = "ssp-rk3",
        epsilon0: float = 1.0,
        neutralize: bool = True,
        ic_quad_order: Optional[int] = None,
        backend: str = "numpy",
        external: Optional[ExternalField] = None,
    ):
        warnings.warn(
            "VlasovPoissonApp is deprecated; compose a repro.systems.System "
            "with a PoissonBlock field closure instead",
            DeprecationWarning,
            stacklevel=2,
        )
        if conf_grid.ndim != 1:
            raise ValueError("VlasovPoissonApp supports 1-D configuration space")
        System.__init__(
            self,
            conf_grid,
            species,
            field=PoissonBlock(epsilon0=epsilon0, neutralize=neutralize),
            poly_order=poly_order,
            family=family,
            cfl=cfl,
            scheme="modal",
            stepper=stepper,
            ic_quad_order=ic_quad_order,
            backend=backend,
            external=external,
            name="poisson",
        )
