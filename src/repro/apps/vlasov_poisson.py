"""Electrostatic Vlasov–Poisson App (1-D configuration space).

The paper's framework also targets Poisson-coupled kinetic systems
(self-gravitating systems, electrostatic plasmas).  This App closes the
kinetic equation with the exact 1-D DG electrostatic solve of
:class:`~repro.fields.poisson.Poisson1D` instead of evolving Maxwell's
equations: the field is a *functional* of the instantaneous charge density,
so classic benchmarks (Landau damping, electrostatic two-stream) run without
resolving light-speed CFL limits.
"""

from __future__ import annotations

import time
from typing import Dict, Optional, Sequence

import numpy as np

from ..basis.modal import ModalBasis
from ..fields.poisson import Poisson1D
from ..grid.cartesian import Grid
from ..grid.phase import PhaseGrid
from ..moments.calc import MomentCalculator
from ..projection import project_phase_function
from ..timestepping.ssprk import get_stepper
from ..vlasov.modal_solver import VlasovModalSolver
from .vlasov_maxwell import ExternalField, Species

__all__ = ["VlasovPoissonApp"]


class VlasovPoissonApp:
    """Multi-species electrostatic kinetic simulation in 1X geometry.

    Parameters mirror :class:`~repro.apps.vlasov_maxwell.VlasovMaxwellApp`;
    ``neutralize=True`` adds the uniform background charge that makes the
    periodic domain neutral (e.g. immobile ions for electron-only runs).
    """

    def __init__(
        self,
        conf_grid: Grid,
        species: Sequence[Species],
        poly_order: int = 2,
        family: str = "serendipity",
        cfl: float = 0.9,
        stepper: str = "ssp-rk3",
        epsilon0: float = 1.0,
        neutralize: bool = True,
        ic_quad_order: Optional[int] = None,
        backend: str = "numpy",
        external: Optional[ExternalField] = None,
    ):
        if conf_grid.ndim != 1:
            raise ValueError("VlasovPoissonApp supports 1-D configuration space")
        self.conf_grid = conf_grid
        self.species = list(species)
        self.poly_order = int(poly_order)
        self.family = family
        self.cfl = float(cfl)
        self.neutralize = neutralize
        self.backend = backend
        self.stepper = get_stepper(stepper)
        self.time = 0.0
        self.step_count = 0
        self._em_buf: Optional[np.ndarray] = None

        self.cfg_basis = ModalBasis(1, poly_order, family)
        self.poisson = Poisson1D(conf_grid, self.cfg_basis, epsilon0)
        self.external = external
        self._ext_coeffs: Optional[np.ndarray] = None
        if external is not None:
            from ..projection import project_conf_function

            coeffs = np.zeros(conf_grid.cells + (8, self.cfg_basis.num_basis))
            from ..fields.maxwell import COMPONENT_NAMES

            for name, fn in external.profiles.items():
                coeffs[..., COMPONENT_NAMES.index(name), :] = project_conf_function(
                    fn, conf_grid, self.cfg_basis
                )
            self._ext_coeffs = coeffs
        self.phase_grids: Dict[str, PhaseGrid] = {}
        self.solvers: Dict[str, VlasovModalSolver] = {}
        self.moments: Dict[str, MomentCalculator] = {}
        self.f: Dict[str, np.ndarray] = {}
        for sp in self.species:
            pg = PhaseGrid(conf_grid, sp.velocity_grid)
            self.phase_grids[sp.name] = pg
            solver = VlasovModalSolver(
                pg, poly_order, family, sp.charge, sp.mass, backend=backend
            )
            self.solvers[sp.name] = solver
            self.moments[sp.name] = MomentCalculator(pg, solver.kernels, pool=solver.pool)
            basis = ModalBasis(pg.pdim, poly_order, family)
            self.f[sp.name] = project_phase_function(sp.initial, pg, basis, ic_quad_order)

    # ------------------------------------------------------------------ #
    def charge_density(self, state: Dict[str, np.ndarray]) -> np.ndarray:
        rho = np.zeros(self.conf_grid.cells + (self.cfg_basis.num_basis,))
        for sp in self.species:
            rho += sp.charge * self.moments[sp.name].compute(
                "M0", state[f"f/{sp.name}"]
            )
        if self.neutralize:
            rho[..., 0] -= rho[..., 0].mean()
        return rho

    def electric_field(self, state: Dict[str, np.ndarray]) -> np.ndarray:
        """Full EM-state array (cell-major ``(nx, 8, Npc)``) with ``Ex``
        from the Poisson solve plus any external drive at the current step
        time (solver interface).

        The returned array is a persistent buffer refreshed on every call.
        """
        rho = self.charge_density(state)
        ex = self.poisson.solve(rho)
        if self._em_buf is None:
            self._em_buf = np.zeros(
                self.conf_grid.cells + (8, self.cfg_basis.num_basis)
            )
        if self.external is not None:
            np.multiply(
                self._ext_coeffs, self.external.envelope(self.time), out=self._em_buf
            )
            self._em_buf[..., 0, :] += ex
        else:
            self._em_buf[..., 0, :] = ex
        return self._em_buf

    def state(self) -> Dict[str, np.ndarray]:
        return {f"f/{sp.name}": self.f[sp.name] for sp in self.species}

    def set_state(self, state: Dict[str, np.ndarray]) -> None:
        for sp in self.species:
            self.f[sp.name] = state[f"f/{sp.name}"]

    def rhs(
        self,
        state: Dict[str, np.ndarray],
        out: Optional[Dict[str, np.ndarray]] = None,
    ) -> Dict[str, np.ndarray]:
        """Electrostatic RHS; ``out``, when given, is a donated buffer dict
        filled in place."""
        em = self.electric_field(state)
        if out is None:
            out = {k: np.empty_like(v) for k, v in state.items()}
        for sp in self.species:
            f = state[f"f/{sp.name}"]
            df = out[f"f/{sp.name}"]
            self.solvers[sp.name].rhs(f, em, out=df)
            if sp.collisions is not None:
                sp.collisions.rhs(f, self.moments[sp.name], out=df, accumulate=True)
        return out

    # ------------------------------------------------------------------ #
    def suggested_dt(self) -> float:
        em = self.electric_field(self.state())
        freq = 0.0
        for sp in self.species:
            freq = max(freq, self.solvers[sp.name].max_frequency(em))
            if sp.collisions is not None:
                freq = max(freq, sp.collisions.max_frequency())
        return self.cfl / freq

    def step(self, dt: Optional[float] = None) -> float:
        if dt is None:
            dt = self.suggested_dt()
        self.stepper.step_inplace(self.state(), self._rhs_into, dt)
        self.time += dt
        self.step_count += 1
        return dt

    def _rhs_into(self, state: Dict[str, np.ndarray], out: Dict[str, np.ndarray]) -> None:
        self.rhs(state, out=out)

    def run(self, t_end: float, diagnostics=None, max_steps: int = 10**9):
        start = time.perf_counter()
        steps = 0
        if diagnostics is not None:
            diagnostics(self)
        while self.time < t_end - 1e-12 and steps < max_steps:
            dt = min(self.suggested_dt(), t_end - self.time)
            self.step(dt)
            steps += 1
            if diagnostics is not None:
                diagnostics(self)
        wall = time.perf_counter() - start
        return {
            "steps": steps,
            "wall_time": wall,
            "wall_per_step": wall / max(steps, 1),
            "time": self.time,
        }

    # ------------------------------------------------------------------ #
    def field_energy(self) -> float:
        """Electrostatic energy ``(eps0/2) int E^2 dx``."""
        em = self.electric_field(self.state())
        jac = 0.5 * self.conf_grid.dx[0]
        return 0.5 * self.poisson.epsilon0 * float(np.sum(em[..., 0, :] ** 2)) * jac

    def particle_energy(self, name: str) -> float:
        sp = next(s for s in self.species if s.name == name)
        return self.moments[name].particle_energy(self.f[name], sp.mass)

    def total_energy(self) -> float:
        return self.field_energy() + sum(
            self.particle_energy(sp.name) for sp in self.species
        )

    def particle_number(self, name: str) -> float:
        return self.moments[name].number(self.f[name])

