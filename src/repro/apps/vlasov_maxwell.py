"""The Vlasov–Maxwell "App": Gkeyll-style composition of solvers.

A :class:`VlasovMaxwellApp` wires together, for an arbitrary number of
species, the modal (or baseline quadrature) Vlasov solver, the Maxwell
solver, the moment/current coupling, optional collision operators, and an
SSP-RK stepper — the same role Gkeyll's LuaJIT App system plays on top of
its generated C++ kernels.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence

import numpy as np

from ..basis.modal import ModalBasis
from ..fields.maxwell import MaxwellSolver
from ..grid.cartesian import Grid
from ..grid.phase import PhaseGrid
from ..moments.calc import MomentCalculator
from ..projection import project_phase_function
from ..timestepping.ssprk import get_stepper
from ..vlasov.modal_solver import VlasovModalSolver
from ..vlasov.quadrature_solver import VlasovQuadratureSolver

__all__ = ["Species", "FieldSpec", "ExternalField", "VlasovMaxwellApp"]


@dataclass
class Species:
    """One kinetic species.

    Parameters
    ----------
    name:
        Unique identifier.
    charge, mass:
        Normalized charge and mass.
    velocity_grid:
        Velocity-space grid (should not straddle v=0 within a cell).
    initial:
        Vectorized callable ``f0(x..., v...)`` for the initial condition.
    collisions:
        Optional collision operator with an
        ``rhs(f, moments, out) -> out`` interface (see
        :mod:`repro.collisions`).
    """

    name: str
    charge: float
    mass: float
    velocity_grid: Grid
    initial: Callable[..., np.ndarray]
    collisions: Optional[object] = None


@dataclass
class FieldSpec:
    """Electromagnetic field configuration.

    ``initial`` maps component names (``Ex`` ... ``psi``) to callables of the
    configuration coordinates; omitted components start at zero.  Set
    ``evolve=False`` for a static external field.
    """

    initial: Dict[str, Callable[..., np.ndarray]] = field(default_factory=dict)
    light_speed: float = 1.0
    epsilon0: float = 1.0
    flux: str = "central"
    chi_e: float = 0.0
    chi_m: float = 0.0
    evolve: bool = True


@dataclass
class ExternalField:
    """Prescribed, time-dependent external EM drive.

    The drive is separable: a static spatial profile per component
    (callables of the configuration coordinates, projected once at app
    construction) times the scalar envelope

    .. math:: g(t) = \\cos(\\omega t + \\varphi) \\cdot \\min(t/t_{ramp}, 1)

    (the ramp factor applies only when ``ramp > 0``).  The drive
    accelerates particles — it is added to the self-consistent field seen
    by the Vlasov solvers and by the CFL estimate — but it is *not*
    evolved and does not enter the Maxwell update or the field-energy
    diagnostics.  Within a time step the envelope is frozen at the step's
    start time (all RK stages see the same drive), keeping the stepper's
    stage structure field-agnostic.
    """

    profiles: Dict[str, Callable[..., np.ndarray]]
    omega: float = 0.0
    phase: float = 0.0
    ramp: float = 0.0

    def envelope(self, t: float) -> float:
        g = math.cos(self.omega * t + self.phase)
        if self.ramp > 0.0:
            g *= min(t / self.ramp, 1.0)
        return g


class VlasovMaxwellApp:
    """Multi-species Vlasov–Maxwell simulation driver.

    Parameters
    ----------
    conf_grid:
        Configuration-space grid (periodic).
    species:
        Kinetic species list.
    field:
        EM field specification (or ``None`` for free streaming).
    poly_order, family:
        DG basis selection.
    cfl:
        CFL number (fraction of the stability limit).
    scheme:
        ``"modal"`` (the paper's algorithm) or ``"quadrature"``
        (the alias-free nodal-style baseline of Table I).
    stepper:
        ``"ssp-rk3"`` (default), ``"ssp-rk2"`` or ``"forward-euler"``.
    """

    def __init__(
        self,
        conf_grid: Grid,
        species: Sequence[Species],
        field: Optional[FieldSpec] = None,
        poly_order: int = 2,
        family: str = "serendipity",
        cfl: float = 0.9,
        scheme: str = "modal",
        stepper: str = "ssp-rk3",
        velocity_flux: str = "central",
        ic_quad_order: Optional[int] = None,
        backend: str = "numpy",
        external: Optional[ExternalField] = None,
    ):
        if scheme not in ("modal", "quadrature"):
            raise ValueError("scheme must be 'modal' or 'quadrature'")
        if not species:
            raise ValueError("need at least one species")
        names = [s.name for s in species]
        if len(set(names)) != len(names):
            raise ValueError("species names must be unique")
        self.conf_grid = conf_grid
        self.species = list(species)
        self.field_spec = field or FieldSpec(evolve=False)
        self.poly_order = int(poly_order)
        self.family = family
        self.cfl = float(cfl)
        self.scheme = scheme
        self.backend = backend
        self.stepper = get_stepper(stepper)
        self.time = 0.0
        self.step_count = 0

        self.phase_grids: Dict[str, PhaseGrid] = {}
        self.solvers: Dict[str, object] = {}
        self.moments: Dict[str, MomentCalculator] = {}
        self.f: Dict[str, np.ndarray] = {}

        cdim = conf_grid.ndim
        self.cfg_basis = ModalBasis(cdim, poly_order, family)
        self.maxwell = MaxwellSolver(
            conf_grid,
            self.cfg_basis,
            light_speed=self.field_spec.light_speed,
            epsilon0=self.field_spec.epsilon0,
            flux=self.field_spec.flux,
            chi_e=self.field_spec.chi_e,
            chi_m=self.field_spec.chi_m,
        )

        for sp in self.species:
            pg = PhaseGrid(conf_grid, sp.velocity_grid)
            self.phase_grids[sp.name] = pg
            if scheme == "modal":
                solver = VlasovModalSolver(
                    pg, poly_order, family, sp.charge, sp.mass, velocity_flux,
                    backend=backend,
                )
                kernels = solver.kernels
            else:
                solver = VlasovQuadratureSolver(
                    pg, poly_order, family, sp.charge, sp.mass, backend=backend
                )
                from ..kernels.registry import get_vlasov_kernels

                kernels = get_vlasov_kernels(pg.cdim, pg.vdim, poly_order, family)
            self.solvers[sp.name] = solver
            self.moments[sp.name] = MomentCalculator(
                pg, kernels, pool=getattr(solver, "pool", None)
            )
            basis = ModalBasis(pg.pdim, poly_order, family)
            self.f[sp.name] = project_phase_function(
                sp.initial, pg, basis, ic_quad_order
            )

        self.em = self.maxwell.project_initial_condition(self.field_spec.initial)
        self.external = external
        self._ext_coeffs: Optional[np.ndarray] = None
        self._ext_buf: Optional[np.ndarray] = None
        if external is not None:
            self._ext_coeffs = self.maxwell.project_initial_condition(
                external.profiles
            )
            self._ext_buf = np.empty_like(self._ext_coeffs)
        # persistent coupling buffers (allocated on first RHS)
        self._species_current: Optional[np.ndarray] = None
        self._total_current: Optional[np.ndarray] = None

    # ------------------------------------------------------------------ #
    # state plumbing
    # ------------------------------------------------------------------ #
    def state(self) -> Dict[str, np.ndarray]:
        out = {f"f/{sp.name}": self.f[sp.name] for sp in self.species}
        out["em"] = self.em
        return out

    def set_state(self, state: Dict[str, np.ndarray]) -> None:
        for sp in self.species:
            self.f[sp.name] = state[f"f/{sp.name}"]
        self.em = state["em"]

    def total_current(
        self, state: Dict[str, np.ndarray], out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        shape = self.conf_grid.cells + (3, self.cfg_basis.num_basis)
        if out is None:
            out = np.zeros(shape)
        else:
            out.fill(0.0)
        if self._species_current is None:
            self._species_current = np.empty(shape)
        for sp in self.species:
            out += self.moments[sp.name].current_density(
                state[f"f/{sp.name}"], sp.charge, out=self._species_current
            )
        return out

    def total_charge_density(self, state: Dict[str, np.ndarray]) -> np.ndarray:
        rho = np.zeros(self.conf_grid.cells + (self.cfg_basis.num_basis,))
        for sp in self.species:
            rho += self.moments[sp.name].charge_density(
                state[f"f/{sp.name}"], sp.charge
            )
        return rho

    def rhs(
        self,
        state: Dict[str, np.ndarray],
        out: Optional[Dict[str, np.ndarray]] = None,
    ) -> Dict[str, np.ndarray]:
        """Full coupled RHS: Vlasov per species + Maxwell with currents.

        ``out``, when given, is a donated state-shaped buffer dict filled in
        place (the steady-state path: no phase-space allocation).
        """
        if out is None:
            out = {k: np.empty_like(v) for k, v in state.items()}
        em = state["em"] if "em" in state else self.em
        em_eff = self.effective_em(em)
        for sp in self.species:
            f = state[f"f/{sp.name}"]
            df = out[f"f/{sp.name}"]
            self.solvers[sp.name].rhs(f, em_eff, out=df)
            if sp.collisions is not None:
                mom = self.moments[sp.name]
                sp.collisions.rhs(f, mom, out=df, accumulate=True)
        if self.field_spec.evolve:
            current = self.total_current(state, out=self._current_buf())
            rho = self.total_charge_density(state) if self.field_spec.chi_e else None
            self.maxwell.rhs(em, current=current, charge_density=rho, out=out["em"])
        elif "em" in out:
            out["em"].fill(0.0)
        return out

    def _current_buf(self) -> np.ndarray:
        if self._total_current is None:
            self._total_current = np.empty(
                self.conf_grid.cells + (3, self.cfg_basis.num_basis)
            )
        return self._total_current

    def effective_em(self, em: np.ndarray) -> np.ndarray:
        """The field the particles feel: ``em`` plus the external drive at
        the current step time (``em`` itself when there is no drive).  The
        returned array is a persistent buffer refreshed per call."""
        if self.external is None:
            return em
        np.multiply(
            self._ext_coeffs, self.external.envelope(self.time), out=self._ext_buf
        )
        self._ext_buf += em
        return self._ext_buf

    # ------------------------------------------------------------------ #
    # time advance
    # ------------------------------------------------------------------ #
    def suggested_dt(self) -> float:
        freq = 0.0
        if self.field_spec.evolve:
            freq += self.maxwell.max_frequency()
        em_eff = self.effective_em(self.em)
        for sp in self.species:
            freq = max(freq, self.solvers[sp.name].max_frequency(em_eff))
            if sp.collisions is not None:
                freq = max(freq, sp.collisions.max_frequency())
        if freq <= 0.0:
            raise RuntimeError("cannot determine a stable time step")
        return self.cfl / freq

    def step(self, dt: Optional[float] = None) -> float:
        """Advance one step (in place; the state arrays are mutated);
        returns the dt taken."""
        if dt is None:
            dt = self.suggested_dt()
        state = self.state()
        if not self.field_spec.evolve:
            # a static field is not stepped: keeps it bitwise frozen and
            # skips three stage combinations
            state.pop("em")
        self.stepper.step_inplace(state, self._rhs_into, dt)
        self.time += dt
        self.step_count += 1
        return dt

    def _rhs_into(self, state: Dict[str, np.ndarray], out: Dict[str, np.ndarray]) -> None:
        self.rhs(state, out=out)

    def run(
        self,
        t_end: float,
        diagnostics: Optional[Callable[["VlasovMaxwellApp"], None]] = None,
        max_steps: int = 10**9,
    ) -> Dict[str, float]:
        """Advance to ``t_end``; optional per-step diagnostics callback.

        Returns a summary with wall-clock timing (the quantity Table I
        compares between modal and nodal schemes).
        """
        start = time.perf_counter()
        steps = 0
        if diagnostics is not None:
            diagnostics(self)
        while self.time < t_end - 1e-12 and steps < max_steps:
            dt = min(self.suggested_dt(), t_end - self.time)
            self.step(dt)
            steps += 1
            if diagnostics is not None:
                diagnostics(self)
        wall = time.perf_counter() - start
        return {
            "steps": steps,
            "wall_time": wall,
            "wall_per_step": wall / max(steps, 1),
            "time": self.time,
        }

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def field_energy(self) -> float:
        return self.maxwell.field_energy(self.em)

    def particle_energy(self, name: str) -> float:
        sp = next(s for s in self.species if s.name == name)
        return self.moments[name].particle_energy(self.f[name], sp.mass)

    def total_energy(self) -> float:
        return self.field_energy() + sum(
            self.particle_energy(sp.name) for sp in self.species
        )

    def particle_number(self, name: str) -> float:
        return self.moments[name].number(self.f[name])

    def jdote(self) -> float:
        """Instantaneous field–particle energy exchange ``int J.E dx``."""
        current = self.total_current(self.state())
        jac = float(np.prod([0.5 * dx for dx in self.conf_grid.dx]))
        return float(np.sum(current * self.em[..., 0:3, :]) * jac)
