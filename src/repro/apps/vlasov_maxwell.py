"""Deprecated: the hand-rolled Vlasov–Maxwell "App".

The app classes were replaced by the composable :mod:`repro.systems` API:
a :class:`~repro.systems.system.System` assembled from
:class:`~repro.systems.blocks.KineticSpecies` blocks and a
:class:`~repro.systems.blocks.MaxwellBlock` field closure.
:class:`VlasovMaxwellApp` survives as a thin shim that builds exactly that
system (bit-identical results) while emitting a :class:`DeprecationWarning`.

The ``Species`` / ``FieldSpec`` / ``ExternalField`` declarations now live
in :mod:`repro.systems.blocks` and are re-exported here unchanged.
"""

from __future__ import annotations

import warnings
from typing import Optional, Sequence

from ..grid.cartesian import Grid
from ..systems.blocks import ExternalField, FieldSpec, MaxwellBlock, Species
from ..systems.system import System

__all__ = ["Species", "FieldSpec", "ExternalField", "VlasovMaxwellApp"]


class VlasovMaxwellApp(System):
    """Deprecated alias for a Maxwell-closed :class:`repro.systems.System`.

    Compose the system directly instead::

        from repro.systems import System, MaxwellBlock

        system = System(conf_grid, species, field=MaxwellBlock(field_spec),
                        poly_order=2)
    """

    def __init__(
        self,
        conf_grid: Grid,
        species: Sequence[Species],
        field: Optional[FieldSpec] = None,
        poly_order: int = 2,
        family: str = "serendipity",
        cfl: float = 0.9,
        scheme: str = "modal",
        stepper: str = "ssp-rk3",
        velocity_flux: str = "central",
        ic_quad_order: Optional[int] = None,
        backend: str = "numpy",
        external: Optional[ExternalField] = None,
    ):
        warnings.warn(
            "VlasovMaxwellApp is deprecated; compose a repro.systems.System "
            "with a MaxwellBlock field closure instead",
            DeprecationWarning,
            stacklevel=2,
        )
        System.__init__(
            self,
            conf_grid,
            species,
            field=MaxwellBlock(field or FieldSpec(evolve=False)),
            poly_order=poly_order,
            family=family,
            cfl=cfl,
            scheme=scheme,
            stepper=stepper,
            velocity_flux=velocity_flux,
            ic_quad_order=ic_quad_order,
            backend=backend,
            external=external,
            name="maxwell",
        )
