"""Fixed-slot metrics registry: counters, gauges, fixed-bucket histograms.

The registry is one flat ``float64`` array with **one slot per metric**,
indexed by position — no dictionaries, no locks, no allocation on the hot
path.  Instrumented modules resolve their slot indices once at import time
(``S_RHS_MS`` etc.) and increment ``OBS.metrics.values[slot]`` directly
behind a single mode-flag check.

The same layout doubles as the cross-process wire format: a sharded
worker's registry is backed by a slice of a ``multiprocessing.shared_memory``
segment (:mod:`repro.obs.ring`), so the parent reads a worker's counters by
reading the array — no draining, no message, single-writer therefore no
lock.  Merging is positional: counters and histogram buckets sum, gauges
take the max.

The schema is fixed (``SLOT_NAMES``) so every process of a run agrees on
the layout; plan-compilation counters mirror
:data:`repro.engine.compile.STATS` (the obs registry absorbs them so one
snapshot carries the whole performance picture).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, Iterable, Optional

import numpy as np

__all__ = [
    "COUNTER_NAMES",
    "GAUGE_NAMES",
    "STEP_MS_BUCKETS",
    "TTFR_MS_BUCKETS",
    "HIST_NAMES",
    "SLOT_NAMES",
    "SLOT",
    "MetricsRegistry",
    "merge_snapshots",
]

#: monotonic counters (merge: sum)
COUNTER_NAMES = (
    "steps",
    "rk_stages",
    "rhs_calls",
    "rhs_ms",
    "plan_applies",
    "plan_apply_ms",
    "plan_compiled",
    "plan_hydrated",
    "plan_compile_ms",
    "halo_exchanges",
    "halo_bytes",
    "halo_wait_ms",
    "barrier_waits",
    "barrier_wait_ms",
    "diag_records",
    "diag_ms",
    "checkpoints",
    "checkpoint_ms",
    "spans_dropped",
    # repro.serve job-service telemetry (zero in plain simulation runs)
    "jobs_submitted",
    "jobs_deduped",
    "jobs_completed",
    "jobs_failed",
)

#: gauges (merge: max) — high-water marks / point-in-time levels
GAUGE_NAMES = ("scratch_bytes", "queue_depth")

#: fixed step-wall-time histogram bucket upper bounds [ms]
STEP_MS_BUCKETS = (1.0, 3.0, 10.0, 30.0, 100.0, 300.0, 1000.0)
_STEP_HIST_NAMES = tuple(
    f"step_ms_le_{b:g}" for b in STEP_MS_BUCKETS
) + ("step_ms_gt_1000",)

#: time-to-first-result histogram bucket upper bounds [ms] (repro.serve:
#: submit -> finished latency of jobs that actually computed)
TTFR_MS_BUCKETS = (100.0, 300.0, 1000.0, 3000.0, 10000.0, 30000.0, 100000.0)
_TTFR_HIST_NAMES = tuple(
    f"ttfr_ms_le_{b:g}" for b in TTFR_MS_BUCKETS
) + ("ttfr_ms_gt_100000",)

HIST_NAMES = _STEP_HIST_NAMES + _TTFR_HIST_NAMES

SLOT_NAMES = COUNTER_NAMES + GAUGE_NAMES + HIST_NAMES
SLOT: Dict[str, int] = {name: i for i, name in enumerate(SLOT_NAMES)}

_N_SLOTS = len(SLOT_NAMES)
_GAUGE_SLOTS = frozenset(SLOT[n] for n in GAUGE_NAMES)
_HIST0 = SLOT[_STEP_HIST_NAMES[0]]
_TTFR0 = SLOT[_TTFR_HIST_NAMES[0]]


class MetricsRegistry:
    """One array slot per metric; optionally backed by a donated buffer.

    ``values`` is the entire state: pass a shared-memory view to make the
    registry cross-process readable (single writer, positional layout).
    """

    __slots__ = ("values",)

    def __init__(self, values: Optional[np.ndarray] = None):
        if values is None:
            values = np.zeros(_N_SLOTS)
        if values.shape != (_N_SLOTS,):
            raise ValueError(
                f"metrics buffer must have {_N_SLOTS} slots, got {values.shape}"
            )
        self.values = values

    # hot-path increments go through ``values[slot] +=`` directly; the
    # methods below are the cold-path / readable API
    def add(self, name: str, amount: float = 1.0) -> None:
        self.values[SLOT[name]] += amount

    def gauge_max(self, name: str, value: float) -> None:
        i = SLOT[name]
        if value > self.values[i]:
            self.values[i] = value

    def observe_step_ms(self, ms: float) -> None:
        self.values[_HIST0 + bisect_left(STEP_MS_BUCKETS, ms)] += 1.0

    def observe_ttfr_ms(self, ms: float) -> None:
        self.values[_TTFR0 + bisect_left(TTFR_MS_BUCKETS, ms)] += 1.0

    def gauge_set(self, name: str, value: float) -> None:
        self.values[SLOT[name]] = value

    def reset(self) -> None:
        self.values[:] = 0.0

    def snapshot(self) -> Dict[str, float]:
        return {name: float(self.values[i]) for name, i in SLOT.items()}


def merge_snapshots(snapshots: Iterable[Dict[str, float]]) -> Dict[str, float]:
    """Positional merge: counters and histogram buckets sum, gauges max."""
    out = {name: 0.0 for name in SLOT_NAMES}
    for snap in snapshots:
        for name in SLOT_NAMES:
            val = float(snap.get(name, 0.0))
            if SLOT[name] in _GAUGE_SLOTS:
                if val > out[name]:
                    out[name] = val
            else:
                out[name] += val
    return out
