"""Cross-process observability transport: one shared-memory block per worker.

Reuses the PR 3 transport exactly — the parent allocates one
``multiprocessing.shared_memory`` segment per sharded worker *before*
forking (through the same ``ShardedApp._alloc`` plumbing that carries the
state arrays, so cleanup is shared too), and the worker inherits the
mapping.  The block is a single ``float64`` array laid out as::

    [ write_count | dropped |  span ring (capacity x 3)  |  metric slots ]

* **Span ring** — fixed-size records ``(label_id, t0, t1)`` appended by the
  single writer (the worker) with a monotonically increasing
  ``write_count``; the parent drains new records after every step command
  (the workers are idle between commands, so reads never race writes).
  Overwritten records — the parent falling more than ``capacity`` behind —
  are counted, never silently lost.  Label ids index the worker's interned
  label table, which travels in the existing pipe payloads.
* **Metric slots** — the worker's :class:`~repro.obs.metrics.MetricsRegistry`
  is *backed by* this slice, so worker counters are parent-readable at any
  moment with zero copies and zero messages.
"""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from .metrics import SLOT_NAMES, MetricsRegistry

__all__ = ["ObsChannel"]

_HEADER = 2   # [0] = write_count, [1] = reserved (writer-side drop count)
_REC = 3      # label_id, t0, t1


class ObsChannel:
    """Span ring + metric slots over one donated float64 array."""

    __slots__ = ("buf", "capacity", "_ring", "metrics", "_read")

    def __init__(self, buf: np.ndarray, capacity: int = 8192):
        need = self.length(capacity)
        if buf.shape != (need,):
            raise ValueError(
                f"obs channel buffer must have {need} slots, got {buf.shape}"
            )
        self.buf = buf
        self.capacity = int(capacity)
        self._ring = buf[_HEADER:_HEADER + capacity * _REC]
        self.metrics = MetricsRegistry(buf[_HEADER + capacity * _REC:])
        self._read = 0  # parent-side drain cursor

    @staticmethod
    def length(capacity: int = 8192) -> int:
        """Total float64 slots a channel of this capacity needs."""
        return _HEADER + int(capacity) * _REC + len(SLOT_NAMES)

    # ------------------------------------------------------------------ #
    # worker side (single writer)
    # ------------------------------------------------------------------ #
    def push(self, label_id: int, t0: float, t1: float) -> None:
        i = int(self.buf[0])
        base = (i % self.capacity) * _REC
        ring = self._ring
        ring[base] = label_id
        ring[base + 1] = t0
        ring[base + 2] = t1
        self.buf[0] = i + 1

    # ------------------------------------------------------------------ #
    # parent side (drained while the worker is idle between commands)
    # ------------------------------------------------------------------ #
    def drain(self) -> Tuple[List[Tuple[int, float, float]], int]:
        """New ``(label_id, t0, t1)`` records since the last drain, plus the
        count of records lost to ring wrap-around."""
        wrote = int(self.buf[0])
        lost = 0
        start = self._read
        if wrote - start > self.capacity:
            lost = wrote - start - self.capacity
            start = wrote - self.capacity
        ring = self._ring
        out = []
        for i in range(start, wrote):
            base = (i % self.capacity) * _REC
            out.append((int(ring[base]), float(ring[base + 1]), float(ring[base + 2])))
        self._read = wrote
        return out, lost
