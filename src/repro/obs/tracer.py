"""Span tracing: bounded in-process recorder + Chrome-trace-event export.

Spans are closed intervals ``(label_id, t0, t1)`` on the shared monotonic
clock (``time.perf_counter`` reads ``CLOCK_MONOTONIC`` on Linux, which is
system-wide, so spans recorded in forked sharded workers are directly
comparable with the parent's).  Labels are interned per tracer; hot sites
record via :meth:`SpanTracer.record` with a precomputed ``t0`` — no context
manager, no allocation beyond the event tuple.

A worker tracer swaps its event list for a shared-memory ring *sink*
(:class:`repro.obs.ring.ObsChannel`), so its spans surface in the parent
without pickling; the label table travels through the existing PR 3 pipe
payloads instead (it is tiny and changes rarely).

:func:`chrome_trace` renders merged events as Chrome trace-event JSON
(``ph: "X"`` duration events plus process/thread metadata rows), loadable
in Perfetto / ``chrome://tracing``.
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = ["SpanTracer", "SpanEvent", "chrome_trace", "base_name"]

#: (pid, tid, label, t0, t1) — the merged-event form every exporter consumes
SpanEvent = Tuple[int, int, str, float, float]

_perf_counter = time.perf_counter


def base_name(label: str) -> str:
    """Phase name of a span label (``plan_apply:ab12`` -> ``plan_apply``)."""
    i = label.find(":")
    return label if i < 0 else label[:i]


class SpanTracer:
    """Bounded span recorder with interned labels.

    ``capacity`` bounds the in-memory event list; past it, events are
    counted in :attr:`dropped` instead of growing without bound (long runs
    should raise ``observability.sample``).  When :attr:`sink` is set
    (sharded workers), events bypass the list and go to the ring.
    """

    __slots__ = ("labels", "_ids", "events", "dropped", "capacity", "sink")

    def __init__(self, capacity: int = 262_144):
        self.labels: List[str] = []
        self._ids: Dict[str, int] = {}
        self.events: List[Tuple[int, float, float]] = []
        self.dropped = 0
        self.capacity = int(capacity)
        self.sink = None  # ObsChannel in sharded workers

    def reset(self) -> None:
        self.labels = []
        self._ids = {}
        self.events = []
        self.dropped = 0

    def label_id(self, label: str) -> int:
        lid = self._ids.get(label)
        if lid is None:
            lid = len(self.labels)
            self._ids[label] = lid
            self.labels.append(label)
        return lid

    def record(self, label_id: int, t0: float, t1: float) -> None:
        sink = self.sink
        if sink is not None:
            sink.push(label_id, t0, t1)
            return
        if len(self.events) < self.capacity:
            self.events.append((label_id, t0, t1))
        else:
            self.dropped += 1

    def record_name(self, label: str, t0: float) -> None:
        """Close a span named ``label`` started at ``t0`` (ends now)."""
        self.record(self.label_id(label), t0, _perf_counter())

    def resolved(self, pid: int, tid: int) -> List[SpanEvent]:
        """The buffered events with labels resolved, tagged ``(pid, tid)``."""
        labels = self.labels
        return [
            (pid, tid, labels[lid], t0, t1) for lid, t0, t1 in self.events
        ]


def chrome_trace(
    events: Iterable[SpanEvent],
    origin: float,
    process_names: Optional[Dict[int, str]] = None,
) -> dict:
    """Render merged span events as a Chrome trace-event JSON object.

    ``origin`` is the run's perf-counter zero; timestamps are exported in
    microseconds relative to it.  ``process_names`` maps pids to row names
    (``driver``, ``shard-0`` ...) emitted as metadata events so Perfetto
    labels each worker row.
    """
    trace_events: List[dict] = []
    seen_pids: Dict[int, bool] = {}
    for pid, tid, label, t0, t1 in events:
        if pid not in seen_pids:
            seen_pids[pid] = True
            name = (process_names or {}).get(pid, f"pid-{pid}")
            trace_events.append({
                "name": "process_name",
                "ph": "M",
                "pid": pid,
                "tid": 0,
                "args": {"name": name},
            })
        trace_events.append({
            "name": label,
            "cat": base_name(label),
            "ph": "X",
            "ts": (t0 - origin) * 1e6,
            "dur": max((t1 - t0) * 1e6, 0.0),
            "pid": pid,
            "tid": tid,
        })
    return {"traceEvents": trace_events, "displayTimeUnit": "ms"}
