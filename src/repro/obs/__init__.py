"""``repro.obs``: zero-dependency observability — spans, metrics, telemetry.

The paper's central claim is a performance *profile* — where time goes per
RHS evaluation, per RK stage, per halo exchange — so the runtime carries a
tracing/metrics substrate threaded through every layer:

* a **span tracer** (:mod:`repro.obs.tracer`) instrumenting ``Driver.run``,
  the SSP-RK stages, ``System.rhs``, plan application and compilation, and
  the sharded halo exchange + barrier waits, exported as Chrome
  trace-event JSON (``trace.json``, loadable in Perfetto) with one row per
  sharded worker pid;
* a **metrics registry** (:mod:`repro.obs.metrics`) — fixed-slot counters,
  gauges and histograms with no locks and no allocation on the hot path;
* a **cross-process collector** (:mod:`repro.obs.ring`) — per-worker
  shared-memory blocks the parent drains each step.

Configuration is process-global (like the plan-compiler config, and for
the same reason: sharded workers fork from the configured parent).  The
runtime driver adopts ``spec.observability`` via :func:`configure_from_spec`;
``$REPRO_OBS`` overrides the spec (the CI trace leg runs the whole suite
with ``REPRO_OBS=trace`` to prove instrumentation never changes results).

**Off is free.**  ``mode="off"`` (the default) reduces every instrumented
site to one module-level flag check — no context managers, no allocation,
no clock reads; the perf-smoke gate asserts the coupled-RHS cost of the
check is within noise of an uninstrumented call.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from .metrics import (  # noqa: F401 - re-exported
    SLOT,
    SLOT_NAMES,
    MetricsRegistry,
    merge_snapshots,
)
from .tracer import SpanTracer, base_name, chrome_trace  # noqa: F401

__all__ = [
    "OBS",
    "ObsRuntime",
    "OBS_MODES",
    "configure_from_spec",
    "MetricsRegistry",
    "SpanTracer",
    "merge_snapshots",
    "chrome_trace",
    "base_name",
    "SLOT",
    "SLOT_NAMES",
]

OBS_MODES = ("off", "summary", "trace")

_perf_counter = time.perf_counter


class ObsRuntime:
    """Process-global observability state (one instance: :data:`OBS`).

    Hot-path contract: instrumented sites read ``OBS.on`` (or
    ``OBS.trace_on``) once and branch — everything else happens only when a
    mode is active.  ``metrics_on`` is true in ``summary`` and ``trace``
    modes; ``trace_on`` additionally requires the current step to be
    sampled (``begin_step``).
    """

    __slots__ = (
        "mode", "sample", "on", "metrics_on", "trace_on",
        "metrics", "tracer", "origin",
    )

    def __init__(self):
        self.metrics = MetricsRegistry()
        self.tracer = SpanTracer()
        self.origin = _perf_counter()
        self._set_mode("off", 1)

    def _set_mode(self, mode: str, sample: int) -> None:
        self.mode = mode
        self.sample = max(int(sample), 1)
        self.metrics_on = mode in ("summary", "trace")
        self.trace_on = mode == "trace"
        self.on = self.metrics_on

    def configure(
        self, mode: str = "off", sample: int = 1, reset: bool = True
    ) -> "ObsRuntime":
        """Set the mode and sampling; ``reset`` clears counters and spans
        (each Driver starts a fresh window, like the plan-STATS deltas)."""
        if mode not in OBS_MODES:
            raise ValueError(
                f"unknown observability mode {mode!r} "
                f"(known: {', '.join(OBS_MODES)})"
            )
        self._set_mode(mode, sample)
        if reset:
            self.metrics.reset()
            self.tracer.reset()
            self.origin = _perf_counter()
        return self

    # ------------------------------------------------------------------ #
    def begin_step(self, step_index: int) -> None:
        """Per-step sampling decision (drivers and sharded workers call
        this with the same global step index, so sampling stays aligned)."""
        self.trace_on = (
            self.mode == "trace" and step_index % self.sample == 0
        )

    def finish(
        self, name: str, t0: float, count_slot: int = -1, ms_slot: int = -1
    ) -> float:
        """Close an instrumented region started at ``t0``: bump its counter
        and elapsed-ms slots (when metrics are on) and record a span (when
        tracing).  Returns the elapsed seconds."""
        t1 = _perf_counter()
        if self.metrics_on and count_slot >= 0:
            values = self.metrics.values
            values[count_slot] += 1.0
            if ms_slot >= 0:
                values[ms_slot] += (t1 - t0) * 1e3
        if self.trace_on:
            tracer = self.tracer
            tracer.record(tracer.label_id(name), t0, t1)
        return t1 - t0

    # ------------------------------------------------------------------ #
    def adopt_channel(self, channel) -> None:
        """Become a sharded worker: write metrics into the shared block and
        spans into its ring (called once, right after fork)."""
        self.metrics = channel.metrics
        tracer = SpanTracer()
        tracer.sink = channel
        self.tracer = tracer


OBS = ObsRuntime()


def mode_from_env(default: str = "off") -> str:
    """``$REPRO_OBS`` when set (and validated), else ``default``."""
    raw = os.environ.get("REPRO_OBS", "").strip()
    if not raw:
        return default
    if raw not in OBS_MODES:
        raise ValueError(
            f"$REPRO_OBS={raw!r} is not a mode (known: {', '.join(OBS_MODES)})"
        )
    return raw


def configure_from_spec(spec) -> ObsRuntime:
    """Adopt a spec's ``observability`` block (the driver calls this before
    building the app so forked workers inherit the mode); ``$REPRO_OBS``
    overrides the spec's mode."""
    obs_spec = getattr(spec, "observability", None)
    mode = obs_spec.mode if obs_spec is not None else "off"
    sample = obs_spec.sample if obs_spec is not None else 1
    return OBS.configure(mode=mode_from_env(mode), sample=sample)
