"""Offline analysis of a run's observability outputs (``repro report``).

Consumes the artifacts a traced :class:`~repro.runtime.driver.Driver`
leaves in its outdir — ``trace.json`` (Chrome trace events) and
``metrics.jsonl`` (streamed merged counter snapshots) — and renders:

* a **per-phase breakdown**: wall time per phase (``rk_stage``, ``rhs``,
  ``plan_apply``, ``halo_exchange`` ...) as *total* (span-inclusive) and
  *self* time (children subtracted via interval nesting per ``(pid, tid)``
  row, so ``rhs`` self-time excludes the ``plan_apply`` spans inside it);
* the **top-N plans by self-time**, attributed through the
  ``plan_apply:<digest>`` span labels;
* the final merged metrics snapshot (counters, throughput, histogram).

Everything here is cold-path file parsing — nothing imports back into the
runtime hot loop.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..runtime._fmt import format_bytes, format_ms, render_table
from .metrics import COUNTER_NAMES, HIST_NAMES
from .tracer import SpanEvent, base_name

__all__ = [
    "load_trace",
    "load_metrics",
    "phase_breakdown",
    "top_plans",
    "render_report",
]

PathLike = Union[str, Path]


def load_trace(path: PathLike) -> List[SpanEvent]:
    """Duration events of a Chrome trace file as ``SpanEvent`` tuples
    (timestamps back in seconds, relative to the trace origin)."""
    with open(path) as fh:
        doc = json.load(fh)
    events: List[SpanEvent] = []
    for ev in doc.get("traceEvents", []):
        if ev.get("ph") != "X":
            continue
        t0 = float(ev["ts"]) * 1e-6
        events.append(
            (
                int(ev.get("pid", 0)),
                int(ev.get("tid", 0)),
                str(ev["name"]),
                t0,
                t0 + float(ev.get("dur", 0.0)) * 1e-6,
            )
        )
    return events


def load_metrics(path: PathLike) -> List[dict]:
    """Every parseable record of a ``metrics.jsonl`` stream (records are
    cumulative snapshots; the last one is the run's final word).

    Unparseable lines are skipped: a still-running (or killed) writer may
    leave a partial final line, and the complete records before it are
    still a valid cumulative view.
    """
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                continue  # partial tail of an in-progress stream
    return records


# ---------------------------------------------------------------------- #
def _self_times(events: Sequence[SpanEvent]) -> Dict[str, Tuple[int, float, float]]:
    """Per-label ``(count, total_s, self_s)`` via interval nesting.

    Spans within one ``(pid, tid)`` row are properly nested by
    construction (each site closes before its caller does), so a scan with
    an open-span stack attributes each child's duration against its
    immediate parent's self-time.
    """
    acc: Dict[str, List[float]] = {}  # label -> [count, total, self]
    by_row: Dict[Tuple[int, int], List[SpanEvent]] = {}
    for ev in events:
        by_row.setdefault((ev[0], ev[1]), []).append(ev)
    for row in by_row.values():
        # start ascending; ties broken longest-first so parents precede
        # their zero-offset children on the stack
        row.sort(key=lambda ev: (ev[3], -ev[4]))
        stack: List[Tuple[str, float]] = []  # (label, t1)
        for _, _, label, t0, t1 in row:
            while stack and stack[-1][1] <= t0 + 1e-12:
                stack.pop()
            dur = max(t1 - t0, 0.0)
            slot = acc.setdefault(label, [0, 0.0, 0.0])
            slot[0] += 1
            slot[1] += dur
            slot[2] += dur
            if stack:
                parent = acc[stack[-1][0]]
                parent[2] -= dur
            stack.append((label, t1))
    return {
        label: (int(c), total, max(self_s, 0.0))
        for label, (c, total, self_s) in acc.items()
    }


def phase_breakdown(
    events: Sequence[SpanEvent],
) -> Dict[str, Tuple[int, float, float]]:
    """``(count, total_s, self_s)`` per phase (labels folded by base name)."""
    phases: Dict[str, List[float]] = {}
    for label, (count, total, self_s) in _self_times(events).items():
        slot = phases.setdefault(base_name(label), [0, 0.0, 0.0])
        slot[0] += count
        slot[1] += total
        slot[2] += self_s
    return {
        name: (int(c), total, self_s)
        for name, (c, total, self_s) in phases.items()
    }


def top_plans(
    events: Sequence[SpanEvent], n: int = 10
) -> List[Tuple[str, int, float]]:
    """``(digest, applies, self_s)`` for the N costliest plans."""
    plans = [
        (label.split(":", 1)[1], count, self_s)
        for label, (count, _total, self_s) in _self_times(events).items()
        if label.startswith("plan_apply:")
    ]
    plans.sort(key=lambda item: -item[2])
    return plans[:n]


# ---------------------------------------------------------------------- #
def render_report(outdir: PathLike, top: int = 10) -> str:
    """The ``repro report <outdir>`` text: per-phase breakdown, top plans,
    final counters.  Works from whichever of trace.json / metrics.jsonl
    exists; raises ``FileNotFoundError`` when neither does."""
    outdir = Path(outdir)
    if not outdir.exists():
        raise FileNotFoundError(f"no such run directory: {outdir}")
    if not outdir.is_dir():
        raise FileNotFoundError(f"not a run directory: {outdir}")
    trace_path = outdir / "trace.json"
    metrics_path = outdir / "metrics.jsonl"
    if not trace_path.exists() and not metrics_path.exists():
        raise FileNotFoundError(
            f"no observability output in {outdir} (expected trace.json "
            "and/or metrics.jsonl — run with observability.mode=summary|trace, "
            "e.g. `repro run <scenario> --trace`)"
        )
    sections: List[str] = []

    events: Optional[List[SpanEvent]] = None
    if trace_path.exists():
        try:
            events = load_trace(trace_path)
        except (json.JSONDecodeError, KeyError, UnicodeDecodeError):
            # a run that is still writing (or was killed mid-write) leaves a
            # truncated trace.json; fall through to metrics, if any
            events = None
    if events is not None:
        phases = phase_breakdown(events)
        t_first = min((ev[3] for ev in events), default=0.0)
        t_last = max((ev[4] for ev in events), default=0.0)
        wall = t_last - t_first
        rows = []
        for name, (count, total, self_s) in sorted(
            phases.items(), key=lambda item: -item[1][2]
        ):
            share = 100.0 * self_s / wall if wall > 0 else 0.0
            rows.append(
                (
                    name,
                    count,
                    format_ms(total * 1e3),
                    format_ms(self_s * 1e3),
                    f"{share:.1f}%",
                )
            )
        sections.append(
            f"phases ({len(events)} spans, {wall * 1e3:.1f} ms traced)\n"
            + render_table(
                rows,
                header=("phase", "count", "total ms", "self ms", "share"),
                indent="  ",
            )
        )
        all_plans = top_plans(events, n=10**9)
        if all_plans:
            rows = [
                (digest, applies, format_ms(self_s * 1e3))
                for digest, applies, self_s in all_plans[:top]
            ]
            sections.append(
                f"top plans by self-time (of {len(all_plans)})\n"
                + render_table(
                    rows, header=("plan", "applies", "self ms"), indent="  "
                )
            )

    if metrics_path.exists():
        records = load_metrics(metrics_path)
        if records:
            final = records[-1]
            metrics = final.get("metrics", {})
            rows = []
            for name in COUNTER_NAMES:
                val = metrics.get(name, 0.0)
                if not val:
                    continue
                shown = (
                    format_bytes(val) if name.endswith("_bytes")
                    else format_ms(val) if name.endswith("_ms")
                    else f"{val:g}"
                )
                rows.append((name, shown))
            if metrics.get("scratch_bytes"):
                rows.append(
                    ("scratch_bytes", format_bytes(metrics["scratch_bytes"]))
                )
            if final.get("steps_per_s") is not None:
                rows.append(("steps_per_s", f"{final['steps_per_s']:.2f}"))
            hist = [
                (name, f"{metrics[name]:g}")
                for name in HIST_NAMES
                if metrics.get(name)
            ]
            sections.append(
                f"metrics (final of {len(records)} records)\n"
                + render_table(rows + hist, indent="  ", align=("<", ">"))
            )

    if not sections:
        raise FileNotFoundError(
            f"observability output in {outdir} has no complete records yet "
            "(run still in progress, or killed before the first flush?) — "
            "retry once the run has written a full record"
        )
    return "\n\n".join(sections)
