"""The paper's algorithm: alias-free, matrix-free, quadrature-free modal DG
update of the Vlasov equation.

The right-hand side of the semi-discrete system (paper Eq. 12)

.. math::

   \\frac{df_l}{dt} = \\sum_{mn} C_{lmn} \\alpha_n f_m
                    + \\sum_m U_{lm} \\hat F_m

is evaluated by applying the CAS-generated sparse kernels
(:mod:`repro.kernels`) to every phase-space cell at once.  No quadrature is
performed at runtime, no mass/stiffness matrix exists (the orthonormal basis
makes the mass matrix the identity), and every integral entering the update
was computed exactly at generation time — eliminating the aliasing errors
that destabilize nodal kinetic schemes.

Numerical fluxes follow Juno et al. (2018) / Gkeyll:

* configuration-space faces: upwind on the sign of the cell-center velocity
  (exact when velocity cells do not straddle ``v = 0``; cells that do
  straddle fall back to a central flux);
* velocity-space faces: central flux, which preserves the discrete
  :math:`J \\cdot E` energy-exchange identity (total particle+field energy
  conservation with a central-flux Maxwell solver); an optional local
  Lax-type penalty is available for extra robustness;
* velocity-space domain boundaries: zero flux.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..grid.phase import PhaseGrid
from ..kernels.grouped import GroupedOperator
from ..kernels.registry import get_vlasov_kernels

__all__ = ["VlasovModalSolver"]


class VlasovModalSolver:
    """Matrix-free modal DG discretization of the Vlasov equation for one
    species.

    Parameters
    ----------
    phase_grid:
        The configuration x velocity phase-space grid.
    poly_order, family:
        Basis selection (``tensor`` / ``serendipity`` / ``maximal-order``).
    charge, mass:
        Species charge and mass (normalized units).
    velocity_flux:
        ``"central"`` (energy conserving, the paper's choice) or
        ``"penalty"`` (adds a local Lax-type jump penalty).
    """

    def __init__(
        self,
        phase_grid: PhaseGrid,
        poly_order: int,
        family: str = "serendipity",
        charge: float = -1.0,
        mass: float = 1.0,
        velocity_flux: str = "central",
    ):
        if velocity_flux not in ("central", "penalty"):
            raise ValueError("velocity_flux must be 'central' or 'penalty'")
        self.grid = phase_grid
        self.poly_order = int(poly_order)
        self.family = family
        self.charge = float(charge)
        self.mass = float(mass)
        self.velocity_flux = velocity_flux
        self.kernels = get_vlasov_kernels(
            phase_grid.cdim, phase_grid.vdim, poly_order, family
        )
        self.num_basis = self.kernels.num_basis
        self.num_conf_basis = self.kernels.cfg_basis.num_basis
        self._base_aux = phase_grid.base_aux()
        self._base_aux["qm"] = self.charge / self.mass
        # Streaming upwind weights per configuration direction: the sign of
        # the paired velocity coordinate at the cell center; 0.5 for cells
        # straddling v = 0 (central fallback).
        self._upwind_pos = []
        for j in range(phase_grid.cdim):
            w = phase_grid.velocity_center_array(j)
            pos = np.where(w > 0, 1.0, np.where(w < 0, 0.0, 0.5))
            self._upwind_pos.append(pos)
        # Field-coupled (acceleration) kernels carry O(Npc) symbol terms;
        # evaluate them through the batched grouped path (same exact
        # coefficients, BLAS-friendly — see repro.kernels.grouped).
        cdim, vdim = phase_grid.cdim, phase_grid.vdim
        self._vol_accel_ops = [
            GroupedOperator(ts, cdim, vdim) for ts in self.kernels.vol_accel
        ]
        self._surf_accel_ops = [
            {side: GroupedOperator(ts, cdim, vdim) for side, ts in sides.items()}
            for sides in self.kernels.surf_accel
        ]

    # ------------------------------------------------------------------ #
    # aux symbol assembly
    # ------------------------------------------------------------------ #
    def field_aux(self, em: np.ndarray) -> Dict[str, object]:
        """Broadcastable field-coefficient symbols from the EM state.

        Parameters
        ----------
        em:
            EM modal coefficients, shape ``(>=6, Npc, *cfg_cells)`` ordered
            ``(Ex, Ey, Ez, Bx, By, Bz, ...)``.
        """
        aux = dict(self._base_aux)
        g = self.grid
        npc = self.num_conf_basis
        if em.shape[0] < 6 or em.shape[1] != npc:
            raise ValueError(
                f"EM state must be (>=6, {npc}, *cfg_cells); got {em.shape}"
            )
        for comp in range(3):
            for k in range(npc):
                aux[f"E{comp}_{k}"] = g.conf_coefficient_array(em[comp, k])
                aux[f"B{comp}_{k}"] = g.conf_coefficient_array(em[3 + comp, k])
        return aux

    # ------------------------------------------------------------------ #
    # RHS evaluation
    # ------------------------------------------------------------------ #
    def rhs(
        self,
        f: np.ndarray,
        em: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Evaluate ``df/dt`` for the collisionless Vlasov equation.

        Parameters
        ----------
        f:
            Distribution coefficients ``(Np, *cfg_cells, *vel_cells)``.
        em:
            EM coefficients ``(>=6, Npc, *cfg_cells)``.
        out:
            Optional output array (zeroed and filled).
        """
        g = self.grid
        if f.shape != (self.num_basis,) + g.cells:
            raise ValueError(
                f"f has shape {f.shape}, expected {(self.num_basis,) + g.cells}"
            )
        if out is None:
            out = np.zeros_like(f)
        else:
            out.fill(0.0)
        aux = self.field_aux(em)
        self._accumulate_volume(f, aux, out)
        self._accumulate_streaming_surfaces(f, aux, out)
        self._accumulate_acceleration_surfaces(f, aux, out)
        return out

    def _accumulate_volume(self, f, aux, out) -> None:
        for ts in self.kernels.vol_stream:
            ts.apply(f, aux, out)
        for op in self._vol_accel_ops:
            op.apply(f, aux, out)

    def _accumulate_streaming_surfaces(self, f, aux, out) -> None:
        """Periodic, upwinded configuration-space face terms."""
        for j in range(self.grid.cdim):
            axis = 1 + j
            sides = self.kernels.surf_stream[j]
            pos = self._upwind_pos[j]
            neg = 1.0 - pos
            f_left = f * pos          # weighted left state at each face
            f_right = np.roll(f, -1, axis=axis) * neg
            # increments to the left cell of each face (aligned with f)
            sides[("L", "L")].apply(f_left, aux, out)
            sides[("L", "R")].apply(f_right, aux, out)
            # increments to the right cell of each face (shift back by one)
            buf = np.zeros_like(out)
            sides[("R", "L")].apply(f_left, aux, buf)
            sides[("R", "R")].apply(f_right, aux, buf)
            out += np.roll(buf, 1, axis=axis)

    def _accumulate_acceleration_surfaces(self, f, aux, out) -> None:
        """Central-flux velocity-space face terms with zero-flux domain
        boundaries (interior faces only)."""
        half = 0.5
        for j in range(self.grid.vdim):
            axis = 1 + self.grid.cdim + j
            n = f.shape[axis]
            if n < 2:
                continue
            sides = self._surf_accel_ops[j]
            sl_lo = _axis_slice(f.ndim, axis, slice(0, n - 1))
            sl_hi = _axis_slice(f.ndim, axis, slice(1, n))
            f_left = np.ascontiguousarray(f[sl_lo]) * half
            f_right = np.ascontiguousarray(f[sl_hi]) * half
            inc_left = np.zeros_like(f_left)
            sides[("L", "L")].apply(f_left, aux, inc_left)
            sides[("L", "R")].apply(f_right, aux, inc_left)
            inc_right = np.zeros_like(f_left)
            sides[("R", "L")].apply(f_left, aux, inc_right)
            sides[("R", "R")].apply(f_right, aux, inc_right)
            if self.velocity_flux == "penalty":
                tau = self._penalty_speed(aux, j)
                # flux correction -(tau/2)(f_R - f_L): state weights +-tau/2
                corr_l = (f[sl_lo] * (0.5 * tau))
                corr_r = (f[sl_hi] * (-0.5 * tau))
                for t_side, inc in (("L", inc_left), ("R", inc_right)):
                    self._face_mass(j)[(t_side, "L")].apply(corr_l, aux, inc)
                    self._face_mass(j)[(t_side, "R")].apply(corr_r, aux, inc)
            out[sl_lo] += inc_left
            out[sl_hi] += inc_right

    # ------------------------------------------------------------------ #
    # penalty support (optional robustness flux)
    # ------------------------------------------------------------------ #
    def _face_mass(self, j: int):
        """Face 'mass' termsets for the penalty flux, generated lazily with a
        unit flux polynomial along velocity dim j."""
        cache = getattr(self, "_face_mass_cache", None)
        if cache is None:
            cache = {}
            self._face_mass_cache = cache
        if j not in cache:
            from ..cas.poly import Poly
            from ..kernels.generator import FluxSpec, FluxTerm, generate_surface_termsets

            dim = self.grid.cdim + j
            spec = FluxSpec(
                dim=dim,
                terms=(FluxTerm(sym=(), poly=Poly.one(self.grid.pdim)),),
            )
            cache[j] = generate_surface_termsets(self.kernels.phase_basis, spec)
        return cache[j]

    def _penalty_speed(self, aux, j: int) -> float:
        """Conservative scalar estimate of max |alpha_vj| for the penalty."""
        npc = self.num_conf_basis
        phi0 = self.kernels.cfg_basis.norm(0)
        e_mag = np.max(np.abs(aux[f"E{j}_0"])) * phi0
        vmax = max(
            (self.grid.max_velocity(d) for d in range(self.grid.vdim) if d != j),
            default=0.0,
        )
        b_mag = max(
            float(np.max(np.abs(aux[f"B{comp}_0"]))) * phi0 for comp in range(3)
        )
        return abs(self.charge / self.mass) * (e_mag + vmax * b_mag)

    # ------------------------------------------------------------------ #
    # CFL support
    # ------------------------------------------------------------------ #
    def max_frequency(self, em: np.ndarray) -> float:
        """CFL frequency: sum over directions of
        ``(2p+1) * max|alpha_d| / dx_d`` (Gkeyll's stability estimate)."""
        g = self.grid
        p = self.poly_order
        freq = 0.0
        for j in range(g.cdim):
            freq += (2 * p + 1) * g.max_velocity(j) / g.dx[j]
        phi0 = self.kernels.cfg_basis.norm(0)
        qm = abs(self.charge / self.mass)
        for j in range(g.vdim):
            e_mag = float(np.max(np.abs(em[j, 0]))) * phi0
            accel = e_mag
            for vj, bk, _sign in _CROSS_COMPONENTS[j]:
                if vj >= g.vdim:
                    continue
                b_mag = float(np.max(np.abs(em[3 + bk, 0]))) * phi0
                accel += g.max_velocity(vj) * b_mag
            dv = g.dx[g.cdim + j]
            freq += (2 * p + 1) * qm * accel / dv
        return freq


_CROSS_COMPONENTS = {
    0: ((1, 2, +1.0), (2, 1, -1.0)),
    1: ((2, 0, +1.0), (0, 2, -1.0)),
    2: ((0, 1, +1.0), (1, 0, -1.0)),
}


def _axis_slice(ndim: int, axis: int, sl: slice):
    out = [slice(None)] * ndim
    out[axis] = sl
    return tuple(out)
