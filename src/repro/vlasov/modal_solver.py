"""The paper's algorithm: alias-free, matrix-free, quadrature-free modal DG
update of the Vlasov equation.

The right-hand side of the semi-discrete system (paper Eq. 12)

.. math::

   \\frac{df_l}{dt} = \\sum_{mn} C_{lmn} \\alpha_n f_m
                    + \\sum_m U_{lm} \\hat F_m

is evaluated by applying the CAS-generated sparse kernels
(:mod:`repro.kernels`) to every phase-space cell at once.  No quadrature is
performed at runtime, no mass/stiffness matrix exists (the orthonormal basis
makes the mass matrix the identity), and every integral entering the update
was computed exactly at generation time — eliminating the aliasing errors
that destabilize nodal kinetic schemes.

Every kernel — streaming and acceleration, volume and surface — is executed
through the precompiled-plan engine (:mod:`repro.engine`): plans are
compiled once per (termset, aux signature, cell shape), all temporaries come
from one solver-owned scratch pool, and the dense batched products route
through a pluggable :class:`~repro.engine.backend.ArrayBackend`, so the
steady-state RHS performs no avoidable allocation.

Numerical fluxes follow Juno et al. (2018) / Gkeyll:

* configuration-space faces: upwind on the sign of the cell-center velocity
  (exact when velocity cells do not straddle ``v = 0``; cells that do
  straddle fall back to a central flux);
* velocity-space faces: central flux, which preserves the discrete
  :math:`J \\cdot E` energy-exchange identity (total particle+field energy
  conservation with a central-flux Maxwell solver); an optional local
  Lax-type penalty is available for extra robustness;
* velocity-space domain boundaries: zero flux.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from ..engine.backend import ArrayBackend, get_backend
from ..engine.pool import ScratchPool
from ..grid.phase import PhaseGrid
from ..kernels.grouped import GroupedOperator
from ..kernels.registry import get_vlasov_kernels
from ..kernels.termset import merge_termsets, stack_termsets

__all__ = ["VlasovModalSolver"]


class VlasovModalSolver:
    """Matrix-free modal DG discretization of the Vlasov equation for one
    species.

    Parameters
    ----------
    phase_grid:
        The configuration x velocity phase-space grid.
    poly_order, family:
        Basis selection (``tensor`` / ``serendipity`` / ``maximal-order``).
    charge, mass:
        Species charge and mass (normalized units).
    velocity_flux:
        ``"central"`` (energy conserving, the paper's choice) or
        ``"penalty"`` (adds a local Lax-type jump penalty).
    backend:
        Array-execution backend name or instance (default ``"numpy"``); see
        :mod:`repro.engine.backend`.
    """

    def __init__(
        self,
        phase_grid: PhaseGrid,
        poly_order: int,
        family: str = "serendipity",
        charge: float = -1.0,
        mass: float = 1.0,
        velocity_flux: str = "central",
        backend: Union[str, ArrayBackend, None] = None,
    ):
        if velocity_flux not in ("central", "penalty"):
            raise ValueError("velocity_flux must be 'central' or 'penalty'")
        self.grid = phase_grid
        self.poly_order = int(poly_order)
        self.family = family
        self.charge = float(charge)
        self.mass = float(mass)
        self.velocity_flux = velocity_flux
        self.backend = get_backend(backend)
        self.pool = ScratchPool()
        self.kernels = get_vlasov_kernels(
            phase_grid.cdim, phase_grid.vdim, poly_order, family
        )
        self.num_basis = self.kernels.num_basis
        self.num_conf_basis = self.kernels.cfg_basis.num_basis
        self._base_aux = phase_grid.base_aux()
        self._base_aux["qm"] = self.charge / self.mass
        # working aux dict refreshed in place by field_aux (geometry symbols
        # plus views of the EM coefficients); the views are rebuilt only when
        # a different em array is passed — under in-place stepping the same
        # array arrives every stage, so they persist
        self._aux = dict(self._base_aux)
        self._aux_src: Optional[np.ndarray] = None
        # Streaming upwind weights per configuration direction: the sign of
        # the paired velocity coordinate at the cell center; 0.5 for cells
        # straddling v = 0 (central fallback).
        self._upwind_pos = []
        for j in range(phase_grid.cdim):
            w = phase_grid.velocity_center_array(j)
            pos = np.where(w > 0, 1.0, np.where(w < 0, 0.0, 0.5))
            self._upwind_pos.append(pos)
        # Every termset runs through a plan-cached GroupedOperator sharing
        # one scratch pool and backend: the field-coupled (acceleration)
        # kernels compile to batched dense products, the streaming kernels
        # keep their exact sparsity and gain in-place accumulation.  Kernels
        # consuming the same state are merged so each application makes one
        # pass: all volume kernels form a single operator, and the two face
        # kernels reading one trace state are row-stacked into a
        # double-height operator whose halves are the left-/right-cell
        # increments.
        cdim, vdim = phase_grid.cdim, phase_grid.vdim

        def _op(ts):
            return GroupedOperator(
                ts, cdim, vdim, backend=self.backend, pool=self.pool
            )

        self._vol_op = _op(
            merge_termsets(self.kernels.vol_stream + self.kernels.vol_accel)
        )
        self._surf_stream_ops = [
            {side: _op(ts) for side, ts in sides.items()}
            for sides in self.kernels.surf_stream
        ]
        # per velocity dim: operator for the left trace (stacked increments
        # to the face's left and right cells) and for the right trace, with
        # the central-flux 1/2 folded into the generated coefficients
        self._surf_accel_ops = [
            {
                "L": _op(
                    stack_termsets(
                        [sides[("L", "L")].scaled(0.5), sides[("R", "L")].scaled(0.5)]
                    )
                ),
                "R": _op(
                    stack_termsets(
                        [sides[("L", "R")].scaled(0.5), sides[("R", "R")].scaled(0.5)]
                    )
                ),
            }
            for sides in self.kernels.surf_accel
        ]

    # ------------------------------------------------------------------ #
    # aux symbol assembly
    # ------------------------------------------------------------------ #
    def field_aux(self, em: np.ndarray) -> Dict[str, object]:
        """Broadcastable field-coefficient symbols from the EM state.

        Parameters
        ----------
        em:
            EM modal coefficients, shape ``(>=6, Npc, *cfg_cells)`` ordered
            ``(Ex, Ey, Ez, Bx, By, Bz, ...)``.

        The returned dict is owned by the solver and refreshed in place on
        every call; the field entries are views into ``em``.
        """
        aux = self._aux
        if em is self._aux_src:
            return aux
        g = self.grid
        npc = self.num_conf_basis
        if em.shape[0] < 6 or em.shape[1] != npc:
            raise ValueError(
                f"EM state must be (>=6, {npc}, *cfg_cells); got {em.shape}"
            )
        for comp in range(3):
            for k in range(npc):
                aux[f"E{comp}_{k}"] = g.conf_coefficient_array(em[comp, k])
                aux[f"B{comp}_{k}"] = g.conf_coefficient_array(em[3 + comp, k])
        self._aux_src = em
        return aux

    # ------------------------------------------------------------------ #
    # RHS evaluation
    # ------------------------------------------------------------------ #
    def rhs(
        self,
        f: np.ndarray,
        em: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Evaluate ``df/dt`` for the collisionless Vlasov equation.

        Parameters
        ----------
        f:
            Distribution coefficients ``(Np, *cfg_cells, *vel_cells)``.
        em:
            EM coefficients ``(>=6, Npc, *cfg_cells)``.
        out:
            Optional output array (contents discarded and replaced).
        """
        g = self.grid
        if f.shape != (self.num_basis,) + g.cells:
            raise ValueError(
                f"f has shape {f.shape}, expected {(self.num_basis,) + g.cells}"
            )
        if out is None:
            out = np.empty_like(f)
        aux = self.field_aux(em)
        self._accumulate_volume(f, aux, out)
        self._accumulate_streaming_surfaces(f, aux, out)
        self._accumulate_acceleration_surfaces(f, aux, out)
        return out

    def _accumulate_volume(self, f, aux, out) -> None:
        # the volume operator owns the first write into out (no zero pass)
        self._vol_op.apply(f, aux, out, accumulate=False)

    def _accumulate_streaming_surfaces(self, f, aux, out) -> None:
        """Periodic, upwinded configuration-space face terms."""
        f_left = self.pool.get("solver.fl", f.shape)
        f_right = self.pool.get("solver.fr", f.shape)
        for j in range(self.grid.cdim):
            axis = 1 + j
            sides = self._surf_stream_ops[j]
            pos = self._upwind_pos[j]
            neg = 1.0 - pos
            # weighted left/right states at each face (f_right rolled to
            # align with the face's left cell)
            np.multiply(f, pos, out=f_left)
            _roll_mul(f, -1, axis, neg, out=f_right)
            # increments to the left cell of each face (aligned with f)
            sides[("L", "L")].apply(f_left, aux, out)
            sides[("L", "R")].apply(f_right, aux, out)
            # increments to the right cell of each face (shift back by one)
            buf = self.pool.get("solver.surfbuf", out.shape)
            sides[("R", "L")].apply(f_left, aux, buf, accumulate=False)
            sides[("R", "R")].apply(f_right, aux, buf)
            _add_rolled(buf, 1, axis, out)

    def _accumulate_acceleration_surfaces(self, f, aux, out) -> None:
        """Central-flux velocity-space face terms with zero-flux domain
        boundaries (interior faces only).  The face-trace slices feed the
        plans directly (strided gather); the flux 1/2 lives in the stacked
        kernel coefficients."""
        for j in range(self.grid.vdim):
            axis = 1 + self.grid.cdim + j
            n = f.shape[axis]
            if n < 2:
                continue
            sides = self._surf_accel_ops[j]
            sl_lo = _axis_slice(f.ndim, axis, slice(0, n - 1))
            sl_hi = _axis_slice(f.ndim, axis, slice(1, n))
            face_cells = f[sl_lo].shape[1:]
            npb = self.num_basis
            # the cell-major carry needs fully configuration-batched plans;
            # degenerate layouts (e.g. a single configuration cell, whose
            # field coefficients classify as scalars) take the stacked
            # phase-major path instead, as does the penalty flux (its sparse
            # face-mass corrections accumulate in phase-major layout)
            cellmajor = self.velocity_flux != "penalty" and all(
                sides[s].plan_fast(aux, face_cells).is_pure_cfg for s in "LR"
            )
            if not cellmajor:
                stacked = self.pool.get("solver.astack", (2 * npb,) + face_cells)
                sides["L"].apply(f[sl_lo], aux, stacked, accumulate=False)
                sides["R"].apply(f[sl_hi], aux, stacked)
                inc_left = stacked[:npb]
                inc_right = stacked[npb:]
                if self.velocity_flux == "penalty":
                    tau = self._penalty_speed(aux, j)
                    # flux correction -(tau/2)(f_R - f_L): weights +-tau/2
                    corr_l = (f[sl_lo] * (0.5 * tau))
                    corr_r = (f[sl_hi] * (-0.5 * tau))
                    for t_side, inc in (("L", inc_left), ("R", inc_right)):
                        self._face_mass(j)[(t_side, "L")].apply(corr_l, aux, inc)
                        self._face_mass(j)[(t_side, "R")].apply(corr_r, aux, inc)
                out[sl_lo] += inc_left
                out[sl_hi] += inc_right
                continue
            # cell-major carry: both trace applications land in one buffer
            # whose halves are scatter-added to the face's two cells — the
            # stacked result is never materialized in phase-major layout
            cdim = self.grid.cdim
            cfg_cells = face_cells[:cdim]
            ncfg = int(np.prod(cfg_cells)) if cfg_cells else 1
            nvel = int(np.prod(face_cells[cdim:]))
            outc = self.pool.get("solver.aoutc", (ncfg, 2 * npb, nvel))
            sides["L"].apply_cellmajor(f[sl_lo], aux, outc, accumulate=False)
            sides["R"].apply_cellmajor(f[sl_hi], aux, outc)
            inc = np.moveaxis(
                outc.reshape(cfg_cells + (2 * npb,) + face_cells[cdim:]), cdim, 0
            )
            out[sl_lo] += inc[:npb]
            out[sl_hi] += inc[npb:]

    # ------------------------------------------------------------------ #
    # penalty support (optional robustness flux)
    # ------------------------------------------------------------------ #
    def _face_mass(self, j: int):
        """Face 'mass' termsets for the penalty flux, generated lazily with a
        unit flux polynomial along velocity dim j."""
        cache = getattr(self, "_face_mass_cache", None)
        if cache is None:
            cache = {}
            self._face_mass_cache = cache
        if j not in cache:
            from ..cas.poly import Poly
            from ..kernels.generator import FluxSpec, FluxTerm, generate_surface_termsets

            dim = self.grid.cdim + j
            spec = FluxSpec(
                dim=dim,
                terms=(FluxTerm(sym=(), poly=Poly.one(self.grid.pdim)),),
            )
            cache[j] = generate_surface_termsets(self.kernels.phase_basis, spec)
        return cache[j]

    def _penalty_speed(self, aux, j: int) -> float:
        """Conservative scalar estimate of max |alpha_vj| for the penalty."""
        npc = self.num_conf_basis
        phi0 = self.kernels.cfg_basis.norm(0)
        e_mag = np.max(np.abs(aux[f"E{j}_0"])) * phi0
        vmax = max(
            (self.grid.max_velocity(d) for d in range(self.grid.vdim) if d != j),
            default=0.0,
        )
        b_mag = max(
            float(np.max(np.abs(aux[f"B{comp}_0"]))) * phi0 for comp in range(3)
        )
        return abs(self.charge / self.mass) * (e_mag + vmax * b_mag)

    # ------------------------------------------------------------------ #
    # CFL support
    # ------------------------------------------------------------------ #
    def max_frequency(self, em: np.ndarray) -> float:
        """CFL frequency: sum over directions of
        ``(2p+1) * max|alpha_d| / dx_d`` (Gkeyll's stability estimate)."""
        g = self.grid
        p = self.poly_order
        freq = 0.0
        for j in range(g.cdim):
            freq += (2 * p + 1) * g.max_velocity(j) / g.dx[j]
        phi0 = self.kernels.cfg_basis.norm(0)
        qm = abs(self.charge / self.mass)
        for j in range(g.vdim):
            e_mag = float(np.max(np.abs(em[j, 0]))) * phi0
            accel = e_mag
            for vj, bk, _sign in _CROSS_COMPONENTS[j]:
                if vj >= g.vdim:
                    continue
                b_mag = float(np.max(np.abs(em[3 + bk, 0]))) * phi0
                accel += g.max_velocity(vj) * b_mag
            dv = g.dx[g.cdim + j]
            freq += (2 * p + 1) * qm * accel / dv
        return freq


_CROSS_COMPONENTS = {
    0: ((1, 2, +1.0), (2, 1, -1.0)),
    1: ((2, 0, +1.0), (0, 2, -1.0)),
    2: ((0, 1, +1.0), (1, 0, -1.0)),
}


def _axis_slice(ndim: int, axis: int, sl: slice):
    out = [slice(None)] * ndim
    out[axis] = sl
    return tuple(out)


def _roll_mul(src: np.ndarray, shift: int, axis: int, weight, out: np.ndarray):
    """``out = roll(src, shift, axis) * weight`` without temporaries.

    ``weight`` must broadcast against ``src`` with size one along ``axis``
    (true for the velocity-dependent upwind weights rolled along a
    configuration axis).
    """
    n = src.shape[axis]
    shift %= n
    if shift == 0:
        np.multiply(src, weight, out=out)
        return out
    dst_head = _axis_slice(src.ndim, axis, slice(0, shift))
    dst_tail = _axis_slice(src.ndim, axis, slice(shift, n))
    src_head = _axis_slice(src.ndim, axis, slice(n - shift, n))
    src_tail = _axis_slice(src.ndim, axis, slice(0, n - shift))
    np.multiply(src[src_head], weight, out=out[dst_head])
    np.multiply(src[src_tail], weight, out=out[dst_tail])
    return out


def _add_rolled(src: np.ndarray, shift: int, axis: int, out: np.ndarray):
    """``out += roll(src, shift, axis)`` without temporaries."""
    n = src.shape[axis]
    shift %= n
    if shift == 0:
        out += src
        return out
    out[_axis_slice(src.ndim, axis, slice(0, shift))] += src[
        _axis_slice(src.ndim, axis, slice(n - shift, n))
    ]
    out[_axis_slice(src.ndim, axis, slice(shift, n))] += src[
        _axis_slice(src.ndim, axis, slice(0, n - shift))
    ]
    return out
