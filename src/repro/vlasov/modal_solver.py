"""The paper's algorithm: alias-free, matrix-free, quadrature-free modal DG
update of the Vlasov equation.

The right-hand side of the semi-discrete system (paper Eq. 12)

.. math::

   \\frac{df_l}{dt} = \\sum_{mn} C_{lmn} \\alpha_n f_m
                    + \\sum_m U_{lm} \\hat F_m

is evaluated by applying the CAS-generated sparse kernels
(:mod:`repro.kernels`) to every phase-space cell at once.  No quadrature is
performed at runtime, no mass/stiffness matrix exists (the orthonormal basis
makes the mass matrix the identity), and every integral entering the update
was computed exactly at generation time — eliminating the aliasing errors
that destabilize nodal kinetic schemes.

State is **cell-major** (:class:`~repro.engine.layout.StateLayout`):
distribution coefficients are ``(*cfg_cells, Np, *vel_cells)`` and the EM
state is ``(*cfg_cells, 8, Npc)``, so every batched per-cell product in the
precompiled-plan engine (:mod:`repro.engine`) reads and writes the state
directly — no transpose or ``ascontiguousarray`` pass anywhere in the
steady-state RHS.  The velocity-space surface terms exploit the layout too:
instead of gathering strided face slices, both face-trace operators are
applied to the full contiguous state and the (cheap) boundary-invalid cells
are simply excluded from the shifted scatter-adds.

Numerical fluxes follow Juno et al. (2018) / Gkeyll:

* configuration-space faces: upwind on the sign of the cell-center velocity
  (exact when velocity cells do not straddle ``v = 0``; cells that do
  straddle fall back to a central flux);
* velocity-space faces: central flux, which preserves the discrete
  :math:`J \\cdot E` energy-exchange identity (total particle+field energy
  conservation with a central-flux Maxwell solver); an optional local
  Lax-type penalty is available for extra robustness;
* velocity-space domain boundaries: zero flux.
"""

from __future__ import annotations

from typing import Dict, Optional, Union

import numpy as np

from ..engine.backend import ArrayBackend, get_backend
from ..engine.layout import StateLayout
from ..engine.pool import ScratchPool
from ..grid.phase import PhaseGrid
from ..kernels.grouped import GroupedOperator
from ..kernels.registry import get_vlasov_kernels
from ..kernels.termset import merge_termsets, stack_termsets

__all__ = ["VlasovModalSolver"]


class VlasovModalSolver:
    """Matrix-free modal DG discretization of the Vlasov equation for one
    species.

    Parameters
    ----------
    phase_grid:
        The configuration x velocity phase-space grid.
    poly_order, family:
        Basis selection (``tensor`` / ``serendipity`` / ``maximal-order``).
    charge, mass:
        Species charge and mass (normalized units).
    velocity_flux:
        ``"central"`` (energy conserving, the paper's choice) or
        ``"penalty"`` (adds a local Lax-type jump penalty).
    backend:
        Array-execution backend name or instance (default ``"numpy"``); see
        :mod:`repro.engine.backend`.
    """

    def __init__(
        self,
        phase_grid: PhaseGrid,
        poly_order: int,
        family: str = "serendipity",
        charge: float = -1.0,
        mass: float = 1.0,
        velocity_flux: str = "central",
        backend: Union[str, ArrayBackend, None] = None,
    ):
        if velocity_flux not in ("central", "penalty"):
            raise ValueError("velocity_flux must be 'central' or 'penalty'")
        self.grid = phase_grid
        self.poly_order = int(poly_order)
        self.family = family
        self.charge = float(charge)
        self.mass = float(mass)
        self.velocity_flux = velocity_flux
        self.backend = get_backend(backend)
        self.pool = ScratchPool()
        self.kernels = get_vlasov_kernels(
            phase_grid.cdim, phase_grid.vdim, poly_order, family
        )
        self.num_basis = self.kernels.num_basis
        self.num_conf_basis = self.kernels.cfg_basis.num_basis
        self.layout = StateLayout.for_grid(phase_grid, self.num_basis)
        self._base_aux = phase_grid.base_aux()
        self._base_aux["qm"] = self.charge / self.mass
        # working aux dict refreshed in place by field_aux (geometry symbols
        # plus views of the EM coefficients); the views are rebuilt only when
        # a different em array is passed — under in-place stepping the same
        # array arrives every stage, so they persist
        self._aux = dict(self._base_aux)
        self._aux_src: Optional[np.ndarray] = None
        # Streaming upwind weights per configuration direction: the sign of
        # the paired velocity coordinate at the cell center; 0.5 for cells
        # straddling v = 0 (central fallback).  ``_upwind_pos`` keeps the
        # aux-style cell-axis shape; ``_upwind_pos_b`` carries the inserted
        # basis axis for broadcasting against cell-major state.
        self._upwind_pos = []
        self._upwind_pos_b = []
        self._upwind_neg_b = []
        for j in range(phase_grid.cdim):
            w = phase_grid.velocity_center_array(j)
            pos = np.where(w > 0, 1.0, np.where(w < 0, 0.0, 0.5))
            self._upwind_pos.append(pos)
            self._upwind_pos_b.append(self.layout.bcast(pos))
            self._upwind_neg_b.append(self.layout.bcast(1.0 - pos))
        # Every termset runs through a plan-cached GroupedOperator sharing
        # one scratch pool and backend: the field-coupled (acceleration)
        # kernels compile to batched dense products, the streaming kernels
        # keep their exact sparsity and gain in-place accumulation.  Kernels
        # consuming the same state are merged so each application makes one
        # pass: all volume kernels form a single operator, and the two face
        # kernels reading one trace state are row-stacked into a
        # double-height operator whose halves are the left-/right-cell
        # increments.
        cdim, vdim = phase_grid.cdim, phase_grid.vdim

        def _op(ts):
            return GroupedOperator(
                ts, cdim, vdim, backend=self.backend, pool=self.pool
            )

        self._op = _op
        self._vol_op = _op(
            merge_termsets(self.kernels.vol_stream + self.kernels.vol_accel)
        )
        # streaming faces: the two kernels consuming one trace state are
        # row-stacked (same-symbol matrices merge), so each upwind-weighted
        # state is velocity-weighted and swept once; halves of the stacked
        # output are the face's left-cell (aligned) and right-cell (+1 roll)
        # increments.  The per-side operators stay available for the shard
        # blocks, whose ghost reads replace the rolls on decomposed axes.
        self._surf_stream_sides = [
            {side: _op(ts) for side, ts in sides.items()}
            for sides in self.kernels.surf_stream
        ]
        self._surf_stream_ops = [
            {
                "L": _op(stack_termsets([sides[("L", "L")], sides[("R", "L")]])),
                "R": _op(stack_termsets([sides[("L", "R")], sides[("R", "R")]])),
            }
            for sides in self.kernels.surf_stream
        ]
        # per velocity dim: operator for the left trace (stacked increments
        # to the face's left and right cells) and for the right trace, with
        # the central-flux 1/2 folded into the generated coefficients
        self._surf_accel_ops = [
            {
                "L": _op(
                    stack_termsets(
                        [sides[("L", "L")].scaled(0.5), sides[("R", "L")].scaled(0.5)]
                    )
                ),
                "R": _op(
                    stack_termsets(
                        [sides[("L", "R")].scaled(0.5), sides[("R", "R")].scaled(0.5)]
                    )
                ),
            }
            for sides in self.kernels.surf_accel
        ]

    # ------------------------------------------------------------------ #
    # aux symbol assembly
    # ------------------------------------------------------------------ #
    def field_aux(self, em: np.ndarray) -> Dict[str, object]:
        """Broadcastable field-coefficient symbols from the EM state.

        Parameters
        ----------
        em:
            EM modal coefficients, cell-major ``(*cfg_cells, >=6, Npc)``
            ordered ``(Ex, Ey, Ez, Bx, By, Bz, ...)`` on the component axis.

        The returned dict is owned by the solver and refreshed in place on
        every call; the field entries are views into ``em``.
        """
        aux = self._aux
        if em is self._aux_src:
            return aux
        g = self.grid
        npc = self.num_conf_basis
        if (
            em.ndim != g.cdim + 2
            or em.shape[: g.cdim] != g.conf.cells
            or em.shape[-2] < 6
            or em.shape[-1] != npc
        ):
            raise ValueError(
                f"EM state must be cell-major {g.conf.cells + ('>=6', npc)}; "
                f"got {em.shape}"
            )
        for comp in range(3):
            for k in range(npc):
                aux[f"E{comp}_{k}"] = g.conf_coefficient_array(em[..., comp, k])
                aux[f"B{comp}_{k}"] = g.conf_coefficient_array(em[..., 3 + comp, k])
        self._aux_src = em
        return aux

    # ------------------------------------------------------------------ #
    # RHS evaluation
    # ------------------------------------------------------------------ #
    def rhs(
        self,
        f: np.ndarray,
        em: np.ndarray,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Evaluate ``df/dt`` for the collisionless Vlasov equation.

        Parameters
        ----------
        f:
            Distribution coefficients, cell-major
            ``(*cfg_cells, Np, *vel_cells)``.
        em:
            EM coefficients, cell-major ``(*cfg_cells, >=6, Npc)``.
        out:
            Optional output array (contents discarded and replaced).
        """
        if f.shape != self.layout.shape:
            raise ValueError(
                f"f has shape {f.shape}, expected cell-major {self.layout.shape}"
            )
        if out is None:
            out = self.backend.empty(f.shape)
        aux = self.field_aux(em)
        # f is read-only for the rest of this evaluation: fused plans may
        # share its velocity-weighted copies across the operators below
        self.pool.mark_stable_state(f)
        self._accumulate_volume(f, aux, out)
        self._accumulate_streaming_surfaces(f, aux, out)
        self._accumulate_acceleration_surfaces(f, aux, out)
        return out

    def _accumulate_volume(self, f, aux, out) -> None:
        # the volume operator owns the first write into out (no zero pass)
        self._vol_op.apply(f, aux, out, accumulate=False)

    def _accumulate_streaming_surfaces(self, f, aux, out) -> None:
        """Periodic, upwinded configuration-space face terms.  Configuration
        axes lead in cell-major layout, so the rolled copies move contiguous
        slabs; the stacked per-trace operators compute both cell increments
        of every face in one weighted pass."""
        cdim = self.grid.cdim
        npb = self.num_basis
        ndim = f.ndim
        f_left = self.pool.get("solver.fl", f.shape)
        f_right = self.pool.get("solver.fr", f.shape)
        sbuf = self.pool.get(
            "solver.sstack", f.shape[:cdim] + (2 * npb,) + f.shape[cdim + 1 :]
        )
        half_a = _axis_slice(ndim, cdim, slice(0, npb))
        half_b = _axis_slice(ndim, cdim, slice(npb, 2 * npb))
        for j in range(self.grid.cdim):
            axis = j  # cfg axis j is array axis j in cell-major layout
            ops = self._surf_stream_ops[j]
            pos = self._upwind_pos_b[j]
            neg = self._upwind_neg_b[j]
            # weighted left/right states at each face (f_right rolled to
            # align with the face's left cell)
            np.multiply(f, pos, out=f_left)
            _roll_mul(f, -1, axis, neg, out=f_right)
            ops["L"].apply(f_left, aux, sbuf, accumulate=False)
            ops["R"].apply(f_right, aux, sbuf)
            # aligned half: increments to the face's left cell; rolled
            # half: increments to its right cell (shift back by one)
            out += sbuf[half_a]
            _add_rolled(sbuf[half_b], 1, axis, out)

    def _accumulate_acceleration_surfaces(self, f, aux, out) -> None:
        """Central-flux velocity-space face terms with zero-flux domain
        boundaries (interior faces only).

        The acceleration operators have no dependence on their own velocity
        direction, so both face-trace operators are applied to *full
        contiguous* states — batched products straight off the cell-major
        layout, no strided face gather.  The R trace consumes the state
        rolled one cell back along the face direction, which face-aligns it
        with the L trace: both accumulate into one stacked buffer whose
        halves are then the complete left-/right-cell increments of each
        interior face (entries at the rolled-over boundary face are simply
        never scattered — zero-flux boundaries).
        """
        cdim = self.grid.cdim
        npb = self.num_basis
        ndim = f.ndim
        stacked_shape = f.shape[:cdim] + (2 * npb,) + f.shape[cdim + 1 :]
        for j in range(self.grid.vdim):
            axis = cdim + 1 + j
            n = f.shape[axis]
            if n < 2:
                continue
            sides = self._surf_accel_ops[j]
            f_roll = self.pool.get("solver.accroll", f.shape)
            _roll_copy(f, -1, axis, f_roll)
            buf = self.pool.get("solver.accbuf", stacked_shape)
            # buf[i] = face i+1/2: L trace of cell i plus R trace of cell
            # i+1 (the rolled state), valid for i <= n-2
            sides["L"].apply(f, aux, buf, accumulate=False)
            sides["R"].apply(f_roll, aux, buf)
            lo, hi = slice(0, n - 1), slice(1, n)
            sl_lo = _axis_slice(ndim, axis, lo)
            sl_hi = _axis_slice(ndim, axis, hi)
            out[sl_lo] += buf[_half_slice(ndim, cdim, 0, npb, axis, lo)]
            out[sl_hi] += buf[_half_slice(ndim, cdim, npb, 2 * npb, axis, lo)]
            if self.velocity_flux == "penalty":
                self._accumulate_penalty(f, aux, out, j, axis, sl_lo, sl_hi)

    def _accumulate_penalty(self, f, aux, out, j, axis, sl_lo, sl_hi) -> None:
        """Local Lax-type penalty correction ``-(tau/2)(f_R - f_L)`` through
        the face 'mass' operators (sliced face states are re-weighted into
        pooled contiguous buffers; no layout copies)."""
        cdim = self.grid.cdim
        npb = self.num_basis
        n = f.shape[axis]
        tau = self._penalty_speed(aux, j)
        face_shape = f[sl_lo].shape
        corr_l = self.pool.get("solver.pcl", face_shape)
        corr_r = self.pool.get("solver.pcr", face_shape)
        np.multiply(f[sl_lo], 0.5 * tau, out=corr_l)
        np.multiply(f[sl_hi], -0.5 * tau, out=corr_r)
        pbuf = self.pool.get(
            "solver.pbuf", face_shape[:cdim] + (2 * npb,) + face_shape[cdim + 1 :]
        )
        pen = self._penalty_ops(j)
        pen["L"].apply(corr_l, aux, pbuf, accumulate=False)
        pen["R"].apply(corr_r, aux, pbuf)
        ndim = f.ndim
        full = slice(0, n - 1)
        out[sl_lo] += pbuf[_half_slice(ndim, cdim, 0, npb, axis, full)]
        out[sl_hi] += pbuf[_half_slice(ndim, cdim, npb, 2 * npb, axis, full)]

    # ------------------------------------------------------------------ #
    # penalty support (optional robustness flux)
    # ------------------------------------------------------------------ #
    def _face_mass(self, j: int):
        """Face 'mass' termsets for the penalty flux, generated lazily with a
        unit flux polynomial along velocity dim j."""
        cache = getattr(self, "_face_mass_cache", None)
        if cache is None:
            cache = {}
            self._face_mass_cache = cache
        if j not in cache:
            from ..cas.poly import Poly
            from ..kernels.generator import FluxSpec, FluxTerm, generate_surface_termsets

            dim = self.grid.cdim + j
            spec = FluxSpec(
                dim=dim,
                terms=(FluxTerm(sym=(), poly=Poly.one(self.grid.pdim)),),
            )
            cache[j] = generate_surface_termsets(self.kernels.phase_basis, spec)
        return cache[j]

    def _penalty_ops(self, j: int):
        """Stacked face-mass operators for the penalty flux: the L (R) trace
        operator computes both cell increments of its face in one pass."""
        cache = getattr(self, "_penalty_ops_cache", None)
        if cache is None:
            cache = {}
            self._penalty_ops_cache = cache
        if j not in cache:
            fm = self._face_mass(j)
            cache[j] = {
                "L": self._op(stack_termsets([fm[("L", "L")], fm[("R", "L")]])),
                "R": self._op(stack_termsets([fm[("L", "R")], fm[("R", "R")]])),
            }
        return cache[j]

    def _penalty_speed(self, aux, j: int) -> float:
        """Conservative scalar estimate of max |alpha_vj| for the penalty."""
        phi0 = self.kernels.cfg_basis.norm(0)
        e_mag = np.max(np.abs(aux[f"E{j}_0"])) * phi0
        vmax = max(
            (self.grid.max_velocity(d) for d in range(self.grid.vdim) if d != j),
            default=0.0,
        )
        b_mag = max(
            float(np.max(np.abs(aux[f"B{comp}_0"]))) * phi0 for comp in range(3)
        )
        return abs(self.charge / self.mass) * (e_mag + vmax * b_mag)

    # ------------------------------------------------------------------ #
    # CFL support
    # ------------------------------------------------------------------ #
    def max_frequency(self, em: np.ndarray) -> float:
        """CFL frequency: sum over directions of
        ``(2p+1) * max|alpha_d| / dx_d`` (Gkeyll's stability estimate)."""
        g = self.grid
        p = self.poly_order
        freq = 0.0
        for j in range(g.cdim):
            freq += (2 * p + 1) * g.max_velocity(j) / g.dx[j]
        phi0 = self.kernels.cfg_basis.norm(0)
        qm = abs(self.charge / self.mass)
        for j in range(g.vdim):
            e_mag = float(np.max(np.abs(em[..., j, 0]))) * phi0
            accel = e_mag
            for vj, bk, _sign in _CROSS_COMPONENTS[j]:
                if vj >= g.vdim:
                    continue
                b_mag = float(np.max(np.abs(em[..., 3 + bk, 0]))) * phi0
                accel += g.max_velocity(vj) * b_mag
            dv = g.dx[g.cdim + j]
            freq += (2 * p + 1) * qm * accel / dv
        return freq


_CROSS_COMPONENTS = {
    0: ((1, 2, +1.0), (2, 1, -1.0)),
    1: ((2, 0, +1.0), (0, 2, -1.0)),
    2: ((0, 1, +1.0), (1, 0, -1.0)),
}


def _axis_slice(ndim: int, axis: int, sl: slice):
    out = [slice(None)] * ndim
    out[axis] = sl
    return tuple(out)


def _half_slice(ndim: int, basis_axis: int, b0: int, b1: int, axis: int, sl: slice):
    """Combined index: basis-half ``[b0:b1]`` at the basis axis plus a cell
    slice along ``axis``."""
    out = [slice(None)] * ndim
    out[basis_axis] = slice(b0, b1)
    out[axis] = sl
    return tuple(out)


def _roll_copy(src: np.ndarray, shift: int, axis: int, out: np.ndarray):
    """``out = roll(src, shift, axis)`` without temporaries (two slab copies)."""
    n = src.shape[axis]
    shift %= n
    if shift == 0:
        np.copyto(out, src)
        return out
    np.copyto(
        out[_axis_slice(src.ndim, axis, slice(0, shift))],
        src[_axis_slice(src.ndim, axis, slice(n - shift, n))],
    )
    np.copyto(
        out[_axis_slice(src.ndim, axis, slice(shift, n))],
        src[_axis_slice(src.ndim, axis, slice(0, n - shift))],
    )
    return out


def _roll_mul(src: np.ndarray, shift: int, axis: int, weight, out: np.ndarray):
    """``out = roll(src, shift, axis) * weight`` without temporaries.

    ``weight`` must broadcast against ``src`` with size one along ``axis``
    (true for the velocity-dependent upwind weights rolled along a
    configuration axis).
    """
    n = src.shape[axis]
    shift %= n
    if shift == 0:
        np.multiply(src, weight, out=out)
        return out
    dst_head = _axis_slice(src.ndim, axis, slice(0, shift))
    dst_tail = _axis_slice(src.ndim, axis, slice(shift, n))
    src_head = _axis_slice(src.ndim, axis, slice(n - shift, n))
    src_tail = _axis_slice(src.ndim, axis, slice(0, n - shift))
    np.multiply(src[src_head], weight, out=out[dst_head])
    np.multiply(src[src_tail], weight, out=out[dst_tail])
    return out


def _add_rolled(src: np.ndarray, shift: int, axis: int, out: np.ndarray):
    """``out += roll(src, shift, axis)`` without temporaries."""
    n = src.shape[axis]
    shift %= n
    if shift == 0:
        out += src
        return out
    out[_axis_slice(src.ndim, axis, slice(0, shift))] += src[
        _axis_slice(src.ndim, axis, slice(n - shift, n))
    ]
    out[_axis_slice(src.ndim, axis, slice(shift, n))] += src[
        _axis_slice(src.ndim, axis, slice(0, n - shift))
    ]
    return out
