"""Vlasov solvers: the paper's modal algorithm and the quadrature baseline."""

from .modal_solver import VlasovModalSolver
from .quadrature_solver import VlasovQuadratureSolver

__all__ = ["VlasovModalSolver", "VlasovQuadratureSolver"]
