"""Alias-free *nodal/quadrature* Vlasov baseline (Juno et al. 2018).

This is the comparator of the paper's Table I: a DG scheme that eliminates
aliasing the expensive way — interpolate the state to an over-integrating
Gauss grid (``N_q >= (3p+2)/2`` points per direction, enough to integrate the
quadratically nonlinear terms exactly), evaluate the phase-space flux
pointwise, and project back with dense ``N_p x N_q`` matrices.  Dense BLAS
matrix products (NumPy's ``dgemm``) play the role the Eigen library plays in
the paper.

State is cell-major (``(*cfg_cells, Np, *vel_cells)``, EM
``(*cfg_cells, 8, Npc)``), so the interpolation/projection products batch
directly over the contiguous per-configuration-cell blocks — the same
zero-transpose discipline as the modal solver.  Quadrature values live on a
"node axis" in the basis-axis slot, which keeps every elementwise flux
operation a plain broadcast.

Because the quadrature is exact for every integrand, this solver and
:class:`~repro.vlasov.modal_solver.VlasovModalSolver` produce **identical**
right-hand sides to machine precision — the comparison between them isolates
*computational cost*, exactly as the paper's experiment does.  It implements
the same flux choices (cell-center-sign upwinding in configuration space,
central in velocity space, zero-flux velocity boundaries).
"""

from __future__ import annotations

from typing import Dict, List, Optional

import numpy as np

from ..basis.modal import ModalBasis, tensor_gauss_points
from ..engine.backend import ArrayBackend, get_backend
from ..engine.layout import StateLayout, insert_basis_axis
from ..engine.pool import ScratchPool
from ..grid.phase import PhaseGrid
from ..kernels.flops import alias_free_quadrature_points_1d

__all__ = ["VlasovQuadratureSolver"]


def _axis_slice(ndim: int, axis: int, sl: slice):
    out = [slice(None)] * ndim
    out[axis] = sl
    return tuple(out)


class VlasovQuadratureSolver:
    """Dense, quadrature-based, alias-free Vlasov DG solver (the baseline)."""

    def __init__(
        self,
        phase_grid: PhaseGrid,
        poly_order: int,
        family: str = "serendipity",
        charge: float = -1.0,
        mass: float = 1.0,
        quad_points_1d: Optional[int] = None,
        backend: "ArrayBackend | str | None" = None,
    ):
        self.grid = phase_grid
        self.poly_order = int(poly_order)
        self.family = family
        self.charge = float(charge)
        self.mass = float(mass)
        # interpolation/projection matrices are fixed at construction (the
        # quadrature analogue of a compiled plan); the backend and pool
        # cover the dense products and their scratch
        self.backend = get_backend(backend)
        self.pool = ScratchPool()
        pdim = phase_grid.pdim
        cdim = phase_grid.cdim
        self.basis = ModalBasis(pdim, poly_order, family)
        self.cfg_basis = ModalBasis(cdim, poly_order, family)
        self.num_basis = self.basis.num_basis
        self.num_conf_basis = self.cfg_basis.num_basis
        self.layout = StateLayout.for_grid(phase_grid, self.num_basis)
        self.nq1 = quad_points_1d or alias_free_quadrature_points_1d(poly_order)

        # --- volume quadrature data -------------------------------------
        pts, wts = tensor_gauss_points(self.nq1, pdim)
        self.vol_pts = pts                      # (Nqv, pdim)
        self.vol_wts = wts                      # (Nqv,)
        self.vol_interp = self.basis.eval_at(pts)            # (Np, Nqv)
        self.vol_interp_t = np.ascontiguousarray(self.vol_interp.T)
        self.vol_deriv = [
            self.basis.eval_deriv_at(pts, d) for d in range(pdim)
        ]
        self.cfg_vol_interp = self.cfg_basis.eval_at(pts[:, :cdim])  # (Npc, Nqv)

        # --- face quadrature data (per direction, per side) -------------
        self.face_pts: List[np.ndarray] = []
        self.face_wts: List[np.ndarray] = []
        self.face_interp: List[Dict[str, np.ndarray]] = []
        self.face_interp_t: List[Dict[str, np.ndarray]] = []
        self.cfg_face_interp: List[np.ndarray] = []
        for d in range(pdim):
            if pdim > 1:
                fpts, fwts = tensor_gauss_points(self.nq1, pdim - 1)
            else:
                fpts, fwts = np.zeros((1, 0)), np.ones(1)
            full_hi = np.insert(fpts, d, 1.0, axis=1)
            full_lo = np.insert(fpts, d, -1.0, axis=1)
            self.face_pts.append(fpts)
            self.face_wts.append(fwts)
            self.face_interp.append(
                {
                    # "L": trace of the left cell on its right face (xi_d=+1)
                    "L": self.basis.eval_at(full_hi),
                    # "R": trace of the right cell on its left face (xi_d=-1)
                    "R": self.basis.eval_at(full_lo),
                }
            )
            self.face_interp_t.append(
                {s: np.ascontiguousarray(m.T) for s, m in self.face_interp[-1].items()}
            )
            self.cfg_face_interp.append(self.cfg_basis.eval_at(full_hi[:, :cdim]))

        # streaming upwind weights (same rule as the modal solver), with the
        # node axis inserted at the basis-axis slot
        self._upwind_pos = []
        for j in range(cdim):
            w = phase_grid.velocity_center_array(j)
            pos = np.where(w > 0, 1.0, np.where(w < 0, 0.0, 0.5))
            self._upwind_pos.append(insert_basis_axis(pos, cdim))

    # ------------------------------------------------------------------ #
    # node-axis views
    # ------------------------------------------------------------------ #
    def _node_view(self, arr3: np.ndarray, naxis: int, vel_shape) -> np.ndarray:
        """View a ``(ncfg, naxis, nvel)`` batch as ``(*cfg, naxis, *vel)``."""
        return arr3.reshape(self.grid.conf.cells + (naxis,) + tuple(vel_shape))

    # ------------------------------------------------------------------ #
    # flux evaluation at reference points
    # ------------------------------------------------------------------ #
    def _alpha_at_points(self, d: int, pts: np.ndarray, cfg_interp: np.ndarray, em):
        """Phase-space flux component ``alpha_d`` at the given reference
        points, shaped to broadcast as ``(*cfg, Nq, *vel)`` (node axis in
        the basis-axis slot)."""
        g = self.grid
        cdim, vdim = g.cdim, g.vdim
        nq = pts.shape[0]
        qshape = (1,) * cdim + (nq,) + (1,) * vdim
        if d < cdim:  # streaming: alpha = v_d
            dv = cdim + d
            xi = pts[:, dv].reshape(qshape)
            w = insert_basis_axis(g.velocity_center_array(d), cdim)
            return w + 0.5 * g.dx[dv] * xi
        # acceleration: (q/m)(E_j + (v x B)_j)
        j = d - cdim
        qm = self.charge / self.mass

        def field_at_points(comp: int) -> np.ndarray:
            vals = np.einsum("kq,...k->...q", cfg_interp, em[..., comp, :])
            return vals.reshape(g.conf.cells + (nq,) + (1,) * vdim)

        alpha = field_at_points(j).copy()
        cross = {
            0: ((1, 5, +1.0), (2, 4, -1.0)),
            1: ((2, 3, +1.0), (0, 5, -1.0)),
            2: ((0, 4, +1.0), (1, 3, -1.0)),
        }
        for vj, bcomp, sign in cross[j]:
            if vj >= vdim:
                continue
            dvj = cdim + vj
            xi = pts[:, dvj].reshape(qshape)
            v = insert_basis_axis(g.velocity_center_array(vj), cdim) + 0.5 * g.dx[dvj] * xi
            alpha = alpha + sign * v * field_at_points(bcomp)
        return qm * alpha

    # ------------------------------------------------------------------ #
    def rhs(
        self, f: np.ndarray, em: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Evaluate ``df/dt`` via dense interpolate -> flux -> project
        (cell-major state in, cell-major state out)."""
        g = self.grid
        lay = self.layout
        if f.shape != lay.shape:
            raise ValueError(
                f"f has shape {f.shape}, expected cell-major {lay.shape}"
            )
        if out is None:
            out = np.zeros_like(f)
        else:
            out.fill(0.0)
        pdim = g.pdim
        cdim, vdim = g.cdim, g.vdim
        ncfg, nvel = lay.ncfg, lay.nvel
        rdx = [2.0 / dx for dx in g.dx]
        f3 = f.reshape(ncfg, self.num_basis, nvel)
        out3 = out.reshape(ncfg, self.num_basis, nvel)
        vel_cells = g.vel.cells

        # ---------------- volume ----------------------------------------
        # interpolate to quadrature points: one batched product over the
        # contiguous per-configuration-cell blocks
        nq = self.vol_pts.shape[0]
        fq3 = self.pool.get("quad.fq", (ncfg, nq, nvel))
        self.backend.batched_gemm(self.vol_interp_t, f3, out=fq3)
        fq = self._node_view(fq3, nq, vel_cells)
        wq = self.vol_wts.reshape((1,) * cdim + (-1,) + (1,) * vdim)
        flux3 = self.pool.get("quad.flux", (ncfg, nq, nvel))
        flux = self._node_view(flux3, nq, vel_cells)
        proj3 = self.pool.get("quad.proj", (ncfg, self.num_basis, nvel))
        for d in range(pdim):
            alpha = self._alpha_at_points(d, self.vol_pts, self.cfg_vol_interp, em)
            np.multiply(alpha, fq, out=flux)
            flux *= wq
            self.backend.batched_gemm(self.vol_deriv[d], flux3, out=proj3)
            proj3 *= rdx[d]
            out3 += proj3

        # ---------------- surfaces --------------------------------------
        for d in range(pdim):
            interp = self.face_interp[d]
            interp_t = self.face_interp_t[d]
            cfg_interp = self.cfg_face_interp[d]
            nqf = self.face_pts[d].shape[0]
            # face points of a face along d: xi_d fixed; alpha never depends
            # on xi_d, so either embedding gives the same flux values.
            full_pts = np.insert(self.face_pts[d], d, 1.0, axis=1)
            wqf = self.face_wts[d].reshape((1,) * cdim + (-1,) + (1,) * vdim)
            alpha = self._alpha_at_points(d, full_pts, cfg_interp, em)
            trl3 = self.pool.get("quad.trl", (ncfg, nqf, nvel))
            trr3 = self.pool.get("quad.trr", (ncfg, nqf, nvel))
            if d < cdim:
                axis = d  # configuration axes lead in cell-major layout
                # periodic config faces, upwind by cell-center velocity sign
                pos = self._upwind_pos[d]
                f_right_cells = np.roll(f, -1, axis=axis)
                self.backend.batched_gemm(interp_t["L"], f3, out=trl3)
                self.backend.batched_gemm(
                    interp_t["R"],
                    f_right_cells.reshape(ncfg, self.num_basis, nvel),
                    out=trr3,
                )
                trace_l = self._node_view(trl3, nqf, vel_cells)
                trace_r = self._node_view(trr3, nqf, vel_cells)
                fhat = wqf * alpha * (pos * trace_l + (1.0 - pos) * trace_r)
                fhat3 = fhat.reshape(ncfg, nqf, nvel)
                inc3 = self.pool.get("quad.inc", (ncfg, self.num_basis, nvel))
                self.backend.batched_gemm(interp["L"], fhat3, out=inc3)
                out3 -= rdx[d] * inc3
                self.backend.batched_gemm(interp["R"], fhat3, out=inc3)
                inc = self._node_view(inc3, self.num_basis, vel_cells)
                out += rdx[d] * np.roll(inc, 1, axis=axis)
            else:
                # interior velocity faces, central flux, zero-flux
                # boundaries: traces are per-cell quantities, so both are
                # computed on the full contiguous state and the boundary
                # cells are excluded from the face combination below
                axis = 1 + d  # basis axis shifts the velocity axes by one
                n = f.shape[axis]
                if n < 2:
                    continue
                self.backend.batched_gemm(interp_t["L"], f3, out=trl3)
                self.backend.batched_gemm(interp_t["R"], f3, out=trr3)
                trace_l = self._node_view(trl3, nqf, vel_cells)
                trace_r = self._node_view(trr3, nqf, vel_cells)
                sl_lo = _axis_slice(f.ndim, axis, slice(0, n - 1))
                sl_hi = _axis_slice(f.ndim, axis, slice(1, n))
                # fresh contiguous face-shaped product (alpha has no
                # dependence on this velocity direction, so no slicing)
                fhat = wqf * alpha * 0.5 * (trace_l[sl_lo] + trace_r[sl_hi])
                nvel_f = nvel // n * (n - 1)
                fhat3 = fhat.reshape(ncfg, nqf, nvel_f)
                inc3 = self.pool.get("quad.incf", (ncfg, self.num_basis, nvel_f))
                self.backend.batched_gemm(interp["L"], fhat3, out=inc3)
                inc = inc3.reshape(fhat.shape[:cdim] + (self.num_basis,) + fhat.shape[cdim + 1 :])
                out[sl_lo] -= rdx[d] * inc
                self.backend.batched_gemm(interp["R"], fhat3, out=inc3)
                out[sl_hi] += rdx[d] * inc
        return out

    def max_frequency(self, em: np.ndarray) -> float:
        """Same CFL estimate as the modal solver (delegates)."""
        from .modal_solver import VlasovModalSolver

        proxy = VlasovModalSolver.__new__(VlasovModalSolver)
        proxy.grid = self.grid
        proxy.poly_order = self.poly_order
        proxy.charge = self.charge
        proxy.mass = self.mass
        proxy.kernels = type("K", (), {"cfg_basis": self.cfg_basis})()
        return VlasovModalSolver.max_frequency(proxy, em)
