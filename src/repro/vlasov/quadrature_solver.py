"""Alias-free *nodal/quadrature* Vlasov baseline (Juno et al. 2018).

This is the comparator of the paper's Table I: a DG scheme that eliminates
aliasing the expensive way — interpolate the state to an over-integrating
Gauss grid (``N_q >= (3p+2)/2`` points per direction, enough to integrate the
quadratically nonlinear terms exactly), evaluate the phase-space flux
pointwise, and project back with dense ``N_p x N_q`` matrices.  Dense BLAS
matrix products (NumPy's ``dgemm``) play the role the Eigen library plays in
the paper.

Because the quadrature is exact for every integrand, this solver and
:class:`~repro.vlasov.modal_solver.VlasovModalSolver` produce **identical**
right-hand sides to machine precision — the comparison between them isolates
*computational cost*, exactly as the paper's experiment does.  It implements
the same flux choices (cell-center-sign upwinding in configuration space,
central in velocity space, zero-flux velocity boundaries).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..basis.modal import ModalBasis, tensor_gauss_points
from ..engine.backend import ArrayBackend, get_backend
from ..engine.pool import ScratchPool
from ..grid.phase import PhaseGrid
from ..kernels.flops import alias_free_quadrature_points_1d

__all__ = ["VlasovQuadratureSolver"]


def _axis_slice(ndim: int, axis: int, sl: slice):
    out = [slice(None)] * ndim
    out[axis] = sl
    return tuple(out)


class VlasovQuadratureSolver:
    """Dense, quadrature-based, alias-free Vlasov DG solver (the baseline)."""

    def __init__(
        self,
        phase_grid: PhaseGrid,
        poly_order: int,
        family: str = "serendipity",
        charge: float = -1.0,
        mass: float = 1.0,
        quad_points_1d: Optional[int] = None,
        backend: "ArrayBackend | str | None" = None,
    ):
        self.grid = phase_grid
        self.poly_order = int(poly_order)
        self.family = family
        self.charge = float(charge)
        self.mass = float(mass)
        # interpolation/projection matrices are fixed at construction (the
        # quadrature analogue of a compiled plan); the backend and pool
        # cover the dense products and their scratch
        self.backend = get_backend(backend)
        self.pool = ScratchPool()
        pdim = phase_grid.pdim
        cdim = phase_grid.cdim
        self.basis = ModalBasis(pdim, poly_order, family)
        self.cfg_basis = ModalBasis(cdim, poly_order, family)
        self.num_basis = self.basis.num_basis
        self.num_conf_basis = self.cfg_basis.num_basis
        self.nq1 = quad_points_1d or alias_free_quadrature_points_1d(poly_order)

        # --- volume quadrature data -------------------------------------
        pts, wts = tensor_gauss_points(self.nq1, pdim)
        self.vol_pts = pts                      # (Nqv, pdim)
        self.vol_wts = wts                      # (Nqv,)
        self.vol_interp = self.basis.eval_at(pts)            # (Np, Nqv)
        self.vol_deriv = [
            self.basis.eval_deriv_at(pts, d) for d in range(pdim)
        ]
        self.cfg_vol_interp = self.cfg_basis.eval_at(pts[:, :cdim])  # (Npc, Nqv)

        # --- face quadrature data (per direction, per side) -------------
        self.face_pts: List[np.ndarray] = []
        self.face_wts: List[np.ndarray] = []
        self.face_interp: List[Dict[str, np.ndarray]] = []
        self.cfg_face_interp: List[np.ndarray] = []
        for d in range(pdim):
            if pdim > 1:
                fpts, fwts = tensor_gauss_points(self.nq1, pdim - 1)
            else:
                fpts, fwts = np.zeros((1, 0)), np.ones(1)
            full_hi = np.insert(fpts, d, 1.0, axis=1)
            full_lo = np.insert(fpts, d, -1.0, axis=1)
            self.face_pts.append(fpts)
            self.face_wts.append(fwts)
            self.face_interp.append(
                {
                    # "L": trace of the left cell on its right face (xi_d=+1)
                    "L": self.basis.eval_at(full_hi),
                    # "R": trace of the right cell on its left face (xi_d=-1)
                    "R": self.basis.eval_at(full_lo),
                }
            )
            self.cfg_face_interp.append(self.cfg_basis.eval_at(full_hi[:, :cdim]))

        # streaming upwind weights (same rule as the modal solver)
        self._upwind_pos = []
        for j in range(cdim):
            w = phase_grid.velocity_center_array(j)
            self._upwind_pos.append(
                np.where(w > 0, 1.0, np.where(w < 0, 0.0, 0.5))
            )

    # ------------------------------------------------------------------ #
    # flux evaluation at reference points
    # ------------------------------------------------------------------ #
    def _alpha_at_points(
        self, d: int, pts: np.ndarray, cfg_interp: np.ndarray, em: np.ndarray
    ) -> np.ndarray:
        """Phase-space flux component ``alpha_d`` at the given reference
        points, shaped to broadcast as ``(Nq, *cells)``."""
        g = self.grid
        cdim, vdim = g.cdim, g.vdim
        nq = pts.shape[0]
        ones_cells = (1,) * g.pdim
        if d < cdim:  # streaming: alpha = v_d
            dv = cdim + d
            xi = pts[:, dv].reshape((nq,) + ones_cells)
            w = g.velocity_center_array(d)[None]
            return w + 0.5 * g.dx[dv] * xi
        # acceleration: (q/m)(E_j + (v x B)_j)
        j = d - cdim
        qm = self.charge / self.mass
        def field_at_points(comp: int) -> np.ndarray:
            vals = np.einsum("kq,k...->q...", cfg_interp, em[comp])
            return vals.reshape((nq,) + g.conf.cells + (1,) * vdim)

        alpha = field_at_points(j).copy()
        cross = {
            0: ((1, 5, +1.0), (2, 4, -1.0)),
            1: ((2, 3, +1.0), (0, 5, -1.0)),
            2: ((0, 4, +1.0), (1, 3, -1.0)),
        }
        for vj, bcomp, sign in cross[j]:
            if vj >= vdim:
                continue
            dvj = cdim + vj
            xi = pts[:, dvj].reshape((nq,) + ones_cells)
            v = g.velocity_center_array(vj)[None] + 0.5 * g.dx[dvj] * xi
            alpha = alpha + sign * v * field_at_points(bcomp)
        return qm * alpha

    # ------------------------------------------------------------------ #
    def rhs(
        self, f: np.ndarray, em: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Evaluate ``df/dt`` via dense interpolate -> flux -> project."""
        g = self.grid
        if out is None:
            out = np.zeros_like(f)
        else:
            out.fill(0.0)
        pdim = g.pdim
        rdx = [2.0 / dx for dx in g.dx]

        # ---------------- volume ----------------------------------------
        # interpolate to quadrature points via one pooled dense product
        nq = self.vol_pts.shape[0]
        fq = self.pool.get("quad.fq", (nq,) + g.cells)
        self.backend.gemm(
            self.vol_interp.T,
            f.reshape(self.num_basis, -1),
            out=fq.reshape(nq, -1),
        )
        wshape = (-1,) + (1,) * pdim
        wq = self.vol_wts.reshape(wshape)
        flux = self.pool.get("quad.flux", (nq,) + g.cells)
        proj = self.pool.get("quad.proj", (self.num_basis,) + g.cells)
        for d in range(pdim):
            alpha = self._alpha_at_points(d, self.vol_pts, self.cfg_vol_interp, em)
            np.multiply(alpha, fq, out=flux)
            flux *= wq
            self.backend.gemm(
                self.vol_deriv[d],
                flux.reshape(nq, -1),
                out=proj.reshape(self.num_basis, -1),
            )
            proj *= rdx[d]
            out += proj

        # ---------------- surfaces --------------------------------------
        for d in range(pdim):
            axis = 1 + d
            interp = self.face_interp[d]
            cfg_interp = self.cfg_face_interp[d]
            nqf = self.face_pts[d].shape[0]
            # face points of a face along d: xi_d fixed; alpha never depends
            # on xi_d, so either embedding gives the same flux values.
            full_pts = np.insert(self.face_pts[d], d, 1.0, axis=1)
            wqf = self.face_wts[d].reshape((nqf,) + (1,) * pdim)
            if d < g.cdim:
                # periodic config faces, upwind by cell-center velocity sign
                pos = self._upwind_pos[d][None]
                f_right_cells = np.roll(f, -1, axis=axis)
                trace_l = np.einsum("lq,l...->q...", interp["L"], f)
                trace_r = np.einsum("lq,l...->q...", interp["R"], f_right_cells)
                alpha = self._alpha_at_points(d, full_pts, cfg_interp, em)
                fhat = wqf * alpha * (pos * trace_l + (1.0 - pos) * trace_r)
                inc_l = -np.einsum("lq,q...->l...", interp["L"], fhat)
                inc_r = np.einsum("lq,q...->l...", interp["R"], fhat)
                out += rdx[d] * inc_l
                out += rdx[d] * np.roll(inc_r, 1, axis=axis)
            else:
                # interior velocity faces, central flux, zero-flux boundaries
                n = f.shape[axis]
                if n < 2:
                    continue
                sl_lo = _axis_slice(f.ndim, axis, slice(0, n - 1))
                sl_hi = _axis_slice(f.ndim, axis, slice(1, n))
                trace_l = np.einsum("lq,l...->q...", interp["L"], f[sl_lo])
                trace_r = np.einsum("lq,l...->q...", interp["R"], f[sl_hi])
                alpha = self._alpha_at_points(d, full_pts, cfg_interp, em)
                # alpha broadcast: slice its velocity axis if it varies there
                alpha_lo = alpha
                fhat = wqf * alpha_lo * 0.5 * (trace_l + trace_r)
                inc_l = -np.einsum("lq,q...->l...", interp["L"], fhat)
                inc_r = np.einsum("lq,q...->l...", interp["R"], fhat)
                out[sl_lo] += rdx[d] * inc_l
                out[sl_hi] += rdx[d] * inc_r
        return out

    def max_frequency(self, em: np.ndarray) -> float:
        """Same CFL estimate as the modal solver (delegates)."""
        from .modal_solver import VlasovModalSolver

        proxy = VlasovModalSolver.__new__(VlasovModalSolver)
        proxy.grid = self.grid
        proxy.poly_order = self.poly_order
        proxy.charge = self.charge
        proxy.mass = self.mass
        proxy.kernels = type("K", (), {"cfg_basis": self.cfg_basis})()
        return VlasovModalSolver.max_frequency(proxy, em)
