"""Checkpoint/restart I/O."""

from .checkpoint import (
    checkpoint_roundtrip_equal,
    load_checkpoint,
    restore_app,
    save_app,
    save_checkpoint,
)

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "save_app",
    "restore_app",
    "checkpoint_roundtrip_equal",
]
