"""Checkpoint/restart I/O."""

from .checkpoint import (
    CANONICAL_LAYOUT,
    checkpoint_roundtrip_equal,
    convert_checkpoint_layout,
    load_checkpoint,
    normalize_state_layout,
    restore_app,
    save_app,
    save_checkpoint,
)

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "save_app",
    "restore_app",
    "checkpoint_roundtrip_equal",
    "normalize_state_layout",
    "convert_checkpoint_layout",
    "CANONICAL_LAYOUT",
]
