"""Checkpoint/restart I/O (the ADIOS role in Gkeyll, via ``.npz``).

A kinetic checkpoint is the full set of species distribution functions plus
the EM field state and the simulation clock.  Files are self-describing:
array names mirror the App state keys, and scalar metadata is stored under a
``meta/`` prefix.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

__all__ = ["save_checkpoint", "load_checkpoint", "checkpoint_roundtrip_equal"]

PathLike = Union[str, Path]


def save_checkpoint(path: PathLike, state: Dict[str, np.ndarray], meta: Dict) -> None:
    """Write a checkpoint; ``meta`` must be JSON-serializable.

    State keys are stored losslessly: arrays go in under positional names
    (``state_0``, ``state_1``, ...) and the true keys travel in a JSON
    manifest, so keys containing ``/`` or ``__`` round-trip exactly.
    """
    path = Path(path)
    keys = list(state)
    payload = {f"state_{i}": state[k] for i, k in enumerate(keys)}
    payload["state_keys_json"] = np.frombuffer(
        json.dumps(keys).encode(), dtype=np.uint8
    )
    payload["meta_json"] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)


def load_checkpoint(path: PathLike):
    """Read back ``(state, meta)`` from :func:`save_checkpoint`.

    Checkpoints written before the key manifest existed (array names munged
    as ``state__<key with / replaced by __>``) still load, with the caveat
    that their keys containing literal ``__`` were never recoverable.
    """
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta_json"]).decode())
        state = {}
        if "state_keys_json" in data.files:
            keys = json.loads(bytes(data["state_keys_json"]).decode())
            for i, name in enumerate(keys):
                state[name] = data[f"state_{i}"]
        else:  # legacy munged-key format
            for key in data.files:
                if key == "meta_json":
                    continue
                name = key[len("state__"):].replace("__", "/")
                state[name] = data[key]
    return state, meta


def checkpoint_roundtrip_equal(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray]) -> bool:
    if set(a) != set(b):
        return False
    return all(np.array_equal(a[k], b[k]) for k in a)


def save_app(path: PathLike, app) -> None:
    """Checkpoint a :class:`~repro.apps.vlasov_maxwell.VlasovMaxwellApp`."""
    meta = {
        "time": app.time,
        "step_count": app.step_count,
        "poly_order": app.poly_order,
        "family": app.family,
        "scheme": app.scheme,
        "species": [s.name for s in app.species],
    }
    save_checkpoint(path, app.state(), meta)


def restore_app(path: PathLike, app) -> Dict:
    """Restore App state in place; returns the checkpoint metadata."""
    state, meta = load_checkpoint(path)
    app.set_state({k: np.array(v) for k, v in state.items()})
    app.time = float(meta["time"])
    app.step_count = int(meta["step_count"])
    return meta
