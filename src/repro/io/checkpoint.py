"""Checkpoint/restart I/O (the ADIOS role in Gkeyll, via ``.npz``).

A kinetic checkpoint is the full set of species distribution functions plus
the EM field state and the simulation clock.  Files are self-describing:
array names mirror the App state keys, and scalar metadata is stored under a
``meta/`` prefix.

Layout compatibility: checkpoints written since the cell-major refactor tag
``meta["layout"] = "cell-major"``; files written before it (no tag, or an
explicit ``"mode-major"``) hold mode-major arrays and are converted
transparently — element-exact, values unchanged — on load via
:func:`normalize_state_layout`.  :func:`convert_checkpoint_layout` rewrites
a file in either direction, so new checkpoints can also be handed back to
pre-refactor tooling.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Union

import numpy as np

from ..engine.layout import (
    conf_to_cell_major,
    conf_to_mode_major,
    phase_to_cell_major,
    phase_to_mode_major,
)

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "checkpoint_roundtrip_equal",
    "normalize_state_layout",
    "convert_checkpoint_layout",
    "CANONICAL_LAYOUT",
]

PathLike = Union[str, Path]

CANONICAL_LAYOUT = "cell-major"
LEGACY_LAYOUT = "mode-major"


def save_checkpoint(path: PathLike, state: Dict[str, np.ndarray], meta: Dict) -> None:
    """Write a checkpoint; ``meta`` must be JSON-serializable.

    State keys are stored losslessly: arrays go in under positional names
    (``state_0``, ``state_1``, ...) and the true keys travel in a JSON
    manifest, so keys containing ``/`` or ``__`` round-trip exactly.  The
    state layout is recorded under ``meta["layout"]`` (defaulting to the
    canonical cell-major layout).
    """
    path = Path(path)
    meta = dict(meta)
    meta.setdefault("layout", CANONICAL_LAYOUT)
    keys = list(state)
    payload = {f"state_{i}": state[k] for i, k in enumerate(keys)}
    payload["state_keys_json"] = np.frombuffer(
        json.dumps(keys).encode(), dtype=np.uint8
    )
    payload["meta_json"] = np.frombuffer(
        json.dumps(meta, sort_keys=True).encode(), dtype=np.uint8
    )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **payload)


def load_checkpoint(path: PathLike):
    """Read back ``(state, meta)`` from :func:`save_checkpoint`.

    Checkpoints written before the key manifest existed (array names munged
    as ``state__<key with / replaced by __>``) still load, with the caveat
    that their keys containing literal ``__`` were never recoverable.
    Arrays are returned in the layout named by ``meta.get("layout")``
    (missing = legacy mode-major); app-level loaders call
    :func:`normalize_state_layout` to reach the canonical layout.
    """
    with np.load(Path(path)) as data:
        meta = json.loads(bytes(data["meta_json"]).decode())
        state = {}
        if "state_keys_json" in data.files:
            keys = json.loads(bytes(data["state_keys_json"]).decode())
            for i, name in enumerate(keys):
                state[name] = data[f"state_{i}"]
        else:  # legacy munged-key format
            for key in data.files:
                if key == "meta_json":
                    continue
                name = key[len("state__"):].replace("__", "/")
                state[name] = data[key]
    return state, meta


def checkpoint_roundtrip_equal(a: Dict[str, np.ndarray], b: Dict[str, np.ndarray]) -> bool:
    if set(a) != set(b):
        return False
    return all(np.array_equal(a[k], b[k]) for k in a)


# --------------------------------------------------------------------- #
# layout conversion
# --------------------------------------------------------------------- #
def _convert_state(state: Dict[str, np.ndarray], cdim: int, to_cell_major: bool):
    """Convert app state arrays between layouts (element-exact transposes).

    Keys: ``f/<species>`` are phase-space (``Np`` first in mode-major, at
    axis ``cdim`` in cell-major); ``em`` has two leading (component,
    coefficient) axes in mode-major that trail in cell-major; anything else
    (history series, scalars) passes through untouched.
    """
    out: Dict[str, np.ndarray] = {}
    for key, arr in state.items():
        arr = np.asarray(arr)
        if key.startswith("f/"):
            out[key] = (
                phase_to_cell_major(arr, cdim)
                if to_cell_major
                else phase_to_mode_major(arr, cdim)
            )
        elif key == "em":
            out[key] = (
                conf_to_cell_major(arr, cdim, lead=2)
                if to_cell_major
                else conf_to_mode_major(arr, cdim, lead=2)
            )
        else:
            out[key] = arr
    return out


def normalize_state_layout(
    state: Dict[str, np.ndarray], meta: Dict, cdim: int
) -> Dict[str, np.ndarray]:
    """Return ``state`` in the canonical cell-major layout, converting
    legacy mode-major checkpoints (missing or non-canonical ``layout`` tag)
    element-exactly."""
    layout = meta.get("layout", LEGACY_LAYOUT)
    if layout == CANONICAL_LAYOUT:
        return {k: np.asarray(v) for k, v in state.items()}
    if layout != LEGACY_LAYOUT:
        raise ValueError(f"unknown checkpoint layout {layout!r}")
    return _convert_state(state, cdim, to_cell_major=True)


def convert_checkpoint_layout(
    src: PathLike, dst: PathLike, cdim: int, to: str = CANONICAL_LAYOUT
) -> None:
    """Rewrite checkpoint ``src`` as ``dst`` in layout ``to`` (either
    direction; values are element-exact under round-trip)."""
    if to not in (CANONICAL_LAYOUT, LEGACY_LAYOUT):
        raise ValueError(f"unknown target layout {to!r}")
    state, meta = load_checkpoint(src)
    have = meta.get("layout", LEGACY_LAYOUT)
    if have != to:
        state = _convert_state(state, cdim, to_cell_major=(to == CANONICAL_LAYOUT))
    meta = dict(meta)
    meta["layout"] = to  # explicit tag survives save_checkpoint's setdefault
    save_checkpoint(dst, state, meta)


# --------------------------------------------------------------------- #
# model-level helpers
# --------------------------------------------------------------------- #
def save_app(path: PathLike, app) -> None:
    """Checkpoint a :class:`~repro.systems.system.System` (or any Model
    exposing the discretization attributes recorded below)."""
    meta = {
        "time": app.time,
        "step_count": app.step_count,
        "poly_order": app.poly_order,
        "family": app.family,
        "scheme": app.scheme,
        "species": [s.name for s in app.species],
        "layout": CANONICAL_LAYOUT,
    }
    save_checkpoint(path, app.state(), meta)


def restore_app(path: PathLike, app) -> Dict:
    """Restore Model state in place through the protocol
    (``set_state``/``time``/``step_count``), converting legacy mode-major
    checkpoints transparently; returns the checkpoint metadata."""
    state, meta = load_checkpoint(path)
    state = normalize_state_layout(state, meta, app.conf_grid.ndim)
    app.set_state({k: np.array(v) for k, v in state.items()})
    app.time = float(meta["time"])
    app.step_count = int(meta["step_count"])
    return meta
