"""L2 projection of callables onto the modal DG representation.

Initial conditions enter the simulation through a per-cell Gauss–Legendre
projection.  (This is the one place quadrature legitimately appears: it
approximates integrals of *non-polynomial* user data, not of the scheme's
own nonlinear terms, so it has no bearing on the alias-free property of the
update itself.)
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .basis.modal import ModalBasis, tensor_gauss_points
from .grid.cartesian import Grid
from .grid.phase import PhaseGrid

__all__ = ["project_on_grid", "project_conf_function", "project_phase_function"]


def project_on_grid(
    fn: Callable[..., np.ndarray],
    grid: Grid,
    basis: ModalBasis,
    quad_order: Optional[int] = None,
) -> np.ndarray:
    """Project ``fn(x0, x1, ...)`` onto every cell of a grid.

    Parameters
    ----------
    fn:
        Vectorized callable of ``grid.ndim`` coordinate arrays.
    grid, basis:
        Target discretization (``basis.ndim == grid.ndim``).
    quad_order:
        Gauss points per dimension (default ``p + 3``).

    Returns
    -------
    Coefficient array of shape ``(num_basis, *grid.cells)``.
    """
    if basis.ndim != grid.ndim:
        raise ValueError("basis/grid dimensionality mismatch")
    nq = quad_order if quad_order is not None else basis.poly_order + 3
    pts, wts = tensor_gauss_points(nq, grid.ndim)
    vander = basis.eval_at(pts)  # (Np, Nq)
    centers = grid.meshgrid_centers()
    half_dx = [0.5 * dx for dx in grid.dx]
    out = np.zeros((basis.num_basis,) + grid.cells)
    for q in range(pts.shape[0]):
        coords = [
            centers[d] + half_dx[d] * pts[q, d] for d in range(grid.ndim)
        ]
        vals = np.asarray(fn(*coords), dtype=float)
        if vals.shape != grid.cells:
            vals = np.broadcast_to(vals, grid.cells)
        out += wts[q] * vander[:, q].reshape((-1,) + (1,) * grid.ndim) * vals
    return out


def project_conf_function(
    fn: Callable[..., np.ndarray],
    grid: Grid,
    basis: ModalBasis,
    quad_order: Optional[int] = None,
) -> np.ndarray:
    """Alias of :func:`project_on_grid` for configuration-space fields."""
    return project_on_grid(fn, grid, basis, quad_order)


def project_phase_function(
    fn: Callable[..., np.ndarray],
    phase_grid: PhaseGrid,
    basis: ModalBasis,
    quad_order: Optional[int] = None,
) -> np.ndarray:
    """Project a phase-space function ``fn(x..., v...)`` onto the phase basis."""
    full_grid = phase_grid.conf.extend(phase_grid.vel)
    return project_on_grid(fn, full_grid, basis, quad_order)
