"""L2 projection of callables onto the modal DG representation.

Initial conditions enter the simulation through a per-cell Gauss–Legendre
projection.  (This is the one place quadrature legitimately appears: it
approximates integrals of *non-polynomial* user data, not of the scheme's
own nonlinear terms, so it has no bearing on the alias-free property of the
update itself.)
"""

from __future__ import annotations

from typing import Callable, Optional

import numpy as np

from .basis.modal import ModalBasis, tensor_gauss_points
from .grid.cartesian import Grid
from .grid.phase import PhaseGrid

__all__ = ["project_on_grid", "project_conf_function", "project_phase_function"]


def project_on_grid(
    fn: Callable[..., np.ndarray],
    grid: Grid,
    basis: ModalBasis,
    quad_order: Optional[int] = None,
    basis_axis: int = 0,
) -> np.ndarray:
    """Project ``fn(x0, x1, ...)`` onto every cell of a grid.

    Parameters
    ----------
    fn:
        Vectorized callable of ``grid.ndim`` coordinate arrays.
    grid, basis:
        Target discretization (``basis.ndim == grid.ndim``).
    quad_order:
        Gauss points per dimension (default ``p + 3``).
    basis_axis:
        Position of the coefficient axis in the output (0 = mode-major
        ``(Np, *cells)``; the cell-major wrappers below place it after the
        configuration cell axes).

    Returns
    -------
    Coefficient array with ``num_basis`` at ``basis_axis`` among the cell
    axes.
    """
    if basis.ndim != grid.ndim:
        raise ValueError("basis/grid dimensionality mismatch")
    nq = quad_order if quad_order is not None else basis.poly_order + 3
    pts, wts = tensor_gauss_points(nq, grid.ndim)
    vander = basis.eval_at(pts)  # (Np, Nq)
    centers = grid.meshgrid_centers()
    half_dx = [0.5 * dx for dx in grid.dx]
    ba = int(basis_axis)
    cells = grid.cells
    out = np.zeros(cells[:ba] + (basis.num_basis,) + cells[ba:])
    vshape = (1,) * ba + (-1,) + (1,) * (grid.ndim - ba)
    for q in range(pts.shape[0]):
        coords = [
            centers[d] + half_dx[d] * pts[q, d] for d in range(grid.ndim)
        ]
        vals = np.asarray(fn(*coords), dtype=float)
        if vals.shape != cells:
            vals = np.broadcast_to(vals, cells)
        vals_b = vals.reshape(cells[:ba] + (1,) + cells[ba:])
        out += wts[q] * vander[:, q].reshape(vshape) * vals_b
    return out


def project_conf_function(
    fn: Callable[..., np.ndarray],
    grid: Grid,
    basis: ModalBasis,
    quad_order: Optional[int] = None,
) -> np.ndarray:
    """Cell-major configuration-space projection ``(*cells, Npc)``."""
    return project_on_grid(fn, grid, basis, quad_order, basis_axis=grid.ndim)


def project_phase_function(
    fn: Callable[..., np.ndarray],
    phase_grid: PhaseGrid,
    basis: ModalBasis,
    quad_order: Optional[int] = None,
) -> np.ndarray:
    """Project a phase-space function ``fn(x..., v...)`` onto the phase
    basis, cell-major: ``(*cfg_cells, Np, *vel_cells)``."""
    full_grid = phase_grid.conf.extend(phase_grid.vel)
    return project_on_grid(
        fn, full_grid, basis, quad_order, basis_axis=phase_grid.cdim
    )
