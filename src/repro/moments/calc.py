"""Velocity moments of the distribution function.

Moments couple the kinetic equation to the field equations: the current
density (first moment) enters Ampère's law, and the 0th/2nd moments define
density and particle energy — the quantity whose exact evolution (paper
Eq. 9) motivates the alias-free construction.

Like the update kernels, moment kernels are CAS-generated: the velocity
integral of each basis function against 1, ``v_d``, ``|v|^2`` is evaluated
exactly and stored sparsely; runtime work is a sparse contraction plus a
reduction over velocity cells.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..engine.pool import ScratchPool
from ..grid.phase import PhaseGrid
from ..kernels.grouped import GroupedOperator
from ..kernels.vlasov import VlasovKernels

__all__ = ["MomentCalculator", "integrate_conf_field"]


class MomentCalculator:
    """Computes configuration-space modal coefficients of velocity moments.

    Moment kernels execute through the same plan-cached engine as the update
    kernels (in-place sparse accumulation, pooled scratch), so the current
    coupling in the field equations adds no per-step allocation of
    phase-space size.

    Parameters
    ----------
    phase_grid:
        The phase-space grid of the species.
    kernels:
        Its generated kernel bundle (provides the moment termsets).
    pool:
        Optional shared scratch pool (one is created when omitted).
    """

    def __init__(
        self,
        phase_grid: PhaseGrid,
        kernels: VlasovKernels,
        pool: Optional[ScratchPool] = None,
    ):
        self.grid = phase_grid
        self.kernels = kernels
        self.num_conf_basis = kernels.cfg_basis.num_basis
        self.pool = pool if pool is not None else ScratchPool()
        self._aux: Dict[str, object] = phase_grid.base_aux()
        self._aux["vjac"] = float(
            np.prod([0.5 * dv for dv in phase_grid.vel.dx])
        )
        # cell-major layout: velocity cell axes trail the basis axis
        self._vel_axes = tuple(
            range(1 + phase_grid.cdim, 1 + phase_grid.pdim)
        )
        self._full_shape = (
            phase_grid.conf.cells + (self.num_conf_basis,) + phase_grid.vel.cells
        )
        self._ops = {
            name: GroupedOperator(ts, phase_grid.cdim, phase_grid.vdim, pool=self.pool)
            for name, ts in kernels.moments.items()
        }

    def available(self):
        return sorted(self.kernels.moments)

    def compute(
        self, name: str, f: np.ndarray, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Return moment ``name`` as cell-major ``(*cfg_cells, Npc)``
        coefficients.

        ``name`` is one of ``M0`` (density), ``M1x``/``M1y``/``M1z``
        (momentum density / charge-free current), ``M2`` (:math:`\\int |v|^2 f`).
        ``out``, when given, receives the result (contents discarded).
        """
        try:
            op = self._ops[name]
        except KeyError as exc:
            raise KeyError(
                f"moment {name!r} not generated; available: {self.available()}"
            ) from exc
        full = self.pool.get("moments.full", self._full_shape)
        op.apply(f, self._aux, full, accumulate=False)
        return np.sum(full, axis=self._vel_axes, out=out)

    def current_density(
        self, f: np.ndarray, charge: float, out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Species current ``q * (M1x, M1y, M1z)`` as cell-major
        ``(*cfg, 3, Npc)``; missing velocity components are zero.  ``out``,
        when given, receives the result (contents discarded)."""
        if out is None:
            out = np.zeros(self.grid.conf.cells + (3, self.num_conf_basis))
        elif self.grid.vdim < 3:
            out.fill(0.0)
        for d in range(self.grid.vdim):
            self.compute(f"M1{'xyz'[d]}", f, out=out[..., d, :])
            out[..., d, :] *= charge
        return out

    def charge_density(self, f: np.ndarray, charge: float) -> np.ndarray:
        return charge * self.compute("M0", f)

    def particle_energy(self, f: np.ndarray, mass: float) -> float:
        """Total kinetic energy ``(m/2) * int |v|^2 f dz`` (a scalar)."""
        m2 = self.compute("M2", f)
        return 0.5 * mass * integrate_conf_field(m2, self.grid)

    def number(self, f: np.ndarray) -> float:
        """Total particle number ``int f dz``."""
        m0 = self.compute("M0", f)
        return integrate_conf_field(m0, self.grid)


def integrate_conf_field(coeffs: np.ndarray, phase_grid: PhaseGrid) -> float:
    """Integrate a configuration-space DG field (cell-major
    ``(*cfg_cells, Npc)``) over the domain.

    Only the constant mode contributes:
    ``int_cell phi_0 dx = (prod dx/2) * sqrt(2)^cdim``.
    """
    cdim = phase_grid.cdim
    jac = float(np.prod([0.5 * dx for dx in phase_grid.conf.dx]))
    weight = float(np.sqrt(2.0) ** cdim)
    return float(coeffs[..., 0].sum() * jac * weight)
