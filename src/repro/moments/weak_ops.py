"""Weak (modal, alias-free) binary operations on DG fields.

Computing flow velocity ``u = M1/M0`` or thermal speed from moments requires
*dividing* DG fields.  Pointwise division at nodes would reintroduce exactly
the aliasing the scheme eliminates, so — following Gkeyll — division is done
weakly: find ``u`` such that the L2 projection of ``M0 * u`` equals ``M1``.
With the exact triple-product tensor
:math:`T_{lmk} = \\int \\phi_l \\phi_m \\phi_k d\\xi`
this is a small dense solve per cell; multiplication is the corresponding
contraction.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
import numpy as np

from ..basis.modal import ModalBasis
from ..cas.integrate import legendre_product_integral_1d

__all__ = ["triple_product_tensor", "weak_multiply", "weak_divide"]


@lru_cache(maxsize=None)
def _triple_product_cached(
    ndim: int, poly_order: int, family: str
) -> np.ndarray:
    basis = ModalBasis(ndim, poly_order, family)
    n = basis.num_basis
    out = np.zeros((n, n, n))
    for l in range(n):
        al = basis.indices[l]
        for m in range(l, n):
            am = basis.indices[m]
            for k in range(n):
                ak = basis.indices[k]
                val = Fraction(1)
                for d in range(ndim):
                    fac = legendre_product_integral_1d(
                        (al[d], am[d], ak[d]), (False, False, False), 0
                    )
                    if fac == 0:
                        val = Fraction(0)
                        break
                    val *= fac
                if val != 0:
                    entry = (
                        float(val) * basis.norm(l) * basis.norm(m) * basis.norm(k)
                    )
                    out[l, m, k] = entry
                    out[m, l, k] = entry
    return out


def triple_product_tensor(basis: ModalBasis) -> np.ndarray:
    """Exact :math:`T_{lmk} = \\int w_l w_m w_k d\\xi` (memoized)."""
    return _triple_product_cached(basis.ndim, basis.poly_order, basis.family)


def weak_multiply(a: np.ndarray, b: np.ndarray, basis: ModalBasis) -> np.ndarray:
    """Modal coefficients of the L2 projection of ``a * b``.

    ``a``, ``b``: cell-major coefficient arrays ``(*cells, Np)``.
    """
    t = triple_product_tensor(basis)
    return np.einsum("lmk,...m,...k->...l", t, a, b)


def weak_divide(num: np.ndarray, den: np.ndarray, basis: ModalBasis) -> np.ndarray:
    """Weak division: solve ``Proj(den * u) = num`` for ``u`` cell by cell
    (cell-major ``(*cells, Np)`` operands — the per-cell solve batches
    directly, no transpose).

    Raises ``numpy.linalg.LinAlgError`` if the denominator is (numerically)
    singular in some cell — e.g. a vanishing density.
    """
    t = triple_product_tensor(basis)
    # A[..., l, m] = sum_k T_{lmk} den_k  per cell
    a = np.einsum("lmk,...k->...lm", t, den)
    sol = np.linalg.solve(a, num[..., None])[..., 0]
    return sol
