"""Velocity moments and field-coupling quantities."""

from .calc import MomentCalculator, integrate_conf_field

__all__ = ["MomentCalculator", "integrate_conf_field"]
