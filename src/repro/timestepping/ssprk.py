"""Strong-stability-preserving Runge–Kutta steppers.

The paper integrates the semi-discrete system with the three-stage,
third-order SSP-RK method (Shu–Osher form); forward Euler and SSP-RK2 are
provided for convergence studies and cost accounting.  Steppers operate on
*states*: flat dictionaries mapping names to NumPy arrays, combined
elementwise — the ``state()`` dicts of the :class:`repro.systems.Model`
protocol — which keeps multi-species + field systems in lockstep through
the stages exactly as Gkeyll's App system does.

Two stepping interfaces are provided:

* :meth:`step` — functional: returns a fresh state dict (allocates).
* :meth:`step_inplace` — buffer-donating: mutates the state arrays using
  persistent per-stepper workspaces (a state snapshot and one stage-RHS
  buffer set, allocated on first use), and evaluates the RHS through a
  ``rhs_into(state, out_state)`` callback that fills donated arrays.  A
  steady-state SSP-RK3 step then performs zero avoidable allocations —
  every stage combination is an in-place axpy.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from typing import Callable, Dict, Optional

import numpy as np

from ..obs import OBS as _OBS
from ..obs.metrics import SLOT as _OBS_SLOT

State = Dict[str, np.ndarray]
RhsFn = Callable[[State], State]
RhsIntoFn = Callable[[State, State], None]

__all__ = [
    "ForwardEuler",
    "SSPRK2",
    "SSPRK3",
    "get_stepper",
    "available_steppers",
    "state_axpy",
]


def state_axpy(coeffs_states) -> State:
    """Linear combination of states: ``sum_i a_i * s_i``."""
    out: State = {}
    for a, s in coeffs_states:
        for k, v in s.items():
            if k in out:
                out[k] = out[k] + a * v
            else:
                out[k] = a * v
    return out


class _WorkspaceMixin:
    """Persistent stage buffers keyed by the state's names and shapes."""

    _workspaces: Optional[Dict[str, State]] = None

    def _work(self, name: str, state: State) -> State:
        if self._workspaces is None:
            self._workspaces = {}
        ws = self._workspaces.get(name)
        if ws is None or set(ws) != set(state) or any(
            ws[k].shape != state[k].shape for k in state
        ):
            ws = {k: np.empty_like(v) for k, v in state.items()}
            self._workspaces[name] = ws
        return ws


def _snapshot(state: State, into: State) -> None:
    for k, v in state.items():
        np.copyto(into[k], v)


def _axpy_inplace(state: State, dt: float, k: State) -> None:
    """``state += dt * k`` reusing ``k`` as scratch (k is consumed)."""
    for key, arr in state.items():
        kk = k[key]
        kk *= dt
        arr += kk


_S_RK_STAGES = _OBS_SLOT["rk_stages"]


def _stage_inplace(state: State, rhs_into: RhsIntoFn, dt: float, k: State) -> None:
    """One forward-Euler stage, ``state += dt * rhs(state)`` — the repeated
    unit of every Shu–Osher stepper, and the observability ``rk_stage``
    span (one flag check when off)."""
    if _OBS.on:
        t0 = _perf_counter()
        rhs_into(state, k)
        _axpy_inplace(state, dt, k)
        _OBS.finish("rk_stage", t0, _S_RK_STAGES)
        return
    rhs_into(state, k)
    _axpy_inplace(state, dt, k)


class ForwardEuler(_WorkspaceMixin):
    """First-order explicit Euler (also the unit of the paper's cost metric)."""

    order = 1
    stages = 1

    def step(self, state: State, rhs: RhsFn, dt: float) -> State:
        k1 = rhs(state)
        return {k: state[k] + dt * k1[k] for k in state}

    def step_inplace(self, state: State, rhs_into: RhsIntoFn, dt: float) -> None:
        k = self._work("k", state)
        _stage_inplace(state, rhs_into, dt, k)


class SSPRK2(_WorkspaceMixin):
    """Two-stage, second-order SSP-RK (Heun form)."""

    order = 2
    stages = 2

    def step(self, state: State, rhs: RhsFn, dt: float) -> State:
        k1 = rhs(state)
        s1 = {k: state[k] + dt * k1[k] for k in state}
        k2 = rhs(s1)
        return {k: 0.5 * state[k] + 0.5 * (s1[k] + dt * k2[k]) for k in state}

    def step_inplace(self, state: State, rhs_into: RhsIntoFn, dt: float) -> None:
        u0 = self._work("u0", state)
        k = self._work("k", state)
        _snapshot(state, u0)
        _stage_inplace(state, rhs_into, dt, k)   # s1
        _stage_inplace(state, rhs_into, dt, k)   # s1 + dt k2
        for key, arr in state.items():
            arr *= 0.5
            kk = k[key]
            np.multiply(u0[key], 0.5, out=kk)
            arr += kk


class SSPRK3(_WorkspaceMixin):
    """Three-stage, third-order SSP-RK (Shu–Osher) — the paper's stepper."""

    order = 3
    stages = 3

    def step(self, state: State, rhs: RhsFn, dt: float) -> State:
        k1 = rhs(state)
        s1 = {k: state[k] + dt * k1[k] for k in state}
        k2 = rhs(s1)
        s2 = {k: 0.75 * state[k] + 0.25 * (s1[k] + dt * k2[k]) for k in state}
        k3 = rhs(s2)
        return {
            k: state[k] / 3.0 + (2.0 / 3.0) * (s2[k] + dt * k3[k]) for k in state
        }

    def step_inplace(self, state: State, rhs_into: RhsIntoFn, dt: float) -> None:
        u0 = self._work("u0", state)
        k = self._work("k", state)
        _snapshot(state, u0)
        _stage_inplace(state, rhs_into, dt, k)   # s1 = u0 + dt k1
        _stage_inplace(state, rhs_into, dt, k)   # s1 + dt k2
        for key, arr in state.items():       # s2 = 3/4 u0 + 1/4 (...)
            arr *= 0.25
            kk = k[key]
            np.multiply(u0[key], 0.75, out=kk)
            arr += kk
        _stage_inplace(state, rhs_into, dt, k)   # s2 + dt k3
        for key, arr in state.items():       # u = 1/3 u0 + 2/3 (...)
            arr *= 2.0 / 3.0
            kk = k[key]
            np.multiply(u0[key], 1.0 / 3.0, out=kk)
            arr += kk


_STEPPERS = {
    "forward-euler": ForwardEuler,
    "ssp-rk2": SSPRK2,
    "ssp-rk3": SSPRK3,
}


def get_stepper(name: str):
    try:
        return _STEPPERS[name]()
    except KeyError as exc:
        raise ValueError(
            f"unknown stepper {name!r}; choose from {sorted(_STEPPERS)}"
        ) from exc


def available_steppers() -> tuple:
    """Registered stepper names (the single source the spec validates
    against — previously duplicated as a literal in ``runtime.spec``)."""
    return tuple(sorted(_STEPPERS))
