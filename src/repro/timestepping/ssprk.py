"""Strong-stability-preserving Runge–Kutta steppers.

The paper integrates the semi-discrete system with the three-stage,
third-order SSP-RK method (Shu–Osher form); forward Euler and SSP-RK2 are
provided for convergence studies and cost accounting.  Steppers operate on
*states*: flat dictionaries mapping names to NumPy arrays, combined
elementwise — this keeps multi-species + field systems in lockstep through
the stages exactly as Gkeyll's App system does.
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

State = Dict[str, np.ndarray]
RhsFn = Callable[[State], State]

__all__ = ["ForwardEuler", "SSPRK2", "SSPRK3", "get_stepper", "state_axpy"]


def state_axpy(coeffs_states) -> State:
    """Linear combination of states: ``sum_i a_i * s_i``."""
    out: State = {}
    for a, s in coeffs_states:
        for k, v in s.items():
            if k in out:
                out[k] = out[k] + a * v
            else:
                out[k] = a * v
    return out


class ForwardEuler:
    """First-order explicit Euler (also the unit of the paper's cost metric)."""

    order = 1
    stages = 1

    def step(self, state: State, rhs: RhsFn, dt: float) -> State:
        k1 = rhs(state)
        return {k: state[k] + dt * k1[k] for k in state}


class SSPRK2:
    """Two-stage, second-order SSP-RK (Heun form)."""

    order = 2
    stages = 2

    def step(self, state: State, rhs: RhsFn, dt: float) -> State:
        k1 = rhs(state)
        s1 = {k: state[k] + dt * k1[k] for k in state}
        k2 = rhs(s1)
        return {k: 0.5 * state[k] + 0.5 * (s1[k] + dt * k2[k]) for k in state}


class SSPRK3:
    """Three-stage, third-order SSP-RK (Shu–Osher) — the paper's stepper."""

    order = 3
    stages = 3

    def step(self, state: State, rhs: RhsFn, dt: float) -> State:
        k1 = rhs(state)
        s1 = {k: state[k] + dt * k1[k] for k in state}
        k2 = rhs(s1)
        s2 = {k: 0.75 * state[k] + 0.25 * (s1[k] + dt * k2[k]) for k in state}
        k3 = rhs(s2)
        return {
            k: state[k] / 3.0 + (2.0 / 3.0) * (s2[k] + dt * k3[k]) for k in state
        }


_STEPPERS = {
    "forward-euler": ForwardEuler,
    "ssp-rk2": SSPRK2,
    "ssp-rk3": SSPRK3,
}


def get_stepper(name: str):
    try:
        return _STEPPERS[name]()
    except KeyError as exc:
        raise ValueError(
            f"unknown stepper {name!r}; choose from {sorted(_STEPPERS)}"
        ) from exc
