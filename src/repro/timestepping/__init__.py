"""Explicit SSP Runge–Kutta time integration."""

from .ssprk import ForwardEuler, SSPRK2, SSPRK3, get_stepper

__all__ = ["ForwardEuler", "SSPRK2", "SSPRK3", "get_stepper"]
