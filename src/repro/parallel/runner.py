"""Decomposed execution of the modal Vlasov RHS (correctness harness).

Runs the kernel update the way the paper's two-level MPI decomposition does:

* each **node** owns a configuration-space block padded by one ghost layer
  per decomposed axis, filled by periodic halo exchange through the
  :class:`~repro.parallel.comm.SimulatedComm` (byte-counted);
* each **core** of a node computes a velocity-space slab, reading its
  neighbours' cells directly from the node's shared array — no intra-node
  ghost copies, exactly the MPI-3 shared-memory strategy of Sec. IV.

State is cell-major (``(*cfg, Np, *vel)``; EM ``(*cfg, 8, Npc)``): the
configuration axes lead, so every halo slab moved below is a contiguous
span and the ghost-window views feed the kernels directly — the mode-major
era's per-call ``np.ascontiguousarray`` staging copies are gone (weighting
a trace into a fresh array is the only materialization, and the flux
arithmetic needs that pass anyway).

The decomposed result must equal the serial
:class:`~repro.vlasov.modal_solver.VlasovModalSolver` RHS to machine
precision (tested bitwise-tolerant), which validates the decomposition logic
that the Fig. 3 scaling model builds on.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..engine.layout import insert_basis_axis
from ..vlasov.modal_solver import VlasovModalSolver, _axis_slice
from .comm import SimulatedComm
from .decomp import TwoLevelDecomposition, block_ranges

__all__ = ["DecomposedVlasovRunner"]


class DecomposedVlasovRunner:
    """Evaluate a Vlasov RHS under a nodes x cores decomposition."""

    def __init__(
        self,
        solver: VlasovModalSolver,
        nodes: int,
        cores_per_node: int = 1,
        vel_axis: int = -1,
    ):
        self.solver = solver
        g = solver.grid
        self.decomp = TwoLevelDecomposition.create(
            g.conf.cells, g.vel.cells, nodes, cores_per_node, vel_axis
        )
        self.comm = SimulatedComm(nodes)
        self.nodes = nodes
        self.cores = cores_per_node
        self._vel_axis = self.decomp.vel.axis  # velocity-grid axis index

    # ------------------------------------------------------------------ #
    def rhs(self, f: np.ndarray, em: np.ndarray) -> np.ndarray:
        """Distributed evaluation; returns the assembled global RHS."""
        solver = self.solver
        g = solver.grid
        cdim = g.cdim
        conf = self.decomp.conf
        pad = [1 if conf.dims[d] > 1 else 0 for d in range(cdim)]

        # ---- scatter: local padded blocks per node ----------------------
        locals_: List[np.ndarray] = []
        ranges: List[List[Tuple[int, int]]] = []
        for rank in range(self.nodes):
            rng = conf.local_ranges(rank)
            ranges.append(rng)
            sl = tuple(slice(lo, hi) for lo, hi in rng)
            block = f[sl]
            pad_width = (
                [(pad[d], pad[d]) for d in range(cdim)]
                + [(0, 0)]
                + [(0, 0)] * g.vdim
            )
            locals_.append(np.pad(block, pad_width))

        # ---- halo exchange (periodic): leading-axis contiguous slabs ----
        for d in range(cdim):
            if not pad[d]:
                continue
            axis = d
            for rank in range(self.nodes):
                arr = locals_[rank]
                n = arr.shape[axis]
                interior_lo = _axis_slice(arr.ndim, axis, slice(1, 2))
                interior_hi = _axis_slice(arr.ndim, axis, slice(n - 2, n - 1))
                self.comm.send(rank, conf.neighbor(rank, d, -1), arr[interior_lo], tag=2 * d)
                self.comm.send(rank, conf.neighbor(rank, d, +1), arr[interior_hi], tag=2 * d + 1)
            for rank in range(self.nodes):
                arr = locals_[rank]
                n = arr.shape[axis]
                ghost_lo = _axis_slice(arr.ndim, axis, slice(0, 1))
                ghost_hi = _axis_slice(arr.ndim, axis, slice(n - 1, n))
                arr[ghost_hi] = self.comm.recv(conf.neighbor(rank, d, +1), rank, tag=2 * d)
                arr[ghost_lo] = self.comm.recv(conf.neighbor(rank, d, -1), rank, tag=2 * d + 1)

        # ---- compute: per node, per core slab ---------------------------
        out = np.zeros_like(f)
        vax = self._vel_axis
        arr_vax = 1 + cdim + vax  # state-array axis of the slab velocity dim
        nvel = g.vel.cells[vax]
        slabs = block_ranges(nvel, self.cores)
        for rank in range(self.nodes):
            rng = ranges[rank]
            em_loc = em[tuple(slice(lo, hi) for lo, hi in rng)]
            for (lo, hi) in slabs:
                ext_lo = max(lo - 1, 0)
                ext_hi = min(hi + 1, nvel)
                win_sl = _axis_slice(f.ndim, arr_vax, slice(ext_lo, ext_hi))
                f_win = locals_[rank][win_sl]
                rhs_ext = self._local_rhs(f_win, em_loc, pad, rng, (ext_lo, ext_hi))
                keep = _axis_slice(
                    rhs_ext.ndim, arr_vax, slice(lo - ext_lo, hi - ext_lo)
                )
                out_sl = tuple(
                    [slice(r0, r1) for r0, r1 in rng]
                    + [slice(None)]
                    + [
                        slice(lo, hi) if d == vax else slice(None)
                        for d in range(g.vdim)
                    ]
                )
                out[out_sl] = rhs_ext[keep]
        return out

    # ------------------------------------------------------------------ #
    def _window_aux(self, em_loc: np.ndarray, window: Tuple[int, int]):
        """Solver aux dict restricted to the velocity window (shared-memory
        view of the slab plus its neighbour cells)."""
        solver = self.solver
        g = solver.grid
        aux: Dict[str, object] = {}
        vax_cell_axis = g.cdim + self._vel_axis
        lo, hi = window
        for name, val in solver._base_aux.items():
            if isinstance(val, np.ndarray) and val.ndim == g.pdim and val.shape[vax_cell_axis] > 1:
                aux[name] = val[_axis_slice(val.ndim, vax_cell_axis, slice(lo, hi))]
            else:
                aux[name] = val
        npc = solver.num_conf_basis
        cfg_loc = em_loc.shape[: g.cdim]
        for comp in range(3):
            for k in range(npc):
                aux[f"E{comp}_{k}"] = em_loc[..., comp, k].reshape(
                    cfg_loc + (1,) * g.vdim
                )
                aux[f"B{comp}_{k}"] = em_loc[..., 3 + comp, k].reshape(
                    cfg_loc + (1,) * g.vdim
                )
        return aux

    def _local_rhs(
        self,
        f_loc: np.ndarray,
        em_loc: np.ndarray,
        pad: List[int],
        rng: List[Tuple[int, int]],
        window: Tuple[int, int],
    ) -> np.ndarray:
        """Serial-algorithm RHS on a padded config block and velocity window."""
        solver = self.solver
        g = solver.grid
        cdim, vdim = g.cdim, g.vdim
        aux = self._window_aux(em_loc, window)
        vax = self._vel_axis

        interior = tuple(
            slice(1, -1) if pad[d] else slice(None) for d in range(cdim)
        )
        f_int = f_loc[interior]  # ghost-window view; kernels consume it as is
        out = np.zeros(f_int.shape)

        # volume
        for ts in solver.kernels.vol_stream:
            ts.apply_cm(f_int, aux, out, cdim)
        for ts in solver.kernels.vol_accel:
            ts.apply_cm(f_int, aux, out, cdim)

        # streaming surfaces per config axis
        for j in range(cdim):
            axis = j
            sides = solver.kernels.surf_stream[j]
            pos = solver._upwind_pos[j]
            cell_vax = cdim + vax
            lo, hi = window
            if pos.shape[cell_vax] > 1:
                pos = pos[_axis_slice(pos.ndim, cell_vax, slice(lo, hi))]
            pos_b = insert_basis_axis(pos, cdim)
            neg_b = insert_basis_axis(1.0 - pos, cdim)
            if not pad[j]:
                f_left = f_int * pos_b
                f_right = np.roll(f_int, -1, axis=axis) * neg_b
                sides[("L", "L")].apply_cm(f_left, aux, out, cdim)
                sides[("L", "R")].apply_cm(f_right, aux, out, cdim)
                buf = np.zeros_like(out)
                sides[("R", "L")].apply_cm(f_left, aux, buf, cdim)
                sides[("R", "R")].apply_cm(f_right, aux, buf, cdim)
                out += np.roll(buf, 1, axis=axis)
                continue
            # padded axis: restrict other config axes to interior, keep this
            # axis full (n+2 entries -> n+1 faces touching interior cells)
            view = tuple(
                slice(None) if d == j else (slice(1, -1) if pad[d] else slice(None))
                for d in range(cdim)
            )
            garr = f_loc[view]
            n = garr.shape[axis] - 2
            f_left = garr[_axis_slice(garr.ndim, axis, slice(0, n + 1))] * pos_b
            f_right = garr[_axis_slice(garr.ndim, axis, slice(1, n + 2))] * neg_b
            inc_left = np.zeros(f_left.shape)
            sides[("L", "L")].apply_cm(f_left, aux, inc_left, cdim)
            sides[("L", "R")].apply_cm(f_right, aux, inc_left, cdim)
            inc_right = np.zeros(f_left.shape)
            sides[("R", "L")].apply_cm(f_left, aux, inc_right, cdim)
            sides[("R", "R")].apply_cm(f_right, aux, inc_right, cdim)
            # face k -> left-cell increment lands on pad cell k (interior for
            # k = 1..n), right-cell increment on pad cell k+1
            out += inc_left[_axis_slice(out.ndim, axis, slice(1, n + 1))]
            out += inc_right[_axis_slice(out.ndim, axis, slice(0, n))]

        # acceleration surfaces: interior faces of the velocity window
        for j in range(vdim):
            axis = 1 + cdim + j
            n = f_int.shape[axis]
            if n < 2:
                continue
            sides = solver.kernels.surf_accel[j]
            sl_lo = _axis_slice(f_int.ndim, axis, slice(0, n - 1))
            sl_hi = _axis_slice(f_int.ndim, axis, slice(1, n))
            # weighting the face trace materializes it contiguous; no
            # explicit ascontiguousarray staging
            f_left = f_int[sl_lo] * 0.5
            f_right = f_int[sl_hi] * 0.5
            inc_left = np.zeros(f_left.shape)
            sides[("L", "L")].apply_cm(f_left, aux, inc_left, cdim)
            sides[("L", "R")].apply_cm(f_right, aux, inc_left, cdim)
            inc_right = np.zeros(f_left.shape)
            sides[("R", "L")].apply_cm(f_left, aux, inc_right, cdim)
            sides[("R", "R")].apply_cm(f_right, aux, inc_right, cdim)
            out[sl_lo] += inc_left
            out[sl_hi] += inc_right
        return out
