"""Analytic cluster performance model for the Fig. 3 scaling study.

We have one core and no interconnect, so wall-clock scaling curves are
produced by a transparent model that combines

* **measured** single-core kernel throughput (cells/s of the real modal or
  quadrature update, from this machine),
* **real** halo-exchange volumes (ghost-layer doubles counted by the actual
  decomposition in :mod:`repro.parallel.decomp` — in 6D one configuration
  ghost layer drags the whole attached 3D velocity grid with it), and
* hardware constants (per-node bandwidth, message latency, a network
  contention factor, and an on-node efficiency exponent capturing the
  instruction-level-parallelism starvation the paper blames for strong-
  scaling degradation).

Defaults are calibrated so the *paper's observed fractions* come out: at
4096 nodes the weak-scaling run spends ~25% of a step in halo exchange, and
the strong-scaling run gains ~4x per 8x nodes ending ~80% communication-
bound — reproducing the shape of Fig. 3, not Theta's absolute seconds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from .decomp import ConfDecomposition

__all__ = ["ProblemSpec", "ClusterModel", "weak_scaling_series", "strong_scaling_series"]


@dataclass(frozen=True)
class ProblemSpec:
    """A phase-space problem for the scaling model."""

    conf_cells: Tuple[int, ...]
    vel_cells: Tuple[int, ...]
    num_basis: int
    num_species: int = 2
    rk_stages: int = 3

    @property
    def total_conf_cells(self) -> int:
        return int(np.prod(self.conf_cells))

    @property
    def total_phase_cells(self) -> int:
        return int(np.prod(self.conf_cells)) * int(np.prod(self.vel_cells))

    def refine_conf(self, factor: int) -> "ProblemSpec":
        return ProblemSpec(
            tuple(c * factor for c in self.conf_cells),
            self.vel_cells,
            self.num_basis,
            self.num_species,
            self.rk_stages,
        )


@dataclass
class ClusterModel:
    """Cost model ``t_step = t_compute + t_halo`` for one RK stage set.

    Parameters
    ----------
    cell_updates_per_second_core:
        Measured single-core throughput of the full per-cell update
        (volume + all surfaces) for one species.
    cores_per_node:
        KNL-like wide node (the paper uses 256 hardware threads on 64
        cores; throughput is folded into the measured rate).
    bandwidth_doubles_per_second:
        Effective per-node halo bandwidth.
    latency_seconds:
        Per-neighbor message latency.
    contention_per_octave:
        Fractional bandwidth loss per 8x increase of the node count
        (network contention at scale; calibrated to the paper's <=25%
        weak-scaling halo share at 4096 nodes).
    ilp_efficiency_exponent:
        On-node efficiency ``(work/work_ref)^a`` when the per-node work
        shrinks below ``work_ref`` cells (strong-scaling starvation;
        ``a = 1/3`` reproduces the paper's 4x-per-8x strong scaling).
    """

    cell_updates_per_second_core: float
    cores_per_node: int = 64
    bandwidth_doubles_per_second: float = 2.5e9
    latency_seconds: float = 2.0e-6
    contention_per_octave: float = 0.43
    ilp_efficiency_exponent: float = 1.0 / 3.0
    work_ref_cells_per_node: float = None  # set from the 1-node problem

    # ------------------------------------------------------------------ #
    def time_per_step(self, problem: ProblemSpec, nodes: int) -> Dict[str, float]:
        """Model one full SSP-RK time step on ``nodes`` nodes."""
        decomp = ConfDecomposition.create(problem.conf_cells, nodes)
        nvel = int(np.prod(problem.vel_cells))
        local_conf = int(np.prod(decomp.local_cells(0)))
        work_cells = local_conf * nvel  # per node, one species, one stage

        # ---- compute ---------------------------------------------------
        rate_node = self.cell_updates_per_second_core * self.cores_per_node
        if self.work_ref_cells_per_node:
            starvation = min(
                1.0, (work_cells / self.work_ref_cells_per_node) ** self.ilp_efficiency_exponent
            )
        else:
            starvation = 1.0
        t_comp = (
            problem.rk_stages
            * problem.num_species
            * work_cells
            / (rate_node * starvation)
        )

        # ---- halo exchange ----------------------------------------------
        ghost_cells = decomp.ghost_cells(0)  # config ghost cells received
        halo_doubles = (
            ghost_cells * nvel * problem.num_basis * problem.num_species
        )
        octaves = np.log(max(nodes, 1)) / np.log(8.0)
        bw = self.bandwidth_doubles_per_second / (1.0 + self.contention_per_octave * octaves)
        n_neighbors = sum(2 for d in decomp.dims if d > 1)
        t_halo = problem.rk_stages * (
            halo_doubles / bw + n_neighbors * self.latency_seconds
        )
        total = t_comp + t_halo
        return {
            "nodes": nodes,
            "t_compute": t_comp,
            "t_halo": t_halo,
            "t_step": total,
            "halo_fraction": t_halo / total,
            "work_cells_per_node": work_cells,
            "halo_doubles_per_node": halo_doubles,
        }


def weak_scaling_series(
    model: ClusterModel, base: ProblemSpec, node_counts: Sequence[int]
) -> List[Dict[str, float]]:
    """Grow the configuration grid with the node count (paper setup: double
    each configuration dimension per 8x nodes) and normalize to one node."""
    model.work_ref_cells_per_node = None
    out = []
    base_time = None
    for nodes in node_counts:
        factor = round(nodes ** (1.0 / len(base.conf_cells)))
        problem = base.refine_conf(max(factor, 1))
        rec = model.time_per_step(problem, nodes)
        if base_time is None:
            base_time = rec["t_step"]
        rec["normalized"] = rec["t_step"] / base_time
        out.append(rec)
    return out


def strong_scaling_series(
    model: ClusterModel, problem: ProblemSpec, node_counts: Sequence[int]
) -> List[Dict[str, float]]:
    """Fixed problem; normalize speedup to the first node count."""
    first = node_counts[0]
    ref = ConfDecomposition.create(problem.conf_cells, first)
    nvel = int(np.prod(problem.vel_cells))
    model.work_ref_cells_per_node = float(
        np.prod(ref.local_cells(0)) * nvel
    )
    out = []
    base_time = None
    for nodes in node_counts:
        rec = model.time_per_step(problem, nodes)
        if base_time is None:
            base_time = rec["t_step"]
        rec["speedup"] = base_time / rec["t_step"]
        rec["ideal_speedup"] = nodes / first
        out.append(rec)
    return out
