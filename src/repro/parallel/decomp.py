"""Two-level parallel domain decomposition (paper Sec. IV).

Gkeyll decomposes a kinetic simulation at two levels:

1. **configuration space** across nodes (distributed memory): each node owns
   a block of configuration cells *with the full velocity grid attached*;
   DG needs a single layer of configuration-space ghost cells, but in 5D/6D
   even one layer is a 4D/5D object — the dominant communication cost;
2. **velocity space** within a node (MPI-3 shared memory): intra-node ranks
   split the velocity grid *without any ghost layers*, since neighbours'
   data is directly addressable in shared memory.  This is the source of the
   paper's 2–3x node-memory saving, which :func:`memory_report` computes
   exactly from the real ghost-layer sizes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

__all__ = [
    "factor_ranks",
    "block_ranges",
    "ConfDecomposition",
    "VelocitySlabs",
    "TwoLevelDecomposition",
    "memory_report",
]


def factor_ranks(nranks: int, ndim: int, cells: Sequence[int]) -> Tuple[int, ...]:
    """Near-cubic factorization of ``nranks`` over ``ndim`` axes, preferring
    to cut the longest remaining axis (MPI_Dims_create flavoured)."""
    dims = [1] * ndim
    remaining = nranks
    primes = _prime_factors(nranks)
    for p in sorted(primes, reverse=True):
        # assign to the axis with the most cells per current cut
        axis = max(range(ndim), key=lambda d: cells[d] / dims[d])
        dims[axis] *= p
        remaining //= p
    if int(np.prod(dims)) != nranks:
        raise RuntimeError("factorization failed")
    return tuple(dims)


def _prime_factors(n: int) -> List[int]:
    out = []
    d = 2
    while d * d <= n:
        while n % d == 0:
            out.append(d)
            n //= d
        d += 1
    if n > 1:
        out.append(n)
    return out


def block_ranges(ncells: int, nblocks: int) -> List[Tuple[int, int]]:
    """Split ``ncells`` into ``nblocks`` contiguous ranges (balanced)."""
    if nblocks > ncells:
        raise ValueError(f"cannot split {ncells} cells into {nblocks} blocks")
    base, extra = divmod(ncells, nblocks)
    out = []
    start = 0
    for b in range(nblocks):
        size = base + (1 if b < extra else 0)
        out.append((start, start + size))
        start += size
    return out


@dataclass(frozen=True)
class ConfDecomposition:
    """Block decomposition of the configuration grid across nodes."""

    cells: Tuple[int, ...]
    dims: Tuple[int, ...]          # blocks per axis

    @classmethod
    def create(cls, cells: Sequence[int], nblocks: int) -> "ConfDecomposition":
        cells = tuple(int(c) for c in cells)
        dims = factor_ranks(nblocks, len(cells), cells)
        for d, (c, b) in enumerate(zip(cells, dims)):
            if b > c:
                raise ValueError(
                    f"axis {d}: {b} blocks exceed {c} cells"
                )
        return cls(cells=cells, dims=dims)

    @property
    def num_blocks(self) -> int:
        return int(np.prod(self.dims))

    def block_index(self, rank: int) -> Tuple[int, ...]:
        return tuple(np.unravel_index(rank, self.dims))

    def rank_of_block(self, idx: Sequence[int]) -> int:
        wrapped = tuple(i % b for i, b in zip(idx, self.dims))
        return int(np.ravel_multi_index(wrapped, self.dims))

    def local_ranges(self, rank: int) -> List[Tuple[int, int]]:
        idx = self.block_index(rank)
        return [
            block_ranges(self.cells[d], self.dims[d])[idx[d]]
            for d in range(len(self.cells))
        ]

    def local_cells(self, rank: int) -> Tuple[int, ...]:
        return tuple(hi - lo for lo, hi in self.local_ranges(rank))

    def neighbor(self, rank: int, axis: int, shift: int) -> int:
        """Periodic neighbour block along one axis."""
        idx = list(self.block_index(rank))
        idx[axis] += shift
        return self.rank_of_block(idx)

    def ghost_cells(self, rank: int, ghost: int = 1) -> int:
        """Number of configuration ghost cells this rank receives per
        exchange (two faces per decomposed axis, periodic)."""
        local = self.local_cells(rank)
        total = 0
        for d in range(len(local)):
            if self.dims[d] == 1:
                continue  # periodic wrap handled locally, no message needed
            face = int(np.prod(local)) // local[d]
            total += 2 * ghost * face
        return total


@dataclass(frozen=True)
class VelocitySlabs:
    """Intra-node shared-memory split of the velocity grid along one axis."""

    cells: Tuple[int, ...]
    axis: int
    nslabs: int

    def ranges(self) -> List[Tuple[int, int]]:
        return block_ranges(self.cells[self.axis], self.nslabs)

    def slab_cells(self, slab: int) -> Tuple[int, ...]:
        lo, hi = self.ranges()[slab]
        out = list(self.cells)
        out[self.axis] = hi - lo
        return tuple(out)


@dataclass(frozen=True)
class TwoLevelDecomposition:
    """nodes x cores-per-node decomposition of a phase-space problem."""

    conf: ConfDecomposition
    vel: VelocitySlabs

    @classmethod
    def create(
        cls,
        conf_cells: Sequence[int],
        vel_cells: Sequence[int],
        nodes: int,
        cores_per_node: int,
        vel_axis: int = -1,
    ) -> "TwoLevelDecomposition":
        vel_cells = tuple(int(c) for c in vel_cells)
        axis = vel_axis % len(vel_cells)
        return cls(
            conf=ConfDecomposition.create(conf_cells, nodes),
            vel=VelocitySlabs(cells=vel_cells, axis=axis, nslabs=cores_per_node),
        )

    def halo_doubles_per_step(self, num_basis: int, ghost: int = 1) -> int:
        """Doubles exchanged per time step across nodes (both directions),
        counting the full velocity grid attached to each configuration ghost
        cell — the paper's observation that 5D/6D ghost layers are large."""
        nvel = int(np.prod(self.vel.cells))
        total = 0
        for rank in range(self.conf.num_blocks):
            total += self.conf.ghost_cells(rank, ghost) * nvel * num_basis
        return total


def memory_report(
    conf_cells: Sequence[int],
    vel_cells: Sequence[int],
    nodes: int,
    cores_per_node: int,
    num_basis: int,
    num_species: int = 2,
    ghost: int = 1,
) -> Dict[str, float]:
    """Node memory with the shared-memory velocity decomposition vs. a pure
    per-core phase-space decomposition (the paper's 2–3x saving).

    In the shared model each node stores its configuration block (plus one
    configuration ghost layer) times the *whole* velocity grid, once.  In the
    pure-MPI model every core's phase-space subdomain carries its own ghost
    layers in *all* decomposed directions.
    """
    conf_cells = tuple(int(c) for c in conf_cells)
    vel_cells = tuple(int(c) for c in vel_cells)
    nvel = int(np.prod(vel_cells))
    bytes_per_dof = 8.0 * num_species * num_basis

    # shared-memory model
    shared = ConfDecomposition.create(conf_cells, nodes)
    shared_bytes = 0.0
    local = shared.local_cells(0)
    padded = [
        n + (2 * ghost if shared.dims[d] > 1 or nodes > 1 else 2 * ghost)
        for d, n in enumerate(local)
    ]
    shared_bytes = float(np.prod(padded)) * nvel * bytes_per_dof

    # pure per-core model: decompose phase space over nodes*cores ranks
    total_ranks = nodes * cores_per_node
    pdim = len(conf_cells) + len(vel_cells)
    phase_cells = conf_cells + vel_cells
    pure = ConfDecomposition.create(phase_cells, total_ranks)
    local_p = pure.local_cells(0)
    padded_p = [
        n + 2 * ghost if pure.dims[d] > 1 else n + (2 * ghost if d < len(conf_cells) else 0)
        for d, n in enumerate(local_p)
    ]
    pure_bytes_per_rank = float(np.prod(padded_p)) * bytes_per_dof
    pure_bytes_per_node = pure_bytes_per_rank * cores_per_node

    return {
        "shared_node_bytes": shared_bytes,
        "pure_mpi_node_bytes": pure_bytes_per_node,
        "saving_factor": pure_bytes_per_node / shared_bytes,
    }
