"""Two-level (simulated) MPI decomposition and scaling model."""

from .comm import SimulatedComm
from .decomp import (
    ConfDecomposition,
    TwoLevelDecomposition,
    VelocitySlabs,
    block_ranges,
    factor_ranks,
    memory_report,
)
from .runner import DecomposedVlasovRunner
from .scaling import ClusterModel, ProblemSpec, strong_scaling_series, weak_scaling_series

__all__ = [
    "SimulatedComm",
    "ConfDecomposition",
    "VelocitySlabs",
    "TwoLevelDecomposition",
    "block_ranges",
    "factor_ranks",
    "memory_report",
    "DecomposedVlasovRunner",
    "ClusterModel",
    "ProblemSpec",
    "weak_scaling_series",
    "strong_scaling_series",
]
