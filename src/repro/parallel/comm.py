"""In-process simulated MPI communicator.

There is no MPI in this environment (single core, no ``mpi4py``), so the
communication layer is simulated: rank "processes" are executed sequentially
and messages are routed through an in-memory mailbox with full byte/message
accounting.  The decomposition and halo-exchange *logic* is thereby real and
testable (decomposed runs reproduce serial runs bitwise); only concurrency
is simulated.  The byte counters feed the Fig. 3 scaling model.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Deque, Dict, Tuple

import numpy as np

__all__ = ["SimulatedComm"]


@dataclass
class _Stats:
    messages: int = 0
    doubles: int = 0

    def record(self, arr: np.ndarray) -> None:
        self.messages += 1
        self.doubles += int(arr.size)


class SimulatedComm:
    """Mailbox-based point-to-point messaging between simulated ranks.

    Messages are keyed by ``(source, dest, tag)`` and consumed in FIFO
    order; data is copied on send (like a real MPI buffer) so later
    modification of the source array cannot corrupt a message in flight.
    """

    def __init__(self, size: int):
        if size < 1:
            raise ValueError("communicator needs at least one rank")
        self.size = size
        self._mail: Dict[Tuple[int, int, int], Deque[np.ndarray]] = defaultdict(deque)
        self.stats = _Stats()

    def send(self, source: int, dest: int, arr: np.ndarray, tag: int = 0) -> None:
        self._check_rank(source)
        self._check_rank(dest)
        self._mail[(source, dest, tag)].append(np.array(arr, copy=True))
        self.stats.record(arr)

    def recv(self, source: int, dest: int, tag: int = 0) -> np.ndarray:
        self._check_rank(source)
        self._check_rank(dest)
        queue = self._mail[(source, dest, tag)]
        if not queue:
            raise RuntimeError(
                f"no message from rank {source} to rank {pretty(dest)} with tag {tag}"
            )
        return queue.popleft()

    def pending(self) -> int:
        return sum(len(q) for q in self._mail.values())

    def reset_stats(self) -> None:
        self.stats = _Stats()

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise ValueError(f"rank {rank} out of range (size {self.size})")


def pretty(rank: int) -> str:  # pragma: no cover - error-path helper
    return str(rank)
