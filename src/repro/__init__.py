"""repro — alias-free, matrix-free, quadrature-free modal DG algorithms for
(plasma) kinetic equations.

A from-scratch Python reproduction of Hakim & Juno, *"Alias-free,
matrix-free, and quadrature-free discontinuous Galerkin algorithms for
(plasma) kinetic equations"*, SC 2020 (the Gkeyll Vlasov–Maxwell solver).

Quickstart::

    import numpy as np
    from repro import Grid, Species, FieldSpec
    from repro.systems import System, MaxwellBlock

    k = 0.5
    elc = Species("elc", charge=-1.0, mass=1.0,
                  velocity_grid=Grid([-6.0], [6.0], [16]),
                  initial=lambda x, v: (1 + 0.01*np.cos(k*x))
                      * np.exp(-v**2/2) / np.sqrt(2*np.pi))
    system = System(
        conf_grid=Grid([0.0], [2*np.pi/k], [16]),
        species=[elc],
        field=MaxwellBlock(FieldSpec(
            initial={"Ex": lambda x: -0.01/k*np.sin(k*x)})),
        poly_order=2)
    system.run(10.0)

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-vs-measured record of every table and figure.
"""

from .apps.vlasov_maxwell import VlasovMaxwellApp
from .apps.vlasov_poisson import VlasovPoissonApp
from .basis.modal import ModalBasis
from .basis.multiindex import FAMILIES, num_basis
from .collisions.bgk import BGKCollisions
from .collisions.lbo import LBOCollisions
from .diagnostics.energy import EnergyHistory
from .diagnostics.growth import fit_exponential_growth
from .fields.maxwell import MaxwellSolver
from .fields.poisson import Poisson1D
from .grid.cartesian import Grid
from .grid.phase import PhaseGrid
from .kernels.registry import get_vlasov_kernels
from .moments.calc import MomentCalculator, integrate_conf_field
from .projection import project_on_grid, project_phase_function
from .runtime import CampaignSpec, Driver, SimulationSpec
from .systems import (
    ExternalField,
    FieldSpec,
    MaxwellBlock,
    Model,
    NullFieldBlock,
    PoissonBlock,
    Species,
    System,
    build_system,
    register_system,
)
from .vlasov.modal_solver import VlasovModalSolver
from .vlasov.quadrature_solver import VlasovQuadratureSolver

__version__ = "1.0.0"

__all__ = [
    "Grid",
    "PhaseGrid",
    "ModalBasis",
    "FAMILIES",
    "num_basis",
    "VlasovModalSolver",
    "VlasovQuadratureSolver",
    "MaxwellSolver",
    "Poisson1D",
    "MomentCalculator",
    "integrate_conf_field",
    "LBOCollisions",
    "BGKCollisions",
    "Species",
    "FieldSpec",
    "ExternalField",
    "Model",
    "System",
    "MaxwellBlock",
    "PoissonBlock",
    "NullFieldBlock",
    "register_system",
    "build_system",
    "VlasovMaxwellApp",
    "VlasovPoissonApp",
    "EnergyHistory",
    "fit_exponential_growth",
    "get_vlasov_kernels",
    "project_on_grid",
    "project_phase_function",
    "SimulationSpec",
    "Driver",
    "CampaignSpec",
    "__version__",
]
