"""Content-addressed on-disk store for compiled execution plans.

Plan compilation is deterministic: the operator blocks an
:class:`~repro.engine.plan.ExecutionPlan` freezes are a pure function of
the generated :class:`~repro.kernels.termset.TermSet`, the aux
*signature* (symbol classification), and the cell shape.  That triple is
hashed into a content digest (:func:`plan_digest`) and the compiled
artifacts — per-cell sparse blocks, dense operator stacks, low-rank
factors — are serialized to one ``.npz`` file per digest under a cache
root (default ``~/.cache/repro``, redirected by ``$REPRO_CACHE_DIR``).

The store is safe under concurrent writers (sharded workers and campaign
fleets compile the same plans at the same time): payloads are written to
a temporary file in the cache root and published with an atomic
``os.replace`` — the same publish-or-nothing discipline the campaign
lease files use.  Two racing writers produce byte-identical content, so
last-write-wins is harmless.  Readers treat *any* failure — missing
file, truncated zip, wrong version, type errors — as a cache miss: a
corrupted cache can cost a recompile, never a crash or a wrong answer.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "ARTIFACT_VERSION",
    "default_cache_dir",
    "resolve_cache_root",
    "PlanCache",
]

#: bumped whenever the artifact layout changes; part of every digest, so a
#: version bump invalidates the whole cache without any migration logic
ARTIFACT_VERSION = 1

_META_KEY = "__meta__"


def default_cache_dir() -> Path:
    """The cache root used by the ``"auto"`` setting: ``$REPRO_CACHE_DIR``
    when set, else ``~/.cache/repro``."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env).expanduser()
    return Path.home() / ".cache" / "repro"


def resolve_cache_root(setting: Optional[str]) -> Optional[Path]:
    """Map a cache setting string to a root directory (or None = disabled).

    ``None``/``"off"``/``""`` disable the disk cache; ``"auto"`` selects
    :func:`default_cache_dir`; anything else is taken as a path.
    """
    if setting is None or setting in ("off", ""):
        return None
    if setting == "auto":
        return default_cache_dir()
    return Path(setting).expanduser()


class PlanCache:
    """One content-addressed plan store rooted at a directory.

    Every entry is a single ``.npz`` holding the artifact arrays plus a
    JSON metadata record under ``__meta__``.  The digest in the filename
    *is* the cache key — there is no index to corrupt or lock.
    """

    def __init__(self, root: Union[str, Path]):
        self.root = Path(root)

    # ------------------------------------------------------------------ #
    def path_for(self, digest: str) -> Path:
        return self.root / f"plan-{digest}.npz"

    def load(self, digest: str) -> Optional[Tuple[dict, Dict[str, np.ndarray]]]:
        """The ``(meta, arrays)`` payload for ``digest``, or None on any
        failure (missing, truncated, corrupted, version-mismatched)."""
        path = self.path_for(digest)
        try:
            with np.load(path, allow_pickle=False) as z:
                meta = json.loads(str(z[_META_KEY]))
                if meta.get("format") != ARTIFACT_VERSION:
                    return None
                arrays = {k: z[k] for k in z.files if k != _META_KEY}
            return meta, arrays
        except Exception:
            return None

    def store(self, digest: str, meta: dict, arrays: Dict[str, np.ndarray]) -> bool:
        """Atomically publish a payload; returns False on any I/O failure
        (a read-only or full cache dir degrades to compile-every-time)."""
        path = self.path_for(digest)
        try:
            self.root.mkdir(parents=True, exist_ok=True)
            payload = dict(arrays)
            payload[_META_KEY] = np.asarray(
                json.dumps({**meta, "format": ARTIFACT_VERSION})
            )
            fd, tmp = tempfile.mkstemp(
                prefix=f".{digest[:12]}-", suffix=".tmp", dir=self.root
            )
            try:
                with os.fdopen(fd, "wb") as fh:
                    np.savez(fh, **payload)
                os.replace(tmp, path)
            except BaseException:
                try:
                    os.unlink(tmp)
                except OSError:
                    pass
                raise
            return True
        except Exception:
            return False

    # ------------------------------------------------------------------ #
    def entries(self) -> List[dict]:
        """Inventory of the store (for ``repro plans list``): one record per
        entry with digest, size, mtime, and whatever metadata loads."""
        out: List[dict] = []
        if not self.root.is_dir():
            return out
        for path in sorted(self.root.glob("plan-*.npz")):
            digest = path.stem[len("plan-"):]
            rec: dict = {"digest": digest, "path": str(path)}
            try:
                st = path.stat()
                rec["bytes"] = st.st_size
                rec["mtime"] = st.st_mtime
            except OSError:
                continue
            payload = self.load(digest)
            if payload is None:
                rec["status"] = "corrupt"
            else:
                meta = payload[0]
                rec["status"] = "ok"
                rec["nout"] = meta.get("nout")
                rec["nin"] = meta.get("nin")
                rec["cell_shape"] = meta.get("cell_shape")
            out.append(rec)
        return out

    def kernels(self) -> List[Path]:
        """Compiled kernel objects sharing this root (``ccsweep-*.so``,
        written by :mod:`repro.cas.codegen`)."""
        if not self.root.is_dir():
            return []
        return sorted(self.root.glob("ccsweep-*.so"))

    def clear(self) -> int:
        """Remove every entry, compiled kernel object, and stale tmp file;
        returns the count of plan entries removed."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in list(self.root.glob("plan-*.npz")):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for extra in ("ccsweep-*.so", "ccsweep-*.c", ".*.tmp"):
            for path in list(self.root.glob(extra)):
                try:
                    path.unlink()
                except OSError:
                    pass
        return removed
