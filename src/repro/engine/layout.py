"""Canonical cell-major state layout.

One memory-layout decision runs through the whole stack: phase-space state
is **cell-major**,

.. code-block:: text

    (*cfg_cells, num_basis, *vel_cells)        # distribution coefficients
    (*cfg_cells, num_comp,  num_conf_basis)    # EM field state
    (*cfg_cells, num_conf_basis)               # configuration-space fields

so the per-configuration-cell coefficient blocks the batched kernels consume
are contiguous in memory, and a halo slab along a configuration axis is a
contiguous ``memcpy`` instead of a strided gather.  Before this layout the
state was *mode-major* (``(num_basis, *cfg, *vel)`` / ``(comp, Npc, *cfg)``)
and every hot path paid a transpose or ``ascontiguousarray`` pass to reach
the cell-major products; those passes are gone — the only remaining layout
conversions are at the I/O boundary (legacy checkpoints) and in the
benchmark baselines that preserve the old paths.

:class:`StateLayout` owns the phase-space conventions (shapes, axis
placement, broadcast and view helpers); the module-level functions convert
between the canonical layout and the legacy mode-major layout for
checkpoint compatibility.  Allocation helpers live on
:class:`~repro.engine.backend.ArrayBackend` so a future device backend can
place state in its own memory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

__all__ = [
    "StateLayout",
    "insert_basis_axis",
    "phase_to_cell_major",
    "phase_to_mode_major",
    "conf_to_cell_major",
    "conf_to_mode_major",
]

CELL_MAJOR = "cell-major"
MODE_MAJOR = "mode-major"


def insert_basis_axis(val, cdim: int) -> np.ndarray:
    """Reshape an aux-style array (broadcastable over the ``(*cfg, *vel)``
    cell axes) so it broadcasts over cell-major state: a length-1 basis axis
    is inserted at position ``cdim``.  Scalars pass through unchanged."""
    if np.isscalar(val):
        return val
    arr = np.asarray(val)
    if arr.ndim == 0:
        return arr
    return arr.reshape(arr.shape[:cdim] + (1,) + arr.shape[cdim:])


@dataclass(frozen=True)
class StateLayout:
    """Shape bookkeeping for one species' cell-major phase-space state.

    Parameters
    ----------
    cdim, vdim:
        Phase-space split.
    num_basis:
        Modal coefficients per phase-space cell.
    cfg_cells, vel_cells:
        Cell counts per axis.
    """

    cdim: int
    vdim: int
    num_basis: int
    cfg_cells: Tuple[int, ...]
    vel_cells: Tuple[int, ...]

    @classmethod
    def for_grid(cls, phase_grid, num_basis: int) -> "StateLayout":
        return cls(
            cdim=phase_grid.cdim,
            vdim=phase_grid.vdim,
            num_basis=int(num_basis),
            cfg_cells=tuple(phase_grid.conf.cells),
            vel_cells=tuple(phase_grid.vel.cells),
        )

    # ------------------------------------------------------------------ #
    @property
    def basis_axis(self) -> int:
        """Array axis holding the modal coefficients (= ``cdim``)."""
        return self.cdim

    @property
    def shape(self) -> Tuple[int, ...]:
        return self.cfg_cells + (self.num_basis,) + self.vel_cells

    @property
    def ncfg(self) -> int:
        return int(np.prod(self.cfg_cells)) if self.cfg_cells else 1

    @property
    def nvel(self) -> int:
        return int(np.prod(self.vel_cells)) if self.vel_cells else 1

    def axis_of(self, phase_dim: int) -> int:
        """Array axis of phase dimension ``d`` (the basis axis shifts the
        velocity axes by one)."""
        return phase_dim if phase_dim < self.cdim else phase_dim + 1

    # ------------------------------------------------------------------ #
    def alloc(self) -> np.ndarray:
        return np.zeros(self.shape)

    def empty(self) -> np.ndarray:
        return np.empty(self.shape)

    def as3d(self, arr: np.ndarray) -> np.ndarray:
        """View a cell-major state as ``(ncfg, nbasis, nvel)`` (no copy; the
        array must be C-contiguous)."""
        return arr.reshape(self.ncfg, arr.shape[self.cdim], self.nvel)

    def bcast(self, val) -> np.ndarray:
        """Broadcast-ready view of an aux-style cell array against cell-major
        state (basis axis inserted)."""
        return insert_basis_axis(val, self.cdim)

    # ------------------------------------------------------------------ #
    def mode_view(self, arr: np.ndarray) -> np.ndarray:
        """Mode-major *view* ``(num_basis, *cfg, *vel)`` of a cell-major
        array (strided, no copy) — for read-mostly consumers."""
        return np.moveaxis(arr, self.cdim, 0)

    def from_mode_major(self, arr: np.ndarray) -> np.ndarray:
        return phase_to_cell_major(arr, self.cdim)

    def to_mode_major(self, arr: np.ndarray) -> np.ndarray:
        return phase_to_mode_major(arr, self.cdim)


# --------------------------------------------------------------------- #
# layout conversions (I/O boundary and legacy-comparison paths only)
# --------------------------------------------------------------------- #
def phase_to_cell_major(arr: np.ndarray, cdim: int) -> np.ndarray:
    """Copy mode-major ``(Np, *cfg, *vel)`` to cell-major ``(*cfg, Np, *vel)``."""
    return np.ascontiguousarray(np.moveaxis(arr, 0, cdim))


def phase_to_mode_major(arr: np.ndarray, cdim: int) -> np.ndarray:
    """Copy cell-major ``(*cfg, Np, *vel)`` to mode-major ``(Np, *cfg, *vel)``."""
    return np.ascontiguousarray(np.moveaxis(arr, cdim, 0))


def conf_to_cell_major(arr: np.ndarray, cdim: int, lead: int = 1) -> np.ndarray:
    """Copy a configuration-space field with ``lead`` leading non-cell axes
    (``(comp..., Npc, *cfg)``) to cell-major ``(*cfg, comp..., Npc)``."""
    src = tuple(range(lead))
    dst = tuple(range(arr.ndim - lead, arr.ndim))
    return np.ascontiguousarray(np.moveaxis(arr, src, dst))


def conf_to_mode_major(arr: np.ndarray, cdim: int, lead: int = 1) -> np.ndarray:
    """Inverse of :func:`conf_to_cell_major`."""
    src = tuple(range(arr.ndim - lead, arr.ndim))
    dst = tuple(range(lead))
    return np.ascontiguousarray(np.moveaxis(arr, src, dst))
