"""The plan-compilation seam: interpreted vs fused, memory vs disk.

Every plan the engine builds — :class:`~repro.kernels.grouped.GroupedOperator`
misses, sharded worker blocks, campaign fleet members — routes through
:func:`compile_plan`, which makes three decisions per plan key
(termset content, aux signature, cell shape):

1. **Disk cache**: when a cache root is configured, the key is hashed
   (:func:`repro.engine.plan.plan_digest`) and a stored payload is
   hydrated via :meth:`ExecutionPlan.from_artifacts` — bit-identical to a
   fresh compile, skipping the symbol analysis and SVD factorization.  Any
   load failure (missing, stale, corrupt) falls back to compiling and
   re-publishing atomically.
2. **Execution mode**: ``fused`` (default) wraps the plan in a
   :class:`~repro.engine.fused.FusedPlan` — AOT-lowered merged sweeps and
   vectorized coefficient assembly; ``interpreted`` returns the plan as-is
   (the PR 4 reference path, and the adversary in the equivalence tests).
3. **Kernel tier** (fused mode): ``numba`` jit of the emitted sweep source
   when importable, the vectorized ``numpy`` tier otherwise
   (:func:`repro.cas.codegen.select_tier`).

Configuration is process-global (set from ``SimulationSpec`` by the runtime
driver, from the environment for library use) because plan identity is
process-global too; :func:`compiler_config` scopes overrides for tests.
Every decision increments :data:`STATS`, the counter block surfaced in
``Driver.summary()["plans"]`` and the benchmark JSON.
"""

from __future__ import annotations

import os
import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, Optional, Tuple, Union

from ..kernels.termset import AuxValue, TermSet
from ..obs import OBS as _OBS
from ..obs.metrics import SLOT as _OBS_SLOT
from .backend import ArrayBackend
from .fused import FusedPlan
from .plan import ExecutionPlan, aux_signature, plan_digest
from .plancache import PlanCache, resolve_cache_root
from .pool import ScratchPool

__all__ = [
    "CompilerConfig",
    "CompileStats",
    "STATS",
    "active_config",
    "configure",
    "configure_from_spec",
    "compiler_config",
    "compile_plan",
]

PLAN_MODES = ("fused", "interpreted")


@dataclass(frozen=True)
class CompilerConfig:
    """How plans are compiled and executed in this process.

    ``cache`` follows :func:`~repro.engine.plancache.resolve_cache_root`
    semantics: ``None``/``"off"`` disable the disk cache (the library
    default — bare operators never touch the filesystem), ``"auto"``
    selects ``$REPRO_CACHE_DIR`` or ``~/.cache/repro`` (the runtime-driver
    default), any other string is a cache directory.
    """

    mode: str = "fused"
    tier: str = "auto"
    cache: Optional[str] = None


def _env_default() -> CompilerConfig:
    return CompilerConfig(
        mode=os.environ.get("REPRO_PLAN_MODE", "fused"),
        tier=os.environ.get("REPRO_KERNEL_TIER", "auto"),
        cache=os.environ.get("REPRO_PLAN_CACHE"),
    )


_config = _env_default()


def active_config() -> CompilerConfig:
    return _config


def configure(
    mode: Optional[str] = None,
    tier: Optional[str] = None,
    cache: Optional[str] = None,
) -> CompilerConfig:
    """Update the process-global compiler configuration (None = keep)."""
    global _config
    updates = {}
    if mode is not None:
        if mode not in PLAN_MODES:
            raise ValueError(
                f"unknown plan mode {mode!r} (known: {', '.join(PLAN_MODES)})"
            )
        updates["mode"] = mode
    if tier is not None:
        updates["tier"] = tier
    if cache is not None:
        updates["cache"] = cache
    _config = replace(_config, **updates)
    return _config


def configure_from_spec(spec) -> CompilerConfig:
    """Adopt a spec's ``plan_mode``/``plan_cache`` (the driver calls this
    before building the app, so every plan of the run — including the ones
    sharded workers compile after forking — follows the spec)."""
    return configure(mode=spec.plan_mode, cache=spec.plan_cache)


@contextmanager
def compiler_config(
    mode: Optional[str] = None,
    tier: Optional[str] = None,
    cache: Optional[str] = None,
):
    """Scoped configuration override (tests, benchmarks)."""
    global _config
    saved = _config
    try:
        configure(mode=mode, tier=tier, cache=cache)
        yield _config
    finally:
        _config = saved


# --------------------------------------------------------------------- #
class CompileStats:
    """Process-global plan-compilation counters.

    ``compiled`` counts real ``ExecutionPlan`` compilations (a warm-cache
    run reports zero); ``hydrated`` counts disk-cache loads;
    ``cache_misses`` includes corrupt/stale payloads that fell back to a
    compile.  ``compile_seconds`` is the wall time spent inside
    :func:`compile_plan` either way.
    """

    FIELDS = (
        "compiled",
        "hydrated",
        "cache_hits",
        "cache_misses",
        "cache_stores",
        "fused",
        "interpreted",
        "kernels_built",
        "kernels_loaded",
        "compile_seconds",
    )

    def __init__(self):
        self.reset()

    def reset(self) -> None:
        self.compiled = 0
        self.hydrated = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.cache_stores = 0
        self.fused = 0
        self.interpreted = 0
        self.kernels_built = 0
        self.kernels_loaded = 0
        self.compile_seconds = 0.0

    def snapshot(self) -> Dict[str, float]:
        return {name: getattr(self, name) for name in self.FIELDS}

    @staticmethod
    def delta(
        after: Dict[str, float], before: Dict[str, float]
    ) -> Dict[str, float]:
        return {k: after[k] - before.get(k, 0) for k in after}


STATS = CompileStats()


# --------------------------------------------------------------------- #
def compile_plan(
    termset: TermSet,
    cdim: int,
    vdim: int,
    aux: Dict[str, AuxValue],
    cell_shape: Tuple[int, ...],
    backend: Union[str, ArrayBackend, None] = None,
    pool: Optional[ScratchPool] = None,
) -> Union[ExecutionPlan, FusedPlan]:
    """Compile (or hydrate) the plan for one plan key, per the active
    configuration.  The returned object satisfies the plan protocol
    (``apply``, ``stats``, ``signature``, ...) in either mode."""
    cfg = _config
    t0 = time.perf_counter()
    root = resolve_cache_root(cfg.cache)
    plan: Optional[ExecutionPlan] = None
    digest = None
    cache = None
    if root is not None or _OBS.on:
        # observability wants the digest even without a cache: it is the
        # plan's identity in spans (``plan_apply:<digest12>``) and reports
        names = sorted({n for sym in termset.entries_by_symbol() for n in sym})
        signature = aux_signature(names, aux, cdim, vdim)
        digest = plan_digest(termset, cdim, vdim, signature, cell_shape)
    if root is not None:
        cache = PlanCache(root)
        payload = cache.load(digest)
        if payload is not None:
            try:
                plan = ExecutionPlan.from_artifacts(
                    termset,
                    cdim,
                    vdim,
                    aux,
                    cell_shape,
                    payload[0],
                    payload[1],
                    backend=backend,
                    pool=pool,
                )
                STATS.cache_hits += 1
                STATS.hydrated += 1
            except Exception:
                # stale or damaged payload: recompile and overwrite below
                plan = None
        if plan is None:
            STATS.cache_misses += 1
    hydrated = plan is not None
    if plan is None:
        plan = ExecutionPlan(
            termset, cdim, vdim, aux, cell_shape, backend=backend, pool=pool
        )
        STATS.compiled += 1
        if cache is not None and digest is not None:
            meta, arrays = plan.to_artifacts()
            if cache.store(digest, meta, arrays):
                STATS.cache_stores += 1
    if digest is not None:
        plan.obs_label = f"plan_apply:{digest[:12]}"
    if cfg.mode == "fused":
        STATS.fused += 1
        result: Union[ExecutionPlan, FusedPlan] = FusedPlan(
            plan,
            tier=cfg.tier,
            kernel_dir=str(root) if root is not None else None,
        )
        if result.kernel_status == "built":
            STATS.kernels_built += 1
        elif result.kernel_status == "loaded":
            STATS.kernels_loaded += 1
    else:
        STATS.interpreted += 1
        result = plan
    STATS.compile_seconds += time.perf_counter() - t0
    if _OBS.on:
        # mirror into the obs registry so one snapshot carries the whole
        # performance picture (STATS stays the plans-specific source)
        slot = "plan_hydrated" if hydrated else "plan_compiled"
        _OBS.finish(
            "plan_compile", t0,
            _OBS_SLOT[slot], _OBS_SLOT["plan_compile_ms"],
        )
    return result
