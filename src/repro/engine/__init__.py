"""Precompiled kernel execution engine.

The paper's thesis is that alias-free modal kernels can run at the speed of
the underlying dense linear algebra; in Python the obstacle is per-call
interpreter overhead, not FLOPs.  This package removes that overhead once
and for all layers:

* :mod:`~repro.engine.plan` compiles a :class:`~repro.kernels.termset.TermSet`
  into an :class:`ExecutionPlan` — symbols pre-split into scalar /
  configuration-varying / velocity-varying factors, dense operator blocks
  pre-stacked, sparse blocks kept full-width for in-place accumulation —
  keyed by the aux *signature* so a plan is compiled once and reused for
  every RK stage of every step (and invalidated if the signature changes);
* :mod:`~repro.engine.pool` owns preallocated scratch buffers so steady-state
  kernel application performs no array allocation;
* :mod:`~repro.engine.backend` abstracts the dense batched products (and
  state allocation) behind an :class:`ArrayBackend` (``numpy`` default,
  ``threaded`` chunked variant), selected per simulation via
  ``SimulationSpec.backend`` / ``repro run --backend`` — the seam where
  sharded or GPU execution plugs in later;
* :mod:`~repro.engine.layout` fixes the canonical **cell-major** state
  layout ``(*cfg_cells, num_basis, *vel_cells)`` that plans, solvers, apps,
  steppers, and the sharded halo exchange all share — per-configuration-cell
  blocks are contiguous, so the batched products and halo slabs need no
  transpose or gather passes.
"""

from .backend import (
    ArrayBackend,
    NumpyBackend,
    ThreadedBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .layout import (
    StateLayout,
    conf_to_cell_major,
    conf_to_mode_major,
    phase_to_cell_major,
    phase_to_mode_major,
)
from .compile import (
    CompilerConfig,
    CompileStats,
    STATS,
    active_config,
    compile_plan,
    compiler_config,
    configure,
    configure_from_spec,
)
from .fused import FusedPlan
from .plan import (
    ExecutionPlan,
    PlanSignatureError,
    aux_signature,
    classify_aux_value,
    plan_digest,
)
from .plancache import PlanCache, default_cache_dir, resolve_cache_root
from .pool import ScratchPool

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "ThreadedBackend",
    "get_backend",
    "register_backend",
    "available_backends",
    "ExecutionPlan",
    "FusedPlan",
    "PlanSignatureError",
    "aux_signature",
    "classify_aux_value",
    "plan_digest",
    "CompilerConfig",
    "CompileStats",
    "STATS",
    "active_config",
    "configure",
    "configure_from_spec",
    "compiler_config",
    "compile_plan",
    "PlanCache",
    "default_cache_dir",
    "resolve_cache_root",
    "ScratchPool",
    "StateLayout",
    "phase_to_cell_major",
    "phase_to_mode_major",
    "conf_to_cell_major",
    "conf_to_mode_major",
]
