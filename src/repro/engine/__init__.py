"""Precompiled kernel execution engine.

The paper's thesis is that alias-free modal kernels can run at the speed of
the underlying dense linear algebra; in Python the obstacle is per-call
interpreter overhead, not FLOPs.  This package removes that overhead once
and for all layers:

* :mod:`~repro.engine.plan` compiles a :class:`~repro.kernels.termset.TermSet`
  into an :class:`ExecutionPlan` — symbols pre-split into scalar /
  configuration-varying / velocity-varying factors, dense operator blocks
  pre-stacked, sparse blocks kept full-width for in-place accumulation —
  keyed by the aux *signature* so a plan is compiled once and reused for
  every RK stage of every step (and invalidated if the signature changes);
* :mod:`~repro.engine.pool` owns preallocated scratch buffers so steady-state
  kernel application performs no array allocation;
* :mod:`~repro.engine.backend` abstracts the dense batched products behind an
  :class:`ArrayBackend` (``numpy`` default, ``threaded`` chunked variant),
  selected per simulation via ``SimulationSpec.backend`` / ``repro run
  --backend`` — the seam where sharded or GPU execution plugs in later.
"""

from .backend import (
    ArrayBackend,
    NumpyBackend,
    ThreadedBackend,
    available_backends,
    get_backend,
    register_backend,
)
from .plan import ExecutionPlan, PlanSignatureError, aux_signature, classify_aux_value
from .pool import ScratchPool

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "ThreadedBackend",
    "get_backend",
    "register_backend",
    "available_backends",
    "ExecutionPlan",
    "PlanSignatureError",
    "aux_signature",
    "classify_aux_value",
    "ScratchPool",
]
