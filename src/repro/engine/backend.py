"""Pluggable dense-array execution backends.

An :class:`ArrayBackend` supplies the two dense products an
:class:`~repro.engine.plan.ExecutionPlan` is built from — a plain GEMM and a
batched (per-configuration-cell) GEMM — always writing into caller-provided
output buffers.  Elementwise work stays plain NumPy everywhere; only the
products that dominate the FLOP count route through the backend, which is
exactly the seam a sharded or GPU executor needs.

Backends are registered by name so they can be chosen declaratively
(``SimulationSpec.backend``, ``repro run --backend``):

* ``numpy`` — single-threaded-NumPy/BLAS reference (the default);
* ``threaded`` — chunks the batch/column axis of large products across a
  thread pool (BLAS releases the GIL); bitwise identical per output column,
  worthwhile once per-cell blocks are large enough to amortize dispatch.
  ``threaded:N`` pins the worker count.
* ``process`` — marks the run for real process-sharded execution: the
  runtime driver (:func:`repro.runtime.driver.build_app`) wraps the app in a
  :class:`repro.dist.ShardedApp` that splits configuration cells across
  ``N`` persistent worker processes with shared-memory halo exchange.
  Inside each worker (and for any solver built directly against it) the
  dense products are plain NumPy, so sharded runs are bit-identical to the
  ``numpy`` backend.  ``process:N`` pins the shard count (default: the CPU
  count).
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Optional, Tuple, Union

import numpy as np

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "ThreadedBackend",
    "ProcessBackend",
    "register_backend",
    "get_backend",
    "available_backends",
]


class ArrayBackend:
    """Dense-product execution strategy used by compiled plans."""

    name = "base"

    def gemm(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``out[...] = a @ b`` for 2-D operands."""
        raise NotImplementedError

    def batched_gemm(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``out[i] = a[i] @ b[i]`` over a leading batch axis."""
        raise NotImplementedError

    def batched_gemm_acc(self, a: np.ndarray, b: np.ndarray, out: np.ndarray) -> np.ndarray:
        """``out[i] += a[i] @ b[i]`` (accumulating batched product).

        The generic fallback stages through a temporary; backends override
        with an in-place accumulation when the platform provides one.
        """
        out += np.matmul(a, b)
        return out

    # ------------------------------------------------------------------ #
    # allocation/view helpers: every state array the engine owns goes
    # through these, so a device backend can substitute its own memory
    # without touching solver code.  Layouts are always cell-major
    # (:mod:`repro.engine.layout`).
    def alloc(self, shape: Tuple[int, ...]) -> np.ndarray:
        """Zero-initialized cell-major state array."""
        return np.zeros(shape)

    def empty(self, shape: Tuple[int, ...]) -> np.ndarray:
        """Uninitialized cell-major state array."""
        return np.empty(shape)

    def alloc_state(self, layout) -> np.ndarray:
        """Zeroed phase-space state for a :class:`~repro.engine.layout.StateLayout`."""
        return self.alloc(layout.shape)

    def describe(self) -> str:
        return self.name


try:  # in-place accumulating GEMM (BLAS beta=1); scipy always ships it
    from scipy.linalg.blas import dgemm as _dgemm
except ImportError:  # pragma: no cover
    _dgemm = None


class NumpyBackend(ArrayBackend):
    """Reference backend: every product is one ``np.matmul`` call."""

    name = "numpy"

    def __init__(self):
        # staging buffers for batched accumulation, keyed by shape; owned by
        # the (sequential) caller — the threaded subclass never routes its
        # concurrent chunks through them
        self._acc_scratch: Dict[Tuple[int, ...], np.ndarray] = {}

    def gemm(self, a, b, out):
        return np.matmul(a, b, out=out)

    def batched_gemm(self, a, b, out):
        return np.matmul(a, b, out=out)

    def _acc_dgemm_loop(self, a, b, out):
        """``out[i] += a[i] @ b[i]`` in place (no staging buffer).

        Runs the transposed problem ``out[i].T += b[i].T @ a[i].T`` through
        BLAS ``dgemm`` with ``beta=1`` — the ``.T`` views of the C-ordered
        batch items are Fortran-contiguous, so BLAS accumulates directly
        into the output memory.  A non-C-contiguous ``out`` would make
        ``dgemm`` accumulate into an internal copy (silently discarding the
        result), so that case falls back to the staged base path.
        """
        if (
            _dgemm is None
            or out.dtype != np.float64
            or not out.flags.c_contiguous
        ):
            return super().batched_gemm_acc(a, b, out)
        a_batched = a.ndim == 3
        for i in range(out.shape[0]):
            ai = a[i] if a_batched else a
            _dgemm(1.0, b[i].T, ai.T, beta=1.0, c=out[i].T, overwrite_c=True)
        return out

    def batched_gemm_acc(self, a, b, out):
        """``out[i] += a[i] @ b[i]``, staged through a persistent scratch.

        For a batched (3-D) ``a``, one ``np.matmul`` into scratch plus an
        in-place add beats a per-cell ``dgemm(beta=1)`` loop on the small
        per-cell blocks the plans produce (one gufunc dispatch instead of
        ``ncells`` BLAS calls).  A broadcast 2-D ``a`` keeps the dgemm loop
        — there matmul re-reads ``a`` per batch item and loses.
        """
        if a.ndim != 3 or out.dtype != np.float64:
            return self._acc_dgemm_loop(a, b, out)
        key = out.shape
        tmp = self._acc_scratch.get(key)
        if tmp is None:
            if len(self._acc_scratch) >= 8:
                self._acc_scratch.pop(next(iter(self._acc_scratch)))
            tmp = self._acc_scratch[key] = np.empty(key)
        np.matmul(a, b, out=tmp)
        out += tmp
        return out


class ThreadedBackend(NumpyBackend):
    """Chunks large products across a persistent thread pool.

    Output chunks are disjoint slices — no accumulation races — and each
    element is one dot product, so results agree with the numpy backend to
    the dot-reassociation limit (BLAS may block subproblems differently).
    Products below ``min_work`` multiply-adds fall through to the
    single-call path.
    """

    name = "threaded"

    def __init__(self, workers: Optional[int] = None, min_work: int = 1 << 18):
        super().__init__()
        if workers is None:
            self.workers = min(8, os.cpu_count() or 1)
        else:
            self.workers = int(workers)
            if self.workers < 1:
                raise ValueError(f"worker count must be >= 1, got {workers}")
        self.min_work = int(min_work)
        self._executor = None

    def describe(self) -> str:
        return f"threaded({self.workers})"

    def _pool(self):
        if self._executor is None:
            from concurrent.futures import ThreadPoolExecutor

            self._executor = ThreadPoolExecutor(
                max_workers=self.workers, thread_name_prefix="repro-backend"
            )
        return self._executor

    def _run_chunks(self, tasks: List[Callable[[], None]]) -> None:
        pool = self._pool()
        for fut in [pool.submit(t) for t in tasks]:
            fut.result()

    def gemm(self, a, b, out):
        n = out.shape[-1]
        work = a.shape[0] * a.shape[1] * n
        if self.workers < 2 or work < self.min_work or n < self.workers:
            return np.matmul(a, b, out=out)
        step = -(-n // self.workers)
        self._run_chunks(
            [
                (lambda s=s: np.matmul(a, b[:, s : s + step], out=out[:, s : s + step]))
                for s in range(0, n, step)
            ]
        )
        return out

    def batched_gemm(self, a, b, out):
        nbatch = out.shape[0]
        work = nbatch * a.shape[-2] * a.shape[-1] * out.shape[-1]
        if self.workers < 2 or work < self.min_work or nbatch < self.workers:
            return np.matmul(a, b, out=out)
        step = -(-nbatch // self.workers)
        a_batched = a.ndim == 3
        self._run_chunks(
            [
                (
                    lambda s=s: np.matmul(
                        a[s : s + step] if a_batched else a,
                        b[s : s + step],
                        out=out[s : s + step],
                    )
                )
                for s in range(0, nbatch, step)
            ]
        )
        return out

    def batched_gemm_acc(self, a, b, out):
        """Accumulating batched product, chunked over the batch axis —
        disjoint output chunks, dgemm releases the GIL inside each."""
        nbatch = out.shape[0]
        work = nbatch * a.shape[-2] * a.shape[-1] * out.shape[-1]
        if self.workers < 2 or work < self.min_work or nbatch < self.workers:
            return super().batched_gemm_acc(a, b, out)
        step = -(-nbatch // self.workers)
        a_batched = a.ndim == 3
        # per-chunk in-place dgemm accumulation: thread-safe (no shared
        # staging buffer) and GIL-releasing inside each chunk
        acc = self._acc_dgemm_loop
        self._run_chunks(
            [
                (
                    lambda s=s: acc(
                        a[s : s + step] if a_batched else a,
                        b[s : s + step],
                        out[s : s + step],
                    )
                )
                for s in range(0, nbatch, step)
            ]
        )
        return out


class ProcessBackend(NumpyBackend):
    """Marker backend for process-sharded execution (``process[:N]``).

    The sharding itself happens one level up — the runtime driver sees this
    backend and executes the simulation through
    :class:`repro.dist.ShardedApp` across ``shards`` worker processes.  At
    the dense-product level it *is* the numpy backend, which is what makes
    sharded runs bit-identical to serial ones: every per-cell product is
    the same call on the same shapes, just batched over fewer cells.
    """

    name = "process"

    def __init__(self, shards: Optional[int] = None):
        super().__init__()
        if shards is None:
            shards = os.cpu_count() or 1
        self.shards = int(shards)
        if self.shards < 1:
            raise ValueError(f"shard count must be >= 1, got {shards}")

    def describe(self) -> str:
        return f"process({self.shards})"


# --------------------------------------------------------------------- #
_BACKENDS: Dict[str, Callable[..., ArrayBackend]] = {}


def register_backend(name: str, factory: Callable[..., ArrayBackend]) -> None:
    """Register a backend factory ``factory(**kwargs) -> ArrayBackend``."""
    _BACKENDS[name] = factory


register_backend("numpy", NumpyBackend)
register_backend("threaded", ThreadedBackend)
register_backend("process", ProcessBackend)


def available_backends() -> List[str]:
    return sorted(_BACKENDS)


def get_backend(spec: Union[str, ArrayBackend, None]) -> ArrayBackend:
    """Resolve a backend instance from an instance, a name, or ``name:arg``
    (``threaded:4`` pins four workers).  ``None`` means the default."""
    if spec is None:
        spec = "numpy"
    if isinstance(spec, ArrayBackend):
        return spec
    name, _, arg = str(spec).partition(":")
    if name not in _BACKENDS:
        raise ValueError(
            f"unknown backend {name!r} (available: {', '.join(available_backends())})"
        )
    if arg:
        try:
            count = int(arg)
        except ValueError:
            raise ValueError(
                f"bad backend argument {spec!r}: {arg!r} is not an integer"
            ) from None
        return _BACKENDS[name](count)
    return _BACKENDS[name]()
