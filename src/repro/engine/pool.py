"""Preallocated scratch-buffer pool.

Kernel application needs a handful of temporaries (velocity-weighted states,
per-cell operator stacks, batched-GEMM outputs).  Allocating them per call
costs more than the arithmetic on the small grids the paper benchmarks, so
plans draw them from a :class:`ScratchPool`: one persistent array per
``(tag, shape)``, reused across every plan and RK stage that shares the
pool.  Pools are not thread-safe by design — one pool per solver instance,
applied sequentially; parallel backends only thread *inside* a single dense
product, never across pool users.
"""

from __future__ import annotations

from typing import Dict, Tuple

import numpy as np

from ..obs import OBS as _OBS
from ..obs.metrics import SLOT as _OBS_SLOT

__all__ = ["ScratchPool"]

_S_SCRATCH = _OBS_SLOT["scratch_bytes"]


class ScratchPool:
    """Dictionary of reusable float64 work arrays keyed by (tag, shape).

    The pool also audits *layout-normalizing copies*: code that is forced to
    copy a full state array into scratch just to fix its memory layout (a
    non-contiguous input where the cell-major hot path expects contiguous
    state) reports it through :meth:`record_layout_copy`.  In steady state
    the cell-major layout makes every such copy unnecessary, and tests turn
    on :attr:`copy_debug` to assert none happen.
    """

    def __init__(self):
        self._arrays: Dict[Tuple[str, Tuple[int, ...]], np.ndarray] = {}
        #: when True, any layout-normalizing copy raises instead of counting
        self.copy_debug = False
        #: cumulative count of layout-normalizing copies (diagnostics)
        self.layout_copies = 0
        #: id() of the state the owning solver declared content-stable for
        #: the current RHS evaluation (see :meth:`mark_stable_state`)
        self.stable_id: int | None = None
        #: velocity-factor keys whose shared weighted copy of the stable
        #: state is current (:meth:`repro.engine.fused.FusedPlan._weighted`)
        self.shared_weights: set = set()

    def mark_stable_state(self, state: np.ndarray) -> None:
        """Declare ``state`` content-stable until the next call.

        Solvers call this once per RHS evaluation with the stage state all
        their operators read; fused plans then compute each distinct
        velocity-weighted copy of it once and share it across operators.
        The multiply is elementwise, so sharing is bit-exact.
        """
        self.stable_id = id(state)
        self.shared_weights.clear()

    def record_layout_copy(self, tag: str, shape: Tuple[int, ...] = ()) -> None:
        """Note (or, under ``copy_debug``, reject) a copy made solely to
        normalize an array's memory layout."""
        self.layout_copies += 1
        if self.copy_debug:
            raise RuntimeError(
                f"unexpected layout-normalizing copy {tag!r} (shape {shape}); "
                "the cell-major hot path must consume state without copies"
            )

    def get(self, tag: str, shape: Tuple[int, ...], zero: bool = False) -> np.ndarray:
        """Fetch the persistent buffer for ``(tag, shape)``.

        Two simultaneous uses of the same shape must use distinct tags;
        sequential uses may share.  ``zero=True`` clears it first.
        """
        key = (tag, tuple(shape))
        arr = self._arrays.get(key)
        if arr is None:
            arr = np.zeros(key[1])
            self._arrays[key] = arr
            if _OBS.on:
                # high-water gauge, updated only on the (rare) alloc branch
                values = _OBS.metrics.values
                total = self.nbytes
                if total > values[_S_SCRATCH]:
                    values[_S_SCRATCH] = total
        elif zero:
            arr.fill(0.0)
        return arr

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self._arrays.values())

    def __len__(self) -> int:
        return len(self._arrays)

    def clear(self) -> None:
        self._arrays.clear()
        self.stable_id = None
        self.shared_weights.clear()
