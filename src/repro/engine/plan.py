"""Compiled execution plans for generated kernels — cell-major native.

A :class:`~repro.kernels.termset.TermSet` names its runtime factors
symbolically; *how* to evaluate it efficiently depends on where each factor
varies.  An :class:`ExecutionPlan` performs that analysis once — against an
**aux signature**, the classification of every symbol as scalar (``s``),
configuration-varying (``c``), velocity-varying (``v``) or irregular
(``x``) — and freezes the result:

* terms whose symbols carry no configuration dependence share one operator
  for every phase-space cell; they are kept as full-width sparse matrices
  and applied as in-place sparse×dense products, one configuration cell's
  contiguous ``(nin, nvel)`` block at a time (zero temporaries);
* terms with configuration-varying factors (the acceleration kernels' modal
  field coefficients) are pre-stacked into dense operator blocks; per
  application one small GEMM assembles the per-cell operators
  ``A[c] = Σ_i coef_i[c] K_i`` and one batched GEMM applies them — the
  near-BLAS-throughput form of the paper's headline claim;
* symbols varying on both cell groups fall back to the exact sparse
  reference path.

State is **cell-major** (:mod:`repro.engine.layout`): ``fin``/``out`` are
``(*cfg_cells, n, *vel_cells)``, whose C-contiguous view *is* the
``(ncfg, n, nvel)`` batch the dense products consume.  The phase-major
transform-assign shims of the previous engine (gather into cell-major
scratch, transpose-add back) are gone: the batched GEMMs read the state and
write the output directly.

Plans own no state except references into a shared
:class:`~repro.engine.pool.ScratchPool`, so steady-state application
allocates nothing — and, with the layout flip, copies nothing: the one
remaining normalizing copy (a non-contiguous ``fin``) is reported through
:meth:`ScratchPool.record_layout_copy`, which the copy-assert tests turn
into a hard failure.  A plan is only valid for the signature and cell shape
it was compiled against; :class:`~repro.kernels.grouped.GroupedOperator`
keys its plan cache on both, which is what fixes the historical stale-plan
hazard.
"""

from __future__ import annotations

import hashlib
import json
from time import perf_counter as _perf_counter
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..kernels.termset import AuxValue, Symbol, TermSet, csr_accumulate
from ..obs import OBS as _OBS
from ..obs.metrics import SLOT as _OBS_SLOT
from .backend import ArrayBackend, get_backend
from .plancache import ARTIFACT_VERSION
from .pool import ScratchPool

__all__ = [
    "classify_aux_value",
    "aux_signature",
    "plan_digest",
    "ExecutionPlan",
    "PlanSignatureError",
]

_S_PLAN_APPLIES = _OBS_SLOT["plan_applies"]
_S_PLAN_APPLY_MS = _OBS_SLOT["plan_apply_ms"]

Signature = Tuple[Tuple[str, str], ...]


class PlanSignatureError(ValueError):
    """An ExecutionPlan was applied to aux it was not compiled for."""


def classify_aux_value(val: AuxValue, cdim: int, vdim: int) -> str:
    """Classify one runtime symbol value: ``s`` scalar/constant, ``c``
    configuration-varying, ``v`` velocity-varying, ``x`` irregular (varies on
    both, or does not span the phase axes)."""
    if type(val) is float or np.isscalar(val):
        return "s"
    arr = np.asarray(val)
    if arr.ndim == 0:
        return "s"
    if arr.ndim != cdim + vdim:
        return "x"
    varies_cfg = any(s > 1 for s in arr.shape[:cdim])
    varies_vel = any(s > 1 for s in arr.shape[cdim:])
    if varies_cfg and varies_vel:
        return "x"
    if varies_cfg:
        return "c"
    if varies_vel:
        return "v"
    return "s"


def aux_signature(
    names: Sequence[str], aux: Dict[str, AuxValue], cdim: int, vdim: int
) -> Signature:
    """Classification signature of ``aux`` restricted to ``names``.

    Two aux dicts with equal signatures are interchangeable under the same
    compiled plan (values may differ; layout may not).
    """
    out = []
    for name in names:
        try:
            val = aux[name]
        except KeyError as exc:
            raise KeyError(
                f"kernel symbol {name!r} missing from aux (have: {sorted(aux)})"
            ) from exc
        out.append((name, classify_aux_value(val, cdim, vdim)))
    return tuple(out)


def plan_digest(
    termset: TermSet,
    cdim: int,
    vdim: int,
    signature: Signature,
    cell_shape: Tuple[int, ...],
) -> str:
    """Content digest of one compiled-plan identity.

    Hashes exactly the inputs plan compilation is a pure function of — the
    termset's symbolic entries (coefficients bit-exact via ``float.hex``),
    the phase split, the aux signature, and the cell shape — plus the
    artifact format version, so a layout change invalidates every cached
    entry.  Two plans with equal digests compile to identical artifacts.
    """
    h = hashlib.sha256()
    head = {
        "format": ARTIFACT_VERSION,
        "cdim": int(cdim),
        "vdim": int(vdim),
        "nout": termset.nout,
        "nin": termset.nin,
        "cell_shape": [int(n) for n in cell_shape],
        "signature": [[name, tok] for name, tok in signature],
    }
    h.update(json.dumps(head, sort_keys=True).encode())
    for sym, triples in sorted(termset.entries_by_symbol().items()):
        h.update(repr(tuple(sym)).encode())
        for l, m, coeff in triples:
            h.update(f"{l},{m},{float(coeff).hex()};".encode())
    return h.hexdigest()


def _scalar_value(val: AuxValue) -> float:
    if type(val) is float or np.isscalar(val):
        return float(val)
    arr = np.asarray(val)
    # constant arrays classified "s" are size one in every axis
    return float(arr.reshape(-1)[0])


class _UniformGroup:
    """Terms with one shared operator per cell: sparse, applied in place.

    At compile time each term's csr matrix is expanded to the block-diagonal
    ``kron(I_ncfg, M)`` over the plan's configuration cells, so one
    ``csr_matvecs`` call sweeps every cell's contiguous ``(nin, nvel)``
    block — per-row arithmetic identical to the per-cell kernel, without
    ``ncfg`` Python-level calls."""

    __slots__ = ("vel_names", "terms")

    def __init__(self, vel_names: Tuple[str, ...]):
        self.vel_names = vel_names
        # each term: (scalar_names, batched kron csr, preallocated
        #             scaled-data buffer for the kron data, per-cell csr —
        #             kept for serialization and the fused lowering)
        self.terms: List[
            Tuple[Tuple[str, ...], sp.csr_matrix, np.ndarray, sp.csr_matrix]
        ] = []


class _CfgGroup:
    """Terms with configuration-varying operators: pre-stacked dense blocks."""

    __slots__ = ("vel_names", "items", "mats", "hat")

    def __init__(self, vel_names: Tuple[str, ...]):
        self.vel_names = vel_names
        # each item: (scalar_names, cfg_names); row i of ``mats`` is its block
        self.items: List[Tuple[Tuple[str, ...], Tuple[str, ...]]] = []
        self.mats: Optional[np.ndarray] = None  # (n_items, nout * nin)
        self.hat: Optional[np.ndarray] = None   # (n_items, r_out * r_in)


class ExecutionPlan:
    """A TermSet compiled against one (aux signature, cell shape) pair.

    ``obs_label`` is the span label applications record under when tracing
    (:mod:`repro.obs`); :func:`repro.engine.compile.compile_plan` rebinds it
    to ``plan_apply:<digest12>`` so traces attribute time to plans.

    Parameters
    ----------
    termset:
        The generated kernel.
    cdim, vdim:
        Phase-space split defining the configuration/velocity cell axes.
    aux:
        A representative aux dict; only its *signature* (classification of
        each symbol) is baked in, never its values.
    cell_shape:
        The ``(*cfg_cells, *vel_cells)`` axes of the states this plan will
        be applied to (the basis axis sits between them at runtime);
        scratch buffers are sized for it.
    backend, pool:
        Dense-product strategy and shared scratch arena.
    """

    # class-level default keeps plans unpickled from older caches valid
    obs_label = "plan_apply"

    def __init__(
        self,
        termset: TermSet,
        cdim: int,
        vdim: int,
        aux: Dict[str, AuxValue],
        cell_shape: Tuple[int, ...],
        backend: Optional[ArrayBackend] = None,
        pool: Optional[ScratchPool] = None,
    ):
        self._setup(termset, cdim, vdim, aux, cell_shape, backend, pool)
        self._compile(dict(self.signature))

    def _setup(
        self,
        termset: TermSet,
        cdim: int,
        vdim: int,
        aux: Dict[str, AuxValue],
        cell_shape: Tuple[int, ...],
        backend: Optional[ArrayBackend],
        pool: Optional[ScratchPool],
    ) -> None:
        self.termset = termset
        self.cdim = int(cdim)
        self.vdim = int(vdim)
        self.nout = termset.nout
        self.nin = termset.nin
        self.cell_shape = tuple(cell_shape)
        self.cfg_shape = self.cell_shape[: self.cdim]
        self.vel_shape = self.cell_shape[self.cdim :]
        self.ncfg = int(np.prod(self.cfg_shape)) if self.cfg_shape else 1
        self.nvel = int(np.prod(self.vel_shape)) if self.vel_shape else 1
        self.ncells = self.ncfg * self.nvel
        self.in_shape = self.cfg_shape + (self.nin,) + self.vel_shape
        self.out_shape = self.cfg_shape + (self.nout,) + self.vel_shape
        self.backend = get_backend(backend)
        self.pool = pool if pool is not None else ScratchPool()
        self.names = sorted({n for sym in termset.entries_by_symbol() for n in sym})
        self.signature = aux_signature(self.names, aux, self.cdim, self.vdim)

    @classmethod
    def from_artifacts(
        cls,
        termset: TermSet,
        cdim: int,
        vdim: int,
        aux: Dict[str, AuxValue],
        cell_shape: Tuple[int, ...],
        meta: dict,
        arrays: Dict[str, np.ndarray],
        backend: Optional[ArrayBackend] = None,
        pool: Optional[ScratchPool] = None,
    ) -> "ExecutionPlan":
        """Rebuild a plan from serialized artifacts instead of compiling.

        The stored metadata must match the identity this plan would compile
        to (signature, shapes); mismatches raise ``ValueError`` so callers
        treat stale payloads as cache misses.  Hydration skips the analysis
        and the SVD factorization entirely — the expensive parts of
        ``_compile`` — and is bit-identical to a fresh compile.
        """
        self = cls.__new__(cls)
        self._setup(termset, cdim, vdim, aux, cell_shape, backend, pool)
        self._hydrate(meta, arrays)
        return self

    # ------------------------------------------------------------------ #
    def _compile(self, tokens: Dict[str, str]) -> None:
        uniform: Dict[Tuple[str, ...], _UniformGroup] = {}
        cfg_groups: Dict[Tuple[str, ...], _CfgGroup] = {}
        cfg_mats: Dict[Tuple[str, ...], List[np.ndarray]] = {}
        fallback: Dict[Symbol, list] = {}
        for sym, triples in self.termset.entries_by_symbol().items():
            scalar_names, cfg_names, vel_names = [], [], []
            irregular = False
            for name in sym:
                tok = tokens[name]
                if tok == "x":
                    irregular = True
                    break
                (scalar_names if tok == "s" else cfg_names if tok == "c" else vel_names).append(name)
            if irregular:
                fallback[sym] = triples
                continue
            key = tuple(sorted(vel_names))
            rows = np.array([t[0] for t in triples], dtype=np.int64)
            cols = np.array([t[1] for t in triples], dtype=np.int64)
            vals = np.array([t[2] for t in triples], dtype=float)
            mat = sp.csr_matrix(
                (vals, (rows, cols)), shape=(self.nout, self.nin)
            )
            if cfg_names:
                grp = cfg_groups.get(key)
                if grp is None:
                    grp = cfg_groups[key] = _CfgGroup(key)
                    cfg_mats[key] = []
                grp.items.append((tuple(scalar_names), tuple(cfg_names)))
                cfg_mats[key].append(mat.toarray().reshape(-1))
            else:
                grp = uniform.get(key)
                if grp is None:
                    grp = uniform[key] = _UniformGroup(key)
                # block-diagonal expansion over configuration cells: the
                # batched sweep multiplies the same per-cell rows, so the
                # result is bit-identical to the per-cell kernel
                bmat = sp.kron(
                    sp.identity(self.ncfg, format="csr"), mat, format="csr"
                )
                grp.terms.append(
                    (
                        tuple(scalar_names),
                        bmat,
                        np.empty_like(bmat.data) if scalar_names else None,
                        mat,
                    )
                )
        for key, grp in cfg_groups.items():
            grp.mats = np.stack(cfg_mats[key]) if cfg_mats[key] else None
        self._uniform = list(uniform.values())
        self._cfg = [g for g in cfg_groups.values() if g.mats is not None]
        self._fallback = (
            TermSet(self.nout, self.nin, fallback) if fallback else None
        )
        self._factorize_cfg()

    def _factorize_cfg(self) -> None:
        """Shared low-rank factorization of the dense operator stacks.

        Surface kernels act through a face trace, so every block of a
        surface plan shares row/column spaces of dimension = the number of
        face modes (20 of 96 x 48 for 2X2V p=2 serendipity).  When the
        structural rank is low enough to pay for the extra trace/lift
        products, blocks are stored as ``K_i = U H_i V^T`` and applications
        run in the reduced space: one trace product, small batched GEMMs,
        one lift product.  The factorization is orthonormal and exact to
        roundoff (verified here; falls back to the direct stacks if not).
        """
        self._fact = None
        if not self._cfg:
            return
        K = np.concatenate(
            [g.mats.reshape(len(g.items), self.nout, self.nin) for g in self._cfg]
        )
        _, s_in, vt = np.linalg.svd(K.reshape(-1, self.nin), full_matrices=False)
        _, s_out, wt = np.linalg.svd(
            np.swapaxes(K, 1, 2).reshape(-1, self.nout), full_matrices=False
        )
        if s_in.size == 0 or s_in[0] == 0.0:
            return
        r_in = int(np.sum(s_in > s_in[0] * 1e-10))
        r_out = int(np.sum(s_out > s_out[0] * 1e-10))
        ngroups = len(self._cfg)
        direct = ngroups * self.nout * self.nin
        factored = (
            r_in * self.nin + ngroups * r_out * r_in + self.nout * r_out
        )
        if factored >= 0.85 * direct:
            return
        vt = np.ascontiguousarray(vt[:r_in])          # (r_in, nin)
        u = np.ascontiguousarray(wt[:r_out].T)        # (nout, r_out)
        hat = np.matmul(np.matmul(u.T, K), vt.T)      # (n_total, r_out, r_in)
        recon = np.matmul(np.matmul(u, hat), vt)
        scale = np.max(np.abs(K)) or 1.0
        if np.max(np.abs(recon - K)) > 1e-12 * scale:  # pragma: no cover
            return
        start = 0
        for grp in self._cfg:
            n = len(grp.items)
            grp.hat = hat[start : start + n].reshape(n, r_out * r_in).copy()
            grp.mats = None  # the dense stack is fully replaced by its factors
            start += n
        self._fact = (u, vt, r_out, r_in)

    # ------------------------------------------------------------------ #
    def to_artifacts(self) -> Tuple[dict, Dict[str, np.ndarray]]:
        """Serialize the compiled operator blocks to ``(meta, arrays)``.

        The payload holds everything ``_compile`` + ``_factorize_cfg``
        produce that is expensive or non-trivial to rebuild: per-cell
        sparse blocks (the kron expansion is cheap and cell-count-bound,
        so only the per-cell form is stored), dense stacks or their
        low-rank ``hat`` factors, and the shared ``U``/``V^T`` factors.
        Symbol structure and the fallback's entries come back from the
        termset, which the loader always has in hand.
        """
        meta: dict = {
            "nout": self.nout,
            "nin": self.nin,
            "cdim": self.cdim,
            "vdim": self.vdim,
            "cell_shape": [int(n) for n in self.cell_shape],
            "signature": [[name, tok] for name, tok in self.signature],
            "uniform": [],
            "cfg": [],
            "fact": None,
            "fallback_syms": [],
        }
        arrays: Dict[str, np.ndarray] = {}
        for gi, grp in enumerate(self._uniform):
            meta["uniform"].append(
                {
                    "vel_names": list(grp.vel_names),
                    "terms": [list(t[0]) for t in grp.terms],
                }
            )
            for tj, (_sn, _bmat, _dbuf, mat) in enumerate(grp.terms):
                arrays[f"u{gi}t{tj}d"] = mat.data
                arrays[f"u{gi}t{tj}i"] = mat.indices
                arrays[f"u{gi}t{tj}p"] = mat.indptr
        for gi, grp in enumerate(self._cfg):
            meta["cfg"].append(
                {
                    "vel_names": list(grp.vel_names),
                    "items": [
                        [list(sn), list(cn)] for sn, cn in grp.items
                    ],
                    "kind": "hat" if grp.hat is not None else "mats",
                }
            )
            arrays[f"c{gi}"] = grp.hat if grp.hat is not None else grp.mats
        if self._fact is not None:
            u, vt, r_out, r_in = self._fact
            meta["fact"] = [int(r_out), int(r_in)]
            arrays["factu"] = u
            arrays["factvt"] = vt
        if self._fallback is not None:
            meta["fallback_syms"] = [
                list(sym) for sym in self._fallback.entries_by_symbol()
            ]
        return meta, arrays

    def _hydrate(self, meta: dict, arrays: Dict[str, np.ndarray]) -> None:
        """Rebuild the compiled state from :meth:`to_artifacts` output."""
        if (
            meta.get("nout") != self.nout
            or meta.get("nin") != self.nin
            or meta.get("cdim") != self.cdim
            or meta.get("vdim") != self.vdim
            or tuple(meta.get("cell_shape", ())) != self.cell_shape
            or tuple(tuple(p) for p in meta.get("signature", ()))
            != self.signature
        ):
            raise ValueError("stored plan artifacts do not match this plan key")
        entries = self.termset.entries_by_symbol()
        self._uniform = []
        for gi, gmeta in enumerate(meta["uniform"]):
            grp = _UniformGroup(tuple(gmeta["vel_names"]))
            for tj, scalar_names in enumerate(gmeta["terms"]):
                mat = sp.csr_matrix(
                    (
                        arrays[f"u{gi}t{tj}d"],
                        arrays[f"u{gi}t{tj}i"],
                        arrays[f"u{gi}t{tj}p"],
                    ),
                    shape=(self.nout, self.nin),
                )
                bmat = sp.kron(
                    sp.identity(self.ncfg, format="csr"), mat, format="csr"
                )
                grp.terms.append(
                    (
                        tuple(scalar_names),
                        bmat,
                        np.empty_like(bmat.data) if scalar_names else None,
                        mat,
                    )
                )
            self._uniform.append(grp)
        self._cfg = []
        fact_meta = meta.get("fact")
        for gi, gmeta in enumerate(meta["cfg"]):
            grp = _CfgGroup(tuple(gmeta["vel_names"]))
            grp.items = [
                (tuple(sn), tuple(cn)) for sn, cn in gmeta["items"]
            ]
            block = np.ascontiguousarray(arrays[f"c{gi}"], dtype=float)
            if gmeta["kind"] == "hat":
                grp.hat = block
            else:
                grp.mats = block
            self._cfg.append(grp)
        if fact_meta is not None:
            r_out, r_in = int(fact_meta[0]), int(fact_meta[1])
            self._fact = (
                np.ascontiguousarray(arrays["factu"], dtype=float),
                np.ascontiguousarray(arrays["factvt"], dtype=float),
                r_out,
                r_in,
            )
        else:
            self._fact = None
        fb_syms = [tuple(sym) for sym in meta.get("fallback_syms", [])]
        if fb_syms:
            self._fallback = TermSet(
                self.nout, self.nin, {sym: entries[sym] for sym in fb_syms}
            )
        else:
            self._fallback = None

    # ------------------------------------------------------------------ #
    def ensure_signature(self, aux: Dict[str, AuxValue]) -> None:
        """Raise :class:`PlanSignatureError` if ``aux`` no longer matches the
        signature this plan was compiled against."""
        sig = aux_signature(self.names, aux, self.cdim, self.vdim)
        if sig != self.signature:
            changed = [
                f"{name}: {dict(self.signature)[name]!r} -> {tok!r}"
                for name, tok in sig
                if dict(self.signature)[name] != tok
            ]
            raise PlanSignatureError(
                "aux layout changed since this plan was compiled "
                f"({'; '.join(changed)}); rebuild the plan"
            )

    # ------------------------------------------------------------------ #
    def _vel_product(self, names: Tuple[str, ...], aux: Dict[str, AuxValue]):
        """Product of velocity-varying factors (small, velocity-axis sized),
        shaped over the ``(*cfg, *vel)`` cell axes."""
        val = np.asarray(aux[names[0]])
        for name in names[1:]:
            val = val * np.asarray(aux[name])
        return val

    def _vel_factor_b(self, names: Tuple[str, ...], aux) -> np.ndarray:
        """Velocity factor with the basis axis inserted, broadcastable
        against cell-major state."""
        val = self._vel_product(names, aux)
        return val.reshape(val.shape[: self.cdim] + (1,) + val.shape[self.cdim :])

    def _cfg_row(self, val: AuxValue) -> np.ndarray:
        """A configuration-varying factor flattened to ``(ncfg,)`` —
        a view in the standard layout ``cfg_cells + (1,)*vdim``."""
        arr = np.asarray(val)
        if arr.shape[: self.cdim] == self.cfg_shape:
            return arr.reshape(self.ncfg)
        return np.broadcast_to(
            arr, self.cfg_shape + (1,) * self.vdim
        ).reshape(self.ncfg)

    # ------------------------------------------------------------------ #
    def apply(
        self,
        fin: np.ndarray,
        aux: Dict[str, AuxValue],
        out: np.ndarray,
        accumulate: bool = True,
    ) -> np.ndarray:
        """Accumulate the kernel action into ``out``.

        ``fin`` is cell-major ``(*cfg_cells, nin, *vel_cells)`` and ``out``
        cell-major ``(*cfg_cells, nout, *vel_cells)``; ``out`` must be
        C-contiguous (it is accumulated in place), and a non-contiguous
        ``fin`` incurs one audited normalizing copy.

        With ``accumulate=False`` the prior contents of ``out`` are
        discarded (``out = K f`` rather than ``out += K f``) without the
        caller having to zero it — the first dense write assigns.
        """
        if _OBS.on:
            t0 = _perf_counter()
            out = self._apply_impl(fin, aux, out, accumulate)
            _OBS.finish(self.obs_label, t0, _S_PLAN_APPLIES, _S_PLAN_APPLY_MS)
            return out
        return self._apply_impl(fin, aux, out, accumulate)

    def _apply_impl(
        self,
        fin: np.ndarray,
        aux: Dict[str, AuxValue],
        out: np.ndarray,
        accumulate: bool = True,
    ) -> np.ndarray:
        if fin.shape != self.in_shape:
            raise ValueError(
                f"plan compiled for input {self.in_shape}, got {fin.shape}"
            )
        if out.shape != self.out_shape:
            raise ValueError(
                f"plan compiled for output {self.out_shape}, got {out.shape}"
            )
        if not out.flags.c_contiguous:
            raise ValueError("out must be C-contiguous (accumulated in place)")
        pool = self.pool
        if not fin.flags.c_contiguous:
            # cell-major callers hand contiguous state everywhere in steady
            # state; this normalizing copy only fires on exotic inputs and
            # is audited so the copy-assert tests can prove it never runs
            pool.record_layout_copy("plan.fcontig", fin.shape)
            fcontig = pool.get("plan.fcontig", fin.shape)
            np.copyto(fcontig, fin)
            fin = fcontig
        f3 = fin.reshape(self.ncfg, self.nin, self.nvel)
        out3 = out.reshape(self.ncfg, self.nout, self.nvel)
        # velocity-weighted states, computed once per distinct factor and
        # shared between the dense (cfg-batched) and sparse parts — the
        # volume plan's acceleration and streaming groups read the same
        # ``f * w_j`` products
        wcache: Dict[Tuple[str, ...], np.ndarray] = {}

        # dense (configuration-batched) part first: in non-accumulating
        # mode its result is *assigned* into out, saving a zero pass; the
        # sparse parts below always accumulate on top
        if self._cfg:
            self._apply_cfg_into(f3, fin, aux, out3, wcache, accumulate=accumulate)
        elif not accumulate:
            out.fill(0.0)

        for grp in self._uniform:
            if grp.vel_names:
                g = self._weighted(fin, grp.vel_names, aux, wcache)
                x2 = g.reshape(self.ncfg * self.nin, self.nvel)
            else:
                x2 = fin.reshape(self.ncfg * self.nin, self.nvel)
            y2 = out.reshape(self.ncfg * self.nout, self.nvel)
            for scalar_names, bmat, dbuf, _mat in grp.terms:
                if scalar_names:
                    c = 1.0
                    for name in scalar_names:
                        c *= _scalar_value(aux[name])
                    np.multiply(bmat.data, c, out=dbuf)
                    data = dbuf
                else:
                    data = bmat.data  # no scalar factors: no data pass
                # one batched sweep over every configuration cell's
                # contiguous block (block-diagonal kron, bit-identical rows)
                csr_accumulate(bmat, data, x2, y2)

        if self._fallback is not None:
            self._fallback.apply_cm(fin, aux, out, self.cdim)
        return out

    def _weighted(
        self,
        fin: np.ndarray,
        names: Tuple[str, ...],
        aux: Dict[str, AuxValue],
        wcache: Dict[Tuple[str, ...], np.ndarray],
    ) -> np.ndarray:
        """``fin`` times the velocity factor named by ``names`` — computed
        once per apply and shared across groups (pooled per factor)."""
        g = wcache.get(names)
        if g is None:
            velfac = self._vel_factor_b(names, aux)
            g = self.pool.get(f"plan.g:{'*'.join(names)}", self.in_shape)
            np.multiply(fin, velfac, out=g)
            wcache[names] = g
        return g

    def _apply_cfg_into(self, f3, fin, aux, outc, wcache, accumulate: bool) -> None:
        """Assemble per-cell operators with one small GEMM and apply them
        with one batched GEMM per group, straight from/to the cell-major
        state views (assigned when ``accumulate`` is False)."""
        pool, backend = self.pool, self.backend
        if self._fact is not None:
            u, vt, r_out, r_in = self._fact
            # reduced space: trace once, per-group small products, lift once
            gt = pool.get("plan.gt", (self.ncfg, r_in, self.nvel))
            backend.batched_gemm(vt, f3, out=gt)
            acc = pool.get("plan.outhat", (self.ncfg, r_out, self.nvel))
            work, rows, cols = gt, r_out, r_in
            acc_assigned = False  # the reduced accumulator starts fresh
        else:
            acc = outc
            work, rows, cols = f3, self.nout, self.nin
            acc_assigned = accumulate  # outc already holds a carried result
        for igrp, grp in enumerate(self._cfg):
            n_items = len(grp.items)
            coef = pool.get("plan.coef", (n_items, self.ncfg))
            for i, (scalar_names, cfg_names) in enumerate(grp.items):
                c = 1.0
                for name in scalar_names:
                    c *= _scalar_value(aux[name])
                np.multiply(self._cfg_row(aux[cfg_names[0]]), c, out=coef[i])
                for name in cfg_names[1:]:
                    coef[i] *= self._cfg_row(aux[name])
            amat = pool.get("plan.amat", (self.ncfg, rows * cols))
            backend.gemm(coef.T, grp.hat if self._fact is not None else grp.mats, out=amat)
            a3 = amat.reshape(self.ncfg, rows, cols)
            if grp.vel_names:
                if self._fact is not None:
                    # column scaling commutes with the trace product, so it
                    # is applied in the (cheap) reduced space
                    vprod = self._vel_product(grp.vel_names, aux)
                    velfac = np.broadcast_to(
                        vprod.reshape(vprod.shape[self.cdim :]), self.vel_shape
                    ).reshape(1, 1, self.nvel)
                    gc = pool.get("plan.gc", (self.ncfg, cols, self.nvel))
                    np.multiply(work, velfac, out=gc)
                else:
                    # full-width weighted state, shared with the sparse part
                    gc = self._weighted(fin, grp.vel_names, aux, wcache).reshape(
                        self.ncfg, cols, self.nvel
                    )
            else:
                gc = work
            if igrp == 0 and not acc_assigned:
                backend.batched_gemm(a3, gc, out=acc)
            else:
                # in-place accumulation: no staging buffer, no extra pass
                backend.batched_gemm_acc(a3, gc, acc)
        if self._fact is not None:
            if accumulate:
                backend.batched_gemm_acc(u, acc, outc)
            else:
                backend.batched_gemm(u, acc, out=outc)

    # ------------------------------------------------------------------ #
    @property
    def is_pure_cfg(self) -> bool:
        """True when every term is configuration-batched (no sparse or
        fallback parts)."""
        return not self._uniform and self._fallback is None

    @property
    def stats(self) -> Dict[str, int]:
        """Compile-time shape of the plan (for tests and diagnostics)."""
        return {
            "uniform_groups": len(self._uniform),
            "uniform_terms": sum(len(g.terms) for g in self._uniform),
            "cfg_groups": len(self._cfg),
            "cfg_items": sum(len(g.items) for g in self._cfg),
            "fallback_terms": 0 if self._fallback is None else len(self._fallback.terms),
        }

    def __repr__(self) -> str:  # pragma: no cover
        s = self.stats
        return (
            f"ExecutionPlan(cells={self.cell_shape}, uniform={s['uniform_terms']}, "
            f"cfg={s['cfg_items']}, fallback={s['fallback_terms']}, "
            f"backend={self.backend.describe()})"
        )
