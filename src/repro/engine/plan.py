"""Compiled execution plans for generated kernels.

A :class:`~repro.kernels.termset.TermSet` names its runtime factors
symbolically; *how* to evaluate it efficiently depends on where each factor
varies.  An :class:`ExecutionPlan` performs that analysis once — against an
**aux signature**, the classification of every symbol as scalar (``s``),
configuration-varying (``c``), velocity-varying (``v``) or irregular
(``x``) — and freezes the result:

* terms whose symbols carry no configuration dependence share one operator
  for every phase-space cell; they are kept as full-width sparse matrices
  and applied as in-place sparse×dense-block products (one pass over the
  state per distinct velocity factor, zero temporaries);
* terms with configuration-varying factors (the acceleration kernels' modal
  field coefficients) are pre-stacked into dense operator blocks; per
  application one small GEMM assembles the per-cell operators
  ``A[c] = Σ_i coef_i[c] K_i`` and one batched GEMM applies them — the
  near-BLAS-throughput form of the paper's headline claim;
* symbols varying on both cell groups fall back to the exact sparse
  reference path.

Plans own no state except references into a shared
:class:`~repro.engine.pool.ScratchPool`, so steady-state application
allocates nothing.  A plan is only valid for the signature and cell shape it
was compiled against; :class:`~repro.kernels.grouped.GroupedOperator` keys
its plan cache on both, which is what fixes the historical stale-plan
hazard (a plan built from the first ``aux`` dict being silently reused for
aux of a different shape).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np
import scipy.sparse as sp

from ..kernels.termset import AuxValue, Symbol, TermSet
from .backend import ArrayBackend, get_backend
from .pool import ScratchPool

__all__ = [
    "classify_aux_value",
    "aux_signature",
    "ExecutionPlan",
    "PlanSignatureError",
]

Signature = Tuple[Tuple[str, str], ...]

try:  # fast in-place sparse accumulation (scipy's own csr kernel)
    from scipy.sparse import _sparsetools as _csr_tools
except ImportError:  # pragma: no cover - scipy always ships it
    _csr_tools = None


class PlanSignatureError(ValueError):
    """An ExecutionPlan was applied to aux it was not compiled for."""


def classify_aux_value(val: AuxValue, cdim: int, vdim: int) -> str:
    """Classify one runtime symbol value: ``s`` scalar/constant, ``c``
    configuration-varying, ``v`` velocity-varying, ``x`` irregular (varies on
    both, or does not span the phase axes)."""
    if type(val) is float or np.isscalar(val):
        return "s"
    arr = np.asarray(val)
    if arr.ndim == 0:
        return "s"
    if arr.ndim != cdim + vdim:
        return "x"
    varies_cfg = any(s > 1 for s in arr.shape[:cdim])
    varies_vel = any(s > 1 for s in arr.shape[cdim:])
    if varies_cfg and varies_vel:
        return "x"
    if varies_cfg:
        return "c"
    if varies_vel:
        return "v"
    return "s"


def aux_signature(
    names: Sequence[str], aux: Dict[str, AuxValue], cdim: int, vdim: int
) -> Signature:
    """Classification signature of ``aux`` restricted to ``names``.

    Two aux dicts with equal signatures are interchangeable under the same
    compiled plan (values may differ; layout may not).
    """
    out = []
    for name in names:
        try:
            val = aux[name]
        except KeyError as exc:
            raise KeyError(
                f"kernel symbol {name!r} missing from aux (have: {sorted(aux)})"
            ) from exc
        out.append((name, classify_aux_value(val, cdim, vdim)))
    return tuple(out)


def _scalar_value(val: AuxValue) -> float:
    if type(val) is float or np.isscalar(val):
        return float(val)
    arr = np.asarray(val)
    # constant arrays classified "s" are size one in every axis
    return float(arr.reshape(-1)[0])


def _csr_accumulate(mat: sp.csr_matrix, data: np.ndarray, x2: np.ndarray, y2: np.ndarray):
    """``y2 += csr(mat.indptr, mat.indices, data) @ x2`` without temporaries."""
    if _csr_tools is not None:
        _csr_tools.csr_matvecs(
            mat.shape[0],
            mat.shape[1],
            x2.shape[1],
            mat.indptr,
            mat.indices,
            data,
            x2.reshape(-1),
            y2.reshape(-1),
        )
    else:  # pragma: no cover - exercised only on exotic scipy builds
        y2 += sp.csr_matrix((data, mat.indices, mat.indptr), shape=mat.shape) @ x2


class _UniformGroup:
    """Terms with one shared operator per cell: sparse, applied in place."""

    __slots__ = ("vel_names", "terms")

    def __init__(self, vel_names: Tuple[str, ...]):
        self.vel_names = vel_names
        # each term: (scalar_names, full-width csr, preallocated scaled-data buffer)
        self.terms: List[Tuple[Tuple[str, ...], sp.csr_matrix, np.ndarray]] = []


class _CfgGroup:
    """Terms with configuration-varying operators: pre-stacked dense blocks."""

    __slots__ = ("vel_names", "items", "mats", "hat")

    def __init__(self, vel_names: Tuple[str, ...]):
        self.vel_names = vel_names
        # each item: (scalar_names, cfg_names); row i of ``mats`` is its block
        self.items: List[Tuple[Tuple[str, ...], Tuple[str, ...]]] = []
        self.mats: Optional[np.ndarray] = None  # (n_items, nout * nin)
        self.hat: Optional[np.ndarray] = None   # (n_items, r_out * r_in)


class ExecutionPlan:
    """A TermSet compiled against one (aux signature, cell shape) pair.

    Parameters
    ----------
    termset:
        The generated kernel.
    cdim, vdim:
        Phase-space split defining the configuration/velocity cell axes.
    aux:
        A representative aux dict; only its *signature* (classification of
        each symbol) is baked in, never its values.
    cell_shape:
        The cell axes of the states this plan will be applied to; scratch
        buffers are sized for it.
    backend, pool:
        Dense-product strategy and shared scratch arena.
    """

    def __init__(
        self,
        termset: TermSet,
        cdim: int,
        vdim: int,
        aux: Dict[str, AuxValue],
        cell_shape: Tuple[int, ...],
        backend: Optional[ArrayBackend] = None,
        pool: Optional[ScratchPool] = None,
    ):
        self.termset = termset
        self.cdim = int(cdim)
        self.vdim = int(vdim)
        self.nout = termset.nout
        self.nin = termset.nin
        self.cell_shape = tuple(cell_shape)
        self.cfg_shape = self.cell_shape[: self.cdim]
        self.vel_shape = self.cell_shape[self.cdim :]
        self.ncfg = int(np.prod(self.cfg_shape)) if self.cfg_shape else 1
        self.nvel = int(np.prod(self.vel_shape)) if self.vel_shape else 1
        self.ncells = self.ncfg * self.nvel
        self.backend = get_backend(backend)
        self.pool = pool if pool is not None else ScratchPool()
        self.names = sorted({n for sym in termset.entries_by_symbol() for n in sym})
        self.signature = aux_signature(self.names, aux, self.cdim, self.vdim)
        self._compile(dict(self.signature))

    # ------------------------------------------------------------------ #
    def _compile(self, tokens: Dict[str, str]) -> None:
        uniform: Dict[Tuple[str, ...], _UniformGroup] = {}
        cfg_groups: Dict[Tuple[str, ...], _CfgGroup] = {}
        cfg_mats: Dict[Tuple[str, ...], List[np.ndarray]] = {}
        fallback: Dict[Symbol, list] = {}
        for sym, triples in self.termset.entries_by_symbol().items():
            scalar_names, cfg_names, vel_names = [], [], []
            irregular = False
            for name in sym:
                tok = tokens[name]
                if tok == "x":
                    irregular = True
                    break
                (scalar_names if tok == "s" else cfg_names if tok == "c" else vel_names).append(name)
            if irregular:
                fallback[sym] = triples
                continue
            key = tuple(sorted(vel_names))
            rows = np.array([t[0] for t in triples], dtype=np.int64)
            cols = np.array([t[1] for t in triples], dtype=np.int64)
            vals = np.array([t[2] for t in triples], dtype=float)
            mat = sp.csr_matrix(
                (vals, (rows, cols)), shape=(self.nout, self.nin)
            )
            if cfg_names:
                grp = cfg_groups.get(key)
                if grp is None:
                    grp = cfg_groups[key] = _CfgGroup(key)
                    cfg_mats[key] = []
                grp.items.append((tuple(scalar_names), tuple(cfg_names)))
                cfg_mats[key].append(mat.toarray().reshape(-1))
            else:
                grp = uniform.get(key)
                if grp is None:
                    grp = uniform[key] = _UniformGroup(key)
                grp.terms.append(
                    (tuple(scalar_names), mat, np.empty_like(mat.data))
                )
        for key, grp in cfg_groups.items():
            grp.mats = np.stack(cfg_mats[key]) if cfg_mats[key] else None
        self._uniform = list(uniform.values())
        self._cfg = [g for g in cfg_groups.values() if g.mats is not None]
        self._fallback = (
            TermSet(self.nout, self.nin, fallback) if fallback else None
        )
        self._factorize_cfg()

    def _factorize_cfg(self) -> None:
        """Shared low-rank factorization of the dense operator stacks.

        Surface kernels act through a face trace, so every block of a
        surface plan shares row/column spaces of dimension = the number of
        face modes (20 of 96 x 48 for 2X2V p=2 serendipity).  When the
        structural rank is low enough to pay for the extra trace/lift
        products, blocks are stored as ``K_i = U H_i V^T`` and applications
        run in the reduced space: one trace product, small batched GEMMs,
        one lift product.  The factorization is orthonormal and exact to
        roundoff (verified here; falls back to the direct stacks if not).
        """
        self._fact = None
        if not self._cfg:
            return
        K = np.concatenate(
            [g.mats.reshape(len(g.items), self.nout, self.nin) for g in self._cfg]
        )
        _, s_in, vt = np.linalg.svd(K.reshape(-1, self.nin), full_matrices=False)
        _, s_out, wt = np.linalg.svd(
            np.swapaxes(K, 1, 2).reshape(-1, self.nout), full_matrices=False
        )
        if s_in.size == 0 or s_in[0] == 0.0:
            return
        r_in = int(np.sum(s_in > s_in[0] * 1e-10))
        r_out = int(np.sum(s_out > s_out[0] * 1e-10))
        ngroups = len(self._cfg)
        direct = ngroups * self.nout * self.nin
        factored = (
            r_in * self.nin + ngroups * r_out * r_in + self.nout * r_out
        )
        if factored >= 0.85 * direct:
            return
        vt = np.ascontiguousarray(vt[:r_in])          # (r_in, nin)
        u = np.ascontiguousarray(wt[:r_out].T)        # (nout, r_out)
        hat = np.matmul(np.matmul(u.T, K), vt.T)      # (n_total, r_out, r_in)
        recon = np.matmul(np.matmul(u, hat), vt)
        scale = np.max(np.abs(K)) or 1.0
        if np.max(np.abs(recon - K)) > 1e-12 * scale:  # pragma: no cover
            return
        start = 0
        for grp in self._cfg:
            n = len(grp.items)
            grp.hat = hat[start : start + n].reshape(n, r_out * r_in).copy()
            grp.mats = None  # the dense stack is fully replaced by its factors
            start += n
        self._fact = (u, vt, r_out, r_in)

    # ------------------------------------------------------------------ #
    def ensure_signature(self, aux: Dict[str, AuxValue]) -> None:
        """Raise :class:`PlanSignatureError` if ``aux`` no longer matches the
        signature this plan was compiled against."""
        sig = aux_signature(self.names, aux, self.cdim, self.vdim)
        if sig != self.signature:
            changed = [
                f"{name}: {dict(self.signature)[name]!r} -> {tok!r}"
                for name, tok in sig
                if dict(self.signature)[name] != tok
            ]
            raise PlanSignatureError(
                "aux layout changed since this plan was compiled "
                f"({'; '.join(changed)}); rebuild the plan"
            )

    # ------------------------------------------------------------------ #
    def _vel_product(self, names: Tuple[str, ...], aux: Dict[str, AuxValue]):
        """Product of velocity-varying factors (small, velocity-axis sized)."""
        val = np.asarray(aux[names[0]])
        for name in names[1:]:
            val = val * np.asarray(aux[name])
        return val

    def _cfg_row(self, val: AuxValue) -> np.ndarray:
        """A configuration-varying factor flattened to ``(ncfg,)`` —
        a view in the standard layout ``cfg_cells + (1,)*vdim``."""
        arr = np.asarray(val)
        if arr.shape[: self.cdim] == self.cfg_shape:
            return arr.reshape(self.ncfg)
        return np.broadcast_to(
            arr, self.cfg_shape + (1,) * self.vdim
        ).reshape(self.ncfg)

    # ------------------------------------------------------------------ #
    def apply(
        self,
        fin: np.ndarray,
        aux: Dict[str, AuxValue],
        out: np.ndarray,
        accumulate: bool = True,
    ) -> np.ndarray:
        """Accumulate the kernel action into ``out`` (same contract as
        :meth:`TermSet.apply`).  ``fin``/``out`` must be C-contiguous with
        cell axes equal to the plan's ``cell_shape``.

        With ``accumulate=False`` the prior contents of ``out`` are
        discarded (``out = K f`` rather than ``out += K f``) without the
        caller having to zero it — the first dense write assigns.
        """
        if fin.shape[1:] != self.cell_shape:
            raise ValueError(
                f"plan compiled for cells {self.cell_shape}, got {fin.shape[1:]}"
            )
        if not out.flags.c_contiguous:
            raise ValueError("out must be C-contiguous (accumulated in place)")
        pool, backend = self.pool, self.backend

        # dense (configuration-batched) part first: in non-accumulating
        # mode its cell-major result is *assigned* into out, saving a zero
        # pass; the sparse parts below always accumulate on top.  The
        # cell-major gather consumes strided views directly, so sliced
        # surface states need no up-front contiguous copy.
        if self._cfg:
            self._apply_cfg(fin, aux, out, assign=not accumulate)
        elif not accumulate:
            out.fill(0.0)

        if not fin.flags.c_contiguous and (self._uniform or self._fallback):
            fcontig = pool.get("plan.fcontig", fin.shape)
            np.copyto(fcontig, fin)
            fin = fcontig
        out2 = out.reshape(self.nout, self.ncells)

        for grp in self._uniform:
            if grp.vel_names:
                velfac = np.broadcast_to(
                    self._vel_product(grp.vel_names, aux), (1,) + self.cell_shape
                )
                g = pool.get("plan.g", (self.nin,) + self.cell_shape)
                np.multiply(fin, velfac, out=g)
                x2 = g.reshape(self.nin, self.ncells)
            else:
                x2 = fin.reshape(self.nin, self.ncells)
            for scalar_names, mat, dbuf in grp.terms:
                c = 1.0
                for name in scalar_names:
                    c *= _scalar_value(aux[name])
                np.multiply(mat.data, c, out=dbuf)
                _csr_accumulate(mat, dbuf, x2, out2)

        if self._fallback is not None:
            self._fallback.apply(fin, aux, out)
        return out

    def _apply_cfg(self, fin, aux, out, assign: bool) -> None:
        """Configuration-batched dense part, phase-major target: compute in
        cell-major scratch, then transform-assign (or -add) into ``out``."""
        pool = self.pool
        out3 = out.reshape(self.nout, self.ncfg, self.nvel)
        outc = pool.get("plan.outc", (self.ncfg, self.nout, self.nvel))
        self._apply_cfg_into(fin, aux, outc, accumulate=False)
        outc_t = outc.transpose(1, 0, 2)
        if assign:
            np.copyto(out3, outc_t)
        else:
            out3 += outc_t

    def apply_cellmajor(
        self,
        fin: np.ndarray,
        aux: Dict[str, AuxValue],
        outc: np.ndarray,
        accumulate: bool = True,
    ) -> np.ndarray:
        """Apply into a cell-major target ``(ncfg, nout, nvel)`` — the
        batched products' native layout, skipping the phase-major transform.
        Only valid for fully configuration-batched plans (no sparse or
        fallback parts), e.g. the acceleration surface kernels."""
        if self._uniform or self._fallback is not None:
            raise ValueError(
                "cell-major application requires a fully configuration-"
                "batched plan (this one has sparse/fallback parts)"
            )
        if fin.shape[1:] != self.cell_shape:
            raise ValueError(
                f"plan compiled for cells {self.cell_shape}, got {fin.shape[1:]}"
            )
        if not outc.flags.c_contiguous or outc.shape != (
            self.ncfg, self.nout, self.nvel,
        ):
            raise ValueError(
                f"outc must be C-contiguous with shape "
                f"{(self.ncfg, self.nout, self.nvel)}"
            )
        if not self._cfg:
            if not accumulate:
                outc.fill(0.0)
            return outc
        self._apply_cfg_into(fin, aux, outc, accumulate=accumulate)
        return outc

    def _apply_cfg_into(self, fin, aux, outc, accumulate: bool) -> None:
        """Assemble per-cell operators with one small GEMM and apply them
        with one batched GEMM per group, into the cell-major ``outc``
        (assigned when ``accumulate`` is False)."""
        pool, backend = self.pool, self.backend
        fc = pool.get("plan.fc", (self.ncfg, self.nin, self.nvel))
        # cell-major gather straight from (possibly strided) fin: one pass
        fcv = fc.reshape(self.cfg_shape + (self.nin,) + self.vel_shape)
        np.copyto(fcv, np.moveaxis(fin, 0, self.cdim))
        if self._fact is not None:
            u, vt, r_out, r_in = self._fact
            # reduced space: trace once, per-group small products, lift once
            gt = pool.get("plan.gt", (self.ncfg, r_in, self.nvel))
            backend.batched_gemm(vt, fc, out=gt)
            acc = pool.get("plan.outhat", (self.ncfg, r_out, self.nvel))
            mm = pool.get("plan.mmhat", (self.ncfg, r_out, self.nvel))
            work, rows, cols = gt, r_out, r_in
            acc_assigned = False  # the reduced accumulator starts fresh
        else:
            acc = outc
            mm = pool.get("plan.mm", (self.ncfg, self.nout, self.nvel))
            work, rows, cols = fc, self.nout, self.nin
            acc_assigned = accumulate  # outc already holds a carried result
        for igrp, grp in enumerate(self._cfg):
            n_items = len(grp.items)
            coef = pool.get("plan.coef", (n_items, self.ncfg))
            for i, (scalar_names, cfg_names) in enumerate(grp.items):
                c = 1.0
                for name in scalar_names:
                    c *= _scalar_value(aux[name])
                np.multiply(self._cfg_row(aux[cfg_names[0]]), c, out=coef[i])
                for name in cfg_names[1:]:
                    coef[i] *= self._cfg_row(aux[name])
            amat = pool.get("plan.amat", (self.ncfg, rows * cols))
            backend.gemm(coef.T, grp.hat if self._fact is not None else grp.mats, out=amat)
            a3 = amat.reshape(self.ncfg, rows, cols)
            if grp.vel_names:
                vprod = self._vel_product(grp.vel_names, aux)
                # drop the (size-one) configuration axes, flatten velocity;
                # column scaling commutes with the trace product, so it is
                # applied in the reduced space when factorized
                velfac = np.broadcast_to(
                    vprod.reshape(vprod.shape[self.cdim :]), self.vel_shape
                ).reshape(1, 1, self.nvel)
                gc = pool.get("plan.gc", (self.ncfg, cols, self.nvel))
                np.multiply(work, velfac, out=gc)
            else:
                gc = work
            if igrp == 0 and not acc_assigned:
                backend.batched_gemm(a3, gc, out=acc)
            else:
                backend.batched_gemm(a3, gc, out=mm)
                acc += mm
        if self._fact is not None:
            if accumulate:
                lift = pool.get("plan.lift", (self.ncfg, self.nout, self.nvel))
                backend.batched_gemm(u, acc, out=lift)
                outc += lift
            else:
                backend.batched_gemm(u, acc, out=outc)

    # ------------------------------------------------------------------ #
    @property
    def is_pure_cfg(self) -> bool:
        """True when every term is configuration-batched (no sparse or
        fallback parts) — the precondition of :meth:`apply_cellmajor`."""
        return not self._uniform and self._fallback is None

    @property
    def stats(self) -> Dict[str, int]:
        """Compile-time shape of the plan (for tests and diagnostics)."""
        return {
            "uniform_groups": len(self._uniform),
            "uniform_terms": sum(len(g.terms) for g in self._uniform),
            "cfg_groups": len(self._cfg),
            "cfg_items": sum(len(g.items) for g in self._cfg),
            "fallback_terms": 0 if self._fallback is None else len(self._fallback.terms),
        }

    def __repr__(self) -> str:  # pragma: no cover
        s = self.stats
        return (
            f"ExecutionPlan(cells={self.cell_shape}, uniform={s['uniform_terms']}, "
            f"cfg={s['cfg_items']}, fallback={s['fallback_terms']}, "
            f"backend={self.backend.describe()})"
        )
