"""Fused execution of compiled plans — the AOT-lowered hot path.

An :class:`~repro.engine.plan.ExecutionPlan` is exact but interpreted: every
apply walks group lists, evaluates symbol products term by term, and issues
one sparse sweep per term.  A :class:`FusedPlan` lowers the *same* compiled
operator blocks once, ahead of time, into a flat program:

* every uniform group's terms are **merged into one sparse sweep**: the
  per-cell CSR blocks are concatenated row-wise in term order (scalar
  factors folded into the data), then block-diagonally expanded over
  configuration cells — the per-output-element accumulation sequence is
  entry-for-entry the interpreted path's, so the merged sweep is
  bit-identical, at one ``csr_matvecs`` call per group instead of per term;
* the configuration-batched coefficient assembly is **vectorized**: the
  per-item field rows are gathered with one ``np.concatenate`` and scaled
  with one broadcast multiply into the same pooled ``(n_items, ncfg)``
  buffer the interpreted path fills item-by-item — identical operand values
  and strides, so the downstream GEMMs are bit-identical too;
* everything shape-dependent is **prebound at lowering time**: scratch
  buffers, their reshaped views, the csr argument tuples, bound backend
  methods — a steady-state apply performs no pool lookups, no string
  formatting, and no per-term Python dispatch;
* runtime symbol values are **bound under an identity guard**: the same aux
  value objects arriving again (every RK stage of every step) skip all
  symbol classification, dictionary walking, and scalar evaluation; scalar
  values held in mutable size-one arrays are still re-read each apply, so
  in-place parameter mutation behaves exactly as interpreted.
  :meth:`apply_trusted` lets a caller that already performed the identity
  scan (:class:`~repro.kernels.grouped.GroupedOperator`) skip the guard
  entirely;
* velocity-weighted input states are **shared across plans** within one
  RHS evaluation: when the owning solver declares its stage state stable
  (:meth:`~repro.engine.pool.ScratchPool.mark_stable_state`), the weighted
  copy ``f * w`` is computed once per distinct velocity-factor key and
  reused by every fused plan weighting the same state — elementwise the
  identical product, so results are unchanged.

When numba is importable (``repro.cas.codegen.select_tier``), the merged
sweeps additionally run through an emitted ``@njit(cache=True)`` kernel that
fuses the velocity-factor weighting into the sweep in-register; without it
the vectorized numpy tier above runs — same results, both validated against
the interpreted path by the equivalence tests.

A FusedPlan wraps (and delegates unknown attributes to) its interpreted
plan, so plan introspection — ``stats``, ``signature``, ``_fact`` — and the
scratch-pool copy audit behave identically.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from typing import Dict, List, Optional, Tuple

import numpy as np
import scipy.sparse as sp

from ..cas.codegen import compile_fused_sweep
from ..kernels.termset import AuxValue, _csr_tools, csr_accumulate
from ..obs import OBS as _OBS
from ..obs.metrics import SLOT as _OBS_SLOT
from .plan import ExecutionPlan, _scalar_value

__all__ = ["FusedPlan"]

_S_PLAN_APPLIES = _OBS_SLOT["plan_applies"]
_S_PLAN_APPLY_MS = _OBS_SLOT["plan_apply_ms"]

_IMMUTABLE_SCALARS = (float, int)


class _SparseStep:
    """One merged uniform group: a single block-diagonal sweep."""

    __slots__ = (
        "vel_names",
        "scalar_names",  # per-term scalar factor names, in term order
        "base",          # per-cell merged data, unscaled
        "tid",           # term index per data entry
        "indices",
        "indptr",
        "spmat",         # kron-expanded csr sharing ``kdata``
        "kdata",         # kron-expanded (possibly scaled) data
        "kindices",
        "kindptr",
        "scaled",        # per-cell scaled data buffer (None: no scalars)
        "wflat",         # flattened (nvel,) velocity factor for the jit tier
        "cc_ip",         # int64 copies of indptr/indices for the cc tier
        "cc_ix",
        "cc_w",          # contiguous (vel_shape) weight buffer (cc tier)
    )

    def __init__(self, plan: ExecutionPlan, grp) -> None:
        self.vel_names = grp.vel_names
        self.scalar_names = tuple(t[0] for t in grp.terms)
        mats = [t[3] for t in grp.terms]
        nout, nin, ncfg = plan.nout, plan.nin, plan.ncfg
        # row-wise concatenation in term order: within each output row the
        # merged entries replay term 0's additions, then term 1's, ... —
        # exactly the per-term sweep sequence of the interpreted path
        idx_dtype = mats[0].indices.dtype
        chunks_i: List[np.ndarray] = []
        chunks_d: List[np.ndarray] = []
        chunks_t: List[np.ndarray] = []
        indptr = np.zeros(nout + 1, dtype=idx_dtype)
        for r in range(nout):
            for t, m in enumerate(mats):
                lo, hi = m.indptr[r], m.indptr[r + 1]
                if hi > lo:
                    chunks_i.append(m.indices[lo:hi])
                    chunks_d.append(m.data[lo:hi])
                    chunks_t.append(np.full(hi - lo, t, dtype=np.int64))
                indptr[r + 1] += hi - lo
        np.cumsum(indptr, out=indptr)
        self.indices = (
            np.concatenate(chunks_i) if chunks_i else np.zeros(0, idx_dtype)
        )
        self.base = (
            np.concatenate(chunks_d) if chunks_d else np.zeros(0)
        )
        self.tid = (
            np.concatenate(chunks_t) if chunks_t else np.zeros(0, np.int64)
        )
        self.indptr = indptr
        nnz = self.base.size
        # block-diagonal expansion built directly from the raw arrays:
        # sp.kron would canonicalize (sort, merge duplicates) and destroy
        # the accumulation order the merge just established
        self.kindices = (
            self.indices[None, :]
            + (np.arange(ncfg, dtype=idx_dtype) * idx_dtype.type(nin))[:, None]
        ).ravel()
        self.kindptr = np.concatenate(
            [
                np.zeros(1, dtype=idx_dtype),
                (
                    indptr[1:][None, :]
                    + (np.arange(ncfg, dtype=idx_dtype) * idx_dtype.type(nnz))[
                        :, None
                    ]
                ).ravel(),
            ]
        )
        self.kdata = np.empty(nnz * ncfg)
        self.spmat = sp.csr_matrix(
            (self.kdata, self.kindices, self.kindptr),
            shape=(ncfg * nout, ncfg * nin),
            copy=False,
        )
        self.scaled = (
            np.empty(nnz) if any(self.scalar_names) else None
        )
        if self.scaled is None:
            self.kdata.reshape(ncfg, nnz)[:] = self.base
        self.wflat = None
        self.cc_ip = None
        self.cc_ix = None
        self.cc_w = None

    def rescale(self, svals: Dict[str, float], ncfg: int) -> None:
        """Fold the current scalar factor values into the sweep data —
        per entry ``base * c_term``, the same float product the interpreted
        path forms, tiled over cells."""
        if self.scaled is None:
            return
        scale = np.empty(len(self.scalar_names))
        for t, names in enumerate(self.scalar_names):
            c = 1.0
            for name in names:
                c *= svals[name]
            scale[t] = c
        np.multiply(self.base, scale[self.tid], out=self.scaled)
        self.kdata.reshape(ncfg, self.scaled.size)[:] = self.scaled


class _CfgStep:
    """One configuration-batched group with vectorized coefficient assembly."""

    __slots__ = (
        "vel_names",
        "items",
        "block",      # dense stack: ``hat`` under factorization, else ``mats``
        "n_items",
        "coef",       # pooled (n_items, ncfg) coefficient buffer
        "coef_t",     # transposed view, the GEMM operand
        "flat",       # flattened view, the gather destination
        "rows",       # bound per-item cfg rows ((ncfg,) views)
        "scal",       # per-item scalar products
        "scal2",      # column view of ``scal`` for the broadcast multiply
        "extras",     # [(item index, (extra cfg names...))], multi-factor items
        "volatile",   # some row is a copy, not a view: re-gather every apply
    )

    def __init__(self, plan: ExecutionPlan, grp) -> None:
        self.vel_names = grp.vel_names
        self.items = grp.items
        self.block = grp.hat if grp.hat is not None else grp.mats
        self.n_items = len(grp.items)
        self.coef = plan.pool.get("plan.coef", (self.n_items, plan.ncfg))
        self.coef_t = self.coef.T
        self.flat = self.coef.reshape(-1)
        self.rows: List[np.ndarray] = []
        self.scal = np.ones(self.n_items)
        self.scal2 = self.scal[:, None]
        self.extras: List[Tuple[int, Tuple[str, ...]]] = [
            (i, cfg_names[1:])
            for i, (_sn, cfg_names) in enumerate(grp.items)
            if len(cfg_names) > 1
        ]
        self.volatile = False

    def bind(self, plan: ExecutionPlan, aux, svals: Dict[str, float]) -> None:
        rows = []
        volatile = False
        for scalar_names, cfg_names in self.items:
            row = plan._cfg_row(aux[cfg_names[0]])
            if not np.shares_memory(row, np.asarray(aux[cfg_names[0]])):
                # broadcast-expanded rows are snapshots; they must be
                # re-gathered per apply to track in-place aux mutation
                volatile = True
            rows.append(row)
        for i, (scalar_names, _cn) in enumerate(self.items):
            c = 1.0
            for name in scalar_names:
                c *= svals[name]
            self.scal[i] = c
        self.rows = rows
        self.volatile = volatile

    def assemble(self, plan: ExecutionPlan, aux) -> np.ndarray:
        """Fill ``coef`` with the per-item coefficient rows — one gather,
        one broadcast multiply; element-for-element the interpreted
        per-item ``row * c`` products."""
        if self.volatile:
            rows = [
                plan._cfg_row(aux[cfg_names[0]])
                for _sn, cfg_names in self.items
            ]
        else:
            rows = self.rows
        coef = self.coef
        np.concatenate(rows, out=self.flat)
        np.multiply(coef, self.scal2, out=coef)
        for i, extra_names in self.extras:
            for name in extra_names:
                coef[i] *= plan._cfg_row(aux[name])
        return coef


class FusedPlan:
    """AOT-lowered execution of one compiled plan (see module docstring).

    Construction lowers an already-compiled :class:`ExecutionPlan`; all
    introspection attributes (``stats``, ``signature``, ``names``,
    ``in_shape`` ...) delegate to it, so a FusedPlan is a drop-in plan
    object for :class:`~repro.kernels.grouped.GroupedOperator` and tests.
    """

    def __init__(
        self,
        plan: ExecutionPlan,
        tier: str = "auto",
        kernel_dir: Optional[str] = None,
    ):
        self._plan = plan
        self._sparse = [_SparseStep(plan, g) for g in plan._uniform]
        self._cfg_steps = [_CfgStep(plan, g) for g in plan._cfg]
        # identity guard over every symbol value; scalar values held in
        # mutable size-one arrays are re-read per apply (cheap) so in-place
        # mutation stays visible — immutable Python numbers are guarded by
        # identity alone
        self._scalar_names = [
            name for name, tok in plan.signature if tok == "s"
        ]
        self._array_names = [
            name for name, tok in plan.signature if tok != "s"
        ]
        self._guard_names = self._array_names + self._scalar_names
        self._bound_ids: Optional[List[object]] = None
        self._bound_svals: Optional[Tuple[float, ...]] = None
        self._vol_scalar_names: Tuple[str, ...] = ()
        self._bound_vsvals: Tuple[float, ...] = ()
        self._mv_volatile = False
        self._velb: Dict[Tuple[str, ...], np.ndarray] = {}
        # ---- prebound execution state (pool buffers persist per tag) ----
        pool = plan.pool
        self._pool = pool
        self._in_shape = plan.in_shape
        self._out_shape = plan.out_shape
        self._ncfg, self._nvel = plan.ncfg, plan.nvel
        self._nin, self._nout = plan.nin, plan.nout
        self._f3shape = (plan.ncfg, plan.nin, plan.nvel)
        self._o3shape = (plan.ncfg, plan.nout, plan.nvel)
        self._fact = plan._fact
        self._fallback = plan._fallback
        backend = plan.backend
        self._gemm = backend.gemm
        self._bgemm = backend.batched_gemm
        self._bgemm_acc = backend.batched_gemm_acc
        if self._cfg_steps:
            if plan._fact is not None:
                _u, _vt, r_out, r_in = plan._fact
                self._gt = pool.get("plan.gt", (plan.ncfg, r_in, plan.nvel))
                self._outhat = pool.get(
                    "plan.outhat", (plan.ncfg, r_out, plan.nvel)
                )
                rows, cols = r_out, r_in
                if any(s.vel_names for s in self._cfg_steps):
                    self._gc = pool.get(
                        "plan.gc", (plan.ncfg, cols, plan.nvel)
                    )
            else:
                rows, cols = plan.nout, plan.nin
            self._amat = pool.get("plan.amat", (plan.ncfg, rows * cols))
            self._a3 = self._amat.reshape(plan.ncfg, rows, cols)
        # velocity-weighted input buffers, one per distinct factor key;
        # ``fusedg:`` tags are written only by fused plans, which all follow
        # the stable-state sharing protocol below
        wanted = {s.vel_names for s in self._sparse if s.vel_names}
        if plan._fact is None:
            wanted |= {s.vel_names for s in self._cfg_steps if s.vel_names}
        self._gbufs: Dict[Tuple[str, ...], Tuple[np.ndarray, ...]] = {}
        for names in wanted:
            g = pool.get(f"fusedg:{'*'.join(names)}", plan.in_shape)
            self._gbufs[names] = (
                g,
                g.reshape(-1),
                g.reshape(self._f3shape),
            )
        # per-array reshape memos (bounded; entries pin their array alive,
        # which is fine — callers pass persistent state/pool arrays)
        self._fviews: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._oviews: Dict[int, Tuple[np.ndarray, np.ndarray, np.ndarray]] = {}
        self._kernel = None
        self._cc = None
        self._cc_args: List[int] = []
        self._cc_weights: List[Tuple[Tuple[str, ...], object, np.ndarray]] = []
        self.kernel_status: Optional[str] = None
        self.tier = "numpy"
        if plan._uniform:
            compiled = compile_fused_sweep(
                f"fused_sweep_{plan.nout}x{plan.nin}",
                plan.nout,
                [bool(s.vel_names) for s in self._sparse],
                tier=tier,
                ncfg=plan.ncfg,
                nin=plan.nin,
                nvel=plan.nvel,
                kernel_dir=kernel_dir,
            )
            if compiled is not None:
                kernel, ktier = compiled
                if ktier == "cc":
                    self._setup_cc(kernel)
                else:  # pragma: no cover - requires numba
                    self._kernel, self.tier = kernel, ktier
                    self.kernel_status = "jit"

    def _setup_cc(self, kern) -> None:
        """Prebind the ctypes argument vector for the compiled C sweep:
        per group the (stable) scaled-data pointer and int64 index arrays,
        plus a contiguous weight buffer refreshed from the bound velocity
        factor before each call."""
        args: List[int] = [0, 0]  # f, y pointers patched per call
        for step in self._sparse:
            data = step.scaled if step.scaled is not None else step.base
            step.cc_ip = np.ascontiguousarray(step.indptr, dtype=np.int64)
            step.cc_ix = np.ascontiguousarray(step.indices, dtype=np.int64)
            args += [
                data.ctypes.data,
                step.cc_ip.ctypes.data,
                step.cc_ix.ctypes.data,
            ]
            if step.vel_names:
                step.cc_w = np.empty(self._plan.vel_shape)
                args.append(step.cc_w.ctypes.data)
        self._cc = kern.fn
        self._cc_args = args
        self.tier = "cc"
        self.kernel_status = "built" if kern.fresh else "loaded"

    @property
    def fused(self) -> bool:
        return True

    def __getattr__(self, name: str):
        return getattr(self._plan, name)

    # ------------------------------------------------------------------ #
    def _bind(self, aux: Dict[str, AuxValue]) -> None:
        p = self._plan
        svals = {n: _scalar_value(aux[n]) for n in self._scalar_names}
        stuple = tuple(svals[n] for n in self._scalar_names)
        if stuple != self._bound_svals:
            for step in self._sparse:
                step.rescale(svals, p.ncfg)
            for step in self._cfg_steps:
                step.bind(p, aux, svals)
            self._bound_svals = stuple
        else:
            for step in self._cfg_steps:
                step.bind(p, aux, svals)
        self._vol_scalar_names = tuple(
            n
            for n in self._scalar_names
            if not isinstance(aux[n], _IMMUTABLE_SCALARS)
        )
        self._bound_vsvals = tuple(
            svals[n] for n in self._vol_scalar_names
        )
        # velocity factors: single-name factors are reshaped *views* of the
        # aux arrays (auto-fresh under mutation); multi-name products are
        # recomputed every apply (volatility precomputed here)
        self._velb = {}
        for step in list(self._sparse) + list(self._cfg_steps):
            names = step.vel_names
            if names and names not in self._velb:
                self._velb[names] = p._vel_factor_b(names, aux)
        self._mv_volatile = any(len(names) > 1 for names in self._velb)
        if self._cc is not None:
            # broadcast views of the bound factors; flattened into the
            # per-step contiguous weight buffers before every call (views
            # track in-place mutation, multi-name products are recomputed
            # in _run when volatile)
            self._cc_weights = []
            for step in self._sparse:
                if step.vel_names:
                    vprod = p._vel_product(step.vel_names, aux)
                    wsrc = np.broadcast_to(
                        vprod.reshape(vprod.shape[p.cdim:]), p.vel_shape
                    )
                    self._cc_weights.append((step.vel_names, wsrc, step.cc_w))
        if self._kernel is not None:  # pragma: no cover - requires numba
            for step in self._sparse:
                if step.vel_names:
                    vprod = p._vel_product(step.vel_names, aux)
                    step.wflat = np.ascontiguousarray(
                        np.broadcast_to(
                            vprod.reshape(vprod.shape[p.cdim:]), p.vel_shape
                        ).reshape(p.nvel)
                    )
        self._bound_ids = [aux[n] for n in self._guard_names]

    def _ensure_bound(self, aux: Dict[str, AuxValue]) -> None:
        bound = self._bound_ids
        if bound is not None:
            try:
                vals = [aux[n] for n in self._guard_names]
            except KeyError:
                vals = None
            if vals is not None and all(
                a is b for a, b in zip(vals, bound)
            ):
                # same value objects: only mutable scalar *values* can move
                if not self._vol_scalar_names:
                    return
                vsvals = tuple(
                    _scalar_value(aux[n]) for n in self._vol_scalar_names
                )
                if vsvals == self._bound_vsvals:
                    return
        self._bind(aux)

    # ------------------------------------------------------------------ #
    def apply(
        self,
        fin: np.ndarray,
        aux: Dict[str, AuxValue],
        out: np.ndarray,
        accumulate: bool = True,
    ) -> np.ndarray:
        """Same contract (and same checks, copy audit, and results) as
        :meth:`ExecutionPlan.apply`."""
        self._ensure_bound(aux)
        return self._run(fin, aux, out, accumulate)

    def apply_trusted(
        self,
        fin: np.ndarray,
        aux: Dict[str, AuxValue],
        out: np.ndarray,
        accumulate: bool = True,
    ) -> np.ndarray:
        """Apply, skipping the aux identity guard.

        The caller asserts that every aux value object is identical to the
        previous ``apply``/``apply_trusted`` through this plan — which is
        exactly what :class:`~repro.kernels.grouped.GroupedOperator`'s
        value-identity fast path already established, so re-scanning here
        would be pure overhead.  Mutable scalar values are still re-read.
        """
        if self._bound_ids is None:
            self._bind(aux)
        elif self._vol_scalar_names:
            vsvals = tuple(
                _scalar_value(aux[n]) for n in self._vol_scalar_names
            )
            if vsvals != self._bound_vsvals:
                self._bind(aux)
        return self._run(fin, aux, out, accumulate)

    def _views_of(self, arr, memo, shape3):
        entry = memo.get(id(arr))
        if entry is None or entry[0] is not arr:
            if len(memo) > 16:
                memo.clear()
            entry = (arr, arr.reshape(shape3), arr.reshape(-1))
            memo[id(arr)] = entry
        return entry

    def _run(self, fin, aux, out, accumulate: bool) -> np.ndarray:
        # both apply paths funnel through here, so this single guard is the
        # fused path's entire observability seam
        if _OBS.on:
            t0 = _perf_counter()
            out = self._run_impl(fin, aux, out, accumulate)
            _OBS.finish(
                self._plan.obs_label, t0, _S_PLAN_APPLIES, _S_PLAN_APPLY_MS
            )
            return out
        return self._run_impl(fin, aux, out, accumulate)

    def _run_impl(self, fin, aux, out, accumulate: bool) -> np.ndarray:
        if fin.shape != self._in_shape:
            raise ValueError(
                f"plan compiled for input {self._in_shape}, got {fin.shape}"
            )
        if out.shape != self._out_shape:
            raise ValueError(
                f"plan compiled for output {self._out_shape}, got {out.shape}"
            )
        if not out.flags.c_contiguous:
            raise ValueError("out must be C-contiguous (accumulated in place)")
        if not fin.flags.c_contiguous:
            pool = self._pool
            pool.record_layout_copy("plan.fcontig", fin.shape)
            fcontig = pool.get("plan.fcontig", fin.shape)
            np.copyto(fcontig, fin)
            fin = fcontig
        if self._mv_volatile:
            # multi-factor velocity products are bound snapshots; recompute
            # so in-place mutation of the factors stays visible
            p = self._plan
            for names in self._velb:
                if len(names) > 1:
                    self._velb[names] = p._vel_factor_b(names, aux)
        _a, f3, f1 = self._views_of(fin, self._fviews, self._f3shape)
        _a, o3, o1 = self._views_of(out, self._oviews, self._o3shape)
        wcache: Dict[Tuple[str, ...], Tuple[np.ndarray, ...]] = {}

        if self._cfg_steps:
            self._apply_cfg(f3, fin, aux, o3, wcache, accumulate)
        elif not accumulate:
            out.fill(0.0)

        if self._cc is not None:
            p = self._plan
            for names, wsrc, wflat in self._cc_weights:
                if len(names) > 1:
                    vprod = p._vel_product(names, aux)
                    wsrc = np.broadcast_to(
                        vprod.reshape(vprod.shape[p.cdim:]), p.vel_shape
                    )
                np.copyto(wflat, wsrc)
            args = self._cc_args
            args[0] = fin.ctypes.data
            args[1] = out.ctypes.data
            self._cc(*args)
        elif self._kernel is not None:  # pragma: no cover - requires numba
            args: List[np.ndarray] = []
            for step in self._sparse:
                args += [step.scaled if step.scaled is not None else step.base,
                         step.indptr, step.indices]
                if step.vel_names:
                    args.append(step.wflat)
            self._kernel(f3, o3, *args)
        elif _csr_tools is not None:
            mv = _csr_tools.csr_matvecs
            M = self._ncfg * self._nout
            N = self._ncfg * self._nin
            nvel = self._nvel
            for step in self._sparse:
                if step.vel_names:
                    x1 = self._weighted(step.vel_names, fin, wcache)[1]
                else:
                    x1 = f1
                mv(M, N, nvel, step.kindptr, step.kindices, step.kdata,
                   x1, o1)
        else:  # pragma: no cover - exercised only on exotic scipy builds
            x2flat = fin.reshape(self._ncfg * self._nin, self._nvel)
            y2 = out.reshape(self._ncfg * self._nout, self._nvel)
            for step in self._sparse:
                if step.vel_names:
                    g = self._weighted(step.vel_names, fin, wcache)[0]
                    x2 = g.reshape(self._ncfg * self._nin, self._nvel)
                else:
                    x2 = x2flat
                csr_accumulate(step.spmat, step.kdata, x2, y2)

        if self._fallback is not None:
            self._fallback.apply_cm(fin, aux, out, self._plan.cdim)
        return out

    def _weighted(
        self,
        names: Tuple[str, ...],
        fin: np.ndarray,
        wcache: Dict[Tuple[str, ...], Tuple[np.ndarray, ...]],
    ) -> Tuple[np.ndarray, ...]:
        """The weighted input ``fin * w`` as ``(buffer, flat, 3-D)`` views.

        Within one apply the product is computed at most once per factor key
        (``wcache``); across plans it is additionally shared through the
        pool when the solver has declared ``fin`` stable for the current
        RHS evaluation — the multiply is elementwise, so whichever plan
        computes it produces bit-identical data.
        """
        entry = wcache.get(names)
        if entry is not None:
            return entry
        entry = self._gbufs[names]
        pool = self._pool
        key = (names, self._in_shape)
        if pool.stable_id == id(fin):
            if key not in pool.shared_weights:
                np.multiply(fin, self._velb[names], out=entry[0])
                pool.shared_weights.add(key)
        else:
            # weighting a transient buffer (rolled/upwinded state): the
            # shared copy for this key no longer holds the stable state
            np.multiply(fin, self._velb[names], out=entry[0])
            pool.shared_weights.discard(key)
        wcache[names] = entry
        return entry

    def _apply_cfg(self, f3, fin, aux, outc, wcache, accumulate: bool) -> None:
        p = self._plan
        bgemm, bgemm_acc = self._bgemm, self._bgemm_acc
        fact = self._fact
        if fact is not None:
            gt = self._gt
            bgemm(fact[1], f3, out=gt)
            acc = self._outhat
            work = gt
            first = True
        else:
            acc = outc
            work = f3
            first = not accumulate
        a3 = self._a3
        amat = self._amat
        gemm = self._gemm
        for step in self._cfg_steps:
            step.assemble(p, aux)
            gemm(step.coef_t, step.block, out=amat)
            if step.vel_names:
                if fact is not None:
                    # recomputed per apply exactly as interpreted (the
                    # product is velocity-axis sized, i.e. tiny)
                    vprod = p._vel_product(step.vel_names, aux)
                    velfac = np.broadcast_to(
                        vprod.reshape(vprod.shape[p.cdim:]), p.vel_shape
                    ).reshape(1, 1, self._nvel)
                    gc = self._gc
                    np.multiply(work, velfac, out=gc)
                else:
                    gc = self._weighted(step.vel_names, fin, wcache)[2]
            else:
                gc = work
            if first:
                bgemm(a3, gc, out=acc)
                first = False
            else:
                bgemm_acc(a3, gc, acc)
        if fact is not None:
            if accumulate:
                bgemm_acc(fact[0], acc, outc)
            else:
                bgemm(fact[0], acc, out=outc)

    def __repr__(self) -> str:  # pragma: no cover
        return f"FusedPlan(tier={self.tier!r}, {self._plan!r})"
