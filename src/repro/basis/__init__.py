"""Modal orthonormal bases (tensor / serendipity / maximal-order)."""

from .legendre import legendre_coefficients, legendre_norm_squared
from .modal import ModalBasis, gauss_points_1d, tensor_gauss_points
from .multiindex import FAMILIES, multi_indices, num_basis, superlinear_degree

__all__ = [
    "ModalBasis",
    "FAMILIES",
    "multi_indices",
    "num_basis",
    "superlinear_degree",
    "legendre_coefficients",
    "legendre_norm_squared",
    "gauss_points_1d",
    "tensor_gauss_points",
]
