"""Modal orthonormal bases on the reference cube ``[-1, 1]^d``.

A :class:`ModalBasis` holds the multi-index set of one of the three families
(tensor / serendipity / maximal-order) together with exact normalization
data and float evaluation helpers.  Basis function ``i`` is

.. math::

   w_i(\\xi) = \\Big[\\prod_k \\sqrt{\\tfrac{2 a_k + 1}{2}}\\Big]
              \\prod_k P_{a_k}(\\xi_k),

with :math:`a = \\text{indices}[i]`, so that
:math:`\\int w_i w_j \\, d\\xi = \\delta_{ij}` holds exactly — the mass matrix
is the identity and never needs to be stored or inverted (the matrix-free
property of the paper).
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import List, Tuple

import numpy as np

from ..cas.poly import Poly
from .legendre import (
    eval_legendre_float,
    legendre_coefficients,
    legendre_norm_squared,
    legendre_value_at_one,
)
from .multiindex import FAMILIES, multi_indices

__all__ = ["ModalBasis", "gauss_points_1d", "tensor_gauss_points"]


@lru_cache(maxsize=None)
def gauss_points_1d(n: int) -> Tuple[np.ndarray, np.ndarray]:
    """Gauss–Legendre nodes and weights on ``[-1, 1]`` (exact to degree 2n-1)."""
    if n < 1:
        raise ValueError("need at least one quadrature point")
    x, w = np.polynomial.legendre.leggauss(n)
    x.setflags(write=False)
    w.setflags(write=False)
    return x, w


def tensor_gauss_points(n_per_dim: int, ndim: int) -> Tuple[np.ndarray, np.ndarray]:
    """Tensor-product Gauss quadrature on the reference cube.

    Returns ``(points, weights)`` with ``points`` of shape ``(npts, ndim)``.
    """
    x1, w1 = gauss_points_1d(n_per_dim)
    grids = np.meshgrid(*([x1] * ndim), indexing="ij")
    points = np.stack([g.ravel() for g in grids], axis=-1)
    weights = np.ones(points.shape[0])
    wgrids = np.meshgrid(*([w1] * ndim), indexing="ij")
    for wg in wgrids:
        weights *= wg.ravel()
    return points, weights


class ModalBasis:
    """Orthonormal modal basis on the reference cube.

    Parameters
    ----------
    ndim:
        Dimensionality of the reference cell (phase-space dimension for the
        kinetic equation, configuration-space dimension for the fields).
    poly_order:
        Polynomial order ``p``.
    family:
        ``tensor``, ``serendipity`` or ``maximal-order``.
    """

    def __init__(self, ndim: int, poly_order: int, family: str = "serendipity"):
        if family not in FAMILIES:
            raise ValueError(f"unknown family {family!r}")
        self.ndim = int(ndim)
        self.poly_order = int(poly_order)
        self.family = family
        self.indices: List[Tuple[int, ...]] = multi_indices(ndim, poly_order, family)
        self.num_basis = len(self.indices)
        self._index_lookup = {a: i for i, a in enumerate(self.indices)}

    # ------------------------------------------------------------------ #
    # exact data
    # ------------------------------------------------------------------ #
    def norm_squared(self, i: int) -> Fraction:
        """Exact squared normalization constant of basis function ``i``."""
        out = Fraction(1)
        for a in self.indices[i]:
            out /= legendre_norm_squared(a)
        return out

    def norm(self, i: int) -> float:
        return float(np.sqrt(float(self.norm_squared(i))))

    def poly(self, i: int, normalized: bool = True) -> Poly:
        """Basis function ``i`` as a :class:`Poly`.

        With ``normalized=True`` the (generally irrational) normalization is
        folded in approximately via a float->Fraction conversion only for
        testing convenience; symbolic pipelines should use
        ``normalized=False`` plus :meth:`norm_squared`.
        """
        poly = Poly.one(self.ndim)
        for var, a in enumerate(self.indices[i]):
            poly = poly * Poly.from_univariate(self.ndim, var, legendre_coefficients(a))
        if normalized:
            poly = poly * Fraction(self.norm(i)).limit_denominator(10**15)
        return poly

    def index_of(self, alpha: Tuple[int, ...]) -> int:
        """Position of a multi-index in the canonical ordering."""
        return self._index_lookup[tuple(alpha)]

    def contains(self, alpha: Tuple[int, ...]) -> bool:
        return tuple(alpha) in self._index_lookup

    def face_sign(self, i: int, dim: int, sign: int) -> int:
        """Parity factor of basis ``i`` on the face ``xi_dim = sign``."""
        return legendre_value_at_one(self.indices[i][dim], sign)

    # ------------------------------------------------------------------ #
    # float evaluation
    # ------------------------------------------------------------------ #
    def eval_at(self, points: np.ndarray) -> np.ndarray:
        """Evaluate all basis functions at reference points.

        Parameters
        ----------
        points:
            Array of shape ``(npts, ndim)`` in ``[-1, 1]^ndim``.

        Returns
        -------
        Array of shape ``(num_basis, npts)``.
        """
        points = np.atleast_2d(np.asarray(points, dtype=float))
        if points.shape[1] != self.ndim:
            raise ValueError("points have wrong dimensionality")
        max_deg = self.poly_order
        # Legendre values per dimension and degree: P[d][a] shape (npts,)
        table = [
            [eval_legendre_float(a, points[:, d]) for a in range(max_deg + 1)]
            for d in range(self.ndim)
        ]
        out = np.empty((self.num_basis, points.shape[0]))
        for i, alpha in enumerate(self.indices):
            vals = np.full(points.shape[0], self.norm(i))
            for d, a in enumerate(alpha):
                if a:
                    vals = vals * table[d][a]
            out[i] = vals
        return out

    def eval_deriv_at(self, points: np.ndarray, var: int) -> np.ndarray:
        """Evaluate :math:`\\partial w_i/\\partial \\xi_{var}` at reference points."""
        points = np.atleast_2d(np.asarray(points, dtype=float))
        npts = points.shape[0]
        out = np.empty((self.num_basis, npts))
        # derivative via exact coefficient tables (cheap: generation-time only)
        for i, alpha in enumerate(self.indices):
            vals = np.full(npts, self.norm(i))
            for d, a in enumerate(alpha):
                coeffs = legendre_coefficients(a)
                if d == var:
                    dcoeffs = [float(coeffs[k] * k) for k in range(1, len(coeffs))]
                    vals = vals * _polyval_ascending(dcoeffs, points[:, d])
                elif a:
                    vals = vals * eval_legendre_float(a, points[:, d])
            out[i] = vals
        return out

    # ------------------------------------------------------------------ #
    # projections
    # ------------------------------------------------------------------ #
    def project(self, func, quad_order: int | None = None) -> np.ndarray:
        """L2-project a callable ``func(points) -> (npts,)`` defined on the
        reference cube onto the basis; returns ``(num_basis,)`` coefficients."""
        nq = quad_order if quad_order is not None else self.poly_order + 2
        pts, wts = tensor_gauss_points(nq, self.ndim)
        vals = np.asarray(func(pts), dtype=float)
        basis_vals = self.eval_at(pts)
        return basis_vals @ (wts * vals)

    def __repr__(self) -> str:  # pragma: no cover
        return (
            f"ModalBasis(ndim={self.ndim}, p={self.poly_order}, "
            f"family={self.family!r}, Np={self.num_basis})"
        )


def _polyval_ascending(coeffs, x):
    out = np.zeros_like(x)
    for c in reversed(coeffs):
        out = out * x + c
    return out
