"""Small exact operator matrices on the reference cell.

The field solvers (Maxwell, Poisson) are linear constant-coefficient systems
in low-dimensional configuration space; their cost is negligible next to the
kinetic update (paper Table I), so they use small dense per-cell matrices
computed *exactly* by the same CAS machinery as the kinetic kernels (no
quadrature anywhere).
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Tuple

import numpy as np

from ..basis.legendre import legendre_value_at_one
from ..cas.integrate import legendre_product_integral_1d
from .modal import ModalBasis

__all__ = ["derivative_matrix", "face_matrices", "mass_matrix"]


def mass_matrix(basis: ModalBasis) -> np.ndarray:
    """The identity, by orthonormality — provided for tests/documentation."""
    return np.eye(basis.num_basis)


def derivative_matrix(basis: ModalBasis, d: int) -> np.ndarray:
    """Exact :math:`D_{lm} = \\int (\\partial w_l/\\partial \\xi_d) w_m d\\xi`."""
    n = basis.num_basis
    out = np.zeros((n, n))
    for l in range(n):
        al = basis.indices[l]
        if al[d] == 0:
            continue
        for m in range(n):
            am = basis.indices[m]
            val = Fraction(1)
            for k in range(basis.ndim):
                fac = legendre_product_integral_1d((am[k], al[k]), (False, k == d), 0)
                if fac == 0:
                    val = Fraction(0)
                    break
                val *= fac
            if val != 0:
                out[l, m] = float(val) * basis.norm(l) * basis.norm(m)
    return out


def face_matrices(basis: ModalBasis, d: int) -> Dict[Tuple[str, str], np.ndarray]:
    """Exact face coupling matrices with weak-form signs folded in.

    Keyed by ``(test_side, state_side)``; for the face between a left and a
    right cell, accumulating ``out_t += rdx_d * M[(t, s)] @ q_s`` over both
    test sides and any state-weight combination reproduces the DG surface
    integral (same convention as
    :func:`repro.kernels.generator.generate_surface_termsets`).
    """
    n = basis.num_basis
    out: Dict[Tuple[str, str], np.ndarray] = {}
    for t_side, t_sign, g_sign in (("L", 1, -1.0), ("R", -1, 1.0)):
        for s_side, s_sign in (("L", 1), ("R", -1)):
            mat = np.zeros((n, n))
            for l in range(n):
                al = basis.indices[l]
                pl = legendre_value_at_one(al[d], t_sign)
                for m in range(n):
                    am = basis.indices[m]
                    pm = legendre_value_at_one(am[d], s_sign)
                    val = Fraction(1)
                    for k in range(basis.ndim):
                        if k == d:
                            continue
                        fac = legendre_product_integral_1d((am[k], al[k]), (False, False), 0)
                        if fac == 0:
                            val = Fraction(0)
                            break
                        val *= fac
                    if val != 0:
                        mat[l, m] = (
                            float(val) * pl * pm * basis.norm(l) * basis.norm(m) * g_sign
                        )
            out[(t_side, s_side)] = mat
    return out
