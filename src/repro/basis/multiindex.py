"""Multi-index sets for the three modal basis families of the paper.

The paper (Fig. 2) compares three polynomial spaces on the reference cube:

* **tensor** — all exponents up to ``p`` per direction,
  :math:`N_p = (p+1)^d`;
* **serendipity** (Arnold–Awanou / Gkeyll convention) — monomials whose
  *superlinear degree* (the sum of the exponents that are at least 2) is at
  most ``p``; for p=2 in d=5 this gives the 112 degrees of freedom quoted in
  Table I;
* **maximal-order** — total degree at most ``p``,
  :math:`N_p = \\binom{p+d}{d}`.

Each basis function is a product of 1-D Legendre polynomials
:math:`\\prod_k P_{a_k}(\\xi_k)`; because Legendre products with different
multi-indices are mutually orthogonal under the uniform weight, *any* subset
of multi-indices yields an orthonormal basis after normalization.
"""

from __future__ import annotations

import itertools
from math import comb
from typing import List, Tuple

__all__ = [
    "FAMILIES",
    "superlinear_degree",
    "multi_indices",
    "num_basis",
]

FAMILIES = ("tensor", "serendipity", "maximal-order")


def superlinear_degree(alpha: Tuple[int, ...]) -> int:
    """Sum of the exponents that are >= 2 (Arnold–Awanou)."""
    return sum(a for a in alpha if a >= 2)


def _sorted_canonical(indices: List[Tuple[int, ...]]) -> List[Tuple[int, ...]]:
    # Canonical ordering: by total degree, then lexicographic.  Index 0 is
    # always the constant mode, which the moment kernels rely on.
    return sorted(indices, key=lambda a: (sum(a), a))


def multi_indices(ndim: int, poly_order: int, family: str = "serendipity") -> List[Tuple[int, ...]]:
    """Return the canonical multi-index list for a basis family.

    Parameters
    ----------
    ndim:
        Number of reference-cell variables.
    poly_order:
        Polynomial order ``p`` (>= 0).
    family:
        One of ``tensor``, ``serendipity``, ``maximal-order``.
    """
    if ndim < 1:
        raise ValueError("ndim must be >= 1")
    if poly_order < 0:
        raise ValueError("poly_order must be >= 0")
    if family not in FAMILIES:
        raise ValueError(f"unknown basis family {family!r}; choose from {FAMILIES}")

    full = itertools.product(range(poly_order + 1), repeat=ndim)
    if family == "tensor":
        selected = list(full)
    elif family == "serendipity":
        selected = [a for a in full if superlinear_degree(a) <= poly_order]
    else:  # maximal-order
        selected = [a for a in full if sum(a) <= poly_order]
    return _sorted_canonical(selected)


def num_basis(ndim: int, poly_order: int, family: str = "serendipity") -> int:
    """Number of basis functions :math:`N_p` without building the list when
    a closed form exists."""
    if family == "tensor":
        return (poly_order + 1) ** ndim
    if family == "maximal-order":
        return comb(poly_order + ndim, ndim)
    return len(multi_indices(ndim, poly_order, family))
