"""Exact Legendre polynomial machinery.

Legendre polynomials :math:`P_n` on ``[-1, 1]`` are the 1-D building blocks of
every modal orthonormal basis used in the paper.  All coefficients are exact
rationals so that orthogonality relations hold *exactly* during symbolic
integration, which in turn guarantees the exact sparsity of the DG update
tensors.

Normalization: :math:`\\int_{-1}^{1} P_m P_n \\, dx = \\frac{2}{2n+1}\\delta_{mn}`,
so the orthonormal 1-D function is :math:`\\sqrt{(2n+1)/2}\\, P_n`.
"""

from __future__ import annotations

from fractions import Fraction
from functools import lru_cache
from typing import Tuple

__all__ = [
    "legendre_coefficients",
    "legendre_norm_squared",
    "legendre_value_at_one",
    "eval_legendre_float",
]


@lru_cache(maxsize=None)
def legendre_coefficients(n: int) -> Tuple[Fraction, ...]:
    """Ascending monomial coefficients of :math:`P_n` (exact).

    Uses the Bonnet recurrence
    :math:`(n+1) P_{n+1} = (2n+1) x P_n - n P_{n-1}`.
    """
    if n < 0:
        raise ValueError("Legendre degree must be non-negative")
    if n == 0:
        return (Fraction(1),)
    if n == 1:
        return (Fraction(0), Fraction(1))
    pm1 = legendre_coefficients(n - 2)
    p = legendre_coefficients(n - 1)
    # x * P_{n-1}
    shifted = (Fraction(0),) + p
    out = []
    for k in range(n + 1):
        term = Fraction(2 * n - 1, n) * shifted[k]
        if k < len(pm1):
            term -= Fraction(n - 1, n) * pm1[k]
        out.append(term)
    return tuple(out)


def legendre_norm_squared(n: int) -> Fraction:
    """:math:`\\int_{-1}^{1} P_n^2 dx = 2/(2n+1)` (exact)."""
    if n < 0:
        raise ValueError("Legendre degree must be non-negative")
    return Fraction(2, 2 * n + 1)


def legendre_value_at_one(n: int, sign: int = 1) -> int:
    """:math:`P_n(\\pm 1) = (\\pm 1)^n` — used for face restrictions."""
    if sign not in (1, -1):
        raise ValueError("sign must be +1 or -1")
    return 1 if (sign == 1 or n % 2 == 0) else -1


def eval_legendre_float(n: int, x):
    """Evaluate :math:`P_n` at float(s) ``x`` via the stable recurrence."""
    import numpy as np

    x = np.asarray(x, dtype=float)
    if n == 0:
        return np.ones_like(x)
    if n == 1:
        return x.copy()
    pm1 = np.ones_like(x)
    p = x.copy()
    for k in range(1, n):
        pm1, p = p, ((2 * k + 1) * x * p - k * pm1) / (k + 1)
    return p
