"""repro.systems — the composable Model/System API.

The Gkeyll-style "App infrastructure" seam: a simulation is a *declared
composition* of species blocks, a field closure, and couplings — not a
bespoke class per equation set.  The package defines

* :class:`~repro.systems.model.Model` — the protocol (the exact surface
  the Driver, the sharded backend, the steppers, checkpoints, and the
  diagnostics recorders are allowed to touch), with
  :func:`~repro.systems.model.protocol_signature` pinning it;
* :class:`~repro.systems.system.System` — the single Model implementation,
  assembled from :class:`KineticSpecies` + a field block
  (:class:`MaxwellBlock` / :class:`PoissonBlock` / :class:`NullFieldBlock`)
  + couplings;
* the registry (:func:`register_system`) mapping ``SimulationSpec.model``
  names to System builders — Vlasov–Maxwell, Vlasov–Poisson, and the
  field-free advection system are all registered through it with no
  privileged code path.
"""

from .blocks import (
    ChargeCoupling,
    CurrentCoupling,
    ExternalField,
    FieldBlock,
    FieldSpec,
    KineticSpecies,
    MaxwellBlock,
    NullFieldBlock,
    PoissonBlock,
    Species,
)
from .model import Model, cfl_dt, protocol_signature, run_loop
from .registry import (
    SystemKind,
    build_external_field,
    build_species_blocks,
    build_system,
    get_system_kind,
    known_models,
    list_system_kinds,
    register_system,
)
from .system import System

__all__ = [
    "Model",
    "System",
    "Species",
    "FieldSpec",
    "ExternalField",
    "KineticSpecies",
    "FieldBlock",
    "MaxwellBlock",
    "PoissonBlock",
    "NullFieldBlock",
    "CurrentCoupling",
    "ChargeCoupling",
    "SystemKind",
    "register_system",
    "get_system_kind",
    "list_system_kinds",
    "known_models",
    "build_system",
    "build_species_blocks",
    "build_external_field",
    "run_loop",
    "cfl_dt",
    "protocol_signature",
]
