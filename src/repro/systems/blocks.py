"""Composable building blocks for kinetic systems.

A :class:`~repro.systems.system.System` is assembled from three kinds of
reusable parts — the Gkeyll-style decomposition of an "App" into declared
pieces instead of a bespoke class per equation set:

* :class:`KineticSpecies` — one species' built solver stack: phase grid,
  modal/quadrature Vlasov solver, moment calculator, collision operator,
  and the projected initial distribution;
* a field block closing the kinetic equation —
  :class:`MaxwellBlock` (evolved EM field), :class:`PoissonBlock`
  (electrostatic functional closure), or :class:`NullFieldBlock`
  (field-free passive advection);
* couplings — :class:`CurrentCoupling` / :class:`ChargeCoupling` —
  accumulating species moments onto the configuration grid for the field
  block to consume.

Every block reuses the compiled :mod:`repro.engine` plan cache and the
cell-major :class:`~repro.engine.layout.StateLayout`; composing blocks adds
no new numerical code paths, so a block-built Vlasov–Maxwell system is
bit-identical to the former hand-rolled app.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

import numpy as np

from ..basis.modal import ModalBasis
from ..grid.cartesian import Grid
from ..grid.phase import PhaseGrid
from ..moments.calc import MomentCalculator
from ..projection import project_phase_function

__all__ = [
    "Species",
    "FieldSpec",
    "ExternalField",
    "KineticSpecies",
    "FieldBlock",
    "MaxwellBlock",
    "PoissonBlock",
    "NullFieldBlock",
    "CurrentCoupling",
    "ChargeCoupling",
]


# --------------------------------------------------------------------- #
# declarations
# --------------------------------------------------------------------- #
@dataclass
class Species:
    """One kinetic species declaration.

    Parameters
    ----------
    name:
        Unique identifier.
    charge, mass:
        Normalized charge and mass.
    velocity_grid:
        Velocity-space grid (should not straddle v=0 within a cell).
    initial:
        Vectorized callable ``f0(x..., v...)`` for the initial condition.
    collisions:
        Optional collision operator with an
        ``rhs(f, moments, out) -> out`` interface (see
        :mod:`repro.collisions`).
    """

    name: str
    charge: float
    mass: float
    velocity_grid: Grid
    initial: Callable[..., np.ndarray]
    collisions: Optional[object] = None


@dataclass
class FieldSpec:
    """Electromagnetic field configuration.

    ``initial`` maps component names (``Ex`` ... ``psi``) to callables of the
    configuration coordinates; omitted components start at zero.  Set
    ``evolve=False`` for a static external field.
    """

    initial: Dict[str, Callable[..., np.ndarray]] = field(default_factory=dict)
    light_speed: float = 1.0
    epsilon0: float = 1.0
    flux: str = "central"
    chi_e: float = 0.0
    chi_m: float = 0.0
    evolve: bool = True


@dataclass
class ExternalField:
    """Prescribed, time-dependent external EM drive.

    The drive is separable: a static spatial profile per component
    (callables of the configuration coordinates, projected once at system
    construction) times the scalar envelope

    .. math:: g(t) = \\cos(\\omega t + \\varphi) \\cdot \\min(t/t_{ramp}, 1)

    (the ramp factor applies only when ``ramp > 0``).  The drive
    accelerates particles — it is added to the self-consistent field seen
    by the Vlasov solvers and by the CFL estimate — but it is *not*
    evolved and does not enter the field update or the field-energy
    diagnostics.  Within a time step the envelope is frozen at the step's
    start time (all RK stages see the same drive), keeping the stepper's
    stage structure field-agnostic.
    """

    profiles: Dict[str, Callable[..., np.ndarray]]
    omega: float = 0.0
    phase: float = 0.0
    ramp: float = 0.0

    def envelope(self, t: float) -> float:
        g = math.cos(self.omega * t + self.phase)
        if self.ramp > 0.0:
            g *= min(t / self.ramp, 1.0)
        return g


# --------------------------------------------------------------------- #
# species block
# --------------------------------------------------------------------- #
class KineticSpecies:
    """One species' built solver stack on a configuration grid.

    Owns the phase grid, the Vlasov solver (modal or the alias-free nodal
    baseline), the moment calculator, and the collision operator; projects
    the declared initial condition on demand.  The evolved distribution
    array itself lives in the owning :class:`~repro.systems.system.System`
    state so sharded backends can rebind it to shared memory.
    """

    def __init__(
        self,
        decl: Species,
        conf_grid: Grid,
        poly_order: int,
        family: str,
        scheme: str,
        velocity_flux: str,
        backend,
        ic_quad_order: Optional[int],
    ):
        self.decl = decl
        self.name = decl.name
        self.collisions = decl.collisions
        pg = PhaseGrid(conf_grid, decl.velocity_grid)
        self.phase_grid = pg
        if scheme == "modal":
            from ..vlasov.modal_solver import VlasovModalSolver

            self.solver = VlasovModalSolver(
                pg, poly_order, family, decl.charge, decl.mass, velocity_flux,
                backend=backend,
            )
            kernels = self.solver.kernels
        else:
            from ..kernels.registry import get_vlasov_kernels
            from ..vlasov.quadrature_solver import VlasovQuadratureSolver

            self.solver = VlasovQuadratureSolver(
                pg, poly_order, family, decl.charge, decl.mass, backend=backend
            )
            kernels = get_vlasov_kernels(pg.cdim, pg.vdim, poly_order, family)
        self.moments = MomentCalculator(
            pg, kernels, pool=getattr(self.solver, "pool", None)
        )
        self._basis = ModalBasis(pg.pdim, poly_order, family)
        self._ic_quad_order = ic_quad_order

    def project_initial(self) -> np.ndarray:
        """Project the declared initial condition onto the DG basis."""
        return project_phase_function(
            self.decl.initial, self.phase_grid, self._basis, self._ic_quad_order
        )


# --------------------------------------------------------------------- #
# couplings
# --------------------------------------------------------------------- #
class CurrentCoupling:
    """Accumulates the species' total current (and charge) density.

    The per-species scratch buffer is persistent, so steady-state stepping
    performs no configuration-space allocation.
    """

    def __init__(self, conf_grid: Grid, cfg_basis: ModalBasis):
        self.conf_grid = conf_grid
        self.cfg_basis = cfg_basis
        self._species_current: Optional[np.ndarray] = None

    def total_current(
        self,
        blocks: List[KineticSpecies],
        state: Dict[str, np.ndarray],
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        shape = self.conf_grid.cells + (3, self.cfg_basis.num_basis)
        if out is None:
            out = np.zeros(shape)
        else:
            out.fill(0.0)
        if self._species_current is None:
            self._species_current = np.empty(shape)
        for blk in blocks:
            out += blk.moments.current_density(
                state[f"f/{blk.name}"], blk.decl.charge, out=self._species_current
            )
        return out

    def total_charge_density(
        self, blocks: List[KineticSpecies], state: Dict[str, np.ndarray]
    ) -> np.ndarray:
        rho = np.zeros(self.conf_grid.cells + (self.cfg_basis.num_basis,))
        for blk in blocks:
            rho += blk.moments.charge_density(state[f"f/{blk.name}"], blk.decl.charge)
        return rho


class ChargeCoupling:
    """Accumulates the species' charge density for functional field solves,
    with optional uniform neutralizing background."""

    def __init__(self, conf_grid: Grid, cfg_basis: ModalBasis, neutralize: bool):
        self.conf_grid = conf_grid
        self.cfg_basis = cfg_basis
        self.neutralize = neutralize

    def charge_density(
        self, blocks: List[KineticSpecies], state: Dict[str, np.ndarray]
    ) -> np.ndarray:
        rho = np.zeros(self.conf_grid.cells + (self.cfg_basis.num_basis,))
        for blk in blocks:
            rho += blk.decl.charge * blk.moments.compute(
                "M0", state[f"f/{blk.name}"]
            )
        if self.neutralize:
            rho[..., 0] -= rho[..., 0].mean()
        return rho


# --------------------------------------------------------------------- #
# field blocks
# --------------------------------------------------------------------- #
class FieldBlock:
    """Base class for field closures.

    A field block is constructed from its declaration alone and bound to
    the owning system's grid/basis by :meth:`bind` (called once by
    ``System.__init__``).  Subclasses define:

    ``kind``
        ``"maxwell"`` / ``"poisson"`` / ``"none"`` — the dispatch tag the
        sharded backend keys block execution on.
    ``in_state``
        whether the block contributes an ``"em"`` entry to the model state.
    ``evolves``
        whether that entry has a nonzero time derivative.
    ``em_for_species(system, state)``
        the EM array the Vlasov solvers consume (self-consistent field
        plus any external drive at the system's current time).
    ``accumulate_rhs(system, state, out)``
        fill the field's own time derivative into ``out`` (no-op for
        functional/static closures).
    ``max_frequency()``
        the field's CFL frequency contribution (0 when not evolved).
    ``energy(system)``
        the field-energy diagnostic.
    """

    kind: str = "abstract"
    in_state: bool = False
    evolves: bool = False

    def __init__(self):
        self.external: Optional[ExternalField] = None
        self._ext_coeffs: Optional[np.ndarray] = None
        self._bound = False

    def bind_to(self, conf_grid: Grid, cfg_basis: ModalBasis,
                external: Optional[ExternalField]) -> None:
        """One-time binding entry point (called by ``System.__init__``).

        A block instance holds grid-shaped solvers and buffers, so it
        belongs to exactly one System; rebinding would silently corrupt
        the first owner."""
        if self._bound:
            raise ValueError(
                f"this {type(self).__name__} is already bound to a System; "
                "construct a fresh field block per System"
            )
        self.bind(conf_grid, cfg_basis, external)
        self._bound = True

    def bind(self, conf_grid: Grid, cfg_basis: ModalBasis,
             external: Optional[ExternalField]) -> None:
        raise NotImplementedError

    def initial_em(self) -> Optional[np.ndarray]:
        """The initial ``"em"`` state entry (None when not ``in_state``)."""
        return None

    def em_for_species(self, system, state) -> np.ndarray:
        raise NotImplementedError

    def accumulate_rhs(self, system, state, out) -> None:
        pass

    def max_frequency(self) -> float:
        return 0.0

    def energy(self, system) -> float:
        return 0.0

    def _project_external(self, conf_grid: Grid, cfg_basis: ModalBasis) -> np.ndarray:
        """Project the external drive's spatial profiles onto the full
        8-component EM layout (components not driven stay zero)."""
        from ..fields.maxwell import project_em_components

        return project_em_components(conf_grid, cfg_basis, self.external.profiles)


class MaxwellBlock(FieldBlock):
    """Evolved electromagnetic field (Maxwell's equations, DG central or
    upwind fluxes, with divergence-cleaning potentials)."""

    kind = "maxwell"
    in_state = True

    def __init__(self, spec: Optional[FieldSpec] = None):
        super().__init__()
        self.spec = spec or FieldSpec(evolve=False)
        self.solver = None
        self.coupling: Optional[CurrentCoupling] = None
        self._ext_buf: Optional[np.ndarray] = None
        self._total_current: Optional[np.ndarray] = None

    @property
    def evolves(self) -> bool:
        return self.spec.evolve

    def bind(self, conf_grid, cfg_basis, external) -> None:
        from ..fields.maxwell import MaxwellSolver

        self.solver = MaxwellSolver(
            conf_grid,
            cfg_basis,
            light_speed=self.spec.light_speed,
            epsilon0=self.spec.epsilon0,
            flux=self.spec.flux,
            chi_e=self.spec.chi_e,
            chi_m=self.spec.chi_m,
        )
        self.coupling = CurrentCoupling(conf_grid, cfg_basis)
        self.external = external
        if external is not None:
            self._ext_coeffs = self.solver.project_initial_condition(
                external.profiles
            )
            self._ext_buf = np.empty_like(self._ext_coeffs)

    def initial_em(self) -> np.ndarray:
        return self.solver.project_initial_condition(self.spec.initial)

    def em_for_species(self, system, state) -> np.ndarray:
        """The field the particles feel: the evolved state plus the external
        drive at the system's current time.  The returned array is a
        persistent buffer refreshed per call (the state array itself when
        there is no drive)."""
        em = state["em"] if "em" in state else system.em
        if self.external is None:
            return em
        np.multiply(
            self._ext_coeffs, self.external.envelope(system.time), out=self._ext_buf
        )
        self._ext_buf += em
        return self._ext_buf

    def _current_buf(self) -> np.ndarray:
        if self._total_current is None:
            self._total_current = np.empty(
                self.coupling.conf_grid.cells + (3, self.coupling.cfg_basis.num_basis)
            )
        return self._total_current

    def accumulate_rhs(self, system, state, out) -> None:
        if self.spec.evolve:
            em = state["em"] if "em" in state else system.em
            current = self.coupling.total_current(
                system.blocks, state, out=self._current_buf()
            )
            rho = (
                self.coupling.total_charge_density(system.blocks, state)
                if self.spec.chi_e
                else None
            )
            self.solver.rhs(em, current=current, charge_density=rho, out=out["em"])
        elif "em" in out:
            out["em"].fill(0.0)

    def max_frequency(self) -> float:
        return self.solver.max_frequency() if self.spec.evolve else 0.0

    def energy(self, system) -> float:
        return self.solver.field_energy(system.em)


class PoissonBlock(FieldBlock):
    """Electrostatic closure: ``Ex`` is a *functional* of the instantaneous
    charge density via the exact 1-D DG Poisson solve — no field state is
    evolved, so light-speed CFL limits never enter."""

    kind = "poisson"
    in_state = False

    def __init__(self, epsilon0: float = 1.0, neutralize: bool = True):
        super().__init__()
        self.epsilon0 = float(epsilon0)
        self.neutralize = bool(neutralize)
        self.solver = None
        self.coupling: Optional[ChargeCoupling] = None
        self._em_buf: Optional[np.ndarray] = None
        self._conf_grid: Optional[Grid] = None
        self._cfg_basis: Optional[ModalBasis] = None

    def bind(self, conf_grid, cfg_basis, external) -> None:
        if conf_grid.ndim != 1:
            raise ValueError("the Poisson field block supports 1-D configuration space")
        from ..fields.poisson import Poisson1D

        self.solver = Poisson1D(conf_grid, cfg_basis, self.epsilon0)
        self.coupling = ChargeCoupling(conf_grid, cfg_basis, self.neutralize)
        self._conf_grid = conf_grid
        self._cfg_basis = cfg_basis
        self.external = external
        if external is not None:
            self._ext_coeffs = self._project_external(conf_grid, cfg_basis)

    def em_for_species(self, system, state) -> np.ndarray:
        """Full EM-state array (cell-major ``(nx, 8, Npc)``) with ``Ex``
        from the Poisson solve plus any external drive at the system's
        current time.  The returned array is a persistent buffer refreshed
        on every call."""
        rho = self.coupling.charge_density(system.blocks, state)
        ex = self.solver.solve(rho)
        if self._em_buf is None:
            self._em_buf = np.zeros(
                self._conf_grid.cells + (8, self._cfg_basis.num_basis)
            )
        if self.external is not None:
            np.multiply(
                self._ext_coeffs,
                self.external.envelope(system.time),
                out=self._em_buf,
            )
            self._em_buf[..., 0, :] += ex
        else:
            self._em_buf[..., 0, :] = ex
        return self._em_buf

    def energy(self, system) -> float:
        """Electrostatic energy ``(eps0/2) int E^2 dx``."""
        em = self.em_for_species(system, system.state())
        jac = 0.5 * self._conf_grid.dx[0]
        return 0.5 * self.epsilon0 * float(np.sum(em[..., 0, :] ** 2)) * jac


class NullFieldBlock(FieldBlock):
    """No field at all: species stream freely (passive DG advection).

    Unlike a static :class:`MaxwellBlock` this contributes no ``"em"``
    state entry, so checkpoints, halos, and stepping carry distribution
    functions only.  An external drive may still be prescribed (it matters
    only for charged species).
    """

    kind = "none"
    in_state = False

    def __init__(self):
        super().__init__()
        self._zero_em: Optional[np.ndarray] = None
        self._em_buf: Optional[np.ndarray] = None

    def bind(self, conf_grid, cfg_basis, external) -> None:
        self._zero_em = np.zeros(conf_grid.cells + (8, cfg_basis.num_basis))
        self.external = external
        if external is not None:
            self._ext_coeffs = self._project_external(conf_grid, cfg_basis)
            self._em_buf = np.empty_like(self._ext_coeffs)

    def em_for_species(self, system, state) -> np.ndarray:
        if self.external is None:
            return self._zero_em
        np.multiply(
            self._ext_coeffs, self.external.envelope(system.time), out=self._em_buf
        )
        return self._em_buf
