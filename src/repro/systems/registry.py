"""System registry: named system declarations built from simulation specs.

Every value of ``SimulationSpec.model`` is the name of a **registered
system** — a builder that assembles a :class:`~repro.systems.system.System`
from the spec's grids, species, and field declarations, plus an optional
spec-validation hook (model-specific constraints such as "the Poisson
closure needs 1-D configuration space") and a small ``example`` spec the
protocol-conformance suite runs against.

Registering a new equation set is a declaration, not a new app class::

    from repro.systems import System, NullFieldBlock, register_system

    @register_system("advection", description="field-free passive advection")
    def build_advection(spec):
        return System(..., field=NullFieldBlock(), ...)

The Vlasov–Maxwell and Vlasov–Poisson workloads themselves are registered
through exactly this mechanism — there is no privileged code path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from .blocks import ExternalField, FieldSpec, MaxwellBlock, NullFieldBlock, PoissonBlock, Species
from .system import System

__all__ = [
    "SystemKind",
    "register_system",
    "get_system_kind",
    "list_system_kinds",
    "known_models",
    "build_system",
    "build_species_blocks",
    "build_external_field",
]

_REGISTRY: Dict[str, "SystemKind"] = {}


def doc_summary(fn, description: Optional[str] = None) -> str:
    """The explicit ``description`` or the first docstring line of ``fn``.

    Raises a clear error when neither exists (used by this registry and
    the scenario registry — a registered name must have a catalogue line).
    """
    if description:
        return description
    doc = (fn.__doc__ or "").strip()
    if not doc:
        raise ValueError(
            f"{fn.__name__}: pass description=... or give the builder a docstring"
        )
    return doc.splitlines()[0]


@dataclass(frozen=True)
class SystemKind:
    """One registered system declaration."""

    name: str
    builder: Callable[..., System]
    description: str
    #: optional hook ``validate(spec, path)`` raising SpecError for
    #: model-specific spec constraints
    validate: Optional[Callable] = None
    #: small, fast spec builder the conformance suite runs against
    example: Optional[Callable] = None
    #: whether the ``process:N`` backend can shard this system
    shardable: bool = True
    #: whether the built model provides the ``jdote()`` diagnostic
    #: (``diagnostics.record_jdote`` is rejected generically otherwise)
    supports_jdote: bool = False

    def build(self, spec) -> System:
        return self.builder(spec)


def register_system(
    name: str,
    description: Optional[str] = None,
    validate: Optional[Callable] = None,
    example: Optional[Callable] = None,
    shardable: bool = True,
    supports_jdote: bool = False,
    override: bool = False,
):
    """Decorator registering a spec->System builder under ``name``.

    Duplicate names raise unless ``override=True`` — silently replacing a
    registered system (including the built-ins) would reroute every spec,
    checkpoint resume, and campaign point using that model name.
    """

    def deco(fn):
        if name in _REGISTRY and not override:
            raise ValueError(
                f"system {name!r} is already registered "
                f"(by {_REGISTRY[name].builder.__module__}); "
                "pass override=True to replace it"
            )
        _REGISTRY[name] = SystemKind(
            name=name,
            builder=fn,
            description=doc_summary(fn, description),
            validate=validate,
            example=example,
            shardable=shardable,
            supports_jdote=supports_jdote,
        )
        return fn

    return deco


def get_system_kind(name: str) -> SystemKind:
    if name not in _REGISTRY:
        raise KeyError(
            f"unknown system {name!r} (registered: {', '.join(sorted(_REGISTRY))})"
        )
    return _REGISTRY[name]


def list_system_kinds() -> List[SystemKind]:
    return [_REGISTRY[name] for name in sorted(_REGISTRY)]


def known_models() -> tuple:
    """The registered system names (valid ``SimulationSpec.model`` values)."""
    return tuple(sorted(_REGISTRY))


def build_system(spec) -> System:
    """Assemble the System described by ``spec`` (ICs projected, t=0)."""
    spec = spec.validate()
    return get_system_kind(spec.model).build(spec)


# --------------------------------------------------------------------- #
# shared spec->block assembly (public: system builders — registered here
# or in user code — compose their Systems from these)
# --------------------------------------------------------------------- #
def build_species_blocks(spec, conf_grid) -> List[Species]:
    """Compile a spec's species declarations (ICs + collision operators)
    into :class:`~repro.systems.blocks.Species` declarations on
    ``conf_grid`` (the same Grid instance the System is built on, so
    collision stacks share its identity)."""
    from ..grid.phase import PhaseGrid
    from ..runtime.profiles import build_phase_profile

    cdim = spec.conf_grid.ndim
    out = []
    for sp in spec.species:
        vel_grid = sp.velocity_grid.build()
        initial = build_phase_profile(
            sp.initial, cdim, vel_grid.ndim, f"species[{sp.name}].initial"
        )
        collisions = None
        if sp.collisions is not None:
            collisions = _build_collisions(
                sp.collisions, PhaseGrid(conf_grid, vel_grid), spec
            )
        out.append(
            Species(sp.name, sp.charge, sp.mass, vel_grid, initial, collisions)
        )
    return out


def _build_collisions(coll_spec, phase_grid, spec):
    if coll_spec.kind == "lbo":
        from ..collisions.lbo import LBOCollisions

        return LBOCollisions(phase_grid, spec.poly_order, spec.family, nu=coll_spec.nu)
    from ..collisions.bgk import BGKCollisions

    return BGKCollisions(phase_grid, spec.poly_order, spec.family, nu=coll_spec.nu)


def build_external_field(spec) -> Optional[ExternalField]:
    """Compile a spec's ``external_field`` declaration into an
    :class:`~repro.systems.blocks.ExternalField` (None when absent)."""
    if spec.external_field is None:
        return None
    from ..runtime.profiles import build_conf_profile

    ext = spec.external_field
    cdim = spec.conf_grid.ndim
    return ExternalField(
        profiles={
            comp: build_conf_profile(prof, cdim, f"external_field.components.{comp}")
            for comp, prof in ext.components.items()
        },
        omega=ext.omega,
        phase=ext.phase,
        ramp=ext.ramp,
    )


# --------------------------------------------------------------------- #
# registered systems
# --------------------------------------------------------------------- #
def _validate_maxwell(spec, path: str) -> None:
    from ..runtime.errors import SpecError

    if spec.epsilon0 != 1.0:
        raise SpecError(
            f"{path}.epsilon0",
            "the maxwell model reads field.epsilon0; set that instead",
        )
    if not spec.neutralize:
        raise SpecError(
            f"{path}.neutralize", "neutralize only applies to the poisson model"
        )


def _example_maxwell():
    from ..runtime.scenarios import build

    return build("weibel_2x2v", nx=4, nv=6, poly_order=1, steps=3)


@register_system(
    "maxwell",
    description="Vlasov–Maxwell: kinetic species + evolved EM field "
    "(current coupling)",
    validate=_validate_maxwell,
    example=_example_maxwell,
    supports_jdote=True,
)
def build_vlasov_maxwell(spec) -> System:
    """Vlasov–Maxwell system from a simulation spec."""
    from ..runtime.profiles import build_conf_profile

    cdim = spec.conf_grid.ndim
    field = None
    if spec.field is not None:
        fs = spec.field
        field = FieldSpec(
            initial={
                comp: build_conf_profile(prof, cdim, f"field.initial.{comp}")
                for comp, prof in fs.initial.items()
            },
            light_speed=fs.light_speed,
            epsilon0=fs.epsilon0,
            flux=fs.flux,
            chi_e=fs.chi_e,
            chi_m=fs.chi_m,
            evolve=fs.evolve,
        )
    conf_grid = spec.conf_grid.build()
    return System(
        conf_grid,
        build_species_blocks(spec, conf_grid),
        field=MaxwellBlock(field),
        poly_order=spec.poly_order,
        family=spec.family,
        cfl=spec.cfl,
        scheme=spec.scheme,
        stepper=spec.stepper,
        backend=spec.backend,
        external=build_external_field(spec),
        name="maxwell",
    )


def _validate_poisson(spec, path: str) -> None:
    from ..runtime.errors import SpecError

    if spec.conf_grid.ndim != 1:
        raise SpecError(
            f"{path}.conf_grid.cells",
            "the poisson model supports 1-D configuration space only",
        )
    if spec.scheme != "modal":
        raise SpecError(
            f"{path}.scheme", "the poisson model only supports the modal scheme"
        )
    if spec.field is not None:
        raise SpecError(
            f"{path}.field",
            "the poisson model computes its field from charge density; drop 'field'",
        )


def _example_poisson():
    from ..runtime.scenarios import build

    return build("two_stream", nx=4, nv=8, poly_order=1, steps=3)


@register_system(
    "poisson",
    description="Vlasov–Poisson: kinetic species + electrostatic functional "
    "closure (1X)",
    validate=_validate_poisson,
    example=_example_poisson,
)
def build_vlasov_poisson(spec) -> System:
    """Vlasov–Poisson system from a simulation spec."""
    conf_grid = spec.conf_grid.build()
    return System(
        conf_grid,
        build_species_blocks(spec, conf_grid),
        field=PoissonBlock(epsilon0=spec.epsilon0, neutralize=spec.neutralize),
        poly_order=spec.poly_order,
        family=spec.family,
        cfl=spec.cfl,
        scheme="modal",
        stepper=spec.stepper,
        backend=spec.backend,
        external=build_external_field(spec),
        name="poisson",
    )


def _validate_advection(spec, path: str) -> None:
    from ..runtime.errors import SpecError

    if spec.field is not None:
        raise SpecError(
            f"{path}.field", "the advection model has no field; drop 'field'"
        )
    if spec.epsilon0 != 1.0:
        raise SpecError(
            f"{path}.epsilon0", "epsilon0 does not apply to the advection model"
        )
    if not spec.neutralize:
        raise SpecError(
            f"{path}.neutralize", "neutralize only applies to the poisson model"
        )


def _example_advection():
    from ..runtime.scenarios import build

    return build("advection_1d", nx=6, nv=8, poly_order=1, steps=3)


@register_system(
    "advection",
    description="Field-free passive DG advection (streaming only, no closure)",
    validate=_validate_advection,
    example=_example_advection,
)
def build_advection(spec) -> System:
    """Field-free kinetic system: species stream without any field closure."""
    conf_grid = spec.conf_grid.build()
    return System(
        conf_grid,
        build_species_blocks(spec, conf_grid),
        field=NullFieldBlock(),
        poly_order=spec.poly_order,
        family=spec.family,
        cfl=spec.cfl,
        scheme=spec.scheme,
        stepper=spec.stepper,
        backend=spec.backend,
        external=build_external_field(spec),
        name="advection",
    )
