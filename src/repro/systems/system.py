"""The composable ``System``: species blocks + a field block = a model.

A :class:`System` is the single :class:`~repro.systems.model.Model`
implementation behind every workload: Vlasov–Maxwell, Vlasov–Poisson,
field-free advection, and anything else declared through the registry are
all the *same* class wired with different blocks.  The hand-rolled
``VlasovMaxwellApp`` / ``VlasovPoissonApp`` classes survive only as thin
deprecation shims over this one.

The execution structure (buffer reuse, accumulation order, stepping) is
identical to the former apps', so a block-built system reproduces their
results bit for bit — the property the conformance suite and the sharded
backend's serial-equality tests pin down.
"""

from __future__ import annotations

from time import perf_counter as _perf_counter
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..grid.cartesian import Grid
from ..obs import OBS as _OBS
from ..obs.metrics import SLOT as _OBS_SLOT
from ..timestepping.ssprk import get_stepper
from .blocks import (
    ExternalField,
    FieldBlock,
    KineticSpecies,
    MaxwellBlock,
    NullFieldBlock,
    PoissonBlock,
    Species,
)
from .model import cfl_dt, run_loop

__all__ = ["System"]

_S_RHS = _OBS_SLOT["rhs_calls"]
_S_RHS_MS = _OBS_SLOT["rhs_ms"]


class System:
    """Multi-species kinetic system assembled from declarative blocks.

    Parameters
    ----------
    conf_grid:
        Configuration-space grid (periodic).
    species:
        Kinetic species declarations (:class:`~repro.systems.blocks.Species`).
    field:
        A field block — :class:`MaxwellBlock`, :class:`PoissonBlock`, or
        :class:`NullFieldBlock` (the default: field-free streaming).
    poly_order, family:
        DG basis selection.
    cfl:
        CFL number (fraction of the stability limit).
    scheme:
        ``"modal"`` (the paper's algorithm) or ``"quadrature"``
        (the alias-free nodal-style baseline of Table I).
    stepper:
        ``"ssp-rk3"`` (default), ``"ssp-rk2"`` or ``"forward-euler"``.
    external:
        Optional prescribed time-dependent EM drive.
    name:
        Registry name of the system declaration (informational).
    """

    def __init__(
        self,
        conf_grid: Grid,
        species: Sequence[Species],
        field: Optional[FieldBlock] = None,
        poly_order: int = 2,
        family: str = "serendipity",
        cfl: float = 0.9,
        scheme: str = "modal",
        stepper: str = "ssp-rk3",
        velocity_flux: str = "central",
        ic_quad_order: Optional[int] = None,
        backend: str = "numpy",
        external: Optional[ExternalField] = None,
        name: Optional[str] = None,
    ):
        if scheme not in ("modal", "quadrature"):
            raise ValueError("scheme must be 'modal' or 'quadrature'")
        if not species:
            raise ValueError("need at least one species")
        names = [s.name for s in species]
        if len(set(names)) != len(names):
            raise ValueError("species names must be unique")
        if field is None:
            field = NullFieldBlock()
        if not isinstance(field, FieldBlock):
            raise TypeError(
                f"field must be a FieldBlock (MaxwellBlock/PoissonBlock/"
                f"NullFieldBlock), got {type(field).__name__}"
            )
        self.name = name or field.kind
        self.conf_grid = conf_grid
        self.species = list(species)
        self.field = field
        self.poly_order = int(poly_order)
        self.family = family
        self.cfl = float(cfl)
        self.scheme = scheme
        self.backend = backend
        self.stepper = get_stepper(stepper)
        self.time = 0.0
        self.step_count = 0

        from ..basis.modal import ModalBasis

        self.cfg_basis = ModalBasis(conf_grid.ndim, poly_order, family)
        field.bind_to(conf_grid, self.cfg_basis, external)

        self.blocks: List[KineticSpecies] = [
            KineticSpecies(
                sp, conf_grid, self.poly_order, family, scheme, velocity_flux,
                backend, ic_quad_order,
            )
            for sp in self.species
        ]
        # legacy-named views of the block stacks (tests, examples, and the
        # sharded backend address them this way)
        self.phase_grids = {b.name: b.phase_grid for b in self.blocks}
        self.solvers = {b.name: b.solver for b in self.blocks}
        self.moments = {b.name: b.moments for b in self.blocks}
        self.f: Dict[str, np.ndarray] = {
            b.name: b.project_initial() for b in self.blocks
        }
        self.em: Optional[np.ndarray] = field.initial_em()

    # ------------------------------------------------------------------ #
    # convenience accessors (the old app attribute names)
    # ------------------------------------------------------------------ #
    @property
    def field_kind(self) -> str:
        """Field-closure tag: ``"maxwell"``, ``"poisson"``, or ``"none"``."""
        return self.field.kind

    @property
    def external(self) -> Optional[ExternalField]:
        return self.field.external

    @property
    def _ext_coeffs(self) -> Optional[np.ndarray]:
        return self.field._ext_coeffs

    @property
    def field_spec(self):
        """The Maxwell :class:`~repro.systems.blocks.FieldSpec` (Maxwell
        field block only)."""
        return self.field.spec

    @property
    def maxwell(self):
        """The bound :class:`~repro.fields.maxwell.MaxwellSolver`
        (Maxwell field block only)."""
        if self.field.kind != "maxwell":
            raise AttributeError(
                f"no Maxwell solver on a {self.field.kind!r}-closed System"
            )
        return self.field.solver

    @property
    def poisson(self):
        """The bound :class:`~repro.fields.poisson.Poisson1D` solver
        (Poisson field block only)."""
        if self.field.kind != "poisson":
            raise AttributeError(
                f"no Poisson solver on a {self.field.kind!r}-closed System"
            )
        return self.field.solver

    @property
    def neutralize(self) -> bool:
        return self.field.neutralize

    # ------------------------------------------------------------------ #
    # state plumbing
    # ------------------------------------------------------------------ #
    def state(self) -> Dict[str, np.ndarray]:
        out = {f"f/{sp.name}": self.f[sp.name] for sp in self.species}
        if self.field.in_state:
            out["em"] = self.em
        return out

    def set_state(self, state: Dict[str, np.ndarray]) -> None:
        for sp in self.species:
            self.f[sp.name] = state[f"f/{sp.name}"]
        if self.field.in_state:
            self.em = state["em"]

    def rhs(
        self,
        state: Dict[str, np.ndarray],
        out: Optional[Dict[str, np.ndarray]] = None,
    ) -> Dict[str, np.ndarray]:
        """Full coupled RHS: Vlasov per species + the field block's own
        time derivative.

        ``out``, when given, is a donated state-shaped buffer dict filled in
        place (the steady-state path: no phase-space allocation).

        This wrapper is the observability seam: with the default
        ``mode="off"`` it is one flag check over :meth:`_rhs_impl` (the
        overhead gate in ``bench_rhs_hotpath.py`` times the two against
        each other).
        """
        if _OBS.on:
            t0 = _perf_counter()
            out = self._rhs_impl(state, out)
            _OBS.finish("rhs", t0, _S_RHS, _S_RHS_MS)
            return out
        return self._rhs_impl(state, out)

    def _rhs_impl(
        self,
        state: Dict[str, np.ndarray],
        out: Optional[Dict[str, np.ndarray]] = None,
    ) -> Dict[str, np.ndarray]:
        em_eff = self.field.em_for_species(self, state)
        if out is None:
            out = {k: np.empty_like(v) for k, v in state.items()}
        for blk in self.blocks:
            f = state[f"f/{blk.name}"]
            df = out[f"f/{blk.name}"]
            blk.solver.rhs(f, em_eff, out=df)
            if blk.collisions is not None:
                blk.collisions.rhs(f, blk.moments, out=df, accumulate=True)
        self.field.accumulate_rhs(self, state, out)
        return out

    # ------------------------------------------------------------------ #
    # time advance
    # ------------------------------------------------------------------ #
    def suggested_dt(self) -> float:
        freq = self.field.max_frequency()
        em_eff = self.field.em_for_species(self, self.state())
        for blk in self.blocks:
            freq = max(freq, blk.solver.max_frequency(em_eff))
            if blk.collisions is not None:
                freq = max(freq, blk.collisions.max_frequency())
        return cfl_dt(self.cfl, freq)

    def step(self, dt: Optional[float] = None) -> float:
        """Advance one step (in place; the state arrays are mutated);
        returns the dt taken."""
        if dt is None:
            dt = self.suggested_dt()
        state = self.state()
        if self.field.in_state and not self.field.evolves:
            # a static field is not stepped: keeps it bitwise frozen and
            # skips three stage combinations
            state.pop("em")
        self.stepper.step_inplace(state, self._rhs_into, dt)
        self.time += dt
        self.step_count += 1
        return dt

    def _rhs_into(
        self, state: Dict[str, np.ndarray], out: Dict[str, np.ndarray]
    ) -> None:
        self.rhs(state, out=out)

    def run(self, t_end: float, diagnostics=None, max_steps: int = 10**9):
        """Advance to ``t_end``; optional per-step diagnostics callback.
        Returns a summary with wall-clock timing."""
        return run_loop(self, t_end, diagnostics=diagnostics, max_steps=max_steps)

    # ------------------------------------------------------------------ #
    # couplings (legacy method names kept for the Maxwell/Poisson cases)
    # ------------------------------------------------------------------ #
    def total_current(
        self, state: Dict[str, np.ndarray], out: Optional[np.ndarray] = None
    ) -> np.ndarray:
        return self.field.coupling.total_current(self.blocks, state, out=out)

    def total_charge_density(self, state: Dict[str, np.ndarray]) -> np.ndarray:
        return self.field.coupling.total_charge_density(self.blocks, state)

    def charge_density(self, state: Dict[str, np.ndarray]) -> np.ndarray:
        return self.field.coupling.charge_density(self.blocks, state)

    def electric_field(self, state: Dict[str, np.ndarray]) -> np.ndarray:
        return self.field.em_for_species(self, state)

    def effective_em(self, em: np.ndarray) -> np.ndarray:
        """The field the particles feel: ``em`` plus the external drive at
        the current step time (``em`` itself when there is no drive).
        Maxwell field block only — functional closures derive their field
        from the state via :meth:`electric_field` instead."""
        if self.field.kind != "maxwell":
            raise RuntimeError(
                "effective_em requires a Maxwell field block; use "
                "electric_field(state) for functional closures"
            )
        return self.field.em_for_species(self, {"em": em})

    # ------------------------------------------------------------------ #
    # diagnostics
    # ------------------------------------------------------------------ #
    def field_energy(self) -> float:
        return self.field.energy(self)

    def particle_energy(self, name: str) -> float:
        sp = next(s for s in self.species if s.name == name)
        return self.moments[name].particle_energy(self.f[name], sp.mass)

    def total_energy(self) -> float:
        return self.field_energy() + sum(
            self.particle_energy(sp.name) for sp in self.species
        )

    def particle_number(self, name: str) -> float:
        return self.moments[name].number(self.f[name])

    def jdote(self) -> float:
        """Instantaneous field–particle energy exchange ``int J.E dx``
        (Maxwell field block only)."""
        if self.field.kind != "maxwell":
            raise RuntimeError("J.E requires a Maxwell field block")
        current = self.total_current(self.state())
        jac = float(np.prod([0.5 * dx for dx in self.conf_grid.dx]))
        return float(np.sum(current * self.em[..., 0:3, :]) * jac)

    def energies(self) -> Dict[str, float]:
        """Protocol diagnostic: field, per-species particle, and total energy
        (each piece computed once)."""
        field = self.field_energy()
        out = {"field": field}
        total = field
        for sp in self.species:
            e = self.particle_energy(sp.name)
            out[f"particle/{sp.name}"] = e
            total += e
        out["total"] = total
        return out

    def observables(self) -> Dict[str, float]:
        """Protocol diagnostic: scalar observables (particle counts)."""
        return {
            f"particle_number/{sp.name}": self.particle_number(sp.name)
            for sp in self.species
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        names = ",".join(sp.name for sp in self.species)
        return (
            f"System({self.name!r}, species=[{names}], field={self.field.kind}, "
            f"p={self.poly_order}, scheme={self.scheme}, t={self.time:.6g})"
        )
