"""The ``Model`` protocol: the exact surface the runtime may touch.

Every consumer of a built simulation — :class:`~repro.runtime.driver.Driver`,
:class:`~repro.dist.sharded.ShardedApp`, the SSP-RK steppers, checkpoint
save/restore, and the diagnostics recorders — programs against this
protocol and nothing else.  Anything that implements it (the composable
:class:`~repro.systems.system.System`, the deprecated app shims, a sharded
wrapper) can be driven, checkpointed, resumed, and diagnosed without a
single ``isinstance`` check.

The surface is deliberately small:

========================  =================================================
member                    contract
========================  =================================================
``state()``               dict of named arrays (the full evolved state);
                          the *same* array objects the model steps, so
                          in-place mutation of the dict's arrays is visible
``set_state(state)``      adopt checkpoint arrays (shapes must match)
``rhs(state, out=None)``  semi-discrete RHS; ``out`` is an optional donated
                          state-shaped buffer dict filled in place
``suggested_dt()``        CFL-stable step from the current state
``step(dt=None)``         advance once in place, return the dt taken
``time``                  current simulation time (settable)
``step_count``            steps taken so far (settable)
``energies()``            dict: ``field``, ``particle/<name>``, ``total``
``observables()``         dict of scalar diagnostics
                          (``particle_number/<name>`` ...)
========================  =================================================

One optional extra sits outside the protocol: ``jdote()`` (the J.E
field–particle exchange diagnostic).  A registered system advertises it
via ``SystemKind.supports_jdote``; ``SimulationSpec`` validation rejects
``diagnostics.record_jdote`` for systems that do not, so the recorder
never calls it blind.

:func:`protocol_signature` hashes this table so the public-API snapshot
test fails loudly whenever the surface drifts.
"""

from __future__ import annotations

import hashlib
import time as _time
from typing import Dict, Optional, Protocol, runtime_checkable

import numpy as np

__all__ = [
    "Model",
    "run_loop",
    "cfl_dt",
    "protocol_signature",
    "PROTOCOL_MEMBERS",
]

State = Dict[str, np.ndarray]


@runtime_checkable
class Model(Protocol):
    """Structural protocol for a steppable kinetic simulation."""

    time: float
    step_count: int

    def state(self) -> State: ...

    def set_state(self, state: State) -> None: ...

    def rhs(self, state: State, out: Optional[State] = None) -> State: ...

    def suggested_dt(self) -> float: ...

    def step(self, dt: Optional[float] = None) -> float: ...

    def energies(self) -> Dict[str, float]: ...

    def observables(self) -> Dict[str, float]: ...


#: (member, rendered contract) pairs — the protocol in canonical form.
PROTOCOL_MEMBERS = (
    ("time", "float"),
    ("step_count", "int"),
    ("state", "() -> Dict[str, ndarray]"),
    ("set_state", "(state) -> None"),
    ("rhs", "(state, out=None) -> state"),
    ("suggested_dt", "() -> float"),
    ("step", "(dt=None) -> float"),
    ("energies", "() -> Dict[str, float]"),
    ("observables", "() -> Dict[str, float]"),
)


def protocol_signature() -> str:
    """Stable hash of the :class:`Model` surface (member names + contracts).

    Changing the protocol — adding, removing, or re-typing a member —
    changes this hash; the API snapshot test pins it so redesigns of the
    runtime seam are always explicit, reviewed events.
    """
    text = ";".join(f"{name}{sig}" for name, sig in PROTOCOL_MEMBERS)
    return hashlib.sha256(text.encode()).hexdigest()


# --------------------------------------------------------------------- #
# shared drive helpers (deduplicated from the old per-app copies)
# --------------------------------------------------------------------- #
def cfl_dt(cfl: float, frequency: float) -> float:
    """Stable time step from the maximum characteristic frequency."""
    if frequency <= 0.0:
        raise RuntimeError("cannot determine a stable time step")
    return cfl / frequency


def run_loop(model, t_end: float, diagnostics=None, max_steps: int = 10**9):
    """Advance ``model`` to ``t_end`` with an optional per-step callback.

    The single implementation of the advance/diagnose loop every model
    shares (both apps used to carry verbatim copies).  Returns a summary
    with wall-clock timing (the quantity Table I compares between the
    modal and nodal schemes).
    """
    start = _time.perf_counter()
    steps = 0
    if diagnostics is not None:
        diagnostics(model)
    while model.time < t_end - 1e-12 and steps < max_steps:
        dt = min(model.suggested_dt(), t_end - model.time)
        model.step(dt)
        steps += 1
        if diagnostics is not None:
            diagnostics(model)
    wall = _time.perf_counter() - start
    return {
        "steps": steps,
        "wall_time": wall,
        "wall_per_step": wall / max(steps, 1),
        "time": model.time,
    }
