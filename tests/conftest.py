"""Shared fixtures: small grids and cached kernel bundles.

Kernel generation is exact symbolic work and is memoized process-wide via
:mod:`repro.kernels.registry`; the fixtures below standardize the small
discretizations used across the suite so every test file hits the cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.grid import Grid, PhaseGrid


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "shard: process-sharded execution tests (CI runs them as a "
        "separate matrix leg exercising --backend process:2)",
    )
    config.addinivalue_line(
        "markers",
        "layout: cell-major state-layout invariants (copy-free hot path, "
        "legacy checkpoint compatibility, contiguous halo slabs)",
    )
    config.addinivalue_line(
        "markers",
        "systems: Model-protocol conformance over every registered system "
        "(state round-trip, rhs donation, checkpoint/resume, serial == "
        "process:2) plus the public-API snapshot and deprecation shims",
    )
    config.addinivalue_line(
        "markers",
        "serve: repro.serve job-service tests (content-hash dedup, lease "
        "crash recovery, HTTP streaming, SIGTERM drain); CI runs them as "
        "their own matrix leg",
    )


@pytest.fixture(scope="session", autouse=True)
def _isolated_plan_cache(tmp_path_factory):
    """Point the compiled-plan disk cache at a session tmp dir so the suite
    never reads from or writes to the user's ``~/.cache/repro``."""
    import os

    prev = os.environ.get("REPRO_CACHE_DIR")
    path = tmp_path_factory.mktemp("plan-cache")
    os.environ["REPRO_CACHE_DIR"] = str(path)
    yield path
    if prev is None:
        os.environ.pop("REPRO_CACHE_DIR", None)
    else:
        os.environ["REPRO_CACHE_DIR"] = prev


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(20200919)


@pytest.fixture
def pg_1x1v():
    return PhaseGrid(Grid([0.0], [1.0], [4]), Grid([-2.0], [2.0], [4]))


@pytest.fixture
def pg_1x2v():
    return PhaseGrid(Grid([0.0], [1.0], [3]), Grid([-2.0, -2.0], [2.0, 2.0], [4, 4]))


@pytest.fixture
def pg_2x2v():
    return PhaseGrid(
        Grid([0.0, 0.0], [1.0, 1.0], [3, 3]), Grid([-2.0, -2.0], [2.0, 2.0], [4, 4])
    )


def random_em(rng, npc, conf_cells, amplitude=1.0):
    return amplitude * rng.standard_normal((8, npc) + tuple(conf_cells))


def random_f(rng, np_, cells, amplitude=1.0):
    return amplitude * rng.standard_normal((np_,) + tuple(cells))
