"""Properties specific to the quadrature (nodal-style) baseline solver."""

import numpy as np
import pytest

from repro.grid import Grid, PhaseGrid
from repro.kernels.flops import alias_free_quadrature_points_1d
from repro.vlasov import VlasovQuadratureSolver


@pytest.fixture(scope="module")
def setup(rng):
    pg = PhaseGrid(Grid([0.0], [1.0], [3]), Grid([-2.0], [2.0], [4]))
    qs = VlasovQuadratureSolver(pg, 2, "serendipity")
    f = rng.standard_normal(pg.conf.cells + (qs.num_basis,) + pg.vel.cells)
    em = rng.standard_normal(pg.conf.cells + (8, qs.num_conf_basis))
    return pg, qs, f, em


def test_default_quadrature_is_alias_free(setup):
    _, qs, _, _ = setup
    assert qs.nq1 == alias_free_quadrature_points_1d(2)


def test_over_integration_changes_nothing(setup, rng):
    """Once the quadrature is exact, adding points cannot change the RHS —
    the discrete analogue of 'all integrals computed exactly'."""
    pg, qs, f, em = setup
    qs_over = VlasovQuadratureSolver(pg, 2, "serendipity", quad_points_1d=qs.nq1 + 2)
    r1 = qs.rhs(f, em)
    r2 = qs_over.rhs(f, em)
    scale = max(float(np.max(np.abs(r1))), 1.0)
    assert np.max(np.abs(r1 - r2)) / scale < 1e-13


def test_linearity(setup, rng):
    pg, qs, f, em = setup
    g = rng.standard_normal(f.shape)
    lhs = qs.rhs(1.5 * f + 0.25 * g, em)
    rhs = 1.5 * qs.rhs(f, em) + 0.25 * qs.rhs(g, em)
    assert np.allclose(lhs, rhs, rtol=1e-12, atol=1e-12)


def test_quadrature_cost_grows_with_points(setup):
    """The O(N_q N_p) structure: the dense interpolation/projection work
    grows directly with the quadrature size (the exponential-in-dimension
    cost the modal scheme eliminates).  Asserted structurally — the wall
    clock comparison lives in the Table I benchmark."""
    pg, qs, f, em = setup
    qs_big = VlasovQuadratureSolver(pg, 2, "serendipity", quad_points_1d=qs.nq1 + 3)
    # volume interpolation matrices: (Np, Nq) with Nq = nq1^pdim
    assert qs.vol_interp.shape == (qs.num_basis, qs.nq1 ** pg.pdim)
    assert qs_big.vol_interp.shape[1] == (qs.nq1 + 3) ** pg.pdim
    flops_small = qs.num_basis * qs.vol_interp.shape[1]
    flops_big = qs_big.num_basis * qs_big.vol_interp.shape[1]
    assert flops_big > 2 * flops_small


def test_charge_mass_enter_acceleration(setup, rng):
    pg, _, f, em = setup
    a = VlasovQuadratureSolver(pg, 2, "serendipity", charge=-1.0, mass=1.0)
    b = VlasovQuadratureSolver(pg, 2, "serendipity", charge=-2.0, mass=1.0)
    em_only = em.copy()
    # isolate acceleration: difference of RHS is purely the q/m part
    diff = b.rhs(f, em_only) - a.rhs(f, em_only)
    # doubling charge doubles the acceleration terms: diff == a_accel
    c = VlasovQuadratureSolver(pg, 2, "serendipity", charge=-3.0, mass=1.0)
    diff2 = c.rhs(f, em_only) - a.rhs(f, em_only)
    assert np.allclose(2 * diff, diff2, rtol=1e-10, atol=1e-12)


def test_max_frequency_positive(setup):
    _, qs, _, em = setup
    assert qs.max_frequency(em) > 0
