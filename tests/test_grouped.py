"""The grouped (batched-BLAS) kernel path must match the sparse TermSet path
to roundoff — it evaluates the same generated coefficients, reassociated."""

import numpy as np
import pytest

from repro.engine.layout import phase_to_cell_major, phase_to_mode_major
from repro.grid import Grid, PhaseGrid
from repro.kernels import get_vlasov_kernels
from repro.kernels.grouped import GroupedOperator
from repro.kernels.termset import TermSet


@pytest.fixture(scope="module")
def setup(rng):
    pg = PhaseGrid(Grid([0.0], [1.0], [3]), Grid([-2.0, -2.0], [2.0, 2.0], [4, 4]))
    bundle = get_vlasov_kernels(1, 2, 1, "serendipity")
    aux = pg.base_aux()
    aux["qm"] = -1.0
    for comp in range(3):
        for k in range(bundle.cfg_basis.num_basis):
            aux[f"E{comp}_{k}"] = pg.conf_coefficient_array(
                rng.standard_normal(pg.conf.cells)
            )
            aux[f"B{comp}_{k}"] = pg.conf_coefficient_array(
                rng.standard_normal(pg.conf.cells)
            )
    f = rng.standard_normal((bundle.num_basis,) + pg.cells)
    return pg, bundle, aux, f


@pytest.mark.parametrize("which", ["vol0", "vol1", "surfLL", "surfRL"])
def test_grouped_matches_sparse(setup, which):
    pg, bundle, aux, f = setup
    ts = {
        "vol0": bundle.vol_accel[0],
        "vol1": bundle.vol_accel[1],
        "surfLL": bundle.surf_accel[0][("L", "L")],
        "surfRL": bundle.surf_accel[1][("R", "L")],
    }[which]
    out_sparse = np.zeros_like(f)
    ts.apply(f, aux, out_sparse)
    op = GroupedOperator(ts, pg.cdim, pg.vdim)
    out_grouped = np.zeros(phase_to_cell_major(f, pg.cdim).shape)
    op.apply(phase_to_cell_major(f, pg.cdim), aux, out_grouped)
    scale = max(np.max(np.abs(out_sparse)), 1.0)
    assert np.max(
        np.abs(out_sparse - phase_to_mode_major(out_grouped, pg.cdim))
    ) / scale < 1e-13


def test_grouped_accumulates(setup):
    pg, bundle, aux, f = setup
    op = GroupedOperator(bundle.vol_accel[0], pg.cdim, pg.vdim)
    f_cm = phase_to_cell_major(f, pg.cdim)
    base = np.ones_like(f_cm)
    out = base.copy()
    op.apply(f_cm, aux, out)
    ref = np.zeros_like(f_cm)
    op.apply(f_cm, aux, ref)
    assert np.allclose(out - base, ref, atol=1e-14)


def test_grouped_on_sliced_cells(setup):
    """Surface applications pass face subsets; the grouped plan is shape
    independent and must broadcast the sliced aux correctly."""
    pg, bundle, aux, f = setup
    ts = bundle.surf_accel[0][("L", "R")]
    op = GroupedOperator(ts, pg.cdim, pg.vdim)
    f_sub = np.ascontiguousarray(f[:, :, 1:, :])
    out_a = np.zeros_like(f_sub)
    ts.apply(f_sub, aux, out_a)
    f_sub_cm = phase_to_cell_major(f_sub, pg.cdim)
    out_b = np.zeros_like(f_sub_cm)
    op.apply(f_sub_cm, aux, out_b)
    assert np.allclose(
        out_a, phase_to_mode_major(out_b, pg.cdim), rtol=1e-13, atol=1e-13
    )


def test_grouped_fallback_for_mixed_symbols():
    """A symbol varying on both config and velocity axes must fall back to
    the sparse path (still correct)."""
    ts = TermSet(2, 2, {("mix",): [(0, 1, 2.0)], (): [(1, 0, 1.0)]})
    op = GroupedOperator(ts, cdim=1, vdim=1)
    rng = np.random.default_rng(0)
    f = rng.standard_normal((2, 3, 4))
    aux = {"mix": rng.standard_normal((3, 4))}
    out_a = np.zeros_like(f)
    ts.apply(f, aux, out_a)
    out_b = np.zeros((3, 2, 4))
    op.apply(phase_to_cell_major(f, 1), aux, out_b)
    assert np.allclose(out_a, phase_to_mode_major(out_b, 1), atol=1e-14)


def test_grouped_empty_termset():
    ts = TermSet(3, 3, {})
    op = GroupedOperator(ts, 1, 1)
    f = np.ones((2, 3, 2))  # cell-major (cfg, nb, vel)
    out = np.zeros_like(f)
    op.apply(f, {}, out)
    assert np.all(out == 0)
