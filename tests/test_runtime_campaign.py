"""Campaign runner: scan expansion, manifest resume/skip, worker pool."""

import json

import pytest

from repro.runtime import CampaignSpec, SpecError, expand_points, run_campaign
from repro.runtime.campaign import load_manifest

TINY = {"nx": 4, "nv": 8, "steps": 1, "t_end": 100.0}


def _campaign(**kwargs):
    data = {
        "name": "ts_scan",
        "scenario": "two_stream",
        "base": dict(TINY),
        "scan": {"drift": [1.5, 2.0], "vt": [0.4, 0.5]},
    }
    data.update(kwargs)
    return CampaignSpec.from_dict(data)


def test_expand_points_grid_product():
    points = expand_points(_campaign())
    assert len(points) == 4
    assert {(p["drift"], p["vt"]) for p in points} == {
        (1.5, 0.4), (1.5, 0.5), (2.0, 0.4), (2.0, 0.5),
    }
    assert all(p["nx"] == 4 for p in points)  # base merged into every point


def test_expand_explicit_points_override_base():
    camp = _campaign(scan={}, points=[{"drift": 1.0}, {"nx": 6}])
    points = expand_points(camp)
    assert len(points) == 2
    assert points[0]["drift"] == 1.0 and points[0]["nx"] == 4
    assert points[1]["nx"] == 6


def test_campaign_spec_validation_errors():
    with pytest.raises(SpecError) as err:
        CampaignSpec.from_dict({"name": "x"})
    assert err.value.field == "campaign.scenario"
    with pytest.raises(SpecError) as err:
        CampaignSpec.from_dict({"scenario": "two_stream", "scan": {"drift": []}})
    assert err.value.field == "campaign.scan.drift"
    with pytest.raises(SpecError) as err:
        CampaignSpec.from_dict({"scenario": "two_stream", "workers": 0})
    assert err.value.field == "campaign.workers"


def test_campaign_runs_and_rerun_skips_completed(tmp_path):
    camp = _campaign()
    outdir = tmp_path / "camp"

    first = run_campaign(camp, outdir)
    assert first["summary"] == {"total": 4, "ran": 4, "skipped": 0, "failed": 0}
    for pid, entry in first["points"].items():
        assert entry["status"] == "done"
        assert entry["result"]["steps"] == 1
        assert (outdir / pid / "result.json").exists()
        assert (outdir / pid / "checkpoint.npz").exists()

    # rerun: the manifest marks every point done -> all skipped
    second = run_campaign(camp, outdir)
    assert second["summary"] == {"total": 4, "ran": 0, "skipped": 4, "failed": 0}


def test_changed_overrides_invalidate_manifest_entries(tmp_path):
    outdir = tmp_path / "camp"
    run_campaign(_campaign(), outdir)
    changed = _campaign(scan={"drift": [1.5, 2.5], "vt": [0.4, 0.5]})
    manifest = run_campaign(changed, outdir)
    # the two drift=1.5 points are unchanged, the drift=2.5 pair is new work
    assert manifest["summary"]["skipped"] == 2
    assert manifest["summary"]["ran"] == 2


def test_interrupted_campaign_resumes_from_manifest(tmp_path):
    """Simulate a kill after two points by truncating the manifest."""
    camp = _campaign()
    outdir = tmp_path / "camp"
    run_campaign(camp, outdir)
    manifest = load_manifest(outdir)
    for pid in list(manifest["points"])[2:]:
        manifest["points"][pid]["status"] = "pending"
    (outdir / "manifest.json").write_text(json.dumps(manifest))

    resumed = run_campaign(camp, outdir)
    assert resumed["summary"]["skipped"] == 2
    assert resumed["summary"]["ran"] == 2
    assert all(e["status"] == "done" for e in resumed["points"].values())


def test_failed_point_is_recorded_not_fatal(tmp_path):
    camp = _campaign(points=[dict(TINY), {**TINY, "poly_order": 0}])
    manifest = run_campaign(camp, tmp_path / "camp")
    statuses = [e["status"] for e in manifest["points"].values()]
    assert statuses == ["done", "failed"]
    assert "poly_order" in manifest["points"]["p0001"]["error"]
    assert manifest["summary"]["failed"] == 1


def test_campaign_with_process_pool(tmp_path):
    camp = _campaign(scan={"drift": [1.5, 2.0]}, workers=2)
    manifest = run_campaign(camp, tmp_path / "camp")
    assert manifest["summary"] == {"total": 2, "ran": 2, "skipped": 0, "failed": 0}
    rerun = run_campaign(camp, tmp_path / "camp")
    assert rerun["summary"]["skipped"] == 2
