"""Diagnostics: growth fits, slices, field-particle correlation, flops."""

import numpy as np
import pytest

from repro.basis.modal import ModalBasis
from repro.diagnostics import EnergyHistory, evaluate_points, fit_exponential_growth, plane_slice
from repro.diagnostics.fieldparticle import FieldParticleCorrelator
from repro.grid import Grid, PhaseGrid
from repro.kernels import compare_costs, get_vlasov_kernels
from repro.kernels.flops import alias_free_quadrature_points_1d
from repro.projection import project_phase_function


def test_growth_fit_recovers_rate():
    t = np.linspace(0, 10, 200)
    amp = 3.0 * np.exp(0.37 * t)
    fit = fit_exponential_growth(t, amp)
    assert fit.rate == pytest.approx(0.37, rel=1e-6)
    assert np.exp(fit.intercept) == pytest.approx(3.0, rel=1e-6)
    assert fit.residual < 1e-10


def test_growth_fit_window_and_errors():
    t = np.linspace(0, 10, 50)
    amp = np.exp(t) * (t > 5)  # zeros outside window are masked
    fit = fit_exponential_growth(t, amp, t_min=6.0, t_max=9.0)
    assert fit.rate == pytest.approx(1.0, rel=1e-6)
    with pytest.raises(ValueError):
        fit_exponential_growth(t[:2], amp[:2])


def test_evaluate_points_matches_function():
    pg = PhaseGrid(Grid([0.0], [1.0], [8]), Grid([-2.0], [2.0], [8]))
    basis = ModalBasis(2, 2, "serendipity")

    def func(x, v):
        return np.sin(2 * np.pi * x) * np.exp(-v ** 2)

    f = project_phase_function(func, pg, basis)
    pts = np.array([[0.3, 0.5], [0.77, -1.2], [0.01, 1.9]])
    vals = evaluate_points(f, pg, basis, pts)
    expected = func(pts[:, 0], pts[:, 1])
    assert np.allclose(vals, expected, atol=5e-3)


def test_plane_slice_structure():
    pg = PhaseGrid(Grid([0.0], [1.0], [4]), Grid([-2.0], [2.0], [4]))
    basis = ModalBasis(2, 1, "serendipity")
    f = project_phase_function(lambda x, v: 1.0 + 0 * x, pg, basis)
    sl = plane_slice(f, pg, basis, axes=(0, 1), fixed={}, resolution=16)
    assert sl["values"].shape == (16, 16)
    assert np.allclose(sl["values"], 1.0, atol=1e-10)


def test_field_particle_correlator_zero_field():
    pg = PhaseGrid(Grid([0.0], [1.0], [4]), Grid([-4.0], [4.0], [16]))
    basis = ModalBasis(2, 2, "serendipity")
    f = project_phase_function(
        lambda x, v: np.exp(-v ** 2 / 2) / np.sqrt(2 * np.pi), pg, basis
    )
    corr = FieldParticleCorrelator(pg, basis, charge=-1.0, x0=0.5,
                                   velocities=np.linspace(-3, 3, 7))
    corr.record(f, e_at_x0=0.0, t=0.0)
    out = corr.correlation()
    assert np.allclose(out["C"], 0.0)


def test_field_particle_correlator_sign_structure():
    """For a Maxwellian, -q v^2/2 df/dv E is odd-ish in v with sign set by qE."""
    pg = PhaseGrid(Grid([0.0], [1.0], [4]), Grid([-4.0], [4.0], [32]))
    basis = ModalBasis(2, 2, "serendipity")
    f = project_phase_function(
        lambda x, v: np.exp(-v ** 2 / 2) / np.sqrt(2 * np.pi), pg, basis
    )
    v = np.array([-1.0, 1.0])
    corr = FieldParticleCorrelator(pg, basis, charge=-1.0, x0=0.5, velocities=v)
    corr.record(f, e_at_x0=1.0, t=0.0)
    c = corr.correlation()["C"]
    # df/dv = -v f_M: C = -q v^2/2 (-v f) E = q E v^3 f / 2 -> odd in v
    assert c[0] * c[1] < 0


def test_energy_history_arrays():
    """EnergyHistory reads any Model via energies() — no app class needed."""
    h = EnergyHistory()
    class FakeModel:
        time = 0.0
        def energies(self):
            return {"field": 1.0, "particle/elc": 0.0, "total": 1.0}
    h(FakeModel())
    arrs = h.as_arrays()
    assert arrs["total"][0] == 1.0
    assert list(h.particle_energy) == ["elc"]
    assert h.relative_drift() == 0.0


def test_cost_comparison_grows_with_dimension():
    """The modal/nodal multiplication ratio improves with dimensionality —
    the core of the paper's Sec. III argument (N_q grows exponentially with
    dimension while the modal nonzeros do not)."""
    d2 = compare_costs(get_vlasov_kernels(1, 1, 2, "serendipity"))
    d3 = compare_costs(get_vlasov_kernels(1, 2, 2, "serendipity"))
    d4 = compare_costs(get_vlasov_kernels(1, 3, 2, "serendipity"))
    assert d2.speedup < d3.speedup < d4.speedup
    assert d4.speedup > 1.5
    # volume kernels alone (the Fig. 1 comparison) show a bigger gap
    assert d4.nodal["volume_total"] > 3 * d4.modal["volume_total"]


def test_alias_free_quadrature_points():
    assert alias_free_quadrature_points_1d(1) == 3
    assert alias_free_quadrature_points_1d(2) == 4
    assert alias_free_quadrature_points_1d(3) == 6
