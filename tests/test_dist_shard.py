"""Process-sharded execution: bitwise serial equality, halos, checkpoints.

Every test here runs real forked worker processes (the ``process:N``
backend), so the module is marked ``shard`` — CI runs it both inside the
full suite and as a dedicated matrix leg.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.dist import BlockGrid, ShardedApp, ShardPlan, fill_padded
from repro.dist.plan import HaloStats
from repro.grid import Grid
from repro.io.checkpoint import load_checkpoint
from repro.runtime import Driver, SpecError, build
from repro.runtime.driver import build_app

pytestmark = pytest.mark.shard


def run_serial(spec):
    app = build_app(spec)
    for _ in range(spec.steps):
        app.step()
    return app, {k: np.array(v) for k, v in app.state().items()}


def run_sharded(spec, shards):
    app = build_app(spec.with_overrides({"backend": f"process:{shards}"}))
    assert isinstance(app, ShardedApp)
    try:
        for _ in range(spec.steps):
            app.step()
        return {k: np.array(v) for k, v in app.state().items()}, app.halo_stats
    finally:
        app.close()


SCENARIOS = [
    # (name, overrides, shard counts) — grids small enough for CI, spanning
    # 1X/2X conf spaces, Maxwell/Poisson, multi-species, collisions, drive
    ("landau_damping", {"nx": 8, "nv": 8, "poly_order": 1, "steps": 3}, (2, 4)),
    ("weibel_2x2v", {"nx": 4, "nv": 6, "poly_order": 1, "steps": 3}, (2, 4)),
    ("two_stream", {"nx": 9, "nv": 8, "poly_order": 1, "steps": 3}, (3,)),
    ("ion_acoustic", {"nx": 8, "nv": 10, "poly_order": 1, "steps": 2}, (2,)),
    ("driven_landau", {"nx": 8, "nv": 10, "poly_order": 1, "steps": 2}, (2,)),
    ("collisional_relaxation", {"nx": 6, "nv": 10, "poly_order": 1, "steps": 2}, (2,)),
    ("free_streaming", {"nx": 8, "nv": 6, "poly_order": 1, "steps": 3}, (2,)),
]


@pytest.mark.parametrize(
    "name,overrides,shard_counts",
    SCENARIOS,
    ids=[s[0] for s in SCENARIOS],
)
def test_sharded_bitwise_equals_serial(name, overrides, shard_counts):
    spec = build(name, **overrides)
    _, serial_state = run_serial(spec)
    for shards in shard_counts:
        sharded_state, halo = run_sharded(spec, shards)
        assert set(sharded_state) == set(serial_state)
        for key in serial_state:
            assert np.array_equal(serial_state[key], sharded_state[key]), (
                f"{name} process:{shards} diverged in {key}"
            )
        assert halo["messages"] > 0  # real exchanges happened


def test_measured_halo_matches_fig3_model():
    spec = build("weibel_2x2v", nx=6, nv=8, poly_order=1, steps=2)
    _, _ = run_serial(spec)
    state, halo = run_sharded(spec, 4)
    plan = ShardPlan.create(spec.conf_grid.cells, 4)
    from repro.basis.multiindex import num_basis

    npb = num_basis(4, 1, "serendipity")
    model_per_exchange = plan.model_halo_doubles(npb, (8, 8))
    stages = 3  # ssp-rk3
    assert halo["f"]["doubles"] == model_per_exchange * stages * spec.steps
    # per-shard stats sum to the total
    assert sum(e["f"]["doubles"] for e in halo["per_shard"]) == halo["f"]["doubles"]


@pytest.mark.parametrize(
    "scenario,overrides",
    [
        ("weibel_2x2v", {"nx": 4, "nv": 6, "poly_order": 1, "steps": 2}),
        # static (evolve=False) field: exercises the set_state -> worker
        # re-read path for the never-stepped EM state
        ("free_streaming", {"nx": 8, "nv": 6, "poly_order": 1, "steps": 2}),
    ],
)
def test_checkpoint_cross_resume_bitwise(tmp_path, scenario, overrides):
    """process:N -> serial resume and serial -> process:N resume both land
    bit-identically on the all-serial reference."""
    short = build(scenario, **overrides)
    full = short.with_overrides({"steps": 4})

    ref_drv = Driver(full, outdir=tmp_path / "ref")
    ref_drv.run()
    ref, _ = load_checkpoint(tmp_path / "ref" / "checkpoint.npz")

    # sharded first half, serial second half
    d1 = Driver(short.with_overrides({"backend": "process:2"}), outdir=tmp_path / "a")
    d1.run()
    d1.close()
    d2 = Driver.from_checkpoint(
        tmp_path / "a" / "checkpoint.npz",
        outdir=tmp_path / "a2",
        overrides={"steps": 4, "backend": "numpy"},
    )
    d2.run()
    got, _ = load_checkpoint(tmp_path / "a2" / "checkpoint.npz")
    for key in ref:
        assert np.array_equal(ref[key], got[key]), f"proc->serial diverged in {key}"

    # serial first half, sharded second half (backend travels in the spec)
    d3 = Driver(short, outdir=tmp_path / "b")
    d3.run()
    d4 = Driver.from_checkpoint(
        tmp_path / "b" / "checkpoint.npz",
        outdir=tmp_path / "b2",
        overrides={"steps": 4, "backend": "process:2"},
    )
    d4.run()
    d4.close()
    got, _ = load_checkpoint(tmp_path / "b2" / "checkpoint.npz")
    for key in ref:
        assert np.array_equal(ref[key], got[key]), f"serial->proc diverged in {key}"


def test_streamed_diagnostics_identical(tmp_path):
    spec = build("two_stream", nx=8, nv=8, poly_order=1, steps=3)
    ds = Driver(spec, outdir=tmp_path / "serial")
    rs = ds.run()
    dp = Driver(spec.with_overrides({"backend": "process:2"}), outdir=tmp_path / "proc")
    rp = dp.run()
    dp.close()
    assert (tmp_path / "serial" / "diagnostics.jsonl").read_text() == (
        tmp_path / "proc" / "diagnostics.jsonl"
    ).read_text()
    assert rs["field_energy"] == rp["field_energy"]
    assert rs["total_energy"] == rp["total_energy"]


def test_driver_usable_after_close(tmp_path):
    spec = build("free_streaming", nx=8, nv=6, poly_order=1, steps=2)
    drv = Driver(spec.with_overrides({"backend": "process:2"}), outdir=tmp_path)
    drv.run()
    drv.close()
    drv.close()  # idempotent
    assert drv.app.total_energy() > 0.0  # private state copies survive
    with pytest.raises(RuntimeError, match="closed"):
        drv.app.step()


def test_warm_cache_sharded_run_compiles_nothing(tmp_path):
    """Acceptance: a warm-cache process:2 run hydrates every plan from the
    shared disk cache (zero compiles in parent or any worker) while staying
    bit-identical to serial.  The cache is warmed by a cold sharded run —
    worker plans are keyed on the *shard* cell shapes, so a serial run
    cannot pre-warm them."""
    cache = tmp_path / "plans"
    spec = build(
        "weibel_2x2v", nx=4, nv=6, poly_order=1, steps=2,
        **{"plan_cache": str(cache)},
    )

    serial = Driver(spec)
    serial.run()

    cold = Driver(spec.with_overrides({"backend": "process:2"}))
    cold_result = cold.run()
    cold.close()
    assert cold_result["plans"]["cache_stores"] > 0  # populated the cache

    warm = Driver(spec.with_overrides({"backend": "process:2"}))
    warm_result = warm.run()
    warm.close()

    plans = warm_result["plans"]
    assert plans["compiled"] == 0, f"warm sharded run recompiled: {plans}"
    assert plans["hydrated"] > 0
    assert plans["cache_misses"] == 0

    for key, ref in serial.app.state().items():
        assert np.array_equal(ref, warm.app.state()[key]), key
        assert np.array_equal(ref, cold.app.state()[key]), key


# --------------------------------------------------------------------- #
# plan / block unit tests (no worker processes)
# --------------------------------------------------------------------- #
def test_shard_plan_partitions_cells():
    plan = ShardPlan.create((6, 6), 4)
    assert plan.decomp.dims == (2, 2)
    assert plan.pad == (1, 1)
    seen = np.zeros((6, 6), dtype=int)
    for shard in range(4):
        (xlo, xhi), (ylo, yhi) = plan.ranges(shard)
        seen[xlo:xhi, ylo:yhi] += 1
    assert np.all(seen == 1)
    assert plan.padded_cells(0) == (5, 5)


def test_shard_plan_rejects_single_cell_blocks():
    with pytest.raises(ValueError, match="fewer shards"):
        ShardPlan.create((2,), 2)
    # and too many shards for the grid at all
    with pytest.raises(ValueError):
        ShardPlan.create((4,), 8)


def test_shard_plan_model_matches_decomp_ghosts():
    plan = ShardPlan.create((8,), 2)
    # 1D, 2 blocks: each block receives 2 ghost cells per exchange
    assert plan.model_halo_doubles(num_basis=3, vel_cells=(4,)) == 2 * 2 * 4 * 3


def test_block_grid_geometry_is_bitwise_parent():
    parent = Grid([0.1, -0.3], [1.7, 2.9], [7, 5])
    block = BlockGrid(parent, [(2, 5), (1, 4)])
    assert block.cells == (3, 3)
    assert block.dx == parent.dx
    assert np.array_equal(block.centers(0), parent.centers(0)[2:5])
    assert np.array_equal(block.edges(1), parent.edges(1)[1:5])
    ext = block.extend(Grid([-1.0], [1.0], [4]))
    assert np.array_equal(ext.centers(2), Grid([-1.0], [1.0], [4]).centers(0))
    assert ext.dx[:2] == parent.dx


def test_fill_padded_periodic_ghosts():
    # cell-major layout: the configuration axis leads, trailing axes carry
    # the per-cell coefficient block — each ghost slab is contiguous
    stats = HaloStats()
    arr = np.arange(6 * 2, dtype=float).reshape(6, 2)
    pad = np.zeros((5, 2))
    fill_padded(arr, pad, ranges=[(0, 3)], pad=[1], conf_cells=(6,), stats=stats)
    assert np.array_equal(pad[1:4], arr[0:3])
    assert np.array_equal(pad[0], arr[5])   # periodic wrap low
    assert np.array_equal(pad[4], arr[3])   # high neighbour
    assert stats.messages == 2
    assert stats.doubles == 4
    assert stats.bytes == 32


def test_process_backend_rejects_quadrature_scheme():
    spec = build(
        "landau_damping", nx=8, nv=8, poly_order=1, steps=1,
        **{"scheme": "quadrature", "backend": "process:2"},
    )
    with pytest.raises(SpecError, match="modal"):
        build_app(spec)


def test_process_backend_spec_validation():
    spec = build("landau_damping", **{"backend": "process:2"})
    assert spec.backend == "process:2"
    with pytest.raises(SpecError):
        build("landau_damping", **{"backend": "process:zero"})
