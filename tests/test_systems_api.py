"""Public-API snapshot: the repro.systems surface cannot drift silently.

Pins ``repro.systems.__all__`` and the Model protocol signature hash.  A
failure here means the runtime seam changed — that is sometimes right, but
it must be an explicit, reviewed event: update the snapshot *and* the
README protocol table together.
"""

import pytest

import repro.systems as systems
from repro.systems import protocol_signature
from repro.systems.model import PROTOCOL_MEMBERS

pytestmark = pytest.mark.systems

EXPECTED_ALL = [
    "ChargeCoupling",
    "CurrentCoupling",
    "ExternalField",
    "FieldBlock",
    "FieldSpec",
    "KineticSpecies",
    "MaxwellBlock",
    "Model",
    "NullFieldBlock",
    "PoissonBlock",
    "Species",
    "System",
    "SystemKind",
    "build_external_field",
    "build_species_blocks",
    "build_system",
    "cfl_dt",
    "get_system_kind",
    "known_models",
    "list_system_kinds",
    "protocol_signature",
    "register_system",
    "run_loop",
]

EXPECTED_PROTOCOL_SIGNATURE = (
    "c0105b956c97bab6b82d654bef769c8a5d03d16d140d58d19f18fc704699f13e"
)


def test_public_surface_snapshot():
    assert sorted(systems.__all__) == EXPECTED_ALL
    for name in systems.__all__:
        assert hasattr(systems, name), name


def test_protocol_signature_snapshot():
    assert protocol_signature() == EXPECTED_PROTOCOL_SIGNATURE


def test_protocol_members_match_class():
    """Every declared member really exists on the Protocol class."""
    from repro.systems import Model

    for name, _ in PROTOCOL_MEMBERS:
        assert name in Model.__annotations__ or hasattr(Model, name), name


def test_model_names_are_registered_systems():
    assert set(systems.known_models()) >= {"maxwell", "poisson", "advection"}
