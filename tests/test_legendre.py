"""Exact Legendre machinery: coefficients, norms, orthogonality."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.basis.legendre import (
    eval_legendre_float,
    legendre_coefficients,
    legendre_norm_squared,
    legendre_value_at_one,
)
from repro.cas.integrate import legendre_product_integral_1d


def test_first_coefficients():
    assert legendre_coefficients(0) == (Fraction(1),)
    assert legendre_coefficients(1) == (Fraction(0), Fraction(1))
    assert legendre_coefficients(2) == (Fraction(-1, 2), Fraction(0), Fraction(3, 2))
    assert legendre_coefficients(3) == (
        Fraction(0),
        Fraction(-3, 2),
        Fraction(0),
        Fraction(5, 2),
    )


@given(st.integers(0, 12), st.integers(0, 12))
def test_orthogonality(m, n):
    val = legendre_product_integral_1d((m, n), (False, False), 0)
    if m == n:
        assert val == legendre_norm_squared(n)
    else:
        assert val == 0


@given(st.integers(0, 10))
def test_value_at_one(n):
    coeffs = legendre_coefficients(n)
    assert sum(coeffs) == 1  # P_n(1) = 1
    assert legendre_value_at_one(n, 1) == 1
    assert legendre_value_at_one(n, -1) == (-1) ** n


@given(st.integers(0, 10))
def test_float_eval_matches_coefficients(n):
    x = np.linspace(-1, 1, 7)
    direct = np.zeros_like(x)
    for k, c in enumerate(legendre_coefficients(n)):
        direct += float(c) * x ** k
    assert np.allclose(eval_legendre_float(n, x), direct, atol=1e-12)


@given(st.integers(0, 8), st.integers(0, 8), st.integers(0, 3))
def test_integral_with_monomial_matches_quadrature(m, n, r):
    exact = float(legendre_product_integral_1d((m, n), (False, False), r))
    x, w = np.polynomial.legendre.leggauss(12)
    quad = np.sum(w * x ** r * eval_legendre_float(m, x) * eval_legendre_float(n, x))
    assert np.isclose(exact, quad, atol=1e-10)


@given(st.integers(0, 8), st.integers(1, 8))
def test_derivative_integral_matches_quadrature(m, n):
    exact = float(legendre_product_integral_1d((m, n), (False, True), 0))
    x, w = np.polynomial.legendre.leggauss(12)
    dn = np.polynomial.legendre.legder(np.eye(n + 1)[n])
    dvals = np.polynomial.legendre.legval(x, dn)
    quad = np.sum(w * eval_legendre_float(m, x) * dvals)
    assert np.isclose(exact, quad, atol=1e-10)


def test_negative_degree_rejected():
    with pytest.raises(ValueError):
        legendre_coefficients(-1)
    with pytest.raises(ValueError):
        legendre_norm_squared(-2)
