"""Weak multiplication/division (alias-free primitive-moment algebra)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.basis.modal import ModalBasis, tensor_gauss_points
from repro.moments.weak_ops import triple_product_tensor, weak_divide, weak_multiply


@pytest.fixture(scope="module")
def basis_1d():
    return ModalBasis(1, 2, "serendipity")


def test_triple_product_symmetry(basis_1d):
    t = triple_product_tensor(basis_1d)
    assert np.allclose(t, np.swapaxes(t, 0, 1))
    assert np.allclose(t, np.swapaxes(t, 1, 2))  # fully symmetric integrand


def test_triple_product_vs_quadrature(basis_1d):
    t = triple_product_tensor(basis_1d)
    pts, wts = tensor_gauss_points(5, 1)
    v = basis_1d.eval_at(pts)
    ref = np.einsum("lq,mq,kq,q->lmk", v, v, v, wts)
    assert np.allclose(t, ref, atol=1e-12)


def test_multiply_by_constant_mode(basis_1d):
    """Multiplying by the constant field c*phi_0 scales coefficients by c/sqrt(2)^... exactly."""
    rng = np.random.default_rng(0)
    a = rng.standard_normal((5, basis_1d.num_basis))
    const = np.zeros_like(a)
    const[..., 0] = 3.0
    prod = weak_multiply(a, const, basis_1d)
    # phi_0 = 1/sqrt(2) in 1D, so the function value is 3/sqrt(2)
    assert np.allclose(prod, a * 3.0 * basis_1d.norm(0), atol=1e-12)


@settings(max_examples=20, deadline=None)
@given(st.floats(0.5, 3.0), st.floats(-0.3, 0.3))
def test_divide_inverts_multiply(den0, den1):
    """weak_divide(weak_multiply(u, den), den) == u when products stay in-span.

    Exact when den is the constant mode; near-exact (projection) otherwise —
    here we use a constant denominator for the exact property.
    """
    basis = ModalBasis(1, 2, "serendipity")
    rng = np.random.default_rng(7)
    u = rng.standard_normal((4, basis.num_basis))
    den = np.zeros_like(u)
    den[..., 0] = den0
    prod = weak_multiply(den, u, basis)
    back = weak_divide(prod, den, basis)
    assert np.allclose(back, u, rtol=1e-10, atol=1e-10)


def test_divide_recovers_known_ratio():
    """u = M1/M0 for linear-in-x fields, checked pointwise at cell centers."""
    basis = ModalBasis(1, 1, "serendipity")
    nx = 4
    m0 = np.zeros((nx, 2))
    m1 = np.zeros((nx, 2))
    m0[..., 0] = np.sqrt(2.0) * 2.0          # density = 2 everywhere
    m1[..., 0] = np.sqrt(2.0) * 2.0 * 0.5    # momentum = 1 -> u = 0.5
    u = weak_divide(m1, m0, basis)
    assert np.allclose(u[..., 0], np.sqrt(2.0) * 0.5, atol=1e-12)
    assert np.allclose(u[..., 1], 0.0, atol=1e-12)


def test_divide_singular_raises():
    basis = ModalBasis(1, 1, "serendipity")
    num = np.ones((3, 2))
    den = np.zeros((3, 2))
    with pytest.raises(np.linalg.LinAlgError):
        weak_divide(num, den, basis)


def test_multidim_weak_ops():
    basis = ModalBasis(2, 1, "serendipity")
    rng = np.random.default_rng(1)
    a = rng.standard_normal((3, 3, basis.num_basis))
    one = np.zeros_like(a)
    one[..., 0] = 1.0 / basis.norm(0)  # the function "1"
    assert np.allclose(weak_multiply(a, one, basis), a, atol=1e-12)
    assert np.allclose(weak_divide(a, one, basis), a, atol=1e-12)
