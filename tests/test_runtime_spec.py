"""Spec layer: dict/JSON round-trip, validation errors, overrides."""

import json

import pytest

from repro.runtime import (
    DiagnosticsSpec,
    ExternalFieldSpec,
    FieldInitSpec,
    GridSpec,
    SimulationSpec,
    SpecError,
    SpeciesSpec,
)


def _minimal_spec(**kwargs):
    base = dict(
        name="t",
        model="poisson",
        conf_grid=GridSpec((0.0,), (1.0,), (4,)),
        species=(
            SpeciesSpec(
                name="elc",
                charge=-1.0,
                mass=1.0,
                velocity_grid=GridSpec((-4.0,), (4.0,), (8,)),
            ),
        ),
    )
    base.update(kwargs)
    return SimulationSpec(**base)


def test_dict_roundtrip_identity():
    spec = _minimal_spec().validate()
    again = SimulationSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.to_dict() == spec.to_dict()


def test_json_roundtrip_identity():
    spec = _minimal_spec(
        model="maxwell",
        field=FieldInitSpec(initial={"Ex": {"kind": "sine", "amp": 0.1, "k": 1.0}}),
        diagnostics=DiagnosticsSpec(energy_interval=2, checkpoint_interval=5),
    ).validate()
    text = spec.to_json()
    json.loads(text)  # valid JSON
    assert SimulationSpec.from_json(text) == spec


@pytest.mark.parametrize(
    "mutate, field",
    [
        (dict(model="euler"), "spec.model"),
        (dict(cfl=-0.5), "spec.cfl"),
        (dict(poly_order=0), "spec.poly_order"),
        (dict(t_end=0.0), "spec.t_end"),
        (dict(steps=0), "spec.steps"),
        (dict(scheme="nodal"), "spec.scheme"),
        (dict(stepper="rk4"), "spec.stepper"),
        (dict(family="hermite"), "spec.family"),
        (dict(species=()), "spec.species"),
    ],
)
def test_validation_errors_name_the_field(mutate, field):
    with pytest.raises(SpecError) as err:
        _minimal_spec(**mutate).validate()
    assert err.value.field == field


def test_species_error_paths_carry_index():
    spec = _minimal_spec()
    data = spec.to_dict()
    data["species"][0]["mass"] = -1.0
    with pytest.raises(SpecError) as err:
        SimulationSpec.from_dict(data)
    assert err.value.field == "spec.species[0].mass"


def test_unknown_profile_kind_names_the_field():
    data = _minimal_spec().to_dict()
    data["species"][0]["initial"] = {"kind": "waterbag"}
    with pytest.raises(SpecError) as err:
        SimulationSpec.from_dict(data)
    assert err.value.field == "spec.species[0].initial.kind"


def test_unknown_profile_parameter_names_the_field():
    data = _minimal_spec().to_dict()
    data["species"][0]["initial"] = {"kind": "maxwellian", "vthermal": 2.0}
    with pytest.raises(SpecError) as err:
        SimulationSpec.from_dict(data)
    assert err.value.field == "spec.species[0].initial.vthermal"


def test_unknown_top_level_field_rejected():
    data = _minimal_spec().to_dict()
    data["colour"] = "red"
    with pytest.raises(SpecError) as err:
        SimulationSpec.from_dict(data)
    assert err.value.field == "spec.colour"


def test_poisson_model_constraints():
    with pytest.raises(SpecError) as err:
        _minimal_spec(scheme="quadrature").validate()
    assert err.value.field == "spec.scheme"
    with pytest.raises(SpecError) as err:
        _minimal_spec(field=FieldInitSpec()).validate()
    assert err.value.field == "spec.field"


def test_duplicate_species_names_rejected():
    sp = _minimal_spec().species[0]
    with pytest.raises(SpecError) as err:
        _minimal_spec(species=(sp, sp)).validate()
    assert err.value.field == "spec.species"


def test_overrides_dotted_paths():
    spec = _minimal_spec().validate()
    out = spec.with_overrides(
        {
            "cfl": 0.5,
            "steps": 7,
            "species.elc.charge": -2.0,
            "species.0.initial.vt": 0.25,
            "conf_grid.cells": [8],
        }
    )
    assert out.cfl == 0.5
    assert out.steps == 7
    assert out.species[0].charge == -2.0
    assert out.species[0].initial["vt"] == 0.25
    assert out.conf_grid.cells == (8,)
    # original untouched (frozen dataclasses)
    assert spec.cfl != 0.5


def test_overrides_unknown_path_errors():
    spec = _minimal_spec().validate()
    with pytest.raises(SpecError) as err:
        spec.with_overrides({"cflx": 0.5})
    assert "cflx" in str(err.value)
    with pytest.raises(SpecError):
        spec.with_overrides({"species.ion.charge": 1.0})  # no such species


def test_override_can_create_collisions():
    spec = _minimal_spec().validate()
    out = spec.with_overrides({"species.elc.collisions.kind": "bgk"})
    assert out.species[0].collisions.kind == "bgk"
    # setting a non-kind parameter first auto-creates with the default kind
    out = spec.with_overrides({"species.elc.collisions.nu": 0.5})
    assert out.species[0].collisions.kind == "lbo"
    assert out.species[0].collisions.nu == 0.5


def test_maxwell_model_rejects_poisson_only_knobs():
    base = _minimal_spec(
        model="maxwell",
        field=FieldInitSpec(),
    )
    with pytest.raises(SpecError) as err:
        base.validate().with_overrides({"epsilon0": 4.0})
    assert err.value.field == "spec.epsilon0"
    with pytest.raises(SpecError) as err:
        base.validate().with_overrides({"neutralize": False})
    assert err.value.field == "spec.neutralize"


def test_external_field_roundtrip_and_validation():
    ext = ExternalFieldSpec(
        components={"Ex": {"kind": "sine", "amp": 0.01, "k": 0.5}},
        omega=1.3,
        ramp=5.0,
    )
    spec = _minimal_spec(external_field=ext).validate()
    again = SimulationSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.external_field.omega == 1.3
    assert SimulationSpec.from_json(spec.to_json()) == spec

    with pytest.raises(SpecError) as err:
        _minimal_spec(
            external_field=ExternalFieldSpec(components={})
        ).validate()
    assert "components" in err.value.field
    with pytest.raises(SpecError) as err:
        _minimal_spec(
            external_field=ExternalFieldSpec(
                components={"phi": {"kind": "sine"}}
            )
        ).validate()
    assert "phi" in err.value.field
    with pytest.raises(SpecError):
        _minimal_spec(
            external_field=ExternalFieldSpec(
                components={"Ex": {"kind": "sine"}}, ramp=-1.0
            )
        ).validate()
    with pytest.raises(SpecError):
        ExternalFieldSpec.from_dict({"omgea": 1.0}, "x")  # typo'd field


def test_process_backend_validates_in_spec():
    spec = _minimal_spec(backend="process:2").validate()
    assert spec.backend == "process:2"
    with pytest.raises(SpecError) as err:
        _minimal_spec(backend="process:nope").validate()
    assert err.value.field == "spec.backend"


def test_plan_mode_and_cache_roundtrip_and_validation():
    spec = _minimal_spec(plan_mode="interpreted", plan_cache="off").validate()
    assert spec.plan_mode == "interpreted"
    again = SimulationSpec.from_dict(spec.to_dict())
    assert again == spec
    assert again.plan_cache == "off"
    # defaults survive the dict round-trip too
    base = _minimal_spec().validate()
    assert base.plan_mode == "fused" and base.plan_cache == "auto"
    assert SimulationSpec.from_dict(base.to_dict()) == base

    with pytest.raises(SpecError) as err:
        _minimal_spec(plan_mode="jit").validate()
    assert err.value.field == "spec.plan_mode"
    with pytest.raises(SpecError) as err:
        _minimal_spec(plan_cache=7).validate()
    assert err.value.field == "spec.plan_cache"


def test_plan_mode_override_dotted_path():
    spec = _minimal_spec().validate()
    out = spec.with_overrides({"plan_mode": "interpreted", "plan_cache": "off"})
    assert out.plan_mode == "interpreted"
    assert out.plan_cache == "off"
    assert spec.plan_mode == "fused"  # frozen original untouched


def test_grid_spec_validation():
    with pytest.raises(SpecError) as err:
        GridSpec((0.0,), (-1.0,), (4,)).validate("g")
    assert err.value.field.startswith("g.upper")
    with pytest.raises(SpecError):
        GridSpec.from_dict({"lower": [0.0], "upper": [1.0]}, "g")  # missing cells
    with pytest.raises(SpecError):
        GridSpec.from_dict({"lower": [0.0], "upper": [1.0], "cells": [2.5]}, "g")
