"""SSP-RK steppers: convergence orders and state plumbing."""

import numpy as np
import pytest

from repro.timestepping import ForwardEuler, SSPRK2, SSPRK3, get_stepper
from repro.timestepping.ssprk import state_axpy


def _integrate(stepper, lam, y0, t_end, n):
    dt = t_end / n
    state = {"y": np.array([y0])}

    def rhs(s):
        return {"y": lam * s["y"]}

    for _ in range(n):
        state = stepper.step(state, rhs, dt)
    return state["y"][0]


@pytest.mark.parametrize(
    "stepper,order",
    [(ForwardEuler(), 1), (SSPRK2(), 2), (SSPRK3(), 3)],
)
def test_convergence_order(stepper, order):
    lam, y0, t_end = -1.0, 1.0, 1.0
    exact = y0 * np.exp(lam * t_end)
    errs = []
    for n in (20, 40, 80):
        errs.append(abs(_integrate(stepper, lam, y0, t_end, n) - exact))
    rate1 = np.log2(errs[0] / errs[1])
    rate2 = np.log2(errs[1] / errs[2])
    assert rate1 == pytest.approx(order, abs=0.35)
    assert rate2 == pytest.approx(order, abs=0.35)


def test_multi_key_state():
    stepper = SSPRK3()
    state = {"a": np.ones(3), "b": np.full(2, 2.0)}

    def rhs(s):
        return {"a": -s["a"], "b": 0.5 * s["b"]}

    out = stepper.step(state, rhs, 0.1)
    assert out["a"] == pytest.approx(np.exp(-0.1) * np.ones(3), abs=1e-5)
    assert out["b"] == pytest.approx(np.exp(0.05) * np.full(2, 2.0), abs=1e-5)


def test_get_stepper():
    assert isinstance(get_stepper("ssp-rk3"), SSPRK3)
    assert isinstance(get_stepper("ssp-rk2"), SSPRK2)
    assert isinstance(get_stepper("forward-euler"), ForwardEuler)
    with pytest.raises(ValueError):
        get_stepper("rk4")


def test_state_axpy():
    a = {"x": np.ones(2)}
    b = {"x": np.full(2, 3.0)}
    out = state_axpy([(2.0, a), (-1.0, b)])
    assert np.allclose(out["x"], -1.0)


def test_ssp_property_linear_advection_no_overshoot():
    """SSP steppers keep forward-Euler monotonicity bounds for this toy."""
    stepper = SSPRK3()
    y = {"y": np.array([1.0])}

    def rhs(s):
        return {"y": -s["y"]}

    for _ in range(10):
        y = stepper.step(y, rhs, 0.5)
        assert 0.0 < y["y"][0] <= 1.0
