"""Additional I/O and decomposition edge cases."""

import numpy as np
import pytest

from repro.io import checkpoint_roundtrip_equal, load_checkpoint, save_checkpoint
from repro.parallel import ConfDecomposition, SimulatedComm, VelocitySlabs
from repro.parallel.decomp import block_ranges


def test_checkpoint_nested_keys(tmp_path):
    state = {"f/species/with/slashes": np.eye(3)}
    save_checkpoint(tmp_path / "x.npz", state, {"a": 1})
    back, meta = load_checkpoint(tmp_path / "x.npz")
    assert checkpoint_roundtrip_equal(state, back)
    assert meta == {"a": 1}


def test_checkpoint_roundtrip_equal_detects_mismatch():
    a = {"x": np.ones(3)}
    assert not checkpoint_roundtrip_equal(a, {"y": np.ones(3)})
    assert not checkpoint_roundtrip_equal(a, {"x": np.zeros(3)})
    assert checkpoint_roundtrip_equal(a, {"x": np.ones(3)})


def test_checkpoint_meta_types(tmp_path):
    meta = {"time": 1.5, "steps": 10, "name": "elc", "list": [1, 2]}
    save_checkpoint(tmp_path / "m.npz", {"a": np.zeros(2)}, meta)
    _, back = load_checkpoint(tmp_path / "m.npz")
    assert back == meta


def test_velocity_slabs_cover():
    slabs = VelocitySlabs(cells=(8, 12), axis=1, nslabs=5)
    ranges = slabs.ranges()
    assert ranges[0][0] == 0 and ranges[-1][1] == 12
    total = sum(hi - lo for lo, hi in ranges)
    assert total == 12
    assert slabs.slab_cells(0)[0] == 8


def test_decomposition_rejects_oversubscription():
    with pytest.raises(ValueError):
        ConfDecomposition.create((2, 2), 16)


def test_single_rank_has_no_ghosts():
    dec = ConfDecomposition.create((8, 8), 1)
    assert dec.ghost_cells(0) == 0


def test_comm_reset_stats():
    comm = SimulatedComm(2)
    comm.send(0, 1, np.ones(4))
    comm.recv(0, 1)
    comm.reset_stats()
    assert comm.stats.messages == 0 and comm.stats.doubles == 0


def test_block_ranges_balance_property():
    for n in (7, 16, 33):
        for b in (1, 2, 3, 5, 7):
            if b > n:
                continue
            sizes = [hi - lo for lo, hi in block_ranges(n, b)]
            assert sum(sizes) == n
            assert max(sizes) - min(sizes) <= 1
