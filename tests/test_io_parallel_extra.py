"""Additional I/O and decomposition edge cases."""

import numpy as np
import pytest

from repro.io import checkpoint_roundtrip_equal, load_checkpoint, save_checkpoint
from repro.parallel import ConfDecomposition, SimulatedComm, VelocitySlabs
from repro.parallel.decomp import block_ranges


def test_checkpoint_nested_keys(tmp_path):
    state = {"f/species/with/slashes": np.eye(3)}
    save_checkpoint(tmp_path / "x.npz", state, {"a": 1})
    back, meta = load_checkpoint(tmp_path / "x.npz")
    assert checkpoint_roundtrip_equal(state, back)
    assert meta == {"a": 1, "layout": "cell-major"}


def test_checkpoint_keys_with_underscores_roundtrip(tmp_path):
    """Regression: the old '/' -> '__' munging destroyed keys containing
    literal '__' (or mixes of both); the key manifest stores them losslessly."""
    state = {
        "f/ion__fast": np.arange(4.0),
        "f/ion/fast": np.arange(3.0),
        "a__b": np.eye(2),
        "state__tricky": np.ones(2),
        "plain": np.zeros(1),
    }
    save_checkpoint(tmp_path / "u.npz", state, {})
    back, _ = load_checkpoint(tmp_path / "u.npz")
    assert set(back) == set(state)
    assert checkpoint_roundtrip_equal(state, back)


def test_checkpoint_legacy_munged_format_still_loads(tmp_path):
    """Checkpoints written before the key manifest (munged array names)."""
    import json

    payload = {
        "state__f__elc": np.arange(5.0),
        "meta_json": np.frombuffer(json.dumps({"time": 2.0}).encode(), dtype=np.uint8),
    }
    np.savez_compressed(tmp_path / "legacy.npz", **payload)
    state, meta = load_checkpoint(tmp_path / "legacy.npz")
    assert meta == {"time": 2.0}
    assert np.array_equal(state["f/elc"], np.arange(5.0))


def test_checkpoint_roundtrip_equal_detects_mismatch():
    a = {"x": np.ones(3)}
    assert not checkpoint_roundtrip_equal(a, {"y": np.ones(3)})
    assert not checkpoint_roundtrip_equal(a, {"x": np.zeros(3)})
    assert checkpoint_roundtrip_equal(a, {"x": np.ones(3)})


def test_checkpoint_meta_types(tmp_path):
    meta = {"time": 1.5, "steps": 10, "name": "elc", "list": [1, 2]}
    save_checkpoint(tmp_path / "m.npz", {"a": np.zeros(2)}, meta)
    _, back = load_checkpoint(tmp_path / "m.npz")
    assert back == {**meta, "layout": "cell-major"}


def test_velocity_slabs_cover():
    slabs = VelocitySlabs(cells=(8, 12), axis=1, nslabs=5)
    ranges = slabs.ranges()
    assert ranges[0][0] == 0 and ranges[-1][1] == 12
    total = sum(hi - lo for lo, hi in ranges)
    assert total == 12
    assert slabs.slab_cells(0)[0] == 8


def test_decomposition_rejects_oversubscription():
    with pytest.raises(ValueError):
        ConfDecomposition.create((2, 2), 16)


def test_single_rank_has_no_ghosts():
    dec = ConfDecomposition.create((8, 8), 1)
    assert dec.ghost_cells(0) == 0


def test_comm_reset_stats():
    comm = SimulatedComm(2)
    comm.send(0, 1, np.ones(4))
    comm.recv(0, 1)
    comm.reset_stats()
    assert comm.stats.messages == 0 and comm.stats.doubles == 0


def test_block_ranges_balance_property():
    for n in (7, 16, 33):
        for b in (1, 2, 3, 5, 7):
            if b > n:
                continue
            sizes = [hi - lo for lo, hi in block_ranges(n, b)]
            assert sum(sizes) == n
            assert max(sizes) - min(sizes) <= 1
