"""The old app classes are deprecation shims with unchanged behavior."""

import numpy as np
import pytest

from repro.grid import Grid
from repro.systems import FieldSpec, MaxwellBlock, PoissonBlock, Species, System

pytestmark = pytest.mark.systems

K = 0.5


def _species(nv=8):
    def f0(x, v):
        return (1 + 0.05 * np.cos(K * x)) * np.exp(-(v**2) / 2) / np.sqrt(2 * np.pi)

    return [Species("elc", -1.0, 1.0, Grid([-6.0], [6.0], [nv]), f0)]


def _conf():
    return Grid([0.0], [2 * np.pi / K], [4])


def _field_spec():
    return FieldSpec(initial={"Ex": lambda x: -0.05 / K * np.sin(K * x)})


def _run_pair(shim, direct, steps=3):
    dts = [direct.step() for _ in range(steps)]
    for dt in dts:
        shim.step(dt)
    assert shim.time == direct.time
    a, b = shim.state(), direct.state()
    assert set(a) == set(b)
    for key in a:
        assert np.array_equal(a[key], b[key]), key
    assert shim.energies() == direct.energies()


def test_vlasov_maxwell_app_warns_and_matches():
    from repro.apps.vlasov_maxwell import VlasovMaxwellApp

    with pytest.warns(DeprecationWarning, match="VlasovMaxwellApp is deprecated"):
        shim = VlasovMaxwellApp(_conf(), _species(), _field_spec(), poly_order=1, cfl=0.4)
    direct = System(
        _conf(), _species(), field=MaxwellBlock(_field_spec()), poly_order=1, cfl=0.4
    )
    assert isinstance(shim, System)
    assert shim.field_kind == "maxwell"
    _run_pair(shim, direct)


def test_vlasov_poisson_app_warns_and_matches():
    from repro.apps.vlasov_poisson import VlasovPoissonApp

    with pytest.warns(DeprecationWarning, match="VlasovPoissonApp is deprecated"):
        shim = VlasovPoissonApp(_conf(), _species(), poly_order=1, cfl=0.4)
    direct = System(
        _conf(), _species(), field=PoissonBlock(), poly_order=1, cfl=0.4
    )
    assert isinstance(shim, System)
    assert shim.field_kind == "poisson"
    assert "em" not in shim.state()
    _run_pair(shim, direct)


def test_poisson_shim_rejects_2d():
    from repro.apps.vlasov_poisson import VlasovPoissonApp

    def f0(x, y, v):
        return np.exp(-(v**2))

    sp = [Species("e", -1.0, 1.0, Grid([-2.0], [2.0], [4]), f0)]
    with pytest.warns(DeprecationWarning):
        with pytest.raises(ValueError):
            VlasovPoissonApp(Grid([0.0, 0.0], [1.0, 1.0], [4, 4]), sp)
