"""Conservation properties of the semi-discrete scheme (paper Sec. II).

* mass: exact for any flux choice (telescoping surface terms);
* energy: with central fluxes in velocity space and for Maxwell, the
  particle-energy rate equals the discrete J.E exactly, and the field-energy
  rate equals -J.E — total energy is conserved by the spatial scheme, so the
  only drift left is the O(dt^3) of SSP-RK3.
"""

import numpy as np
import pytest

from repro.apps import FieldSpec, Species, VlasovMaxwellApp
from repro.diagnostics import EnergyHistory
from repro.grid import Grid
from repro.moments import integrate_conf_field


@pytest.fixture(scope="module")
def small_app():
    k = 0.5

    def f0(x, v):
        return (1 + 0.1 * np.cos(k * x)) * np.exp(-v ** 2 / 2) / np.sqrt(2 * np.pi)

    elc = Species("elc", -1.0, 1.0, Grid([-6.0], [6.0], [12]), f0)
    return VlasovMaxwellApp(
        conf_grid=Grid([0.0], [2 * np.pi / k], [6]),
        species=[elc],
        field=FieldSpec(initial={"Ex": lambda x: -0.1 / k * np.sin(k * x)}),
        poly_order=2,
        cfl=0.5,
    )


def test_mass_conservation_machine_precision(small_app):
    app = small_app
    n0 = app.particle_number("elc")
    for _ in range(10):
        app.step()
    assert abs(app.particle_number("elc") - n0) / n0 < 1e-13


def test_rhs_level_energy_identity(small_app):
    """d/dt E_particles = int J.E = -d/dt E_fields, exactly (Eq. 9)."""
    app = small_app
    state = app.state()
    rhs = app.rhs(state)
    pg = app.phase_grids["elc"]
    m2_rate = app.moments["elc"].compute("M2", rhs["f/elc"])
    epart_rate = 0.5 * 1.0 * integrate_conf_field(m2_rate, pg)
    jac = float(np.prod([0.5 * dx for dx in app.conf_grid.dx]))
    efield_rate = float(
        np.sum(app.em[0:3] * rhs["em"][0:3]) + np.sum(app.em[3:6] * rhs["em"][3:6])
    ) * jac
    jdote = app.jdote()
    assert epart_rate == pytest.approx(jdote, rel=1e-12)
    assert efield_rate == pytest.approx(-jdote, rel=1e-12)
    assert abs(epart_rate + efield_rate) < 1e-12 * max(abs(jdote), 1.0)


def test_total_energy_drift_is_time_discretization_only():
    k = 0.5

    def f0(x, v):
        return (1 + 0.2 * np.cos(k * x)) * np.exp(-v ** 2 / 2) / np.sqrt(2 * np.pi)

    elc = Species("elc", -1.0, 1.0, Grid([-6.0], [6.0], [12]), f0)

    def make(cfl):
        app = VlasovMaxwellApp(
            Grid([0.0], [2 * np.pi / k], [6]),
            [elc],
            FieldSpec(initial={"Ex": lambda x: -0.2 / k * np.sin(k * x)}),
            poly_order=2,
            cfl=cfl,
        )
        hist = EnergyHistory()
        app.run(0.5, diagnostics=hist)
        return hist.relative_drift()

    drift_coarse = make(0.4)
    drift_fine = make(0.1)
    assert drift_coarse < 1e-6
    # third-order stepper: dt/4 -> drift should shrink by ~64 (allow slack)
    assert drift_fine < drift_coarse / 8 or drift_fine < 1e-13


def test_upwind_maxwell_dissipates_not_gains():
    """With upwind Maxwell fluxes, total energy may only decrease."""
    k = 1.0

    def f0(x, v):
        return np.exp(-v ** 2 / 2) / np.sqrt(2 * np.pi)

    elc = Species("elc", -1.0, 1.0, Grid([-6.0], [6.0], [8]), f0)
    app = VlasovMaxwellApp(
        Grid([0.0], [2 * np.pi], [6]),
        [elc],
        FieldSpec(initial={"Ey": lambda x: 0.1 * np.sin(k * x)}, flux="upwind"),
        poly_order=1,
        cfl=0.4,
    )
    hist = EnergyHistory()
    app.run(1.0, diagnostics=hist)
    tot = hist.total
    assert tot[-1] <= tot[0] * (1 + 1e-12)
    assert tot[-1] < tot[0]  # genuinely dissipative for underresolved waves


def test_penalty_velocity_flux_runs_stably():
    k = 0.5

    def f0(x, v):
        return (1 + 0.1 * np.cos(k * x)) * np.exp(-v ** 2 / 2) / np.sqrt(2 * np.pi)

    elc = Species("elc", -1.0, 1.0, Grid([-6.0], [6.0], [8]), f0)
    app = VlasovMaxwellApp(
        Grid([0.0], [2 * np.pi / k], [4]),
        [elc],
        FieldSpec(initial={"Ex": lambda x: -0.1 / k * np.sin(k * x)}),
        poly_order=1,
        velocity_flux="penalty",
        cfl=0.4,
    )
    n0 = app.particle_number("elc")
    for _ in range(5):
        app.step()
    assert np.isfinite(app.f["elc"]).all()
    assert abs(app.particle_number("elc") - n0) / n0 < 1e-12
