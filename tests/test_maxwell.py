"""Maxwell DG solver: plane waves, energy conservation, cleaning fields."""

import numpy as np
import pytest

from repro.basis.modal import ModalBasis
from repro.fields import MaxwellSolver
from repro.grid import Grid
from repro.timestepping import SSPRK3


def _advance(solver, q, t_end, cfl=0.3):
    stepper = SSPRK3()
    t = 0.0
    dt = cfl / solver.max_frequency()
    while t < t_end - 1e-12:
        step = min(dt, t_end - t)
        state = {"q": q}
        q = stepper.step(state, lambda s: {"q": solver.rhs(s["q"])}, step)["q"]
        t += step
    return q


@pytest.fixture(scope="module")
def grid_basis():
    grid = Grid([0.0], [1.0], [16])
    basis = ModalBasis(1, 2, "serendipity")
    return grid, basis


def test_plane_wave_propagation(grid_basis):
    """Ey/Bz plane wave moving at speed c: after one period it returns."""
    grid, basis = grid_basis
    solver = MaxwellSolver(grid, basis, flux="upwind")
    k = 2 * np.pi
    q0 = solver.project_initial_condition(
        {
            "Ey": lambda x: np.cos(k * x),
            "Bz": lambda x: np.cos(k * x),
        }
    )
    q1 = _advance(solver, q0.copy(), 1.0)  # one full period (c=1, L=1)
    err = np.max(np.abs(q1[..., 1, :] - q0[..., 1, :])) / np.max(np.abs(q0[..., 1, :]))
    assert err < 2e-3


def test_energy_conservation_central_flux(grid_basis):
    grid, basis = grid_basis
    solver = MaxwellSolver(grid, basis, flux="central")
    q = solver.project_initial_condition({"Ey": lambda x: np.sin(2 * np.pi * x)})
    e0 = solver.field_energy(q)
    # the spatial scheme is exactly conservative (see the RHS-level test);
    # the residual drift here is the SSP-RK3 time-discretization error
    q = _advance(solver, q, 0.7, cfl=0.3)
    drift_coarse = abs(solver.field_energy(q) - e0) / e0
    q2 = _advance(solver, solver.project_initial_condition(
        {"Ey": lambda x: np.sin(2 * np.pi * x)}), 0.7, cfl=0.1)
    drift_fine = abs(solver.field_energy(q2) - e0) / e0
    assert drift_coarse < 1e-4
    assert drift_fine < 0.1 * drift_coarse  # vanishes with dt (3rd order)


def test_rhs_energy_rate_zero_central(grid_basis, rng):
    """Semi-discrete central-flux energy rate vanishes identically."""
    grid, basis = grid_basis
    solver = MaxwellSolver(grid, basis, flux="central")
    q = rng.standard_normal(grid.cells + (8, basis.num_basis))
    q[..., 6:, :] = 0.0
    dq = solver.rhs(q)
    jac = 0.5 * grid.dx[0]
    rate = float(
        np.sum(q[..., 0:3, :] * dq[..., 0:3, :])
        + np.sum(q[..., 3:6, :] * dq[..., 3:6, :])
    ) * jac
    assert abs(rate) < 1e-12 * float(np.sum(q ** 2))


def test_current_source_term(grid_basis, rng):
    grid, basis = grid_basis
    solver = MaxwellSolver(grid, basis)
    q = np.zeros(grid.cells + (8, basis.num_basis))
    j = rng.standard_normal(grid.cells + (3, basis.num_basis))
    dq = solver.rhs(q, current=j)
    assert np.allclose(dq[..., 0:3, :], -j, atol=1e-14)
    assert np.allclose(dq[..., 3:6, :], 0.0, atol=1e-14)


def test_uniform_fields_are_steady(grid_basis):
    grid, basis = grid_basis
    solver = MaxwellSolver(grid, basis, flux="central")
    q = np.zeros(grid.cells + (8, basis.num_basis))
    q[..., 0, 0] = 1.3  # uniform Ex
    q[..., 5, 0] = -0.4  # uniform Bz
    dq = solver.rhs(q)
    assert np.max(np.abs(dq)) < 1e-14


def test_cleaning_speeds_enter_flux():
    grid = Grid([0.0], [1.0], [8])
    basis = ModalBasis(1, 1, "serendipity")
    solver = MaxwellSolver(grid, basis, chi_e=1.0, chi_m=1.0)
    rng = np.random.default_rng(2)
    q = rng.standard_normal(grid.cells + (8, basis.num_basis))
    dq = solver.rhs(q)
    # phi/psi must evolve when cleaning is on
    assert np.max(np.abs(dq[..., 6, :])) > 0
    assert np.max(np.abs(dq[..., 7, :])) > 0
    solver0 = MaxwellSolver(grid, basis)
    dq0 = solver0.rhs(q)
    assert np.max(np.abs(dq0[..., 6, :])) == 0


def test_2d_maxwell_runs():
    grid = Grid([0.0, 0.0], [1.0, 1.0], [6, 6])
    basis = ModalBasis(2, 1, "serendipity")
    solver = MaxwellSolver(grid, basis)
    q = solver.project_initial_condition(
        {"Ez": lambda x, y: np.sin(2 * np.pi * x) * np.cos(2 * np.pi * y)}
    )
    e0 = solver.field_energy(q)
    q = _advance(solver, q, 0.2, cfl=0.2)
    assert solver.field_energy(q) == pytest.approx(e0, rel=1e-4)


def test_invalid_flux_rejected(grid_basis):
    grid, basis = grid_basis
    with pytest.raises(ValueError):
        MaxwellSolver(grid, basis, flux="roe")
