"""Linear kinetic theory module: classic values and limits."""

import numpy as np
import pytest

from repro.linear import (
    MaxwellianSpecies,
    electrostatic_dielectric,
    filamentation_growth_rate,
    landau_damping_rate,
    plasma_z,
    plasma_z_deriv,
    solve_dispersion,
    transverse_dielectric,
    two_stream_growth_rate,
)


def test_z_function_known_values():
    # Z(0) = i sqrt(pi)
    assert plasma_z(0.0) == pytest.approx(1j * np.sqrt(np.pi), abs=1e-12)
    # large-argument asymptote Z ~ -1/zeta
    z = plasma_z(50.0)
    assert z.real == pytest.approx(-1.0 / 50.0, rel=1e-2)


def test_z_derivative_identity():
    for zeta in (0.3 + 0.1j, -1.2 + 0.5j, 2.0 - 0.3j):
        lhs = plasma_z_deriv(zeta)
        rhs = -2.0 * (1.0 + zeta * plasma_z(zeta))
        assert lhs == pytest.approx(rhs, rel=1e-12)


def test_landau_damping_classic_value():
    """k lambda_D = 0.5: omega = 1.4156 - 0.1533i (textbook)."""
    w = landau_damping_rate(0.5)
    assert w.real == pytest.approx(1.4156, abs=2e-3)
    assert w.imag == pytest.approx(-0.1533, abs=2e-3)


def test_landau_damping_weakens_at_small_k():
    g1 = abs(landau_damping_rate(0.3).imag)
    g2 = abs(landau_damping_rate(0.5).imag)
    assert g1 < g2


def test_dielectric_root_is_root():
    w = landau_damping_rate(0.5)
    sp = [MaxwellianSpecies(wp=1.0, vt=1.0)]
    assert abs(electrostatic_dielectric(w, 0.5, sp)) < 1e-8


def test_two_stream_unstable_then_stable():
    """Track the unstable two-stream root by continuation in k: growth at
    long wavelength, Landau stabilization at short wavelength."""
    sp = [
        MaxwellianSpecies(wp=1 / np.sqrt(2), vt=0.2, drift=+2.0),
        MaxwellianSpecies(wp=1 / np.sqrt(2), vt=0.2, drift=-2.0),
    ]
    w = two_stream_growth_rate(k=0.4, drift=2.0, vt=0.2)
    assert w.imag > 0.05
    rates = [w.imag]
    for k in np.linspace(0.45, 1.2, 6):
        w = solve_dispersion(electrostatic_dielectric, k, sp, guess=w)
        rates.append(w.imag)
    # growth must die away as k increases past the instability band
    assert rates[-1] < 0.5 * max(rates)


def test_filamentation_cold_limit():
    """gamma^2 -> wp^2 u^2 k^2/(k^2 c^2 + wp^2) for vt -> 0."""
    u, k = 0.2, 3.0
    cold = 1.0 * u * k / np.sqrt(k ** 2 + 1.0)
    w = filamentation_growth_rate(k=k, drift=u, vt=0.01)
    assert w.imag == pytest.approx(cold, rel=0.05)
    assert abs(w.real) < 1e-6


def test_filamentation_thermal_stabilization():
    g_cold = filamentation_growth_rate(k=2.0, drift=0.3, vt=0.02).imag
    g_warm = filamentation_growth_rate(k=2.0, drift=0.3, vt=0.15).imag
    assert g_warm < g_cold


def test_solver_failure_raises():
    sp = [MaxwellianSpecies(wp=1.0, vt=1.0)]

    def bad(omega, k, species):
        return complex(np.nan, np.nan)

    with pytest.raises(RuntimeError):
        solve_dispersion(bad, 0.5, sp, guess=1.0 + 0j)
