"""Grids, phase-space layout, and L2 projection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.basis.modal import ModalBasis
from repro.grid import Grid, PhaseGrid
from repro.projection import project_on_grid, project_phase_function


def test_grid_basics():
    g = Grid([0.0, -1.0], [2.0, 1.0], [4, 8])
    assert g.ndim == 2
    assert g.num_cells == 32
    assert g.dx == (0.5, 0.25)
    assert g.cell_volume == pytest.approx(0.125)
    assert np.allclose(g.centers(0), [0.25, 0.75, 1.25, 1.75])
    assert np.allclose(g.edges(1), -1.0 + 0.25 * np.arange(9))
    assert g.cell_center((1, 2)) == pytest.approx((0.75, -0.375))


def test_grid_validation():
    with pytest.raises(ValueError):
        Grid([0.0], [0.0], [4])
    with pytest.raises(ValueError):
        Grid([0.0], [1.0], [0])
    with pytest.raises(ValueError):
        Grid([0.0, 0.0], [1.0], [4])


def test_grid_extend_and_refine():
    a = Grid([0.0], [1.0], [4])
    b = Grid([-2.0], [2.0], [8])
    ab = a.extend(b)
    assert ab.ndim == 2
    assert ab.cells == (4, 8)
    fine = a.refine(3)
    assert fine.cells == (12,)
    assert fine.dx[0] == pytest.approx(a.dx[0] / 3)


def test_phase_grid_layout():
    pg = PhaseGrid(Grid([0.0], [1.0], [3]), Grid([-2.0], [2.0], [4]))
    assert pg.cdim == 1 and pg.vdim == 1 and pg.pdim == 2
    assert pg.cells == (3, 4)
    w = pg.velocity_center_array(0)
    assert w.shape == (1, 4)
    assert np.allclose(w.ravel(), [-1.5, -0.5, 0.5, 1.5])
    aux = pg.base_aux()
    assert aux["rdx0"] == pytest.approx(2.0 / (1.0 / 3.0))
    assert aux["half_dxv1"] == pytest.approx(0.5)


@given(st.integers(2, 12))
def test_velocity_alignment_even_cells(n):
    pg = PhaseGrid(Grid([0.0], [1.0], [2]), Grid([-3.0], [3.0], [2 * (n // 2) + 2]))
    assert pg.check_velocity_alignment()


def test_velocity_alignment_straddling():
    pg = PhaseGrid(Grid([0.0], [1.0], [2]), Grid([-3.0], [3.0], [3]))
    assert not pg.check_velocity_alignment()


def test_conf_coefficient_array_shape():
    pg = PhaseGrid(Grid([0.0, 0.0], [1.0, 1.0], [3, 2]), Grid([-1.0], [1.0], [4]))
    arr = pg.conf_coefficient_array(np.ones((3, 2)))
    assert arr.shape == (3, 2, 1)
    with pytest.raises(ValueError):
        pg.conf_coefficient_array(np.ones((2, 3)))


@pytest.mark.parametrize("p", [1, 2, 3])
def test_projection_exact_for_polynomials(p):
    """L2 projection reproduces any function inside the space exactly."""
    grid = Grid([0.0], [2.0], [5])
    basis = ModalBasis(1, p, "serendipity")

    def func(x):
        return 1.0 + x + (x ** p) * 0.5

    coeffs = project_on_grid(func, grid, basis)
    # evaluate back at cell centers
    pts = np.zeros((1, 1))
    v = basis.eval_at(pts)  # basis at cell-center reference point
    centers = grid.centers(0)
    recon = np.einsum("l,lx->x", v[:, 0], coeffs)
    assert np.allclose(recon, func(centers), atol=1e-12)


def test_projection_convergence_rate():
    """Non-polynomial data: projection error drops at order p+1."""
    basis = ModalBasis(1, 2, "serendipity")

    def func(x):
        return np.sin(2 * np.pi * x)

    errs = []
    for n in (8, 16, 32):
        grid = Grid([0.0], [1.0], [n])
        coeffs = project_on_grid(func, grid, basis)
        # L2 error via fine quadrature
        from repro.basis.modal import tensor_gauss_points

        pts, wts = tensor_gauss_points(6, 1)
        v = basis.eval_at(pts)
        centers = grid.centers(0)
        xq = centers[:, None] + 0.5 * grid.dx[0] * pts[:, 0][None, :]
        recon = np.einsum("lq,lx->xq", v, coeffs)
        err = np.sqrt(np.sum(wts * (recon - func(xq)) ** 2) * 0.5 * grid.dx[0])
        errs.append(err)
    rate = np.log2(errs[0] / errs[1])
    assert rate == pytest.approx(3.0, abs=0.4)


def test_phase_projection_shape():
    pg = PhaseGrid(Grid([0.0], [1.0], [3]), Grid([-2.0], [2.0], [4]))
    basis = ModalBasis(2, 1, "serendipity")
    f = project_phase_function(lambda x, v: np.exp(-v ** 2), pg, basis)
    assert f.shape == (3, 4, 4)
    assert np.isfinite(f).all()
