"""Property-based tests of the exact polynomial algebra (the mini-CAS core)."""

from fractions import Fraction

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cas.poly import Poly


def poly_strategy(nvars=2, max_degree=3, max_terms=5):
    expo = st.tuples(*[st.integers(0, max_degree)] * nvars)
    coeff = st.fractions(
        min_value=-5, max_value=5, max_denominator=8
    )
    return st.dictionaries(expo, coeff, max_size=max_terms).map(
        lambda d: Poly(nvars, d)
    )


@given(poly_strategy(), poly_strategy())
def test_addition_commutes(a, b):
    assert a + b == b + a


@given(poly_strategy(), poly_strategy())
def test_multiplication_commutes(a, b):
    assert a * b == b * a


@settings(max_examples=50)
@given(poly_strategy(), poly_strategy(), poly_strategy())
def test_distributivity(a, b, c):
    assert a * (b + c) == a * b + a * c


@given(poly_strategy())
def test_additive_inverse(a):
    assert (a + (-a)).is_zero()


@given(poly_strategy())
def test_one_is_identity(a):
    assert Poly.one(a.nvars) * a == a


@given(poly_strategy(), poly_strategy())
def test_derivative_is_linear(a, b):
    assert (a + b).diff(0) == a.diff(0) + b.diff(0)


@settings(max_examples=40)
@given(poly_strategy(), poly_strategy())
def test_product_rule(a, b):
    lhs = (a * b).diff(1)
    rhs = a.diff(1) * b + a * b.diff(1)
    assert lhs == rhs


@given(poly_strategy())
def test_integral_matches_quadrature(a):
    """Exact cube integral equals high-order Gauss quadrature."""
    exact = float(a.integrate_cube())
    x, w = np.polynomial.legendre.leggauss(6)
    total = 0.0
    for i, xi in enumerate(x):
        for j, xj in enumerate(x):
            total += w[i] * w[j] * a.eval([xi, xj])
    assert np.isclose(exact, total, atol=1e-9)


@given(poly_strategy(), st.fractions(min_value=-1, max_value=1, max_denominator=4))
def test_substitution_consistency(a, val):
    sub = a.substitute_value(0, val)
    pt = [float(val), 0.37]
    assert np.isclose(sub.eval(pt), a.eval(pt), atol=1e-9)


def test_variable_and_monomial():
    x = Poly.variable(3, 0)
    y = Poly.variable(3, 1)
    p = x * y + 2 * x
    assert p.degree() == 2
    assert p.degree_in(0) == 1
    assert p.eval([2.0, 3.0, 0.0]) == pytest.approx(10.0)


def test_drop_var_checks():
    p = Poly.variable(2, 0)
    with pytest.raises(ValueError):
        p.drop_var(0)
    q = p.drop_var(1)
    assert q.nvars == 1


def test_invalid_exponent_rejected():
    with pytest.raises(ValueError):
        Poly(2, {(0, -1): 1})


def test_mismatched_nvars_rejected():
    with pytest.raises(ValueError):
        Poly.one(2) + Poly.one(3)
