"""Kernel registry: pre-generation caching (the Gkeyll build-step analogue)."""

import time

from repro.kernels import get_vlasov_kernels, registry_stats


def test_registry_returns_same_object():
    a = get_vlasov_kernels(1, 1, 1, "serendipity")
    b = get_vlasov_kernels(1, 1, 1, "serendipity")
    assert a is b


def test_registry_distinguishes_configs():
    a = get_vlasov_kernels(1, 1, 1, "serendipity")
    b = get_vlasov_kernels(1, 1, 1, "tensor")
    c = get_vlasov_kernels(1, 1, 2, "serendipity")
    assert a is not b and a is not c
    assert a.num_basis != c.num_basis


def test_cached_fetch_is_fast():
    get_vlasov_kernels(1, 2, 1, "serendipity")  # ensure generated
    t0 = time.perf_counter()
    for _ in range(100):
        get_vlasov_kernels(1, 2, 1, "serendipity")
    assert time.perf_counter() - t0 < 0.1


def test_registry_stats_structure():
    get_vlasov_kernels(1, 1, 1, "serendipity")
    stats = registry_stats()
    assert stats["bundles"] >= 1
    assert stats["total_nnz"] > 0


def test_bundle_contents_complete():
    k = get_vlasov_kernels(2, 2, 1, "serendipity")
    assert len(k.vol_stream) == 2
    assert len(k.vol_accel) == 2
    assert len(k.surf_stream) == 2 and len(k.surf_accel) == 2
    for sides in k.surf_stream + k.surf_accel:
        assert set(sides) == {("L", "L"), ("L", "R"), ("R", "L"), ("R", "R")}
    assert {"M0", "M1x", "M1y", "M2"} <= set(k.moments)
    assert k.all_update_termsets()  # non-empty accounting list
