"""Observability: metrics registry, span tracer, ring transport, driver
integration, CLI report — everything except the sharded legs (those live in
``test_obs_shard.py`` behind the ``shard`` marker)."""

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.obs import (
    OBS,
    SLOT,
    SLOT_NAMES,
    MetricsRegistry,
    chrome_trace,
    merge_snapshots,
)
from repro.obs.metrics import HIST_NAMES
from repro.obs.report import (
    load_metrics,
    load_trace,
    phase_breakdown,
    render_report,
    top_plans,
)
from repro.obs.ring import ObsChannel
from repro.obs.tracer import SpanTracer, base_name
from repro.runtime import Driver, SpecError, build, build_app
from repro.runtime._fmt import format_bytes, format_ms, render_table
from repro.runtime.cli import main
from repro.runtime.spec import ObservabilitySpec


@pytest.fixture(autouse=True)
def _obs_sandbox(monkeypatch):
    """Neutralize ``$REPRO_OBS`` (the CI trace leg sets it suite-wide) so
    every test here controls the mode explicitly, and leave the global
    runtime off for whoever runs next."""
    monkeypatch.delenv("REPRO_OBS", raising=False)
    yield
    OBS.configure("off")


# --------------------------------------------------------------------- #
# metrics registry
# --------------------------------------------------------------------- #
def test_registry_slots_cover_schema():
    reg = MetricsRegistry()
    assert reg.values.shape == (len(SLOT_NAMES),)
    reg.add("steps")
    reg.add("rhs_ms", 2.5)
    snap = reg.snapshot()
    assert snap["steps"] == 1.0 and snap["rhs_ms"] == 2.5
    reg.reset()
    assert not any(reg.snapshot().values())


def test_registry_rejects_wrong_buffer():
    with pytest.raises(ValueError):
        MetricsRegistry(np.zeros(3))


def test_gauge_is_high_water():
    reg = MetricsRegistry()
    reg.gauge_max("scratch_bytes", 100.0)
    reg.gauge_max("scratch_bytes", 40.0)
    assert reg.snapshot()["scratch_bytes"] == 100.0


def test_step_histogram_buckets():
    reg = MetricsRegistry()
    for ms in (0.5, 2.0, 2.9, 250.0, 5000.0):
        reg.observe_step_ms(ms)
    snap = reg.snapshot()
    assert snap["step_ms_le_1"] == 1.0
    assert snap["step_ms_le_3"] == 2.0
    assert snap["step_ms_le_300"] == 1.0
    assert snap["step_ms_gt_1000"] == 1.0
    assert sum(snap[name] for name in HIST_NAMES) == 5.0


def test_merge_sums_counters_maxes_gauges():
    a = {"steps": 2.0, "halo_bytes": 10.0, "scratch_bytes": 5.0}
    b = {"steps": 3.0, "halo_bytes": 1.0, "scratch_bytes": 9.0}
    merged = merge_snapshots([a, b])
    assert merged["steps"] == 5.0
    assert merged["halo_bytes"] == 11.0
    assert merged["scratch_bytes"] == 9.0  # gauge: max, not sum
    assert merged["rhs_calls"] == 0.0  # missing keys default to zero


# --------------------------------------------------------------------- #
# span tracer + chrome export
# --------------------------------------------------------------------- #
def test_tracer_interns_and_resolves():
    tr = SpanTracer()
    a = tr.label_id("rhs")
    assert tr.label_id("rhs") == a  # interned
    tr.record(a, 1.0, 2.0)
    tr.record_name("step", 0.5)
    events = tr.resolved(pid=7, tid=0)
    assert events[0] == (7, 0, "rhs", 1.0, 2.0)
    assert events[1][2] == "step" and events[1][4] >= events[1][3]


def test_tracer_bounds_memory():
    tr = SpanTracer(capacity=2)
    lid = tr.label_id("x")
    for _ in range(5):
        tr.record(lid, 0.0, 1.0)
    assert len(tr.events) == 2 and tr.dropped == 3


def test_base_name_strips_digest():
    assert base_name("plan_apply:ab12cd") == "plan_apply"
    assert base_name("rhs") == "rhs"


def test_chrome_trace_layout():
    events = [(1, 0, "rhs", 10.0, 10.5), (2, 0, "rhs", 10.1, 10.2)]
    doc = chrome_trace(events, origin=10.0, process_names={1: "driver"})
    metas = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
    spans = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
    assert {m["pid"]: m["args"]["name"] for m in metas} == {1: "driver", 2: "pid-2"}
    assert spans[0]["ts"] == pytest.approx(0.0)
    assert spans[0]["dur"] == pytest.approx(0.5e6)
    assert spans[1]["ts"] == pytest.approx(0.1e6)
    assert doc["displayTimeUnit"] == "ms"


# --------------------------------------------------------------------- #
# shared-memory ring transport
# --------------------------------------------------------------------- #
def test_ring_push_drain_roundtrip():
    buf = np.zeros(ObsChannel.length(capacity=4))
    writer = ObsChannel(buf, capacity=4)
    reader = ObsChannel(buf, capacity=4)
    writer.push(0, 1.0, 2.0)
    writer.push(1, 2.0, 3.0)
    records, lost = reader.drain()
    assert records == [(0, 1.0, 2.0), (1, 2.0, 3.0)] and lost == 0
    records, lost = reader.drain()
    assert records == [] and lost == 0


def test_ring_wraparound_counts_lost():
    buf = np.zeros(ObsChannel.length(capacity=4))
    writer = ObsChannel(buf, capacity=4)
    reader = ObsChannel(buf, capacity=4)
    for i in range(7):  # 3 more than capacity, never drained
        writer.push(i, float(i), float(i) + 0.5)
    records, lost = reader.drain()
    assert lost == 3
    assert [r[0] for r in records] == [3, 4, 5, 6]  # the surviving tail


def test_ring_metrics_slice_is_shared():
    buf = np.zeros(ObsChannel.length(capacity=4))
    writer = ObsChannel(buf, capacity=4)
    reader = ObsChannel(buf, capacity=4)
    writer.metrics.add("rhs_calls", 3.0)
    assert reader.metrics.snapshot()["rhs_calls"] == 3.0


def test_ring_rejects_wrong_buffer():
    with pytest.raises(ValueError):
        ObsChannel(np.zeros(10), capacity=4)


# --------------------------------------------------------------------- #
# the global runtime switch
# --------------------------------------------------------------------- #
def test_off_mode_records_nothing():
    OBS.configure("off")
    elapsed = OBS.finish("rhs", time.perf_counter(), SLOT["rhs_calls"])
    assert elapsed >= 0.0
    assert OBS.metrics.snapshot()["rhs_calls"] == 0.0
    assert OBS.tracer.events == []


def test_summary_mode_counts_without_spans():
    OBS.configure("summary")
    OBS.finish("rhs", time.perf_counter(), SLOT["rhs_calls"], SLOT["rhs_ms"])
    snap = OBS.metrics.snapshot()
    assert snap["rhs_calls"] == 1.0 and snap["rhs_ms"] >= 0.0
    assert OBS.tracer.events == []  # spans only in trace mode


def test_trace_mode_records_spans_and_sampling():
    OBS.configure("trace", sample=2)
    OBS.begin_step(0)
    assert OBS.trace_on
    OBS.finish("step", time.perf_counter(), SLOT["steps"])
    OBS.begin_step(1)
    assert not OBS.trace_on  # skipped by sampling
    OBS.finish("step", time.perf_counter(), SLOT["steps"])
    assert len(OBS.tracer.events) == 1
    assert OBS.metrics.snapshot()["steps"] == 2.0  # metrics stay exact


def test_configure_rejects_unknown_mode():
    with pytest.raises(ValueError):
        OBS.configure("verbose")


def test_env_override_rejects_garbage(monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "everything")
    with pytest.raises(ValueError):
        build_app(build("two_stream", nx=4, nv=8, steps=1))


# --------------------------------------------------------------------- #
# spec surface
# --------------------------------------------------------------------- #
def test_observability_spec_roundtrip():
    spec = ObservabilitySpec(mode="trace", sample=3, trace_path="t.json")
    again = ObservabilitySpec.from_dict(spec.to_dict(), "observability")
    assert again == spec


def test_observability_spec_rejects_unknowns_and_bad_values():
    with pytest.raises(SpecError):
        ObservabilitySpec.from_dict({"verbosity": 3}, "observability")
    with pytest.raises(SpecError):
        ObservabilitySpec.from_dict({"trace_path": 7}, "observability")
    with pytest.raises(SpecError):
        ObservabilitySpec(mode="loud").validate("observability")
    with pytest.raises(SpecError):
        ObservabilitySpec(sample=0).validate("observability")


def test_dotted_override_reaches_observability():
    spec = build(
        "two_stream", nx=4, nv=8, **{"observability.mode": "summary"}
    )
    assert spec.observability.mode == "summary"
    assert spec.to_dict()["observability"]["mode"] == "summary"


# --------------------------------------------------------------------- #
# driver integration (serial)
# --------------------------------------------------------------------- #
def test_driver_off_by_default(tmp_path):
    driver = Driver(build("two_stream", nx=4, nv=8, steps=2), outdir=tmp_path)
    result = driver.run()
    assert not OBS.on
    assert "obs" not in result
    assert not (tmp_path / "metrics.jsonl").exists()
    assert not (tmp_path / "trace.json").exists()


def test_driver_summary_counts_the_run(tmp_path):
    spec = build(
        "two_stream", nx=4, nv=8, steps=3,
        **{"observability.mode": "summary"},
    )
    driver = Driver(spec, outdir=tmp_path)
    result = driver.run()
    obs = result["obs"]
    assert obs["mode"] == "summary"
    metrics = obs["metrics"]
    assert metrics["steps"] == 3.0
    assert metrics["rk_stages"] == 9.0  # SSP-RK3: three stages per step
    assert metrics["rhs_calls"] == 9.0  # one coupled RHS per stage
    assert metrics["plan_applies"] > 0
    assert metrics["plan_compiled"] + metrics["plan_hydrated"] > 0
    assert metrics["scratch_bytes"] > 0
    assert sum(metrics[name] for name in HIST_NAMES) == 3.0
    assert obs["steps_per_s"] > 0

    records = load_metrics(tmp_path / "metrics.jsonl")
    assert records and records[-1]["metrics"]["steps"] == 3.0
    assert not (tmp_path / "trace.json").exists()  # summary: no spans


def test_driver_trace_writes_chrome_trace(tmp_path):
    spec = build(
        "two_stream", nx=4, nv=8, steps=2,
        **{"observability.mode": "trace"},
    )
    Driver(spec, outdir=tmp_path).run()
    doc = json.loads((tmp_path / "trace.json").read_text())
    spans = [ev for ev in doc["traceEvents"] if ev["ph"] == "X"]
    names = {ev["name"] for ev in spans}
    assert {"step", "rk_stage", "rhs", "plan_compile", "diagnostics"} <= names
    assert any(name.startswith("plan_apply:") for name in names)
    metas = [ev for ev in doc["traceEvents"] if ev["ph"] == "M"]
    assert any(m["args"]["name"] == "driver" for m in metas)
    assert all(ev["dur"] >= 0.0 and ev["ts"] >= 0.0 for ev in spans)
    assert len([ev for ev in spans if ev["name"] == "step"]) == 2


def test_trace_sampling_thins_spans_not_counters(tmp_path):
    spec = build(
        "two_stream", nx=4, nv=8, steps=4,
        **{"observability.mode": "trace", "observability.sample": 2},
    )
    result = Driver(spec, outdir=tmp_path).run()
    assert result["obs"]["metrics"]["steps"] == 4.0  # counters exact
    events = load_trace(tmp_path / "trace.json")
    step_spans = [ev for ev in events if ev[2] == "step"]
    assert len(step_spans) == 2  # steps 0 and 2 sampled


def test_env_var_turns_tracing_on(tmp_path, monkeypatch):
    monkeypatch.setenv("REPRO_OBS", "trace")
    driver = Driver(build("two_stream", nx=4, nv=8, steps=1), outdir=tmp_path)
    result = driver.run()
    assert result["obs"]["mode"] == "trace"
    assert (tmp_path / "trace.json").exists()


def test_custom_metrics_path(tmp_path):
    mpath = tmp_path / "custom" / "m.jsonl"
    spec = build(
        "two_stream", nx=4, nv=8, steps=1,
        **{
            "observability.mode": "summary",
            "observability.metrics_path": str(mpath),
        },
    )
    Driver(spec, outdir=tmp_path).run()
    assert load_metrics(mpath)
    assert not (tmp_path / "metrics.jsonl").exists()


# --------------------------------------------------------------------- #
# wall-clock budget (checked every step)
# --------------------------------------------------------------------- #
def test_tiny_budget_stops_within_a_step(tmp_path):
    spec = build("two_stream", nx=4, nv=8, t_end=1e6)
    driver = Driver(spec, outdir=tmp_path, wall_clock_budget=0.05)
    t0 = time.perf_counter()
    result = driver.run()
    elapsed = time.perf_counter() - t0
    assert result["status"] == "budget_exhausted"
    # the deadline is re-checked every iteration, so a 50 ms budget can
    # overshoot by at most one step (plus the final checkpoint), never by
    # an unbounded amount
    assert elapsed < 5.0
    assert result["steps"] < 1000
    assert (tmp_path / "checkpoint.npz").exists()


# --------------------------------------------------------------------- #
# crash durability: streams flushed per record, fsynced on exit
# --------------------------------------------------------------------- #
def test_interrupt_leaves_parseable_streams(tmp_path):
    spec = build(
        "two_stream", nx=4, nv=8, steps=50, t_end=1e6,
        **{"observability.mode": "summary", "diagnostics.energy_interval": 1},
    )
    driver = Driver(spec, outdir=tmp_path)
    real_step = driver.app.step
    calls = {"n": 0}

    def interrupted_step(dt):
        calls["n"] += 1
        if calls["n"] > 3:
            raise KeyboardInterrupt
        return real_step(dt)

    driver.app.step = interrupted_step
    with pytest.raises(KeyboardInterrupt):
        driver.run()
    assert driver._stream is None and driver._metrics_stream is None
    for name in ("diagnostics.jsonl", "metrics.jsonl"):
        lines = (tmp_path / name).read_text().splitlines()
        assert lines, f"{name} is empty"
        for line in lines:
            json.loads(line)  # every line fully written
    # the finally block recorded a final cumulative metrics snapshot
    assert load_metrics(tmp_path / "metrics.jsonl")[-1]["metrics"]["steps"] == 3.0


def test_killed_subprocess_leaves_parseable_streams(tmp_path):
    """SIGKILL a traced run mid-flight: per-record flushes mean every
    complete line on disk parses (the torn final line, if the kill lands
    mid-write, is the only thing allowed to be unterminated)."""
    script = """
import sys
sys.path.insert(0, {src!r})
from repro.runtime import Driver, build
spec = build(
    "two_stream", nx=4, nv=8, t_end=1e6,
    **{{"observability.mode": "summary", "diagnostics.energy_interval": 1}},
)
Driver(spec, outdir={outdir!r}).run()
""".format(src=str(Path(__file__).resolve().parents[1] / "src"),
           outdir=str(tmp_path))
    env = dict(os.environ)
    env.pop("REPRO_OBS", None)
    proc = subprocess.Popen([sys.executable, "-c", script], env=env)
    metrics = tmp_path / "metrics.jsonl"
    diagnostics = tmp_path / "diagnostics.jsonl"
    deadline = time.time() + 60.0
    try:
        while time.time() < deadline:
            if diagnostics.exists() and diagnostics.stat().st_size > 0:
                break
            if proc.poll() is not None:
                pytest.fail(f"run exited early with {proc.returncode}")
            time.sleep(0.05)
        else:
            pytest.fail("run never produced diagnostics output")
        time.sleep(0.2)  # let a few more records land
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)
    assert diagnostics.read_text(), "no diagnostics survived the kill"
    for path in (diagnostics, metrics):
        if not path.exists():
            continue
        text = path.read_text()
        lines = text.splitlines()
        complete = lines if text.endswith("\n") else lines[:-1]
        for line in complete:
            json.loads(line)


# --------------------------------------------------------------------- #
# offline report
# --------------------------------------------------------------------- #
_EVENTS = [
    (1, 0, "step", 0.0, 1.0),
    (1, 0, "rk_stage", 0.0, 0.6),
    (1, 0, "rhs", 0.1, 0.5),
    (1, 0, "plan_apply:aaa", 0.1, 0.3),
    (1, 0, "plan_apply:bbb", 0.3, 0.4),
]


def test_phase_breakdown_subtracts_children():
    phases = phase_breakdown(_EVENTS)
    assert phases["step"] == (1, pytest.approx(1.0), pytest.approx(0.4))
    assert phases["rk_stage"] == (1, pytest.approx(0.6), pytest.approx(0.2))
    assert phases["rhs"] == (1, pytest.approx(0.4), pytest.approx(0.1))
    # both plans fold into one phase; nothing nests inside them
    assert phases["plan_apply"] == (2, pytest.approx(0.3), pytest.approx(0.3))


def test_self_time_isolated_per_row():
    """Overlapping spans on different (pid, tid) rows never nest."""
    events = [(1, 0, "rhs", 0.0, 1.0), (2, 0, "rhs", 0.2, 0.8)]
    phases = phase_breakdown(events)
    assert phases["rhs"] == (2, pytest.approx(1.6), pytest.approx(1.6))


def test_top_plans_orders_by_self_time():
    plans = top_plans(_EVENTS)
    assert [(d, c) for d, c, _ in plans] == [("aaa", 1), ("bbb", 1)]
    assert plans[0][2] == pytest.approx(0.2)
    assert top_plans(_EVENTS, n=1) == plans[:1]


def test_render_report_end_to_end(tmp_path):
    spec = build(
        "two_stream", nx=4, nv=8, steps=2,
        **{"observability.mode": "trace"},
    )
    Driver(spec, outdir=tmp_path).run()
    text = render_report(tmp_path)
    assert "phases" in text and "metrics" in text
    assert "rk_stage" in text and "steps_per_s" in text


def test_render_report_requires_output(tmp_path):
    with pytest.raises(FileNotFoundError):
        render_report(tmp_path / "nothing")


# --------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------- #
def test_cli_run_trace_then_report(capsys, tmp_path):
    assert main([
        "run", "two_stream", "--trace",
        "--set", "steps=2", "--set", "nx=4", "--set", "nv=8",
        "--outdir", str(tmp_path),
    ]) == 0
    out = capsys.readouterr().out
    assert "trace" in out
    assert (tmp_path / "trace.json").exists()
    assert main(["report", str(tmp_path)]) == 0
    report = capsys.readouterr().out
    assert "phases" in report and "plan_apply" in report


def test_cli_report_missing_outdir_fails(capsys, tmp_path):
    assert main(["report", str(tmp_path / "empty")]) == 2
    assert "no such run directory" in capsys.readouterr().err


# --------------------------------------------------------------------- #
# the shared table renderer (used by `repro plans list` and `repro report`)
# --------------------------------------------------------------------- #
def test_render_table_golden():
    out = render_table(
        [("alpha", "12", "3.4"), ("b", "7", "100")],
        header=("name", "n", "ms"),
        indent="  ",
    )
    assert out == (
        "  name    n   ms\n"
        "  -----  --  ---\n"
        "  alpha  12  3.4\n"
        "  b       7  100"
    )


def test_render_table_alignment_rules():
    # mixed column stays left-aligned; explicit align overrides detection
    out = render_table([("a", "1"), ("bb", "x2")])
    assert out == "a   1\nbb  x2"
    out = render_table([("a", "1"), ("bb", "2")], align=("<", "<"))
    assert out == "a   1\nbb  2"
    assert render_table([]) == ""


def test_format_helpers():
    assert format_ms(0.123) == "0.12"
    assert format_ms(12.34) == "12.3"
    assert format_ms(1234.5) == "1234"
    assert format_bytes(512) == "512B"
    assert format_bytes(2048) == "2.0KiB"
    assert format_bytes(3 * 1024**2) == "3.0MiB"


def test_plans_list_uses_shared_table(capsys, tmp_path):
    cache = tmp_path / "plans"
    assert main([
        "plans", "warm", "free_streaming", "--cache", str(cache),
        "--set", "nx=4", "--set", "nv=8",
    ]) == 0
    capsys.readouterr()
    assert main(["plans", "list", "--cache", str(cache)]) == 0
    out = capsys.readouterr().out
    lines = [ln for ln in out.splitlines() if ln.startswith("  ")]
    assert lines, "no table rows printed"
    # aligned columns: every row's digest column starts at the same offset
    starts = {len(ln) - len(ln.lstrip()) for ln in lines}
    assert starts == {2}
