"""Moment kernels: exactness against analytic moments and linearity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.basis.modal import ModalBasis
from repro.grid import Grid, PhaseGrid
from repro.kernels import get_vlasov_kernels
from repro.moments import MomentCalculator, integrate_conf_field
from repro.projection import project_phase_function


def _cm_shape(num_basis, pg):
    return pg.conf.cells + (num_basis,) + pg.vel.cells


@pytest.fixture(scope="module")
def setup_1x1v():
    pg = PhaseGrid(Grid([0.0], [1.0], [4]), Grid([-8.0], [8.0], [32]))
    kern = get_vlasov_kernels(1, 1, 2, "serendipity")
    mom = MomentCalculator(pg, kern)
    basis = ModalBasis(2, 2, "serendipity")
    return pg, kern, mom, basis


def test_maxwellian_moments(setup_1x1v):
    """Moments of a drifting Maxwellian: n, n*u, n*(u^2 + vth^2)."""
    pg, _, mom, basis = setup_1x1v
    n, u, vth = 2.0, 0.7, 0.9

    def f0(x, v):
        return n * np.exp(-((v - u) ** 2) / (2 * vth ** 2)) / np.sqrt(2 * np.pi * vth ** 2)

    f = project_phase_function(f0, pg, basis)
    m0 = integrate_conf_field(mom.compute("M0", f), pg)
    m1 = integrate_conf_field(mom.compute("M1x", f), pg)
    m2 = integrate_conf_field(mom.compute("M2", f), pg)
    length = 1.0
    assert m0 == pytest.approx(n * length, rel=1e-10)
    assert m1 == pytest.approx(n * u * length, rel=1e-8)
    assert m2 == pytest.approx(n * (u ** 2 + vth ** 2) * length, rel=1e-6)


def test_polynomial_moments_exact(setup_1x1v):
    """For f polynomial in v (within the basis) moments are exact integrals."""
    pg, _, mom, basis = setup_1x1v

    def f0(x, v):
        return 1.0 + 0.25 * v  # linear in v, constant in x

    f = project_phase_function(f0, pg, basis)
    vmax = 8.0
    m0 = integrate_conf_field(mom.compute("M0", f), pg)
    m1 = integrate_conf_field(mom.compute("M1x", f), pg)
    m2 = integrate_conf_field(mom.compute("M2", f), pg)
    assert m0 == pytest.approx(2 * vmax, rel=1e-12)
    assert m1 == pytest.approx(0.25 * (2 * vmax ** 3) / 3, rel=1e-12)
    assert m2 == pytest.approx((2 * vmax ** 3) / 3, rel=1e-12)


@settings(max_examples=15, deadline=None)
@given(st.floats(-2, 2), st.floats(-2, 2))
def test_moment_linearity(a, b):
    pg = PhaseGrid(Grid([0.0], [1.0], [2]), Grid([-2.0], [2.0], [4]))
    kern = get_vlasov_kernels(1, 1, 1, "serendipity")
    mom = MomentCalculator(pg, kern)
    rng = np.random.default_rng(5)
    f = rng.standard_normal(_cm_shape(kern.num_basis, pg))
    g = rng.standard_normal(f.shape)
    for name in ("M0", "M1x", "M2"):
        lhs = mom.compute(name, a * f + b * g)
        rhs = a * mom.compute(name, f) + b * mom.compute(name, g)
        assert np.allclose(lhs, rhs, rtol=1e-12, atol=1e-12)


def test_current_density_components():
    pg = PhaseGrid(Grid([0.0], [1.0], [2]), Grid([-2.0, -2.0], [2.0, 2.0], [4, 4]))
    kern = get_vlasov_kernels(1, 2, 1, "serendipity")
    mom = MomentCalculator(pg, kern)
    rng = np.random.default_rng(6)
    f = rng.standard_normal(_cm_shape(kern.num_basis, pg))
    j = mom.current_density(f, charge=-2.0)
    assert j.shape == pg.conf.cells + (3, kern.cfg_basis.num_basis)
    assert np.allclose(j[..., 0, :], -2.0 * mom.compute("M1x", f))
    assert np.allclose(j[..., 1, :], -2.0 * mom.compute("M1y", f))
    assert np.all(j[..., 2, :] == 0)  # no vz in 2V


def test_unknown_moment_raises(setup_1x1v):
    _, _, mom, _ = setup_1x1v
    with pytest.raises(KeyError):
        mom.compute("M3", np.zeros((4, 8, 32)))


def test_2x2v_moments_shape():
    pg = PhaseGrid(Grid([0, 0], [1, 1], [3, 2]), Grid([-2, -2], [2, 2], [4, 4]))
    kern = get_vlasov_kernels(2, 2, 1, "serendipity")
    mom = MomentCalculator(pg, kern)
    f = np.ones(_cm_shape(kern.num_basis, pg))
    m0 = mom.compute("M0", f)
    assert m0.shape == (3, 2, kern.cfg_basis.num_basis)
