"""App-level integration: multi-species runs, checkpoint/restart, schemes."""

import numpy as np
import pytest

from repro.apps import FieldSpec, Species, VlasovMaxwellApp
from repro.apps.vlasov_poisson import VlasovPoissonApp
from repro.diagnostics import EnergyHistory
from repro.grid import Grid
from repro.io import load_checkpoint, restore_app, save_app, save_checkpoint


def _two_species(k=0.5, nv=8, nx=4, p=1):
    def felc(x, v):
        return (1 + 0.05 * np.cos(k * x)) * np.exp(-v ** 2 / 2) / np.sqrt(2 * np.pi)

    def fion(x, v):
        # heavy ions: narrow Maxwellian (mass ratio 25 for test speed)
        vt = 0.2
        return np.exp(-v ** 2 / (2 * vt ** 2)) / np.sqrt(2 * np.pi * vt ** 2)

    elc = Species("elc", -1.0, 1.0, Grid([-6.0], [6.0], [nv]), felc)
    ion = Species("ion", +1.0, 25.0, Grid([-1.5], [1.5], [nv]), fion)
    return VlasovMaxwellApp(
        Grid([0.0], [2 * np.pi / k], [nx]),
        [elc, ion],
        FieldSpec(initial={"Ex": lambda x: -0.05 / k * np.sin(k * x)}),
        poly_order=p,
        cfl=0.4,
    )


def test_two_species_energy_and_mass():
    app = _two_species()
    hist = EnergyHistory()
    n_elc = app.particle_number("elc")
    n_ion = app.particle_number("ion")
    app.run(0.5, diagnostics=hist)
    assert app.step_count > 0
    assert abs(app.particle_number("elc") - n_elc) / n_elc < 1e-12
    assert abs(app.particle_number("ion") - n_ion) / n_ion < 1e-12
    assert hist.relative_drift() < 1e-5


def test_modal_and_quadrature_apps_agree():
    """The Table I comparison is meaningful because both schemes integrate
    the same discrete system: one step must agree to near machine precision."""
    k = 0.5

    def f0(x, v):
        return (1 + 0.1 * np.cos(k * x)) * np.exp(-v ** 2 / 2) / np.sqrt(2 * np.pi)

    def make(scheme):
        elc = Species("elc", -1.0, 1.0, Grid([-6.0], [6.0], [8]), f0)
        return VlasovMaxwellApp(
            Grid([0.0], [2 * np.pi / k], [4]),
            [elc],
            FieldSpec(initial={"Ex": lambda x: -0.1 / k * np.sin(k * x)}),
            poly_order=2,
            scheme=scheme,
            cfl=0.5,
        )

    a = make("modal")
    b = make("quadrature")
    dt = min(a.suggested_dt(), b.suggested_dt())
    for app in (a, b):
        app.step(dt)
        app.step(dt)
    scale = np.max(np.abs(b.f["elc"]))
    assert np.max(np.abs(a.f["elc"] - b.f["elc"])) / scale < 1e-12
    assert np.allclose(a.em, b.em, atol=1e-12)


def test_static_field_mode():
    def f0(x, v):
        return np.exp(-v ** 2 / 2)

    elc = Species("elc", -1.0, 1.0, Grid([-4.0], [4.0], [8]), f0)
    app = VlasovMaxwellApp(
        Grid([0.0], [1.0], [4]),
        [elc],
        FieldSpec(initial={"Ex": lambda x: 0.3 * np.ones_like(x)}, evolve=False),
        poly_order=1,
    )
    em0 = app.em.copy()
    app.step()
    assert np.array_equal(app.em, em0)  # field frozen
    assert app.step_count == 1


def test_checkpoint_restart_bitwise(tmp_path):
    app = _two_species()
    for _ in range(3):
        app.step()
    path = tmp_path / "chk.npz"
    save_app(path, app)
    f_ref = {k: v.copy() for k, v in app.f.items()}
    em_ref = app.em.copy()
    t_ref = app.time
    # continue 2 steps, then restore and redo them
    dts = [app.step() for _ in range(2)]
    f_after = {k: v.copy() for k, v in app.f.items()}
    meta = restore_app(path, app)
    assert meta["species"] == ["elc", "ion"]
    assert app.time == t_ref
    for k in f_ref:
        assert np.array_equal(app.f[k], f_ref[k])
    assert np.array_equal(app.em, em_ref)
    for dt in dts:
        app.step(dt)
    for k in f_after:
        assert np.array_equal(app.f[k], f_after[k])


def test_checkpoint_file_roundtrip(tmp_path):
    state = {"f/elc": np.arange(12.0).reshape(3, 4), "em": np.ones((2, 2))}
    meta = {"time": 1.5, "note": "test"}
    path = tmp_path / "c.npz"
    save_checkpoint(path, state, meta)
    state2, meta2 = load_checkpoint(path)
    assert meta2 == {**meta, "layout": "cell-major"}
    assert set(state2) == set(state)
    for k in state:
        assert np.array_equal(state[k], state2[k])


def test_app_validation_errors():
    def f0(x, v):
        return np.exp(-v ** 2)

    sp = Species("e", -1.0, 1.0, Grid([-2.0], [2.0], [4]), f0)
    with pytest.raises(ValueError):
        VlasovMaxwellApp(Grid([0.0], [1.0], [4]), [], poly_order=1)
    with pytest.raises(ValueError):
        VlasovMaxwellApp(Grid([0.0], [1.0], [4]), [sp, sp], poly_order=1)
    with pytest.raises(ValueError):
        VlasovMaxwellApp(Grid([0.0], [1.0], [4]), [sp], poly_order=1, scheme="pic")


def test_vlasov_poisson_requires_1d():
    def f0(x, y, v):
        return np.exp(-v ** 2)

    sp = Species("e", -1.0, 1.0, Grid([-2.0], [2.0], [4]), f0)
    with pytest.raises(ValueError):
        VlasovPoissonApp(Grid([0.0, 0.0], [1.0, 1.0], [4, 4]), [sp])


def test_vlasov_poisson_neutralized_run():
    k = 0.5

    def f0(x, v):
        return (1 + 0.01 * np.cos(k * x)) * np.exp(-v ** 2 / 2) / np.sqrt(2 * np.pi)

    elc = Species("elc", -1.0, 1.0, Grid([-6.0], [6.0], [12]), f0)
    app = VlasovPoissonApp(Grid([0.0], [2 * np.pi / k], [6]), [elc], poly_order=1, cfl=0.5)
    n0 = app.particle_number("elc")
    app.run(0.5)
    assert abs(app.particle_number("elc") - n0) / n0 < 1e-12
    assert app.field_energy() > 0
