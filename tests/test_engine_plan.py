"""The precompiled execution engine must reproduce the sparse ``TermSet``
reference exactly — across random termsets, phase splits, aux layouts, and
backends — and must recompile (not silently reuse) plans when the aux
signature changes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    ExecutionPlan,
    NumpyBackend,
    ScratchPool,
    ThreadedBackend,
    aux_signature,
    available_backends,
    classify_aux_value,
    get_backend,
)
from repro.engine.layout import phase_to_cell_major, phase_to_mode_major
from repro.kernels.grouped import GroupedOperator
from repro.kernels.termset import TermSet, merge_termsets, stack_termsets

KINDS = ("scalar", "const", "cfg", "vel", "mixed")


def _make_aux(names_kinds, cdim, vdim, cfg_shape, vel_shape, rng):
    aux = {}
    for name, kind in names_kinds.items():
        if kind == "scalar":
            aux[name] = float(rng.standard_normal())
        elif kind == "const":
            aux[name] = np.full((1,) * (cdim + vdim), float(rng.standard_normal()))
        elif kind == "cfg":
            aux[name] = rng.standard_normal(cfg_shape + (1,) * vdim)
        elif kind == "vel":
            aux[name] = rng.standard_normal((1,) * cdim + vel_shape)
        else:  # mixed: varies on both cell groups -> sparse fallback
            aux[name] = rng.standard_normal(cfg_shape + vel_shape)
    return aux


def _random_termset(n, nout, nin, names, rng):
    entries = {}
    for _ in range(n):
        sym = tuple(rng.choice(names, size=rng.integers(0, 3)))
        triples = entries.setdefault(sym, [])
        for _ in range(rng.integers(1, 6)):
            triples.append(
                (int(rng.integers(0, nout)), int(rng.integers(0, nin)),
                 float(rng.standard_normal()))
            )
    return TermSet(nout, nin, entries)


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10**6),
    cdim=st.integers(1, 2),
    vdim=st.integers(1, 2),
    backend=st.sampled_from(["numpy", "threaded:2"]),
    accumulate=st.booleans(),
)
def test_plan_matches_sparse_reference(seed, cdim, vdim, backend, accumulate):
    """Randomized termsets: the planned/batched path equals ``TermSet.apply``
    to tight tolerance for every scalar/config/velocity aux mix."""
    rng = np.random.default_rng(seed)
    cfg_shape = tuple(rng.integers(1, 4, size=cdim))
    vel_shape = tuple(rng.integers(2, 4, size=vdim))
    nout, nin = int(rng.integers(2, 6)), int(rng.integers(2, 6))
    names_kinds = {
        f"a{i}": KINDS[rng.integers(0, len(KINDS))] for i in range(rng.integers(1, 6))
    }
    ts = _random_termset(int(rng.integers(1, 6)), nout, nin, list(names_kinds), rng)
    aux = _make_aux(names_kinds, cdim, vdim, cfg_shape, vel_shape, rng)
    f = rng.standard_normal((nin,) + cfg_shape + vel_shape)

    ref = np.zeros((nout,) + cfg_shape + vel_shape)
    ts.apply(f, aux, ref)

    # the plan path consumes/produces the canonical cell-major layout
    f_cm = phase_to_cell_major(f, cdim)
    op = GroupedOperator(ts, cdim, vdim, backend=backend)
    base = rng.standard_normal(phase_to_cell_major(ref, cdim).shape)
    got = base.copy()
    op.apply(f_cm, aux, got, accumulate=accumulate)
    ref_cm = phase_to_cell_major(ref, cdim)
    expected = base + ref_cm if accumulate else ref_cm
    scale = max(np.max(np.abs(expected)), 1.0)
    assert np.max(np.abs(got - expected)) / scale < 1e-12

    # plan reuse with fresh values under the same signature stays exact
    aux2 = _make_aux(names_kinds, cdim, vdim, cfg_shape, vel_shape, rng)
    f2 = rng.standard_normal(f.shape)
    ref2 = np.zeros_like(ref)
    ts.apply(f2, aux2, ref2)
    got2 = np.zeros_like(ref_cm)
    op.apply(phase_to_cell_major(f2, cdim), aux2, got2)
    assert op.num_plans == 1
    scale2 = max(np.max(np.abs(ref2)), 1.0)
    assert np.max(np.abs(phase_to_mode_major(got2, cdim) - ref2)) / scale2 < 1e-12


# --------------------------------------------------------------------- #
def test_stale_plan_invalidated_on_signature_change():
    """The historical hazard: a plan built from the first aux dict must not
    be silently reused when a later aux changes layout."""
    ts = TermSet(3, 3, {("e",): [(0, 1, 2.0), (2, 0, -1.0)], (): [(1, 1, 1.0)]})
    op = GroupedOperator(ts, cdim=1, vdim=1)
    rng = np.random.default_rng(0)
    f = rng.standard_normal((3, 4, 5))
    f_cm = phase_to_cell_major(f, 1)

    for e_val in (
        1.5,                                   # scalar
        rng.standard_normal((4, 1)),           # configuration-varying
        rng.standard_normal((1, 5)),           # velocity-varying
        rng.standard_normal((4, 5)),           # mixed -> sparse fallback
        -0.25,                                 # back to scalar
    ):
        aux = {"e": e_val}
        ref = np.zeros_like(f)
        ts.apply(f, aux, ref)
        got = np.zeros_like(f_cm)
        op.apply(f_cm, aux, got)
        assert np.allclose(
            phase_to_mode_major(got, 1), ref, rtol=1e-13, atol=1e-13
        ), f"e={e_val!r}"
    assert op.num_plans == 4  # scalar signature compiled once, then reused


def test_plan_cache_per_cell_shape():
    ts = TermSet(2, 2, {("w",): [(0, 0, 1.0), (1, 1, 0.5)]})
    op = GroupedOperator(ts, cdim=1, vdim=1)
    rng = np.random.default_rng(3)
    aux = {"w": rng.standard_normal((1, 6))}
    for ncfg in (2, 3):
        f = rng.standard_normal((2, ncfg, 6))
        ref = np.zeros_like(f)
        ts.apply(f, aux, ref)
        got = np.zeros((ncfg, 2, 6))
        op.apply(phase_to_cell_major(f, 1), aux, got)
        assert np.allclose(got, phase_to_cell_major(ref, 1), atol=1e-14)
    assert op.num_plans == 2


def test_ensure_signature_raises():
    from repro.engine import PlanSignatureError

    ts = TermSet(2, 2, {("e",): [(0, 0, 1.0)]})
    aux_scalar = {"e": 2.0}
    plan = ExecutionPlan(ts, 1, 1, aux_scalar, (3, 4))
    plan.ensure_signature({"e": 3.0})  # same layout: fine
    with pytest.raises(PlanSignatureError):
        plan.ensure_signature({"e": np.ones((3, 1))})


def test_aux_signature_missing_symbol_message():
    with pytest.raises(KeyError, match="kernel symbol 'qm'"):
        aux_signature(["qm"], {}, 1, 1)


def test_classify_aux_value():
    assert classify_aux_value(1.0, 1, 1) == "s"
    assert classify_aux_value(np.float64(2.0), 1, 1) == "s"
    assert classify_aux_value(np.ones((1, 1)), 1, 1) == "s"
    assert classify_aux_value(np.ones((3, 1)), 1, 1) == "c"
    assert classify_aux_value(np.ones((1, 3)), 1, 1) == "v"
    assert classify_aux_value(np.ones((3, 3)), 1, 1) == "x"
    assert classify_aux_value(np.ones(3), 1, 1) == "x"  # wrong rank


# --------------------------------------------------------------------- #
def test_backend_registry():
    assert "numpy" in available_backends()
    assert "threaded" in available_backends()
    assert "process" in available_backends()
    assert isinstance(get_backend(None), NumpyBackend)
    assert isinstance(get_backend("numpy"), NumpyBackend)
    tb = get_backend("threaded:3")
    assert isinstance(tb, ThreadedBackend) and tb.workers == 3
    b = NumpyBackend()
    assert get_backend(b) is b
    with pytest.raises(ValueError, match="unknown backend"):
        get_backend("cuda")


def test_process_backend_is_numpy_at_the_product_level():
    from repro.engine.backend import ProcessBackend

    pb = get_backend("process:4")
    assert isinstance(pb, ProcessBackend) and pb.shards == 4
    assert isinstance(pb, NumpyBackend)  # bit-identical dense products
    assert pb.describe() == "process(4)"
    assert get_backend("process").shards >= 1
    with pytest.raises(ValueError):
        ProcessBackend(0)


def test_threaded_backend_matches_numpy():
    rng = np.random.default_rng(7)
    a = rng.standard_normal((40, 30))
    b = rng.standard_normal((30, 500))
    out_n = np.empty((40, 500))
    out_t = np.empty((40, 500))
    NumpyBackend().gemm(a, b, out_n)
    ThreadedBackend(workers=4, min_work=1).gemm(a, b, out_t)
    assert np.allclose(out_n, out_t, rtol=1e-14, atol=1e-14)
    ab = rng.standard_normal((8, 10, 6))
    bb = rng.standard_normal((8, 6, 50))
    out_n3 = np.empty((8, 10, 50))
    out_t3 = np.empty((8, 10, 50))
    NumpyBackend().batched_gemm(ab, bb, out_n3)
    ThreadedBackend(workers=4, min_work=1).batched_gemm(ab, bb, out_t3)
    # disjoint output chunks; agreement to the dot-reassociation limit
    assert np.allclose(out_n3, out_t3, rtol=1e-14, atol=1e-14)
    # broadcast (2-D) first operand
    a2 = rng.standard_normal((10, 6))
    out_b = np.empty((8, 10, 50))
    ThreadedBackend(workers=4, min_work=1).batched_gemm(a2, bb, out_b)
    assert np.allclose(out_b, np.matmul(a2, bb), rtol=1e-14, atol=1e-14)


# --------------------------------------------------------------------- #
def test_merge_termsets_equals_sequential_application():
    rng = np.random.default_rng(11)
    names = ["s", "w"]
    ts_a = _random_termset(3, 4, 4, names, rng)
    ts_b = _random_termset(2, 4, 4, names, rng)
    merged = merge_termsets([ts_a, ts_b])
    aux = {"s": 1.3, "w": rng.standard_normal((1, 5))}
    f = rng.standard_normal((4, 3, 5))
    ref = np.zeros_like(f)
    ts_a.apply(f, aux, ref)
    ts_b.apply(f, aux, ref)
    got = np.zeros_like(f)
    merged.apply(f, aux, got)
    assert np.allclose(got, ref, rtol=1e-13, atol=1e-13)


def test_stack_termsets_concatenates_outputs():
    rng = np.random.default_rng(12)
    ts_a = _random_termset(2, 3, 4, ["s"], rng)
    ts_b = _random_termset(2, 2, 4, ["s"], rng)
    stacked = stack_termsets([ts_a, ts_b])
    assert (stacked.nout, stacked.nin) == (5, 4)
    aux = {"s": -0.7}
    f = rng.standard_normal((4, 6))
    ref_a = np.zeros((3, 6))
    ts_a.apply(f, aux, ref_a)
    ref_b = np.zeros((2, 6))
    ts_b.apply(f, aux, ref_b)
    got = np.zeros((5, 6))
    stacked.apply(f, aux, got)
    assert np.allclose(got, np.concatenate([ref_a, ref_b]), atol=1e-14)


def test_scaled_termset():
    ts = TermSet(2, 2, {("s",): [(0, 1, 2.0)]})
    f = np.ones((2, 3))
    aux = {"s": 2.0}
    out = np.zeros((2, 3))
    ts.scaled(0.5).apply(f, aux, out)
    assert np.allclose(out[0], 2.0)  # 2.0 * 0.5 * s=2.0 * f=1


# --------------------------------------------------------------------- #
def test_low_rank_factorization_is_exact():
    """Plans detect shared low-rank structure (the face-trace structure of
    surface kernels) and stay exact through the reduced-space path."""
    rng = np.random.default_rng(21)
    nout, nin, r = 12, 10, 2
    u = rng.standard_normal((nout, r))
    v = rng.standard_normal((nin, r))
    entries = {}
    for i, name in enumerate(["e0", "e1", "e2"]):
        k = u @ rng.standard_normal((r, r)) @ v.T
        entries[(name,)] = [
            (l, m, k[l, m]) for l in range(nout) for m in range(nin)
        ]
    ts = TermSet(nout, nin, entries)
    cfg_shape, vel_shape = (4,), (5,)
    aux = {n: rng.standard_normal(cfg_shape + (1,)) for n in ["e0", "e1", "e2"]}
    plan = ExecutionPlan(ts, 1, 1, aux, cfg_shape + vel_shape)
    assert plan._fact is not None
    assert plan._fact[2] <= 2 * r and plan._fact[3] <= 2 * r
    f = rng.standard_normal((nin,) + cfg_shape + vel_shape)
    ref = np.zeros((nout,) + cfg_shape + vel_shape)
    ts.apply(f, aux, ref)
    got = np.zeros(cfg_shape + (nout,) + vel_shape)
    plan.apply(phase_to_cell_major(f, 1), aux, got)
    scale = max(np.max(np.abs(ref)), 1.0)
    assert np.max(np.abs(got - phase_to_cell_major(ref, 1))) / scale < 1e-12


def test_plan_accepts_strided_input():
    """A non-contiguous (strided) cell-major input still evaluates
    exactly — through one audited normalizing copy."""
    ts = TermSet(3, 3, {("e",): [(0, 1, 1.0)], ("w",): [(2, 2, 0.5)]})
    rng = np.random.default_rng(31)
    aux = {"e": rng.standard_normal((4, 1)), "w": rng.standard_normal((1, 5))}
    big = rng.standard_normal((4, 3, 9))
    f_view = big[:, :, 2:7]  # cell-major (cfg=4, nb=3, vel=5), strided
    assert not f_view.flags.c_contiguous
    op = GroupedOperator(ts, 1, 1)
    ref = np.zeros((3, 4, 5))
    ts.apply(phase_to_mode_major(f_view, 1), aux, ref)
    got = np.zeros((4, 3, 5))
    op.apply(f_view, aux, got)
    assert np.allclose(got, phase_to_cell_major(ref, 1), atol=1e-14)
    assert op.pool.layout_copies == 1  # the audited normalizing copy


def test_plan_rejects_noncontiguous_out():
    ts = TermSet(2, 2, {(): [(0, 0, 1.0)]})
    op = GroupedOperator(ts, 1, 1)
    f = np.zeros((2, 2, 2))
    big = np.zeros((2, 2, 4))
    with pytest.raises(ValueError, match="C-contiguous"):
        op.apply(f, {}, big[:, :, ::2])


def test_copy_debug_rejects_layout_copies():
    """With ``ScratchPool.copy_debug`` on, a strided full-state input is a
    hard error — the assertion the RHS hot-path copy test builds on."""
    ts = TermSet(2, 2, {("e",): [(0, 1, 1.0)]})
    rng = np.random.default_rng(5)
    aux = {"e": rng.standard_normal((3, 1))}
    op = GroupedOperator(ts, 1, 1)
    f = rng.standard_normal((3, 2, 8))[:, :, ::2]
    out = np.zeros((3, 2, 4))
    op.pool.copy_debug = True
    with pytest.raises(RuntimeError, match="layout-normalizing copy"):
        op.apply(f, aux, out)


def test_single_config_cell_grid_steps():
    """A single-configuration-cell grid classifies the field coefficients as
    scalars (no cfg-batched terms); the solver must fall back to the stacked
    sparse path instead of crashing in the cell-major carry."""
    from repro.runtime import build, build_app

    app = build_app(build("two_stream", nx=1, nv=8))
    app.step()  # pre-fix: ValueError from ExecutionPlan.apply_cellmajor
    assert app.step_count == 1
    assert np.isfinite(app.f["elc"]).all()


def test_single_config_cell_matches_quadrature():
    from repro.grid import Grid, PhaseGrid
    from repro.vlasov.modal_solver import VlasovModalSolver
    from repro.vlasov.quadrature_solver import VlasovQuadratureSolver

    pg = PhaseGrid(Grid([0.0], [1.0], [1]), Grid([-2.0], [2.0], [4]))
    modal = VlasovModalSolver(pg, 2, "serendipity")
    quad = VlasovQuadratureSolver(pg, 2, "serendipity")
    rng = np.random.default_rng(5)
    f = rng.standard_normal(pg.conf.cells + (modal.num_basis,) + pg.vel.cells)
    em = rng.standard_normal(pg.conf.cells + (8, modal.num_conf_basis))
    r_modal = modal.rhs(f, em)
    r_quad = quad.rhs(f, em)
    scale = max(np.max(np.abs(r_quad)), 1.0)
    assert np.max(np.abs(r_modal - r_quad)) / scale < 1e-12


def test_scratch_pool_reuse():
    pool = ScratchPool()
    a = pool.get("x", (3, 4))
    a.fill(7.0)
    b = pool.get("x", (3, 4))
    assert b is a and b[0, 0] == 7.0
    c = pool.get("x", (3, 4), zero=True)
    assert c is a and c[0, 0] == 0.0
    d = pool.get("y", (3, 4))
    assert d is not a
    assert len(pool) == 2 and pool.nbytes == 2 * 3 * 4 * 8
