"""repro.serve: content-hash dedup, lease crash recovery, HTTP streaming.

Covers the serving-layer acceptance invariants end to end:

* the canonical spec digest ignores execution strategy (backend, kernel
  tier, observability) but not physics;
* submitting the same spec twice runs exactly one simulation — the second
  response is ``cached`` (finished) or ``attached`` (in flight), including
  under concurrent submission from many threads;
* the streamed ``/jobs/<id>/diagnostics`` body is byte-identical to the
  on-disk ``diagnostics.jsonl``;
* a SIGKILLed worker's lease goes stale and its job is re-run exactly
  once by another worker, with byte-identical diagnostics;
* SIGTERM drains the daemon without losing or double-running leased jobs;
* ``repro report`` fails with an actionable message (not a traceback) on
  missing or still-running output directories;
* lease timeouts are validated wherever they are configurable.
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path

import pytest

from repro.dist.lease import LeaseLock, validate_lease_timeout
from repro.runtime.cli import main
from repro.runtime.scenarios import build
from repro.serve import (
    FileJobStore,
    ServeClient,
    ServeDaemon,
    ServeError,
    canonical_spec_dict,
    spec_digest,
    worker_loop,
)

pytestmark = pytest.mark.serve

REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")

#: tiny spec: finishes in well under a second
FAST = dict(steps=2, nx=6, nv=6, poly_order=1)
#: slow enough to be observed (and killed) mid-run
SLOW = dict(steps=400, nx=16, nv=16, poly_order=1)


def fast_spec(**extra):
    return build("free_streaming", **{**FAST, **extra})


def slow_spec(**extra):
    return build("free_streaming", **{**SLOW, **extra})


def wait_until(predicate, timeout=30.0, poll=0.05, what="condition"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(poll)
    raise AssertionError(f"timed out after {timeout:g}s waiting for {what}")


@pytest.fixture
def daemon(tmp_path):
    d = ServeDaemon(tmp_path / "srv", workers=1, poll=0.05)
    d.start()
    yield d
    d.drain(timeout=60.0)


# ---------------------------------------------------------------------- #
# content hashing
# ---------------------------------------------------------------------- #
def test_spec_digest_ignores_execution_strategy():
    spec = fast_spec()
    base = spec_digest(spec)
    # stable, and identical through a dict round-trip
    assert spec_digest(spec) == base
    assert spec_digest(spec.to_dict()) == base
    # execution strategy is not identity
    d = spec.to_dict()
    d["backend"] = "process:2"
    d["plan_mode"] = "interpreted"
    d["observability"] = {**d["observability"], "mode": "trace"}
    assert spec_digest(d) == base
    # output placement is not identity
    d2 = spec.to_dict()
    d2["diagnostics"] = {
        **d2["diagnostics"],
        "stream_path": "elsewhere.jsonl",
        "checkpoint_path": "ck.npz",
    }
    assert spec_digest(d2) == base
    # physics *is* identity
    assert spec_digest(fast_spec(steps=3)) != base
    assert spec_digest(fast_spec(nx=8)) != base
    # and the hashed dict carries no execution-strategy keys at all
    canon = canonical_spec_dict(spec)
    for key in ("backend", "plan_mode", "plan_cache", "observability"):
        assert key not in canon


# ---------------------------------------------------------------------- #
# job store lifecycle
# ---------------------------------------------------------------------- #
def test_store_submit_dedup_states(tmp_path):
    store = FileJobStore(tmp_path, lease_timeout=5.0)
    spec = fast_spec()
    rec, compute = store.submit(spec)
    assert compute == "scheduled"
    assert rec["status"] == "queued" and rec["submits"] == 1
    assert rec["id"] == spec_digest(spec)
    # identical resubmission attaches to the queued job
    rec2, compute2 = store.submit(spec)
    assert compute2 == "attached"
    assert rec2["id"] == rec["id"] and rec2["submits"] == 2
    # once finished, resubmission is a cache hit
    store.finish(rec["id"], {"ok": True}, None)
    rec3, compute3 = store.submit(spec)
    assert compute3 == "cached" and rec3["result"] == {"ok": True}
    # a failed job is re-queued on explicit resubmission
    store.finish(rec["id"], None, "ValueError: boom")
    rec4, compute4 = store.submit(spec)
    assert compute4 == "requeued"
    assert rec4["status"] == "queued"
    assert rec4["error"] is None and rec4["last_error"] == "ValueError: boom"


def test_store_claim_is_exclusive(tmp_path):
    store = FileJobStore(tmp_path, lease_timeout=5.0)
    rec, _ = store.submit(fast_spec())
    lock = store.try_claim(rec["id"], "worker-a")
    assert lock is not None
    try:
        assert store.get(rec["id"])["status"] == "running"
        # a live lease never yields to a second claimant
        assert store.try_claim(rec["id"], "worker-b") is None
    finally:
        lock.release()
    # terminal jobs are not claimable even with the lease free
    store.finish(rec["id"], {"ok": True}, None)
    assert store.try_claim(rec["id"], "worker-c") is None
    assert store.claims_log.read_text().count("\n") == 1


# ---------------------------------------------------------------------- #
# HTTP end-to-end: dedup + byte-identical streaming
# ---------------------------------------------------------------------- #
def test_http_dedup_and_stream_byte_identity(daemon):
    client = ServeClient.from_dir(daemon.store.root)
    spec = fast_spec()
    first = client.submit(spec=spec)
    assert first["compute"] == "scheduled"
    result = client.result(first["job"], wait=True, timeout=120.0)
    assert result["steps"] == FAST["steps"]
    # second submission: zero compute, same job id
    second = client.submit(spec=spec)
    assert second["compute"] == "cached"
    assert second["job"] == first["job"]
    # exactly one simulation ran
    assert daemon.store.claims_log.read_text().count("\n") == 1
    assert daemon.store.get(first["job"])["attempts"] == 1
    # the streamed diagnostics equal the on-disk file, byte for byte
    streamed = b"".join(client.stream_diagnostics(first["job"]))
    on_disk = daemon.store.diagnostics_path(first["job"]).read_bytes()
    assert streamed == on_disk and len(on_disk) > 0
    # every streamed line is a complete JSON record
    records = [json.loads(l) for l in streamed.splitlines()]
    assert [r["step"] for r in records] == list(range(FAST["steps"] + 1))


def test_http_stream_while_running(daemon):
    """A stream opened while the job is still queued/running ends only at
    the terminal state and still matches the file byte for byte."""
    client = ServeClient.from_dir(daemon.store.root)
    sub = client.submit(spec=slow_spec())
    chunks = []
    t = threading.Thread(
        target=lambda: chunks.extend(client.stream_diagnostics(sub["job"])),
        daemon=True,
    )
    t.start()  # starts before the worker finishes (likely before it claims)
    client.result(sub["job"], wait=True, timeout=120.0)
    t.join(timeout=60.0)
    assert not t.is_alive()
    assert b"".join(chunks) == daemon.store.diagnostics_path(sub["job"]).read_bytes()


def test_http_errors(daemon):
    client = ServeClient.from_dir(daemon.store.root)
    with pytest.raises(ServeError, match="submit failed \\(400\\)"):
        client.submit(spec={"model": "no-such-model"})
    with pytest.raises(ServeError, match="404"):
        client.job("0" * 64)
    # result of a queued/running job is a 409 with its status, not an error
    sub = client.submit(spec=slow_spec(steps=500))
    data = client.result(sub["job"], wait=False)
    assert data["status"] in ("queued", "running")
    client.result(sub["job"], wait=True, timeout=120.0)


# ---------------------------------------------------------------------- #
# S3: concurrent duplicate submission
# ---------------------------------------------------------------------- #
def test_concurrent_submissions_create_one_job(daemon):
    n = 8
    spec_dict = fast_spec(steps=4).to_dict()
    results = [None] * n
    barrier = threading.Barrier(n)

    def hit(i):
        client = ServeClient.from_dir(daemon.store.root)
        barrier.wait()
        results[i] = client.submit(spec=spec_dict)

    threads = [threading.Thread(target=hit, args=(i,)) for i in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60.0)
    assert all(r is not None for r in results)
    ids = {r["job"] for r in results}
    assert len(ids) == 1, f"dedup split into {len(ids)} jobs"
    job_id = ids.pop()
    assert sum(1 for r in results if r["compute"] == "scheduled") == 1
    assert {r["compute"] for r in results} <= {"scheduled", "attached", "cached"}
    client = ServeClient.from_dir(daemon.store.root)
    client.result(job_id, wait=True, timeout=120.0)
    # one job record, n recorded submissions, exactly one execution
    assert len(daemon.store.list_jobs()) == 1
    assert daemon.store.get(job_id)["submits"] == n
    wait_until(
        lambda: daemon.store.get(job_id)["attempts"] == 1,
        what="attempt count",
    )
    assert daemon.store.claims_log.read_text().count("\n") == 1


# ---------------------------------------------------------------------- #
# S6: SIGKILLed worker -> stale lease -> exactly-once re-run
# ---------------------------------------------------------------------- #
def test_sigkilled_worker_job_is_rerun_byte_identical(tmp_path):
    spec = slow_spec()
    store = FileJobStore(tmp_path / "srv", lease_timeout=1.0)
    rec, _ = store.submit(spec)

    ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp
    victim = ctx.Process(
        target=worker_loop,
        args=(str(store.root),),
        kwargs=dict(lease_timeout=1.0, poll=0.05, max_jobs=1),
    )
    victim.start()
    try:
        # let it claim and make visible progress, then SIGKILL mid-job
        wait_until(
            lambda: store.get(rec["id"])["status"] == "running"
            and store.diagnostics_path(rec["id"]).exists()
            and store.diagnostics_path(rec["id"]).stat().st_size > 0,
            what="victim worker mid-job",
        )
        os.kill(victim.pid, signal.SIGKILL)
    finally:
        victim.join(timeout=10.0)
    assert store.get(rec["id"])["status"] == "running"  # orphaned claim

    # a second worker breaks the stale lease (after ~lease_timeout) and
    # re-runs the job to completion
    out = worker_loop(store.root, lease_timeout=1.0, poll=0.1, max_jobs=1)
    assert out["ran"] == [rec["id"]] and out["failed"] == []
    final = store.get(rec["id"])
    assert final["status"] == "done"
    assert final["attempts"] == 2
    claims = store.claims_log.read_text().splitlines()
    assert len(claims) == 2 and all(rec["id"] in line for line in claims)

    # the recovered output is byte-identical to an uninterrupted run
    from repro.runtime.driver import Driver

    ref_dir = tmp_path / "ref"
    driver = Driver(
        spec.with_overrides({"diagnostics": {"stream_path": None}}),
        outdir=ref_dir,
    )
    try:
        driver.run()
    finally:
        driver.close()
    assert (
        store.diagnostics_path(rec["id"]).read_bytes()
        == (ref_dir / "diagnostics.jsonl").read_bytes()
    )


# ---------------------------------------------------------------------- #
# SIGTERM drain (daemon subprocess, as deployed)
# ---------------------------------------------------------------------- #
def test_sigterm_drains_without_losing_leased_jobs(tmp_path):
    root = tmp_path / "srv"
    env = {**os.environ, "PYTHONPATH": REPO_SRC}
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve", str(root),
            "--workers", "1", "--poll", "0.05",
        ],
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
    )
    try:
        wait_until(lambda: (root / "serve.json").exists(), what="serve.json")
        client = ServeClient.from_dir(root)
        store = FileJobStore(root, lease_timeout=5.0)
        sub = client.submit(spec=slow_spec(steps=600))
        wait_until(
            lambda: store.get(sub["job"])["status"] == "running",
            what="job leased by a worker",
        )
        proc.send_signal(signal.SIGTERM)
        rc = proc.wait(timeout=120.0)
        assert rc == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10.0)
    # the leased job finished exactly once during the drain
    final = store.get(sub["job"])
    assert final["status"] == "done" and final["attempts"] == 1
    assert store.claims_log.read_text().count("\n") == 1
    # daemon cleaned up after itself and flushed a final metrics snapshot
    assert not (root / "serve.json").exists()
    records = [
        json.loads(line)
        for line in (root / "metrics.jsonl").read_text().splitlines()
    ]
    assert records[-1].get("final") is True
    assert records[-1]["metrics"]["jobs_completed"] == 1.0
    # ... readable by `repro report` (S2 + obs integration)
    assert main(["report", str(root)]) == 0


def test_draining_daemon_rejects_submissions(daemon):
    client = ServeClient.from_dir(daemon.store.root)
    daemon.draining = True
    try:
        with pytest.raises(ServeError, match="503"):
            client.submit(spec=fast_spec())
    finally:
        daemon.draining = False


# ---------------------------------------------------------------------- #
# S2: `repro report` on missing / still-running outdirs
# ---------------------------------------------------------------------- #
def test_report_missing_outdir_fails_cleanly(tmp_path, capsys):
    rc = main(["report", str(tmp_path / "never-ran")])
    assert rc == 2
    err = capsys.readouterr().err
    assert "no such run directory" in err and "never-ran" in err


def test_report_tolerates_partial_metrics_tail(tmp_path, capsys):
    outdir = tmp_path / "run"
    outdir.mkdir()
    full = {"time": 0.1, "metrics": {"steps": 3.0}}
    (outdir / "metrics.jsonl").write_text(
        json.dumps(full) + "\n" + json.dumps(full)[: 20]  # torn final line
    )
    assert main(["report", str(outdir)]) == 0
    assert "metrics" in capsys.readouterr().out


def test_report_incomplete_only_outdir_fails_cleanly(tmp_path, capsys):
    outdir = tmp_path / "run"
    outdir.mkdir()
    (outdir / "metrics.jsonl").write_text('{"time": 0.1, "metr')  # killed mid-write
    rc = main(["report", str(outdir)])
    assert rc == 2
    assert "no complete records" in capsys.readouterr().err


# ---------------------------------------------------------------------- #
# S1: configurable lease timeout, validated everywhere
# ---------------------------------------------------------------------- #
def test_lease_timeout_validation(tmp_path):
    assert validate_lease_timeout(1.0) == 1.0
    for bad in (0.0, -5.0, 0.01):
        with pytest.raises(ValueError, match="lease timeout"):
            validate_lease_timeout(bad)
    with pytest.raises(ValueError, match="lease timeout"):
        LeaseLock(tmp_path / "x.lock", timeout=0.01)
    with pytest.raises(ValueError):
        FileJobStore(tmp_path, lease_timeout=0.0)


def test_cli_rejects_bad_lease_timeout(tmp_path, capsys):
    for argv in (
        ["serve", str(tmp_path), "--lease-timeout", "0.01"],
        ["worker", str(tmp_path), "--lease-timeout", "0"],
    ):
        rc = main(argv)
        assert rc == 2, argv
        assert "--lease-timeout" in capsys.readouterr().err
    assert not (tmp_path / "serve.json").exists()


# ---------------------------------------------------------------------- #
# CLI verbs against a live daemon
# ---------------------------------------------------------------------- #
def test_cli_submit_and_jobs(daemon, capsys):
    root = str(daemon.store.root)
    overrides = [f"--set={k}={v}" for k, v in FAST.items()]
    rc = main(
        ["submit", "free_streaming", "--dir", root, *overrides, "--wait", "--json"]
    )
    assert rc == 0
    first = json.loads(capsys.readouterr().out)
    assert first["compute"] == "scheduled"
    assert first["result"]["steps"] == FAST["steps"]
    # resubmit: cache hit over the same CLI path
    rc = main(["submit", "free_streaming", "--dir", root, *overrides, "--json"])
    assert rc == 0
    second = json.loads(capsys.readouterr().out)
    assert second["compute"] == "cached" and second["job"] == first["job"]
    # listing
    rc = main(["jobs", "--dir", root, "--json"])
    assert rc == 0
    jobs = json.loads(capsys.readouterr().out)
    assert [j["id"] for j in jobs] == [first["job"]]
    assert jobs[0]["status"] == "done"


def test_cli_submit_without_daemon(tmp_path, capsys):
    rc = main(["submit", "free_streaming", "--dir", str(tmp_path)])
    assert rc == 2
    assert "no running daemon" in capsys.readouterr().err
