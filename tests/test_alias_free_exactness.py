"""THE central claim: the generated modal kernels evaluate the weak form
*exactly*.

The modal solver (sparse generated kernels, no quadrature) and the
quadrature baseline (dense interpolate/flux/project with alias-free
over-integration) must produce identical right-hand sides to machine
precision for arbitrary states and fields — in every dimensionality, order,
and basis family.  If the modal kernels had any integration error (i.e.
aliasing), these tests would fail.
"""

import numpy as np
import pytest

from repro.grid import Grid, PhaseGrid
from repro.vlasov import VlasovModalSolver, VlasovQuadratureSolver

CASES = [
    (1, 1, 1, "serendipity"),
    (1, 1, 2, "serendipity"),
    (1, 1, 3, "serendipity"),
    (1, 2, 1, "tensor"),
    (1, 2, 2, "serendipity"),
    (2, 2, 1, "serendipity"),
    (1, 2, 2, "maximal-order"),
    (1, 3, 1, "serendipity"),
]


def _setup(cdim, vdim, p, family, rng, cells=3, vcells=4):
    conf = Grid([0.0] * cdim, [1.0] * cdim, [cells] * cdim)
    vel = Grid([-2.0] * vdim, [2.0] * vdim, [vcells] * vdim)
    pg = PhaseGrid(conf, vel)
    ms = VlasovModalSolver(pg, p, family, charge=-1.0, mass=1.0)
    qs = VlasovQuadratureSolver(pg, p, family, charge=-1.0, mass=1.0)
    f = rng.standard_normal(conf.cells + (ms.num_basis,) + vel.cells)
    em = rng.standard_normal(conf.cells + (8, ms.num_conf_basis))
    return ms, qs, f, em


@pytest.mark.parametrize("cdim,vdim,p,family", CASES)
def test_modal_equals_exact_quadrature(cdim, vdim, p, family, rng):
    ms, qs, f, em = _setup(cdim, vdim, p, family, rng)
    r_modal = ms.rhs(f, em)
    r_quad = qs.rhs(f, em)
    scale = max(float(np.max(np.abs(r_quad))), 1.0)
    assert np.max(np.abs(r_modal - r_quad)) / scale < 5e-14


def test_under_integration_differs(rng):
    """With too few quadrature points the nodal-style scheme *is* aliased:
    its RHS deviates from the exact modal one.  This is the error the paper
    eliminates."""
    cdim, vdim, p = 1, 1, 2
    conf = Grid([0.0], [1.0], [3])
    vel = Grid([-2.0], [2.0], [4])
    pg = PhaseGrid(conf, vel)
    ms = VlasovModalSolver(pg, p, "serendipity")
    aliased = VlasovQuadratureSolver(pg, p, "serendipity", quad_points_1d=p + 1)
    f = rng.standard_normal(conf.cells + (ms.num_basis,) + vel.cells)
    em = rng.standard_normal(conf.cells + (8, ms.num_conf_basis))
    r_modal = ms.rhs(f, em)
    r_aliased = aliased.rhs(f, em)
    # under-integration must introduce a visible error
    assert np.max(np.abs(r_modal - r_aliased)) > 1e-6


def test_linearity_in_state(rng):
    ms, _, f, em = _setup(1, 2, 1, "serendipity", rng)
    g = rng.standard_normal(f.shape)
    lhs = ms.rhs(2.5 * f - 0.5 * g, em)
    rhs = 2.5 * ms.rhs(f, em) - 0.5 * ms.rhs(g, em)
    assert np.allclose(lhs, rhs, rtol=1e-12, atol=1e-12)


def test_free_streaming_has_no_field_dependence(rng):
    """With E=B=0 the acceleration terms vanish identically."""
    ms, _, f, em = _setup(1, 1, 2, "serendipity", rng)
    em0 = np.zeros_like(em)
    em1 = np.zeros_like(em)
    em1[..., 6:, :] = rng.standard_normal(em1[..., 6:, :].shape)  # cleaning fields don't push
    assert np.allclose(ms.rhs(f, em0), ms.rhs(f, em1), atol=1e-14)


def test_constant_distribution_free_streams_to_zero(rng):
    """A spatially uniform f with zero fields is an exact steady state."""
    cdim, vdim, p = 1, 1, 2
    conf = Grid([0.0], [1.0], [4])
    vel = Grid([-2.0], [2.0], [4])
    pg = PhaseGrid(conf, vel)
    ms = VlasovModalSolver(pg, p, "serendipity")
    f = np.zeros(conf.cells + (ms.num_basis,) + vel.cells)
    # x-independent, v-dependent coefficients: fill velocity-only modes
    basis = ms.kernels.phase_basis
    for i, alpha in enumerate(basis.indices):
        if alpha[0] == 0:
            f[:, i] = rng.standard_normal()
    em = np.zeros(conf.cells + (8, ms.num_conf_basis))
    r = ms.rhs(f, em)
    assert np.max(np.abs(r)) < 1e-13


def test_rhs_shape_validation(rng):
    ms, _, f, em = _setup(1, 1, 1, "serendipity", rng)
    with pytest.raises(ValueError):
        ms.rhs(f[..., :2], em)
    with pytest.raises(ValueError):
        ms.rhs(f, em[..., :1])
