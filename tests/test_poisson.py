"""Exact 1-D DG electrostatic solve."""

import numpy as np
import pytest

from repro.basis.modal import ModalBasis
from repro.fields.poisson import Poisson1D
from repro.grid import Grid
from repro.projection import project_conf_function


@pytest.fixture(scope="module")
def setup():
    grid = Grid([0.0], [2 * np.pi], [16])
    basis = ModalBasis(1, 2, "serendipity")
    return grid, basis, Poisson1D(grid, basis)


def test_manufactured_solution(setup):
    """rho = cos(x)  =>  E = sin(x) (zero mean, dE/dx = rho)."""
    grid, basis, poisson = setup
    rho = project_conf_function(lambda x: np.cos(x), grid, basis)
    e = poisson.solve(rho)
    e_exact = project_conf_function(lambda x: np.sin(x), grid, basis)
    assert np.max(np.abs(e - e_exact)) < 1e-4  # p=2 projection accuracy


def test_polynomial_charge_exact(setup):
    """Piecewise-polynomial rho within the basis: E is exact up to degree."""
    grid, basis, poisson = setup
    # rho = sin(x) has zero net charge; E = -cos(x)+mean-free
    rho = project_conf_function(lambda x: np.sin(x), grid, basis)
    e = poisson.solve(rho)
    e_exact = project_conf_function(lambda x: -np.cos(x), grid, basis)
    assert np.max(np.abs(e - e_exact)) < 1e-4


def test_gauss_law_discretely(setup):
    """Cell-integrated dE/dx equals cell charge: edge values of the solve."""
    grid, basis, poisson = setup
    rng = np.random.default_rng(3)
    rho = rng.standard_normal((grid.cells[0], basis.num_basis))
    rho[..., 0] -= rho[..., 0].mean()  # neutralize
    e = poisson.solve(rho)
    # domain mean must vanish
    assert abs(e[..., 0].sum()) < 1e-10


def test_non_neutral_raises(setup):
    grid, basis, poisson = setup
    rho = np.zeros((grid.cells[0], basis.num_basis))
    rho[..., 0] = 1.0
    with pytest.raises(ValueError, match="neutral"):
        poisson.solve(rho)


def test_epsilon0_scaling(setup):
    grid, basis, _ = setup
    rho = project_conf_function(lambda x: np.cos(x), grid, basis)
    e1 = Poisson1D(grid, basis, epsilon0=1.0).solve(rho)
    e2 = Poisson1D(grid, basis, epsilon0=2.0).solve(rho)
    assert np.allclose(e1, 2.0 * e2, atol=1e-12)


def test_requires_1d():
    grid = Grid([0.0, 0.0], [1.0, 1.0], [4, 4])
    basis = ModalBasis(2, 1, "serendipity")
    with pytest.raises(ValueError):
        Poisson1D(grid, basis)
