"""Field–particle correlation: velocity integral equals the local J.E work."""

import numpy as np
import pytest

from repro.basis.modal import ModalBasis
from repro.diagnostics.fieldparticle import FieldParticleCorrelator
from repro.grid import Grid, PhaseGrid
from repro.projection import project_phase_function


@pytest.fixture(scope="module")
def setup():
    pg = PhaseGrid(Grid([0.0], [1.0], [4]), Grid([-6.0], [6.0], [48]))
    basis = ModalBasis(2, 2, "serendipity")
    return pg, basis


def test_correlation_velocity_integral_is_jdote_density(setup):
    """int C_E(v) dv = -q E int (v^2/2) df/dv dv = q E int v f dv = E * j/q...
    For a drifting Maxwellian (n=1, drift u): integral -> q E u = j E / n.
    Checked with the trapezoid rule on a fine velocity sampling."""
    pg, basis = setup
    u = 0.8

    def f0(x, v):
        return np.exp(-((v - u) ** 2) / 2) / np.sqrt(2 * np.pi)

    f = project_phase_function(f0, pg, basis)
    v = np.linspace(-5.8, 5.8, 401)
    q, e_val = -1.0, 0.7
    corr = FieldParticleCorrelator(pg, basis, charge=q, x0=0.5, velocities=v)
    corr.record(f, e_at_x0=e_val, t=0.0)
    c = corr.correlation()["C"]
    integral = np.trapezoid(c, v)
    expected = q * e_val * u  # = E * (current density)/1
    assert integral == pytest.approx(expected, rel=2e-2)


def test_correlation_requires_snapshots(setup):
    pg, basis = setup
    corr = FieldParticleCorrelator(pg, basis, -1.0, 0.5, [0.0, 1.0])
    with pytest.raises(RuntimeError):
        corr.correlation()


def test_correlation_time_average(setup):
    pg, basis = setup

    def f0(x, v):
        return np.exp(-v ** 2 / 2) / np.sqrt(2 * np.pi)

    f = project_phase_function(f0, pg, basis)
    corr = FieldParticleCorrelator(pg, basis, -1.0, 0.5, np.linspace(-3, 3, 5))
    corr.record(f, e_at_x0=+1.0, t=0.0)
    corr.record(f, e_at_x0=-1.0, t=0.1)
    out = corr.correlation()
    # equal and opposite fields average to zero
    assert np.allclose(out["C"], 0.0, atol=1e-14)
    assert out["instantaneous"].shape == (2, 5)


def test_correlation_rejects_2v():
    pg = PhaseGrid(Grid([0.0], [1.0], [2]), Grid([-1, -1], [1, 1], [2, 2]))
    basis = ModalBasis(3, 1, "serendipity")
    with pytest.raises(ValueError):
        FieldParticleCorrelator(pg, basis, -1.0, 0.5, [0.0])
