"""Collision operators: conservation, relaxation, H-theorem behaviour."""

import numpy as np
import pytest

from repro.basis.modal import ModalBasis
from repro.collisions import BGKCollisions, LBOCollisions
from repro.grid import Grid, PhaseGrid
from repro.kernels import get_vlasov_kernels
from repro.moments import MomentCalculator, integrate_conf_field
from repro.projection import project_phase_function


@pytest.fixture(scope="module")
def setup():
    pg = PhaseGrid(Grid([0.0], [1.0], [2]), Grid([-8.0], [8.0], [24]))
    p = 2
    kern = get_vlasov_kernels(1, 1, p, "serendipity")
    mom = MomentCalculator(pg, kern)
    basis = ModalBasis(2, p, "serendipity")

    def f0(x, v):
        return np.exp(-((v - 1.0) ** 2) / 0.5) + 0.5 * np.exp(-((v + 2.0) ** 2) / 0.3)

    f = project_phase_function(f0, pg, basis)
    return pg, p, mom, basis, f


def test_lbo_conserves_density_momentum_energy(setup):
    pg, p, mom, _, f = setup
    lbo = LBOCollisions(pg, p, nu=1.0)
    df = lbo.rhs(f, mom)
    n0 = integrate_conf_field(mom.compute("M0", f), pg)
    e0 = integrate_conf_field(mom.compute("M2", f), pg)
    assert abs(integrate_conf_field(mom.compute("M0", df), pg)) / n0 < 1e-12
    assert abs(integrate_conf_field(mom.compute("M1x", df), pg)) < 1e-12 * n0
    assert abs(integrate_conf_field(mom.compute("M2", df), pg)) / e0 < 1e-12


def test_lbo_maxwellian_residual_converges(setup):
    """C[f_M] -> 0 under velocity refinement (the Maxwellian is the
    continuum equilibrium; the discrete residual is pure truncation)."""

    def residual(nv, p=2):
        pg = PhaseGrid(Grid([0.0], [1.0], [2]), Grid([-8.0], [8.0], [nv]))
        kern = get_vlasov_kernels(1, 1, p, "serendipity")
        mom = MomentCalculator(pg, kern)
        basis = ModalBasis(2, p, "serendipity")

        def fm(x, v):
            return np.exp(-v ** 2 / 2) / np.sqrt(2 * np.pi)

        f = project_phase_function(fm, pg, basis)
        lbo = LBOCollisions(pg, p, nu=1.0)
        df = lbo.rhs(f, mom)
        return np.max(np.abs(df)) / np.max(np.abs(f))

    r_coarse = residual(16)
    r_fine = residual(64)
    assert r_fine < 0.25 * r_coarse  # clear decay under 4x refinement
    assert r_fine < 0.1


def test_lbo_relaxes_toward_maxwellian(setup):
    pg, p, mom, _, f = setup
    lbo = LBOCollisions(pg, p, nu=1.0)
    bgk = BGKCollisions(pg, p, nu=1.0)
    g = f.copy()
    dt = 2e-3
    dist0 = np.max(np.abs(g - bgk.maxwellian_coefficients(g, mom)))
    for _ in range(300):
        g = g + dt * lbo.rhs(g, mom)
    dist1 = np.max(np.abs(g - bgk.maxwellian_coefficients(g, mom)))
    assert dist1 < 0.2 * dist0


def test_lbo_fixed_primitive_moments(setup):
    pg, p, mom, _, f = setup
    npc = 3
    u = np.zeros((1, 2, npc))
    vtsq = np.zeros((2, npc))
    vtsq[..., 0] = np.sqrt(2.0) * 1.0  # vth^2 = 1 as a DG field
    lbo = LBOCollisions(pg, p, nu=0.5, fixed_u=u, fixed_vtsq=vtsq)
    df = lbo.rhs(f, mom)
    assert np.isfinite(df).all()
    n0 = integrate_conf_field(mom.compute("M0", f), pg)
    assert abs(integrate_conf_field(mom.compute("M0", df), pg)) / n0 < 1e-12


def test_bgk_conservation_to_projection_accuracy(setup):
    pg, p, mom, _, f = setup
    bgk = BGKCollisions(pg, p, nu=2.0)
    df = bgk.rhs(f, mom)
    n0 = integrate_conf_field(mom.compute("M0", f), pg)
    e0 = integrate_conf_field(mom.compute("M2", f), pg)
    assert abs(integrate_conf_field(mom.compute("M0", df), pg)) / n0 < 1e-5
    assert abs(integrate_conf_field(mom.compute("M2", df), pg)) / e0 < 1e-4


def test_bgk_maxwellian_is_fixed_point(setup):
    pg, p, mom, basis, _ = setup

    def fm(x, v):
        return 1.7 * np.exp(-((v - 0.3) ** 2) / 2) / np.sqrt(2 * np.pi)

    f = project_phase_function(fm, pg, basis)
    bgk = BGKCollisions(pg, p, nu=1.0)
    df = bgk.rhs(f, mom)
    assert np.max(np.abs(df)) / np.max(np.abs(f)) < 2e-3


def test_bgk_accumulate_interface(setup):
    pg, p, mom, _, f = setup
    bgk = BGKCollisions(pg, p, nu=1.0)
    base = np.ones_like(f)
    out = base.copy()
    bgk.rhs(f, mom, out=out, accumulate=True)
    assert np.allclose(out - base, bgk.rhs(f, mom), atol=1e-14)


def test_lbo_2v_conservation():
    pg = PhaseGrid(Grid([0.0], [1.0], [2]), Grid([-6.0, -6.0], [6.0, 6.0], [12, 12]))
    p = 1
    kern = get_vlasov_kernels(1, 2, p, "serendipity")
    mom = MomentCalculator(pg, kern)
    basis = ModalBasis(3, p, "serendipity")

    def f0(x, vx, vy):
        return np.exp(-((vx - 1.0) ** 2 + vy ** 2) / 1.5)

    f = project_phase_function(f0, pg, basis)
    lbo = LBOCollisions(pg, p, nu=1.0)
    df = lbo.rhs(f, mom)
    n0 = integrate_conf_field(mom.compute("M0", f), pg)
    assert abs(integrate_conf_field(mom.compute("M0", df), pg)) / n0 < 1e-12
    assert abs(integrate_conf_field(mom.compute("M1x", df), pg)) < 1e-10 * n0
    assert abs(integrate_conf_field(mom.compute("M1y", df), pg)) < 1e-10 * n0


def test_lbo_cfl_frequency_positive(setup):
    pg, p, mom, _, f = setup
    lbo = LBOCollisions(pg, p, nu=3.0)
    lbo.rhs(f, mom)
    assert lbo.max_frequency() > 0
