"""Recovery-based DG diffusion: interface exactness and super-convergence
(the paper's Sec. VI claim: e.g. 4th-order convergence from p=1)."""

import numpy as np
import pytest

from repro.basis.modal import ModalBasis
from repro.grid import Grid
from repro.projection import project_on_grid
from repro.recovery import RecoveryDiffusion1D, recovery_interface_vectors


@pytest.mark.parametrize("p", [1, 2])
def test_recovery_reproduces_smooth_polynomials(p):
    """If uL/uR sample one global polynomial of degree <= 2p+1, the recovery
    polynomial *is* that polynomial: interface value and slope are exact."""
    rng = np.random.default_rng(0)
    coeffs = rng.standard_normal(2 * p + 2)  # global poly in s on [-1, 1]

    def poly(s):
        return sum(c * s ** k for k, c in enumerate(coeffs))

    basis = ModalBasis(1, p, "serendipity")
    # project onto left ([-1,0]) and right ([0,1]) cells
    grid = Grid([-1.0], [1.0], [2])
    u = project_on_grid(poly, grid, basis, quad_order=2 * p + 4)
    u_l, u_r = u[:, 0], u[:, 1]
    v0l, v0r, v1l, v1r = recovery_interface_vectors(p)
    r0 = v0l @ u_l + v0r @ u_r
    r1 = v1l @ u_l + v1r @ u_r
    exact0 = poly(0.0)
    exact1 = sum(k * c * 0.0 ** max(k - 1, 0) for k, c in enumerate(coeffs) if k)
    # dR/ds at s=0 is the linear coefficient; our s-coordinate spans one cell
    # width per unit (cells have width 1 in s) => derivative scale matches
    assert r0 == pytest.approx(exact0, abs=1e-10)
    assert r1 == pytest.approx(coeffs[1], abs=1e-9)


def _heat_error(nx, p, t_end=0.02):
    """Heat equation on [0,1]: u = sin(2 pi x) decays as exp(-4 pi^2 t)."""
    grid = Grid([0.0], [1.0], [nx])
    basis = ModalBasis(1, p, "serendipity")
    op = RecoveryDiffusion1D(grid, p, diffusivity=1.0)
    u = project_on_grid(lambda x: np.sin(2 * np.pi * x), grid, basis,
                        quad_order=p + 4)
    # SSP-RK3 with dt well below both the parabolic limit and accuracy floor
    from repro.timestepping import SSPRK3

    stepper = SSPRK3()
    dt = 0.1 / op.max_frequency() * (8.0 / nx) ** 0.5
    t = 0.0
    while t < t_end - 1e-14:
        step = min(dt, t_end - t)
        u = stepper.step({"u": u}, lambda s: {"u": op.rhs(s["u"])}, step)["u"]
        t += step
    decay = np.exp(-4 * np.pi ** 2 * t_end)
    exact = project_on_grid(
        lambda x: decay * np.sin(2 * np.pi * x), grid, basis, quad_order=p + 4
    )
    jac = 0.5 * grid.dx[0]
    return float(np.sqrt(np.sum((u - exact) ** 2) * jac))


def test_recovery_p1_superconvergence():
    """Paper Sec. VI: recovery can deliver ~4th order from p=1."""
    e1 = _heat_error(4, 1)
    e2 = _heat_error(8, 1)
    e3 = _heat_error(16, 1)
    r1, r2 = np.log2(e1 / e2), np.log2(e2 / e3)
    assert r1 > 3.2
    assert r2 > 3.2


def test_recovery_decay_rate_accuracy():
    """Even on 8 cells with p=1 the decay of the sine mode is captured to a
    fraction of a percent — the resolution-saving the paper is after."""
    err = _heat_error(8, 1)
    norm = np.exp(-4 * np.pi ** 2 * 0.02) / np.sqrt(2)
    assert err / norm < 5e-3


def test_recovery_conserves_mean():
    """Diffusion conserves the total integral (periodic)."""
    grid = Grid([0.0], [1.0], [12])
    p = 1
    op = RecoveryDiffusion1D(grid, p)
    rng = np.random.default_rng(3)
    u = rng.standard_normal((p + 1, 12))
    du = op.rhs(u)
    assert abs(du[0].sum()) < 1e-12


def test_recovery_requires_1d():
    with pytest.raises(ValueError):
        RecoveryDiffusion1D(Grid([0, 0], [1, 1], [4, 4]), 1)
