"""Spatial convergence of the modal DG scheme: order p+1 on smooth advection.

A near-1D phase-space setup (one narrow velocity cell around v=1) isolates
the configuration-space streaming discretization; the measured L2 error
converges at the formal order p+1 (paper Sec. I: "reduced degrees of freedom
... while retaining a high formal order of convergence").
"""

import numpy as np
import pytest

from repro.basis.modal import ModalBasis, tensor_gauss_points
from repro.grid import Grid, PhaseGrid
from repro.projection import project_phase_function
from repro.timestepping import SSPRK3
from repro.vlasov import VlasovModalSolver


def _advect_error(nx, p, t_end=0.25):
    conf = Grid([0.0], [1.0], [nx])
    vel = Grid([0.999], [1.001], [1])
    pg = PhaseGrid(conf, vel)
    solver = VlasovModalSolver(pg, p, "serendipity")
    basis = ModalBasis(2, p, "serendipity")

    def f0(x, v):
        return np.sin(2 * np.pi * x)

    f = project_phase_function(f0, pg, basis)
    em = np.zeros(conf.cells + (8, solver.num_conf_basis))
    stepper = SSPRK3()
    t = 0.0
    # dt shrinks faster than dx so the RK3 error stays subdominant
    dt = 0.1 / solver.max_frequency(em) * (8.0 / nx)
    while t < t_end - 1e-12:
        step = min(dt, t_end - t)
        f = stepper.step({"f": f}, lambda s: {"f": solver.rhs(s["f"], em)}, step)["f"]
        t += step
    pts, wts = tensor_gauss_points(p + 3, 2)
    vander = basis.eval_at(pts)
    xc = conf.centers(0)
    err2 = 0.0
    for i, x0 in enumerate(xc):
        xq = x0 + 0.5 * conf.dx[0] * pts[:, 0]
        vq = 1.0 + 0.001 * pts[:, 1]
        exact = f0(np.mod(xq - vq * t_end, 1.0), vq)
        num = vander.T @ f[i, :, 0]
        err2 += np.sum(wts * (num - exact) ** 2)
    return np.sqrt(err2 * 0.25 * conf.dx[0] * 0.002)


@pytest.mark.parametrize("p,expected", [(1, 2.0), (2, 3.0)])
def test_spatial_order_p_plus_one(p, expected):
    e1 = _advect_error(8, p)
    e2 = _advect_error(16, p)
    e3 = _advect_error(32, p)
    rate1 = np.log2(e1 / e2)
    rate2 = np.log2(e2 / e3)
    assert rate1 > expected - 0.35
    assert rate2 > expected - 0.25


def test_higher_order_is_more_accurate():
    assert _advect_error(8, 2) < 0.2 * _advect_error(8, 1)


def test_phase_mixing_is_representable():
    """Full velocity spread: the phase-mixed solution f0(x - vt) is tracked
    with bounded error that decreases under joint (x, v) refinement."""

    def run(n):
        conf = Grid([0.0], [1.0], [n])
        vel = Grid([0.5], [1.5], [max(n // 2, 2)])
        pg = PhaseGrid(conf, vel)
        solver = VlasovModalSolver(pg, 2, "serendipity")
        basis = ModalBasis(2, 2, "serendipity")

        def f0(x, v):
            return np.sin(2 * np.pi * x)

        f = project_phase_function(f0, pg, basis)
        em = np.zeros(conf.cells + (8, solver.num_conf_basis))
        stepper = SSPRK3()
        t, t_end = 0.0, 0.2
        dt = 0.2 / solver.max_frequency(em)
        while t < t_end - 1e-12:
            step = min(dt, t_end - t)
            f = stepper.step(
                {"f": f}, lambda s: {"f": solver.rhs(s["f"], em)}, step
            )["f"]
            t += step
        pts, wts = tensor_gauss_points(4, 2)
        vander = basis.eval_at(pts)
        err2 = 0.0
        for i, x0 in enumerate(conf.centers(0)):
            for j, v0 in enumerate(vel.centers(0)):
                xq = x0 + 0.5 * conf.dx[0] * pts[:, 0]
                vq = v0 + 0.5 * vel.dx[0] * pts[:, 1]
                exact = np.sin(2 * np.pi * np.mod(xq - vq * t_end, 1.0))
                num = vander.T @ f[i, :, j]
                err2 += np.sum(wts * (num - exact) ** 2)
        jac = 0.25 * conf.dx[0] * vel.dx[0]
        return np.sqrt(err2 * jac)

    e_coarse, e_fine = run(8), run(16)
    assert e_fine < 0.45 * e_coarse
