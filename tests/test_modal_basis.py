"""Orthonormality and evaluation of the modal bases (the identity mass matrix
that makes the scheme matrix-free)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.basis.modal import ModalBasis, tensor_gauss_points
from repro.basis.matrices import derivative_matrix, face_matrices, mass_matrix


@pytest.mark.parametrize("family", ["tensor", "serendipity", "maximal-order"])
@pytest.mark.parametrize("ndim,p", [(1, 1), (1, 3), (2, 2), (3, 1), (3, 2)])
def test_orthonormality(ndim, p, family):
    basis = ModalBasis(ndim, p, family)
    pts, wts = tensor_gauss_points(p + 2, ndim)
    v = basis.eval_at(pts)
    gram = (v * wts) @ v.T
    assert np.allclose(gram, np.eye(basis.num_basis), atol=1e-12)


@pytest.mark.parametrize("ndim,p", [(1, 2), (2, 1), (2, 2)])
def test_derivative_matrix_vs_quadrature(ndim, p):
    basis = ModalBasis(ndim, p, "serendipity")
    pts, wts = tensor_gauss_points(p + 2, ndim)
    v = basis.eval_at(pts)
    for d in range(ndim):
        dv = basis.eval_deriv_at(pts, d)
        ref = (dv * wts) @ v.T
        assert np.allclose(derivative_matrix(basis, d), ref, atol=1e-12)


def test_mass_matrix_is_identity():
    basis = ModalBasis(2, 2, "serendipity")
    assert np.array_equal(mass_matrix(basis), np.eye(basis.num_basis))


@pytest.mark.parametrize("ndim,p", [(2, 1), (2, 2)])
def test_face_matrices_vs_quadrature(ndim, p):
    basis = ModalBasis(ndim, p, "tensor")
    n1, w1 = np.polynomial.legendre.leggauss(p + 2)
    for d in range(ndim):
        fm = face_matrices(basis, d)
        # face quadrature points for the (ndim-1)-dim face
        pts_hi = np.insert(n1[:, None], d, 1.0, axis=1)
        pts_lo = np.insert(n1[:, None], d, -1.0, axis=1)
        v_hi = basis.eval_at(pts_hi)
        v_lo = basis.eval_at(pts_lo)
        ref_ll = -(v_hi * w1) @ v_hi.T
        ref_rl = (v_lo * w1) @ v_hi.T
        assert np.allclose(fm[("L", "L")], ref_ll, atol=1e-12)
        assert np.allclose(fm[("R", "L")], ref_rl, atol=1e-12)


def test_face_sign_parity():
    basis = ModalBasis(2, 3, "tensor")
    for i, alpha in enumerate(basis.indices):
        assert basis.face_sign(i, 0, 1) == 1
        assert basis.face_sign(i, 0, -1) == (-1) ** alpha[0]


@settings(max_examples=20, deadline=None)
@given(st.integers(1, 3), st.integers(1, 3))
def test_projection_reproduces_basis_functions(ndim, p):
    """Projecting w_i returns the unit coefficient vector (L2 projector is
    the identity on the span)."""
    basis = ModalBasis(ndim, p, "serendipity")
    i = min(2, basis.num_basis - 1)

    def func(pts):
        return basis.eval_at(pts)[i]

    coeffs = basis.project(func)
    expected = np.zeros(basis.num_basis)
    expected[i] = 1.0
    assert np.allclose(coeffs, expected, atol=1e-12)


def test_eval_shapes_and_errors():
    basis = ModalBasis(2, 1, "tensor")
    pts = np.zeros((5, 2))
    assert basis.eval_at(pts).shape == (4, 5)
    with pytest.raises(ValueError):
        basis.eval_at(np.zeros((5, 3)))
    with pytest.raises(ValueError):
        ModalBasis(2, 1, "bogus")


def test_index_lookup_roundtrip():
    basis = ModalBasis(3, 2, "serendipity")
    for i, alpha in enumerate(basis.indices):
        assert basis.index_of(alpha) == i
        assert basis.contains(alpha)
    assert not basis.contains((2, 2, 2))
