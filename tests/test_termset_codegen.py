"""TermSet runtime vs unrolled generated source: the two kernel evaluation
paths must agree to machine precision, and the multiplication accounting
(Fig. 1) must be consistent."""

import numpy as np
import pytest

from repro.cas.codegen import compile_kernel, count_multiplications, emit_kernel_source
from repro.grid import Grid, PhaseGrid
from repro.kernels import get_vlasov_kernels
from repro.kernels.termset import TermSet


@pytest.fixture(scope="module")
def bundle_1x2v():
    return get_vlasov_kernels(1, 2, 1, "tensor")


def _aux_for(pg, rng, npc):
    aux = pg.base_aux()
    aux["qm"] = -1.0
    for comp in range(3):
        for k in range(npc):
            aux[f"E{comp}_{k}"] = pg.conf_coefficient_array(
                rng.standard_normal(pg.conf.cells)
            )
            aux[f"B{comp}_{k}"] = pg.conf_coefficient_array(
                rng.standard_normal(pg.conf.cells)
            )
    return aux


def test_unrolled_source_matches_termset(bundle_1x2v, rng):
    pg = PhaseGrid(Grid([0.0], [1.0], [3]), Grid([-2, -2], [2, 2], [4, 4]))
    aux = _aux_for(pg, rng, bundle_1x2v.cfg_basis.num_basis)
    f = rng.standard_normal((bundle_1x2v.num_basis,) + pg.cells)
    for ts in [bundle_1x2v.vol_stream[0], bundle_1x2v.vol_accel[0],
               bundle_1x2v.surf_stream[0][("L", "L")],
               bundle_1x2v.surf_accel[1][("R", "R")]]:
        out_ts = np.zeros_like(f)
        ts.apply(f, aux, out_ts)
        kern = compile_kernel("k", ts)
        out_gen = np.zeros_like(f)
        kern(f, aux, out_gen)
        assert np.allclose(out_ts, out_gen, rtol=1e-13, atol=1e-13)


def test_emitted_source_is_flat_fma_code(bundle_1x2v):
    src = emit_kernel_source("vol", bundle_1x2v.vol_stream[0])
    assert src.startswith("def vol(f, aux, out):")
    # no loops, no matrices: the matrix-free property of Fig. 1
    assert "for " not in src
    assert "dot" not in src
    assert "out[" in src


def test_multiplication_count_positive_and_consistent(bundle_1x2v):
    ts = bundle_1x2v.vol_stream[0]
    count = count_multiplications(ts)
    assert count > 0
    # every tensor entry contributes at most 2 multiplications plus hoisting
    assert count <= 3 * ts.num_entries + 10


def test_empty_termset():
    ts = TermSet(4, 4, {})
    assert ts.is_empty()
    f = np.ones((4, 5))
    out = np.zeros((4, 5))
    ts.apply(f, {}, out)
    assert np.all(out == 0)
    src = emit_kernel_source("empty", ts)
    assert "pass" in src


def test_termset_apply_matches_dense_reference(rng):
    entries = {
        ("a",): [(0, 1, 2.0), (2, 0, -1.5)],
        (): [(1, 1, 3.0)],
        ("a", "b"): [(2, 2, 0.5)],
    }
    ts = TermSet(3, 3, entries)
    f = rng.standard_normal((3, 7))
    aux = {"a": 2.0, "b": rng.standard_normal(7)}
    out = np.zeros((3, 7))
    ts.apply(f, aux, out)
    # dense reference
    ref = np.zeros((3, 7))
    ref[0] += 2.0 * 2.0 * f[1]
    ref[2] += -1.5 * 2.0 * f[0]
    ref[1] += 3.0 * f[1]
    ref[2] += 0.5 * 2.0 * aux["b"] * f[2]
    assert np.allclose(out, ref, atol=1e-14)


def test_termset_scale_parameter(rng):
    ts = TermSet(2, 2, {(): [(0, 0, 1.0), (1, 1, 2.0)]})
    f = rng.standard_normal((2, 4))
    out1 = np.zeros_like(f)
    ts.apply(f, {}, out1, scale=-0.5)
    out2 = np.zeros_like(f)
    ts.apply(-0.5 * f, {}, out2)
    assert np.allclose(out1, out2, atol=1e-15)
