"""Cell-major layout invariants.

The cell-major refactor is held to three contracts:

1. **Exactness** — the cell-major engine reproduces the preserved
   mode-major reference (``benchmarks/_legacy_rhs.py``) to <= 2e-15 over
   randomized termsets and over full solver right-hand sides;
2. **Copy-freedom** — the steady-state RHS performs no layout-normalizing
   copy of full phase-space state (asserted via ``ScratchPool.copy_debug``);
3. **Compatibility** — pre-refactor mode-major checkpoints (committed
   fixture) resume transparently, checkpoints convert between layouts in
   both directions element-exactly, and the sharded halo traffic still
   matches the Fig. 3 model while moving contiguous slabs.
"""

from __future__ import annotations

import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "benchmarks"))

from repro.engine import ScratchPool, StateLayout  # noqa: E402
from repro.engine.layout import (  # noqa: E402
    conf_to_cell_major,
    conf_to_mode_major,
    phase_to_cell_major,
    phase_to_mode_major,
)
from repro.grid import Grid, PhaseGrid  # noqa: E402
from repro.io.checkpoint import (  # noqa: E402
    convert_checkpoint_layout,
    load_checkpoint,
    normalize_state_layout,
)
from repro.kernels.grouped import GroupedOperator  # noqa: E402
from repro.kernels.termset import TermSet  # noqa: E402
from repro.vlasov.modal_solver import VlasovModalSolver  # noqa: E402

pytestmark = pytest.mark.layout

DATA = Path(__file__).resolve().parent / "data"


# --------------------------------------------------------------------- #
# StateLayout basics
# --------------------------------------------------------------------- #
def test_state_layout_shapes_and_views():
    pg = PhaseGrid(Grid([0.0, 0.0], [1.0, 1.0], [3, 2]), Grid([-1.0], [1.0], [5]))
    lay = StateLayout.for_grid(pg, num_basis=7)
    assert lay.shape == (3, 2, 7, 5)
    assert lay.basis_axis == 2
    assert lay.ncfg == 6 and lay.nvel == 5
    assert lay.axis_of(0) == 0 and lay.axis_of(2) == 3
    arr = lay.alloc()
    assert arr.shape == lay.shape
    v3 = lay.as3d(arr)
    assert v3.shape == (6, 7, 5) and v3.base is arr
    mv = lay.mode_view(arr)
    assert mv.shape == (7, 3, 2, 5) and mv.base is arr  # a view, not a copy


def test_layout_conversions_roundtrip():
    rng = np.random.default_rng(3)
    f = rng.standard_normal((7, 3, 2, 5))  # mode-major
    f_cm = phase_to_cell_major(f, 2)
    assert f_cm.shape == (3, 2, 7, 5) and f_cm.flags.c_contiguous
    assert np.array_equal(phase_to_mode_major(f_cm, 2), f)
    em = rng.standard_normal((8, 4, 3, 2))  # (comp, Npc, *cfg)
    em_cm = conf_to_cell_major(em, 2, lead=2)
    assert em_cm.shape == (3, 2, 8, 4)
    assert np.array_equal(conf_to_mode_major(em_cm, 2, lead=2), em)


# --------------------------------------------------------------------- #
# 1. exactness vs the preserved mode-major reference
# --------------------------------------------------------------------- #
@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10**6), cdim=st.integers(1, 2), vdim=st.integers(1, 2))
def test_cellmajor_matches_legacy_grouped_operator(seed, cdim, vdim):
    """Randomized termsets: the cell-major plan path equals the seed's
    mode-major grouped evaluator to <= 2e-15."""
    from _legacy_rhs import LegacyGroupedOperator

    rng = np.random.default_rng(seed)
    # cfg sizes >= 2: a size-one cfg field classifies as a scalar, which the
    # preserved seed evaluator float()s — a numpy-version artifact, not a
    # layout behavior worth pinning
    cfg_shape = tuple(rng.integers(2, 4, size=cdim))
    vel_shape = tuple(rng.integers(2, 4, size=vdim))
    nout = nin = int(rng.integers(3, 7))
    kinds = ["scalar", "cfg", "vel"]
    names_kinds = {
        f"a{i}": kinds[rng.integers(0, 3)] for i in range(rng.integers(1, 5))
    }
    aux = {}
    for n, k in names_kinds.items():
        if k == "scalar":
            aux[n] = float(rng.standard_normal())
        elif k == "cfg":
            aux[n] = rng.standard_normal(cfg_shape + (1,) * vdim)
        else:
            aux[n] = rng.standard_normal((1,) * cdim + vel_shape)
    # unique (l, m) slots per symbol: generated kernels never duplicate a
    # slot, and the seed evaluator densifies by assignment
    slots = {}
    for _ in range(int(rng.integers(1, 6))):
        sym = tuple(rng.choice(list(names_kinds), size=rng.integers(0, 3)))
        per_sym = slots.setdefault(sym, {})
        for _ in range(int(rng.integers(1, 6))):
            per_sym[(int(rng.integers(0, nout)), int(rng.integers(0, nin)))] = float(
                rng.standard_normal()
            )
    entries = {
        sym: [(l, m, c) for (l, m), c in per_sym.items()]
        for sym, per_sym in slots.items()
    }
    ts = TermSet(nout, nin, entries)

    f_mm = rng.standard_normal((nin,) + cfg_shape + vel_shape)
    ref = np.zeros((nout,) + cfg_shape + vel_shape)
    LegacyGroupedOperator(ts, cdim, vdim).apply(f_mm, aux, ref)

    op = GroupedOperator(ts, cdim, vdim)
    got = np.zeros(cfg_shape + (nout,) + vel_shape)
    op.apply(phase_to_cell_major(f_mm, cdim), aux, got)
    scale = max(float(np.max(np.abs(ref))), 1.0)
    assert np.max(np.abs(phase_to_mode_major(got, cdim) - ref)) / scale <= 2e-15


@pytest.mark.parametrize("cdim,vdim,p", [(1, 1, 2), (1, 2, 1), (2, 2, 1)])
def test_cellmajor_rhs_matches_legacy_solver(cdim, vdim, p, rng):
    """Full Vlasov RHS: cell-major engine vs the preserved seed driver."""
    from _legacy_rhs import LegacyRhs

    conf = Grid([0.0] * cdim, [1.0] * cdim, [3] * cdim)
    vel = Grid([-2.0] * vdim, [2.0] * vdim, [4] * vdim)
    pg = PhaseGrid(conf, vel)
    solver = VlasovModalSolver(pg, p, "serendipity")
    f_cm = rng.standard_normal(solver.layout.shape)
    em_cm = rng.standard_normal(conf.cells + (8, solver.num_conf_basis))
    got = phase_to_mode_major(solver.rhs(f_cm, em_cm), cdim)
    ref = LegacyRhs(solver)(
        phase_to_mode_major(f_cm, cdim), conf_to_mode_major(em_cm, cdim, lead=2)
    )
    scale = max(float(np.max(np.abs(ref))), 1.0)
    assert np.max(np.abs(got - ref)) / scale <= 2e-15


# --------------------------------------------------------------------- #
# 2. no layout-normalizing copies in the steady-state RHS
# --------------------------------------------------------------------- #
def test_rhs_hot_path_is_copy_free(rng):
    """With ``copy_debug`` armed on the solver pool, repeated steady-state
    RHS evaluations must never stage a layout-normalizing copy of full
    phase-space state (the acceptance assertion of the refactor)."""
    pg = PhaseGrid(
        Grid([0.0, 0.0], [1.0, 1.0], [3, 3]),
        Grid([-2.0, -2.0], [2.0, 2.0], [4, 4]),
    )
    solver = VlasovModalSolver(pg, 1, "serendipity")
    f = rng.standard_normal(solver.layout.shape)
    em = rng.standard_normal(pg.conf.cells + (8, solver.num_conf_basis))
    out = np.empty_like(f)
    solver.rhs(f, em, out)  # compile plans
    solver.pool.copy_debug = True
    for _ in range(3):
        solver.rhs(f, em, out)  # raises on any normalizing copy
    assert solver.pool.layout_copies == 0


def test_coupled_app_rhs_is_copy_free():
    """The full coupled (multi-solver) RHS is copy-free too, through the
    runtime-built app on a real scenario."""
    from repro.runtime import build, build_app

    app = build_app(build("weibel_2x2v", nx=4, nv=6, steps=1))
    state = app.state()
    out = {k: np.empty_like(v) for k, v in state.items()}
    app.rhs(state, out=out)  # compile every plan
    pools = [app.solvers[sp.name].pool for sp in app.species]
    for pool in pools:
        pool.copy_debug = True
    for _ in range(2):
        app.rhs(state, out=out)
    assert all(pool.layout_copies == 0 for pool in pools)


def test_scratch_pool_copy_audit():
    pool = ScratchPool()
    pool.record_layout_copy("x", (2, 2))
    assert pool.layout_copies == 1
    pool.copy_debug = True
    with pytest.raises(RuntimeError, match="layout-normalizing"):
        pool.record_layout_copy("x", (2, 2))


# --------------------------------------------------------------------- #
# 3. checkpoint compatibility across the layout change
# --------------------------------------------------------------------- #
def test_legacy_modemajor_checkpoint_loads_bit_identically():
    """The committed pre-refactor checkpoint (no layout tag) converts to
    cell-major element-exactly: every value survives the axis move."""
    state, meta = load_checkpoint(DATA / "legacy_mode_major_checkpoint.npz")
    assert "layout" not in meta  # genuinely pre-refactor
    cdim = 2  # weibel_2x2v fixture
    norm = normalize_state_layout(state, meta, cdim)
    f_raw, em_raw = state["f/elc"], state["em"]
    assert norm["f/elc"].shape == f_raw.shape[1:3] + (f_raw.shape[0],) + f_raw.shape[3:]
    assert np.array_equal(norm["f/elc"], np.moveaxis(f_raw, 0, cdim))
    assert np.array_equal(norm["em"], np.moveaxis(em_raw, (0, 1), (-2, -1)))


def test_legacy_checkpoint_resumes_and_matches_prerefactor_run():
    """``repro resume`` across the layout change: a driver rebuilt from the
    mode-major fixture continues the run and reproduces the state the
    pre-refactor code computed from the same checkpoint (same dt schedule;
    tolerance covers the engine's roundoff-level reassociation)."""
    from repro.runtime import Driver

    drv = Driver.from_checkpoint(DATA / "legacy_mode_major_checkpoint.npz")
    for _ in range(2):
        drv.app.step(drv.app.suggested_dt() * 0.5)
    ref = np.load(DATA / "legacy_mode_major_reference.npz")
    assert drv.app.time == pytest.approx(float(ref["time"]), rel=1e-13)
    cdim = drv.app.conf_grid.ndim
    got_f = drv.app.f["elc"]
    ref_f = phase_to_cell_major(ref["f__elc"], cdim)
    scale = float(np.max(np.abs(ref_f)))
    assert np.max(np.abs(got_f - ref_f)) / scale < 1e-12
    ref_em = conf_to_cell_major(ref["em"], cdim, lead=2)
    em_scale = max(float(np.max(np.abs(ref_em))), 1e-30)
    assert np.max(np.abs(drv.app.em - ref_em)) / em_scale < 1e-10


def test_checkpoint_layout_conversion_roundtrips(tmp_path):
    """New checkpoints convert to mode-major (for pre-refactor tooling) and
    back, bit-identically — resume works across the layout change in both
    directions."""
    from repro.runtime import Driver, build

    drv = Driver(build("two_stream", nx=4, nv=8, steps=2), outdir=tmp_path / "run")
    drv.run()
    src = tmp_path / "run" / "checkpoint.npz"
    state0, meta0 = load_checkpoint(src)
    assert meta0["layout"] == "cell-major"

    mm_path = tmp_path / "mm.npz"
    convert_checkpoint_layout(src, mm_path, cdim=1, to="mode-major")
    state_mm, meta_mm = load_checkpoint(mm_path)
    assert meta_mm["layout"] == "mode-major"
    assert state_mm["f/elc"].shape[0] != state0["f/elc"].shape[0]  # axes moved

    back_path = tmp_path / "back.npz"
    convert_checkpoint_layout(mm_path, back_path, cdim=1, to="cell-major")
    state_back, meta_back = load_checkpoint(back_path)
    assert meta_back["layout"] == "cell-major"
    for key in state0:
        assert np.array_equal(state_back[key], state0[key]), key

    # a mode-major file resumes through the Driver exactly like the original
    drv_mm = Driver.from_checkpoint(mm_path)
    drv_orig = Driver.from_checkpoint(src)
    for key, val in drv_orig.app.state().items():
        assert np.array_equal(drv_mm.app.state()[key], val), key


# --------------------------------------------------------------------- #
# 3b. sharded halos: contiguous slabs, Fig. 3 traffic unchanged
# --------------------------------------------------------------------- #
@pytest.mark.shard
def test_sharded_cellmajor_halo_bytes_match_fig3_model():
    """Cell-major halo slabs are contiguous memory spans AND the measured
    traffic still equals the Fig. 3 model (the layout moves the same
    doubles, just without strided gathers)."""
    from repro.dist import ShardPlan
    from repro.runtime import build
    from repro.runtime.driver import build_app

    spec = build(
        "two_stream", nx=12, nv=8, poly_order=1, steps=2,
        **{"backend": "process:3"},
    )
    app = build_app(spec)
    try:
        # the shard's slab of the shared cell-major state is contiguous
        plan = app.plan
        shared_f = app.f[app.species[0].name]
        lo, hi = plan.ranges(1)[0]
        assert shared_f[lo:hi].flags.c_contiguous
        ghost = shared_f[(lo - 1) % shared_f.shape[0]]
        assert ghost.flags.c_contiguous  # each ghost slab is one memcpy span
        drv_steps = spec.steps
        for _ in range(drv_steps):
            app.step()
        halo = app.halo_stats
        npb = app.solvers[app.species[0].name].num_basis
        model = plan.model_halo_doubles(npb, (8,))
        stages = 3  # SSP-RK3
        assert halo["f"]["doubles"] == model * stages * drv_steps
    finally:
        app.close()
