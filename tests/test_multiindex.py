"""Basis families: counts, closed forms, and the paper's quoted dimensions."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.basis.multiindex import (
    FAMILIES,
    multi_indices,
    num_basis,
    superlinear_degree,
)


def test_paper_quoted_dimensions():
    # Table I: p=2 Serendipity in 5D (2X3V) has 112 DOF
    assert num_basis(5, 2, "serendipity") == 112
    # Sec. IV: p=1 in 6D has Np = 64
    assert num_basis(6, 1, "serendipity") == 64
    assert num_basis(6, 1, "tensor") == 64


@given(st.integers(1, 4), st.integers(0, 4))
def test_tensor_closed_form(d, p):
    assert num_basis(d, p, "tensor") == (p + 1) ** d
    assert len(multi_indices(d, p, "tensor")) == (p + 1) ** d


@given(st.integers(1, 4), st.integers(0, 4))
def test_maximal_order_closed_form(d, p):
    assert num_basis(d, p, "maximal-order") == math.comb(p + d, d)


@given(st.integers(1, 4), st.integers(0, 3))
def test_family_nesting(d, p):
    """maximal-order ⊆ serendipity ⊆ tensor."""
    mo = set(multi_indices(d, p, "maximal-order"))
    ser = set(multi_indices(d, p, "serendipity"))
    ten = set(multi_indices(d, p, "tensor"))
    assert mo <= ser <= ten


@given(st.integers(1, 4), st.integers(0, 3))
def test_constant_mode_first(d, p):
    for family in FAMILIES:
        assert multi_indices(d, p, family)[0] == (0,) * d


@given(st.integers(1, 5))
def test_p1_serendipity_is_multilinear(d):
    idx = multi_indices(d, 1, "serendipity")
    assert len(idx) == 2 ** d
    assert all(max(a) <= 1 for a in idx)


def test_superlinear_degree():
    assert superlinear_degree((1, 1, 1)) == 0
    assert superlinear_degree((2, 1, 0)) == 2
    assert superlinear_degree((2, 2, 3)) == 7


def test_serendipity_2d_p2_is_quad8():
    idx = multi_indices(2, 2, "serendipity")
    assert len(idx) == 8
    assert (2, 2) not in idx
    assert (2, 1) in idx and (1, 2) in idx


def test_invalid_family():
    with pytest.raises(ValueError):
        multi_indices(2, 1, "nodal")


def test_invalid_args():
    with pytest.raises(ValueError):
        multi_indices(0, 1)
    with pytest.raises(ValueError):
        multi_indices(2, -1)
