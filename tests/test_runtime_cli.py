"""CLI: list/show/run/resume/campaign subcommands end to end."""

import json

import pytest

from repro.runtime.cli import main


def test_list_shows_all_scenarios(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    for name in (
        "landau_damping", "two_stream", "weibel_2x2v",
        "bump_on_tail", "collisional_relaxation", "free_streaming",
    ):
        assert name in out


def test_list_verbose_shows_params(capsys):
    assert main(["list", "--verbose"]) == 0
    assert "drift" in capsys.readouterr().out


def test_show_emits_valid_spec_json(capsys):
    assert main(["show", "two_stream", "--set", "drift=1.5"]) == 0
    data = json.loads(capsys.readouterr().out)
    assert data["species"][0]["initial"]["drift"] == 1.5


def test_run_with_overrides(capsys, tmp_path):
    code = main([
        "run", "two_stream",
        "--set", "steps=2", "--set", "nx=4", "--set", "nv=8",
        "--outdir", str(tmp_path),
    ])
    assert code == 0
    out = capsys.readouterr().out
    assert "status        : max_steps" in out
    assert (tmp_path / "checkpoint.npz").exists()


def test_run_json_output(capsys):
    code = main([
        "run", "free_streaming", "--set", "steps=1",
        "--set", "nx=4", "--set", "nv=8", "--json",
    ])
    assert code == 0
    result = json.loads(capsys.readouterr().out)
    assert result["steps"] == 1 and result["status"] == "max_steps"


def test_resume_continues_from_checkpoint(capsys, tmp_path):
    assert main([
        "run", "two_stream",
        "--set", "steps=2", "--set", "nx=4", "--set", "nv=8",
        "--set", "t_end=100.0", "--outdir", str(tmp_path), "--json",
    ]) == 0
    capsys.readouterr()
    assert main([
        "resume", str(tmp_path / "checkpoint.npz"), "--set", "steps=4", "--json",
    ]) == 0
    result = json.loads(capsys.readouterr().out)
    assert result["steps"] == 4


def test_campaign_subcommand(capsys, tmp_path):
    camp = {
        "name": "clitest",
        "scenario": "two_stream",
        "base": {"nx": 4, "nv": 8, "steps": 1, "t_end": 100.0},
        "scan": {"drift": [1.5, 2.0]},
    }
    path = tmp_path / "camp.json"
    path.write_text(json.dumps(camp))
    outdir = tmp_path / "out"
    assert main(["campaign", str(path), "--outdir", str(outdir)]) == 0
    out = capsys.readouterr().out
    assert "2 ran, 0 skipped" in out
    assert (outdir / "manifest.json").exists()
    assert main(["campaign", str(path), "--outdir", str(outdir)]) == 0
    assert "0 ran, 2 skipped" in capsys.readouterr().out


def test_plans_warm_list_clear_cycle(capsys, tmp_path):
    cache = tmp_path / "plans"
    assert main([
        "plans", "warm", "free_streaming", "--cache", str(cache),
        "--set", "nx=4", "--set", "nv=8",
    ]) == 0
    out = capsys.readouterr().out
    assert "compiled" in out

    assert main(["plans", "list", "--cache", str(cache), "--json"]) == 0
    listing = json.loads(capsys.readouterr().out)
    assert listing["plans"], "warm left no plan entries behind"
    assert all(e["status"] == "ok" for e in listing["plans"])

    # a second warm against the same cache hydrates instead of compiling
    assert main([
        "plans", "warm", "free_streaming", "--cache", str(cache),
        "--set", "nx=4", "--set", "nv=8",
    ]) == 0
    assert "compiled 0" in capsys.readouterr().out

    assert main(["plans", "clear", "--cache", str(cache)]) == 0
    capsys.readouterr()
    assert main(["plans", "list", "--cache", str(cache), "--json"]) == 0
    assert json.loads(capsys.readouterr().out)["plans"] == []


def test_plans_cache_off_is_a_clean_error(capsys):
    assert main(["plans", "list", "--cache", "off"]) == 2
    assert "cache" in capsys.readouterr().err


def test_unknown_scenario_is_a_clean_error(capsys):
    assert main(["run", "tokamak"]) == 2
    assert "unknown scenario" in capsys.readouterr().err


def test_bad_set_syntax_is_a_clean_error(capsys):
    assert main(["run", "two_stream", "--set", "steps"]) == 2
    assert "key=value" in capsys.readouterr().err


def test_missing_campaign_file_is_a_clean_error(capsys, tmp_path):
    assert main(["campaign", str(tmp_path / "nope.json")]) == 2
    assert "error" in capsys.readouterr().err
