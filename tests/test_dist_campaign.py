"""Lease-based campaign dispatch: concurrent claiming, crash recovery.

The invariants under test are the ISSUE's: with many workers draining one
manifest directory, **no entry runs twice** (claims are exclusive-create
leases and ``done`` entries are never reclaimed) and **no entry is lost**
(a crashed claimant's stale lease is broken and its entry re-runs).
"""

from __future__ import annotations

import json
import multiprocessing as mp
import os
import time
from collections import Counter

import pytest

from repro.dist.lease import (
    CLAIMS_LOG,
    LOCK_DIR,
    LeaseLock,
    claim_loop,
    prepare_campaign_dir,
    run_dispatched,
)
from repro.runtime import CampaignSpec, load_manifest
from repro.runtime.cli import main as cli_main

pytestmark = pytest.mark.shard


def tiny_campaign(points=3):
    return CampaignSpec.from_dict(
        {
            "scenario": "free_streaming",
            "name": "lease-test",
            "base": {"steps": 1, "nx": 6, "nv": 6, "poly_order": 1},
            "scan": {"k": [0.5 + 0.25 * i for i in range(points)]},
        }
    )


def claims(outdir) -> Counter:
    path = outdir / CLAIMS_LOG
    if not path.exists():
        return Counter()
    return Counter(line.split()[0] for line in path.read_text().splitlines())


# --------------------------------------------------------------------- #
def test_lease_lock_exclusive_and_stale_takeover(tmp_path):
    a = LeaseLock(tmp_path / "x.lock", timeout=60.0)
    b = LeaseLock(tmp_path / "x.lock", timeout=60.0)
    assert a.try_acquire()
    assert not b.try_acquire()
    a.release()
    assert b.try_acquire()
    b.release()
    # stale takeover: fake an abandoned lock with an old mtime
    a = LeaseLock(tmp_path / "y.lock", timeout=0.5)
    assert a.try_acquire()
    a._beat.set()  # stop the heartbeat: simulates a crashed claimant
    old = time.time() - 10.0
    os.utime(tmp_path / "y.lock", (old, old))
    assert b.__class__(tmp_path / "y.lock", timeout=0.5).try_acquire()


def test_single_worker_drains_everything(tmp_path):
    camp = tiny_campaign(3)
    prepare_campaign_dir(camp, tmp_path)
    summary = claim_loop(tmp_path)
    assert sorted(summary["ran"]) == ["p0000", "p0001", "p0002"]
    assert summary["failed"] == []
    manifest = load_manifest(tmp_path)
    assert all(e["status"] == "done" for e in manifest["points"].values())
    assert all((tmp_path / pid / "result.json").exists() for pid in summary["ran"])
    # a second worker finds nothing claimable
    assert claim_loop(tmp_path) == {"ran": [], "failed": []}
    assert claims(tmp_path) == {"p0000": 1, "p0001": 1, "p0002": 1}


def test_concurrent_workers_run_each_entry_exactly_once(tmp_path):
    camp = tiny_campaign(4)
    prepare_campaign_dir(camp, tmp_path)
    ctx = mp.get_context("fork")
    procs = [
        ctx.Process(target=claim_loop, args=(str(tmp_path),)) for _ in range(3)
    ]
    for p in procs:
        p.start()
    for p in procs:
        p.join(timeout=600)
    assert all(p.exitcode == 0 for p in procs)
    manifest = load_manifest(tmp_path)
    statuses = [e["status"] for e in manifest["points"].values()]
    assert statuses == ["done"] * 4          # no entry lost
    assert set(claims(tmp_path).values()) == {1}  # no entry run twice
    assert len(claims(tmp_path)) == 4


def test_crashed_claimant_entry_is_recovered(tmp_path):
    camp = tiny_campaign(2)
    manifest = prepare_campaign_dir(camp, tmp_path)
    # simulate a worker that died mid-run: status "running", stale lease
    manifest["points"]["p0000"].update(status="running", worker="ghost:1")
    (tmp_path / "manifest.json").write_text(json.dumps(manifest))
    lock = tmp_path / LOCK_DIR / "p0000.lock"
    lock.parent.mkdir(exist_ok=True)
    lock.write_text(json.dumps({"host": "ghost", "pid": 1, "time": 0}))
    old = time.time() - 3600.0
    os.utime(lock, (old, old))

    summary = claim_loop(tmp_path, lease_timeout=1.0)
    assert sorted(summary["ran"]) == ["p0000", "p0001"]
    assert all(
        e["status"] == "done" for e in load_manifest(tmp_path)["points"].values()
    )


def test_run_dispatched_and_resume_skips_done(tmp_path):
    camp = tiny_campaign(3)
    manifest = run_dispatched(camp, tmp_path, workers=2)
    assert manifest["summary"]["total"] == 3
    assert manifest["summary"]["failed"] == 0
    # re-dispatch: done entries are carried over, nothing reruns
    manifest = run_dispatched(camp, tmp_path, workers=1)
    assert claims(tmp_path) == {"p0000": 1, "p0001": 1, "p0002": 1}


def test_worker_cli_roundtrip(tmp_path, capsys):
    camp_file = tmp_path / "camp.json"
    camp_file.write_text(json.dumps(tiny_campaign(2).to_dict()))
    outdir = tmp_path / "out"
    rc = cli_main(
        ["campaign", str(camp_file), "--dispatch", "shard", "--prepare-only",
         "--outdir", str(outdir)]
    )
    assert rc == 0
    assert "repro worker" in capsys.readouterr().out
    assert load_manifest(outdir) is not None

    rc = cli_main(["worker", str(outdir)])
    assert rc == 0
    out = capsys.readouterr().out
    assert "2 points ran" in out
    assert all(
        e["status"] == "done" for e in load_manifest(outdir)["points"].values()
    )


def test_campaign_cli_shard_dispatch(tmp_path, capsys):
    camp_file = tmp_path / "camp.json"
    camp_file.write_text(json.dumps(tiny_campaign(2).to_dict()))
    outdir = tmp_path / "out"
    rc = cli_main(
        ["campaign", str(camp_file), "--dispatch", "shard", "--workers", "2",
         "--outdir", str(outdir)]
    )
    assert rc == 0
    assert "2 ran" in capsys.readouterr().out
    assert set(claims(outdir).values()) == {1}
