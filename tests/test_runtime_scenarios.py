"""Scenario registry: listing, building, override routing, error paths."""

import pytest

from repro.runtime import SpecError, build, get_scenario, list_scenarios
from repro.runtime.scenarios import scenario

EXPECTED = {
    "landau_damping",
    "two_stream",
    "weibel_2x2v",
    "bump_on_tail",
    "collisional_relaxation",
    "free_streaming",
}


def test_registry_ships_canonical_scenarios():
    names = {sc.name for sc in list_scenarios()}
    assert EXPECTED <= names
    assert len(names) >= 6


def test_every_scenario_builds_a_valid_roundtrippable_spec():
    from repro.runtime import SimulationSpec

    for sc in list_scenarios():
        spec = build(sc.name)
        assert SimulationSpec.from_json(spec.to_json()) == spec
        assert sc.description  # one-line docstring surfaced in `repro list`


def test_scenario_params_introspection():
    sc = get_scenario("two_stream")
    assert sc.params["drift"] == 2.0
    assert "nv" in sc.params


def test_build_routes_physics_params_and_spec_overrides():
    spec = build("two_stream", drift=1.25, nv=16, cfl=0.5, steps=3)
    assert spec.species[0].initial["drift"] == 1.25
    assert spec.species[0].velocity_grid.cells == (16,)
    assert spec.cfl == 0.5
    assert spec.steps == 3


def test_build_dotted_spec_override():
    spec = build("landau_damping", **{"species.elc.initial.vt": 0.8})
    assert spec.species[0].initial["vt"] == 0.8


def test_unknown_scenario_lists_known_names():
    with pytest.raises(SpecError) as err:
        get_scenario("tokamak")
    assert "two_stream" in str(err.value)


def test_unknown_override_key_errors():
    with pytest.raises(SpecError):
        build("two_stream", drfit=2.0)  # typo: neither a param nor a spec field


def test_scenario_param_validation_flows_through():
    with pytest.raises(SpecError) as err:
        build("collisional_relaxation", operator="krook")
    assert "collisions.kind" in err.value.field


def test_decorator_registers_and_validates(monkeypatch):
    from repro.runtime import scenarios as mod

    @scenario("_tmp_test_scenario")
    def _tmp(nx: int = 4):
        """Throwaway registration-path scenario."""
        return build("two_stream", nx=nx)

    try:
        sc = get_scenario("_tmp_test_scenario")
        assert sc.build(nx=6).conf_grid.cells == (6,)
        with pytest.raises(SpecError):
            sc.build(ny=6)
    finally:
        mod._REGISTRY.pop("_tmp_test_scenario", None)
