"""Scenario registry: listing, building, override routing, error paths."""

import pytest

from repro.runtime import SpecError, build, get_scenario, list_scenarios
from repro.runtime.scenarios import scenario

EXPECTED = {
    "landau_damping",
    "two_stream",
    "weibel_2x2v",
    "bump_on_tail",
    "collisional_relaxation",
    "free_streaming",
    "ion_acoustic",
    "driven_landau",
}


def test_registry_ships_canonical_scenarios():
    names = {sc.name for sc in list_scenarios()}
    assert EXPECTED <= names
    assert len(names) >= 8


def test_ion_acoustic_is_multispecies_with_real_mass_ratio():
    spec = build("ion_acoustic")
    assert [sp.name for sp in spec.species] == ["elc", "ion"]
    assert spec.species[1].mass == 1836.153
    assert spec.species[1].charge == 1.0
    # ion grid resolves the ion thermal spread, not the electron one
    assert spec.species[1].velocity_grid.upper[0] < spec.species[0].velocity_grid.upper[0]
    light = build("ion_acoustic", mass_ratio=25.0)
    assert light.species[1].mass == 25.0


def test_ion_acoustic_runs_and_conserves_particles():
    import numpy as np

    from repro.runtime import Driver
    from repro.runtime.driver import build_app

    spec = build("ion_acoustic", nx=8, nv=10, poly_order=1, steps=3, mass_ratio=25.0)
    fresh = build_app(spec)
    n0 = {sp.name: fresh.particle_number(sp.name) for sp in spec.species}
    drv = Driver(spec)
    result = drv.run()
    assert result["steps"] == 3
    for name, n in result["particle_number"].items():
        assert np.isfinite(n)
        assert n == pytest.approx(n0[name], rel=1e-10)  # particle conservation


def test_driven_landau_defaults_to_bohm_gross_frequency():
    import math

    spec = build("driven_landau")
    assert spec.external_field is not None
    assert spec.external_field.omega == pytest.approx(math.sqrt(1.75))
    assert "Ex" in spec.external_field.components
    spec = build("driven_landau", omega=2.0)
    assert spec.external_field.omega == 2.0


def test_driven_landau_drive_injects_field_energy():
    from repro.runtime.driver import build_app

    spec = build("driven_landau", nx=8, nv=12, poly_order=1, steps=20, ramp=1.0)
    app = build_app(spec)
    e0 = app.field_energy()
    for _ in range(spec.steps):
        app.step()
    assert app.field_energy() > max(e0 * 10.0, 1e-12)


def test_every_scenario_builds_a_valid_roundtrippable_spec():
    from repro.runtime import SimulationSpec

    for sc in list_scenarios():
        spec = build(sc.name)
        assert SimulationSpec.from_json(spec.to_json()) == spec
        assert sc.description  # one-line docstring surfaced in `repro list`


def test_scenario_params_introspection():
    sc = get_scenario("two_stream")
    assert sc.params["drift"] == 2.0
    assert "nv" in sc.params


def test_build_routes_physics_params_and_spec_overrides():
    spec = build("two_stream", drift=1.25, nv=16, cfl=0.5, steps=3)
    assert spec.species[0].initial["drift"] == 1.25
    assert spec.species[0].velocity_grid.cells == (16,)
    assert spec.cfl == 0.5
    assert spec.steps == 3


def test_build_dotted_spec_override():
    spec = build("landau_damping", **{"species.elc.initial.vt": 0.8})
    assert spec.species[0].initial["vt"] == 0.8


def test_unknown_scenario_lists_known_names():
    with pytest.raises(SpecError) as err:
        get_scenario("tokamak")
    assert "two_stream" in str(err.value)


def test_unknown_override_key_errors():
    with pytest.raises(SpecError):
        build("two_stream", drfit=2.0)  # typo: neither a param nor a spec field


def test_scenario_param_validation_flows_through():
    with pytest.raises(SpecError) as err:
        build("collisional_relaxation", operator="krook")
    assert "collisions.kind" in err.value.field


def test_decorator_registers_and_validates(monkeypatch):
    from repro.runtime import scenarios as mod

    @scenario("_tmp_test_scenario")
    def _tmp(nx: int = 4):
        """Throwaway registration-path scenario."""
        return build("two_stream", nx=nx)

    try:
        sc = get_scenario("_tmp_test_scenario")
        assert sc.build(nx=6).conf_grid.cells == (6,)
        with pytest.raises(SpecError):
            sc.build(ny=6)
    finally:
        mod._REGISTRY.pop("_tmp_test_scenario", None)
