"""Driver: system building, scheduled diagnostics, checkpoint-resume equivalence."""

import numpy as np
import pytest

from repro.collisions import BGKCollisions, LBOCollisions
from repro.runtime import Driver, SpecError, build, build_app
from repro.systems import System


def test_build_app_selects_model():
    app = build_app(build("two_stream", nx=4, nv=8))
    assert isinstance(app, System) and app.field_kind == "poisson"
    app = build_app(build("landau_damping", nx=4, nv=8))
    assert isinstance(app, System) and app.field_kind == "maxwell"
    app = build_app(build("advection_1d", nx=4, nv=8))
    assert isinstance(app, System) and app.field_kind == "none"
    assert "em" not in app.state()


def test_build_app_quadrature_scheme():
    app = build_app(build("landau_damping", nx=4, nv=8, scheme="quadrature"))
    assert app.scheme == "quadrature"


def test_build_app_wires_collisions():
    app = build_app(build("collisional_relaxation", nv=8))
    assert isinstance(app.species[0].collisions, LBOCollisions)
    app = build_app(build("collisional_relaxation", nv=8, operator="bgk"))
    assert isinstance(app.species[0].collisions, BGKCollisions)
    assert app.species[0].collisions.nu == pytest.approx(0.8)


def test_declarative_ic_matches_hand_wired(tmp_path):
    """The registry's landau spec reproduces the hand-written quickstart IC."""
    spec = build("landau_damping", k=0.5, amp=1e-3, nx=4, nv=8)
    app = build_app(spec)

    from repro import FieldSpec, Grid, Species
    from repro.systems import MaxwellBlock

    def initial_f(x, v):
        return (1 + 1e-3 * np.cos(0.5 * x)) * np.exp(-(v**2) / 2) / np.sqrt(2 * np.pi)

    hand = System(
        conf_grid=Grid([0.0], [4 * np.pi], [4]),
        species=[
            Species("elc", -1.0, 1.0, Grid([-6.0], [6.0], [8]), initial_f)
        ],
        field=MaxwellBlock(
            FieldSpec(initial={"Ex": lambda x: -1e-3 / 0.5 * np.sin(0.5 * x)})
        ),
        poly_order=2,
        cfl=0.6,
    )
    assert np.allclose(app.f["elc"], hand.f["elc"], atol=1e-14)
    assert np.allclose(app.em, hand.em, atol=1e-14)


def test_run_honors_step_cap_and_records_history():
    driver = Driver(build("two_stream", nx=4, nv=8, steps=3, t_end=100.0))
    result = driver.run()
    assert result["status"] == "max_steps"
    assert result["steps"] == 3
    assert len(driver.history.times) == 4  # initial sample + 3 steps
    assert result["energy_drift"] < 1e-8


def test_energy_interval_thins_sampling():
    spec = build(
        "two_stream", nx=4, nv=8, steps=4, t_end=100.0,
        **{"diagnostics.energy_interval": 2},
    )
    driver = Driver(spec)
    driver.run()
    assert len(driver.history.times) == 3  # t=0, step 2, step 4


def test_wall_clock_budget_stops_run(tmp_path):
    spec = build("two_stream", nx=4, nv=8, t_end=1e6)
    driver = Driver(spec, outdir=tmp_path, wall_clock_budget=0.0)
    result = driver.run()
    assert result["status"] == "budget_exhausted"
    assert (tmp_path / "checkpoint.npz").exists()


def test_checkpoint_requires_a_path():
    driver = Driver(build("two_stream", nx=4, nv=8, steps=1))
    with pytest.raises(SpecError):
        driver.checkpoint()


def test_checkpoint_interval_without_path_fails_at_construction():
    """Misconfiguration must surface before any steps are computed."""
    spec = build(
        "two_stream", nx=4, nv=8, **{"diagnostics.checkpoint_interval": 2}
    )
    with pytest.raises(SpecError) as err:
        Driver(spec)  # no outdir, no checkpoint_path
    assert "checkpoint" in err.value.field


def test_killed_then_resumed_run_matches_uninterrupted(tmp_path):
    """The acceptance property: resume reproduces the uninterrupted state."""
    common = dict(nx=6, nv=12, t_end=100.0)

    ref = Driver(build("two_stream", steps=8, **common), outdir=tmp_path / "ref")
    ref.run()

    # "kill" after 4 steps: the step cap stops the driver mid-simulation,
    # leaving the periodic checkpoint behind
    killed = Driver(
        build(
            "two_stream", steps=4, **common,
            **{"diagnostics.checkpoint_interval": 4},
        ),
        outdir=tmp_path / "killed",
    )
    assert killed.run()["status"] == "max_steps"

    resumed = Driver.from_checkpoint(
        tmp_path / "killed" / "checkpoint.npz",
        outdir=tmp_path / "resumed",
        overrides={"steps": 8},
    )
    assert resumed.app.step_count == 4
    result = resumed.run()
    assert result["steps"] == 8

    assert resumed.app.time == ref.app.time
    ref_state, res_state = ref.app.state(), resumed.app.state()
    assert set(ref_state) == set(res_state)
    for key in ref_state:
        assert np.array_equal(ref_state[key], res_state[key]), key
    # diagnostics history survives the kill/resume seam too
    assert np.array_equal(ref.history.times, resumed.history.times)
    assert np.array_equal(ref.history.field_energy, resumed.history.field_energy)


def test_resume_maxwell_model(tmp_path):
    common = dict(nx=4, nv=8, t_end=100.0)
    ref = Driver(build("landau_damping", steps=6, **common))
    ref.run()

    part = Driver(build("landau_damping", steps=3, **common), outdir=tmp_path)
    part.run()
    resumed = Driver.from_checkpoint(tmp_path / "checkpoint.npz", overrides={"steps": 6})
    resumed.run()
    assert np.array_equal(ref.app.em, resumed.app.em)
    assert np.array_equal(ref.app.f["elc"], resumed.app.f["elc"])


def test_summary_is_json_serializable(tmp_path):
    import json

    result = Driver(build("free_streaming", nx=4, nv=8, steps=2)).run()
    json.dumps(result)
    assert result["scenario"] == "free_streaming"


def test_summary_reports_plan_stats():
    result = Driver(build("two_stream", nx=4, nv=8, steps=1)).run()
    plans = result["plans"]
    assert plans["compiled"] + plans["hydrated"] > 0
    assert plans["fused"] + plans["interpreted"] == plans["compiled"] + plans["hydrated"]
    assert plans["compile_seconds"] >= 0.0


def test_second_driver_hydrates_from_disk_cache(tmp_path):
    """A warm cache turns every plan compile into a hydrate, bit-identically."""
    kwargs = dict(nx=4, nv=8, steps=2, **{"plan_cache": str(tmp_path)})

    cold = Driver(build("two_stream", **kwargs))
    cold_result = cold.run()
    assert cold_result["plans"]["compiled"] > 0
    assert cold_result["plans"]["cache_stores"] > 0

    warm = Driver(build("two_stream", **kwargs))
    warm_result = warm.run()
    assert warm_result["plans"]["compiled"] == 0
    assert warm_result["plans"]["hydrated"] == cold_result["plans"]["compiled"]
    assert warm_result["plans"]["cache_hits"] == warm_result["plans"]["hydrated"]

    for key, ref in cold.app.state().items():
        assert np.array_equal(ref, warm.app.state()[key]), key


def test_interpreted_plan_mode_matches_fused():
    fused = Driver(build("two_stream", nx=4, nv=8, steps=2))
    fused.run()
    interp = Driver(
        build("two_stream", nx=4, nv=8, steps=2, **{"plan_mode": "interpreted"})
    )
    result = interp.run()
    assert result["plans"]["fused"] == 0
    assert result["plans"]["interpreted"] > 0
    for key, ref in fused.app.state().items():
        assert np.allclose(ref, interp.app.state()[key], rtol=2e-15, atol=2e-15), key
