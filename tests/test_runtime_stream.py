"""Incremental JSONL diagnostics streaming and backend selection through the
runtime layer (spec field, driver pass-through, CLI flag)."""

import json

import numpy as np
import pytest

from repro.runtime import Driver, SpecError, build, build_app
from repro.runtime.cli import main


def _read_jsonl(path):
    with open(path) as fh:
        return [json.loads(line) for line in fh if line.strip()]


def test_driver_streams_diagnostics_jsonl(tmp_path):
    spec = build("two_stream", nx=4, nv=8, steps=4)
    driver = Driver(spec, outdir=tmp_path)
    driver.run()
    path = tmp_path / "diagnostics.jsonl"
    assert driver.stream_path == path
    records = _read_jsonl(path)
    # one record per history entry, matching the in-memory history exactly
    assert len(records) == len(driver.history.times)
    assert [r["time"] for r in records] == driver.history.times
    assert [r["field_energy"] for r in records] == driver.history.field_energy
    assert records[-1]["step"] == driver.app.step_count
    assert records[0]["particle_energy"]["elc"] == driver.history.particle_energy["elc"][0]


def test_stream_path_spec_override(tmp_path):
    target = tmp_path / "sub" / "diag.jsonl"
    spec = build("two_stream", nx=4, nv=8, steps=2).with_overrides(
        {"diagnostics.stream_path": str(target)}
    )
    Driver(spec).run()
    assert len(_read_jsonl(target)) == 3  # t=0 plus two steps


def test_stream_appends_across_resume(tmp_path):
    spec = build("two_stream", nx=4, nv=8, steps=2)
    Driver(spec, outdir=tmp_path).run()
    n_first = len(_read_jsonl(tmp_path / "diagnostics.jsonl"))
    resumed = Driver.from_checkpoint(
        tmp_path / "checkpoint.npz", outdir=tmp_path, overrides={"steps": 4}
    )
    resumed.run()
    records = _read_jsonl(tmp_path / "diagnostics.jsonl")
    assert len(records) > n_first
    assert records[-1]["step"] == 4


def test_fresh_run_truncates_stale_stream(tmp_path):
    """A new (non-resumed) driver must not append after an older run's
    records; only checkpoint resumes continue the file."""
    spec = build("two_stream", nx=4, nv=8, steps=2)
    Driver(spec, outdir=tmp_path).run()
    first = _read_jsonl(tmp_path / "diagnostics.jsonl")
    Driver(spec, outdir=tmp_path).run()
    again = _read_jsonl(tmp_path / "diagnostics.jsonl")
    assert len(again) == len(first)
    assert again[0]["time"] == 0.0


def test_no_streaming_without_outdir_or_path():
    spec = build("two_stream", nx=4, nv=8, steps=1)
    driver = Driver(spec)
    assert driver.stream_path is None
    driver.run()  # must not crash


# --------------------------------------------------------------------- #
def test_spec_backend_roundtrip_and_validation():
    spec = build("two_stream", nx=4, nv=8)
    assert spec.backend == "numpy"
    spec2 = spec.with_overrides({"backend": "threaded:2"})
    assert spec2.backend == "threaded:2"
    assert spec2.to_dict()["backend"] == "threaded:2"
    with pytest.raises(SpecError, match="backend"):
        spec.with_overrides({"backend": "cuda"})
    # malformed worker suffixes fail at validation, not deep in the solver
    with pytest.raises(SpecError, match="backend"):
        spec.with_overrides({"backend": "threaded:four"})
    with pytest.raises(SpecError, match="backend"):
        spec.with_overrides({"backend": "threaded:0"})


def test_backend_reaches_solver_and_results_match():
    base = build("two_stream", nx=4, nv=8, steps=3)
    app_n = build_app(base)
    app_t = build_app(base.with_overrides({"backend": "threaded:2"}))
    assert app_t.solvers["elc"].backend.name == "threaded"
    for _ in range(3):
        dt = min(app_n.suggested_dt(), app_t.suggested_dt())
        app_n.step(dt)
        app_t.step(dt)
    fn, ft = app_n.f["elc"], app_t.f["elc"]
    scale = max(np.max(np.abs(fn)), 1.0)
    assert np.max(np.abs(fn - ft)) / scale < 1e-12


def test_cli_backend_flag(tmp_path, capsys):
    rc = main(
        [
            "run", "two_stream", "--backend", "numpy", "--json",
            "--set", "steps=2", "--set", "nx=4", "--set", "nv=8",
            "--outdir", str(tmp_path),
        ]
    )
    assert rc == 0
    summary = json.loads(capsys.readouterr().out)
    assert summary["steps"] == 2
    assert (tmp_path / "diagnostics.jsonl").exists()


def test_cli_rejects_unknown_backend(capsys):
    rc = main(["run", "two_stream", "--backend", "gpu", "--set", "steps=1"])
    assert rc == 2
    assert "backend" in capsys.readouterr().err
